package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"synpa/internal/machine"
)

func resultWith(ipcs []float64, completed bool) *machine.Result {
	r := &machine.Result{Policy: "test"}
	for i, ipc := range ipcs {
		ar := machine.AppResult{Name: "app", IPC: ipc}
		if completed {
			ar.CompletedAtCycle = uint64(1000 * (i + 1))
		}
		r.Apps = append(r.Apps, ar)
	}
	r.AllCompleted = completed
	return r
}

func TestTurnaroundCycles(t *testing.T) {
	r := resultWith([]float64{1, 2, 3}, true)
	tt, err := TurnaroundCycles(r)
	if err != nil {
		t.Fatal(err)
	}
	if tt != 3000 {
		t.Fatalf("TT = %d, want 3000 (slowest app)", tt)
	}
	if _, err := TurnaroundCycles(resultWith([]float64{1}, false)); err == nil {
		t.Fatal("incomplete workload accepted")
	}
}

func TestIndividualSpeedups(t *testing.T) {
	r := resultWith([]float64{0.5, 1.0}, true)
	s, err := IndividualSpeedups(r, []float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 0.5 || s[1] != 0.5 {
		t.Fatalf("speedups = %v", s)
	}
	if _, err := IndividualSpeedups(r, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := IndividualSpeedups(r, []float64{1, 0}); err == nil {
		t.Fatal("zero isolated IPC accepted")
	}
	if _, err := IndividualSpeedups(resultWith([]float64{1, 1}, false), []float64{1, 1}); err == nil {
		t.Fatal("incomplete app accepted")
	}
}

func TestFairness(t *testing.T) {
	// Perfectly uniform progress → fairness 1.
	f, err := Fairness([]float64{0.7, 0.7, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-12 {
		t.Fatalf("uniform fairness = %v, want 1", f)
	}
	// Known case: σ/µ of {0.4, 0.8} is (0.2)/(0.6).
	want := 1 - 0.2/0.6
	f, err = Fairness([]float64{0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-want) > 1e-12 {
		t.Fatalf("fairness = %v, want %v", f, want)
	}
	// Extreme dispersion (σ > µ) is a legitimate (bad) outcome and is
	// reported as a negative value, no longer clamped to 0.
	f, err = Fairness([]float64{0.01, 0.01, 0.01, 10})
	if err != nil {
		t.Fatal(err)
	}
	if f >= 0 {
		t.Fatalf("extreme-dispersion fairness = %v, want negative", f)
	}
}

func TestFairnessDegenerate(t *testing.T) {
	// Degenerate inputs must signal, not silently report a value.
	if _, err := Fairness(nil); err == nil {
		t.Fatal("empty speedup vector accepted")
	}
	if _, err := Fairness([]float64{0, 0}); err == nil {
		t.Fatal("zero mean speedup accepted")
	}
	if _, err := Fairness([]float64{-1, -2}); err == nil {
		t.Fatal("negative mean speedup accepted")
	}
}

func TestFairnessOrdering(t *testing.T) {
	// More dispersion → lower fairness, never above 1.
	check := func(seedA, seedB uint8) bool {
		base := 0.5
		spreadSmall := float64(seedA%10) / 100
		spreadBig := spreadSmall + 0.2
		small := []float64{base - spreadSmall, base + spreadSmall}
		big := []float64{base - spreadBig, base + spreadBig}
		fs, errS := Fairness(small)
		fb, errB := Fairness(big)
		return errS == nil && errB == nil && fs >= fb && fs <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeomeanIPC(t *testing.T) {
	r := resultWith([]float64{1, 4}, true)
	g, err := GeomeanIPC(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", g)
	}
	if _, err := GeomeanIPC(resultWith([]float64{1, 0}, true)); err == nil {
		t.Fatal("zero IPC accepted")
	}
}

func TestANTT(t *testing.T) {
	// Slowdowns 2 and 4 → ANTT = 3.
	a, err := ANTT([]float64{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-3) > 1e-12 {
		t.Fatalf("ANTT = %v, want 3", a)
	}
}

func TestANTTDegenerate(t *testing.T) {
	// A non-positive speedup must error, not return 0 — on a
	// lower-is-better metric, 0 would read as a perfect score.
	if _, err := ANTT(nil); err == nil {
		t.Fatal("empty speedup vector accepted")
	}
	if _, err := ANTT([]float64{0.5, 0}); err == nil {
		t.Fatal("zero speedup accepted")
	}
	if _, err := ANTT([]float64{0.5, -0.1}); err == nil {
		t.Fatal("negative speedup accepted")
	}
}

func TestSTP(t *testing.T) {
	if s := STP([]float64{0.5, 0.7}); math.Abs(s-1.2) > 1e-12 {
		t.Fatalf("STP = %v, want 1.2", s)
	}
	if STP(nil) != 0 {
		t.Fatal("empty STP should be 0")
	}
}
