package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"synpa/internal/machine"
)

func resultWith(ipcs []float64, completed bool) *machine.Result {
	r := &machine.Result{Policy: "test"}
	for i, ipc := range ipcs {
		ar := machine.AppResult{Name: "app", IPC: ipc}
		if completed {
			ar.CompletedAtCycle = uint64(1000 * (i + 1))
		}
		r.Apps = append(r.Apps, ar)
	}
	r.AllCompleted = completed
	return r
}

func TestTurnaroundCycles(t *testing.T) {
	r := resultWith([]float64{1, 2, 3}, true)
	tt, err := TurnaroundCycles(r)
	if err != nil {
		t.Fatal(err)
	}
	if tt != 3000 {
		t.Fatalf("TT = %d, want 3000 (slowest app)", tt)
	}
	if _, err := TurnaroundCycles(resultWith([]float64{1}, false)); err == nil {
		t.Fatal("incomplete workload accepted")
	}
}

func TestIndividualSpeedups(t *testing.T) {
	r := resultWith([]float64{0.5, 1.0}, true)
	s, err := IndividualSpeedups(r, []float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 0.5 || s[1] != 0.5 {
		t.Fatalf("speedups = %v", s)
	}
	if _, err := IndividualSpeedups(r, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := IndividualSpeedups(r, []float64{1, 0}); err == nil {
		t.Fatal("zero isolated IPC accepted")
	}
	if _, err := IndividualSpeedups(resultWith([]float64{1, 1}, false), []float64{1, 1}); err == nil {
		t.Fatal("incomplete app accepted")
	}
}

func TestFairness(t *testing.T) {
	// Perfectly uniform progress → fairness 1.
	if f := Fairness([]float64{0.7, 0.7, 0.7}); math.Abs(f-1) > 1e-12 {
		t.Fatalf("uniform fairness = %v, want 1", f)
	}
	// Known case: σ/µ of {0.4, 0.8} is (0.2)/(0.6).
	want := 1 - 0.2/0.6
	if f := Fairness([]float64{0.4, 0.8}); math.Abs(f-want) > 1e-12 {
		t.Fatalf("fairness = %v, want %v", f, want)
	}
	if f := Fairness(nil); f != 0 {
		t.Fatalf("empty fairness = %v", f)
	}
	// Extreme dispersion (σ > µ) clamps at zero rather than going
	// negative.
	if f := Fairness([]float64{0.01, 0.01, 0.01, 10}); f != 0 {
		t.Fatalf("clamped fairness = %v", f)
	}
}

func TestFairnessOrdering(t *testing.T) {
	// More dispersion → lower fairness, always in [0,1].
	check := func(seedA, seedB uint8) bool {
		base := 0.5
		spreadSmall := float64(seedA%10) / 100
		spreadBig := spreadSmall + 0.2
		small := []float64{base - spreadSmall, base + spreadSmall}
		big := []float64{base - spreadBig, base + spreadBig}
		fs, fb := Fairness(small), Fairness(big)
		return fs >= fb && fs <= 1 && fb >= 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeomeanIPC(t *testing.T) {
	r := resultWith([]float64{1, 4}, true)
	g, err := GeomeanIPC(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", g)
	}
	if _, err := GeomeanIPC(resultWith([]float64{1, 0}, true)); err == nil {
		t.Fatal("zero IPC accepted")
	}
}

func TestANTT(t *testing.T) {
	// Slowdowns 2 and 4 → ANTT = 3.
	if a := ANTT([]float64{0.5, 0.25}); math.Abs(a-3) > 1e-12 {
		t.Fatalf("ANTT = %v, want 3", a)
	}
	if ANTT(nil) != 0 || ANTT([]float64{0}) != 0 {
		t.Fatal("degenerate ANTT should be 0")
	}
}

func TestSTP(t *testing.T) {
	if s := STP([]float64{0.5, 0.7}); math.Abs(s-1.2) > 1e-12 {
		t.Fatalf("STP = %v, want 1.2", s)
	}
	if STP(nil) != 0 {
		t.Fatal("empty STP should be 0")
	}
}
