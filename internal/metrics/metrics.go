// Package metrics computes the system-level performance metrics of the
// paper's evaluation (§VI): turnaround time, individual speedups, fairness
// (Eyerman & Eeckhout [24]) and workload IPC, plus the ANTT and STP metrics
// customary in multi-program studies.
package metrics

import (
	"fmt"

	"synpa/internal/machine"
	"synpa/internal/stats"
)

// TurnaroundCycles returns the workload turnaround time in cycles: the
// completion time of the slowest application (§VI-B).
func TurnaroundCycles(r *machine.Result) (uint64, error) {
	tt, ok := r.TurnaroundCycles()
	if !ok {
		return 0, fmt.Errorf("metrics: workload under %s did not complete", r.Policy)
	}
	return tt, nil
}

// IndividualSpeedups returns each application's individual speedup: the
// ratio of its IPC in SMT execution to its IPC in isolated execution
// (§VI-D). Values are <= ~1; higher is better.
func IndividualSpeedups(r *machine.Result, isolatedIPC []float64) ([]float64, error) {
	if len(isolatedIPC) != len(r.Apps) {
		return nil, fmt.Errorf("metrics: %d isolated IPCs for %d apps", len(isolatedIPC), len(r.Apps))
	}
	out := make([]float64, len(r.Apps))
	for i := range r.Apps {
		if r.Apps[i].CompletedAtCycle == 0 {
			return nil, fmt.Errorf("metrics: app %d (%s) never completed", i, r.Apps[i].Name)
		}
		if isolatedIPC[i] <= 0 {
			return nil, fmt.Errorf("metrics: app %d (%s) has non-positive isolated IPC", i, r.Apps[i].Name)
		}
		out[i] = r.Apps[i].IPC / isolatedIPC[i]
	}
	return out, nil
}

// Fairness computes the paper's fairness metric: 1 − σ/µ over the
// individual speedups. A value of 1 means perfectly uniform progress
// (§VI-D, [24]); a highly skewed distribution can legitimately push the
// metric below 0, which is reported as-is rather than clamped. Degenerate
// inputs — an empty vector or a non-positive mean speedup, which would
// make σ/µ meaningless — return an error instead of a best-looking 0.
func Fairness(speedups []float64) (float64, error) {
	if len(speedups) == 0 {
		return 0, fmt.Errorf("metrics: fairness of an empty speedup vector")
	}
	mu := stats.Mean(speedups)
	if mu <= 0 {
		return 0, fmt.Errorf("metrics: fairness undefined for non-positive mean speedup %v", mu)
	}
	return 1 - stats.StdDev(speedups)/mu, nil
}

// GeomeanIPC returns the workload IPC as the geometric mean of the
// applications' IPCs, the aggregation used for Fig. 9.
func GeomeanIPC(r *machine.Result) (float64, error) {
	vals := make([]float64, len(r.Apps))
	for i := range r.Apps {
		if r.Apps[i].IPC <= 0 {
			return 0, fmt.Errorf("metrics: app %d (%s) has no IPC", i, r.Apps[i].Name)
		}
		vals[i] = r.Apps[i].IPC
	}
	return stats.GeoMean(vals), nil
}

// ANTT returns the average normalized turnaround time: the arithmetic mean
// of per-application slowdowns (1/speedup). Lower is better. A non-positive
// speedup has no defined slowdown, so it returns an error rather than 0 —
// which would read as the best possible score of a lower-is-better metric.
func ANTT(speedups []float64) (float64, error) {
	if len(speedups) == 0 {
		return 0, fmt.Errorf("metrics: ANTT of an empty speedup vector")
	}
	s := 0.0
	for i, v := range speedups {
		if v <= 0 {
			return 0, fmt.Errorf("metrics: ANTT undefined for non-positive speedup %v of app %d", v, i)
		}
		s += 1 / v
	}
	return s / float64(len(speedups)), nil
}

// STP returns the system throughput: the sum of individual speedups,
// i.e. the aggregate progress rate in "isolated applications" units.
// Higher is better.
func STP(speedups []float64) float64 {
	s := 0.0
	for _, v := range speedups {
		s += v
	}
	return s
}
