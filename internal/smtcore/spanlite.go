// Steady/active span — the lean scalarised tier of the fast-forward engine.
//
// This tier executes runs of *event-free* cycles: spans in which no stall
// event can fire (every dispatching thread's window exceeds what it can
// consume), no outstanding miss can expire, no frontend stall can end and
// no phase boundary can be crossed. Those four events are the only places
// step() touches the RNG or refreshes contention rates, so inside a span
// every cycle is pure arithmetic on the core's microstate — and that
// arithmetic is transcribed below from step() operation for operation onto
// scalar locals, with the dispatch-priority alternation unrolled into the
// two cycle parities so that no dynamically indexed state remains and the
// whole cycle body register-allocates. PMU counters accumulate in scalars
// and flush once per span.
//
// Per-thread span roles:
//
//   - live: dispatches through the full clamp cascade (including the
//     issue-queue clamps when its miss is outstanding);
//   - frozen: miss-blocked with the blocked-ness provable for the whole
//     span from its own partition caps alone (dispatchBlockedOwn), so the
//     cascade collapses to the fixed zero-dispatch signature;
//   - frontend-starved: consumes STALL_FRONTEND cycles (the span ends with
//     the stall);
//   - idle: an empty slot with no effects.
//
// The parity bodies are deliberate near-duplicates of each other and of
// step(): the duplication is what buys the register allocation. The file is
// generated-style mechanical code; the differential test in
// fastforward_test.go pins every operation to the reference loop.
package smtcore

import "synpa/internal/pmu"

// minSpan is the shortest span worth the setup/flush overhead; anything
// shorter runs through step().
const minSpan = 4

// liteCounters accumulates one thread's per-cycle PMU signatures over a
// span.
type liteCounters struct {
	spec, ret                        uint64
	feCnt                            uint64
	slotsCnt, robCnt, ldqCnt, stqCnt uint64
	iqCnt, otherCnt, memLatCnt       uint64
}

// runSpanLite executes up to limit event-free cycles, returning the number
// executed (0 when no worthwhile span exists). The SMT2 configuration runs
// the scalarised parity-unrolled tier below; other levels run the generic
// slice-based variant in spanliten.go.
func (c *Core) runSpanLite(limit uint64) uint64 {
	if len(c.threads) == 2 {
		return c.runSpanLite2(limit)
	}
	return c.runSpanLiteN(limit)
}

// runSpanLite2 is the SMT2 span tier: every per-thread quantity lives in a
// scalar local and the two dispatch-priority parities are unrolled.
func (c *Core) runSpanLite2(limit uint64) uint64 {
	t0, t1 := &c.threads[0], &c.threads[1]
	active0, active1 := t0.inst != nil, t1.inst != nil
	if !active0 && !active1 {
		return 0
	}
	var frozen0, frozen1, hasMiss0, hasMiss1, liveAny bool
	var supMax0, supMax1 int
	var pb0, pb1 uint64 // dispatched instructions left before a phase boundary
	n := limit
	for s := 0; s < 2; s++ {
		t := &c.threads[s]
		if t.inst == nil {
			continue
		}
		if t.missLeft > 0 {
			// The expiry cycle drains iqHeld; stop one cycle short of it
			// so "a miss is outstanding" is a span-constant fact.
			if t.missLeft < 2 {
				return 0
			}
			if m := uint64(t.missLeft - 1); m < n {
				n = m
			}
			if s == 0 {
				hasMiss0 = true
			} else {
				hasMiss1 = true
			}
		}
		if t.feLeft > 0 {
			// Frontend-starved: cannot dispatch; the span ends with the
			// stall so resumption runs in step().
			if m := uint64(t.feLeft); m < n {
				n = m
			}
			continue
		}
		if t.missLeft > 0 {
			// A blocked thread freezes — its cascade collapses to the
			// fixed zero-dispatch signature — when the blocked-ness is
			// stable for the whole span. Shared frees only shrink while
			// co-runners dispatch, so the current clamp outcome
			// (dispatchBlocked) suffices unless the co-runner can retire
			// (missLeft == 0): retirement grows the shared frees, and
			// blocked-ness must then hold at maximum free, from t's own
			// partition caps alone (dispatchBlockedOwn).
			other := &c.threads[1-s]
			var blocked bool
			if other.inst != nil && other.missLeft == 0 {
				blocked = c.dispatchBlockedOwn(t)
			} else {
				blocked = c.dispatchBlocked(t)
			}
			if blocked {
				if s == 0 {
					frozen0 = true
				} else {
					frozen1 = true
				}
				continue
			}
		}
		liveAny = true
		supplyMax := t.ilpBase
		if t.ilpFrac > 0 {
			supplyMax++
		}
		if supplyMax < 1 {
			return 0
		}
		// The first cycle must be event-free; later cycles are guarded
		// dynamically inside the loop (a static worst-case bound would
		// halve span lengths whenever slot contention throttles actual
		// window consumption).
		if t.window <= supplyMax {
			return 0
		}
		toBoundary := t.inst.InstsToPhaseBoundary()
		if toBoundary-1 < uint64(supplyMax) {
			return 0
		}
		if s == 0 {
			supMax0 = supplyMax
			pb0 = toBoundary - 1
		} else {
			supMax1 = supplyMax
			pb1 = toBoundary - 1
		}
	}
	if !liveAny || n < minSpan {
		// With no live dispatcher every thread is dormant — the bulk
		// tier advances that regime in O(1) per window instead of O(n).
		return 0
	}

	// --- hoist state into scalar locals ------------------------------------
	dispW, retireW := c.cfg.DispatchWidth, c.cfg.RetireWidth
	robSize := c.cfg.ROBSize
	robCap := c.robCap
	iqSizeF := float64(c.cfg.IQSize)
	ldqSizeF := float64(c.cfg.LDQSize)
	stqSizeF := float64(c.cfg.STQSize)
	iqCap := c.iqCap
	ldqCap, stqCap := c.ldqCap, c.stqCap
	ldqDead, stqDead := c.ldqDead, c.stqDead
	var (
		rob0, win0, fe0 = t0.robHeld, t0.window, t0.feLeft
		rob1, win1, fe1 = t1.robHeld, t1.window, t1.feLeft
		iqH0, iqH1      = t0.iqHeld, t1.iqHeld
		ldq0, stq0      = t0.ldqHeld, t0.stqHeld
		ldq1, stq1      = t1.ldqHeld, t1.stqHeld
		acc0, frac0     = t0.ilpAcc, t0.ilpFrac
		acc1, frac1     = t1.ilpAcc, t1.ilpFrac
		base0, base1    = t0.ilpBase, t1.ilpBase
		loadR0, storeR0 = t0.loadRatio, t0.storeRatio
		loadR1, storeR1 = t1.loadRatio, t1.storeRatio
		depF0, depF1    = t0.depFrac, t1.depFrac
		invD0, invD1    = t0.invDepFrac, t1.invDepFrac
		invL0, invS0    = t0.invLoadRatio, t0.invStoreRatio
		invL1, invS1    = t1.invLoadRatio, t1.invStoreRatio
		cnt0, cnt1      liteCounters
	)

	i := uint64(0)
	stop := false
	stallStreak := 0
	runOdd := c.prio == 1

	for i < n && !stop {
		i++
		if !runOdd {
			runOdd = true
			// ===== cycle with thread 0 first ==========================
			dispatched := false
			retireLeft := retireW
			if active0 && !hasMiss0 && rob0 > 0 {
				k := rob0
				if k > retireLeft {
					k = retireLeft
				}
				retireLeft -= k
				rob0 -= k
				if !ldqDead {
					ldq0 -= loadR0 * float64(k)
					if ldq0 < 0 {
						ldq0 = 0
					}
				}
				if !stqDead {
					stq0 -= storeR0 * float64(k)
					if stq0 < 0 {
						stq0 = 0
					}
				}
				if rob0 == 0 {
					ldq0, stq0 = 0, 0
				}
				cnt0.ret += uint64(k)
			}
			if active1 && !hasMiss1 && rob1 > 0 && retireLeft > 0 {
				k := rob1
				if k > retireLeft {
					k = retireLeft
				}
				rob1 -= k
				if !ldqDead {
					ldq1 -= loadR1 * float64(k)
					if ldq1 < 0 {
						ldq1 = 0
					}
				}
				if !stqDead {
					stq1 -= storeR1 * float64(k)
					if stq1 < 0 {
						stq1 = 0
					}
				}
				if rob1 == 0 {
					ldq1, stq1 = 0, 0
				}
				cnt1.ret += uint64(k)
			}
			slots := dispW
			robUsed := rob0 + rob1
			if active0 {
				if frozen0 {
					// Blocked on its miss for the whole span: the supply
					// dither still advances before the cascade discards it,
					// exactly as in step().
					acc0 += frac0
					if acc0 >= 1 {
						acc0--
					}
					cnt0.memLatCnt++
				} else if fe0 > 0 {
					fe0--
					cnt0.feCnt++
				} else {
					supply := base0
					acc0 += frac0
					if acc0 >= 1 {
						supply++
						acc0--
					}
					k := supply
					cause := 0
					if win0 < k {
						k = win0
					}
					if slots < k {
						k = slots
						if slots == 0 {
							cause = 1
						}
					}
					if free := robSize - robUsed; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					if free := robCap - rob0; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					iqFree := iqSizeF - iqH0 - iqH1
					if own := iqCap - iqH0; own < iqFree {
						iqFree = own
					}
					if iqFree < 1 {
						k = 0
						cause = 5
					} else if hasMiss0 && depF0 > 0 {
						if lim := int(iqFree * invD0); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 5
							}
						}
					}
					if !ldqDead && loadR0 > 0 && k > 0 {
						ldqFree := ldqSizeF - ldq0 - ldq1
						if own := ldqCap - ldq0; own < ldqFree {
							ldqFree = own
						}
						if lim := int(ldqFree * invL0); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 3
							}
						}
					}
					if !stqDead && storeR0 > 0 && k > 0 {
						stqFree := stqSizeF - stq0 - stq1
						if own := stqCap - stq0; own < stqFree {
							stqFree = own
						}
						if lim := int(stqFree * invS0); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 4
							}
						}
					}
					if k <= 0 {
						if hasMiss0 {
							cnt0.memLatCnt++
						} else {
							cnt0.countStall(cause)
						}
					} else {
						dispatched = true
						slots -= k
						robUsed += k
						rob0 += k
						if hasMiss0 {
							iqH0 += depF0 * float64(k)
						}
						if !ldqDead {
							ldq0 += loadR0 * float64(k)
						}
						if !stqDead {
							stq0 += storeR0 * float64(k)
						}
						cnt0.spec += uint64(k)
						win0 -= k
						pb0 -= uint64(k)
						if win0 <= supMax0 || pb0 < uint64(supMax0) {
							stop = true
						}
					}
				}
			}
			if active1 {
				if frozen1 {
					// Blocked on its miss for the whole span: the supply
					// dither still advances before the cascade discards it,
					// exactly as in step().
					acc1 += frac1
					if acc1 >= 1 {
						acc1--
					}
					cnt1.memLatCnt++
				} else if fe1 > 0 {
					fe1--
					cnt1.feCnt++
				} else {
					supply := base1
					acc1 += frac1
					if acc1 >= 1 {
						supply++
						acc1--
					}
					k := supply
					cause := 0
					if win1 < k {
						k = win1
					}
					if slots < k {
						k = slots
						if slots == 0 {
							cause = 1
						}
					}
					if free := robSize - robUsed; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					if free := robCap - rob1; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					iqFree := iqSizeF - iqH0 - iqH1
					if own := iqCap - iqH1; own < iqFree {
						iqFree = own
					}
					if iqFree < 1 {
						k = 0
						cause = 5
					} else if hasMiss1 && depF1 > 0 {
						if lim := int(iqFree * invD1); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 5
							}
						}
					}
					if !ldqDead && loadR1 > 0 && k > 0 {
						ldqFree := ldqSizeF - ldq0 - ldq1
						if own := ldqCap - ldq1; own < ldqFree {
							ldqFree = own
						}
						if lim := int(ldqFree * invL1); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 3
							}
						}
					}
					if !stqDead && storeR1 > 0 && k > 0 {
						stqFree := stqSizeF - stq0 - stq1
						if own := stqCap - stq1; own < stqFree {
							stqFree = own
						}
						if lim := int(stqFree * invS1); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 4
							}
						}
					}
					if k <= 0 {
						if hasMiss1 {
							cnt1.memLatCnt++
						} else {
							cnt1.countStall(cause)
						}
					} else {
						dispatched = true
						slots -= k
						rob1 += k
						if hasMiss1 {
							iqH1 += depF1 * float64(k)
						}
						if !ldqDead {
							ldq1 += loadR1 * float64(k)
						}
						if !stqDead {
							stq1 += storeR1 * float64(k)
						}
						cnt1.spec += uint64(k)
						win1 -= k
						pb1 -= uint64(k)
						if win1 <= supMax1 || pb1 < uint64(supMax1) {
							stop = true
						}
					}
				}
			}
			if dispatched {
				stallStreak = 0
			} else {
				// Dispatch has gone quiescent: a live thread has blocked
				// mid-span. Hand the window back so the bulk tier can
				// skip it in O(1) instead of this loop grinding it out.
				stallStreak++
				if stallStreak >= 8 {
					stop = true
				}
			}
			continue
		}
		runOdd = false
		// ===== cycle with thread 1 first ==============================
		dispatched := false
		retireLeft := retireW
		if active1 && !hasMiss1 && rob1 > 0 {
			k := rob1
			if k > retireLeft {
				k = retireLeft
			}
			retireLeft -= k
			rob1 -= k
			if !ldqDead {
				ldq1 -= loadR1 * float64(k)
				if ldq1 < 0 {
					ldq1 = 0
				}
			}
			if !stqDead {
				stq1 -= storeR1 * float64(k)
				if stq1 < 0 {
					stq1 = 0
				}
			}
			if rob1 == 0 {
				ldq1, stq1 = 0, 0
			}
			cnt1.ret += uint64(k)
		}
		if active0 && !hasMiss0 && rob0 > 0 && retireLeft > 0 {
			k := rob0
			if k > retireLeft {
				k = retireLeft
			}
			rob0 -= k
			if !ldqDead {
				ldq0 -= loadR0 * float64(k)
				if ldq0 < 0 {
					ldq0 = 0
				}
			}
			if !stqDead {
				stq0 -= storeR0 * float64(k)
				if stq0 < 0 {
					stq0 = 0
				}
			}
			if rob0 == 0 {
				ldq0, stq0 = 0, 0
			}
			cnt0.ret += uint64(k)
		}
		slots := dispW
		robUsed := rob0 + rob1
		if active1 {
			if frozen1 {
				// Blocked on its miss for the whole span: the supply
				// dither still advances before the cascade discards it,
				// exactly as in step().
				acc1 += frac1
				if acc1 >= 1 {
					acc1--
				}
				cnt1.memLatCnt++
			} else if fe1 > 0 {
				fe1--
				cnt1.feCnt++
			} else {
				supply := base1
				acc1 += frac1
				if acc1 >= 1 {
					supply++
					acc1--
				}
				k := supply
				cause := 0
				if win1 < k {
					k = win1
				}
				if slots < k {
					k = slots
					if slots == 0 {
						cause = 1
					}
				}
				if free := robSize - robUsed; free < k {
					k = free
					if free <= 0 {
						k = 0
						cause = 2
					}
				}
				if free := robCap - rob1; free < k {
					k = free
					if free <= 0 {
						k = 0
						cause = 2
					}
				}
				iqFree := iqSizeF - iqH0 - iqH1
				if own := iqCap - iqH1; own < iqFree {
					iqFree = own
				}
				if iqFree < 1 {
					k = 0
					cause = 5
				} else if hasMiss1 && depF1 > 0 {
					if lim := int(iqFree * invD1); lim < k {
						k = lim
						if lim <= 0 {
							k = 0
							cause = 5
						}
					}
				}
				if !ldqDead && loadR1 > 0 && k > 0 {
					ldqFree := ldqSizeF - ldq0 - ldq1
					if own := ldqCap - ldq1; own < ldqFree {
						ldqFree = own
					}
					if lim := int(ldqFree * invL1); lim < k {
						k = lim
						if lim <= 0 {
							k = 0
							cause = 3
						}
					}
				}
				if !stqDead && storeR1 > 0 && k > 0 {
					stqFree := stqSizeF - stq0 - stq1
					if own := stqCap - stq1; own < stqFree {
						stqFree = own
					}
					if lim := int(stqFree * invS1); lim < k {
						k = lim
						if lim <= 0 {
							k = 0
							cause = 4
						}
					}
				}
				if k <= 0 {
					if hasMiss1 {
						cnt1.memLatCnt++
					} else {
						cnt1.countStall(cause)
					}
				} else {
					dispatched = true
					slots -= k
					robUsed += k
					rob1 += k
					if hasMiss1 {
						iqH1 += depF1 * float64(k)
					}
					if !ldqDead {
						ldq1 += loadR1 * float64(k)
					}
					if !stqDead {
						stq1 += storeR1 * float64(k)
					}
					cnt1.spec += uint64(k)
					win1 -= k
					pb1 -= uint64(k)
					if win1 <= supMax1 || pb1 < uint64(supMax1) {
						stop = true
					}
				}
			}
		}
		if active0 {
			if frozen0 {
				// Blocked on its miss for the whole span: the supply
				// dither still advances before the cascade discards it,
				// exactly as in step().
				acc0 += frac0
				if acc0 >= 1 {
					acc0--
				}
				cnt0.memLatCnt++
			} else if fe0 > 0 {
				fe0--
				cnt0.feCnt++
			} else {
				supply := base0
				acc0 += frac0
				if acc0 >= 1 {
					supply++
					acc0--
				}
				k := supply
				cause := 0
				if win0 < k {
					k = win0
				}
				if slots < k {
					k = slots
					if slots == 0 {
						cause = 1
					}
				}
				if free := robSize - robUsed; free < k {
					k = free
					if free <= 0 {
						k = 0
						cause = 2
					}
				}
				if free := robCap - rob0; free < k {
					k = free
					if free <= 0 {
						k = 0
						cause = 2
					}
				}
				iqFree := iqSizeF - iqH0 - iqH1
				if own := iqCap - iqH0; own < iqFree {
					iqFree = own
				}
				if iqFree < 1 {
					k = 0
					cause = 5
				} else if hasMiss0 && depF0 > 0 {
					if lim := int(iqFree * invD0); lim < k {
						k = lim
						if lim <= 0 {
							k = 0
							cause = 5
						}
					}
				}
				if !ldqDead && loadR0 > 0 && k > 0 {
					ldqFree := ldqSizeF - ldq0 - ldq1
					if own := ldqCap - ldq0; own < ldqFree {
						ldqFree = own
					}
					if lim := int(ldqFree * invL0); lim < k {
						k = lim
						if lim <= 0 {
							k = 0
							cause = 3
						}
					}
				}
				if !stqDead && storeR0 > 0 && k > 0 {
					stqFree := stqSizeF - stq0 - stq1
					if own := stqCap - stq0; own < stqFree {
						stqFree = own
					}
					if lim := int(stqFree * invS0); lim < k {
						k = lim
						if lim <= 0 {
							k = 0
							cause = 4
						}
					}
				}
				if k <= 0 {
					if hasMiss0 {
						cnt0.memLatCnt++
					} else {
						cnt0.countStall(cause)
					}
				} else {
					dispatched = true
					slots -= k
					rob0 += k
					if hasMiss0 {
						iqH0 += depF0 * float64(k)
					}
					if !ldqDead {
						ldq0 += loadR0 * float64(k)
					}
					if !stqDead {
						stq0 += storeR0 * float64(k)
					}
					cnt0.spec += uint64(k)
					win0 -= k
					pb0 -= uint64(k)
					if win0 <= supMax0 || pb0 < uint64(supMax0) {
						stop = true
					}
				}
			}
		}
		if dispatched {
			stallStreak = 0
		} else {
			// Dispatch has gone quiescent: a live thread has blocked
			// mid-span. Hand the window back so the bulk tier can
			// skip it in O(1) instead of this loop grinding it out.
			stallStreak++
			if stallStreak >= 8 {
				stop = true
			}
		}
	}

	// --- flush (i, not n: the dynamic window/phase guards may have ended
	// the span early) ------------------------------------------------------
	c.cycle += i
	c.prio = (c.prio + int(i&1)) & 1
	if active0 {
		t0.robHeld, t0.window, t0.feLeft = rob0, win0, fe0
		t0.iqHeld, t0.ldqHeld, t0.stqHeld = iqH0, ldq0, stq0
		t0.ilpAcc = acc0
		if hasMiss0 {
			t0.missLeft -= int(i)
		}
		flushLite(t0, i, &cnt0)
	}
	if active1 {
		t1.robHeld, t1.window, t1.feLeft = rob1, win1, fe1
		t1.iqHeld, t1.ldqHeld, t1.stqHeld = iqH1, ldq1, stq1
		t1.ilpAcc = acc1
		if hasMiss1 {
			t1.missLeft -= int(i)
		}
		flushLite(t1, i, &cnt1)
	}
	return i
}

// countStall records one zero-dispatch cycle with step()'s cause
// attribution (1 slots, 2 ROB, 3 LDQ, 4 STQ, 5 IQ, else other).
func (cnt *liteCounters) countStall(cause int) {
	switch cause {
	case 1:
		cnt.slotsCnt++
	case 2:
		cnt.robCnt++
	case 3:
		cnt.ldqCnt++
	case 4:
		cnt.stqCnt++
	case 5:
		cnt.iqCnt++
	default:
		cnt.otherCnt++
	}
}

// flushLite writes one thread's accumulated counters to its bank and
// instance.
func flushLite(t *thread, n uint64, cnt *liteCounters) {
	b := t.bank
	b.Add(pmu.CPUCycles, n)
	if cnt.spec > 0 {
		b.Add(pmu.InstSpec, cnt.spec)
	}
	if cnt.ret > 0 {
		b.Add(pmu.InstRetired, cnt.ret)
		t.inst.Retired += cnt.ret
	}
	if cnt.feCnt > 0 {
		b.Add(pmu.StallFrontend, cnt.feCnt)
		if t.feKind == evICache {
			b.Add(pmu.StallFEICache, cnt.feCnt)
		} else {
			b.Add(pmu.StallFEBranch, cnt.feCnt)
		}
	}
	be := cnt.slotsCnt + cnt.robCnt + cnt.ldqCnt + cnt.stqCnt +
		cnt.iqCnt + cnt.otherCnt + cnt.memLatCnt
	if be > 0 {
		b.Add(pmu.StallBackend, be)
		if cnt.memLatCnt > 0 {
			b.Add(pmu.StallBEMemLat, cnt.memLatCnt)
		}
		if cnt.slotsCnt > 0 {
			b.Add(pmu.StallBESlots, cnt.slotsCnt)
		}
		if cnt.robCnt > 0 {
			b.Add(pmu.StallBEROB, cnt.robCnt)
		}
		if cnt.iqCnt > 0 {
			b.Add(pmu.StallBEIQ, cnt.iqCnt)
		}
		if cnt.ldqCnt > 0 {
			b.Add(pmu.StallBELDQ, cnt.ldqCnt)
		}
		if cnt.stqCnt > 0 {
			b.Add(pmu.StallBESTQ, cnt.stqCnt)
		}
		if cnt.otherCnt > 0 {
			b.Add(pmu.StallBEOther, cnt.otherCnt)
		}
	}
	if cnt.spec > 0 {
		// INST_SPEC counts exactly the dispatched µops, so it doubles as
		// the phase-advancement total.
		t.inst.AdvanceDispatched(cnt.spec)
	}
}
