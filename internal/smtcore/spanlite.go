// Steady/active span — the lean scalarised tier of the fast-forward engine.
//
// This tier executes long runs of cycles entirely on scalar locals,
// transcribing step()'s per-cycle arithmetic operation for operation with
// the dispatch-priority alternation unrolled into the two cycle parities so
// that no dynamically indexed state remains and the whole cycle body
// register-allocates. Unlike the original event-free-span design (which the
// generic tier in spanliten.go still uses), this tier handles the regime
// changes *inline* instead of ending the span at every one of them:
//
//   - a consumed event window fires its stall event on the spot: the thread
//     state is synced back, the shared fireEvent runs (same RNG stream,
//     same arithmetic), and the span continues with the reloaded state;
//   - outstanding misses count down in a per-cycle timer stage mirroring
//     step(), and the expiry drains iqHeld exactly where step() drains it;
//   - phase boundaries are detected by a local countdown of the distance
//     InstsToPhaseBoundary reported, and the crossing refreshes the
//     contention rates at the end of the crossing cycle — the same point
//     step() refreshes them — before the span continues;
//   - a thread that goes miss-blocked freezes — its cascade collapses to
//     the fixed zero-dispatch signature — once dispatchBlockedOwn proves
//     the blocked-ness invariant until the expiry (the thread's own state
//     cannot change while it neither dispatches, retires nor fires events).
//
// A span therefore ends only at the cycle limit or when every active
// thread has gone dormant (the bulk tier in fastforward.go then skips the
// dormant window in O(1)). PMU counters accumulate in scalars and flush
// once per span. The per-span screening and flush overhead that dominated
// the short event-free spans is amortised over thousands of cycles.
//
// The parity bodies are deliberate near-duplicates of each other and of
// step(): the duplication is what buys the register allocation. The file is
// generated-style mechanical code; the differential test in
// fastforward_test.go pins every operation to the reference loop.
package smtcore

import "synpa/internal/pmu"

// minSpan is the shortest span worth the setup/flush overhead of the
// event-free generic tier (spanliten.go); anything shorter runs through
// step(). The SMT2 tier has no such bound — its spans end only at regime
// dormancy or the cycle limit.
const minSpan = 4

// liteCounters accumulates one thread's per-cycle PMU signatures over a
// span. The SMT2 tier splits frontend stalls by cause (feICnt/feBCnt)
// because a span can now cover stalls of both kinds; the generic tier keeps
// the single feCnt with its span-constant kind.
type liteCounters struct {
	spec, ret                        uint64
	feCnt                            uint64
	feICnt, feBCnt                   uint64
	slotsCnt, robCnt, ldqCnt, stqCnt uint64
	iqCnt, otherCnt, memLatCnt       uint64
}

// runSpanLite executes up to limit cycles through the lean scalarised
// engine, returning the number executed (0 when the tier does not apply).
// The SMT2 configuration runs the inline-event tier below; other levels run
// the generic event-free-span variant in spanliten.go.
func (c *Core) runSpanLite(limit uint64) uint64 {
	if len(c.threads) == 2 {
		return c.runSpanLite2(limit)
	}
	return c.runSpanLiteN(limit)
}

// runSpanLite2 is the SMT2 tier: every per-thread quantity lives in a
// scalar local, the two dispatch-priority parities are unrolled, and stall
// events, miss expiries and phase crossings are handled inline so that the
// span only ends at the limit or at full dormancy.
func (c *Core) runSpanLite2(limit uint64) uint64 {
	t0, t1 := &c.threads[0], &c.threads[1]
	active0, active1 := t0.inst != nil, t1.inst != nil
	if (!active0 && !active1) || limit == 0 {
		return 0
	}
	n := limit

	// --- hoist state into scalar locals ------------------------------------
	dispW, retireW := c.cfg.DispatchWidth, c.cfg.RetireWidth
	robSize := c.cfg.ROBSize
	robCap := c.robCap
	iqSizeF := float64(c.cfg.IQSize)
	ldqSizeF := float64(c.cfg.LDQSize)
	stqSizeF := float64(c.cfg.STQSize)
	iqCap := c.iqCap
	ldqCap, stqCap := c.ldqCap, c.stqCap
	ldqDead, stqDead := c.ldqDead, c.stqDead
	var (
		rob0, win0, fe0, miss0, kind0 int
		rob1, win1, fe1, miss1, kind1 int
		iqH0, ldq0, stq0              float64
		iqH1, ldq1, stq1              float64
		acc0, frac0, acc1, frac1      float64
		base0, base1                  int
		loadR0, storeR0               float64
		loadR1, storeR1               float64
		depF0, depF1                  float64
		invD0, invD1                  float64
		invL0, invS0, invL1, invS1    float64
		pb0, pb1                      int64
		specPend0, specPend1          uint64
		frozen0, frozen1              bool
		cnt0, cnt1                    liteCounters
	)
	if active0 {
		rob0, win0, fe0, miss0, kind0 = t0.robHeld, t0.window, t0.feLeft, t0.missLeft, t0.feKind
		iqH0, ldq0, stq0 = t0.iqHeld, t0.ldqHeld, t0.stqHeld
		acc0, frac0, base0 = t0.ilpAcc, t0.ilpFrac, t0.ilpBase
		loadR0, storeR0, depF0 = t0.loadRatio, t0.storeRatio, t0.depFrac
		invD0, invL0, invS0 = t0.invDepFrac, t0.invLoadRatio, t0.invStoreRatio
		pb0 = int64(t0.inst.InstsToPhaseBoundary())
	}
	if active1 {
		rob1, win1, fe1, miss1, kind1 = t1.robHeld, t1.window, t1.feLeft, t1.missLeft, t1.feKind
		iqH1, ldq1, stq1 = t1.iqHeld, t1.ldqHeld, t1.stqHeld
		acc1, frac1, base1 = t1.ilpAcc, t1.ilpFrac, t1.ilpBase
		loadR1, storeR1, depF1 = t1.loadRatio, t1.storeRatio, t1.depFrac
		invD1, invL1, invS1 = t1.invDepFrac, t1.invLoadRatio, t1.invStoreRatio
		pb1 = int64(t1.inst.InstsToPhaseBoundary())
	}

	i := uint64(0)
	stop := false
	crossed := false
	stallStreak := 0
	runOdd := c.prio == 1

	for i < n && !stop {
		i++
		dispatched := false
		if !runOdd {
			runOdd = true
			// ===== cycle with thread 0 first ==========================
			retireLeft := retireW
			if active0 && miss0 == 0 && rob0 > 0 {
				k := rob0
				if k > retireLeft {
					k = retireLeft
				}
				retireLeft -= k
				rob0 -= k
				if !ldqDead {
					ldq0 -= loadR0 * float64(k)
					if ldq0 < 0 {
						ldq0 = 0
					}
				}
				if !stqDead {
					stq0 -= storeR0 * float64(k)
					if stq0 < 0 {
						stq0 = 0
					}
				}
				if rob0 == 0 {
					ldq0, stq0 = 0, 0
				}
				cnt0.ret += uint64(k)
			}
			if active1 && miss1 == 0 && rob1 > 0 && retireLeft > 0 {
				k := rob1
				if k > retireLeft {
					k = retireLeft
				}
				rob1 -= k
				if !ldqDead {
					ldq1 -= loadR1 * float64(k)
					if ldq1 < 0 {
						ldq1 = 0
					}
				}
				if !stqDead {
					stq1 -= storeR1 * float64(k)
					if stq1 < 0 {
						stq1 = 0
					}
				}
				if rob1 == 0 {
					ldq1, stq1 = 0, 0
				}
				cnt1.ret += uint64(k)
			}
			// --- miss timers (index order, mirrors step) -----------------
			if active0 && miss0 > 0 {
				if miss0--; miss0 == 0 {
					iqH0 = 0
					frozen0 = false
				}
			}
			if active1 && miss1 > 0 {
				if miss1--; miss1 == 0 {
					iqH1 = 0
					frozen1 = false
				}
			}
			// --- dispatch stage ------------------------------------------
			slots := dispW
			robUsed := rob0 + rob1
			if active0 {
				if frozen0 {
					// Miss-blocked with the blocked-ness proven invariant:
					// the supply dither still advances before the cascade
					// discards it, exactly as in step().
					acc0 += frac0
					if acc0 >= 1 {
						acc0--
					}
					cnt0.memLatCnt++
				} else if fe0 > 0 {
					fe0--
					if kind0 == evICache {
						cnt0.feICnt++
					} else {
						cnt0.feBCnt++
					}
				} else {
					supply := base0
					acc0 += frac0
					if acc0 >= 1 {
						supply++
						acc0--
					}
					k := supply
					cause := 0
					if win0 < k {
						k = win0
					}
					if slots < k {
						k = slots
						if slots == 0 {
							cause = 1
						}
					}
					if free := robSize - robUsed; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					if free := robCap - rob0; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					iqFree := iqSizeF - iqH0 - iqH1
					if own := iqCap - iqH0; own < iqFree {
						iqFree = own
					}
					if iqFree < 1 {
						k = 0
						cause = 5
					} else if miss0 > 0 && depF0 > 0 {
						if lim := int(iqFree * invD0); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 5
							}
						}
					}
					if !ldqDead && loadR0 > 0 && k > 0 {
						ldqFree := ldqSizeF - ldq0 - ldq1
						if own := ldqCap - ldq0; own < ldqFree {
							ldqFree = own
						}
						if lim := int(ldqFree * invL0); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 3
							}
						}
					}
					if !stqDead && storeR0 > 0 && k > 0 {
						stqFree := stqSizeF - stq0 - stq1
						if own := stqCap - stq0; own < stqFree {
							stqFree = own
						}
						if lim := int(stqFree * invS0); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 4
							}
						}
					}
					if k <= 0 {
						if miss0 > 0 {
							cnt0.memLatCnt++
							// Zero-dispatch under an own miss: if the
							// thread's own partition caps alone block it,
							// the outcome is invariant until the expiry
							// (nothing it does can change its own state),
							// so the cascade can freeze.
							t0.robHeld, t0.iqHeld, t0.ldqHeld, t0.stqHeld = rob0, iqH0, ldq0, stq0
							t0.missLeft = miss0
							if c.dispatchBlockedOwn(t0) {
								frozen0 = true
							}
						} else {
							cnt0.countStall(cause)
						}
					} else {
						dispatched = true
						slots -= k
						robUsed += k
						rob0 += k
						if miss0 > 0 {
							iqH0 += depF0 * float64(k)
						}
						if !ldqDead {
							ldq0 += loadR0 * float64(k)
						}
						if !stqDead {
							stq0 += storeR0 * float64(k)
						}
						cnt0.spec += uint64(k)
						specPend0 += uint64(k)
						win0 -= k
						if pb0 -= int64(k); pb0 <= 0 {
							crossed = true
						}
						if win0 == 0 {
							// Window exhausted: fire the stall event exactly
							// where step() does, via the shared fireEvent on
							// synced thread state (same RNG stream).
							t0.robHeld, t0.iqHeld, t0.ldqHeld, t0.stqHeld = rob0, iqH0, ldq0, stq0
							t0.missLeft, t0.feLeft, t0.window = miss0, 0, 0
							t0.fireEvent()
							rob0, iqH0, ldq0, stq0 = t0.robHeld, t0.iqHeld, t0.ldqHeld, t0.stqHeld
							miss0, fe0, kind0, win0 = t0.missLeft, t0.feLeft, t0.feKind, t0.window
						}
					}
				}
			}
			if active1 {
				if frozen1 {
					// Miss-blocked with the blocked-ness proven invariant:
					// the supply dither still advances before the cascade
					// discards it, exactly as in step().
					acc1 += frac1
					if acc1 >= 1 {
						acc1--
					}
					cnt1.memLatCnt++
				} else if fe1 > 0 {
					fe1--
					if kind1 == evICache {
						cnt1.feICnt++
					} else {
						cnt1.feBCnt++
					}
				} else {
					supply := base1
					acc1 += frac1
					if acc1 >= 1 {
						supply++
						acc1--
					}
					k := supply
					cause := 0
					if win1 < k {
						k = win1
					}
					if slots < k {
						k = slots
						if slots == 0 {
							cause = 1
						}
					}
					if free := robSize - robUsed; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					if free := robCap - rob1; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					iqFree := iqSizeF - iqH0 - iqH1
					if own := iqCap - iqH1; own < iqFree {
						iqFree = own
					}
					if iqFree < 1 {
						k = 0
						cause = 5
					} else if miss1 > 0 && depF1 > 0 {
						if lim := int(iqFree * invD1); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 5
							}
						}
					}
					if !ldqDead && loadR1 > 0 && k > 0 {
						ldqFree := ldqSizeF - ldq0 - ldq1
						if own := ldqCap - ldq1; own < ldqFree {
							ldqFree = own
						}
						if lim := int(ldqFree * invL1); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 3
							}
						}
					}
					if !stqDead && storeR1 > 0 && k > 0 {
						stqFree := stqSizeF - stq0 - stq1
						if own := stqCap - stq1; own < stqFree {
							stqFree = own
						}
						if lim := int(stqFree * invS1); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 4
							}
						}
					}
					if k <= 0 {
						if miss1 > 0 {
							cnt1.memLatCnt++
							t1.robHeld, t1.iqHeld, t1.ldqHeld, t1.stqHeld = rob1, iqH1, ldq1, stq1
							t1.missLeft = miss1
							if c.dispatchBlockedOwn(t1) {
								frozen1 = true
							}
						} else {
							cnt1.countStall(cause)
						}
					} else {
						dispatched = true
						slots -= k
						rob1 += k
						if miss1 > 0 {
							iqH1 += depF1 * float64(k)
						}
						if !ldqDead {
							ldq1 += loadR1 * float64(k)
						}
						if !stqDead {
							stq1 += storeR1 * float64(k)
						}
						cnt1.spec += uint64(k)
						specPend1 += uint64(k)
						win1 -= k
						if pb1 -= int64(k); pb1 <= 0 {
							crossed = true
						}
						if win1 == 0 {
							t1.robHeld, t1.iqHeld, t1.ldqHeld, t1.stqHeld = rob1, iqH1, ldq1, stq1
							t1.missLeft, t1.feLeft, t1.window = miss1, 0, 0
							t1.fireEvent()
							rob1, iqH1, ldq1, stq1 = t1.robHeld, t1.iqHeld, t1.ldqHeld, t1.stqHeld
							miss1, fe1, kind1, win1 = t1.missLeft, t1.feLeft, t1.feKind, t1.window
						}
					}
				}
			}
		} else {
			runOdd = false
			// ===== cycle with thread 1 first ==============================
			retireLeft := retireW
			if active1 && miss1 == 0 && rob1 > 0 {
				k := rob1
				if k > retireLeft {
					k = retireLeft
				}
				retireLeft -= k
				rob1 -= k
				if !ldqDead {
					ldq1 -= loadR1 * float64(k)
					if ldq1 < 0 {
						ldq1 = 0
					}
				}
				if !stqDead {
					stq1 -= storeR1 * float64(k)
					if stq1 < 0 {
						stq1 = 0
					}
				}
				if rob1 == 0 {
					ldq1, stq1 = 0, 0
				}
				cnt1.ret += uint64(k)
			}
			if active0 && miss0 == 0 && rob0 > 0 && retireLeft > 0 {
				k := rob0
				if k > retireLeft {
					k = retireLeft
				}
				rob0 -= k
				if !ldqDead {
					ldq0 -= loadR0 * float64(k)
					if ldq0 < 0 {
						ldq0 = 0
					}
				}
				if !stqDead {
					stq0 -= storeR0 * float64(k)
					if stq0 < 0 {
						stq0 = 0
					}
				}
				if rob0 == 0 {
					ldq0, stq0 = 0, 0
				}
				cnt0.ret += uint64(k)
			}
			// --- miss timers (index order, mirrors step) -----------------
			if active0 && miss0 > 0 {
				if miss0--; miss0 == 0 {
					iqH0 = 0
					frozen0 = false
				}
			}
			if active1 && miss1 > 0 {
				if miss1--; miss1 == 0 {
					iqH1 = 0
					frozen1 = false
				}
			}
			// --- dispatch stage ------------------------------------------
			slots := dispW
			robUsed := rob0 + rob1
			if active1 {
				if frozen1 {
					// Miss-blocked with the blocked-ness proven invariant:
					// the supply dither still advances before the cascade
					// discards it, exactly as in step().
					acc1 += frac1
					if acc1 >= 1 {
						acc1--
					}
					cnt1.memLatCnt++
				} else if fe1 > 0 {
					fe1--
					if kind1 == evICache {
						cnt1.feICnt++
					} else {
						cnt1.feBCnt++
					}
				} else {
					supply := base1
					acc1 += frac1
					if acc1 >= 1 {
						supply++
						acc1--
					}
					k := supply
					cause := 0
					if win1 < k {
						k = win1
					}
					if slots < k {
						k = slots
						if slots == 0 {
							cause = 1
						}
					}
					if free := robSize - robUsed; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					if free := robCap - rob1; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					iqFree := iqSizeF - iqH0 - iqH1
					if own := iqCap - iqH1; own < iqFree {
						iqFree = own
					}
					if iqFree < 1 {
						k = 0
						cause = 5
					} else if miss1 > 0 && depF1 > 0 {
						if lim := int(iqFree * invD1); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 5
							}
						}
					}
					if !ldqDead && loadR1 > 0 && k > 0 {
						ldqFree := ldqSizeF - ldq0 - ldq1
						if own := ldqCap - ldq1; own < ldqFree {
							ldqFree = own
						}
						if lim := int(ldqFree * invL1); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 3
							}
						}
					}
					if !stqDead && storeR1 > 0 && k > 0 {
						stqFree := stqSizeF - stq0 - stq1
						if own := stqCap - stq1; own < stqFree {
							stqFree = own
						}
						if lim := int(stqFree * invS1); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 4
							}
						}
					}
					if k <= 0 {
						if miss1 > 0 {
							cnt1.memLatCnt++
							t1.robHeld, t1.iqHeld, t1.ldqHeld, t1.stqHeld = rob1, iqH1, ldq1, stq1
							t1.missLeft = miss1
							if c.dispatchBlockedOwn(t1) {
								frozen1 = true
							}
						} else {
							cnt1.countStall(cause)
						}
					} else {
						dispatched = true
						slots -= k
						robUsed += k
						rob1 += k
						if miss1 > 0 {
							iqH1 += depF1 * float64(k)
						}
						if !ldqDead {
							ldq1 += loadR1 * float64(k)
						}
						if !stqDead {
							stq1 += storeR1 * float64(k)
						}
						cnt1.spec += uint64(k)
						specPend1 += uint64(k)
						win1 -= k
						if pb1 -= int64(k); pb1 <= 0 {
							crossed = true
						}
						if win1 == 0 {
							t1.robHeld, t1.iqHeld, t1.ldqHeld, t1.stqHeld = rob1, iqH1, ldq1, stq1
							t1.missLeft, t1.feLeft, t1.window = miss1, 0, 0
							t1.fireEvent()
							rob1, iqH1, ldq1, stq1 = t1.robHeld, t1.iqHeld, t1.ldqHeld, t1.stqHeld
							miss1, fe1, kind1, win1 = t1.missLeft, t1.feLeft, t1.feKind, t1.window
						}
					}
				}
			}
			if active0 {
				if frozen0 {
					// Miss-blocked with the blocked-ness proven invariant:
					// the supply dither still advances before the cascade
					// discards it, exactly as in step().
					acc0 += frac0
					if acc0 >= 1 {
						acc0--
					}
					cnt0.memLatCnt++
				} else if fe0 > 0 {
					fe0--
					if kind0 == evICache {
						cnt0.feICnt++
					} else {
						cnt0.feBCnt++
					}
				} else {
					supply := base0
					acc0 += frac0
					if acc0 >= 1 {
						supply++
						acc0--
					}
					k := supply
					cause := 0
					if win0 < k {
						k = win0
					}
					if slots < k {
						k = slots
						if slots == 0 {
							cause = 1
						}
					}
					if free := robSize - robUsed; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					if free := robCap - rob0; free < k {
						k = free
						if free <= 0 {
							k = 0
							cause = 2
						}
					}
					iqFree := iqSizeF - iqH0 - iqH1
					if own := iqCap - iqH0; own < iqFree {
						iqFree = own
					}
					if iqFree < 1 {
						k = 0
						cause = 5
					} else if miss0 > 0 && depF0 > 0 {
						if lim := int(iqFree * invD0); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 5
							}
						}
					}
					if !ldqDead && loadR0 > 0 && k > 0 {
						ldqFree := ldqSizeF - ldq0 - ldq1
						if own := ldqCap - ldq0; own < ldqFree {
							ldqFree = own
						}
						if lim := int(ldqFree * invL0); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 3
							}
						}
					}
					if !stqDead && storeR0 > 0 && k > 0 {
						stqFree := stqSizeF - stq0 - stq1
						if own := stqCap - stq0; own < stqFree {
							stqFree = own
						}
						if lim := int(stqFree * invS0); lim < k {
							k = lim
							if lim <= 0 {
								k = 0
								cause = 4
							}
						}
					}
					if k <= 0 {
						if miss0 > 0 {
							cnt0.memLatCnt++
							t0.robHeld, t0.iqHeld, t0.ldqHeld, t0.stqHeld = rob0, iqH0, ldq0, stq0
							t0.missLeft = miss0
							if c.dispatchBlockedOwn(t0) {
								frozen0 = true
							}
						} else {
							cnt0.countStall(cause)
						}
					} else {
						dispatched = true
						slots -= k
						rob0 += k
						if miss0 > 0 {
							iqH0 += depF0 * float64(k)
						}
						if !ldqDead {
							ldq0 += loadR0 * float64(k)
						}
						if !stqDead {
							stq0 += storeR0 * float64(k)
						}
						cnt0.spec += uint64(k)
						specPend0 += uint64(k)
						win0 -= k
						if pb0 -= int64(k); pb0 <= 0 {
							crossed = true
						}
						if win0 == 0 {
							t0.robHeld, t0.iqHeld, t0.ldqHeld, t0.stqHeld = rob0, iqH0, ldq0, stq0
							t0.missLeft, t0.feLeft, t0.window = miss0, 0, 0
							t0.fireEvent()
							rob0, iqH0, ldq0, stq0 = t0.robHeld, t0.iqHeld, t0.ldqHeld, t0.stqHeld
							miss0, fe0, kind0, win0 = t0.missLeft, t0.feLeft, t0.feKind, t0.window
						}
					}
				}
			}
		}

		// --- end of cycle -------------------------------------------------
		if crossed {
			// A phase boundary was crossed this cycle: advance the pending
			// dispatched counts (AdvanceDispatched is chunk-associative, so
			// the deferred advance equals step()'s per-dispatch advances)
			// and refresh the contention rates exactly where step() does —
			// at the end of the crossing cycle.
			crossed = false
			if specPend0 > 0 {
				t0.inst.AdvanceDispatched(specPend0)
				specPend0 = 0
			}
			if specPend1 > 0 {
				t1.inst.AdvanceDispatched(specPend1)
				specPend1 = 0
			}
			c.refreshRates()
			if active0 {
				base0, frac0 = t0.ilpBase, t0.ilpFrac
				loadR0, storeR0, depF0 = t0.loadRatio, t0.storeRatio, t0.depFrac
				invD0, invL0, invS0 = t0.invDepFrac, t0.invLoadRatio, t0.invStoreRatio
				pb0 = int64(t0.inst.InstsToPhaseBoundary())
			}
			if active1 {
				base1, frac1 = t1.ilpBase, t1.ilpFrac
				loadR1, storeR1, depF1 = t1.loadRatio, t1.storeRatio, t1.depFrac
				invD1, invL1, invS1 = t1.invDepFrac, t1.invLoadRatio, t1.invStoreRatio
				pb1 = int64(t1.inst.InstsToPhaseBoundary())
			}
		}
		if dispatched {
			stallStreak = 0
		} else {
			// No dispatch this cycle. If every active thread is provably
			// dormant (frozen on a miss or frontend-starved), hand the
			// window to the bulk tier in fastforward.go, which skips it in
			// O(1); otherwise a short streak of contention-stalled cycles
			// ends the span so the bulk tier can re-screen.
			if (!active0 || frozen0 || fe0 > 0) && (!active1 || frozen1 || fe1 > 0) {
				stop = true
			} else if stallStreak++; stallStreak >= 8 {
				stop = true
			}
		}
	}

	// --- flush --------------------------------------------------------------
	c.cycle += i
	c.prio = (c.prio + int(i&1)) & 1
	if active0 {
		t0.robHeld, t0.window, t0.feLeft, t0.missLeft = rob0, win0, fe0, miss0
		t0.iqHeld, t0.ldqHeld, t0.stqHeld = iqH0, ldq0, stq0
		t0.ilpAcc = acc0
		flushLite2(t0, i, &cnt0, specPend0)
	}
	if active1 {
		t1.robHeld, t1.window, t1.feLeft, t1.missLeft = rob1, win1, fe1, miss1
		t1.iqHeld, t1.ldqHeld, t1.stqHeld = iqH1, ldq1, stq1
		t1.ilpAcc = acc1
		flushLite2(t1, i, &cnt1, specPend1)
	}
	return i
}

// countStall records one zero-dispatch cycle with step()'s cause
// attribution (1 slots, 2 ROB, 3 LDQ, 4 STQ, 5 IQ, else other).
func (cnt *liteCounters) countStall(cause int) {
	switch cause {
	case 1:
		cnt.slotsCnt++
	case 2:
		cnt.robCnt++
	case 3:
		cnt.ldqCnt++
	case 4:
		cnt.stqCnt++
	case 5:
		cnt.iqCnt++
	default:
		cnt.otherCnt++
	}
}

// flushLite writes one thread's accumulated counters to its bank and
// instance — the event-free generic tier's flush, whose frontend stalls all
// share the span-constant kind in t.feKind.
func flushLite(t *thread, n uint64, cnt *liteCounters) {
	b := t.bank
	b.Add(pmu.CPUCycles, n)
	if cnt.spec > 0 {
		b.Add(pmu.InstSpec, cnt.spec)
	}
	if cnt.ret > 0 {
		b.Add(pmu.InstRetired, cnt.ret)
		t.inst.Retired += cnt.ret
	}
	if cnt.feCnt > 0 {
		b.Add(pmu.StallFrontend, cnt.feCnt)
		if t.feKind == evICache {
			b.Add(pmu.StallFEICache, cnt.feCnt)
		} else {
			b.Add(pmu.StallFEBranch, cnt.feCnt)
		}
	}
	flushBackend(t, cnt)
	if cnt.spec > 0 {
		// INST_SPEC counts exactly the dispatched µops, so it doubles as
		// the phase-advancement total.
		t.inst.AdvanceDispatched(cnt.spec)
	}
}

// flushLite2 is the SMT2 inline-event tier's flush: frontend stalls are
// split by cause counter (a span can cover stalls of both kinds), and only
// the still-pending dispatched count — the tail since the last inline phase
// sync — feeds AdvanceDispatched.
func flushLite2(t *thread, n uint64, cnt *liteCounters, pending uint64) {
	b := t.bank
	b.Add(pmu.CPUCycles, n)
	if cnt.spec > 0 {
		b.Add(pmu.InstSpec, cnt.spec)
	}
	if cnt.ret > 0 {
		b.Add(pmu.InstRetired, cnt.ret)
		t.inst.Retired += cnt.ret
	}
	if fe := cnt.feICnt + cnt.feBCnt; fe > 0 {
		b.Add(pmu.StallFrontend, fe)
		if cnt.feICnt > 0 {
			b.Add(pmu.StallFEICache, cnt.feICnt)
		}
		if cnt.feBCnt > 0 {
			b.Add(pmu.StallFEBranch, cnt.feBCnt)
		}
	}
	flushBackend(t, cnt)
	if pending > 0 {
		t.inst.AdvanceDispatched(pending)
	}
}

// flushBackend writes the accumulated backend-stall counters shared by both
// flush variants.
func flushBackend(t *thread, cnt *liteCounters) {
	b := t.bank
	be := cnt.slotsCnt + cnt.robCnt + cnt.ldqCnt + cnt.stqCnt +
		cnt.iqCnt + cnt.otherCnt + cnt.memLatCnt
	if be == 0 {
		return
	}
	b.Add(pmu.StallBackend, be)
	if cnt.memLatCnt > 0 {
		b.Add(pmu.StallBEMemLat, cnt.memLatCnt)
	}
	if cnt.slotsCnt > 0 {
		b.Add(pmu.StallBESlots, cnt.slotsCnt)
	}
	if cnt.robCnt > 0 {
		b.Add(pmu.StallBEROB, cnt.robCnt)
	}
	if cnt.iqCnt > 0 {
		b.Add(pmu.StallBEIQ, cnt.iqCnt)
	}
	if cnt.ldqCnt > 0 {
		b.Add(pmu.StallBELDQ, cnt.ldqCnt)
	}
	if cnt.stqCnt > 0 {
		b.Add(pmu.StallBESTQ, cnt.stqCnt)
	}
}
