package smtcore

import (
	"fmt"
	"testing"

	"synpa/internal/apps"
	"synpa/internal/pmu"
)

// enginePair is one application slot simulated twice: once on the reference
// per-cycle core and once on the fast-forwarding core, with identical seeds.
type enginePair struct {
	refInst, fastInst *apps.Instance
	refBank, fastBank *pmu.Bank
}

// newDiffCores builds a reference core and a fast-forward core with the
// given applications bound to matching slots and identical private streams.
func newDiffCores(names []string, seed uint64) (ref, fast *Core, slots []enginePair, err error) {
	return newDiffCoresCfg(DefaultConfig(), names, seed)
}

// newDiffCoresCfg is newDiffCores with an explicit core configuration (the
// SMT-level differential tests vary Config.SMTLevel).
func newDiffCoresCfg(cfg Config, names []string, seed uint64) (ref, fast *Core, slots []enginePair, err error) {
	ref = New(0, cfg)
	fast = New(0, cfg)
	fast.SetFastForward(true)
	// The reference core keeps full LDQ/STQ bookkeeping: the comparison
	// then also proves the fast engine's dead-clamp elision neutral.
	ref.forceLiveQueues = true
	for i, name := range names {
		if name == "" {
			continue
		}
		m, err := apps.ByName(name)
		if err != nil {
			return nil, nil, nil, err
		}
		p := enginePair{
			refInst:  apps.NewInstance(m, seed+uint64(i)),
			fastInst: apps.NewInstance(m, seed+uint64(i)),
			refBank:  &pmu.Bank{},
			fastBank: &pmu.Bank{},
		}
		p.refBank.Enable()
		p.fastBank.Enable()
		ref.Bind(i, p.refInst, p.refBank)
		fast.Bind(i, p.fastInst, p.fastBank)
		slots = append(slots, p)
	}
	return ref, fast, slots, nil
}

// assertLockstep runs both cores in quantum-sized chunks and asserts
// bit-identical observable state after every quantum.
func assertLockstep(t *testing.T, ref, fast *Core, slots []enginePair, quanta int, quantum uint64) {
	t.Helper()
	for q := 0; q < quanta; q++ {
		ref.Run(quantum)
		fast.Run(quantum)
		if ref.Cycle() != fast.Cycle() {
			t.Fatalf("quantum %d: cycle mismatch ref=%d fast=%d", q, ref.Cycle(), fast.Cycle())
		}
		for s, p := range slots {
			rb, fb := p.refBank.Read(), p.fastBank.Read()
			if rb != fb {
				for e := pmu.Event(0); e < pmu.NumEvents; e++ {
					if rb[e] != fb[e] {
						t.Errorf("quantum %d slot %d: %v ref=%d fast=%d", q, s, e, rb[e], fb[e])
					}
				}
				t.Fatalf("quantum %d slot %d (%s): PMU banks diverged", q, s, p.refInst.Model.Name)
			}
			if p.refInst.Retired != p.fastInst.Retired {
				t.Fatalf("quantum %d slot %d (%s): Retired ref=%d fast=%d",
					q, s, p.refInst.Model.Name, p.refInst.Retired, p.fastInst.Retired)
			}
			if p.refInst.Dispatched != p.fastInst.Dispatched {
				t.Fatalf("quantum %d slot %d (%s): Dispatched ref=%d fast=%d",
					q, s, p.refInst.Model.Name, p.refInst.Dispatched, p.fastInst.Dispatched)
			}
			if p.refInst.PhaseIndex() != p.fastInst.PhaseIndex() {
				t.Fatalf("quantum %d slot %d (%s): phase ref=%d fast=%d",
					q, s, p.refInst.Model.Name, p.refInst.PhaseIndex(), p.fastInst.PhaseIndex())
			}
		}
	}
}

// TestFastForwardDifferential proves observational equivalence of the
// fast-forward engine against the per-cycle reference across representative
// app mixes (single-threaded and SMT, every Table III group, the
// phase-flipping apps) and several seeds.
func TestFastForwardDifferential(t *testing.T) {
	mixes := [][]string{
		// Single-threaded (the training/characterization configuration).
		{"lbm_r"},
		{"gobmk"},
		{"leela_r"},
		{"exchange2_r"},
		{"mcf"},
		// SMT pairs: backend+backend, frontend+frontend, mixed,
		// phase-flippers together, low-event pair.
		{"lbm_r", "milc"},
		{"gobmk", "perlbench"},
		{"mcf", "gobmk"},
		{"leela_r", "mcf_r"},
		{"exchange2_r", "nab_r"},
		{"cactuBSSN_r", "astar"},
	}
	seeds := []uint64{1, 42, 0xDEADBEEF}
	for _, mix := range mixes {
		for _, seed := range seeds {
			name := fmt.Sprintf("%v/seed=%d", mix, seed)
			t.Run(name, func(t *testing.T) {
				ref, fast, slots, err := newDiffCores(mix, seed)
				if err != nil {
					t.Fatal(err)
				}
				assertLockstep(t, ref, fast, slots, 25, 5_000)
			})
		}
	}
}

// TestFastForwardFullCatalogue sweeps every application in isolation — the
// configuration the training pipeline and target measurement run in.
func TestFastForwardFullCatalogue(t *testing.T) {
	if testing.Short() {
		t.Skip("catalogue sweep skipped in -short mode")
	}
	for _, m := range apps.Catalog() {
		t.Run(m.Name, func(t *testing.T) {
			ref, fast, slots, err := newDiffCores([]string{m.Name}, 7)
			if err != nil {
				t.Fatal(err)
			}
			assertLockstep(t, ref, fast, slots, 12, 5_000)
		})
	}
}

// TestFastForwardRebind exercises mid-run rebinding (the machine layer's
// migrations): bindings flush microstate and refresh contention rates, and
// the engines must stay in lockstep across them.
func TestFastForwardRebind(t *testing.T) {
	ref, fast, slots, err := newDiffCores([]string{"mcf", "leela_r"}, 99)
	if err != nil {
		t.Fatal(err)
	}
	assertLockstep(t, ref, fast, slots, 5, 5_000)
	// Evict slot 1: both cores drop to single-threaded mode.
	ref.Bind(1, nil, nil)
	fast.Bind(1, nil, nil)
	assertLockstep(t, ref, fast, slots[:1], 5, 5_000)
	// Re-attach a fresh co-runner.
	m, err := apps.ByName("lbm_r")
	if err != nil {
		t.Fatal(err)
	}
	p := enginePair{
		refInst:  apps.NewInstance(m, 123),
		fastInst: apps.NewInstance(m, 123),
		refBank:  &pmu.Bank{},
		fastBank: &pmu.Bank{},
	}
	p.refBank.Enable()
	p.fastBank.Enable()
	ref.Bind(1, p.refInst, p.refBank)
	fast.Bind(1, p.fastInst, p.fastBank)
	assertLockstep(t, ref, fast, []enginePair{slots[0], p}, 5, 5_000)
}

// TestFastForwardIdleCore checks the trivial regime: an idle core advances
// its cycle count and nothing else.
func TestFastForwardIdleCore(t *testing.T) {
	c := New(0, DefaultConfig())
	c.SetFastForward(true)
	c.Run(123_457)
	if got := c.Cycle(); got != 123_457 {
		t.Fatalf("idle core cycle = %d, want 123457", got)
	}
}

// --- Benchmarks -------------------------------------------------------------

// benchCoreRun times Core.Run on one app mix with the engine on or off.
func benchCoreRun(b *testing.B, names []string, ff bool) {
	b.Helper()
	ref, fast, _, err := newDiffCores(names, 3)
	if err != nil {
		b.Fatal(err)
	}
	c := ref
	if ff {
		c = fast
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(20_000)
	}
	b.ReportMetric(float64(c.Cycle())/float64(b.Elapsed().Nanoseconds()), "cycles/ns")
}

// BenchmarkCoreRun measures the three regimes the fast-forward engine
// targets: stall-dominated (backend pair), steady dispatch (low-event pair)
// and mixed (phase-flipping pair), each with the reference loop and the
// fast-forward engine.
func BenchmarkCoreRun(b *testing.B) {
	regimes := []struct {
		name string
		mix  []string
	}{
		{"stalled", []string{"lbm_r", "milc"}},
		{"steady", []string{"exchange2_r", "nab_r"}},
		{"mixed", []string{"leela_r", "mcf"}},
		{"st-backend", []string{"mcf"}},
		{"st-frontend", []string{"gobmk"}},
	}
	for _, r := range regimes {
		for _, ff := range []bool{false, true} {
			label := "ref"
			if ff {
				label = "ff"
			}
			b.Run(r.name+"/"+label, func(b *testing.B) {
				benchCoreRun(b, r.mix, ff)
			})
		}
	}
}
