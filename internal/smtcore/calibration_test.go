package smtcore

import (
	"testing"

	"synpa/internal/apps"
	"synpa/internal/characterize"
	"synpa/internal/pmu"
)

// runIsolated executes one app alone on a core and returns its breakdown.
func runIsolated(t testing.TB, m *apps.Model, cycles uint64) characterize.Breakdown {
	t.Helper()
	core := New(0, DefaultConfig())
	inst := apps.NewInstance(m, 0xC0FFEE)
	bank := &pmu.Bank{}
	bank.Enable()
	core.Bind(0, inst, bank)
	core.Run(cycles)
	return characterize.FromCounters(bank.Read(), core.Config().DispatchWidth)
}

// TestIsolatedCharacterizationMatchesTableIII is the calibration gate for
// the whole reproduction: every application model, run in isolation, must
// fall into its paper group under the Fig. 4 / Table III thresholds.
func TestIsolatedCharacterizationMatchesTableIII(t *testing.T) {
	for _, m := range apps.Catalog() {
		b := runIsolated(t, m, 1_500_000)
		t.Logf("%-13s FD=%5.1f%% FE=%5.1f%% BE=%5.1f%% IPC=%.2f group=%s",
			m.Name, b.FD*100, b.FE*100, b.BE*100,
			float64(b.Retired)/float64(b.Cycles), b.Group())
		if got, want := b.Group(), m.Group.String(); got != want {
			t.Errorf("%s characterized as %q, want %q (FD=%.2f FE=%.2f BE=%.2f)",
				m.Name, got, want, b.FD, b.FE, b.BE)
		}
	}
}
