package smtcore

import (
	"fmt"
	"testing"

	"synpa/internal/apps"
	"synpa/internal/pmu"
)

// newBank returns an enabled PMU bank.
func newBank(t *testing.T) *pmu.Bank {
	t.Helper()
	b := &pmu.Bank{}
	b.Enable()
	return b
}

// TestLevelConfig pins the Config.Level defaulting and validation rules.
func TestLevelConfig(t *testing.T) {
	if got := (Config{}).Level(); got != DefaultSMTLevel {
		t.Fatalf("zero Config.Level() = %d, want %d", got, DefaultSMTLevel)
	}
	for lvl := 1; lvl <= MaxSMTLevel; lvl++ {
		cfg := DefaultConfig()
		cfg.SMTLevel = lvl
		if err := cfg.Validate(); err != nil {
			t.Fatalf("SMTLevel %d rejected: %v", lvl, err)
		}
		c := New(0, cfg)
		if c.Level() != lvl {
			t.Fatalf("core level = %d, want %d", c.Level(), lvl)
		}
	}
	for _, lvl := range []int{-1, MaxSMTLevel + 1} {
		cfg := DefaultConfig()
		cfg.SMTLevel = lvl
		if err := cfg.Validate(); err == nil {
			t.Fatalf("SMTLevel %d accepted", lvl)
		}
	}
}

// TestPartitionCapLevels pins the shared-queue cap generalisation: with two
// active threads the cap is SMTPartitionFrac exactly (the SMT2 regression
// guard), and above two each co-runner keeps a (1 − frac) share floored at
// an even split.
func TestPartitionCapLevels(t *testing.T) {
	mcf, err := apps.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SMTLevel = 4
	cases := []struct {
		active int
		frac   float64
	}{
		{1, 1.0},
		{2, cfg.SMTPartitionFrac},           // == the SMT2 cap
		{3, 1 - 2*(1-cfg.SMTPartitionFrac)}, // 0.50 at the default 0.75
		{4, 1 - 3*(1-cfg.SMTPartitionFrac)}, // 0.25, still above the 1/4 floor
	}
	for _, c := range cases {
		core := New(0, cfg)
		for s := 0; s < c.active; s++ {
			bank := newBank(t)
			core.Bind(s, apps.NewInstance(mcf, uint64(s)+1), bank)
		}
		want := int(c.frac * float64(cfg.ROBSize))
		if core.robCap != want {
			t.Errorf("active=%d: robCap = %d, want %d (frac %v)", c.active, core.robCap, want, c.frac)
		}
	}
}

// TestFastForwardDifferentialLevels proves observational equivalence of the
// fast-forward engine (bulk tier + generic span tier) against the per-cycle
// reference at SMT levels 1, 3 and 4, including partial occupancy.
func TestFastForwardDifferentialLevels(t *testing.T) {
	cases := []struct {
		level int
		mix   []string
	}{
		{1, []string{"mcf"}},
		{1, []string{"exchange2_r"}},
		// SMT3: three residents, and a hole in the middle slot.
		{3, []string{"lbm_r", "milc", "mcf"}},
		{3, []string{"gobmk", "perlbench", "leela_r"}},
		{3, []string{"mcf", "", "exchange2_r"}},
		// SMT4: full house across the behaviour groups, plus partial
		// occupancy (two and three residents on a 4-way core).
		{4, []string{"lbm_r", "milc", "mcf", "cactuBSSN_r"}},
		{4, []string{"gobmk", "perlbench", "leela_r", "exchange2_r"}},
		{4, []string{"mcf", "gobmk", "lbm_r", "nab_r"}},
		{4, []string{"leela_r", "mcf_r", "astar", "povray_r"}},
		{4, []string{"mcf", "gobmk", "", ""}},
		{4, []string{"", "lbm_r", "", "exchange2_r"}},
	}
	seeds := []uint64{1, 42, 0xDEADBEEF}
	for _, c := range cases {
		cfg := DefaultConfig()
		cfg.SMTLevel = c.level
		for _, seed := range seeds {
			name := fmt.Sprintf("smt%d/%v/seed=%d", c.level, c.mix, seed)
			t.Run(name, func(t *testing.T) {
				ref, fast, slots, err := newDiffCoresCfg(cfg, c.mix, seed)
				if err != nil {
					t.Fatal(err)
				}
				assertLockstep(t, ref, fast, slots, 20, 5_000)
			})
		}
	}
}

// TestFastForwardRebindLevels exercises occupancy transitions on an SMT4
// core: 4 → 2 → 3 residents, with rate/cap refreshes at every step.
func TestFastForwardRebindLevels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SMTLevel = 4
	ref, fast, slots, err := newDiffCoresCfg(cfg, []string{"mcf", "leela_r", "lbm_r", "gobmk"}, 99)
	if err != nil {
		t.Fatal(err)
	}
	assertLockstep(t, ref, fast, slots, 4, 5_000)
	// Evict two residents: the partition caps relax to the pairwise frac.
	for _, s := range []int{1, 3} {
		ref.Bind(s, nil, nil)
		fast.Bind(s, nil, nil)
	}
	assertLockstep(t, ref, fast, []enginePair{slots[0], slots[2]}, 4, 5_000)
	// Attach a fresh third resident.
	m, err := apps.ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	p := enginePair{
		refInst:  apps.NewInstance(m, 123),
		fastInst: apps.NewInstance(m, 123),
		refBank:  newBank(t),
		fastBank: newBank(t),
	}
	ref.Bind(1, p.refInst, p.refBank)
	fast.Bind(1, p.fastInst, p.fastBank)
	assertLockstep(t, ref, fast, []enginePair{slots[0], p, slots[2]}, 4, 5_000)
}
