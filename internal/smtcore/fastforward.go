// Event-driven fast-forward engine.
//
// The reference simulator (step in smtcore.go) advances one cycle at a
// time. Most cycles, however, fall into *dormant* regimes in which nothing
// data-dependent happens: both hardware threads sit on long-latency misses,
// a thread rides out a frontend squash while its ROB drains, or the core is
// idle. In those regimes every cycle has a fixed, statically known effect —
// a per-cycle counter signature plus a timer decrement — so the engine can
// jump straight to the next regime-changing event (the earliest miss or
// frontend-stall expiry) and apply the accumulated effect in bulk.
//
// The contract is strict observational equivalence with the reference loop:
// identical PMU counter values, retired-instruction counts, RNG stream
// positions and phase transitions for every cycle count. The regime
// classifier is therefore conservative — whenever a cycle could dispatch,
// retire under shared-width arbitration, or expire a timer whose side
// effects touch shared structures, the engine falls back to step(). The
// differential test in fastforward_test.go enforces the equivalence
// bit-for-bit across the application catalogue. See DESIGN.md in this
// package for the regime derivations.
package smtcore

import "synpa/internal/pmu"

// Thread dormancy kinds recognised by the classifier.
const (
	notDormant   = iota
	dormantIdle  // no application bound to the slot
	dormantBE    // miss-blocked: zero-dispatch backend-stall cycles
	dormantFE    // frontend-starved and not retiring
	dormantDrain // frontend-starved while the ROB drains at retire width
)

// dispatchBlocked reports whether t would dispatch zero µops in a cycle in
// which the dispatch stage offers it every slot. It mirrors step()'s clamp
// cascade exactly (same expressions, same float evaluation order); the
// k == 0 outcome is independent of the frontend supply, so the predicate
// needs no ILP dithering. All inputs are frozen while every active thread
// is dormant and none retires, which makes a single evaluation valid for
// the whole bulk window.
func (c *Core) dispatchBlocked(t *thread) bool {
	robUsed := 0
	for s := range c.threads {
		robUsed += c.threads[s].robHeld
	}
	if c.cfg.ROBSize-robUsed <= 0 {
		return true
	}
	if c.robCap-t.robHeld <= 0 {
		return true
	}
	iqFree := float64(c.cfg.IQSize)
	for s := range c.threads {
		iqFree -= c.threads[s].iqHeld
	}
	if own := c.iqCap - t.iqHeld; own < iqFree {
		iqFree = own
	}
	if iqFree < 1 {
		return true
	}
	if t.missLeft > 0 && t.depFrac > 0 && int(iqFree*t.invDepFrac) <= 0 {
		return true
	}
	// When the LDQ/STQ clamps are statically dead the fast tiers no longer
	// maintain the queues' float bookkeeping, so the predicate must skip
	// these conditions (which cannot hold in the reference execution)
	// rather than evaluate them on stale state.
	if !c.ldqDead && t.loadRatio > 0 {
		ldqFree := float64(c.cfg.LDQSize)
		for s := range c.threads {
			ldqFree -= c.threads[s].ldqHeld
		}
		if own := c.ldqCap - t.ldqHeld; own < ldqFree {
			ldqFree = own
		}
		if int(ldqFree*t.invLoadRatio) <= 0 {
			return true
		}
	}
	if !c.stqDead && t.storeRatio > 0 {
		stqFree := float64(c.cfg.STQSize)
		for s := range c.threads {
			stqFree -= c.threads[s].stqHeld
		}
		if own := c.stqCap - t.stqHeld; own < stqFree {
			stqFree = own
		}
		if int(stqFree*t.invStoreRatio) <= 0 {
			return true
		}
	}
	return false
}

// dispatchBlockedOwn is dispatchBlocked evaluated at the loosest shared
// state the co-runner can reach — everything it holds released. Only the
// thread's own partition caps can block then. It is required when the
// co-runner retires during the bulk window: retirement monotonically grows
// every shared free count, so blocked-ness at maximum free implies
// blocked-ness at every intermediate state (each clamp is a "free below
// threshold" predicate, monotone under the float subtract/multiply/floor
// chain).
func (c *Core) dispatchBlockedOwn(t *thread) bool {
	if c.robCap-t.robHeld <= 0 {
		return true
	}
	iqFree := c.iqCap - t.iqHeld
	if iqFree < 1 {
		return true
	}
	if t.missLeft > 0 && t.depFrac > 0 && int(iqFree*t.invDepFrac) <= 0 {
		return true
	}
	if !c.ldqDead && t.loadRatio > 0 && int((c.ldqCap-t.ldqHeld)*t.invLoadRatio) <= 0 {
		return true
	}
	if !c.stqDead && t.storeRatio > 0 && int((c.stqCap-t.stqHeld)*t.invStoreRatio) <= 0 {
		return true
	}
	return false
}

// preClassify is the cheap screen run before any clamp-cascade evaluation:
// it decides the dormancy kind from integer state alone, flagging
// miss-blocked candidates for the expensive dispatchBlocked check. A thread
// that is dispatching (feLeft == 0, missLeft <= 1) fails here in a couple
// of comparisons, so mixed regimes — one thread running, one stalled — pay
// almost nothing per cycle for the fast-forward attempt.
//
// The horizon is the number of cycles the dormancy is guaranteed to
// persist: up to (exclusive) the earliest event whose side effects touch
// shared structures — a miss expiry drains iqHeld, a frontend-stall expiry
// resumes dispatch.
func (c *Core) preClassify(t *thread) (kind int, horizon uint64) {
	if t.inst == nil {
		return dormantIdle, ^uint64(0)
	}
	if t.feLeft > 0 {
		h := uint64(t.feLeft)
		if t.missLeft > 0 {
			if t.missLeft < 2 {
				return notDormant, 0
			}
			if m := uint64(t.missLeft - 1); m < h {
				h = m
			}
			return dormantFE, h
		}
		if t.robHeld == 0 {
			return dormantFE, h
		}
		return dormantDrain, h
	}
	if t.missLeft > 1 {
		return dormantBE, uint64(t.missLeft - 1)
	}
	return notDormant, 0
}

// fastForward attempts one bulk advance of at most limit cycles. It returns
// the number of cycles advanced, or 0 when the core is not in a uniformly
// dormant regime and the caller must run the per-cycle reference step.
func (c *Core) fastForward(limit uint64) uint64 {
	if limit == 0 {
		return 0
	}
	var kinds [MaxSMTLevel]int
	m := limit
	drainers, drainIdx := 0, -1
	for s := range c.threads {
		k, h := c.preClassify(&c.threads[s])
		if k == notDormant {
			return 0
		}
		kinds[s] = k
		if h < m {
			m = h
		}
		if k == dormantDrain {
			drainers++
			drainIdx = s
		}
	}
	// Only now pay for the clamp-cascade predicate on miss-blocked
	// candidates: a thread still filling the backend during its miss is
	// not dormant.
	for s := range c.threads {
		if kinds[s] == dormantBE && !c.dispatchBlocked(&c.threads[s]) {
			return 0
		}
	}

	// Retirement shares the retire width under rotating priority; with
	// several draining threads the per-cycle split depends on the priority
	// state, so only a lone drainer is bulk-advanced. Its retirement
	// releases shared ROB/LDQ/STQ entries, which could unblock a
	// miss-blocked co-runner mid-window: require every such co-runner to
	// be blocked by its own partition caps alone.
	if drainers > 0 {
		if drainers > 1 {
			return 0
		}
		for s := range c.threads {
			if s == drainIdx {
				continue
			}
			if kinds[s] == dormantBE && !c.dispatchBlockedOwn(&c.threads[s]) {
				return 0
			}
		}
	}

	if m == 0 {
		return 0
	}

	c.cycle += m
	c.prio = int((uint64(c.prio) + m) % uint64(len(c.threads)))
	for i := range c.threads {
		c.bulkAdvance(&c.threads[i], kinds[i], m)
	}
	return m
}

// bulkAdvance applies m cycles of thread t's dormant per-cycle effect.
func (c *Core) bulkAdvance(t *thread, kind int, m uint64) {
	switch kind {
	case dormantIdle:
		// An empty slot has no effects at all.

	case dormantBE:
		// Per-cycle signature of a miss-blocked zero-dispatch cycle with
		// an outstanding own miss (see step): CPU_CYCLES, STALL_BACKEND
		// and STALL_BE_MEMLAT tick, the miss timer counts down, and the
		// frontend-supply dither accumulator still advances because the
		// supply is computed before the clamp cascade discards it.
		t.bank.AddN(m, pmu.CPUCycles, pmu.StallBackend, pmu.StallBEMemLat)
		t.missLeft -= int(m)
		if t.ilpFrac > 0 {
			// The accumulator update rounds at every cycle, so a closed
			// form would drift from the reference stream; iterate the
			// one-flop recurrence instead (still ~50× cheaper than a
			// full step).
			acc := t.ilpAcc
			for n := uint64(0); n < m; n++ {
				acc += t.ilpFrac
				if acc >= 1 {
					acc--
				}
			}
			t.ilpAcc = acc
		}

	case dormantFE:
		// Frontend starvation with nothing to retire: STALL_FRONTEND and
		// the fine-grained cause tick, both timers count down, and the
		// supply dither does NOT advance (step bails out before it).
		fe := pmu.StallFEBranch
		if t.feKind == evICache {
			fe = pmu.StallFEICache
		}
		t.bank.AddN(m, pmu.CPUCycles, pmu.StallFrontend, fe)
		t.feLeft -= int(m)
		if t.missLeft > 0 {
			t.missLeft -= int(m)
		}

	case dormantDrain:
		// Frontend starvation while the ROB drains: the frontend-stall
		// signature plus full-width retirement. The retire arithmetic
		// must replay step()'s float operations cycle by cycle (each
		// subtraction rounds), but skips the whole dispatch cascade.
		fe := pmu.StallFEBranch
		if t.feKind == evICache {
			fe = pmu.StallFEICache
		}
		t.bank.AddN(m, pmu.CPUCycles, pmu.StallFrontend, fe)
		t.feLeft -= int(m)
		var retired uint64
		for n := uint64(0); n < m && t.robHeld > 0; n++ {
			k := c.cfg.RetireWidth
			if t.robHeld < k {
				k = t.robHeld
			}
			t.robHeld -= k
			if !c.ldqDead {
				t.ldqHeld -= t.loadRatio * float64(k)
				if t.ldqHeld < 0 {
					t.ldqHeld = 0
				}
			}
			if !c.stqDead {
				t.stqHeld -= t.storeRatio * float64(k)
				if t.stqHeld < 0 {
					t.stqHeld = 0
				}
			}
			if t.robHeld == 0 {
				t.ldqHeld, t.stqHeld = 0, 0
			}
			retired += uint64(k)
		}
		t.bank.Add(pmu.InstRetired, retired)
		t.inst.Retired += retired
	}
}
