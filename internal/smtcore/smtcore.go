// Package smtcore simulates one SMT core of the Cavium ThunderX2 (Vulcan
// microarchitecture, paper Table II) at cycle granularity, focused on the
// dispatch stage — the pipeline point where the paper measures performance
// (§III). The SMT level is configurable: the hardware supports SMT4, and
// the paper's BIOS configuration of SMT2 (§V-A) is the default.
//
// The resident hardware threads share:
//
//   - the 4-wide dispatch stage (cycle-alternating priority, so a thread can
//     receive zero slots in a busy cycle — horizontal waste);
//   - the 128-entry reorder buffer, 60-entry issue queue and 64/36-entry
//     load/store queues (a memory-stalled thread keeps its in-flight
//     instructions resident, squeezing the co-runner);
//   - the cache hierarchy and memory bandwidth (footprint-driven inflation
//     of miss rates and latencies).
//
// Inter-thread interference is therefore *emergent*: backend-bound pairs
// collide on ROB/IQ occupancy and memory bandwidth, frontend-bound pairs on
// the instruction cache, while complementary pairs barely touch — the
// physical phenomenon SYNPA's scheduler exploits. The PMU counters are
// updated with exact ARM semantics: STALL_FRONTEND / STALL_BACKEND tick only
// on zero-dispatch cycles, so partially filled cycles are invisible to them
// (the "revealed stalls" of paper §III-B Step 2).
package smtcore

import (
	"fmt"
	"math"

	"synpa/internal/apps"
	"synpa/internal/pmu"
)

// Config collects the core's microarchitectural and contention parameters.
type Config struct {
	// SMTLevel is the number of hardware threads the core exposes — the
	// BIOS SMT configuration of paper §V-A. The ThunderX2 hardware
	// supports up to SMT4; the paper runs it as SMT2, which is the
	// default a zero value selects.
	SMTLevel int

	DispatchWidth int // dispatch slots per cycle (Table II: 4)
	RetireWidth   int // commit slots per cycle
	ROBSize       int // shared reorder buffer entries (Table II: 128)
	IQSize        int // shared issue queue entries (Table II: 60)
	LDQSize       int // shared load queue entries (Table II: 64)
	STQSize       int // shared store queue entries (Table II: 36)

	// ICacheContention inflates a thread's instruction-cache miss rate by
	// (1 + ICacheContention · coRunnerIFootprint).
	ICacheContention float64
	// DCacheContention inflates a thread's long-latency-load rate by
	// (1 + DCacheContention · coRunnerDFootprint): shared-cache thrashing
	// turns hits into misses.
	DCacheContention float64
	// DCacheThrashMPKI adds misses a co-runner's cache footprint inflicts
	// on a thread regardless of its base miss rate:
	// ΔMPKI = DCacheThrashMPKI · coRunnerDFootprint · ownDFootprint.
	// This is the eviction mechanism that lets a streaming co-runner turn
	// a cache-friendly thread memory-bound — the phenomenon behind the
	// paper's fb2 analysis, where a frontend-categorized leela_r becomes
	// backend-limited under Linux's static pairing (§VI-C).
	DCacheThrashMPKI float64
	// MemBWContention inflates memory latency by
	// (1 + MemBWContention · coRunnerMemBW): bandwidth queuing delay.
	MemBWContention float64

	// SMTPartitionFrac caps the fraction of each shared queue (ROB, IQ,
	// LDQ, STQ) that a single hardware thread may occupy while the core
	// runs two threads. Real SMT cores impose such caps to stop one
	// stalled thread from starving its co-runner outright; a thread
	// running alone gets the whole structure. Must be in (0.5, 1].
	//
	// Above two resident threads the cap generalises: each co-runner
	// keeps a guaranteed (1 − SMTPartitionFrac) share, floored at an even
	// split, so the per-thread cap with k active threads is
	// max(1 − (k−1)·(1 − SMTPartitionFrac), 1/k). With k = 2 this is
	// SMTPartitionFrac itself (see refreshCaps).
	SMTPartitionFrac float64
}

// DefaultConfig returns the ThunderX2 CN9975 parameters of paper Table II
// with calibrated contention coefficients.
func DefaultConfig() Config {
	return Config{
		DispatchWidth:    4,
		RetireWidth:      4,
		ROBSize:          128,
		IQSize:           60,
		LDQSize:          64,
		STQSize:          36,
		ICacheContention: 1.2,
		DCacheContention: 0.5,
		DCacheThrashMPKI: 10.0,
		MemBWContention:  0.45,
		SMTPartitionFrac: 0.75,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DispatchWidth < 1 || c.RetireWidth < 1 {
		return fmt.Errorf("smtcore: dispatch/retire width must be >= 1")
	}
	if c.ROBSize < c.DispatchWidth || c.IQSize < 1 || c.LDQSize < 1 || c.STQSize < 1 {
		return fmt.Errorf("smtcore: queue sizes too small")
	}
	if c.ICacheContention < 0 || c.DCacheContention < 0 || c.MemBWContention < 0 ||
		c.DCacheThrashMPKI < 0 {
		return fmt.Errorf("smtcore: contention coefficients must be >= 0")
	}
	if c.SMTPartitionFrac <= 0.5 || c.SMTPartitionFrac > 1 {
		return fmt.Errorf("smtcore: SMTPartitionFrac %v outside (0.5, 1]", c.SMTPartitionFrac)
	}
	if lvl := c.Level(); lvl < 1 || lvl > MaxSMTLevel {
		return fmt.Errorf("smtcore: SMT level %d outside [1, %d]", lvl, MaxSMTLevel)
	}
	return nil
}

// SMT levels. The paper configures the ThunderX2 as SMT2 in the BIOS (§V-A)
// even though the hardware supports SMT4; DefaultSMTLevel mirrors that BIOS
// default and MaxSMTLevel the hardware ceiling.
const (
	DefaultSMTLevel = 2
	MaxSMTLevel     = 4
)

// Level returns the configured SMT level, substituting the paper's SMT2
// default for a zero value so pre-existing Config literals keep working.
func (c Config) Level() int {
	if c.SMTLevel == 0 {
		return DefaultSMTLevel
	}
	return c.SMTLevel
}

// stall-event kinds drawn by the application models.
const (
	evICache = iota
	evBranch
	evMem
)

// thread is one hardware thread context.
type thread struct {
	inst *apps.Instance
	bank *pmu.Bank

	// Effective event parameters after contention inflation, refreshed on
	// bind and on any phase change of either thread.
	pICache, pBranch, pMem float64 // cumulative per-instruction thresholds
	pEvent                 float64 // total event probability per instruction
	logNoEvent             float64 // cached ln(1-pEvent) for window draws
	durICache, durBranch   float64
	durMem                 float64
	invDepFrac             float64
	invLoadRatio           float64
	invStoreRatio          float64
	loadRatio, storeRatio  float64
	depFrac                float64

	// ILP dithering.
	ilpBase int
	ilpFrac float64
	ilpAcc  float64

	// wrongPathMean is the mean number of wrong-path µops squashed per
	// branch misprediction (≈ ILP · pipeline depth to resolution).
	wrongPathMean float64

	// Microstate.
	window   int // instructions until the next stall event
	feLeft   int // remaining frontend-starved cycles
	feKind   int // evICache or evBranch
	missLeft int // remaining cycles of the blocking load

	robHeld int     // un-retired instructions in the ROB
	iqHeld  float64 // issue-queue entries held by miss-dependent µops
	ldqHeld float64 // load-queue entries held
	stqHeld float64 // store-queue entries held
}

// Core simulates one SMT core at the configured SMT level.
type Core struct {
	cfg     Config
	id      int
	cycle   uint64
	prio    int      // which thread dispatches/retires first this cycle
	ff      bool     // event-driven fast-forward engine enabled
	threads []thread // one context per hardware thread (Config.SMTLevel)

	// Per-thread occupancy caps, refreshed on Bind: the full structure in
	// ST mode, SMTPartitionFrac of it when both threads are active.
	robCap int
	iqCap  float64
	ldqCap float64
	stqCap float64

	// ldqDead/stqDead record that, for the currently bound applications,
	// the load/store-queue clamps can never bind: occupancy is bounded by
	// ratio · ROB occupancy (every LDQ/STQ increment and decrement pairs
	// with a ROB one at the same ratio, and clamping only drifts the
	// float bookkeeping downward), so when ratio · ROBSize leaves a safe
	// margin below the queue size — and ratio · robCap below the
	// partition cap — the clamp outcome is statically known. The fast
	// tiers then skip the queues' float bookkeeping entirely: the values
	// become observationally invisible, and the dormancy predicates skip
	// the corresponding conditions rather than read stale state. The
	// reference step() is not affected. Refreshed on Bind.
	ldqDead bool
	stqDead bool

	// forceLiveQueues disables the dead-clamp analysis; set by the
	// differential test so the reference core maintains (and evaluates)
	// the full queue bookkeeping that the analysis would elide, proving
	// the elision observationally neutral.
	forceLiveQueues bool

	// engine counts where this core's simulated cycles were spent across
	// the three execution tiers. Updated once per tier segment (never per
	// cycle), purely as a function of simulated progress, so it is as
	// deterministic as the cycle count itself.
	engine EngineStats
}

// EngineStats splits a core's simulated cycles across the execution tiers:
// exact reference steps, the scalarised span engine, and bulk fast-forward
// skips. The three sum to the cycles the core has run.
type EngineStats struct {
	// StepCycles were simulated by the per-cycle reference step.
	StepCycles uint64
	// SpanCycles were simulated by the tier-2 lean span engine.
	SpanCycles uint64
	// FFCycles were bulk-skipped by the tier-1 dormancy fast-forward.
	FFCycles uint64
}

// EngineStats returns the core's cumulative tier split.
func (c *Core) EngineStats() EngineStats { return c.engine }

// New creates a core with the given configuration. It panics on an invalid
// configuration, which is a programming error.
func New(id int, cfg Config) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.SMTLevel = cfg.Level()
	return &Core{cfg: cfg, id: id, threads: make([]thread, cfg.SMTLevel)}
}

// ID returns the core's identifier.
func (c *Core) ID() int { return c.id }

// Level returns the core's SMT level: the number of hardware thread slots.
func (c *Core) Level() int { return len(c.threads) }

// Cycle returns the core's current cycle count.
func (c *Core) Cycle() uint64 { return c.cycle }

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// SetFastForward toggles the event-driven fast-forward engine (see DESIGN.md
// in this package). The engine is observationally equivalent to the
// per-cycle reference loop — identical PMU counters, retired-instruction
// counts and phase transitions — so the toggle only changes wall-clock
// speed. It defaults to off on a bare Core; the machine layer enables it
// from machine.Config.FastForward.
//
// Set the toggle before running cycles: the engine elides bookkeeping it
// has proven unobservable (DESIGN.md, dead-clamp elision), so disabling it
// mid-run leaves that state stale until the next Bind of the affected
// slots.
func (c *Core) SetFastForward(on bool) {
	c.ff = on
	// The dead-clamp analysis is gated on the engine; recompute in case
	// applications were bound before the toggle.
	c.refreshCaps()
}

// FastForward reports whether the fast-forward engine is enabled.
func (c *Core) FastForward() bool { return c.ff }

// Instance returns the application bound to hardware thread slot, or nil.
func (c *Core) Instance(slot int) *apps.Instance { return c.threads[slot].inst }

// Bind attaches an application instance and its counter bank to hardware
// thread slot (0 .. Level()-1). Passing a nil instance idles the slot.
// Binding flushes the thread's pipeline microstate — the architectural cost
// of a context switch, negligible at quantum scale — and refreshes every
// resident thread's contention-adjusted event rates.
func (c *Core) Bind(slot int, inst *apps.Instance, bank *pmu.Bank) {
	if slot < 0 || slot >= len(c.threads) {
		panic(fmt.Sprintf("smtcore: bad thread slot %d", slot))
	}
	t := &c.threads[slot]
	t.inst = inst
	t.bank = bank
	t.feLeft = 0
	t.missLeft = 0
	t.robHeld = 0
	t.iqHeld = 0
	t.ldqHeld = 0
	t.stqHeld = 0
	t.ilpAcc = 0
	t.window = 0
	c.refreshRates()
	c.refreshCaps()
	// Draw the first event window for the fresh binding.
	if inst != nil {
		t.drawWindow()
	}
}

// refreshRates recomputes every resident thread's contention-adjusted event
// parameters from the current phases. Called on bind and on phase change of
// any thread (a co-runner's phase shift changes *my* interference).
func (c *Core) refreshRates() {
	for s := range c.threads {
		t := &c.threads[s]
		if t.inst == nil {
			continue
		}
		p := t.inst.Profile()
		// Every interference term is linear in the co-runner pressure, so
		// multiple co-runners aggregate by summing their footprints; with a
		// single co-runner this reduces to the pairwise SMT2 form exactly.
		var coI, coD, coBW float64
		hasCo := false
		for o := range c.threads {
			if o == s || c.threads[o].inst == nil {
				continue
			}
			co := c.threads[o].inst.Profile()
			coI += co.IFootprint
			coD += co.DFootprint
			coBW += co.MemBW
			hasCo = true
		}

		icRate := p.ICacheMPKI / 1000
		memRate := p.MemMPKI / 1000
		memLat := p.MemLat
		if hasCo {
			icRate *= 1 + c.cfg.ICacheContention*coI
			memRate *= 1 + c.cfg.DCacheContention*coD
			memRate += c.cfg.DCacheThrashMPKI / 1000 * coD * p.DFootprint
			memLat *= 1 + c.cfg.MemBWContention*coBW
		}
		brRate := p.BranchMPKI / 1000

		t.pICache = icRate
		t.pBranch = icRate + brRate
		t.pMem = icRate + brRate + memRate
		t.pEvent = t.pMem
		// Window draws divide by ln(1-pEvent); the rate only changes here,
		// so the logarithm is hoisted out of the per-event draw
		// (GeometricFromLog is bit-identical to Geometric by construction).
		t.logNoEvent = math.Log1p(-t.pEvent)
		t.durICache = p.ICacheStall
		t.durBranch = p.BranchStall
		t.durMem = memLat

		t.depFrac = p.DepFrac
		t.loadRatio = p.LoadRatio
		t.storeRatio = p.StoreRatio
		t.invDepFrac = safeInv(p.DepFrac)
		t.invLoadRatio = safeInv(p.LoadRatio)
		t.invStoreRatio = safeInv(p.StoreRatio)

		t.ilpBase = int(p.ILP)
		t.ilpFrac = p.ILP - float64(t.ilpBase)

		// Wrong-path depth: the µops dispatched during the cycles it
		// takes to resolve the mispredicted branch.
		t.wrongPathMean = p.ILP * wrongPathResolveCycles
	}
}

// wrongPathResolveCycles approximates the dispatch-to-resolve depth of a
// mispredicted branch; multiplied by the thread's ILP it gives the mean
// number of squashed wrong-path µops per misprediction.
const wrongPathResolveCycles = 8.0

// refreshCaps recomputes the per-thread occupancy caps for the current SMT
// occupancy (the number of active threads).
func (c *Core) refreshCaps() {
	active := 0
	for s := range c.threads {
		if c.threads[s].inst != nil {
			active++
		}
	}
	frac := 1.0
	switch {
	case active <= 1:
		// A lone thread owns the whole structure.
	case active == 2:
		frac = c.cfg.SMTPartitionFrac
	default:
		// Each of the active−1 co-runners keeps its guaranteed
		// (1 − SMTPartitionFrac) share, floored at an even split so the
		// cap never drops below what round-robin arbitration would give.
		frac = 1 - float64(active-1)*(1-c.cfg.SMTPartitionFrac)
		if even := 1 / float64(active); frac < even {
			frac = even
		}
	}
	c.robCap = int(frac * float64(c.cfg.ROBSize))
	c.iqCap = frac * float64(c.cfg.IQSize)
	c.ldqCap = frac * float64(c.cfg.LDQSize)
	c.stqCap = frac * float64(c.cfg.STQSize)

	// Dead-clamp analysis for the fast tiers (see the field comment). The
	// occupancy bound ldqHeld <= ratio·robHeld holds only when a model's
	// ratio is identical across its phases: releases (retire, squash) use
	// the *current* phase's ratio while the held entries were added at
	// their dispatch-time ratio, so differing per-phase ratios let a
	// residue ratchet up across fill/drain alternations without bound.
	// With phase-constant ratios the pairing is exact (clamping and the
	// robHeld==0 reset only drift the bookkeeping downward), and the
	// margin covers one dispatch group per clamp use plus rounding.
	maxL, maxS := 0.0, 0.0
	constL, constS := true, true
	for s := range c.threads {
		inst := c.threads[s].inst
		if inst == nil {
			continue
		}
		phases := inst.Model.Phases
		for _, ph := range phases {
			if ph.Profile.LoadRatio != phases[0].Profile.LoadRatio {
				constL = false
			}
			if ph.Profile.StoreRatio != phases[0].Profile.StoreRatio {
				constS = false
			}
			if ph.Profile.LoadRatio > maxL {
				maxL = ph.Profile.LoadRatio
			}
			if ph.Profile.StoreRatio > maxS {
				maxS = ph.Profile.StoreRatio
			}
		}
	}
	// The elision is part of the fast-forward engine: with it disabled the
	// core is the unmodified per-cycle reference.
	margin := float64(c.cfg.DispatchWidth)
	c.ldqDead = c.ff && !c.forceLiveQueues && constL &&
		float64(c.cfg.LDQSize)-maxL*float64(c.cfg.ROBSize) >= maxL*margin+2 &&
		c.ldqCap-maxL*float64(c.robCap) >= maxL*margin+2
	c.stqDead = c.ff && !c.forceLiveQueues && constS &&
		float64(c.cfg.STQSize)-maxS*float64(c.cfg.ROBSize) >= maxS*margin+2 &&
		c.stqCap-maxS*float64(c.robCap) >= maxS*margin+2
}

func safeInv(x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	return 1 / x
}

// drawWindow draws the number of instructions until the thread's next stall
// event from its (contention-adjusted) combined event rate.
func (t *thread) drawWindow() {
	if t.pEvent <= 0 {
		t.window = 1 << 30
		return
	}
	t.window = t.inst.RNG().GeometricFromLog(t.pEvent, t.logNoEvent)
}

// fireEvent triggers the stall event that ends the current window and draws
// the next window.
func (t *thread) fireEvent() {
	rng := t.inst.RNG()
	u := rng.Float64() * t.pEvent
	switch {
	case u < t.pICache:
		d := int(rng.Exp(t.durICache)) + 1
		t.feLeft += d
		t.feKind = evICache
	case u < t.pBranch:
		d := int(rng.Exp(t.durBranch)) + 1
		t.feLeft += d
		t.feKind = evBranch
		// The squash discards the wrong-path µops dispatched behind the
		// mispredicted branch. They were counted by INST_SPEC — the ARM
		// event deliberately includes speculative work (§III-B) — but
		// they will never retire. Flush them from the backend queues.
		if t.robHeld > 0 {
			wrong := 1 + int(rng.Exp(t.wrongPathMean))
			if wrong > t.robHeld {
				wrong = t.robHeld
			}
			t.robHeld -= wrong
			t.ldqHeld -= t.loadRatio * float64(wrong)
			if t.ldqHeld < 0 {
				t.ldqHeld = 0
			}
			t.stqHeld -= t.storeRatio * float64(wrong)
			if t.stqHeld < 0 {
				t.stqHeld = 0
			}
		}
	default:
		d := int(rng.Exp(t.durMem)) + 1
		if t.missLeft > 0 {
			// A second miss while one is outstanding: the dependent
			// fraction serialises, the rest overlaps (memory-level
			// parallelism).
			t.missLeft += int(t.depFrac * float64(d))
		} else {
			t.missLeft = d
		}
	}
	t.drawWindow()
}

// Run advances the core by the given number of cycles. With the
// fast-forward engine enabled it alternates bulk advances over statically
// predictable regimes with exact per-cycle steps (fastforward.go); otherwise
// it is the per-cycle reference loop.
func (c *Core) Run(cycles uint64) {
	if !c.ff {
		for n := uint64(0); n < cycles; n++ {
			c.step()
		}
		c.engine.StepCycles += cycles
		return
	}
	remaining := cycles
	for remaining > 0 {
		// Tier 1: skip fully dormant windows outright.
		if skipped := c.fastForward(remaining); skipped > 0 {
			remaining -= skipped
			c.engine.FFCycles += skipped
			continue
		}
		// Tier 2: execute an event-free span through the scalarised lean
		// engine.
		if ran := c.runSpanLite(remaining); ran > 0 {
			remaining -= ran
			c.engine.SpanCycles += ran
			continue
		}
		// Event boundary (stall event, miss expiry, phase crossing) or a
		// span too short to amortise: run a short burst of reference
		// steps before re-screening. The burst only delays re-entering a
		// fast tier — equivalence is untouched because every burst cycle
		// runs the reference step.
		burst := uint64(ffBurst)
		if burst > remaining {
			burst = remaining
		}
		remaining -= burst
		c.engine.StepCycles += burst
		for ; burst > 0; burst-- {
			c.step()
		}
	}
}

// ffBurst is the number of reference steps run between fast-forward
// attempts after both fast tiers decline.
const ffBurst = 1

// step simulates one cycle.
func (c *Core) step() {
	c.cycle++
	level := len(c.threads)
	first := c.prio
	if c.prio++; c.prio == level {
		c.prio = 0
	}

	// --- retire stage (shared width, rotating priority) -----------------
	retireLeft := c.cfg.RetireWidth
	for i := 0; i < level && retireLeft > 0; i++ {
		t := &c.threads[(first+i)%level]
		if t.inst == nil || t.missLeft > 0 || t.robHeld == 0 {
			continue
		}
		k := t.robHeld
		if k > retireLeft {
			k = retireLeft
		}
		retireLeft -= k
		t.robHeld -= k
		if !c.ldqDead {
			t.ldqHeld -= t.loadRatio * float64(k)
			if t.ldqHeld < 0 {
				t.ldqHeld = 0
			}
		}
		if !c.stqDead {
			t.stqHeld -= t.storeRatio * float64(k)
			if t.stqHeld < 0 {
				t.stqHeld = 0
			}
		}
		if t.robHeld == 0 {
			// Empty ROB implies empty derived queues; clamp any
			// accumulated floating-point drift.
			t.ldqHeld, t.stqHeld = 0, 0
		}
		t.bank.Add(pmu.InstRetired, uint64(k))
		t.inst.Retired += uint64(k)
	}

	// --- miss timers ----------------------------------------------------
	for i := range c.threads {
		t := &c.threads[i]
		if t.inst != nil && t.missLeft > 0 {
			t.missLeft--
			if t.missLeft == 0 {
				// Data returned: dependants issue, IQ drains.
				t.iqHeld = 0
			}
		}
	}

	// --- dispatch stage (shared slots, rotating priority) ---------------
	slots := c.cfg.DispatchWidth
	robUsed := 0
	for i := range c.threads {
		robUsed += c.threads[i].robHeld
	}
	phaseChanged := false

	for i := 0; i < level; i++ {
		t := &c.threads[(first+i)%level]
		if t.inst == nil {
			continue
		}
		t.bank.Inc(pmu.CPUCycles)

		// Frontend starvation has priority in ARM's attribution: the
		// dispatch queue is empty, so the stall belongs to the frontend
		// regardless of backend state.
		if t.feLeft > 0 {
			t.feLeft--
			t.bank.Inc(pmu.StallFrontend)
			if t.feKind == evICache {
				t.bank.Inc(pmu.StallFEICache)
			} else {
				t.bank.Inc(pmu.StallFEBranch)
			}
			continue
		}

		// Frontend supply this cycle (ILP dithering, no RNG).
		supply := t.ilpBase
		t.ilpAcc += t.ilpFrac
		if t.ilpAcc >= 1 {
			supply++
			t.ilpAcc--
		}

		// Clamp by every shared backend resource, remembering the cause
		// of the binding constraint for fine-grained attribution.
		k := supply
		cause := pmu.StallBEOther
		if t.window < k {
			k = t.window
		}
		if slots < k {
			k = slots
			if slots == 0 {
				cause = pmu.StallBESlots
			}
		}
		if free := c.cfg.ROBSize - robUsed; free < k {
			k = free
			if free <= 0 {
				k = 0
				cause = pmu.StallBEROB
			}
		}
		if free := c.robCap - t.robHeld; free < k {
			k = free
			if free <= 0 {
				k = 0
				cause = pmu.StallBEROB
			}
		}
		iqFree := float64(c.cfg.IQSize)
		for s := range c.threads {
			iqFree -= c.threads[s].iqHeld
		}
		if own := c.iqCap - t.iqHeld; own < iqFree {
			iqFree = own
		}
		if iqFree < 1 {
			k = 0
			cause = pmu.StallBEIQ
		} else if t.missLeft > 0 && t.depFrac > 0 {
			if lim := int(iqFree * t.invDepFrac); lim < k {
				k = lim
				if lim <= 0 {
					k = 0
					cause = pmu.StallBEIQ
				}
			}
		}
		// The LDQ/STQ clamps are skipped when the dead-clamp analysis
		// (refreshCaps) proves they can never bind for the bound
		// applications; their float bookkeeping is then not maintained
		// anywhere, so evaluating them here would read stale state.
		if !c.ldqDead && t.loadRatio > 0 && k > 0 {
			ldqFree := float64(c.cfg.LDQSize)
			for s := range c.threads {
				ldqFree -= c.threads[s].ldqHeld
			}
			if own := c.ldqCap - t.ldqHeld; own < ldqFree {
				ldqFree = own
			}
			if lim := int(ldqFree * t.invLoadRatio); lim < k {
				k = lim
				if lim <= 0 {
					k = 0
					cause = pmu.StallBELDQ
				}
			}
		}
		if !c.stqDead && t.storeRatio > 0 && k > 0 {
			stqFree := float64(c.cfg.STQSize)
			for s := range c.threads {
				stqFree -= c.threads[s].stqHeld
			}
			if own := c.stqCap - t.stqHeld; own < stqFree {
				stqFree = own
			}
			if lim := int(stqFree * t.invStoreRatio); lim < k {
				k = lim
				if lim <= 0 {
					k = 0
					cause = pmu.StallBESTQ
				}
			}
		}

		if k <= 0 {
			// Zero-dispatch cycle: exactly here the ARM backend stall
			// counter ticks. An outstanding own miss dominates the
			// fine-grained attribution.
			t.bank.Inc(pmu.StallBackend)
			if t.missLeft > 0 {
				t.bank.Inc(pmu.StallBEMemLat)
			} else {
				t.bank.Inc(cause)
			}
			continue
		}

		// Dispatch k µops.
		slots -= k
		robUsed += k
		t.robHeld += k
		if t.missLeft > 0 {
			t.iqHeld += t.depFrac * float64(k)
		}
		if !c.ldqDead {
			t.ldqHeld += t.loadRatio * float64(k)
		}
		if !c.stqDead {
			t.stqHeld += t.storeRatio * float64(k)
		}
		t.bank.Add(pmu.InstSpec, uint64(k))
		t.window -= k
		if t.inst.AdvanceDispatched(uint64(k)) {
			phaseChanged = true
		}
		if t.window == 0 {
			t.fireEvent()
		}
	}

	if phaseChanged {
		c.refreshRates()
	}
}
