package smtcore

import (
	"testing"

	"synpa/internal/apps"
	"synpa/internal/pmu"
)

// isolatedIPC measures an app's retired IPC running alone.
func isolatedIPC(t testing.TB, name string, cycles uint64) float64 {
	t.Helper()
	m, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	core := New(0, DefaultConfig())
	inst := apps.NewInstance(m, 0xABCD)
	bank := &pmu.Bank{}
	bank.Enable()
	core.Bind(0, inst, bank)
	core.Run(cycles)
	c := bank.Read()
	return c.IPC()
}

// pairSlowdowns runs two apps together and returns each one's slowdown
// (isolated IPC / SMT IPC).
func pairSlowdowns(t testing.TB, a, b string, cycles uint64) (float64, float64) {
	t.Helper()
	ipcA := isolatedIPC(t, a, cycles)
	ipcB := isolatedIPC(t, b, cycles)

	ma, _ := apps.ByName(a)
	mb, _ := apps.ByName(b)
	core := New(0, DefaultConfig())
	ia := apps.NewInstance(ma, 0xABCD)
	ib := apps.NewInstance(mb, 0xF00D)
	ba, bb := &pmu.Bank{}, &pmu.Bank{}
	ba.Enable()
	bb.Enable()
	core.Bind(0, ia, ba)
	core.Bind(1, ib, bb)
	core.Run(cycles)
	sa := ipcA / ba.Read().IPC()
	sb := ipcB / bb.Read().IPC()
	return sa, sb
}

// TestSMTSlowdownsAreSane: SMT execution must slow both threads down, but
// within the plausible SMT2 envelope (individual slowdown roughly 1.0–3.5).
func TestSMTSlowdownsAreSane(t *testing.T) {
	cases := [][2]string{
		{"mcf", "lbm_r"},         // BE + BE
		{"leela_r", "gobmk"},     // FE + FE
		{"mcf", "leela_r"},       // BE + FE
		{"nab_r", "exchange2_r"}, // high-ILP pair
		{"cactuBSSN_r", "imagick_r"},
	}
	for _, c := range cases {
		sa, sb := pairSlowdowns(t, c[0], c[1], 600_000)
		t.Logf("%-12s + %-12s slowdowns = %.3f / %.3f", c[0], c[1], sa, sb)
		for i, s := range []float64{sa, sb} {
			if s < 0.99 {
				t.Errorf("%s in (%s,%s): slowdown %v < 1, SMT cannot speed a thread up", c[i], c[0], c[1], s)
			}
			if s > 3.8 {
				t.Errorf("%s in (%s,%s): slowdown %v implausibly large", c[i], c[0], c[1], s)
			}
		}
	}
}

// TestComplementaryPairsAreSynergistic is the core premise of the paper:
// pairing a frontend-bound app with a backend-bound app must hurt less than
// pairing two same-type apps. We compare total pair degradation of the
// mixed split against the same four apps paired same-with-same.
func TestComplementaryPairsAreSynergistic(t *testing.T) {
	const cycles = 600_000
	// Four apps: two strongly backend (mcf, lbm_r), two strongly frontend
	// (leela_r, gobmk).
	sdMcfLbm0, sdMcfLbm1 := pairSlowdowns(t, "mcf", "lbm_r", cycles)
	sdLeeGob0, sdLeeGob1 := pairSlowdowns(t, "leela_r", "gobmk", cycles)
	sameTotal := sdMcfLbm0 + sdMcfLbm1 + sdLeeGob0 + sdLeeGob1

	sdMcfLee0, sdMcfLee1 := pairSlowdowns(t, "mcf", "leela_r", cycles)
	sdLbmGob0, sdLbmGob1 := pairSlowdowns(t, "lbm_r", "gobmk", cycles)
	mixedTotal := sdMcfLee0 + sdMcfLee1 + sdLbmGob0 + sdLbmGob1

	t.Logf("same-type total degradation  = %.3f", sameTotal)
	t.Logf("mixed-type total degradation = %.3f", mixedTotal)
	if mixedTotal >= sameTotal {
		t.Fatalf("mixed pairing (%.3f) must beat same-type pairing (%.3f): the synergy premise failed",
			mixedTotal, sameTotal)
	}
	// The gap should be substantial (the paper reports ~36%% TT gains from
	// exploiting it), not a rounding artifact.
	if (sameTotal-mixedTotal)/sameTotal < 0.05 {
		t.Errorf("synergy gap only %.1f%%, too small to drive the paper's results",
			100*(sameTotal-mixedTotal)/sameTotal)
	}
}
