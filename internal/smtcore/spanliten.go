// Generic event-free span tier for SMT levels other than 2.
//
// This is the slice-based counterpart of the scalarised SMT2 tier in
// spanlite.go: it executes runs of cycles in which no stall event can fire,
// no outstanding miss can expire, no frontend stall can end and no phase
// boundary can be crossed, transcribing step()'s per-cycle arithmetic
// operation for operation (same expressions, same float evaluation order,
// threads visited in the same rotating-priority order) while skipping the
// RNG and rate-refresh paths that the span preconditions prove unreachable.
// PMU counters accumulate in per-thread liteCounters and flush once per
// span, exactly as in the SMT2 tier.
//
// The differential tests in fastforward_test.go pin this tier to the
// reference loop bit-for-bit at SMT levels 1, 3 and 4.
package smtcore

// liteState is one thread's span-local microstate.
type liteState struct {
	t       *thread
	active  bool // an application is bound to the slot
	frozen  bool // miss-blocked for the whole span (fixed zero-dispatch signature)
	hasMiss bool // an own miss is outstanding throughout the span

	rob, win, fe int
	iq, ldq, stq float64
	acc          float64
	supMax       int
	pb           uint64 // dispatched instructions left before a phase boundary
	cnt          liteCounters
}

// runSpanLiteN executes up to limit event-free cycles on a core of any SMT
// level, returning the number executed (0 when no worthwhile span exists).
func (c *Core) runSpanLiteN(limit uint64) uint64 {
	level := len(c.threads)
	var sts [MaxSMTLevel]liteState
	n := limit
	anyActive, liveAny := false, false
	for s := 0; s < level; s++ {
		t := &c.threads[s]
		st := &sts[s]
		st.t = t
		if t.inst == nil {
			continue
		}
		st.active = true
		anyActive = true
		if t.missLeft > 0 {
			// The expiry cycle drains iqHeld; stop one cycle short of it
			// so "a miss is outstanding" is a span-constant fact.
			if t.missLeft < 2 {
				return 0
			}
			if m := uint64(t.missLeft - 1); m < n {
				n = m
			}
			st.hasMiss = true
		}
		if t.feLeft > 0 {
			// Frontend-starved: cannot dispatch; the span ends with the
			// stall so resumption runs in step().
			if m := uint64(t.feLeft); m < n {
				n = m
			}
			continue
		}
		if t.missLeft > 0 {
			// A blocked thread freezes when the blocked-ness is stable for
			// the whole span. Shared frees only shrink while co-runners
			// dispatch, so the current clamp outcome suffices unless some
			// co-runner can retire (missLeft == 0): retirement grows the
			// shared frees, and blocked-ness must then hold at maximum
			// free, from the thread's own partition caps alone.
			coRetires := false
			for o := 0; o < level; o++ {
				if o != s && c.threads[o].inst != nil && c.threads[o].missLeft == 0 {
					coRetires = true
					break
				}
			}
			var blocked bool
			if coRetires {
				blocked = c.dispatchBlockedOwn(t)
			} else {
				blocked = c.dispatchBlocked(t)
			}
			if blocked {
				st.frozen = true
				continue
			}
		}
		liveAny = true
		supplyMax := t.ilpBase
		if t.ilpFrac > 0 {
			supplyMax++
		}
		if supplyMax < 1 {
			return 0
		}
		// The first cycle must be event-free; later cycles are guarded
		// dynamically inside the loop.
		if t.window <= supplyMax {
			return 0
		}
		toBoundary := t.inst.InstsToPhaseBoundary()
		if toBoundary-1 < uint64(supplyMax) {
			return 0
		}
		st.supMax = supplyMax
		st.pb = toBoundary - 1
	}
	if !anyActive || !liveAny || n < minSpan {
		// With no live dispatcher every thread is dormant — the bulk tier
		// advances that regime in O(1) per window instead of O(n).
		return 0
	}

	// --- hoist state into span locals ----------------------------------
	dispW, retireW := c.cfg.DispatchWidth, c.cfg.RetireWidth
	robSize := c.cfg.ROBSize
	robCap := c.robCap
	iqSizeF := float64(c.cfg.IQSize)
	ldqSizeF := float64(c.cfg.LDQSize)
	stqSizeF := float64(c.cfg.STQSize)
	iqCap := c.iqCap
	ldqCap, stqCap := c.ldqCap, c.stqCap
	ldqDead, stqDead := c.ldqDead, c.stqDead
	for s := 0; s < level; s++ {
		st := &sts[s]
		if !st.active {
			continue
		}
		t := st.t
		st.rob, st.win, st.fe = t.robHeld, t.window, t.feLeft
		st.iq, st.ldq, st.stq = t.iqHeld, t.ldqHeld, t.stqHeld
		st.acc = t.ilpAcc
	}

	i := uint64(0)
	stop := false
	stallStreak := 0
	prio := c.prio

	for i < n && !stop {
		i++
		first := prio
		if prio++; prio == level {
			prio = 0
		}

		// --- retire stage (mirrors step) -------------------------------
		retireLeft := retireW
		for o := 0; o < level && retireLeft > 0; o++ {
			st := &sts[(first+o)%level]
			if !st.active || st.hasMiss || st.rob == 0 {
				continue
			}
			k := st.rob
			if k > retireLeft {
				k = retireLeft
			}
			retireLeft -= k
			st.rob -= k
			t := st.t
			if !ldqDead {
				st.ldq -= t.loadRatio * float64(k)
				if st.ldq < 0 {
					st.ldq = 0
				}
			}
			if !stqDead {
				st.stq -= t.storeRatio * float64(k)
				if st.stq < 0 {
					st.stq = 0
				}
			}
			if st.rob == 0 {
				st.ldq, st.stq = 0, 0
			}
			st.cnt.ret += uint64(k)
		}

		// --- dispatch stage (mirrors step) ------------------------------
		slots := dispW
		robUsed := 0
		for o := 0; o < level; o++ {
			robUsed += sts[o].rob
		}
		dispatched := false
		for o := 0; o < level; o++ {
			st := &sts[(first+o)%level]
			if !st.active {
				continue
			}
			t := st.t
			if st.frozen {
				// Blocked on its miss for the whole span: the supply
				// dither still advances before the cascade discards it,
				// exactly as in step().
				st.acc += t.ilpFrac
				if st.acc >= 1 {
					st.acc--
				}
				st.cnt.memLatCnt++
				continue
			}
			if st.fe > 0 {
				st.fe--
				st.cnt.feCnt++
				continue
			}
			supply := t.ilpBase
			st.acc += t.ilpFrac
			if st.acc >= 1 {
				supply++
				st.acc--
			}
			k := supply
			cause := 0
			if st.win < k {
				k = st.win
			}
			if slots < k {
				k = slots
				if slots == 0 {
					cause = 1
				}
			}
			if free := robSize - robUsed; free < k {
				k = free
				if free <= 0 {
					k = 0
					cause = 2
				}
			}
			if free := robCap - st.rob; free < k {
				k = free
				if free <= 0 {
					k = 0
					cause = 2
				}
			}
			iqFree := iqSizeF
			for q := 0; q < level; q++ {
				iqFree -= sts[q].iq
			}
			if own := iqCap - st.iq; own < iqFree {
				iqFree = own
			}
			if iqFree < 1 {
				k = 0
				cause = 5
			} else if st.hasMiss && t.depFrac > 0 {
				if lim := int(iqFree * t.invDepFrac); lim < k {
					k = lim
					if lim <= 0 {
						k = 0
						cause = 5
					}
				}
			}
			if !ldqDead && t.loadRatio > 0 && k > 0 {
				ldqFree := ldqSizeF
				for q := 0; q < level; q++ {
					ldqFree -= sts[q].ldq
				}
				if own := ldqCap - st.ldq; own < ldqFree {
					ldqFree = own
				}
				if lim := int(ldqFree * t.invLoadRatio); lim < k {
					k = lim
					if lim <= 0 {
						k = 0
						cause = 3
					}
				}
			}
			if !stqDead && t.storeRatio > 0 && k > 0 {
				stqFree := stqSizeF
				for q := 0; q < level; q++ {
					stqFree -= sts[q].stq
				}
				if own := stqCap - st.stq; own < stqFree {
					stqFree = own
				}
				if lim := int(stqFree * t.invStoreRatio); lim < k {
					k = lim
					if lim <= 0 {
						k = 0
						cause = 4
					}
				}
			}
			if k <= 0 {
				if st.hasMiss {
					st.cnt.memLatCnt++
				} else {
					st.cnt.countStall(cause)
				}
				continue
			}
			dispatched = true
			slots -= k
			robUsed += k
			st.rob += k
			if st.hasMiss {
				st.iq += t.depFrac * float64(k)
			}
			if !ldqDead {
				st.ldq += t.loadRatio * float64(k)
			}
			if !stqDead {
				st.stq += t.storeRatio * float64(k)
			}
			st.cnt.spec += uint64(k)
			st.win -= k
			st.pb -= uint64(k)
			if st.win <= st.supMax || st.pb < uint64(st.supMax) {
				stop = true
			}
		}
		if dispatched {
			stallStreak = 0
		} else {
			// Dispatch has gone quiescent: a live thread has blocked
			// mid-span. Hand the window back so the bulk tier can skip it
			// in O(1) instead of this loop grinding it out.
			stallStreak++
			if stallStreak >= 8 {
				stop = true
			}
		}
	}

	// --- flush (i, not n: the dynamic window/phase guards may have ended
	// the span early) ---------------------------------------------------
	c.cycle += i
	c.prio = prio
	for s := 0; s < level; s++ {
		st := &sts[s]
		if !st.active {
			continue
		}
		t := st.t
		t.robHeld, t.window, t.feLeft = st.rob, st.win, st.fe
		t.iqHeld, t.ldqHeld, t.stqHeld = st.iq, st.ldq, st.stq
		t.ilpAcc = st.acc
		if st.hasMiss {
			t.missLeft -= int(i)
		}
		flushLite(t, i, &st.cnt)
	}
	return i
}
