package smtcore

import (
	"testing"
	"testing/quick"

	"synpa/internal/apps"
	"synpa/internal/pmu"
)

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.DispatchWidth != 4 {
		t.Errorf("dispatch width = %d, Table II says 4", cfg.DispatchWidth)
	}
	if cfg.ROBSize != 128 {
		t.Errorf("ROB = %d, Table II says 128", cfg.ROBSize)
	}
	if cfg.IQSize != 60 {
		t.Errorf("IQ = %d, Table II says 60", cfg.IQSize)
	}
	if cfg.LDQSize != 64 || cfg.STQSize != 36 {
		t.Errorf("LSQ = %d/%d, Table II says 64/36", cfg.LDQSize, cfg.STQSize)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.DispatchWidth = 0 },
		func(c *Config) { c.RetireWidth = 0 },
		func(c *Config) { c.ROBSize = 2 },
		func(c *Config) { c.IQSize = 0 },
		func(c *Config) { c.LDQSize = 0 },
		func(c *Config) { c.STQSize = 0 },
		func(c *Config) { c.ICacheContention = -1 },
		func(c *Config) { c.DCacheContention = -0.1 },
		func(c *Config) { c.MemBWContention = -2 },
		func(c *Config) { c.SMTPartitionFrac = 0.3 },
		func(c *Config) { c.SMTPartitionFrac = 1.2 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	New(0, Config{})
}

func TestBindPanicsOnBadSlot(t *testing.T) {
	core := New(0, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Bind accepted slot 2")
		}
	}()
	core.Bind(2, nil, nil)
}

func TestIdleCoreRuns(t *testing.T) {
	core := New(3, DefaultConfig())
	core.Run(1000)
	if core.Cycle() != 1000 {
		t.Fatalf("cycle = %d, want 1000", core.Cycle())
	}
	if core.ID() != 3 {
		t.Fatalf("ID = %d", core.ID())
	}
	if core.Instance(0) != nil || core.Instance(1) != nil {
		t.Fatal("idle core has instances")
	}
}

func newBoundCore(t testing.TB, name string, seed uint64) (*Core, *apps.Instance, *pmu.Bank) {
	t.Helper()
	m, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	core := New(0, DefaultConfig())
	inst := apps.NewInstance(m, seed)
	bank := &pmu.Bank{}
	bank.Enable()
	core.Bind(0, inst, bank)
	return core, inst, bank
}

func TestCounterInvariants(t *testing.T) {
	// The ARM semantics this simulator promises (DESIGN.md §2):
	//   STALL_FRONTEND + STALL_BACKEND <= CPU_CYCLES
	//   STALL_FRONTEND == sum of fine FE events
	//   STALL_BACKEND  == sum of fine BE events
	//   INST_RETIRED   <= INST_SPEC
	for _, name := range []string{"mcf", "leela_r", "nab_r", "hmmer"} {
		core, inst, bank := newBoundCore(t, name, 7)
		core.Run(300_000)
		c := bank.Read()

		if c[pmu.CPUCycles] != 300_000 {
			t.Errorf("%s: CPU_CYCLES = %d, want 300000", name, c[pmu.CPUCycles])
		}
		if c[pmu.StallFrontend]+c[pmu.StallBackend] > c[pmu.CPUCycles] {
			t.Errorf("%s: stalls exceed cycles", name)
		}
		if got := c[pmu.StallFEICache] + c[pmu.StallFEBranch]; got != c[pmu.StallFrontend] {
			t.Errorf("%s: fine FE sum %d != STALL_FRONTEND %d", name, got, c[pmu.StallFrontend])
		}
		var fineBE uint64
		for _, e := range pmu.FineBackendEvents {
			fineBE += c[e]
		}
		if fineBE != c[pmu.StallBackend] {
			t.Errorf("%s: fine BE sum %d != STALL_BACKEND %d", name, fineBE, c[pmu.StallBackend])
		}
		if c[pmu.InstRetired] > c[pmu.InstSpec] {
			t.Errorf("%s: retired %d > dispatched %d", name, c[pmu.InstRetired], c[pmu.InstSpec])
		}
		if c[pmu.InstSpec] == 0 {
			t.Errorf("%s: nothing dispatched", name)
		}
		if inst.Retired != c[pmu.InstRetired] {
			t.Errorf("%s: instance retired %d != counter %d", name, inst.Retired, c[pmu.InstRetired])
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() pmu.Counters {
		core, _, bank := newBoundCore(t, "mcf", 99)
		mb, _ := apps.ByName("leela_r")
		ib := apps.NewInstance(mb, 123)
		bb := &pmu.Bank{}
		bb.Enable()
		core.Bind(1, ib, bb)
		core.Run(200_000)
		return bank.Read().Add(bb.Read())
	}
	if run() != run() {
		t.Fatal("identical seeds produced different executions")
	}
}

func TestSeedChangesExecution(t *testing.T) {
	run := func(seed uint64) pmu.Counters {
		core, _, bank := newBoundCore(t, "mcf", seed)
		core.Run(100_000)
		return bank.Read()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical executions")
	}
}

func TestSTModeUsesFullROB(t *testing.T) {
	// In ST mode the thread owns the whole ROB; in SMT mode the cap
	// shrinks. Observable: lbm_r alone has fewer BE stalls per cycle than
	// lbm_r with an mcf co-runner.
	core, _, bank := newBoundCore(t, "lbm_r", 5)
	core.Run(300_000)
	stST := bank.Read()

	core2, _, bank2 := newBoundCore(t, "lbm_r", 5)
	mb, _ := apps.ByName("mcf")
	bb := &pmu.Bank{}
	bb.Enable()
	core2.Bind(1, apps.NewInstance(mb, 11), bb)
	core2.Run(300_000)
	stSMT := bank2.Read()

	rateST := float64(stST[pmu.StallBackend]) / float64(stST[pmu.CPUCycles])
	rateSMT := float64(stSMT[pmu.StallBackend]) / float64(stSMT[pmu.CPUCycles])
	if rateSMT <= rateST {
		t.Fatalf("backend stall rate should rise under SMT: ST %.3f, SMT %.3f", rateST, rateSMT)
	}
}

func TestSlotContentionProducesBESlots(t *testing.T) {
	// Two high-ILP threads must collide on dispatch slots.
	ma, _ := apps.ByName("nab_r")
	mb, _ := apps.ByName("exchange2_r")
	core := New(0, DefaultConfig())
	ba, bb := &pmu.Bank{}, &pmu.Bank{}
	ba.Enable()
	bb.Enable()
	core.Bind(0, apps.NewInstance(ma, 1), ba)
	core.Bind(1, apps.NewInstance(mb, 2), bb)
	core.Run(300_000)
	if ba.Read()[pmu.StallBESlots]+bb.Read()[pmu.StallBESlots] == 0 {
		t.Fatal("two ILP>3 threads never collided on dispatch slots")
	}
}

func TestUnbindReturnsToSTBehaviour(t *testing.T) {
	core, _, bank := newBoundCore(t, "nab_r", 9)
	mb, _ := apps.ByName("mcf")
	bb := &pmu.Bank{}
	bb.Enable()
	core.Bind(1, apps.NewInstance(mb, 10), bb)
	core.Run(100_000)
	smtIPC := bank.Read().IPC()

	core.Bind(1, nil, nil) // co-runner leaves
	before := bank.Read()
	core.Run(100_000)
	stIPC := bank.Read().Delta(before).IPC()
	if stIPC <= smtIPC {
		t.Fatalf("IPC should recover after co-runner unbinds: SMT %.3f, ST %.3f", smtIPC, stIPC)
	}
}

func TestRebindFlushesPipelineState(t *testing.T) {
	// After rebinding the same instance, the core must not carry stale
	// occupancy: IPC over a fresh window stays in the normal range.
	core, inst, bank := newBoundCore(t, "mcf", 21)
	core.Run(50_000)
	core.Bind(0, inst, bank) // re-bind (e.g. migration to the same slot)
	before := bank.Read()
	core.Run(50_000)
	d := bank.Read().Delta(before)
	if d[pmu.InstSpec] == 0 {
		t.Fatal("no dispatch after rebind")
	}
}

func TestPhaseBehaviourDiffers(t *testing.T) {
	// leela_r's two phases must look different at the PMU: the FE-heavy
	// phase has a higher frontend-stall rate than the BE-heavy phase.
	m, _ := apps.ByName("leela_r")
	core := New(0, DefaultConfig())
	inst := apps.NewInstance(m, 33)
	bank := &pmu.Bank{}
	bank.Enable()
	core.Bind(0, inst, bank)

	var fe0, fe1, cyc0, cyc1 uint64
	prev := bank.Read()
	for i := 0; i < 400; i++ {
		phase := inst.PhaseIndex()
		core.Run(5_000)
		d := bank.Read().Delta(prev)
		prev = bank.Read()
		if phase == 0 && inst.PhaseIndex() == 0 {
			fe0 += d[pmu.StallFrontend]
			cyc0 += d[pmu.CPUCycles]
		} else if phase == 1 && inst.PhaseIndex() == 1 {
			fe1 += d[pmu.StallFrontend]
			cyc1 += d[pmu.CPUCycles]
		}
	}
	if cyc0 == 0 || cyc1 == 0 {
		t.Fatal("did not observe both phases; lengthen the run")
	}
	r0 := float64(fe0) / float64(cyc0)
	r1 := float64(fe1) / float64(cyc1)
	if r0 <= r1 {
		t.Fatalf("phase 0 FE rate %.3f should exceed phase 1 FE rate %.3f", r0, r1)
	}
}

func TestRunZeroCycles(t *testing.T) {
	core, _, bank := newBoundCore(t, "mcf", 3)
	core.Run(0)
	if c := bank.Read(); c[pmu.CPUCycles] != 0 {
		t.Fatal("Run(0) advanced counters")
	}
}

func TestDisabledBankStaysZero(t *testing.T) {
	m, _ := apps.ByName("nab_r")
	core := New(0, DefaultConfig())
	bank := &pmu.Bank{} // never enabled
	core.Bind(0, apps.NewInstance(m, 1), bank)
	core.Run(10_000)
	if c := bank.Read(); c != (pmu.Counters{}) {
		t.Fatalf("disabled bank accumulated %v", c)
	}
}

func TestSlotSymmetry(t *testing.T) {
	// Running an app on slot 0 vs slot 1 (alone) must give statistically
	// identical behaviour; with identical seeds, exactly identical.
	run := func(slot int) pmu.Counters {
		m, _ := apps.ByName("hmmer")
		core := New(0, DefaultConfig())
		bank := &pmu.Bank{}
		bank.Enable()
		core.Bind(slot, apps.NewInstance(m, 77), bank)
		core.Run(100_000)
		return bank.Read()
	}
	a, b := run(0), run(1)
	// Allow the ±1 cycle of priority-alternation skew.
	if a[pmu.InstSpec] == 0 || b[pmu.InstSpec] == 0 {
		t.Fatal("no dispatch")
	}
	ratio := float64(a[pmu.InstRetired]) / float64(b[pmu.InstRetired])
	if ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("slot asymmetry: %d vs %d retired", a[pmu.InstRetired], b[pmu.InstRetired])
	}
}

func TestCounterInvariantsProperty(t *testing.T) {
	// For random app pairs and seeds, core invariants always hold.
	all := apps.Catalog()
	check := func(seed uint64, ai, bi uint8) bool {
		ma := all[int(ai)%len(all)]
		mb := all[int(bi)%len(all)]
		core := New(0, DefaultConfig())
		ba, bb := &pmu.Bank{}, &pmu.Bank{}
		ba.Enable()
		bb.Enable()
		core.Bind(0, apps.NewInstance(ma, seed), ba)
		core.Bind(1, apps.NewInstance(mb, seed^0xdead), bb)
		core.Run(30_000)
		for _, c := range []pmu.Counters{ba.Read(), bb.Read()} {
			if c[pmu.StallFrontend]+c[pmu.StallBackend] > c[pmu.CPUCycles] {
				return false
			}
			if c[pmu.InstRetired] > c[pmu.InstSpec] {
				return false
			}
			if c[pmu.CPUCycles] != 30_000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCoreSTCycle(b *testing.B) {
	m, _ := apps.ByName("mcf")
	core := New(0, DefaultConfig())
	bank := &pmu.Bank{}
	bank.Enable()
	core.Bind(0, apps.NewInstance(m, 1), bank)
	b.ResetTimer()
	core.Run(uint64(b.N))
}

func BenchmarkCoreSMTCycle(b *testing.B) {
	ma, _ := apps.ByName("mcf")
	mb, _ := apps.ByName("leela_r")
	core := New(0, DefaultConfig())
	ba, bb := &pmu.Bank{}, &pmu.Bank{}
	ba.Enable()
	bb.Enable()
	core.Bind(0, apps.NewInstance(ma, 1), ba)
	core.Bind(1, apps.NewInstance(mb, 2), bb)
	b.ResetTimer()
	core.Run(uint64(b.N))
}
