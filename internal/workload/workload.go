// Package workload builds the multi-program workloads of paper §V-B and
// implements the target-instruction measurement methodology.
//
// The paper evaluates twenty 8-application workloads: five backend-intensive
// (be0–be4: 5–6 apps from the backend-bound group, the rest from Others),
// five frontend-intensive (fe0–fe4: built analogously from the
// frontend-bound group) and ten mixed (fb0–fb9: half backend-bound, half
// frontend-bound, randomly selected). Three of them are published app by
// app (be1 and fe2 in Fig. 6, fb2 in §VI-C); those exact compositions are
// reproduced verbatim and the rest are generated from a seeded stream.
//
// Targets: each application runs alone for a fixed reference interval (the
// paper uses 60 s) and its retired-instruction count becomes its target.
// During multi-program runs an application's turnaround time is the moment
// it reaches its target; it is then relaunched to keep the machine loaded.
package workload

import (
	"fmt"
	"sync"

	"synpa/internal/apps"
	"synpa/internal/machine"
	"synpa/internal/pmu"
	"synpa/internal/pool"
	"synpa/internal/xrand"
)

// Kind classifies a workload per §V-B.
type Kind int

// Workload kinds.
const (
	Backend  Kind = iota // backend-intensive (be0–be4)
	Frontend             // frontend-intensive (fe0–fe4)
	Mixed                // mixed (fb0–fb9)
)

// String returns the paper's label for the kind.
func (k Kind) String() string {
	switch k {
	case Backend:
		return "backend"
	case Frontend:
		return "frontend"
	case Mixed:
		return "mixed"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AppsPerWorkload is the paper's workload size.
const AppsPerWorkload = 8

// Workload is a named multi-program mix.
type Workload struct {
	Name string
	Kind Kind
	Apps []*apps.Model
}

// Names returns the application names in order.
func (w *Workload) Names() []string {
	out := make([]string, len(w.Apps))
	for i, m := range w.Apps {
		out[i] = m.Name
	}
	return out
}

// mustByName panics on unknown applications — the published compositions
// are compile-time constants of this package.
func mustByName(name string) *apps.Model {
	m, err := apps.ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

func fromNames(name string, kind Kind, names ...string) Workload {
	w := Workload{Name: name, Kind: kind}
	for _, n := range names {
		w.Apps = append(w.Apps, mustByName(n))
	}
	return w
}

// publishedWorkloads are the three compositions the paper spells out.
func publishedWorkloads() map[string]Workload {
	return map[string]Workload{
		// Fig. 6a.
		"be1": fromNames("be1", Backend,
			"cactuBSSN_r", "mcf", "mcf", "milc", "cactuBSSN_r", "parest_r", "cam4_r", "imagick_r"),
		// Fig. 6b.
		"fe2": fromNames("fe2", Frontend,
			"leela_r", "gobmk", "gobmk", "leela_r", "perlbench", "cam4_r", "leela_r", "povray_r"),
		// §VI-C: the order is the paper's bracketed 00–07 arrival order, so
		// the Linux baseline forms the pairs the paper reports.
		"fb2": fromNames("fb2", Mixed,
			"lbm_r", "mcf", "cactuBSSN_r", "mcf", "leela_r", "leela_r", "astar", "mcf_r"),
	}
}

// pick returns n draws (with replacement) from group.
func pick(rng *xrand.RNG, group []*apps.Model, n int) []*apps.Model {
	out := make([]*apps.Model, n)
	for i := range out {
		out[i] = group[rng.Intn(len(group))]
	}
	return out
}

// StandardSet generates the paper's twenty workloads. The three published
// compositions are fixed; the remaining seventeen are drawn from the seeded
// stream following the §V-B recipes.
func StandardSet(seed uint64) []Workload {
	rng := xrand.New(seed)
	published := publishedWorkloads()
	backend := apps.ByGroup(apps.GroupBackend)
	frontend := apps.ByGroup(apps.GroupFrontend)
	others := apps.ByGroup(apps.GroupOther)

	var out []Workload
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("be%d", i)
		if w, ok := published[name]; ok {
			out = append(out, w)
			continue
		}
		// 5 or 6 backend-bound apps, rest from Others.
		nBE := 5 + rng.Intn(2)
		w := Workload{Name: name, Kind: Backend}
		w.Apps = append(w.Apps, pick(rng, backend, nBE)...)
		w.Apps = append(w.Apps, pick(rng, others, AppsPerWorkload-nBE)...)
		shuffleApps(rng, w.Apps)
		out = append(out, w)
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("fe%d", i)
		if w, ok := published[name]; ok {
			out = append(out, w)
			continue
		}
		nFE := 5 + rng.Intn(2)
		w := Workload{Name: name, Kind: Frontend}
		w.Apps = append(w.Apps, pick(rng, frontend, nFE)...)
		w.Apps = append(w.Apps, pick(rng, others, AppsPerWorkload-nFE)...)
		shuffleApps(rng, w.Apps)
		out = append(out, w)
	}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("fb%d", i)
		if w, ok := published[name]; ok {
			out = append(out, w)
			continue
		}
		w := Workload{Name: name, Kind: Mixed}
		w.Apps = append(w.Apps, pick(rng, backend, AppsPerWorkload/2)...)
		w.Apps = append(w.Apps, pick(rng, frontend, AppsPerWorkload/2)...)
		shuffleApps(rng, w.Apps)
		out = append(out, w)
	}
	return out
}

// shuffleApps randomises arrival order so the Linux baseline's pairing is
// not biased by the construction order (the paper selects randomly).
func shuffleApps(rng *xrand.RNG, s []*apps.Model) {
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// ByName returns the named workload from the standard set.
func ByName(seed uint64, name string) (Workload, error) {
	for _, w := range StandardSet(seed) {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// TargetCache measures and memoises per-application instruction targets and
// isolated IPCs. It is safe for concurrent use; each application's
// measurement runs at most once, and concurrent measurements of *different*
// applications proceed in parallel (the cache lock only guards the slot
// map, never a simulation).
type TargetCache struct {
	cfg       machine.Config
	refQuanta int
	seed      uint64

	mu    sync.Mutex
	slots map[string]*targetSlot
}

// targetSlot memoises one application's measurement.
type targetSlot struct {
	once     sync.Once
	target   uint64
	ipc      float64
	counters pmu.Counters
	err      error
}

// NewTargetCache builds a cache using the given machine configuration and
// reference interval (in quanta — the simulator equivalent of the paper's
// 60-second isolated run).
func NewTargetCache(cfg machine.Config, refQuanta int, seed uint64) *TargetCache {
	return &TargetCache{
		cfg:       cfg,
		refQuanta: refQuanta,
		seed:      seed,
		slots:     map[string]*targetSlot{},
	}
}

// slot returns the application's memoisation slot, measuring on first use.
func (tc *TargetCache) slot(m *apps.Model) *targetSlot {
	tc.mu.Lock()
	s, ok := tc.slots[m.Name]
	if !ok {
		s = &targetSlot{}
		tc.slots[m.Name] = s
	}
	tc.mu.Unlock()
	s.once.Do(func() { s.target, s.ipc, s.counters, s.err = tc.measure(m) })
	return s
}

// measure runs the application in isolation once.
func (tc *TargetCache) measure(m *apps.Model) (target uint64, ipc float64, counters pmu.Counters, err error) {
	samples, err := machine.RunIsolated(m, tc.seed^uint64(len(m.Name))<<32^hash(m.Name), tc.refQuanta, tc.cfg)
	if err != nil {
		return 0, 0, pmu.Counters{}, err
	}
	for _, s := range samples {
		counters = counters.Add(s)
	}
	insts, cycles := counters[pmu.InstRetired], counters[pmu.CPUCycles]
	if insts == 0 || cycles == 0 {
		return 0, 0, pmu.Counters{}, fmt.Errorf("workload: %s retired nothing in isolation", m.Name)
	}
	return insts, float64(insts) / float64(cycles), counters, nil
}

// Warm measures every distinct application of the given workloads, fanning
// the isolated reference runs out over CPUs when parallel is set.
func (tc *TargetCache) Warm(ws []Workload, parallel bool) error {
	var distinct []*apps.Model
	seen := map[string]bool{}
	for _, w := range ws {
		for _, m := range w.Apps {
			if !seen[m.Name] {
				seen[m.Name] = true
				distinct = append(distinct, m)
			}
		}
	}
	return pool.Run(len(distinct), parallel, func(i int) error {
		return tc.slot(distinct[i]).err
	})
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Target returns the retired-instruction target for one application.
func (tc *TargetCache) Target(m *apps.Model) (uint64, error) {
	s := tc.slot(m)
	return s.target, s.err
}

// IsolatedIPC returns the application's single-threaded IPC over the
// reference interval (the denominator of the paper's individual speedups).
func (tc *TargetCache) IsolatedIPC(m *apps.Model) (float64, error) {
	s := tc.slot(m)
	return s.ipc, s.err
}

// IsolatedCounters returns the application's summed PMU counters over the
// isolated reference run — the raw material for the interference model's
// per-app category fractions (the fleet's interference-aware dispatcher
// characterises jobs by them).
func (tc *TargetCache) IsolatedCounters(m *apps.Model) (pmu.Counters, error) {
	s := tc.slot(m)
	return s.counters, s.err
}

// Targets returns the target vector for a workload.
func (tc *TargetCache) Targets(w Workload) ([]uint64, error) {
	out := make([]uint64, len(w.Apps))
	for i, m := range w.Apps {
		t, err := tc.Target(m)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// IsolatedIPCs returns the per-app isolated IPC vector for a workload.
func (tc *TargetCache) IsolatedIPCs(w Workload) ([]float64, error) {
	out := make([]float64, len(w.Apps))
	for i, m := range w.Apps {
		v, err := tc.IsolatedIPC(m)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
