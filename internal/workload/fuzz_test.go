package workload

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseTrace drives the scripted-trace parser with arbitrary input:
// malformed priority columns, huge cycle counts, NaN/Inf work factors,
// pathological whitespace. The parser must never panic, and anything it
// accepts must satisfy the trace contract it promises (Validate passes and
// every field is inside its documented bounds).
func FuzzParseTrace(f *testing.F) {
	seeds := []string{
		"0 mcf\n",
		"# comment only\n",
		"0 mcf 0.5\n40000 leela_r 2 # tail\n",
		"0 mcf 1 2\n",
		"0 mcf 1 2 4\n",
		"18446744073709551615 mcf 1 1048576 1e6\n",
		"0 mcf NaN\n",
		"0 mcf 1e300\n",
		"0 mcf 1 -2\n",
		"0 mcf 1 2 Inf\n",
		"  \t \n5000 lbm_r\t0.25  3\t2.5 # mixed whitespace\n",
		"9 not_a_benchmark 1 1 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseTrace("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted traces must honour the contract ParseTrace documents.
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v\ninput: %q", err, input)
		}
		for i, e := range tr.Entries {
			if e.Work < 0 || e.Work > MaxWorkFactor || math.IsNaN(e.Work) {
				t.Fatalf("entry %d: work %v escaped its bounds\ninput: %q", i, e.Work, input)
			}
			if e.Priority < 0 || e.Priority > MaxPriority {
				t.Fatalf("entry %d: priority %d escaped its bounds\ninput: %q", i, e.Priority, input)
			}
			if e.Weight < 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
				t.Fatalf("entry %d: weight %v escaped its bounds\ninput: %q", i, e.Weight, input)
			}
		}
	})
}
