package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"synpa/internal/apps"
	"synpa/internal/machine"
	"synpa/internal/xrand"
)

// TraceEntry is one arrival of an open-system (dynamic) workload.
type TraceEntry struct {
	// App is the application name (paper Table III catalogue).
	App string
	// ArriveAt is the machine cycle at which the application enters the
	// system and asks for a hardware thread.
	ArriveAt uint64
	// Work scales the application's reference instruction target (the
	// §V-B isolated-run target): 1.0 runs the full reference work, 0.5
	// half of it. Zero means 1.0.
	Work float64
}

// Trace is an open-system arrival schedule: applications arrive at their
// trace times, execute their (finite) work and depart. It is the dynamic
// counterpart of the closed Workload.
type Trace struct {
	Name    string
	Entries []TraceEntry
}

// Names returns the application names in trace order.
func (t *Trace) Names() []string {
	out := make([]string, len(t.Entries))
	for i := range t.Entries {
		out[i] = t.Entries[i].App
	}
	return out
}

// Validate checks the trace: at least one entry, known applications,
// non-negative work factors.
func (t *Trace) Validate() error {
	if len(t.Entries) == 0 {
		return fmt.Errorf("workload: trace %q has no arrivals", t.Name)
	}
	for i, e := range t.Entries {
		if _, err := apps.ByName(e.App); err != nil {
			return fmt.Errorf("workload: trace %q entry %d: %w", t.Name, i, err)
		}
		if e.Work < 0 {
			return fmt.Errorf("workload: trace %q entry %d: negative work factor %v", t.Name, i, e.Work)
		}
	}
	return nil
}

// Span returns the latest arrival cycle of the trace (entries need not be
// sorted).
func (t *Trace) Span() uint64 {
	var span uint64
	for i := range t.Entries {
		if t.Entries[i].ArriveAt > span {
			span = t.Entries[i].ArriveAt
		}
	}
	return span
}

// DynamicWork converts a trace into the machine's open-system work list
// using the cache's §V-B reference measurements: each entry's target is the
// app's reference instruction target scaled by its Work factor, and
// isoCycles[i] is the isolated execution time (in cycles) of that same
// scaled work — the normalization denominator for response times. Both the
// public System.RunDynamic and the experiment suite build their runs
// through this single definition.
func (tc *TargetCache) DynamicWork(t Trace) (work []machine.DynamicApp, isoCycles []float64, err error) {
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	work = make([]machine.DynamicApp, len(t.Entries))
	isoCycles = make([]float64, len(t.Entries))
	for i, e := range t.Entries {
		m, err := apps.ByName(e.App)
		if err != nil {
			return nil, nil, err
		}
		target, err := tc.Target(m)
		if err != nil {
			return nil, nil, err
		}
		ipc, err := tc.IsolatedIPC(m)
		if err != nil {
			return nil, nil, err
		}
		w := e.Work
		if w == 0 {
			w = 1
		}
		scaled := uint64(float64(target) * w)
		if scaled == 0 {
			scaled = 1
		}
		work[i] = machine.DynamicApp{Model: m, Target: scaled, ArriveAt: e.ArriveAt}
		isoCycles[i] = float64(scaled) / ipc
	}
	return work, isoCycles, nil
}

// DynamicStats are the open-system aggregate metrics of one dynamic run.
type DynamicStats struct {
	// Completed counts apps that finished within the run bound.
	Completed int
	// MeanResponseCycles averages response time over completed apps.
	MeanResponseCycles float64
	// ANTT is the mean normalized response time over completed apps:
	// response / isolated time of the same work (lower is better).
	ANTT float64
	// STP is the completed isolated-app work per cycle (higher is
	// better; bounded by the hardware-thread count).
	STP float64
}

// SummarizeDynamic computes the open-system metrics of a dynamic result
// against the isolated times returned by DynamicWork.
func SummarizeDynamic(res *machine.DynamicResult, isoCycles []float64) DynamicStats {
	var st DynamicStats
	var respSum, normSum, isoDone float64
	for i := range res.Apps {
		a := &res.Apps[i]
		if a.FinishAt == 0 || a.ResponseCycles == 0 {
			continue
		}
		st.Completed++
		respSum += float64(a.ResponseCycles)
		normSum += float64(a.ResponseCycles) / isoCycles[i]
		isoDone += isoCycles[i]
	}
	if st.Completed > 0 {
		st.MeanResponseCycles = respSum / float64(st.Completed)
		st.ANTT = normSum / float64(st.Completed)
	}
	if res.Cycles > 0 {
		st.STP = isoDone / float64(res.Cycles)
	}
	return st
}

// PoissonTrace generates a deterministic open-system trace with Poisson
// arrivals: inter-arrival gaps are exponential draws with the given mean
// (in cycles) and each arrival picks uniformly from pool. The same seed
// always yields the same trace, so Poisson scenarios are as reproducible
// as scripted ones.
func PoissonTrace(name string, seed uint64, pool []string, n int, meanGapCycles float64, work float64) Trace {
	if len(pool) == 0 || n <= 0 {
		// An empty trace fails Validate with a usable message instead of
		// panicking in rng.Intn here.
		return Trace{Name: name}
	}
	rng := xrand.New(seed)
	t := Trace{Name: name, Entries: make([]TraceEntry, 0, n)}
	var at float64
	for i := 0; i < n; i++ {
		if i > 0 {
			at += rng.Exp(meanGapCycles)
		}
		t.Entries = append(t.Entries, TraceEntry{
			App:      pool[rng.Intn(len(pool))],
			ArriveAt: uint64(at),
			Work:     work,
		})
	}
	return t
}

// ParseTrace reads a scripted trace. The format is line-oriented:
//
//	# comment (also after entries)
//	<arrive_cycle> <app_name> [work_factor]
//
// e.g.
//
//	0      mcf
//	0      leela_r
//	40000  lbm_r    0.5   # arrives mid-run, does half the reference work
//
// Entries need not be sorted; the runner orders arrivals by cycle.
func ParseTrace(name string, r io.Reader) (Trace, error) {
	t := Trace{Name: name}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return Trace{}, fmt.Errorf("workload: trace %q line %d: want \"<cycle> <app> [work]\", got %q",
				name, lineNo, sc.Text())
		}
		at, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return Trace{}, fmt.Errorf("workload: trace %q line %d: bad arrival cycle %q", name, lineNo, fields[0])
		}
		e := TraceEntry{App: fields[1], ArriveAt: at}
		if len(fields) == 3 {
			// An explicit 0 is rejected rather than silently meaning the
			// in-memory default of "full reference work" — the one value
			// whose meaning would invert the author's intent.
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || w <= 0 {
				return Trace{}, fmt.Errorf("workload: trace %q line %d: work factor %q must be a positive number", name, lineNo, fields[2])
			}
			e.Work = w
		}
		t.Entries = append(t.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("workload: trace %q: %w", name, err)
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}
