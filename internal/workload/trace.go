package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"synpa/internal/apps"
	"synpa/internal/machine"
	"synpa/internal/stats"
	"synpa/internal/xrand"
)

// TraceEntry is one arrival of an open-system (dynamic) workload.
type TraceEntry struct {
	// App is the application name (paper Table III catalogue).
	App string
	// ArriveAt is the machine cycle at which the application enters the
	// system and asks for a hardware thread.
	ArriveAt uint64
	// Work scales the application's reference instruction target (the
	// §V-B isolated-run target): 1.0 runs the full reference work, 0.5
	// half of it. Zero means 1.0.
	Work float64
	// Priority is the arrival's class; higher is more urgent. The
	// default class is 0. Priority-aware admission policies
	// (internal/admission) order the waiting queue on it, and the
	// dynamic report breaks response-time metrics out per class.
	Priority int
	// Weight is the arrival's class weight for the weighted-STP summary;
	// zero means 1. It does not influence admission order.
	Weight float64
}

// MaxPriority bounds the accepted priority classes; large enough for any
// sensible class scheme, small enough that aging arithmetic cannot
// overflow.
const MaxPriority = 1 << 20

// MaxWorkFactor bounds the accepted work factors: large enough for any
// realistic job, small enough that scaling a reference instruction target
// by it cannot overflow uint64.
const MaxWorkFactor = 1e6

// Trace is an open-system arrival schedule: applications arrive at their
// trace times, execute their (finite) work and depart. It is the dynamic
// counterpart of the closed Workload.
type Trace struct {
	Name    string
	Entries []TraceEntry
}

// Names returns the application names in trace order.
func (t *Trace) Names() []string {
	out := make([]string, len(t.Entries))
	for i := range t.Entries {
		out[i] = t.Entries[i].App
	}
	return out
}

// Validate checks the trace: at least one entry, known applications,
// non-negative work factors.
func (t *Trace) Validate() error {
	if len(t.Entries) == 0 {
		return fmt.Errorf("workload: trace %q has no arrivals", t.Name)
	}
	for i := range t.Entries {
		if err := t.Entries[i].Check(); err != nil {
			return fmt.Errorf("workload: trace %q entry %d: %w", t.Name, i, err)
		}
	}
	return nil
}

// Span returns the latest arrival cycle of the trace (entries need not be
// sorted).
func (t *Trace) Span() uint64 {
	var span uint64
	for i := range t.Entries {
		if t.Entries[i].ArriveAt > span {
			span = t.Entries[i].ArriveAt
		}
	}
	return span
}

// DynamicWork converts a trace into the machine's open-system work list
// using the cache's §V-B reference measurements: each entry's target is the
// app's reference instruction target scaled by its Work factor, and
// isoCycles[i] is the isolated execution time (in cycles) of that same
// scaled work — the normalization denominator for response times. Both the
// public System.RunDynamic and the experiment suite build their runs
// through this single definition.
func (tc *TargetCache) DynamicWork(t Trace) (work []machine.DynamicApp, isoCycles []float64, err error) {
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	work = make([]machine.DynamicApp, len(t.Entries))
	isoCycles = make([]float64, len(t.Entries))
	for i, e := range t.Entries {
		m, err := apps.ByName(e.App)
		if err != nil {
			return nil, nil, err
		}
		target, err := tc.Target(m)
		if err != nil {
			return nil, nil, err
		}
		ipc, err := tc.IsolatedIPC(m)
		if err != nil {
			return nil, nil, err
		}
		w := e.Work
		if w == 0 {
			w = 1
		}
		scaled := uint64(float64(target) * w)
		if scaled == 0 {
			scaled = 1
		}
		work[i] = machine.DynamicApp{
			Model:    m,
			Target:   scaled,
			ArriveAt: e.ArriveAt,
			Priority: e.Priority,
			Weight:   e.Weight,
		}
		isoCycles[i] = float64(scaled) / ipc
	}
	return work, isoCycles, nil
}

// DynamicStats are the open-system aggregate metrics of one dynamic run.
type DynamicStats struct {
	// Completed counts apps that finished within the run bound.
	Completed int
	// MeanResponseCycles averages response time over completed apps.
	MeanResponseCycles float64
	// ANTT is the mean normalized response time over completed apps:
	// response / isolated time of the same work (lower is better).
	ANTT float64
	// STP is the completed isolated-app work per cycle (higher is
	// better; bounded by the hardware-thread count).
	STP float64
	// WeightedSTP is STP with each completed app's isolated work scaled
	// by its class weight, normalized by the mean weight of the completed
	// apps so that uniform weights reproduce STP exactly. It summarises
	// the latency-vs-batch-throughput trade of priority-aware admission:
	// a policy that favours heavy classes keeps WeightedSTP up even when
	// plain STP dips.
	WeightedSTP float64
	// PerClass breaks the response-time metrics out by priority class,
	// most urgent class first. Empty when every arrival is class 0 with
	// default weight (the fully backward-compatible case).
	PerClass []ClassStats
}

// ClassStats are one priority class's open-system metrics.
type ClassStats struct {
	// Priority is the class; higher is more urgent.
	Priority int
	// Weight is the mean class weight over the class's arrivals.
	Weight float64
	// Apps counts the class's arrivals; Completed those that finished.
	Apps, Completed int
	// MeanResponseCycles and P95ResponseCycles summarise the class's
	// response-time distribution over completed apps (zero when none
	// completed).
	MeanResponseCycles float64
	P95ResponseCycles  float64
	// ANTT is the class's mean normalized response time over completed
	// apps (zero when none completed — no best-looking phantom score).
	ANTT float64
}

// SummarizeDynamic computes the open-system metrics of a dynamic result
// against the isolated times returned by DynamicWork.
func SummarizeDynamic(res *machine.DynamicResult, isoCycles []float64) DynamicStats {
	var st DynamicStats
	var respSum, normSum, isoDone, wIsoDone, wSum float64
	classes := map[int]*ClassStats{}
	responses := map[int][]float64{}
	uniform := true
	for i := range res.Apps {
		a := &res.Apps[i]
		if a.Priority != 0 || (a.Weight != 0 && a.Weight != 1) {
			uniform = false
		}
		cs := classes[a.Priority]
		if cs == nil {
			cs = &ClassStats{Priority: a.Priority}
			classes[a.Priority] = cs
		}
		w := a.Weight
		if w == 0 {
			w = 1
		}
		// Mean class weight over arrivals, accumulated incrementally.
		cs.Weight += (w - cs.Weight) / float64(cs.Apps+1)
		cs.Apps++
		if !a.Finished {
			continue
		}
		st.Completed++
		cs.Completed++
		resp := float64(a.ResponseCycles)
		norm := resp / isoCycles[i]
		respSum += resp
		normSum += norm
		isoDone += isoCycles[i]
		wIsoDone += w * isoCycles[i]
		wSum += w
		cs.MeanResponseCycles += resp
		cs.ANTT += norm
		responses[a.Priority] = append(responses[a.Priority], resp)
	}
	if st.Completed > 0 {
		st.MeanResponseCycles = respSum / float64(st.Completed)
		st.ANTT = normSum / float64(st.Completed)
	}
	if res.Cycles > 0 {
		st.STP = isoDone / float64(res.Cycles)
		if meanW := wSum / float64(max(st.Completed, 1)); meanW > 0 {
			st.WeightedSTP = wIsoDone / meanW / float64(res.Cycles)
		}
	}
	if !uniform {
		// Iterate the class map through sorted keys (most urgent first)
		// so PerClass never observes map iteration order — the maporder
		// lint invariant for everything that reaches reports.
		prios := make([]int, 0, len(classes))
		for prio := range classes {
			prios = append(prios, prio)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(prios)))
		for _, prio := range prios {
			cs := classes[prio]
			if cs.Completed > 0 {
				cs.MeanResponseCycles /= float64(cs.Completed)
				cs.ANTT /= float64(cs.Completed)
				cs.P95ResponseCycles, _ = stats.Percentile(responses[prio], 0.95)
			}
			st.PerClass = append(st.PerClass, *cs)
		}
	}
	return st
}

// PoissonTrace generates a deterministic open-system trace with Poisson
// arrivals: inter-arrival gaps are exponential draws with the given mean
// (in cycles) and each arrival picks uniformly from pool. The same seed
// always yields the same trace, so Poisson scenarios are as reproducible
// as scripted ones.
func PoissonTrace(name string, seed uint64, pool []string, n int, meanGapCycles float64, work float64) Trace {
	if len(pool) == 0 || n <= 0 {
		// An empty trace fails Validate with a usable message instead of
		// panicking in rng.Intn here.
		return Trace{Name: name}
	}
	rng := xrand.New(seed)
	t := Trace{Name: name, Entries: make([]TraceEntry, 0, n)}
	var at float64
	for i := 0; i < n; i++ {
		if i > 0 {
			at += rng.Exp(meanGapCycles)
		}
		t.Entries = append(t.Entries, TraceEntry{
			App:      pool[rng.Intn(len(pool))],
			ArriveAt: uint64(at),
			Work:     work,
		})
	}
	return t
}

// ClassShare is one priority class's share of a mixed-priority trace.
type ClassShare struct {
	// Priority is the class; higher is more urgent.
	Priority int
	// Weight is the class weight carried into the weighted-STP summary.
	Weight float64
	// Share is the class's relative arrival frequency; shares need not
	// sum to 1 (they are normalized over the slice).
	Share float64
	// Work overrides the trace-level work factor for this class's
	// arrivals; zero inherits it. Distinct per-class work factors make
	// job size and class orthogonal, which is what separates size-based
	// admission (SJF, backfill) from class-based admission (priority).
	Work float64
}

// PoissonTraceMixed generates a deterministic Poisson trace whose arrivals
// draw a priority class from the given mix: each arrival picks its class
// with probability proportional to the class's Share. Like PoissonTrace,
// the same seed always yields the same trace. A nil or empty mix draws no
// class at all, so the result is bit-identical to PoissonTrace with the
// same parameters.
func PoissonTraceMixed(name string, seed uint64, pool []string, n int, meanGapCycles, work float64, mix []ClassShare) Trace {
	if len(pool) == 0 || n <= 0 {
		return Trace{Name: name}
	}
	var total float64
	for _, c := range mix {
		if c.Share > 0 {
			total += c.Share
		}
	}
	rng := xrand.New(seed)
	t := Trace{Name: name, Entries: make([]TraceEntry, 0, n)}
	var at float64
	for i := 0; i < n; i++ {
		if i > 0 {
			at += rng.Exp(meanGapCycles)
		}
		e := TraceEntry{
			App:      pool[rng.Intn(len(pool))],
			ArriveAt: uint64(at),
			Work:     work,
		}
		if total > 0 {
			// Cumulative-share draw; round-off that walks past the last
			// eligible class lands on it.
			r := rng.Float64() * total
			chosen := -1
			for idx, c := range mix {
				if c.Share <= 0 {
					continue
				}
				chosen = idx
				if r -= c.Share; r < 0 {
					break
				}
			}
			if chosen >= 0 {
				e.Priority = mix[chosen].Priority
				e.Weight = mix[chosen].Weight
				if mix[chosen].Work > 0 {
					e.Work = mix[chosen].Work
				}
			}
		}
		t.Entries = append(t.Entries, e)
	}
	return t
}

// ParseTrace reads a scripted trace. The format is line-oriented:
//
//	# comment (also after entries)
//	<arrive_cycle> <app_name> [work_factor [priority [weight]]]
//
// e.g.
//
//	0      mcf
//	0      leela_r
//	40000  lbm_r    0.5       # arrives mid-run, does half the reference work
//	80000  mcf      1    2    # priority class 2 (higher = more urgent)
//	90000  gobmk    1    2 4  # class 2 with weight 4 in the weighted STP
//
// priority (integer ≥ 0, default class 0) orders the admission queue under
// priority-aware policies; weight (positive, default 1) scales the entry in
// the weighted-STP summary. Entries need not be sorted; the runner orders
// arrivals by cycle.
func ParseTrace(name string, r io.Reader) (Trace, error) {
	t := Trace{Name: name}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 || len(fields) > 5 {
			return Trace{}, fmt.Errorf("workload: trace %q line %d: want \"<cycle> <app> [work [priority [weight]]]\", got %q",
				name, lineNo, sc.Text())
		}
		at, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return Trace{}, fmt.Errorf("workload: trace %q line %d: bad arrival cycle %q", name, lineNo, fields[0])
		}
		e := TraceEntry{App: fields[1], ArriveAt: at}
		if len(fields) >= 3 {
			// An explicit 0 is rejected rather than silently meaning the
			// in-memory default of "full reference work" — the one value
			// whose meaning would invert the author's intent.
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || w <= 0 || w > MaxWorkFactor || math.IsNaN(w) {
				return Trace{}, fmt.Errorf("workload: trace %q line %d: work factor %q must be a positive number ≤ %g", name, lineNo, fields[2], float64(MaxWorkFactor))
			}
			e.Work = w
		}
		if len(fields) >= 4 {
			p, err := strconv.Atoi(fields[3])
			if err != nil || p < 0 || p > MaxPriority {
				return Trace{}, fmt.Errorf("workload: trace %q line %d: priority %q must be an integer in [0,%d]",
					name, lineNo, fields[3], MaxPriority)
			}
			e.Priority = p
		}
		if len(fields) == 5 {
			w, err := strconv.ParseFloat(fields[4], 64)
			if err != nil || w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
				return Trace{}, fmt.Errorf("workload: trace %q line %d: weight %q must be a positive finite number", name, lineNo, fields[4])
			}
			e.Weight = w
		}
		t.Entries = append(t.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("workload: trace %q: %w", name, err)
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}
