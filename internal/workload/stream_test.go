package workload

import (
	"testing"
)

// TestPoissonStreamMatchesBatch: the lazy generator must emit the exact
// entry sequence of the materialising one — same seed, same draws.
func TestPoissonStreamMatchesBatch(t *testing.T) {
	pool := []string{"mcf", "leela_r", "lbm_r", "gobmk"}
	mix := []ClassShare{
		{Priority: 2, Weight: 4, Share: 0.2, Work: 0.05},
		{Priority: 0, Weight: 1, Share: 0.8, Work: 0.2},
	}
	for _, tc := range []struct {
		name string
		mix  []ClassShare
	}{
		{"plain", nil},
		{"mixed", mix},
	} {
		batch := PoissonTraceMixed(tc.name, 77, pool, 500, 30000, 0.1, tc.mix)
		stream := PoissonStreamMixed(tc.name, 77, pool, 500, 30000, 0.1, tc.mix)
		got := Collect(stream, 0)
		if len(got.Entries) != len(batch.Entries) {
			t.Fatalf("%s: stream emitted %d entries, batch %d", tc.name, len(got.Entries), len(batch.Entries))
		}
		for i := range batch.Entries {
			if got.Entries[i] != batch.Entries[i] {
				t.Fatalf("%s entry %d: stream %+v != batch %+v", tc.name, i, got.Entries[i], batch.Entries[i])
			}
		}
		if _, ok := stream.Next(); ok {
			t.Fatalf("%s: stream yields entries past n", tc.name)
		}
		if err := stream.Err(); err != nil {
			t.Fatalf("%s: stream error: %v", tc.name, err)
		}
	}
}

// TestPoissonStreamEmpty mirrors PoissonTrace's empty-input behaviour.
func TestPoissonStreamEmpty(t *testing.T) {
	for _, s := range []TraceStream{
		PoissonStream("none", 1, nil, 10, 1000, 1),
		PoissonStream("none", 1, []string{"mcf"}, 0, 1000, 1),
	} {
		if _, ok := s.Next(); ok {
			t.Fatal("empty stream must yield nothing")
		}
	}
}

// TestStreamTraceOrdersArrivals: StreamTrace visits entries by arrival
// cycle with ties in trace order — RunDynamic's sort.
func TestStreamTraceOrdersArrivals(t *testing.T) {
	tr := Trace{Name: "x", Entries: []TraceEntry{
		{App: "mcf", ArriveAt: 500},
		{App: "leela_r", ArriveAt: 0},
		{App: "gobmk", ArriveAt: 500},
		{App: "lbm_r", ArriveAt: 100},
	}}
	got := Collect(StreamTrace(tr), 0)
	want := []string{"leela_r", "lbm_r", "mcf", "gobmk"}
	for i, name := range want {
		if got.Entries[i].App != name {
			t.Fatalf("position %d: got %s, want %s (order %v)", i, got.Entries[i].App, name, got.Names())
		}
	}
	// The source trace must not be reordered.
	if tr.Entries[0].App != "mcf" {
		t.Fatal("StreamTrace mutated the source trace")
	}
}

func TestStreamFunc(t *testing.T) {
	s := StreamFunc("gen", func(i int) (TraceEntry, bool) {
		if i >= 3 {
			return TraceEntry{}, false
		}
		return TraceEntry{App: "mcf", ArriveAt: uint64(i) * 100}, true
	})
	got := Collect(s, 0)
	if len(got.Entries) != 3 || got.Entries[2].ArriveAt != 200 {
		t.Fatalf("unexpected entries: %+v", got.Entries)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted StreamFunc must stay exhausted")
	}
}

func TestEntryCheck(t *testing.T) {
	good := TraceEntry{App: "mcf", Work: 1, Priority: 1, Weight: 2}
	if err := good.Check(); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
	for _, bad := range []TraceEntry{
		{App: "no-such-app"},
		{App: "mcf", Work: -1},
		{App: "mcf", Priority: -1},
		{App: "mcf", Weight: -2},
	} {
		if err := bad.Check(); err == nil {
			t.Errorf("entry %+v must fail Check", bad)
		}
	}
}
