// Streaming trace sources: the fleet consumes arrivals one at a time, in
// non-decreasing ArriveAt order, so a million-job trace never has to be
// materialised. TraceStream is the iterator contract; StreamTrace adapts an
// in-memory Trace (sorting a copy of its order, not its entries), and
// PoissonStream/PoissonStreamMixed generate the exact entry sequence of
// PoissonTrace/PoissonTraceMixed lazily — same seed, same draws, same
// entries, O(1) memory (cross-checked in stream_test.go).
package workload

import (
	"fmt"
	"math"
	"sort"

	"synpa/internal/apps"
	"synpa/internal/xrand"
)

// TraceStream is a lazy open-system arrival source. Next returns entries in
// non-decreasing ArriveAt order until the stream is exhausted (ok=false);
// Err reports a generation error after exhaustion (nil on clean end).
type TraceStream interface {
	// Name labels the stream (scenario name).
	Name() string
	// Next returns the next arrival; ok is false at end of stream.
	Next() (e TraceEntry, ok bool)
	// Err returns the first generation error, if any, once ok is false.
	Err() error
}

// Check validates one trace entry: known application, bounded work factor,
// priority and weight. It is the per-entry body of Trace.Validate, shared
// with streaming consumers that never see a whole Trace.
func (e *TraceEntry) Check() error {
	if _, err := apps.ByName(e.App); err != nil {
		return err
	}
	if e.Work < 0 || e.Work > MaxWorkFactor || math.IsNaN(e.Work) {
		return fmt.Errorf("work factor %v must be in [0,%g]", e.Work, float64(MaxWorkFactor))
	}
	if e.Priority < 0 || e.Priority > MaxPriority {
		return fmt.Errorf("priority %d outside [0,%d]", e.Priority, MaxPriority)
	}
	if e.Weight < 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
		return fmt.Errorf("weight %v must be finite and non-negative", e.Weight)
	}
	return nil
}

// sliceStream iterates a materialised trace in arrival order.
type sliceStream struct {
	name    string
	entries []TraceEntry
	order   []int
	next    int
}

// StreamTrace adapts an in-memory trace to the streaming contract. The
// trace's entries need not be sorted; the stream visits them by arrival
// cycle, ties in trace order — the same order RunDynamic sorts arrivals.
func StreamTrace(t Trace) TraceStream {
	order := make([]int, len(t.Entries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return t.Entries[order[a]].ArriveAt < t.Entries[order[b]].ArriveAt
	})
	return &sliceStream{name: t.Name, entries: t.Entries, order: order}
}

func (s *sliceStream) Name() string { return s.name }
func (s *sliceStream) Err() error   { return nil }

func (s *sliceStream) Next() (TraceEntry, bool) {
	if s.next >= len(s.order) {
		return TraceEntry{}, false
	}
	e := s.entries[s.order[s.next]]
	s.next++
	return e, true
}

// poissonStream generates the PoissonTraceMixed entry sequence lazily.
type poissonStream struct {
	name    string
	rng     *xrand.RNG
	pool    []string
	n       int
	i       int
	meanGap float64
	work    float64
	mix     []ClassShare
	total   float64
	at      float64
}

// PoissonStream is the lazy equivalent of PoissonTrace: the same seed
// yields the same arrivals, one at a time, without materialising the trace.
func PoissonStream(name string, seed uint64, pool []string, n int, meanGapCycles float64, work float64) TraceStream {
	return PoissonStreamMixed(name, seed, pool, n, meanGapCycles, work, nil)
}

// PoissonStreamMixed is the lazy equivalent of PoissonTraceMixed: it emits
// the identical entry sequence for identical parameters (the generator
// consumes the same RNG draws in the same order), in O(1) memory. An empty
// pool or non-positive n yields an empty stream.
func PoissonStreamMixed(name string, seed uint64, pool []string, n int, meanGapCycles, work float64, mix []ClassShare) TraceStream {
	s := &poissonStream{
		name:    name,
		pool:    pool,
		n:       n,
		meanGap: meanGapCycles,
		work:    work,
		mix:     mix,
	}
	if len(pool) == 0 || n <= 0 {
		s.n = 0
		return s
	}
	for _, c := range mix {
		if c.Share > 0 {
			s.total += c.Share
		}
	}
	s.rng = xrand.New(seed)
	return s
}

func (s *poissonStream) Name() string { return s.name }
func (s *poissonStream) Err() error   { return nil }

func (s *poissonStream) Next() (TraceEntry, bool) {
	if s.i >= s.n {
		return TraceEntry{}, false
	}
	if s.i > 0 {
		s.at += s.rng.Exp(s.meanGap)
	}
	e := TraceEntry{
		App:      s.pool[s.rng.Intn(len(s.pool))],
		ArriveAt: uint64(s.at),
		Work:     s.work,
	}
	if s.total > 0 {
		// Cumulative-share draw; round-off that walks past the last
		// eligible class lands on it.
		r := s.rng.Float64() * s.total
		chosen := -1
		for idx, c := range s.mix {
			if c.Share <= 0 {
				continue
			}
			chosen = idx
			if r -= c.Share; r < 0 {
				break
			}
		}
		if chosen >= 0 {
			e.Priority = s.mix[chosen].Priority
			e.Weight = s.mix[chosen].Weight
			if s.mix[chosen].Work > 0 {
				e.Work = s.mix[chosen].Work
			}
		}
	}
	s.i++
	return e, true
}

// funcStream adapts a generator function to the streaming contract.
type funcStream struct {
	name string
	gen  func(i int) (TraceEntry, bool)
	i    int
	done bool
}

// StreamFunc builds a stream from a generator: gen(i) returns the i-th
// arrival, or ok=false to end the stream. The generator must emit
// non-decreasing arrival cycles (the fleet's event clock relies on it).
func StreamFunc(name string, gen func(i int) (TraceEntry, bool)) TraceStream {
	return &funcStream{name: name, gen: gen}
}

func (s *funcStream) Name() string { return s.name }
func (s *funcStream) Err() error   { return nil }

func (s *funcStream) Next() (TraceEntry, bool) {
	if s.done {
		return TraceEntry{}, false
	}
	e, ok := s.gen(s.i)
	if !ok {
		s.done = true
		return TraceEntry{}, false
	}
	s.i++
	return e, true
}

// Collect materialises up to max entries of a stream into a Trace —
// test and tooling helper, not a fleet path (the fleet never collects).
// A max of 0 drains the stream.
func Collect(ts TraceStream, max int) Trace {
	t := Trace{Name: ts.Name()}
	for max <= 0 || len(t.Entries) < max {
		e, ok := ts.Next()
		if !ok {
			break
		}
		t.Entries = append(t.Entries, e)
	}
	return t
}
