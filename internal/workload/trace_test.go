package workload

import (
	"reflect"
	"strings"
	"testing"

	"synpa/internal/machine"
)

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace("demo", strings.NewReader(`
		# header comment
		0      mcf
		0      leela_r   0.5
		40000  lbm_r     2    # trailing comment
		50000  mcf       1    3
		60000  gobmk     0.5  2  4
	`))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceEntry{
		{App: "mcf", ArriveAt: 0},
		{App: "leela_r", ArriveAt: 0, Work: 0.5},
		{App: "lbm_r", ArriveAt: 40000, Work: 2},
		{App: "mcf", ArriveAt: 50000, Work: 1, Priority: 3},
		{App: "gobmk", ArriveAt: 60000, Work: 0.5, Priority: 2, Weight: 4},
	}
	if tr.Name != "demo" || !reflect.DeepEqual(tr.Entries, want) {
		t.Fatalf("parsed %+v, want %+v", tr.Entries, want)
	}
	if !reflect.DeepEqual(tr.Names(), []string{"mcf", "leela_r", "lbm_r", "mcf", "gobmk"}) {
		t.Fatalf("Names = %v", tr.Names())
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "# nothing but comments\n",
		"unknown app":       "0 not_a_benchmark\n",
		"bad cycle":         "soon mcf\n",
		"bad work":          "0 mcf lots\n",
		"negative":          "0 mcf -1\n",
		"nan work":          "0 mcf NaN\n", // ParseFloat accepts the token
		"huge work":         "0 mcf 1e300\n",
		"extra fields":      "0 mcf 1 2 4 9\n",
		"missing app":       "5000\n",
		"comment-eaten":     "5000 # mcf\n",
		"zero work":         "0 mcf 0\n", // explicit 0 would silently mean full work
		"negative priority": "0 mcf 1 -2\n",
		"frac priority":     "0 mcf 1 1.5\n",
		"huge priority":     "0 mcf 1 9999999\n",
		"zero weight":       "0 mcf 1 2 0\n",
		"negative weight":   "0 mcf 1 2 -1\n",
		"nan weight":        "0 mcf 1 2 NaN\n",
	}
	for name, text := range cases {
		if _, err := ParseTrace(name, strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestTraceSpanUnsorted(t *testing.T) {
	tr := Trace{Entries: []TraceEntry{
		{App: "mcf", ArriveAt: 40_000},
		{App: "leela_r", ArriveAt: 0},
		{App: "gobmk", ArriveAt: 10_000},
	}}
	if got := tr.Span(); got != 40_000 {
		t.Fatalf("Span = %d, want 40000 (entries are unsorted)", got)
	}
	empty := Trace{}
	if got := empty.Span(); got != 0 {
		t.Fatalf("empty Span = %d", got)
	}
}

func TestTraceValidate(t *testing.T) {
	good := Trace{Name: "ok", Entries: []TraceEntry{{App: "mcf"}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Trace{Name: "bad", Entries: []TraceEntry{{App: "mcf", Work: -0.5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative work accepted")
	}
}

func TestPoissonTraceDeterministic(t *testing.T) {
	pool := []string{"mcf", "leela_r", "lbm_r"}
	a := PoissonTrace("p", 11, pool, 20, 10_000, 0.5)
	b := PoissonTrace("p", 11, pool, 20, 10_000, 0.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != 20 {
		t.Fatalf("%d entries, want 20", len(a.Entries))
	}
	// Arrivals are non-decreasing, start at 0, and actually spread out.
	var last uint64
	for i, e := range a.Entries {
		if e.ArriveAt < last {
			t.Fatalf("entry %d arrives at %d before %d", i, e.ArriveAt, last)
		}
		last = e.ArriveAt
	}
	if a.Entries[0].ArriveAt != 0 {
		t.Fatalf("first arrival at %d, want 0", a.Entries[0].ArriveAt)
	}
	if last == 0 {
		t.Fatal("all arrivals at 0: no exponential gaps drawn")
	}
	c := PoissonTrace("p", 12, pool, 20, 10_000, 0.5)
	if reflect.DeepEqual(a.Entries, c.Entries) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestPoissonTraceDegenerate(t *testing.T) {
	// Empty pools and non-positive counts must not panic; the resulting
	// empty trace fails Validate with a usable message.
	for _, tr := range []Trace{
		PoissonTrace("nopool", 1, nil, 4, 10_000, 0.5),
		PoissonTrace("nojobs", 1, []string{"mcf"}, 0, 10_000, 0.5),
	} {
		if err := tr.Validate(); err == nil {
			t.Fatalf("%s: degenerate trace validated", tr.Name)
		}
	}
}

func TestSummarizeDynamicFinishedFlag(t *testing.T) {
	// Completion is the explicit Finished flag, not FinishAt != 0: an app
	// finishing at cycle 0 (zero-length work arriving at cycle 0) counts as
	// completed, and an unfinished app is excluded whatever its stamp says.
	res := &machine.DynamicResult{Apps: []machine.DynamicAppResult{
		{Name: "zero", Admitted: true, Finished: true, FinishAt: 0, ResponseCycles: 0, Weight: 1},
		{Name: "done", Admitted: true, Finished: true, FinishAt: 500, ResponseCycles: 400, IPC: 1, Weight: 1},
		{Name: "hung", Admitted: true, Finished: false, FinishAt: 999, Priority: 1, Weight: 1},
	}}
	st := SummarizeDynamic(res, []float64{100, 200, 300})
	if st.Completed != 2 {
		t.Fatalf("Completed = %d, want 2 (cycle-0 finisher counted, unfinished excluded)", st.Completed)
	}
	if len(st.PerClass) != 2 {
		t.Fatalf("PerClass = %+v, want two classes", st.PerClass)
	}
	for _, c := range st.PerClass {
		switch c.Priority {
		case 0:
			if c.Completed != 2 || c.Apps != 2 {
				t.Fatalf("class 0 = %+v, want 2/2 done", c)
			}
		case 1:
			if c.Completed != 0 || c.Apps != 1 {
				t.Fatalf("class 1 = %+v, want 0/1 done (nonzero FinishAt is not completion)", c)
			}
		}
	}
}
