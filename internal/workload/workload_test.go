package workload

import (
	"testing"

	"synpa/internal/apps"
	"synpa/internal/machine"
)

func TestStandardSetComposition(t *testing.T) {
	set := StandardSet(1)
	if len(set) != 20 {
		t.Fatalf("standard set has %d workloads, paper evaluates 20", len(set))
	}
	counts := map[Kind]int{}
	for _, w := range set {
		counts[w.Kind]++
		if len(w.Apps) != AppsPerWorkload {
			t.Errorf("%s has %d apps, want %d", w.Name, len(w.Apps), AppsPerWorkload)
		}
	}
	if counts[Backend] != 5 || counts[Frontend] != 5 || counts[Mixed] != 10 {
		t.Fatalf("kind counts = %v, want 5/5/10", counts)
	}
}

func TestStandardSetRecipes(t *testing.T) {
	for _, w := range StandardSet(7) {
		groups := map[apps.Group]int{}
		for _, m := range w.Apps {
			groups[m.Group]++
		}
		switch w.Kind {
		case Backend:
			if groups[apps.GroupBackend] < 5 {
				t.Errorf("%s has only %d backend-bound apps", w.Name, groups[apps.GroupBackend])
			}
			if groups[apps.GroupFrontend] > 0 {
				t.Errorf("%s contains frontend-bound apps", w.Name)
			}
		case Frontend:
			if groups[apps.GroupFrontend] < 5 {
				t.Errorf("%s has only %d frontend-bound apps", w.Name, groups[apps.GroupFrontend])
			}
			if groups[apps.GroupBackend] > 0 {
				t.Errorf("%s contains backend-bound apps", w.Name)
			}
		case Mixed:
			if groups[apps.GroupBackend] != 4 || groups[apps.GroupFrontend] != 4 {
				t.Errorf("%s split = %v, want 4 backend + 4 frontend", w.Name, groups)
			}
		}
	}
}

func TestPublishedCompositions(t *testing.T) {
	// The three workloads the paper spells out must match exactly.
	fb2, err := ByName(123, "fb2")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"lbm_r", "mcf", "cactuBSSN_r", "mcf", "leela_r", "leela_r", "astar", "mcf_r"}
	got := fb2.Names()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fb2 = %v, want %v", got, want)
		}
	}

	be1, _ := ByName(123, "be1")
	if be1.Names()[0] != "cactuBSSN_r" || be1.Kind != Backend {
		t.Fatalf("be1 = %v", be1.Names())
	}
	fe2, _ := ByName(123, "fe2")
	if fe2.Names()[0] != "leela_r" || fe2.Kind != Frontend {
		t.Fatalf("fe2 = %v", fe2.Names())
	}
}

func TestStandardSetDeterministic(t *testing.T) {
	a := StandardSet(99)
	b := StandardSet(99)
	for i := range a {
		an, bn := a[i].Names(), b[i].Names()
		for j := range an {
			if an[j] != bn[j] {
				t.Fatalf("workload %s differs across calls with same seed", a[i].Name)
			}
		}
	}
	c := StandardSet(100)
	same := true
	for i := range a {
		if a[i].Name == "fb2" || a[i].Name == "be1" || a[i].Name == "fe2" {
			continue // published, seed-independent
		}
		an, cn := a[i].Names(), c[i].Names()
		for j := range an {
			if an[j] != cn[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical generated workloads")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName(1, "zz9"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestKindString(t *testing.T) {
	if Backend.String() != "backend" || Frontend.String() != "frontend" || Mixed.String() != "mixed" {
		t.Fatal("kind labels wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind label empty")
	}
}

func testCfg() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.QuantumCycles = 5_000
	cfg.Parallel = false
	return cfg
}

func TestTargetCache(t *testing.T) {
	tc := NewTargetCache(testCfg(), 10, 42)
	m, _ := apps.ByName("mcf")

	tgt, err := tc.Target(m)
	if err != nil {
		t.Fatal(err)
	}
	if tgt == 0 {
		t.Fatal("zero target")
	}
	// Cached: same value back.
	tgt2, _ := tc.Target(m)
	if tgt2 != tgt {
		t.Fatal("cache returned a different target")
	}

	ipc, err := tc.IsolatedIPC(m)
	if err != nil {
		t.Fatal(err)
	}
	// mcf is heavily memory bound; its IPC must be well under 1.
	if ipc <= 0 || ipc > 1 {
		t.Fatalf("mcf isolated IPC = %v", ipc)
	}
	// Target and IPC must be mutually consistent: target = IPC · cycles.
	wantTarget := uint64(ipc * float64(10*5_000))
	diff := int64(tgt) - int64(wantTarget)
	if diff < -1 || diff > 1 {
		t.Fatalf("target %d inconsistent with IPC %v (want ~%d)", tgt, ipc, wantTarget)
	}
}

func TestTargetsForWorkload(t *testing.T) {
	tc := NewTargetCache(testCfg(), 8, 42)
	w, err := ByName(1, "fb2")
	if err != nil {
		t.Fatal(err)
	}
	targets, err := tc.Targets(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 8 {
		t.Fatalf("got %d targets", len(targets))
	}
	// Duplicate apps (mcf twice, leela_r twice) share one target.
	if targets[1] != targets[3] {
		t.Fatal("two mcf instances should share a target")
	}
	if targets[4] != targets[5] {
		t.Fatal("two leela_r instances should share a target")
	}
	ipcs, err := tc.IsolatedIPCs(w)
	if err != nil {
		t.Fatal(err)
	}
	// Faster apps must have proportionally larger targets.
	for i := range targets {
		if ipcs[i] <= 0 {
			t.Fatalf("ipc[%d] = %v", i, ipcs[i])
		}
	}
}

func TestHigherIPCMeansHigherTarget(t *testing.T) {
	tc := NewTargetCache(testCfg(), 10, 42)
	fast, _ := apps.ByName("nab_r") // IPC ≈ 2.3
	slow, _ := apps.ByName("mcf")   // IPC ≈ 0.33
	tf, _ := tc.Target(fast)
	ts, _ := tc.Target(slow)
	if tf <= ts {
		t.Fatalf("nab_r target %d should exceed mcf target %d", tf, ts)
	}
}
