// Package regression implements ordinary least squares linear regression,
// the numerical core of SYNPA's interference model (paper §IV). The model of
// Eq. 1 is linear in its coefficients,
//
//	C_smt[i,j] = α + β·C_st[i] + γ·C_st[j] + ρ·C_st[i]·C_st[j],
//
// so fitting reduces to OLS on the design matrix [1, Ci, Cj, Ci·Cj]. The
// solver uses the normal equations with Gaussian elimination and partial
// pivoting, plus a tiny ridge fallback for rank-deficient systems (which
// arise when a training term is constant, e.g. the paper's FE model where
// γ = ρ = 0).
package regression

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the fitting routines.
var (
	ErrDimensionMismatch = errors.New("regression: rows of X and y differ")
	ErrTooFewSamples     = errors.New("regression: fewer samples than coefficients")
	ErrSingular          = errors.New("regression: singular normal equations")
	ErrEmpty             = errors.New("regression: empty design matrix")
)

// Model is a fitted linear model y ≈ X·Coef.
type Model struct {
	// Coef holds the fitted coefficients, one per design-matrix column.
	Coef []float64
	// MSE is the mean squared error over the training samples.
	MSE float64
	// R2 is the coefficient of determination over the training samples.
	R2 float64
	// N is the number of training samples used.
	N int
}

// Fit solves min ||X·c − y||² by the normal equations. Each row of x is one
// sample; all rows must have equal length.
func Fit(x [][]float64, y []float64) (*Model, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	if len(x) != len(y) {
		return nil, ErrDimensionMismatch
	}
	p := len(x[0])
	if p == 0 {
		return nil, ErrEmpty
	}
	if len(x) < p {
		return nil, ErrTooFewSamples
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("regression: row %d has %d columns, want %d", i, len(row), p)
		}
	}

	// Build XᵀX (p×p) and Xᵀy (p).
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for _, rowIdx := range sampleIndices(len(x)) {
		row := x[rowIdx]
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[rowIdx]
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}

	coef, err := SolveLinear(xtx, xty)
	if err != nil {
		// Rank-deficient training sets occur legitimately (constant
		// columns). Retry with a tiny ridge on the diagonal, which
		// shrinks unidentifiable coefficients toward zero — matching
		// the paper's reporting of exact zeros for γ and ρ in the FE
		// category.
		const ridge = 1e-9
		for i := 0; i < p; i++ {
			xtx[i][i] += ridge
		}
		coef, err = SolveLinear(xtx, xty)
		if err != nil {
			return nil, err
		}
	}

	m := &Model{Coef: coef, N: len(x)}
	m.MSE, m.R2 = Evaluate(coef, x, y)
	return m, nil
}

// Predict evaluates the fitted model on one sample row.
func (m *Model) Predict(row []float64) float64 {
	s := 0.0
	for i, c := range m.Coef {
		s += c * row[i]
	}
	return s
}

// Evaluate returns the MSE and R² of coefficients coef on samples (x, y).
func Evaluate(coef []float64, x [][]float64, y []float64) (mse, r2 float64) {
	if len(x) == 0 {
		return 0, 0
	}
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(len(y))

	var sse, sst float64
	for i, row := range x {
		pred := 0.0
		for j, c := range coef {
			pred += c * row[j]
		}
		d := y[i] - pred
		sse += d * d
		dy := y[i] - meanY
		sst += dy * dy
	}
	mse = sse / float64(len(x))
	if sst == 0 {
		if sse == 0 {
			r2 = 1
		}
		return mse, r2
	}
	return mse, 1 - sse/sst
}

// sampleIndices returns 0..n-1; factored out so accumulation order is
// explicit and deterministic.
func sampleIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// SolveLinear solves the dense linear system A·x = b using Gaussian
// elimination with partial pivoting. A is modified; pass a copy if the
// caller needs it intact. It returns ErrSingular when a pivot underflows.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, ErrDimensionMismatch
	}
	// Work on copies to keep the API side-effect free for callers that
	// reuse matrices (the training pipeline fits three categories from
	// overlapping scatter matrices).
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, ErrDimensionMismatch
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	v := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m[r][col]); abs > best {
				pivot, best = r, abs
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		v[col], v[pivot] = v[pivot], v[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			v[r] -= f * v[col]
		}
	}

	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := v[i]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// PairRow builds the Eq. 1 design row [1, ci, cj, ci·cj] for one sample:
// the category value of the target application in isolation (ci), of the
// co-runner in isolation (cj), and their product.
func PairRow(ci, cj float64) []float64 {
	return []float64{1, ci, cj, ci * cj}
}

// PairDesign builds a full design matrix from parallel slices of isolated
// category values. It panics if the slices differ in length, which would be
// a programming error in the training pipeline.
func PairDesign(ci, cj []float64) [][]float64 {
	if len(ci) != len(cj) {
		panic("regression: PairDesign length mismatch")
	}
	x := make([][]float64, len(ci))
	for k := range ci {
		x[k] = PairRow(ci[k], cj[k])
	}
	return x
}
