package regression

import (
	"math"
	"testing"
	"testing/quick"

	"synpa/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitExactLine(t *testing.T) {
	// y = 3 + 2x fitted exactly from noiseless data.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{3, 5, 7, 9}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Coef[0], 3, 1e-9) || !almostEq(m.Coef[1], 2, 1e-9) {
		t.Fatalf("coef = %v, want [3 2]", m.Coef)
	}
	if m.MSE > 1e-18 {
		t.Fatalf("MSE = %v, want ~0", m.MSE)
	}
	if !almostEq(m.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", m.R2)
	}
}

func TestFitRecoversEq1Coefficients(t *testing.T) {
	// Generate data from a known Eq. 1 model and verify recovery.
	rng := xrand.New(99)
	alpha, beta, gamma, rho := 0.21, 0.34, 1.44, 0.031
	var x [][]float64
	var y []float64
	for k := 0; k < 500; k++ {
		ci := rng.Float64()
		cj := rng.Float64()
		x = append(x, PairRow(ci, cj))
		y = append(y, alpha+beta*ci+gamma*cj+rho*ci*cj)
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{alpha, beta, gamma, rho}
	for i, w := range want {
		if !almostEq(m.Coef[i], w, 1e-9) {
			t.Fatalf("coef[%d] = %v, want %v (all %v)", i, m.Coef[i], w, m.Coef)
		}
	}
}

func TestFitWithNoise(t *testing.T) {
	rng := xrand.New(7)
	alpha, beta := 1.0, -2.0
	var x [][]float64
	var y []float64
	for k := 0; k < 5000; k++ {
		v := rng.Float64() * 10
		x = append(x, []float64{1, v})
		y = append(y, alpha+beta*v+0.1*rng.NormFloat64())
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Coef[0], alpha, 0.05) || !almostEq(m.Coef[1], beta, 0.01) {
		t.Fatalf("coef = %v, want ~[1 -2]", m.Coef)
	}
	if m.MSE > 0.012 {
		t.Fatalf("MSE = %v, want ~0.01", m.MSE)
	}
	if m.R2 < 0.99 {
		t.Fatalf("R2 = %v, want > 0.99", m.R2)
	}
}

func TestFitConstantColumn(t *testing.T) {
	// A constant (all-zero) regressor makes the normal equations singular;
	// the ridge fallback should pin its coefficient near zero, matching
	// the paper's γ = ρ = 0 rows in Table IV.
	var x [][]float64
	var y []float64
	rng := xrand.New(3)
	for k := 0; k < 100; k++ {
		v := rng.Float64()
		x = append(x, []float64{1, v, 0})
		y = append(y, 2+3*v)
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Coef[0], 2, 1e-6) || !almostEq(m.Coef[1], 3, 1e-6) {
		t.Fatalf("coef = %v, want [2 3 ~0]", m.Coef)
	}
	if math.Abs(m.Coef[2]) > 1e-6 {
		t.Fatalf("dead coefficient = %v, want ~0", m.Coef[2])
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err != ErrEmpty {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}); err != ErrDimensionMismatch {
		t.Fatalf("mismatch: %v", err)
	}
	if _, err := Fit([][]float64{{1, 2}}, []float64{1}); err != ErrTooFewSamples {
		t.Fatalf("too few: %v", err)
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged design accepted")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}); err != ErrEmpty {
		t.Fatalf("zero-width: %v", err)
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// Input must not be clobbered.
	if a[0][0] != 2 || b[0] != 8 {
		t.Fatal("SolveLinear mutated its inputs")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the initial pivot position requires row exchange.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{3, 5}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 5, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [5 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("singular err = %v", err)
	}
}

func TestSolveLinearDimensionErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err != ErrDimensionMismatch {
		t.Fatalf("nil: %v", err)
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err != ErrDimensionMismatch {
		t.Fatalf("b length: %v", err)
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err != ErrDimensionMismatch {
		t.Fatalf("ragged: %v", err)
	}
}

func TestSolveLinearProperty(t *testing.T) {
	// For random diagonally dominant systems (guaranteed non-singular),
	// A·x must reproduce b.
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(6)
		a := make([][]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			rowSum := 0.0
			for j := range a[i] {
				a[i][j] = rng.Float64()*2 - 1
				rowSum += math.Abs(a[i][j])
			}
			a[i][i] = rowSum + 1 // diagonal dominance
			b[i] = rng.Float64() * 10
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += a[i][j] * x[j]
			}
			if !almostEq(s, b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluate(t *testing.T) {
	coef := []float64{1, 2}
	x := [][]float64{{1, 1}, {1, 2}}
	y := []float64{3, 5} // perfect
	mse, r2 := Evaluate(coef, x, y)
	if mse != 0 || r2 != 1 {
		t.Fatalf("mse=%v r2=%v, want 0,1", mse, r2)
	}
	y = []float64{4, 4} // mean model exactly
	mse, r2 = Evaluate(coef, x, y)
	if !almostEq(mse, 1, 1e-12) {
		t.Fatalf("mse = %v, want 1", mse)
	}
	// Constant y with wrong predictions: R² stays 0 (sst = 0, sse > 0).
	mse, r2 = Evaluate([]float64{0, 0}, x, []float64{2, 2})
	if r2 != 0 || mse != 4 {
		t.Fatalf("constant-y case mse=%v r2=%v", mse, r2)
	}
	if m, r := Evaluate(coef, nil, nil); m != 0 || r != 0 {
		t.Fatal("empty Evaluate should be zeros")
	}
}

func TestPairRowAndDesign(t *testing.T) {
	row := PairRow(0.25, 0.5)
	want := []float64{1, 0.25, 0.5, 0.125}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("PairRow = %v, want %v", row, want)
		}
	}
	d := PairDesign([]float64{1, 2}, []float64{3, 4})
	if len(d) != 2 || d[1][3] != 8 {
		t.Fatalf("PairDesign = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PairDesign length mismatch did not panic")
		}
	}()
	PairDesign([]float64{1}, []float64{1, 2})
}

func TestModelPredict(t *testing.T) {
	m := &Model{Coef: []float64{1, 2, 3}}
	if got := m.Predict([]float64{1, 10, 100}); got != 321 {
		t.Fatalf("Predict = %v, want 321", got)
	}
}

func BenchmarkFitEq1_500Samples(b *testing.B) {
	rng := xrand.New(99)
	var x [][]float64
	var y []float64
	for k := 0; k < 500; k++ {
		ci, cj := rng.Float64(), rng.Float64()
		x = append(x, PairRow(ci, cj))
		y = append(y, 0.2+0.3*ci+1.4*cj+0.03*ci*cj)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
