// Golden-regression harness: every experiment the repository claims is
// bit-identical across PRs is rendered at a fixed scaled-down configuration,
// hashed, and compared against the committed digests in
// testdata/golden.json. A digest mismatch means an output bit changed — the
// enforced CI form of the "bit-identical across PRs" differential claims.
//
// The harness lives in the regression package's external test (the package
// itself is the OLS solver at the numerical heart of the model, which makes
// it the natural owner of the repository's regression *testing* too) so it
// can drive the experiment suite without an import cycle.
//
// Regenerate after an intentional output change with:
//
//	go test ./internal/regression -run TestGoldenDigests -update
//
// and commit the refreshed testdata/golden.json together with the change
// that moved the numbers, explaining why in the commit message. On a
// mismatch the test writes testdata/golden.got.json (digests plus the full
// rendered tables) so CI can upload the diff as an artifact.
package regression_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"synpa/internal/experiments"
	"synpa/internal/obs"
)

var update = flag.Bool("update", false, "regenerate testdata/golden.json from the current implementation")

// goldenConfig is the fixed digest-mode configuration: scaled down from the
// published defaults so the whole harness runs in CI time, but exercising
// every layer (training, closed-system figures, the dynamic runner, SMT4
// grouping). Changing any of these values invalidates every digest.
func goldenConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Machine.QuantumCycles = 8000
	cfg.RefQuanta = 30
	cfg.Reps = 1
	cfg.MaxQuanta = 20_000
	return cfg
}

// goldenFile is the committed digest set.
type goldenFile struct {
	// Note documents what the digests pin.
	Note string `json:"note"`
	// Digests maps experiment name to the SHA-256 of its rendered table.
	Digests map[string]string `json:"digests"`
}

// gotFile is written on mismatch (or -update) for the CI artifact: digests
// plus the rendered tables, so a digest diff is diagnosable without rerunning.
type gotFile struct {
	Digests map[string]string `json:"digests"`
	Tables  map[string]string `json:"tables"`
}

// goldenExperiments returns the digest-mode experiment set in a fixed order:
// the closed-system figure/table claims (fig5, fig9, table4), the dynamic
// scenarios (dyn0–dyn4 via the dynamic table), the SMT4 comparison, and the
// fleet grid (whose digest doubles as the worker-count-invariance pin: CI
// runs it at whatever parallelism the runner has, and the digest only
// matches if the report is bit-identical to the committed serial render).
func goldenExperiments(s *experiments.Suite) []struct {
	name string
	run  func() (*experiments.Table, error)
} {
	return []struct {
		name string
		run  func() (*experiments.Table, error)
	}{
		{"fig5", s.Fig5},
		{"fig9", s.Fig9},
		{"table4", s.TableIV},
		{"dynamic", s.DynamicTable},
		{"smt4", s.SMT4Table},
		{"dynfleet", s.DynFleetTable},
	}
}

func TestGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("golden digest harness runs the experiment suite; skipped in -short")
	}
	s := experiments.NewSuite(goldenConfig())

	got := gotFile{Digests: map[string]string{}, Tables: map[string]string{}}
	for _, e := range goldenExperiments(s) {
		tab, err := e.run()
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		rendered := tab.String()
		sum := sha256.Sum256([]byte(rendered))
		got.Digests[e.name] = hex.EncodeToString(sum[:])
		got.Tables[e.name] = rendered
	}

	goldenPath := filepath.Join("testdata", "golden.json")
	if *update {
		g := goldenFile{
			Note:    "SHA-256 digests of the rendered golden experiments at the scaled digest-mode configuration (see goldenConfig); regenerate with -update only alongside an intentional output change",
			Digests: got.Digests,
		}
		buf, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden digests regenerated: %s", goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading committed golden digests (run with -update to generate): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}

	mismatch := false
	for _, e := range goldenExperiments(s) {
		w, ok := want.Digests[e.name]
		if !ok {
			t.Errorf("%s: no committed digest (regenerate with -update)", e.name)
			mismatch = true
			continue
		}
		if g := got.Digests[e.name]; g != w {
			t.Errorf("%s: digest mismatch\n  committed: %s\n  got:       %s", e.name, w, g)
			mismatch = true
		}
	}
	for name := range want.Digests {
		if _, ok := got.Digests[name]; !ok {
			t.Errorf("%s: committed digest has no matching experiment", name)
			mismatch = true
		}
	}
	if mismatch {
		// The full rendered tables make the digest diff diagnosable; CI
		// uploads this file as an artifact on failure.
		out, err := json.MarshalIndent(got, "", "  ")
		if err == nil {
			gotPath := filepath.Join("testdata", "golden.got.json")
			if werr := os.WriteFile(gotPath, append(out, '\n'), 0o644); werr == nil {
				t.Logf("rendered tables and digests written to %s", gotPath)
			}
		}
	}
}

// TestGoldenDigestsUnchangedWithSharedCache pins the shared concurrent
// prediction cache's bit-identity claim at the digest level: the fleet
// grid rendered with one shared cache per run (fleet.Config.SharedCache,
// many machines hitting one memo) must reproduce the committed dynfleet
// digest bit for bit — concurrent sharing may change which calls hit, but
// never an output (internal/predcache package docs).
func TestGoldenDigestsUnchangedWithSharedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the dynfleet golden experiment; skipped in -short")
	}
	buf, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatalf("reading committed golden digests: %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}

	cfg := goldenConfig()
	cfg.FleetSharedCache = true
	s := experiments.NewSuite(cfg)
	tab, err := s.DynFleetTable()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(tab.String()))
	if got := hex.EncodeToString(sum[:]); got != want.Digests["dynfleet"] {
		t.Fatalf("shared cache perturbed the dynfleet digest\n  committed: %s\n  got:       %s\n%s",
			want.Digests["dynfleet"], got, tab.String())
	}
}

// TestGoldenDigestsUnchangedWithTracing pins the observability layer's
// zero-perturbation claim at the digest level: running a golden experiment
// with a live observer attached must reproduce the committed digest bit
// for bit, while actually collecting events. The dynamic table exercises
// the instrumented DynRunner lifecycle end to end; tracing forces a serial
// suite (the event trace is not parallel-safe — see experiments.Config.Obs).
func TestGoldenDigestsUnchangedWithTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the dynamic golden experiment; skipped in -short")
	}
	buf, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatalf("reading committed golden digests: %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}

	cfg := goldenConfig()
	cfg.Parallel = false
	cfg.Obs = obs.NewObserver(0)
	s := experiments.NewSuite(cfg)
	tab, err := s.DynamicTable()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(tab.String()))
	if got := hex.EncodeToString(sum[:]); got != want.Digests["dynamic"] {
		t.Fatalf("tracing perturbed the dynamic digest\n  committed: %s\n  got:       %s\n%s",
			want.Digests["dynamic"], got, tab.String())
	}
	if len(cfg.Obs.Trace.Events()) == 0 {
		t.Fatal("observer attached but no events collected — the pin is vacuous")
	}
	if cfg.Obs.Reg.Snapshot().Counters["jobs.completed"] == 0 {
		t.Fatal("observer attached but no counters accrued")
	}
}
