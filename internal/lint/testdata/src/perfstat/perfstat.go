// Package perfstat is the nondet allowlist fixture: same calls as the
// core fixture, but the package is outside the simulation core (its job
// is wall-clock measurement), so nothing here may be flagged.
package perfstat

import (
	"os"
	"runtime"
	"time"
)

// Snapshot legitimately reads host state: timing is this package's job.
func Snapshot() (int64, int, string) {
	return time.Now().UnixNano(), runtime.GOMAXPROCS(0), os.Getenv("SYNPA_BENCH_FAST")
}
