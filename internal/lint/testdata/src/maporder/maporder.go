// Package maporder is the fixture for the maporder analyzer: each // want
// comment is an expected diagnostic on its line.
package maporder

import (
	"bytes"
	"fmt"
	"sort"
)

// appendValuesUnsorted leaks map order into a result slice.
func appendValuesUnsorted(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want `maporder: out accumulates map-range elements`
	}
	return out
}

// appendValuesSorted collects then sorts: the canonical repair.
func appendValuesSorted(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// appendKeysSorted is the sorted-key-extraction idiom.
func appendKeysSorted(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendKeysUnsorted collects keys but never sorts them.
func appendKeysUnsorted(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `maporder: keys accumulates map-range elements`
	}
	return keys
}

// sortInOuterBlock sorts after the enclosing if: still recognized.
func sortInOuterBlock(m map[int]string, cond bool) []int {
	var keys []int
	if cond {
		for k := range m {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

// floatAccumulate sums float values in map order.
func floatAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `maporder: float accumulation into sum`
	}
	return sum
}

// floatSelfAssign is the spelled-out form of the same reduction.
func floatSelfAssign(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `maporder: float accumulation into sum`
	}
	return sum
}

// intAccumulate is order-independent: integer addition is associative.
func intAccumulate(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// countOnly never observes per-element data.
func countOnly(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// printInOrder formats map elements in iteration order.
func printInOrder(m map[string]float64) {
	for k, v := range m {
		fmt.Printf("%s=%v\n", k, v) // want `maporder: fmt.Printf emits map-range data`
	}
}

// writeToBuffer streams map-range data into a writer.
func writeToBuffer(m map[string]string) string {
	var buf bytes.Buffer
	for _, v := range m {
		buf.WriteString(v) // want `maporder: WriteString streams map-range data`
	}
	return buf.String()
}

// printConstant repeats identical output: order-independent.
func printConstant(m map[string]float64) {
	for range m {
		fmt.Println("tick")
	}
}

// perEntryState mutates per-iteration and per-key state only.
func perEntryState(m map[string]*[3]float64, scale float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		local := v[0] * scale
		v[1] = local
		out[k] = local
	}
	return out
}
