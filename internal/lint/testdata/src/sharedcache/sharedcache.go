// Package sharedcache is the sharedmut fixture for the concurrent
// shared-cache pattern: serving goroutines fan out over a pool, each
// with its own per-request view, and statistics flow back either through
// task-indexed slots merged after the barrier (clean) or through
// captured accumulators written inside the tasks (findings).
package sharedcache

import "pool"

// view mirrors a per-request cache view: local hit/miss counters over a
// shared store.
type view struct {
	hits, misses uint64
}

func (v *view) lookup(key string) bool {
	if len(key)%2 == 0 {
		v.hits++
		return true
	}
	v.misses++
	return false
}

// serveIndexed is the documented pattern: one view per task index,
// stats merged serially after the barrier.
func serveIndexed(p *pool.ShardPool, keys []string, workers int) (hits uint64) {
	views := make([]view, workers)
	p.Run(workers, func(i int) {
		for k := i; k < len(keys); k += workers {
			views[i].lookup(keys[k])
		}
	})
	for i := range views {
		hits += views[i].hits
	}
	return hits
}

// serveCapturedStats folds every worker's counters into captured
// accumulators inside the tasks: a stats race that also makes the
// reported totals depend on interleaving.
func serveCapturedStats(p *pool.ShardPool, keys []string, workers int) (hits, misses uint64) {
	p.Run(workers, func(i int) {
		v := view{}
		for k := i; k < len(keys); k += workers {
			v.lookup(keys[k])
		}
		hits += v.hits     // want `sharedmut: write to captured hits`
		misses += v.misses // want `sharedmut: write to captured misses`
	})
	return hits, misses
}

// serveCapturedResident tracks the shared store's resident count in a
// captured scalar from every worker.
func serveCapturedResident(p *pool.ShardPool, inserts []string, workers int) int {
	resident := 0
	p.Run(workers, func(i int) {
		for k := i; k < len(inserts); k += workers {
			resident++ // want `sharedmut: write to captured resident`
		}
	})
	return resident
}

// warmShards populates disjoint shard slots by task index — writes land
// only in the slot the index owns, the shard-ownership shape the
// analyzer must keep allowing.
func warmShards(p *pool.ShardPool, shards []map[string]float64, keys []string) {
	p.Run(len(shards), func(i int) {
		shards[i] = make(map[string]float64)
		for _, k := range keys {
			shards[i][k] = float64(len(k))
		}
	})
}
