// Package pool is a stand-in for synpa/internal/pool with the same Run
// entry points, so the sharedmut fixture can exercise the analyzer
// without importing the real module.
package pool

// ShardPool mirrors the deterministic barrier pool.
type ShardPool struct{ width int }

// NewShardPool mirrors the real constructor.
func NewShardPool(width int) *ShardPool { return &ShardPool{width: width} }

// Run mirrors the sharded barrier Run.
func (p *ShardPool) Run(n int, step func(i int)) {
	for i := 0; i < n; i++ {
		step(i)
	}
}

// Run mirrors the atomic-counter pool entry point.
func Run(n int, parallel bool, fn func(int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
