// Package suppress is the fixture for //synpa:lint-allow handling, run
// under the maporder analyzer.
package suppress

// sameLineAllow is silenced by an allow on the flagged line.
func sameLineAllow(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v //synpa:lint-allow maporder demonstration of a justified same-line suppression
	}
	return sum
}

// lineAboveAllow is silenced by an allow on the line directly above.
func lineAboveAllow(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		//synpa:lint-allow maporder demonstration of a justified line-above suppression
		out = append(out, v)
	}
	return out
}

// wrongRuleAllow carries a well-formed allow for a different rule, so
// the maporder finding still fires.
func wrongRuleAllow(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		//synpa:lint-allow nondet this justification names the wrong rule
		sum += v // want `maporder: float accumulation into sum`
	}
	return sum
}

// farAwayAllow has an allow comment too far from the finding to apply.
func farAwayAllow(m map[string]float64) float64 {
	//synpa:lint-allow maporder this comment is not adjacent to the finding
	sum := 0.0
	for _, v := range m {
		sum += v // want `maporder: float accumulation into sum`
	}
	return sum
}
