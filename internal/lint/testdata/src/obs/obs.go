// Package obs is the nondet fixture for the observability package
// pattern: event emission stamped with simulated time is clean, a
// wall-clock stamp on an event is a finding, and an exporter annotating
// out-of-band file metadata may read the wall clock only under a
// justified allow.
package obs

import (
	"fmt"
	"io"
	"time"
)

// event mirrors the real package's shape: simulated cycles only.
type event struct {
	T  uint64
	Op string
}

// trace accumulates events.
type trace struct {
	events []event
}

// emit stamps the event with simulated time threaded in by the engine —
// the clean pattern: no host input anywhere near the event stream.
func (t *trace) emit(cycles uint64, op string) {
	t.events = append(t.events, event{T: cycles, Op: op})
}

// emitStamped is the violation the rule exists for: a wall-clock stamp
// makes the trace host-dependent and breaks byte-identity.
func (t *trace) emitStamped(op string) {
	t.events = append(t.events, event{
		T:  uint64(time.Now().UnixNano()), // want `nondet: time.Now in the simulation core`
		Op: op,
	})
}

// export writes the trace. The generation timestamp is out-of-band file
// metadata — it never feeds simulated state or the compared byte
// streams (the differential tests strip it) — so the wall-clock read
// carries a justified allow.
func (t *trace) export(w io.Writer) error {
	//synpa:lint-allow nondet export metadata is out-of-band; never feeds simulated state
	generated := time.Now().UTC().Format(time.RFC3339)
	if _, err := fmt.Fprintf(w, "# generated %s\n", generated); err != nil {
		return err
	}
	for _, ev := range t.events {
		if _, err := fmt.Fprintf(w, "%d %s\n", ev.T, ev.Op); err != nil {
			return err
		}
	}
	return nil
}
