// Package sharedmut is the fixture for the sharedmut analyzer: writes to
// captured state inside pool task functions must be task-indexed.
package sharedmut

import "pool"

type core struct {
	vals []float64
	sum  float64
}

// shardOwned writes only slots owned by the task index: the documented
// quantum-barrier pattern.
func shardOwned(p *pool.ShardPool, cores []core) {
	p.Run(len(cores), func(i int) {
		cores[i].sum = 0
		for j := range cores[i].vals {
			cores[i].vals[j] *= 2
		}
	})
}

// capturedScalar races every shard on one captured accumulator.
func capturedScalar(p *pool.ShardPool, cores []core) float64 {
	total := 0.0
	p.Run(len(cores), func(i int) {
		total += cores[i].sum // want `sharedmut: write to captured total`
	})
	return total
}

// capturedCounter increments shared state from every shard.
func capturedCounter(p *pool.ShardPool, n int) int {
	done := 0
	p.Run(n, func(i int) {
		done++ // want `sharedmut: write to captured done`
	})
	return done
}

// capturedMap writes a shared map under a non-parameter key.
func capturedMap(p *pool.ShardPool, names []string) map[string]bool {
	seen := map[string]bool{}
	p.Run(len(names), func(i int) {
		seen[names[i]] = true // want `sharedmut: write to captured seen`
	})
	return seen
}

// localState keeps all mutation task-local.
func localState(p *pool.ShardPool, cores []core) {
	p.Run(len(cores), func(i int) {
		acc := 0.0
		for _, v := range cores[i].vals {
			acc += v
		}
		cores[i].sum = acc
	})
}

// atomicPoolIndexed uses the atomic-counter pool with per-index results:
// the merge-by-index-afterwards pattern.
func atomicPoolIndexed(results []float64) error {
	return pool.Run(len(results), true, func(i int) error {
		results[i] = float64(i) * 0.5
		return nil
	})
}

// atomicPoolCaptured writes a captured error slot from every worker.
func atomicPoolCaptured(n int) error {
	var lastErr error
	_ = pool.Run(n, true, func(i int) error {
		lastErr = nil // want `sharedmut: write to captured lastErr`
		return nil
	})
	return lastErr
}

// mergeAfterBarrier writes captured state only after Run returned, which
// is serial coordinator code and fine.
func mergeAfterBarrier(p *pool.ShardPool, cores []core) float64 {
	partial := make([]float64, len(cores))
	p.Run(len(cores), func(i int) {
		partial[i] = cores[i].sum
	})
	total := 0.0
	for _, v := range partial {
		total += v
	}
	return total
}
