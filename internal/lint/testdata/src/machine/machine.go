// Package machine is the nondet fixture: its single-element import path
// has a simulation-core base name, so the analyzer treats it as core.
package machine

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

// stamp reads the wall clock inside the core.
func stamp() int64 {
	return time.Now().UnixNano() // want `nondet: time.Now in the simulation core`
}

// elapsed measures host time.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `nondet: time.Since in the simulation core`
}

// draw uses process-global RNG state.
func draw(n int) int {
	return rand.Intn(n) // want `nondet: rand.Intn uses process-global RNG state`
}

// fromEnv branches on the environment.
func fromEnv() string {
	return os.Getenv("SYNPA_X") // want `nondet: os.Getenv in the simulation core`
}

// width branches on the host's processor count.
func width() int {
	return runtime.GOMAXPROCS(0) // want `nondet: runtime.GOMAXPROCS in the simulation core`
}

// cpus is the other spelling of host-count branching.
func cpus() int {
	return runtime.NumCPU() // want `nondet: runtime.NumCPU in the simulation core`
}

// durations uses time's pure value types: fine anywhere.
func durations(d time.Duration) float64 {
	return d.Seconds()
}

// allowedWrite uses os for I/O, which is not banned — only the
// environment readers are.
func allowedWrite(path string) error {
	return os.WriteFile(path, []byte("x"), 0o644)
}
