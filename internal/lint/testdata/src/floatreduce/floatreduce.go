// Package floatreduce is the fixture for the floatreduce analyzer:
// float reductions must iterate a provably fixed order.
package floatreduce

// chanSum reduces floats in channel delivery order.
func chanSum(ch chan float64) float64 {
	sum := 0.0
	for v := range ch {
		sum += v // want `floatreduce: float reduction into sum over channel order`
	}
	return sum
}

// chanSelfAssign is the spelled-out form.
func chanSelfAssign(ch chan float64) float64 {
	sum := 0.0
	for v := range ch {
		sum = sum + v // want `floatreduce: float reduction into sum over channel order`
	}
	return sum
}

// chanCount is associative: integers are safe in any order.
func chanCount(ch chan float64) int {
	n := 0
	for range ch {
		n++
	}
	return n
}

// chanCollect collects into a slice for a later fixed-order reduction:
// the documented repair.
func chanCollect(ch chan float64) []float64 {
	var vals []float64
	for v := range ch {
		vals = append(vals, v)
	}
	return vals
}

// iterSum reduces floats in iterator yield order (e.g. maps.Values).
func iterSum(seq func(yield func(float64) bool)) float64 {
	sum := 0.0
	for v := range seq {
		sum += v // want `floatreduce: float reduction into sum over iterator order`
	}
	return sum
}

// sliceSum iterates a fixed order: never flagged.
func sliceSum(vals []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum
}
