// Package predcache is the nondet fixture for the prediction-memo
// pattern: a cache in the simulation core may key only on the bit
// patterns of its inputs. Wall-clock TTLs, probabilistic admission and
// processor-count sizing all smuggle host state into what the memo
// returns (or when it forgets), which breaks the cached ≡ uncached
// bit-identity argument.
package predcache

import (
	"math/rand"
	"runtime"
	"time"
)

// memo is the clean shape: value lifetime is a pure function of entry
// count, so a cached run differs from an uncached run only in speed.
type memo struct {
	m   map[string]float64
	max int
}

// get memoizes fn with a deterministic full clear on overflow.
func (c *memo) get(key string, fn func() float64) float64 {
	if v, ok := c.m[key]; ok {
		return v
	}
	if len(c.m) >= c.max {
		c.m = make(map[string]float64)
	}
	v := fn()
	c.m[key] = v
	return v
}

// ttlEntry pairs a value with its wall-clock insertion time.
type ttlEntry struct {
	v    float64
	when time.Time
}

// getTTL expires entries by wall-clock age: whether a lookup hits now
// depends on how fast the host ran, so two runs of the same workload can
// recompute different subsets. Both reads are findings.
func getTTL(m map[string]ttlEntry, key string, fn func() float64) float64 {
	if e, ok := m[key]; ok && time.Since(e.when) < time.Second { // want `nondet: time.Since in the simulation core`
		return e.v
	}
	v := fn()
	m[key] = ttlEntry{v: v, when: time.Now()} // want `nondet: time.Now in the simulation core`
	return v
}

// admitSampled admits entries probabilistically from the process-global
// RNG: resident sets (and therefore recomputation order) diverge across
// runs and couple to every other rand user in the process.
func admitSampled(m map[string]float64, key string, v float64) {
	if rand.Float64() < 0.5 { // want `nondet: rand.Float64 uses process-global RNG state`
		m[key] = v
	}
}

// sizeByHost shards the cache by processor count. Shard *count* here
// feeds MaxEntries-per-shard, so eviction timing — and with it which
// values are recomputed — varies across machines: a finding, not an
// allow candidate.
func sizeByHost(maxEntries int) int {
	return maxEntries / runtime.NumCPU() // want `nondet: runtime.NumCPU in the simulation core`
}

// widthFromConfig is the clean counterpart: capacity arrives through
// configuration, so the memo's forget schedule is reproducible.
func widthFromConfig(maxEntries, shards int) int {
	if shards <= 0 {
		shards = 8
	}
	return maxEntries / shards
}
