package lint

import "testing"

// TestCleanTree is the lint suite's own golden invariant: the committed
// tree has zero unsuppressed findings, so `synpa-lint ./...` exits 0.
// Any new finding is either a real determinism hazard (fix it) or a
// justified exception (add //synpa:lint-allow with the argument).
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := fixtureLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern expansion looks broken", len(pkgs))
	}
	total := 0
	for _, pkg := range pkgs {
		for _, d := range RunPackage(pkg, All()) {
			total++
			t.Errorf("%s", d)
		}
	}
	if total > 0 {
		t.Fatalf("%d findings on the committed tree; fix them or add justified //synpa:lint-allow comments", total)
	}
}
