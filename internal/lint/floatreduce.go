package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatReduce flags float reductions whose iteration order is not
// provably fixed. Float addition is non-associative: summing the same
// multiset of values in two different orders can differ in the last ulp,
// which is a full golden-digest break in a bit-identity regime. Map
// ranges are covered by maporder; this analyzer covers the two other
// unordered sources that appear in concurrent code: ranging over a
// channel (delivery order is scheduler-dependent with multiple senders)
// and ranging over a function iterator (iter.Seq — e.g. maps.Keys yields
// in map order). Reductions over slices/arrays are fixed-order and fine.
var FloatReduce = &Analyzer{
	Name: "floatreduce",
	Doc:  "float reductions must iterate a provably fixed order (no channel or iterator ranges)",
	Run:  runFloatReduce,
}

func runFloatReduce(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			source := ""
			switch tv.Type.Underlying().(type) {
			case *types.Chan:
				source = "channel"
			case *types.Signature:
				source = "iterator"
			default:
				return true
			}
			checkFloatReduce(pass, rs, source)
			return true
		})
	}
}

// checkFloatReduce flags loop-dependent float accumulation into
// variables that outlive an unordered range.
func checkFloatReduce(pass *Pass, rs *ast.RangeStmt, source string) {
	keyIdent, _ := rs.Key.(*ast.Ident)
	valIdent, _ := rs.Value.(*ast.Ident)
	loopVars := objsOf(pass.Info, keyIdent, valIdent)
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || st.Tok == token.DEFINE {
			return true
		}
		for i, lhs := range st.Lhs {
			if len(st.Rhs) <= i && len(st.Rhs) != 1 {
				break
			}
			rhs := st.Rhs[min(i, len(st.Rhs)-1)]
			lhsType := pass.Info.Types[lhs].Type
			if lhsType == nil || !isFloat(lhsType) || rootDeclaredInside(pass.Info, lhs, rs) {
				continue
			}
			accumulates := false
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				accumulates = refersTo(pass.Info, rhs, loopVars)
			case token.ASSIGN:
				accumulates = refersTo(pass.Info, rhs, objsOf(pass.Info, rootIdent(lhs))) &&
					refersTo(pass.Info, rhs, loopVars)
			}
			if accumulates {
				pass.Reportf(st.Pos(),
					"float reduction into %s over %s order is not reproducible (non-associative addition); collect into a slice and reduce in fixed order",
					types.ExprString(lhs), source)
			}
		}
		return true
	})
}
