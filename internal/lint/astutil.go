package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// parentMap records each node's syntactic parent within one file, so
// analyzers can climb from a statement to its enclosing blocks.
type parentMap map[ast.Node]ast.Node

// buildParents returns the parent map of one file.
func buildParents(f *ast.File) parentMap {
	parents := parentMap{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// objsOf collects the objects bound to the given identifiers (range loop
// variables, function literal parameters). Nil and blank identifiers are
// skipped.
func objsOf(info *types.Info, idents ...*ast.Ident) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, id := range idents {
		if id == nil || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			objs[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			objs[obj] = true
		}
	}
	return objs
}

// refersTo reports whether expr mentions any of the given objects.
func refersTo(info *types.Info, expr ast.Node, objs map[types.Object]bool) bool {
	if expr == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// declaredWithin reports whether obj's declaration position lies inside
// node's source range.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// isFloat reports whether t's underlying type is a floating-point (or
// complex) basic type — the types whose addition is non-associative, so
// reduction order changes the result bit pattern.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// useInPackage resolves id to its object and reports the package-level
// qualified name ("time", "Now") when the object belongs to an imported
// package. It returns ok=false for local objects.
func useInPackage(info *types.Info, id *ast.Ident) (pkgPath, name string, ok bool) {
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// pkgBase returns the last element of an import path.
func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// stmtsAfter returns, walking up from stmt through its enclosing blocks
// until the function boundary, every statement that executes lexically
// after stmt. maporder uses it to find the sort call that repairs a
// collect-then-sort idiom.
func stmtsAfter(parents parentMap, stmt ast.Node) []ast.Stmt {
	var after []ast.Stmt
	node := stmt
	for {
		parent := parents[node]
		if parent == nil {
			break
		}
		if block, ok := parent.(*ast.BlockStmt); ok {
			child, isStmt := node.(ast.Stmt)
			if isStmt {
				for i, s := range block.List {
					if s == child {
						after = append(after, block.List[i+1:]...)
						break
					}
				}
			}
		}
		if _, ok := parent.(*ast.FuncDecl); ok {
			break
		}
		if _, ok := parent.(*ast.FuncLit); ok {
			break
		}
		node = parent
	}
	return after
}
