// Package lint is the repository's determinism-and-concurrency static
// analysis suite. Every headline claim in this reproduction — parallel
// quantum execution bit-identical at any worker count, fleet sharding,
// golden-digest regression — rests on bit-identical determinism, and until
// now that invariant was only enforced dynamically, after a violation
// already produced a wrong bit. The analyzers here move the enforcement to
// compile time: they flag the code shapes that historically break
// reproducibility (unordered map iteration feeding output, wall-clock and
// global-RNG reads inside the simulation core, unguarded captured-state
// writes inside the shard pool, float reductions over unfixed orders)
// before a golden digest ever has the chance to drift.
//
// The framework is deliberately stdlib-only (go/parser + go/types; no
// golang.org/x/tools) so the module's empty dependency set is preserved.
// It mirrors the x/tools analysis vocabulary at miniature scale: an
// Analyzer inspects one type-checked package through a Pass and reports
// Diagnostics; the driver in cmd/synpa-lint loads packages in dependency
// order and runs the suite.
//
// Findings can be suppressed per line with a justification comment:
//
//	//synpa:lint-allow <rule> <reason>
//
// placed on the flagged line or the line directly above it. The rule name
// must be one of the registered analyzers and the reason must be non-empty;
// a malformed allow comment is itself reported (rule "lint-allow") so
// suppressions cannot silently rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule (analyzer name) that
// fired, and a human-readable message. The driver renders it as
// "file:line: rule: message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the machine-readable driver format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one lint rule: a name (the rule identifier used in output
// and in suppression comments), a one-line doc string, and a Run function
// that inspects a package through its Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos under the pass's analyzer rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{FloatReduce, MapOrder, NonDet, SharedMut}
}

// Rules returns the sorted names of every registered analyzer.
func Rules() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// ByName returns the registered analyzer with the given rule name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// RunPackage runs the given analyzers over one loaded package and returns
// the surviving diagnostics: findings not covered by a well-formed
// //synpa:lint-allow comment, plus one "lint-allow" diagnostic per
// malformed suppression comment. Results are sorted by file, line and rule.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = applySuppressions(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return diags
}

// allowRe matches a suppression comment. The rule and a non-empty reason
// are both mandatory: an allow without a justification is a finding.
var allowRe = regexp.MustCompile(`^//synpa:lint-allow\s+(\S+)(?:\s+(.*\S))?\s*$`)

// allowKey identifies one (file, line) suppression site.
type allowKey struct {
	file string
	line int
}

// applySuppressions drops diagnostics covered by a well-formed allow
// comment on the same line or the line directly above, and appends a
// "lint-allow" diagnostic for every malformed suppression comment.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	allowed := map[allowKey]map[string]bool{}
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//synpa:lint-allow") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(c.Text)
				bad := ""
				switch {
				case m == nil:
					bad = "malformed suppression comment; use //synpa:lint-allow <rule> <reason>"
				case m[2] == "":
					bad = fmt.Sprintf("suppression of %q without a reason; justify the allow", m[1])
				default:
					if _, ok := ByName(m[1]); !ok {
						bad = fmt.Sprintf("suppression of unknown rule %q; valid rules: %s",
							m[1], strings.Join(Rules(), ", "))
					}
				}
				if bad != "" {
					malformed = append(malformed, Diagnostic{Pos: pos, Rule: "lint-allow", Message: bad})
					continue
				}
				k := allowKey{file: pos.Filename, line: pos.Line}
				if allowed[k] == nil {
					allowed[k] = map[string]bool{}
				}
				allowed[k][m[1]] = true
			}
		}
	}
	kept := malformed
	for _, d := range diags {
		k := allowKey{file: d.Pos.Filename, line: d.Pos.Line}
		above := allowKey{file: d.Pos.Filename, line: d.Pos.Line - 1}
		if allowed[k][d.Rule] || allowed[above][d.Rule] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
