package lint

import (
	"go/ast"
	"strings"
)

// corePackages are the simulation-core packages where every observable
// value must be a pure function of Config + seed. Wall-clock reads,
// process-global RNG state, environment lookups and processor-count
// branching are all banned here: each one makes output depend on the
// host instead of the configuration, which breaks the bit-identity
// invariant the golden-digest harness enforces. perfstat, experiments
// and cmd/* are deliberately outside the set — wall-clock timing is
// their job — as are the pure-infrastructure packages (pool, matching,
// metrics, regression, lint) that never produce simulated observables.
var corePackages = map[string]bool{
	"smtcore":   true,
	"machine":   true,
	"fleet":     true,
	"core":      true,
	"sched":     true,
	"grouping":  true,
	"admission": true,
	"predcache": true,
	"stats":     true,
	"workload":  true,
	"xrand":     true,
	// obs produces the trace/metrics streams whose byte-identity across
	// worker counts the differential tests pin: simulated-time stamps
	// only, so it is held to the full core rule set.
	"obs": true,
}

// NonDet forbids host-dependent inputs inside the simulation core:
// time.Now/Since/Until, the global math/rand (and math/rand/v2) draw
// functions, os.Getenv/LookupEnv/Environ, and
// runtime.GOMAXPROCS/NumCPU. Legitimate uses (a worker-count default
// that cannot affect observable output) carry a //synpa:lint-allow
// nondet comment with the argument for why output is unaffected.
var NonDet = &Analyzer{
	Name: "nondet",
	Doc:  "no wall clock, global RNG, environment, or CPU-count reads inside the simulation core",
	Run:  runNonDet,
}

// nondetBanned maps package path -> banned name -> advice. An empty name
// set (math/rand) bans every package-level function.
var nondetBanned = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock reads make output host-dependent; thread simulated cycles through instead",
		"Since": "wall-clock reads make output host-dependent; thread simulated cycles through instead",
		"Until": "wall-clock reads make output host-dependent; thread simulated cycles through instead",
	},
	"os": {
		"Getenv":    "environment reads inside the core break reproducibility; plumb the setting through Config",
		"LookupEnv": "environment reads inside the core break reproducibility; plumb the setting through Config",
		"Environ":   "environment reads inside the core break reproducibility; plumb the setting through Config",
	},
	"runtime": {
		"GOMAXPROCS": "processor-count branching makes output machine-dependent; derive widths from Config",
		"NumCPU":     "processor-count branching makes output machine-dependent; derive widths from Config",
	},
	"math/rand":    nil,
	"math/rand/v2": nil,
}

// isCorePackage matches both the real tree ("synpa/internal/machine")
// and single-element fixture paths ("machine").
func isCorePackage(path string) bool {
	base := pkgBase(path)
	if !corePackages[base] {
		return false
	}
	if !strings.Contains(path, "/") {
		return true
	}
	return strings.HasSuffix(path, "internal/"+base)
}

func runNonDet(pass *Pass) {
	if !isCorePackage(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			pkgPath, name, ok := useInPackage(pass.Info, id)
			if !ok {
				return true
			}
			banned, ok := nondetBanned[pkgPath]
			if !ok {
				return true
			}
			if banned == nil {
				// Global math/rand state: any package-level draw couples the
				// simulation to process-global, scheduler-visible state.
				pass.Reportf(id.Pos(),
					"%s.%s uses process-global RNG state; use a seeded internal/xrand stream", pkgBase(pkgPath), name)
				return true
			}
			if advice, bad := banned[name]; bad {
				pass.Reportf(id.Pos(), "%s.%s in the simulation core: %s", pkgBase(pkgPath), name, advice)
			}
			return true
		})
	}
}
