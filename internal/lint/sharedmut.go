package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedMut flags writes to captured variables inside function literals
// handed to the internal/pool pools (ShardPool.Run and pool.Run). Both
// pools run the literal concurrently, so the only safe writes are the
// documented patterns: state indexed by the task parameter (task i mod
// width owns slot i — the quantum-barrier shard pattern) or state merged
// serially by the coordinator after Run returns. A bare write to a
// captured variable is a data race that -race only catches when the
// schedule happens to interleave; this check is the always-on complement.
var SharedMut = &Analyzer{
	Name: "sharedmut",
	Doc:  "no unguarded captured-variable writes inside functions handed to the internal/pool pools",
	Run:  runSharedMut,
}

func runSharedMut(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPoolRunCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkPoolFunc(pass, lit)
				}
			}
			return true
		})
	}
}

// isPoolRunCall reports whether call invokes a Run entry point of the
// internal/pool package (the ShardPool method or the atomic-counter
// function; matching by package base keeps the fixture stand-in valid).
func isPoolRunCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Run" || fn.Pkg() == nil {
		return false
	}
	return pkgBase(fn.Pkg().Path()) == "pool"
}

// checkPoolFunc inspects one task function for captured-variable writes.
func checkPoolFunc(pass *Pass, lit *ast.FuncLit) {
	params := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for obj := range objsOf(pass.Info, field.Names...) {
			params[obj] = true
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			// A nested literal inherits the same shard; its captures of
			// the outer literal's locals are shard-local. Only writes that
			// escape the outer literal matter, and those are still caught
			// because the root object's position lies outside lit.
			return true
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				checkPoolWrite(pass, lit, params, lhs)
			}
		case *ast.IncDecStmt:
			checkPoolWrite(pass, lit, params, st.X)
		}
		return true
	})
}

// indexesMap reports whether expr's type is (or points at) a map, i.e.
// indexing it yields shared buckets rather than an owned slot.
func indexesMap(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkPoolWrite flags a write whose target is captured from outside the
// task function and not indexed by a task parameter anywhere on its
// access path.
func checkPoolWrite(pass *Pass, lit *ast.FuncLit, params map[types.Object]bool, lhs ast.Expr) {
	expr := lhs
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			if refersTo(pass.Info, e.Index, params) && !indexesMap(pass.Info, e.X) {
				// Task-indexed slice/array slot: the documented
				// shard-ownership pattern. Maps never qualify — concurrent
				// map writes race regardless of key ownership.
				return
			}
			expr = e.X
		case *ast.Ident:
			if e.Name == "_" {
				return
			}
			obj := pass.Info.Uses[e]
			if obj == nil {
				obj = pass.Info.Defs[e]
			}
			if obj == nil || declaredWithin(obj, lit) {
				return
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return
			}
			pass.Reportf(lhs.Pos(),
				"write to captured %s inside a pool task function; index shared state by the task parameter or merge after the barrier",
				types.ExprString(lhs))
			return
		default:
			return
		}
	}
}
