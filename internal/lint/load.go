package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// Path is the import path ("synpa/internal/machine", or the bare
	// fixture path for testdata packages).
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads the module's packages with nothing but the standard
// library: module packages are enumerated from the filesystem, parsed,
// and type-checked in dependency order; standard-library imports are
// resolved through go/importer's source importer (which compiles them
// from GOROOT source, so no pre-built export data is needed). This keeps
// go.mod dependency-free while still giving analyzers full go/types
// information.
type Loader struct {
	// Root is the module root directory (the one holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string
	// FixtureDir, when set, resolves bare import paths against its
	// subdirectories before falling back to the standard library. The
	// analyzer fixture tests point it at testdata/src so fixture
	// packages can import small stand-in packages (e.g. "pool").
	FixtureDir string

	fset    *token.FileSet
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
}

// NewLoader returns a loader for the module rooted at root, reading the
// module path from root/go.mod.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Root:    root,
		Module:  module,
		fset:    fset,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves package patterns to packages, loading (and type-checking)
// each at most once. Supported patterns follow the go tool's shape:
// "./..." for the whole module, "./dir/..." for a subtree, and "./dir"
// (or a plain relative dir) for a single package. Results are sorted by
// import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		matched, err := l.matchPattern(pat)
		if err != nil {
			return nil, err
		}
		if len(matched) == 0 {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
		for _, d := range matched {
			dirs[d] = true
		}
	}
	var pkgs []*Package
	for dir := range dirs {
		p, err := l.loadPath(l.dirToPath(dir))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// matchPattern expands one pattern into package directories (absolute).
func (l *Loader) matchPattern(pat string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "." || pat == "" {
			pat = "."
		}
	}
	pat = strings.TrimPrefix(pat, "./")
	if pat == "" {
		pat = "."
	}
	base := filepath.Join(l.Root, pat)
	info, err := os.Stat(base)
	if err != nil || !info.IsDir() {
		return nil, fmt.Errorf("lint: pattern %q: not a package directory under %s", pat, l.Root)
	}
	if !recursive {
		if !hasGoFiles(base) {
			return nil, fmt.Errorf("lint: %q contains no non-test Go files", pat)
		}
		return []string{base}, nil
	}
	var dirs []string
	err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains non-test Go sources.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// dirToPath maps an absolute package directory to its import path.
func (l *Loader) dirToPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// pathToDir maps a module import path back to its directory.
func (l *Loader) pathToDir(path string) string {
	if path == l.Module {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
}

// loadPath parses and type-checks one package (module or fixture) by
// import path, memoized, loading its intra-module imports first.
func (l *Loader) loadPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := ""
	switch {
	case path == l.Module || strings.HasPrefix(path, l.Module+"/"):
		dir = l.pathToDir(path)
	case l.FixtureDir != "":
		dir = filepath.Join(l.FixtureDir, filepath.FromSlash(path))
	default:
		return nil, fmt.Errorf("lint: %q is not a module package", path)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %s: no non-test Go files in %s", path, dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		return l.importFrom(ipath, dir)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// importFrom resolves one import: module packages through the loader
// itself (recursing in dependency order), fixture packages from
// FixtureDir, everything else from the standard library's source.
func (l *Loader) importFrom(path, fromDir string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if l.FixtureDir != "" {
		if fi, err := os.Stat(filepath.Join(l.FixtureDir, filepath.FromSlash(path))); err == nil && fi.IsDir() {
			p, err := l.loadPath(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	return l.std.ImportFrom(path, fromDir, 0)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
