package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` statements over maps whose bodies leak Go's
// randomized iteration order into ordered state: appending map elements
// to a slice that is never sorted afterwards, accumulating floats (whose
// addition is non-associative, so the sum's bit pattern depends on visit
// order), or writing loop-dependent data straight into printed/digested
// output. All three shapes have bitten real schedulers: an unsorted
// per-class report loop reorders rows between runs and every golden
// digest downstream drifts.
//
// The analyzer recognizes the repo's canonical repair — collect the keys,
// sort them, iterate the sorted slice — and therefore does not flag
// element collection that is followed (in an enclosing block) by a
// sort/slices call on the collected slice.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach slices, float sums, or output without a deterministic key sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, parents, rs)
			return true
		})
	}
}

// checkMapRange inspects one map-range body for order-dependent sinks.
func checkMapRange(pass *Pass, parents parentMap, rs *ast.RangeStmt) {
	keyIdent, _ := rs.Key.(*ast.Ident)
	valIdent, _ := rs.Value.(*ast.Ident)
	loopVars := objsOf(pass.Info, keyIdent, valIdent)
	if len(loopVars) == 0 {
		// `for range m` bodies cannot observe per-element data; repeats
		// of identical work are order-independent.
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkMapAssign(pass, parents, rs, loopVars, st)
		case *ast.CallExpr:
			checkMapOutputCall(pass, loopVars, st)
		}
		return true
	})
}

// checkMapAssign flags loop-dependent appends into unsorted slices and
// float accumulation into variables that outlive the range.
func checkMapAssign(pass *Pass, parents parentMap, rs *ast.RangeStmt, loopVars map[types.Object]bool, st *ast.AssignStmt) {
	if st.Tok == token.DEFINE {
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) && len(st.Rhs) != 1 {
			break
		}
		rhs := st.Rhs[min(i, len(st.Rhs)-1)]
		if rootDeclaredInside(pass.Info, lhs, rs) {
			continue
		}
		// append(target, ...loop-dependent...) into an outer slice.
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass.Info, call) {
			args := call.Args[1:]
			dependent := false
			for _, a := range args {
				if refersTo(pass.Info, a, loopVars) {
					dependent = true
					break
				}
			}
			if dependent && !sortedAfter(pass, parents, rs, lhs) {
				pass.Reportf(st.Pos(),
					"%s accumulates map-range elements in iteration order and is never sorted; sort it afterwards or iterate sorted keys",
					types.ExprString(lhs))
			}
			continue
		}
		// Float accumulation: sum += v, sum -= v, sum *= v, sum /= v, or
		// sum = sum + v, over a loop-dependent right-hand side.
		lhsType := pass.Info.Types[lhs].Type
		if lhsType == nil || !isFloat(lhsType) {
			continue
		}
		accumulates := false
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			accumulates = refersTo(pass.Info, rhs, loopVars)
		case token.ASSIGN:
			// sum = sum + v: self-referencing float assignment.
			accumulates = refersTo(pass.Info, rhs, objsOf(pass.Info, rootIdent(lhs))) &&
				refersTo(pass.Info, rhs, loopVars)
		}
		if accumulates {
			pass.Reportf(st.Pos(),
				"float accumulation into %s follows map iteration order (non-associative); iterate sorted keys",
				types.ExprString(lhs))
		}
	}
}

// outputCallees are the printing entry points whose argument order
// becomes user-visible (and digest-visible) byte order.
var outputCallees = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Sprint": true, "Sprintf": true, "Sprintln": true,
		"Append": true, "Appendf": true, "Appendln": true,
	},
}

// outputMethods are writer/digest methods: emitting loop-dependent bytes
// through them inside a map range serializes the random order.
var outputMethods = map[string]bool{"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true}

// checkMapOutputCall flags printing or digesting loop-dependent values
// from inside a map range.
func checkMapOutputCall(pass *Pass, loopVars map[types.Object]bool, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	dependent := false
	for _, a := range call.Args {
		if refersTo(pass.Info, a, loopVars) {
			dependent = true
			break
		}
	}
	if !dependent {
		return
	}
	if pkgPath, name, ok := useInPackage(pass.Info, sel.Sel); ok {
		if outputCallees[pkgPath][name] {
			pass.Reportf(call.Pos(),
				"%s.%s emits map-range data in iteration order; collect and sort before formatting", pkgBase(pkgPath), name)
			return
		}
	}
	if obj := pass.Info.Uses[sel.Sel]; obj != nil {
		if fn, ok := obj.(*types.Func); ok && fn.Signature().Recv() != nil && outputMethods[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s streams map-range data in iteration order into a writer/digest; collect and sort first", fn.Name())
		}
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) < 2 {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootIdent strips selectors, stars, parens and indexes down to the
// base identifier of an assignable expression.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// rootDeclaredInside reports whether the base identifier of lhs is
// declared within the range statement (per-iteration state is
// order-independent by construction).
func rootDeclaredInside(info *types.Info, lhs ast.Expr, rs *ast.RangeStmt) bool {
	id := rootIdent(lhs)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && declaredWithin(obj, rs)
}

// sortedAfter reports whether some statement lexically after the range,
// in an enclosing block, passes the collected slice to a sort/slices
// call — the collect-then-sort idiom that makes collection safe.
func sortedAfter(pass *Pass, parents parentMap, rs *ast.RangeStmt, target ast.Expr) bool {
	targetStr := types.ExprString(target)
	for _, st := range stmtsAfter(parents, rs) {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, _, ok := useInPackage(pass.Info, sel.Sel)
			if !ok || (pkgPath != "sort" && pkgPath != "slices") {
				return true
			}
			for _, a := range call.Args {
				if exprContains(a, targetStr) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// exprContains reports whether the printed form of expr contains the
// printed form of the target (covers sort.Slice(s, ...), sort.Sort(byX(s))).
func exprContains(expr ast.Expr, target string) bool {
	s := types.ExprString(expr)
	if s == target {
		return true
	}
	// Substring match on a word boundary keeps sort.Sort(byLen(s)) and
	// sort.Slice(rep.PerClass, ...) recognized without a full traversal.
	for i := 0; i+len(target) <= len(s); i++ {
		if s[i:i+len(target)] == target {
			before := i == 0 || !isIdentChar(s[i-1])
			after := i+len(target) == len(s) || !isIdentChar(s[i+len(target)])
			if before && after {
				return true
			}
		}
	}
	return false
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}
