package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortizes standard-library type-checking across fixture
// tests: every fixture resolves through one loader instance.
var (
	loaderOnce sync.Once
	loaderErr  error
	shared     *Loader
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		l, err := NewLoader(root)
		if err != nil {
			loaderErr = err
			return
		}
		l.FixtureDir = filepath.Join(root, "internal", "lint", "testdata", "src")
		shared = l
	})
	if loaderErr != nil {
		t.Fatalf("fixture loader: %v", loaderErr)
	}
	return shared
}

// want is one expected diagnostic: a line and a regexp over
// "rule: message".
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantToken = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants extracts // want `regex` comments from a fixture package.
func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				toks := wantToken.FindAllStringSubmatch(rest, -1)
				if len(toks) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, tok := range toks {
					pat := tok[1]
					if pat == "" {
						pat = tok[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture loads one fixture package, runs a single analyzer, and
// checks the diagnostics against the // want comments exactly: every
// diagnostic must be wanted and every want must fire.
func runFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	pkg, err := fixtureLoader(t).loadPath(path)
	if err != nil {
		t.Fatalf("loading fixture %q: %v", path, err)
	}
	diags := RunPackage(pkg, []*Analyzer{a})
	wants := parseWants(t, pkg)
	for _, d := range diags {
		text := fmt.Sprintf("%s: %s", d.Rule, d.Message)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s:%d: %s", d.Pos.Filename, d.Pos.Line, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing expected diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

func TestMapOrderFixture(t *testing.T)  { runFixture(t, MapOrder, "maporder") }
func TestNonDetFixture(t *testing.T)    { runFixture(t, NonDet, "machine") }
func TestNonDetObsFixture(t *testing.T) { runFixture(t, NonDet, "obs") }
func TestSharedMutFixture(t *testing.T) { runFixture(t, SharedMut, "sharedmut") }

// The serving-path fixtures added with the placement-throughput engine:
// the prediction-memo nondet rules and the shared-cache stats-merge
// discipline.
func TestNonDetPredcacheFixture(t *testing.T)      { runFixture(t, NonDet, "predcache") }
func TestSharedMutSharedCacheFixture(t *testing.T) { runFixture(t, SharedMut, "sharedcache") }
func TestFloatReduceFixture(t *testing.T)          { runFixture(t, FloatReduce, "floatreduce") }

// TestSuppressionFixture proves same-line and line-above allows silence
// a finding while wrong-rule and far-away allows do not.
func TestSuppressionFixture(t *testing.T) { runFixture(t, MapOrder, "suppress") }

// TestNonDetAllowlisted proves the analyzer skips packages outside the
// simulation core even when they read host state.
func TestNonDetAllowlisted(t *testing.T) {
	pkg, err := fixtureLoader(t).loadPath("perfstat")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if diags := RunPackage(pkg, []*Analyzer{NonDet}); len(diags) != 0 {
		t.Fatalf("allowlisted package flagged: %v", diags)
	}
}

// TestMalformedAllow checks that broken suppression comments are
// themselves findings: no reason, unknown rule, unparseable shape.
func TestMalformedAllow(t *testing.T) {
	dir := t.TempDir()
	src := `// Package badallow exercises malformed suppressions.
package badallow

func sum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v //synpa:lint-allow maporder
	}
	return s
}

func sum2(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v //synpa:lint-allow notarule because reasons
	}
	return s
}
`
	if err := os.MkdirAll(filepath.Join(dir, "badallow"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "badallow", "badallow.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.FixtureDir = dir
	pkg, err := l.loadPath("badallow")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pkg, []*Analyzer{MapOrder})
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s: %s", d.Rule, d.Message))
	}
	// Both malformed allows are reported, and neither suppresses its
	// maporder finding: four diagnostics in total.
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4:\n%s", len(diags), strings.Join(got, "\n"))
	}
	wantSubstrings := []string{
		`suppression of "maporder" without a reason`,
		`suppression of unknown rule "notarule"`,
		"float accumulation into s",
		"float accumulation into s",
	}
	for _, sub := range wantSubstrings {
		found := false
		for i, g := range got {
			if strings.Contains(g, sub) {
				got = append(got[:i], got[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q", sub)
		}
	}
}

// TestRulesRegistry pins the rule set the CLI advertises.
func TestRulesRegistry(t *testing.T) {
	want := []string{"floatreduce", "maporder", "nondet", "sharedmut"}
	got := Rules()
	if len(got) != len(want) {
		t.Fatalf("Rules() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rules() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("notarule"); ok {
		t.Error("ByName accepted an unknown rule")
	}
}
