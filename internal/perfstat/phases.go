// Per-phase wall-time attribution: a process-global, concurrency-safe set
// of nanosecond accumulators that split an experiment's wall time into the
// layers a perf PR would target — allocation-policy time, core-simulation
// time, and matching/grouping solver time. Collection is off by default
// and enabled by the bench harness (synpa-bench -perfstat); when disabled,
// an instrumentation site costs one atomic load.
//
// The accumulators live in the global obs.Registry ("phase.<name>.nanos"
// counters) — the single source of truth the metrics snapshots in
// BENCH_*.json and -metrics-out read — and PhaseSeconds is a view over
// them, so the BENCH phases map and the registry can never drift. The
// wall-clock reads stay in this package (perfstat is outside the nondet
// lint core by design); obs itself only ever sees the accumulated nanos.
package perfstat

import (
	"sync/atomic"
	"time"

	"synpa/internal/obs"
)

// Phase identifies one instrumented layer.
type Phase int32

const (
	// PhasePolicy covers Policy.Place invocations (which include the
	// matching/grouping time below — PhaseMatching is a refinement, not a
	// disjoint bucket).
	PhasePolicy Phase = iota
	// PhaseSimulation covers core stepping: quantum execution in machine
	// runs and the isolated/pair collection runs of training.
	PhaseSimulation
	// PhaseMatching covers the Step-3 solvers (blossom/brute-force/greedy
	// matching and the grouping partition), a subset of PhasePolicy.
	PhaseMatching
	// PhaseDispatch covers the fleet's cluster-level scheduling: dispatch
	// decisions, event-clock bookkeeping and streaming-aggregation merges
	// — everything the coordinator does serially between machine slices.
	PhaseDispatch
	numPhases
)

// phaseNames index by Phase in report output.
var phaseNames = [numPhases]string{"policy", "simulation", "matching", "dispatch"}

var (
	phasesOn atomic.Bool
	// phaseNanos are the registry-owned accumulators, resolved once: the
	// counter named "phase.<name>.nanos" in obs.Global().
	phaseNanos [numPhases]*obs.Counter
)

func init() {
	for i := Phase(0); i < numPhases; i++ {
		phaseNanos[i] = obs.Global().Counter("phase." + phaseNames[i] + ".nanos")
	}
}

// EnablePhases switches phase collection on or off and resets the
// accumulators when switching on.
func EnablePhases(on bool) {
	if on {
		ResetPhases()
	}
	phasesOn.Store(on)
}

// ResetPhases zeroes the accumulators.
func ResetPhases() {
	for i := range phaseNanos {
		phaseNanos[i].Reset()
	}
}

// PhaseClock returns the start time for an instrumented region, or a zero
// time when collection is off (PhaseAdd then no-ops). Call sites pay one
// atomic load when disabled.
func PhaseClock() time.Time {
	if !phasesOn.Load() {
		return time.Time{}
	}
	return time.Now()
}

// PhaseAdd accrues the elapsed time since start (a PhaseClock result) to
// the phase. A zero start — collection disabled — is ignored.
func PhaseAdd(p Phase, start time.Time) {
	if start.IsZero() {
		return
	}
	phaseNanos[p].Add(int64(time.Since(start)))
}

// PhaseSeconds returns the per-phase accumulated wall seconds, keyed by
// phase name, or nil when no phase has accrued time. It is a pure view
// over the registry counters.
func PhaseSeconds() map[string]float64 {
	var out map[string]float64
	for i := Phase(0); i < numPhases; i++ {
		if ns := phaseNanos[i].Value(); ns > 0 {
			if out == nil {
				out = make(map[string]float64, int(numPhases))
			}
			out[phaseNames[i]] = time.Duration(ns).Seconds()
		}
	}
	return out
}
