// Memory high-water instrumentation: a background sampler that tracks the
// peak live heap (runtime.MemStats.HeapAlloc) and total allocation volume
// over a measured region. The fleet's O(machines + classes) bounded-memory
// claim is enforced through it — BENCH_*.json records the high-water mark,
// so a regression that starts retaining per-job state shows up as a peak
// that scales with the trace length.
//
// The sampler only reads MemStats; it never influences simulation state,
// so results stay bit-deterministic with or without it.
package perfstat

import (
	"runtime"
	"sync/atomic"
	"time"
)

// HeapStats summarises a watched region's memory behaviour.
type HeapStats struct {
	// PeakHeapBytes is the largest live heap observed (sampled, so a
	// lower bound on the true peak; sampling every few milliseconds makes
	// the gap irrelevant at fleet time scales).
	PeakHeapBytes uint64
	// AllocBytes and Allocs are the region's total allocation volume.
	AllocBytes uint64
	Allocs     uint64
	// NumGC counts garbage collections during the region.
	NumGC uint32
}

// HeapWatch samples the heap until stopped.
type HeapWatch struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64

	startBytes  uint64
	startAllocs uint64
	startGC     uint32
}

// StartHeapWatch begins sampling HeapAlloc every interval (a non-positive
// interval selects 10ms). Stop the watch to read the stats.
func StartHeapWatch(interval time.Duration) *HeapWatch {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	w := &HeapWatch{stop: make(chan struct{}), done: make(chan struct{})}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.startBytes = ms.TotalAlloc
	w.startAllocs = ms.Mallocs
	w.startGC = ms.NumGC
	w.peak.Store(ms.HeapAlloc)
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Sample()
			}
		}
	}()
	return w
}

// Sample takes one explicit heap reading; safe to call concurrently with
// the background sampler (e.g. at coarse checkpoints of a long region).
func (w *HeapWatch) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		cur := w.peak.Load()
		if ms.HeapAlloc <= cur || w.peak.CompareAndSwap(cur, ms.HeapAlloc) {
			return
		}
	}
}

// Stop ends sampling (idempotent per watch value; call once) and returns
// the region's stats, folding in one final reading.
func (w *HeapWatch) Stop() HeapStats {
	close(w.stop)
	<-w.done
	w.Sample()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return HeapStats{
		PeakHeapBytes: w.peak.Load(),
		AllocBytes:    ms.TotalAlloc - w.startBytes,
		Allocs:        ms.Mallocs - w.startAllocs,
		NumGC:         ms.NumGC - w.startGC,
	}
}
