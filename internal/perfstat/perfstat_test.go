package perfstat

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestMeasureRecordsAndPassesErrors(t *testing.T) {
	var c Collector
	if err := c.Measure("ok", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := errors.New("boom")
	if err := c.Measure("fail", func() error { return want }); err != want {
		t.Fatalf("error not passed through: %v", err)
	}
	recs := c.Records()
	if len(recs) != 2 || recs[0].Name != "ok" || recs[1].Name != "fail" {
		t.Fatalf("unexpected records: %+v", recs)
	}
	if recs[0].WallSeconds < 0 {
		t.Fatalf("negative wall time: %+v", recs[0])
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	var c Collector
	c.Measure("r1", func() error { return nil })
	rep := c.Report(map[string]string{"fastforward": "true"})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 1 || back.Records[0].Name != "r1" {
		t.Fatalf("round trip lost records: %+v", back)
	}
	if back.Meta["fastforward"] != "true" {
		t.Fatalf("round trip lost meta: %+v", back.Meta)
	}
	if back.GoMaxProcs < 1 {
		t.Fatalf("missing gomaxprocs: %+v", back)
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_0001.json" {
		t.Fatalf("first path = %s", p)
	}
	for _, name := range []string{"BENCH_0001.json", "BENCH_0007.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_0008.json" {
		t.Fatalf("next path = %s", p)
	}
}

func TestHeapWatch(t *testing.T) {
	w := StartHeapWatch(time.Millisecond)
	// Hold a visible allocation across a few sampling intervals.
	buf := make([]byte, 8<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	time.Sleep(10 * time.Millisecond)
	st := w.Stop()
	runtime.KeepAlive(buf)
	if st.PeakHeapBytes < 8<<20 {
		t.Errorf("peak %d does not cover the 8MiB live buffer", st.PeakHeapBytes)
	}
	if st.AllocBytes < 8<<20 || st.Allocs == 0 {
		t.Errorf("allocation volume not tracked: bytes=%d allocs=%d", st.AllocBytes, st.Allocs)
	}
}

func TestDispatchPhaseName(t *testing.T) {
	EnablePhases(true)
	defer EnablePhases(false)
	t0 := PhaseClock()
	time.Sleep(time.Millisecond)
	PhaseAdd(PhaseDispatch, t0)
	sec := PhaseSeconds()
	if sec["dispatch"] <= 0 {
		t.Fatalf("dispatch phase missing from %v", sec)
	}
}
