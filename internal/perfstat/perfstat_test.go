package perfstat

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestMeasureRecordsAndPassesErrors(t *testing.T) {
	var c Collector
	if err := c.Measure("ok", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := errors.New("boom")
	if err := c.Measure("fail", func() error { return want }); err != want {
		t.Fatalf("error not passed through: %v", err)
	}
	recs := c.Records()
	if len(recs) != 2 || recs[0].Name != "ok" || recs[1].Name != "fail" {
		t.Fatalf("unexpected records: %+v", recs)
	}
	if recs[0].WallSeconds < 0 {
		t.Fatalf("negative wall time: %+v", recs[0])
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	var c Collector
	c.Measure("r1", func() error { return nil })
	rep := c.Report(map[string]string{"fastforward": "true"})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 1 || back.Records[0].Name != "r1" {
		t.Fatalf("round trip lost records: %+v", back)
	}
	if back.Meta["fastforward"] != "true" {
		t.Fatalf("round trip lost meta: %+v", back.Meta)
	}
	if back.GoMaxProcs < 1 {
		t.Fatalf("missing gomaxprocs: %+v", back)
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_0001.json" {
		t.Fatalf("first path = %s", p)
	}
	for _, name := range []string{"BENCH_0001.json", "BENCH_0007.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_0008.json" {
		t.Fatalf("next path = %s", p)
	}
}
