// Package perfstat measures wall time and allocation churn of named
// regions and serialises them as JSON, so that cmd/synpa-bench can emit
// per-experiment performance records (BENCH_NNNN.json) whose trajectory
// tracks the simulator's throughput across PRs.
package perfstat

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"time"

	"synpa/internal/obs"
)

// Record captures one measured region.
type Record struct {
	// Name identifies the region (an experiment name).
	Name string `json:"name"`
	// WallSeconds is the region's elapsed wall time.
	WallSeconds float64 `json:"wall_seconds"`
	// Allocs is the number of heap allocations during the region.
	Allocs uint64 `json:"allocs"`
	// AllocBytes is the number of heap bytes allocated during the region.
	AllocBytes uint64 `json:"alloc_bytes"`
}

// Report is the serialised output of a collection run.
type Report struct {
	// CreatedAt is the RFC 3339 creation timestamp.
	CreatedAt string `json:"created_at"`
	// GoMaxProcs records the parallelism the run had available.
	GoMaxProcs int `json:"gomaxprocs"`
	// Meta carries run configuration (seed, quantum, fast-forward, ...).
	Meta map[string]string `json:"meta,omitempty"`
	// Phases splits the run's wall time across instrumented layers
	// (policy / simulation / matching, see phases.go) when phase
	// collection was enabled. The matching bucket is a refinement of the
	// policy bucket, and phases measure only instrumented code, so they
	// neither sum to nor bound TotalWallSeconds.
	Phases map[string]float64 `json:"phases,omitempty"`
	// Metrics is the global obs registry snapshot at report time — the
	// same accumulators Phases is a view over, plus whatever counters
	// the measured runs bumped.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Records holds the per-region measurements in execution order.
	Records []Record `json:"records"`
	// TotalWallSeconds sums the records' wall times.
	TotalWallSeconds float64 `json:"total_wall_seconds"`
}

// Collector accumulates Records. It is not safe for concurrent use; measure
// regions sequentially (the allocation counters are process-global anyway).
type Collector struct {
	records []Record
}

// Measure runs fn, recording its wall time and allocation deltas under
// name. The error is passed through; failed regions are recorded too.
func (c *Collector) Measure(name string, fn func() error) error {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	c.records = append(c.records, Record{
		Name:        name,
		WallSeconds: wall.Seconds(),
		Allocs:      after.Mallocs - before.Mallocs,
		AllocBytes:  after.TotalAlloc - before.TotalAlloc,
	})
	return err
}

// Records returns the measurements collected so far.
func (c *Collector) Records() []Record { return c.records }

// Report assembles the collected records into a serialisable report.
func (c *Collector) Report(meta map[string]string) *Report {
	snap := obs.Global().Snapshot()
	r := &Report{
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Meta:       meta,
		Phases:     PhaseSeconds(),
		Metrics:    &snap,
		Records:    c.records,
	}
	for _, rec := range c.records {
		r.TotalWallSeconds += rec.WallSeconds
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

var benchName = regexp.MustCompile(`^BENCH_(\d{4})\.json$`)

// NextBenchPath returns the next unused BENCH_NNNN.json path in dir,
// starting from BENCH_0001.json.
func NextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 1
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(m[1], "%d", &n); err != nil {
			continue // defensive: the \d{4} pattern should preclude this
		}
		if n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%04d.json", next)), nil
}
