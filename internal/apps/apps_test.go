package apps

import (
	"testing"
	"testing/quick"

	"synpa/internal/xrand"
)

func TestCatalogSize(t *testing.T) {
	if len(Catalog()) != 28 {
		t.Fatalf("catalogue has %d apps, paper studies 28", len(Catalog()))
	}
}

func TestCatalogGroupsMatchTableIII(t *testing.T) {
	wantBackend := []string{"cactuBSSN_r", "lbm_r", "mcf", "milc", "xalancbmk_r", "wrf_r"}
	wantFrontend := []string{"astar", "gobmk", "leela_r", "mcf_r", "perlbench"}

	be := ByGroup(GroupBackend)
	if len(be) != len(wantBackend) {
		t.Fatalf("backend group has %d apps, want %d", len(be), len(wantBackend))
	}
	for i, m := range be {
		if m.Name != wantBackend[i] {
			t.Errorf("backend[%d] = %s, want %s", i, m.Name, wantBackend[i])
		}
	}
	fe := ByGroup(GroupFrontend)
	if len(fe) != len(wantFrontend) {
		t.Fatalf("frontend group has %d apps, want %d", len(fe), len(wantFrontend))
	}
	for i, m := range fe {
		if m.Name != wantFrontend[i] {
			t.Errorf("frontend[%d] = %s, want %s", i, m.Name, wantFrontend[i])
		}
	}
	if n := len(ByGroup(GroupOther)); n != 17 {
		t.Fatalf("others group has %d apps, want 17", n)
	}
}

func TestAllModelsValidate(t *testing.T) {
	for _, m := range Catalog() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	good := Profile{ILP: 2, LoadRatio: 0.3, StoreRatio: 0.1, DepFrac: 0.3}
	cases := []struct {
		name string
		m    Model
	}{
		{"empty name", Model{Phases: []Phase{phase(1, good)}}},
		{"no phases", Model{Name: "x"}},
		{"zero-length phase", Model{Name: "x", Phases: []Phase{phase(0, good)}}},
		{"low ILP", Model{Name: "x", Phases: []Phase{phase(1, Profile{ILP: 0.5})}}},
		{"high ILP", Model{Name: "x", Phases: []Phase{phase(1, Profile{ILP: 9})}}},
		{"negative rate", Model{Name: "x", Phases: []Phase{phase(1, Profile{ILP: 2, MemMPKI: -1})}}},
		{"bad ratio", Model{Name: "x", Phases: []Phase{phase(1, Profile{ILP: 2, LoadRatio: 1.5})}}},
		{"bad depfrac", Model{Name: "x", Phases: []Phase{phase(1, Profile{ILP: 2, DepFrac: -0.1})}}},
		{"bad footprint", Model{Name: "x", Phases: []Phase{phase(1, Profile{ILP: 2, MemBW: 2})}}},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid model", c.name)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("leela_r")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "leela_r" || m.Group != GroupFrontend {
		t.Fatalf("ByName(leela_r) = %+v", m)
	}
	if _, err := ByName("no-such-app"); err == nil {
		t.Fatal("ByName accepted unknown app")
	}
}

func TestNamesSortedAndUnique(t *testing.T) {
	names := Names()
	if len(names) != 28 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("Names not sorted/unique at %d: %s then %s", i, names[i-1], names[i])
		}
	}
}

func TestTrainingSplit(t *testing.T) {
	train := TrainingSet()
	test := EvaluationOnly()
	if len(train) != 22 {
		t.Fatalf("training set has %d apps, paper uses 22 (80%% of 28)", len(train))
	}
	if len(test) != 6 {
		t.Fatalf("held-out set has %d apps, want 6", len(test))
	}
	seen := map[string]bool{}
	for _, m := range append(append([]*Model{}, train...), test...) {
		if seen[m.Name] {
			t.Fatalf("%s appears in both splits", m.Name)
		}
		seen[m.Name] = true
	}
	if len(seen) != 28 {
		t.Fatalf("splits cover %d apps, want 28", len(seen))
	}
}

func TestLeelaHasBothBehaviours(t *testing.T) {
	// Table V and Fig. 7 depend on leela_r exhibiting frontend- and
	// backend-leaning phases at runtime.
	m, _ := ByName("leela_r")
	if len(m.Phases) < 2 {
		t.Fatal("leela_r must have at least two phases")
	}
	a, b := m.Phases[0].Profile, m.Phases[1].Profile
	if a.ICacheMPKI <= b.ICacheMPKI {
		t.Error("leela_r phase 0 should be the frontend-heavy phase")
	}
	if b.MemMPKI <= a.MemMPKI {
		t.Error("leela_r phase 1 should be the memory-heavy phase")
	}
}

func TestInstancePhaseAdvance(t *testing.T) {
	m := &Model{Name: "t", Phases: []Phase{
		phase(100, Profile{ILP: 2}),
		phase(50, Profile{ILP: 3}),
	}}
	in := NewInstance(m, 1)
	if in.PhaseIndex() != 0 {
		t.Fatal("fresh instance should start in phase 0")
	}
	if changed := in.AdvanceDispatched(99); changed {
		t.Fatal("no phase change expected at 99/100")
	}
	if changed := in.AdvanceDispatched(1); !changed || in.PhaseIndex() != 1 {
		t.Fatalf("expected transition to phase 1, got phase %d", in.PhaseIndex())
	}
	if changed := in.AdvanceDispatched(50); !changed || in.PhaseIndex() != 0 {
		t.Fatalf("expected wrap to phase 0, got phase %d", in.PhaseIndex())
	}
	if in.Dispatched != 150 {
		t.Fatalf("Dispatched = %d, want 150", in.Dispatched)
	}
}

func TestInstanceAdvanceAcrossMultiplePhases(t *testing.T) {
	m := &Model{Name: "t", Phases: []Phase{
		phase(10, Profile{ILP: 2}),
		phase(10, Profile{ILP: 3}),
		phase(10, Profile{ILP: 4}),
	}}
	in := NewInstance(m, 1)
	in.AdvanceDispatched(25) // lands in phase 2 at offset 5
	if in.PhaseIndex() != 2 {
		t.Fatalf("phase = %d, want 2", in.PhaseIndex())
	}
	in.AdvanceDispatched(35) // 60 total: 2 full loops → phase 0
	if in.PhaseIndex() != 0 {
		t.Fatalf("phase = %d, want 0", in.PhaseIndex())
	}
}

func TestInstanceRelaunch(t *testing.T) {
	m, _ := ByName("mcf")
	in := NewInstance(m, 5)
	in.AdvanceDispatched(m.Phases[0].Insts + 10)
	in.Retired = 12345
	in.Relaunch()
	if in.PhaseIndex() != 0 {
		t.Fatal("Relaunch must rewind to phase 0")
	}
	if in.Retired != 12345 {
		t.Fatal("Relaunch must not reset the cumulative retired count")
	}
	if in.Launches != 2 {
		t.Fatalf("Launches = %d, want 2", in.Launches)
	}
}

func TestInstanceProfileTracksPhase(t *testing.T) {
	m, _ := ByName("leela_r")
	in := NewInstance(m, 3)
	p0 := in.Profile()
	in.AdvanceDispatched(m.Phases[0].Insts)
	p1 := in.Profile()
	if p0 == p1 {
		t.Fatal("profile pointer did not change across phases")
	}
	if p1.MemMPKI != m.Phases[1].Profile.MemMPKI {
		t.Fatal("profile does not match phase 1")
	}
}

func TestInstancesAreIndependent(t *testing.T) {
	m, _ := ByName("leela_r")
	a := NewInstance(m, 100)
	b := NewInstance(m, 200)
	differ := false
	for i := 0; i < 32; i++ {
		if a.RNG().Uint64() != b.RNG().Uint64() {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("two instances with different seeds share a random stream")
	}
}

func TestTotalPhaseInsts(t *testing.T) {
	m := &Model{Name: "t", Phases: []Phase{phase(10, Profile{ILP: 2}), phase(32, Profile{ILP: 2})}}
	if got := m.TotalPhaseInsts(); got != 42 {
		t.Fatalf("TotalPhaseInsts = %d, want 42", got)
	}
}

func TestEventRate(t *testing.T) {
	p := Profile{ICacheMPKI: 2, BranchMPKI: 3, MemMPKI: 5}
	if got := p.EventRate(); got != 0.01 {
		t.Fatalf("EventRate = %v, want 0.01", got)
	}
}

func TestGroupString(t *testing.T) {
	if GroupBackend.String() != "Backend bound" ||
		GroupFrontend.String() != "Frontend bound" ||
		GroupOther.String() != "Others" {
		t.Fatal("group labels do not match the paper")
	}
	if Group(9).String() == "" {
		t.Fatal("unknown group label empty")
	}
}

func TestAdvanceDispatchedProperty(t *testing.T) {
	// Phase index is always valid and intoPhase stays below the phase
	// length, no matter the advance pattern.
	m, _ := ByName("leela_r")
	check := func(seed uint64, steps []uint16) bool {
		in := NewInstance(m, seed)
		r := xrand.New(seed)
		for range steps {
			in.AdvanceDispatched(uint64(r.Intn(1 << 18)))
			if in.PhaseIndex() < 0 || in.PhaseIndex() >= len(m.Phases) {
				return false
			}
			if in.intoPhase >= m.Phases[in.PhaseIndex()].Insts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
