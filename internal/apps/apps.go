// Package apps provides synthetic models of the 28 applications the paper
// evaluates (SPEC CPU 2006/2017 benchmarks, Table III). The real binaries
// and their inputs are not available in this environment, so each benchmark
// is replaced by a phase-based stochastic model of its dispatch-stage
// behaviour (DESIGN.md §2): per phase, an instruction-level-parallelism
// figure plus event rates and durations for the three stall sources that
// matter at dispatch — instruction-cache misses, branch mispredictions and
// long-latency (blocking) loads — and the cache/bandwidth footprints through
// which the application pressures a co-runner.
//
// The models are calibrated so that the isolated-execution characterization
// (paper Fig. 4) classifies them into the paper's groups: the six
// backend-bound applications exceed 65 % backend dispatch stalls, the five
// frontend-bound ones exceed 35 % frontend stalls, and the remaining 17 fall
// in between, with full-dispatch fractions spanning roughly 20 % (hmmer) to
// 61 % (nab_r). `leela_r` and `mcf_r` carry pronounced phase behaviour —
// they alternate frontend-dominated and backend-dominated phases — because
// the paper's Table V and Fig. 7 analyses depend on exactly that runtime
// dichotomy.
package apps

import (
	"fmt"
	"sort"

	"synpa/internal/xrand"
)

// Group is the paper's Table III classification.
type Group int

// Table III groups.
const (
	GroupBackend  Group = iota // backend dispatch stalls > 65 % of cycles
	GroupFrontend              // frontend dispatch stalls > 35 % of cycles
	GroupOther                 // everything else
)

// String returns the group label used in the paper.
func (g Group) String() string {
	switch g {
	case GroupBackend:
		return "Backend bound"
	case GroupFrontend:
		return "Frontend bound"
	case GroupOther:
		return "Others"
	}
	return fmt.Sprintf("Group(%d)", int(g))
}

// Profile describes the dispatch-stage behaviour of one execution phase.
// Rates are events per kilo-instruction (MPKI-style); durations are cycles.
type Profile struct {
	// ILP is the mean number of instructions the frontend can supply per
	// cycle when nothing stalls (1..DispatchWidth).
	ILP float64

	// ICacheMPKI and ICacheStall give the rate and mean duration of
	// frontend stalls caused by instruction-cache misses.
	ICacheMPKI  float64
	ICacheStall float64

	// BranchMPKI and BranchStall give the rate and mean duration of
	// frontend stalls caused by branch-misprediction squashes.
	BranchMPKI  float64
	BranchStall float64

	// MemMPKI and MemLat give the rate and mean latency of long-latency
	// loads that block retirement at the head of the ROB.
	MemMPKI float64
	MemLat  float64

	// LoadRatio and StoreRatio are the fractions of instructions that
	// occupy load-queue and store-queue entries.
	LoadRatio  float64
	StoreRatio float64

	// DepFrac is the fraction of in-flight instructions that depend on an
	// outstanding miss: it drives issue-queue pressure and the degree to
	// which consecutive misses serialise (memory-level parallelism).
	DepFrac float64

	// IFootprint, DFootprint and MemBW in [0,1] quantify the pressure the
	// application puts on the shared instruction cache, data caches and
	// memory bandwidth, felt by the SMT co-runner.
	IFootprint float64
	DFootprint float64
	MemBW      float64
}

// EventRate returns the combined stall-event rate per instruction.
func (p *Profile) EventRate() float64 {
	return (p.ICacheMPKI + p.BranchMPKI + p.MemMPKI) / 1000
}

// Phase is one segment of an application's execution.
type Phase struct {
	// Insts is the phase length in dispatched instructions.
	Insts uint64
	// Profile is the behaviour during the phase.
	Profile Profile
}

// Model is a named application with its phase schedule. Phases repeat
// cyclically for as long as the application runs.
type Model struct {
	Name   string
	Group  Group
	Phases []Phase
}

// TotalPhaseInsts returns the length of one full pass over the phases.
func (m *Model) TotalPhaseInsts() uint64 {
	var t uint64
	for _, p := range m.Phases {
		t += p.Insts
	}
	return t
}

// Validate checks that the model is well formed.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("apps: model with empty name")
	}
	if len(m.Phases) == 0 {
		return fmt.Errorf("apps: %s has no phases", m.Name)
	}
	for i, ph := range m.Phases {
		p := ph.Profile
		if ph.Insts == 0 {
			return fmt.Errorf("apps: %s phase %d has zero length", m.Name, i)
		}
		if p.ILP < 1 || p.ILP > 4 {
			return fmt.Errorf("apps: %s phase %d ILP %v outside [1,4]", m.Name, i, p.ILP)
		}
		if p.ICacheMPKI < 0 || p.BranchMPKI < 0 || p.MemMPKI < 0 {
			return fmt.Errorf("apps: %s phase %d has negative event rate", m.Name, i)
		}
		if p.LoadRatio < 0 || p.LoadRatio > 1 || p.StoreRatio < 0 || p.StoreRatio > 1 {
			return fmt.Errorf("apps: %s phase %d load/store ratio outside [0,1]", m.Name, i)
		}
		if p.DepFrac < 0 || p.DepFrac > 1 {
			return fmt.Errorf("apps: %s phase %d DepFrac outside [0,1]", m.Name, i)
		}
		if p.IFootprint < 0 || p.IFootprint > 1 || p.DFootprint < 0 || p.DFootprint > 1 ||
			p.MemBW < 0 || p.MemBW > 1 {
			return fmt.Errorf("apps: %s phase %d footprint outside [0,1]", m.Name, i)
		}
	}
	return nil
}

// Instance is one running copy of an application. Two instances of the same
// model (the two leela_r copies in workload fb2) are independent: each has
// its own position and random stream.
type Instance struct {
	Model *Model

	rng       *xrand.RNG
	phaseIdx  int
	intoPhase uint64

	// Dispatched counts instructions dispatched since launch (or last
	// relaunch); Retired counts architecturally committed instructions
	// cumulatively, matching the paper's methodology where counts keep
	// growing across relaunches.
	Dispatched uint64
	Retired    uint64
	// Launches counts how many times the application has been (re)started.
	Launches int
}

// NewInstance creates a fresh instance with a deterministic private stream.
func NewInstance(m *Model, seed uint64) *Instance {
	return &Instance{Model: m, rng: xrand.New(seed), Launches: 1}
}

// RNG exposes the instance's private random stream (used by the core
// simulator to draw this application's stall events).
func (in *Instance) RNG() *xrand.RNG { return in.rng }

// Profile returns the profile of the current phase.
func (in *Instance) Profile() *Profile {
	return &in.Model.Phases[in.phaseIdx].Profile
}

// PhaseIndex returns the index of the current phase.
func (in *Instance) PhaseIndex() int { return in.phaseIdx }

// InstsToPhaseBoundary returns how many more dispatched instructions fit in
// the current phase before the next boundary (always >= 1). The core's
// fast-forward engine uses it to bound event-free spans.
func (in *Instance) InstsToPhaseBoundary() uint64 {
	return in.Model.Phases[in.phaseIdx].Insts - in.intoPhase
}

// AdvanceDispatched records n dispatched instructions and returns true if
// the application crossed into a different phase.
func (in *Instance) AdvanceDispatched(n uint64) bool {
	in.Dispatched += n
	in.intoPhase += n
	changed := false
	for in.intoPhase >= in.Model.Phases[in.phaseIdx].Insts {
		in.intoPhase -= in.Model.Phases[in.phaseIdx].Insts
		in.phaseIdx = (in.phaseIdx + 1) % len(in.Model.Phases)
		changed = true
	}
	return changed
}

// Relaunch restarts the program image: the phase position rewinds to the
// beginning while the cumulative Retired count keeps growing, mirroring the
// constant-pressure methodology of §V-B.
func (in *Instance) Relaunch() {
	in.phaseIdx = 0
	in.intoPhase = 0
	in.Launches++
}

// --- catalogue ------------------------------------------------------------

// phase is a shorthand constructor used by the catalogue.
func phase(insts uint64, p Profile) Phase { return Phase{Insts: insts, Profile: p} }

// Typical latency levels used by the catalogue (cycles). They loosely follow
// the ThunderX2 memory hierarchy of paper Table II.
const (
	latL2  = 14
	latLLC = 42
	latMem = 210
)

// catalogue returns the 28 paper applications. Phase lengths are expressed
// in instructions and sized so that phase transitions happen every handful
// of quanta at the default quantum length, giving the runtime variability
// that Figs. 6-7 and Table V rely on.
func catalogue() []*Model {
	k := uint64(1000)
	M := 1000 * k
	return []*Model{
		// ---- Backend bound (Table III: backend stalls > 65 %) ----
		{Name: "cactuBSSN_r", Group: GroupBackend, Phases: []Phase{
			phase(2*M, Profile{ILP: 2.0, ICacheMPKI: 0.6, ICacheStall: 20, BranchMPKI: 1.0, BranchStall: 14, MemMPKI: 7, MemLat: 200, LoadRatio: 0.30, StoreRatio: 0.12, DepFrac: 0.30, IFootprint: 0.10, DFootprint: 0.65, MemBW: 0.55}),
			phase(1*M, Profile{ILP: 2.2, ICacheMPKI: 0.5, ICacheStall: 20, BranchMPKI: 1.0, BranchStall: 14, MemMPKI: 9, MemLat: 205, LoadRatio: 0.32, StoreRatio: 0.12, DepFrac: 0.32, IFootprint: 0.10, DFootprint: 0.70, MemBW: 0.60}),
		}},
		{Name: "lbm_r", Group: GroupBackend, Phases: []Phase{
			phase(3*M, Profile{ILP: 2.2, ICacheMPKI: 0.4, ICacheStall: 18, BranchMPKI: 0.8, BranchStall: 14, MemMPKI: 10, MemLat: 225, LoadRatio: 0.28, StoreRatio: 0.20, DepFrac: 0.20, IFootprint: 0.05, DFootprint: 0.80, MemBW: 0.85}),
		}},
		{Name: "mcf", Group: GroupBackend, Phases: []Phase{
			phase(1500*k, Profile{ILP: 1.6, ICacheMPKI: 1.0, ICacheStall: 20, BranchMPKI: 3.0, BranchStall: 14, MemMPKI: 14, MemLat: 235, LoadRatio: 0.34, StoreRatio: 0.10, DepFrac: 0.60, IFootprint: 0.12, DFootprint: 0.75, MemBW: 0.70}),
			phase(800*k, Profile{ILP: 1.5, ICacheMPKI: 1.2, ICacheStall: 20, BranchMPKI: 4.0, BranchStall: 14, MemMPKI: 11, MemLat: 220, LoadRatio: 0.33, StoreRatio: 0.10, DepFrac: 0.55, IFootprint: 0.12, DFootprint: 0.70, MemBW: 0.60}),
		}},
		{Name: "milc", Group: GroupBackend, Phases: []Phase{
			phase(2500*k, Profile{ILP: 1.8, ICacheMPKI: 0.7, ICacheStall: 19, BranchMPKI: 1.2, BranchStall: 14, MemMPKI: 9, MemLat: 215, LoadRatio: 0.31, StoreRatio: 0.14, DepFrac: 0.35, IFootprint: 0.08, DFootprint: 0.72, MemBW: 0.72}),
		}},
		{Name: "xalancbmk_r", Group: GroupBackend, Phases: []Phase{
			phase(1800*k, Profile{ILP: 1.7, ICacheMPKI: 4.0, ICacheStall: 22, BranchMPKI: 4.0, BranchStall: 14, MemMPKI: 8, MemLat: 190, LoadRatio: 0.33, StoreRatio: 0.12, DepFrac: 0.50, IFootprint: 0.35, DFootprint: 0.60, MemBW: 0.45}),
			phase(900*k, Profile{ILP: 1.8, ICacheMPKI: 3.0, ICacheStall: 22, BranchMPKI: 3.5, BranchStall: 14, MemMPKI: 10, MemLat: 200, LoadRatio: 0.34, StoreRatio: 0.12, DepFrac: 0.52, IFootprint: 0.30, DFootprint: 0.62, MemBW: 0.50}),
		}},
		{Name: "wrf_r", Group: GroupBackend, Phases: []Phase{
			phase(2200*k, Profile{ILP: 2.3, ICacheMPKI: 0.8, ICacheStall: 20, BranchMPKI: 1.5, BranchStall: 14, MemMPKI: 8, MemLat: 195, LoadRatio: 0.30, StoreRatio: 0.15, DepFrac: 0.30, IFootprint: 0.12, DFootprint: 0.68, MemBW: 0.62}),
		}},

		// ---- Frontend bound (Table III: frontend stalls > 35 %) ----
		{Name: "astar", Group: GroupFrontend, Phases: []Phase{
			phase(1600*k, Profile{ILP: 1.9, ICacheMPKI: 12, ICacheStall: 24, BranchMPKI: 7, BranchStall: 14, MemMPKI: 2.0, MemLat: 130, LoadRatio: 0.28, StoreRatio: 0.08, DepFrac: 0.40, IFootprint: 0.60, DFootprint: 0.35, MemBW: 0.20}),
			phase(900*k, Profile{ILP: 1.8, ICacheMPKI: 10, ICacheStall: 24, BranchMPKI: 8, BranchStall: 14, MemMPKI: 3.0, MemLat: 150, LoadRatio: 0.30, StoreRatio: 0.08, DepFrac: 0.45, IFootprint: 0.55, DFootprint: 0.40, MemBW: 0.25}),
		}},
		{Name: "gobmk", Group: GroupFrontend, Phases: []Phase{
			phase(2*M, Profile{ILP: 2.0, ICacheMPKI: 14, ICacheStall: 25, BranchMPKI: 9, BranchStall: 14, MemMPKI: 0.8, MemLat: 110, LoadRatio: 0.26, StoreRatio: 0.10, DepFrac: 0.35, IFootprint: 0.70, DFootprint: 0.25, MemBW: 0.10}),
		}},
		{Name: "leela_r", Group: GroupFrontend, Phases: []Phase{
			// Frontend-dominated search phase.
			phase(1300*k, Profile{ILP: 2.1, ICacheMPKI: 16, ICacheStall: 26, BranchMPKI: 9, BranchStall: 14, MemMPKI: 0.5, MemLat: 140, LoadRatio: 0.25, StoreRatio: 0.08, DepFrac: 0.35, IFootprint: 0.72, DFootprint: 0.25, MemBW: 0.08}),
			// Backend-leaning evaluation phase (drives Table V / Fig. 7).
			phase(700*k, Profile{ILP: 1.8, ICacheMPKI: 4, ICacheStall: 22, BranchMPKI: 3, BranchStall: 14, MemMPKI: 8, MemLat: 205, LoadRatio: 0.30, StoreRatio: 0.10, DepFrac: 0.50, IFootprint: 0.30, DFootprint: 0.70, MemBW: 0.55}),
		}},
		{Name: "mcf_r", Group: GroupFrontend, Phases: []Phase{
			phase(1400*k, Profile{ILP: 1.8, ICacheMPKI: 14, ICacheStall: 25, BranchMPKI: 9, BranchStall: 14, MemMPKI: 1.5, MemLat: 160, LoadRatio: 0.30, StoreRatio: 0.09, DepFrac: 0.45, IFootprint: 0.62, DFootprint: 0.35, MemBW: 0.20}),
			phase(700*k, Profile{ILP: 1.7, ICacheMPKI: 6, ICacheStall: 23, BranchMPKI: 5, BranchStall: 14, MemMPKI: 7, MemLat: 195, LoadRatio: 0.32, StoreRatio: 0.10, DepFrac: 0.52, IFootprint: 0.40, DFootprint: 0.65, MemBW: 0.45}),
		}},
		{Name: "perlbench", Group: GroupFrontend, Phases: []Phase{
			phase(2100*k, Profile{ILP: 2.4, ICacheMPKI: 13, ICacheStall: 24, BranchMPKI: 10, BranchStall: 14, MemMPKI: 1.0, MemLat: 120, LoadRatio: 0.27, StoreRatio: 0.12, DepFrac: 0.35, IFootprint: 0.68, DFootprint: 0.30, MemBW: 0.12}),
		}},

		// ---- Others ----
		{Name: "blender_r", Group: GroupOther, Phases: []Phase{
			phase(1900*k, Profile{ILP: 2.6, ICacheMPKI: 4, ICacheStall: 22, BranchMPKI: 4, BranchStall: 14, MemMPKI: 3.0, MemLat: 150, LoadRatio: 0.28, StoreRatio: 0.12, DepFrac: 0.35, IFootprint: 0.35, DFootprint: 0.45, MemBW: 0.30}),
		}},
		{Name: "bwaves", Group: GroupOther, Phases: []Phase{
			phase(2300*k, Profile{ILP: 2.7, ICacheMPKI: 0.6, ICacheStall: 18, BranchMPKI: 1.0, BranchStall: 14, MemMPKI: 3.4, MemLat: 150, LoadRatio: 0.30, StoreRatio: 0.14, DepFrac: 0.22, IFootprint: 0.06, DFootprint: 0.60, MemBW: 0.55}),
		}},
		{Name: "bzip2", Group: GroupOther, Phases: []Phase{
			phase(1500*k, Profile{ILP: 2.3, ICacheMPKI: 3, ICacheStall: 21, BranchMPKI: 6, BranchStall: 14, MemMPKI: 3.0, MemLat: 140, LoadRatio: 0.29, StoreRatio: 0.12, DepFrac: 0.40, IFootprint: 0.25, DFootprint: 0.45, MemBW: 0.25}),
			phase(800*k, Profile{ILP: 2.1, ICacheMPKI: 2, ICacheStall: 21, BranchMPKI: 5, BranchStall: 14, MemMPKI: 4.5, MemLat: 155, LoadRatio: 0.30, StoreRatio: 0.13, DepFrac: 0.42, IFootprint: 0.22, DFootprint: 0.50, MemBW: 0.30}),
		}},
		{Name: "calculix", Group: GroupOther, Phases: []Phase{
			phase(2*M, Profile{ILP: 2.9, ICacheMPKI: 1.2, ICacheStall: 20, BranchMPKI: 2, BranchStall: 14, MemMPKI: 2.2, MemLat: 140, LoadRatio: 0.28, StoreRatio: 0.12, DepFrac: 0.28, IFootprint: 0.12, DFootprint: 0.42, MemBW: 0.25}),
		}},
		{Name: "cam4_r", Group: GroupOther, Phases: []Phase{
			phase(1700*k, Profile{ILP: 2.4, ICacheMPKI: 5, ICacheStall: 22, BranchMPKI: 3.5, BranchStall: 14, MemMPKI: 3.0, MemLat: 150, LoadRatio: 0.29, StoreRatio: 0.12, DepFrac: 0.32, IFootprint: 0.40, DFootprint: 0.48, MemBW: 0.32}),
			phase(900*k, Profile{ILP: 2.2, ICacheMPKI: 6, ICacheStall: 22, BranchMPKI: 4.0, BranchStall: 14, MemMPKI: 3.8, MemLat: 160, LoadRatio: 0.30, StoreRatio: 0.12, DepFrac: 0.34, IFootprint: 0.44, DFootprint: 0.50, MemBW: 0.35}),
		}},
		{Name: "deepsjeng_r", Group: GroupOther, Phases: []Phase{
			phase(1800*k, Profile{ILP: 2.5, ICacheMPKI: 6, ICacheStall: 22, BranchMPKI: 6, BranchStall: 14, MemMPKI: 1.8, MemLat: 130, LoadRatio: 0.27, StoreRatio: 0.10, DepFrac: 0.36, IFootprint: 0.45, DFootprint: 0.35, MemBW: 0.15}),
		}},
		{Name: "exchange2_r", Group: GroupOther, Phases: []Phase{
			phase(2400*k, Profile{ILP: 3.2, ICacheMPKI: 1.5, ICacheStall: 20, BranchMPKI: 3.5, BranchStall: 14, MemMPKI: 0.4, MemLat: 90, LoadRatio: 0.22, StoreRatio: 0.08, DepFrac: 0.25, IFootprint: 0.18, DFootprint: 0.15, MemBW: 0.05}),
		}},
		{Name: "fotonik3d_r", Group: GroupOther, Phases: []Phase{
			phase(2100*k, Profile{ILP: 2.5, ICacheMPKI: 0.8, ICacheStall: 19, BranchMPKI: 1.2, BranchStall: 14, MemMPKI: 3.0, MemLat: 145, LoadRatio: 0.31, StoreRatio: 0.13, DepFrac: 0.26, IFootprint: 0.08, DFootprint: 0.62, MemBW: 0.58}),
		}},
		{Name: "hmmer", Group: GroupOther, Phases: []Phase{
			phase(1900*k, Profile{ILP: 2.2, ICacheMPKI: 8, ICacheStall: 24, BranchMPKI: 7, BranchStall: 14, MemMPKI: 5.0, MemLat: 160, LoadRatio: 0.30, StoreRatio: 0.11, DepFrac: 0.38, IFootprint: 0.42, DFootprint: 0.50, MemBW: 0.35}),
		}},
		{Name: "imagick_r", Group: GroupOther, Phases: []Phase{
			phase(2*M, Profile{ILP: 3.0, ICacheMPKI: 1.0, ICacheStall: 20, BranchMPKI: 2.0, BranchStall: 14, MemMPKI: 1.8, MemLat: 130, LoadRatio: 0.27, StoreRatio: 0.11, DepFrac: 0.28, IFootprint: 0.10, DFootprint: 0.38, MemBW: 0.20}),
		}},
		{Name: "nab_r", Group: GroupOther, Phases: []Phase{
			phase(2600*k, Profile{ILP: 3.6, ICacheMPKI: 1.0, ICacheStall: 18, BranchMPKI: 1.5, BranchStall: 14, MemMPKI: 1.2, MemLat: 120, LoadRatio: 0.26, StoreRatio: 0.10, DepFrac: 0.24, IFootprint: 0.10, DFootprint: 0.30, MemBW: 0.15}),
		}},
		{Name: "namd_r", Group: GroupOther, Phases: []Phase{
			phase(2200*k, Profile{ILP: 3.1, ICacheMPKI: 0.8, ICacheStall: 19, BranchMPKI: 1.5, BranchStall: 14, MemMPKI: 1.5, MemLat: 125, LoadRatio: 0.27, StoreRatio: 0.10, DepFrac: 0.26, IFootprint: 0.09, DFootprint: 0.35, MemBW: 0.18}),
		}},
		{Name: "omnetpp_r", Group: GroupOther, Phases: []Phase{
			phase(1600*k, Profile{ILP: 1.9, ICacheMPKI: 7, ICacheStall: 23, BranchMPKI: 5, BranchStall: 14, MemMPKI: 5.0, MemLat: 175, LoadRatio: 0.31, StoreRatio: 0.11, DepFrac: 0.48, IFootprint: 0.45, DFootprint: 0.55, MemBW: 0.40}),
		}},
		{Name: "parest_r", Group: GroupOther, Phases: []Phase{
			phase(1900*k, Profile{ILP: 2.4, ICacheMPKI: 2.5, ICacheStall: 21, BranchMPKI: 2.5, BranchStall: 14, MemMPKI: 3.5, MemLat: 155, LoadRatio: 0.30, StoreRatio: 0.12, DepFrac: 0.34, IFootprint: 0.20, DFootprint: 0.52, MemBW: 0.35}),
		}},
		{Name: "povray_r", Group: GroupOther, Phases: []Phase{
			phase(2100*k, Profile{ILP: 2.8, ICacheMPKI: 4.5, ICacheStall: 22, BranchMPKI: 5, BranchStall: 14, MemMPKI: 0.6, MemLat: 100, LoadRatio: 0.25, StoreRatio: 0.10, DepFrac: 0.28, IFootprint: 0.38, DFootprint: 0.25, MemBW: 0.08}),
		}},
		{Name: "roms_r", Group: GroupOther, Phases: []Phase{
			phase(2*M, Profile{ILP: 2.6, ICacheMPKI: 0.7, ICacheStall: 19, BranchMPKI: 1.2, BranchStall: 14, MemMPKI: 3.2, MemLat: 150, LoadRatio: 0.30, StoreRatio: 0.13, DepFrac: 0.25, IFootprint: 0.07, DFootprint: 0.58, MemBW: 0.50}),
		}},
		{Name: "tonto", Group: GroupOther, Phases: []Phase{
			phase(1800*k, Profile{ILP: 2.7, ICacheMPKI: 3.5, ICacheStall: 21, BranchMPKI: 3, BranchStall: 14, MemMPKI: 2.0, MemLat: 135, LoadRatio: 0.28, StoreRatio: 0.11, DepFrac: 0.30, IFootprint: 0.30, DFootprint: 0.40, MemBW: 0.22}),
		}},
	}
}

var catalog = catalogue()

// Catalog returns the 28 application models in the paper's Table III order
// (backend bound, then frontend bound, then others). The returned slice and
// models are shared; callers must not mutate them.
func Catalog() []*Model { return catalog }

// ByName returns the model with the given paper name, or an error.
func ByName(name string) (*Model, error) {
	for _, m := range catalog {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// Names returns all application names, sorted alphabetically.
func Names() []string {
	out := make([]string, len(catalog))
	for i, m := range catalog {
		out[i] = m.Name
	}
	sort.Strings(out)
	return out
}

// ByGroup returns all models in group g, in catalogue order.
func ByGroup(g Group) []*Model {
	var out []*Model
	for _, m := range catalog {
		if m.Group == g {
			out = append(out, m)
		}
	}
	return out
}

// reservedForEvaluation lists the six applications excluded from model
// training. The paper trains on 80 % of the applications (22 of 28, §IV-C)
// and keeps the rest to evaluate the model on unseen behaviour; the exact
// identity of the held-out set is not published, so this choice spans all
// three groups.
var reservedForEvaluation = map[string]bool{
	"xalancbmk_r": true,
	"wrf_r":       true,
	"astar":       true,
	"blender_r":   true,
	"roms_r":      true,
	"tonto":       true,
}

// TrainingSet returns the 22 applications used to fit the regression model.
func TrainingSet() []*Model {
	var out []*Model
	for _, m := range catalog {
		if !reservedForEvaluation[m.Name] {
			out = append(out, m)
		}
	}
	return out
}

// EvaluationOnly returns the applications held out of training.
func EvaluationOnly() []*Model {
	var out []*Model
	for _, m := range catalog {
		if reservedForEvaluation[m.Name] {
			out = append(out, m)
		}
	}
	return out
}
