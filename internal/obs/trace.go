package obs

// DefaultMaxEvents bounds a trace's memory by default: a run emitting more
// events than this drops the excess (newest first) and counts them, so a
// million-job fleet run cannot turn tracing into an O(jobs) heap.
const DefaultMaxEvents = 1 << 20

// Trace is the run-global event sink. It is deliberately lock-free: every
// append happens on the coordinator goroutine — either directly
// (coordinator-serial dispatch events) or through a MachineTrace shard
// drained at a barrier — so a lock would only hide an ordering bug the
// nondet/sharedmut lint rules and the differential tests exist to catch.
type Trace struct {
	max     int
	events  []Event
	dropped uint64
	shards  map[int]*MachineTrace
}

// NewTrace builds a trace bounded at maxEvents (0 selects
// DefaultMaxEvents).
func NewTrace(maxEvents int) *Trace {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Trace{max: maxEvents, shards: map[int]*MachineTrace{}}
}

// Events returns the merged event stream in emission order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Dropped returns the number of events discarded at the MaxEvents bound.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// append adds one event, dropping (and counting) past the bound.
func (t *Trace) append(ev Event) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Emit appends one coordinator-emitted event directly (fleet dispatch
// decisions). Nil-safe.
func (t *Trace) Emit(ev Event) {
	if t == nil {
		return
	}
	t.append(ev)
}

// Machine returns machine i's shard buffer, creating it on first use.
// Returns nil on a nil trace, so engines can guard emission with one nil
// check. Shards are created from coordinator-serial code only (runner
// construction), matching the trace's locking model.
func (t *Trace) Machine(i int) *MachineTrace {
	if t == nil {
		return nil
	}
	mt := t.shards[i]
	if mt == nil {
		mt = &MachineTrace{t: t, machine: int32(i)}
		t.shards[i] = mt
	}
	return mt
}

// MachineTrace is one machine's shard buffer: events accumulate locally —
// race-free because each machine's lifecycle steps are serial — and the
// coordinator drains them into the global trace at the quantum/slice
// barriers, in ascending machine order. That drain order is what realises
// the (t, machine, core) merge order the package doc promises.
type MachineTrace struct {
	t       *Trace
	machine int32
	buf     []Event
}

// Emit buffers one event, stamping the shard's machine index. Nil-safe.
func (mt *MachineTrace) Emit(ev Event) {
	if mt == nil {
		return
	}
	ev.Machine = mt.machine
	mt.buf = append(mt.buf, ev)
}

// Flush drains the shard into the global trace in buffered order.
// Nil-safe; called by the coordinator only, at barriers.
func (mt *MachineTrace) Flush() {
	if mt == nil || len(mt.buf) == 0 {
		return
	}
	for _, ev := range mt.buf {
		mt.t.append(ev)
	}
	mt.buf = mt.buf[:0]
}
