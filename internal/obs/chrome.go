// Chrome trace-event exporter: renders a Trace as the JSON array format
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly. The
// mapping is machines → processes and hardware threads → threads, so a
// fleet run opens as one lane per hardware thread with exec spans, and the
// dispatch/queue instants ride above them.
//
// Timestamps are simulated microseconds: cycles / CyclesPerMicrosecond,
// a fixed nominal conversion (the simulator has no wall clock — see the
// package doc). The output is a deterministic function of the trace.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// CyclesPerMicrosecond is the nominal simulated-cycles→µs conversion the
// Chrome exporter uses (a 1 GHz convention: 1000 cycles render as 1 µs).
// It only scales the view; relative span lengths are exact.
const CyclesPerMicrosecond = 1000

// dispatchPID is the synthetic Chrome process that hosts fleet-level
// dispatch instants (machine -1 events).
const dispatchPID = 1_000_000

func chromePID(machine int32) int {
	if machine < 0 {
		return dispatchPID
	}
	return int(machine)
}

func simTS(cycles uint64) float64 { return float64(cycles) / CyclesPerMicrosecond }

// WriteChromeTrace renders the trace as a Chrome trace-event JSON array.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Metadata: name every process (machine) and thread (hardware
	// thread) that appears, in sorted order so the byte stream is
	// deterministic.
	type lane struct{ pid, tid int }
	pids := map[int]bool{}
	lanes := map[lane]bool{}
	for _, ev := range t.Events() {
		pid := chromePID(ev.Machine)
		pids[pid] = true
		if ev.Core >= 0 {
			lanes[lane{pid, int(ev.Core)}] = true
		}
	}
	sortedPIDs := make([]int, 0, len(pids))
	for pid := range pids {
		sortedPIDs = append(sortedPIDs, pid)
	}
	sort.Ints(sortedPIDs)
	for _, pid := range sortedPIDs {
		name := fmt.Sprintf("machine %d", pid)
		if pid == dispatchPID {
			name = "fleet dispatch"
		}
		emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%q}}`, pid, name)
	}
	sortedLanes := make([]lane, 0, len(lanes))
	for l := range lanes {
		sortedLanes = append(sortedLanes, l)
	}
	sort.Slice(sortedLanes, func(a, b int) bool {
		if sortedLanes[a].pid != sortedLanes[b].pid {
			return sortedLanes[a].pid < sortedLanes[b].pid
		}
		return sortedLanes[a].tid < sortedLanes[b].tid
	})
	for _, l := range sortedLanes {
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"hw thread %d"}}`,
			l.pid, l.tid, l.tid)
	}

	for _, ev := range t.Events() {
		pid := chromePID(ev.Machine)
		tid := int(ev.Core)
		if tid < 0 {
			tid = 0
		}
		name := ev.Name
		if name == "" {
			name = ev.Op.String()
		}
		switch ev.Op {
		case OpExec:
			emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"name":%q,"cat":"exec","args":{"job":%d,"inst":%d,"ff_cycles":%d}}`,
				pid, tid, simTS(ev.T), simTS(ev.Dur), name, ev.App, ev.A, ev.B)
		case OpQueue:
			emit(`{"ph":"C","pid":%d,"ts":%.3f,"name":"admission queue","args":{"queued":%d,"live":%d}}`,
				pid, simTS(ev.T), ev.A, ev.B)
		default:
			emit(`{"ph":"i","s":"p","pid":%d,"tid":%d,"ts":%.3f,"name":%q,"cat":%q,"args":{"job":%d,"a":%d,"b":%d}}`,
				pid, tid, simTS(ev.T), name, ev.Op.String(), ev.App, ev.A, ev.B)
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
