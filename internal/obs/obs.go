// Package obs is the run-scoped tracing and metrics layer: per-decision
// visibility into quantum lifecycles, placements and dispatch without
// giving up the repository's bit-identity invariant.
//
// Deterministic by construction. Every span and event is stamped with
// *simulated* event time — cycles and quantum indices threaded in by the
// engines — never the wall clock, so this package is subject to the full
// `synpa-lint nondet` rule set (it is a corePackages member) and trace
// output is a pure function of Config + seed. The same run produces
// byte-identical trace and metrics output at every worker count, which the
// differential tests pin at SYNPA_WORKERS=1 vs 4.
//
// Worker-count invariance rests on the PR-4/PR-6 parallel-merge invariant:
// events are emitted only from coordinator-serial code (admission,
// planning, dispatch, slice finish), never from the parallel quantum step,
// and land first in per-machine shard buffers (MachineTrace). The
// coordinator drains the shards into the global Trace at the existing
// quantum/slice barriers in fixed ascending machine order; within a shard,
// events are naturally ordered by (t, core) because each machine's
// lifecycle calls advance its clock monotonically and iterate cores in
// index order. The merged stream order is therefore (t, machine, core)
// within every barrier window, independent of scheduling.
//
// Cost when disabled. A disabled site is a nil-receiver no-op: one nil
// check on a *Counter, *Histogram or *MachineTrace — the same budget as
// the perfstat.PhaseClock idiom's single atomic load. Engines resolve
// their counters once up front (RunCounters), so no instrumented site pays
// a map lookup.
package obs

// Observer bundles the two run-scoped sinks: an event trace and a metrics
// registry. Either may be nil — a nil trace disables event emission, a nil
// registry disables counters — and a nil *Observer disables both.
type Observer struct {
	// Trace receives the run's event stream; nil disables tracing.
	Trace *Trace
	// Reg receives the run's counters, gauges and histograms; nil
	// disables metrics.
	Reg *Registry
}

// NewObserver builds an observer with a fresh registry and a trace bounded
// at maxEvents (0 selects DefaultMaxEvents).
func NewObserver(maxEvents int) *Observer {
	return &Observer{Trace: NewTrace(maxEvents), Reg: NewRegistry()}
}

// Machine derives machine i's emission handle: its trace shard and the
// shared run counters. Safe on a nil Observer (fully disabled view).
func (o *Observer) Machine(i int) MachineView {
	if o == nil {
		return MachineView{rc: &disabledCounters}
	}
	return MachineView{mt: o.Trace.Machine(i), rc: o.Reg.RunCounters()}
}

// Counters resolves the observer's run counters directly — the fleet
// coordinator's handle for machine-independent counters (dispatch). Never
// nil; the disabled set on a nil observer or registry.
func (o *Observer) Counters() *RunCounters {
	if o == nil {
		return &disabledCounters
	}
	return o.Reg.RunCounters()
}

// MachineView is one machine's handle into the observer: the shard buffer
// it emits events through and the pre-resolved registry counters. The zero
// value is a valid, fully disabled view.
type MachineView struct {
	mt *MachineTrace
	rc *RunCounters
}

// Trace returns the machine's shard buffer, or nil when tracing is off —
// engines guard event construction on it.
func (v MachineView) Trace() *MachineTrace { return v.mt }

// Counters returns the run counters; never nil, but possibly the disabled
// set whose fields are nil no-ops.
func (v MachineView) Counters() *RunCounters {
	if v.rc == nil {
		return &disabledCounters
	}
	return v.rc
}
