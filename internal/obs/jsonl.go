// Compact JSONL exporter plus the -trace-out destination parsing both
// CLIs share: one JSON object per event, machine-sortable, greppable, and
// byte-deterministic for the differential tests.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Trace output formats.
const (
	FormatChrome = "chrome"
	FormatJSONL  = "jsonl"
)

// TraceFormats lists the valid -trace-out formats, sorted.
func TraceFormats() []string { return []string{FormatChrome, FormatJSONL} }

// jsonlEvent is the wire shape of one event.
type jsonlEvent struct {
	T       uint64    `json:"t"`
	Op      string    `json:"op"`
	Machine int32     `json:"m"`
	Core    int32     `json:"c"`
	App     int64     `json:"app"`
	Name    string    `json:"name,omitempty"`
	Dur     uint64    `json:"dur,omitempty"`
	A       int64     `json:"a,omitempty"`
	B       int64     `json:"b,omitempty"`
	Vals    []float64 `json:"vals,omitempty"`
}

// WriteJSONL renders the trace as one JSON object per line, ending with a
// summary line carrying the event and dropped counts.
func WriteJSONL(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		je := jsonlEvent{
			T: ev.T, Op: ev.Op.String(), Machine: ev.Machine, Core: ev.Core,
			App: ev.App, Name: ev.Name, Dur: ev.Dur, A: ev.A, B: ev.B, Vals: ev.Vals,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	fmt.Fprintf(bw, `{"summary":true,"events":%d,"dropped":%d}`+"\n", len(t.Events()), t.Dropped())
	return bw.Flush()
}

// ParseTraceDest resolves a -trace-out argument of the form
// "[format:]path". A prefix is treated as a format only when it names a
// known one; any other prefix is part of the path (colons are legal in
// file names — "trace-12:30.json" is a Chrome destination, not a request
// for a "trace-12" format). Without a format prefix, a .jsonl/.ndjson
// extension selects JSONL and anything else the Chrome format. The error
// return is always nil today and kept for future destination kinds.
func ParseTraceDest(arg string) (format, path string, err error) {
	if f, p, ok := strings.Cut(arg, ":"); ok {
		switch f {
		case FormatChrome, FormatJSONL:
			return f, p, nil
		}
		// Not a known format: the colon belongs to the path; fall through
		// to extension sniffing on the whole argument.
	}
	if strings.HasSuffix(arg, ".jsonl") || strings.HasSuffix(arg, ".ndjson") {
		return FormatJSONL, arg, nil
	}
	return FormatChrome, arg, nil
}

// WriteTraceFile writes the trace to path in the given format (a
// ParseTraceDest result).
func WriteTraceFile(path, format string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case FormatJSONL:
		err = WriteJSONL(f, t)
	case FormatChrome:
		err = WriteChromeTrace(f, t)
	default:
		err = fmt.Errorf("unknown trace format %q; valid formats: %s",
			format, strings.Join(TraceFormats(), ", "))
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteMetricsFile writes the registry snapshot to path as indented JSON.
func WriteMetricsFile(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.Snapshot().WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
