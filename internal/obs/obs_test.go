package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilSafety pins the disabled-path contract: every handle in the
// package is a no-op through a nil receiver, so instrumented engine code
// never branches beyond one nil check.
func TestNilSafety(t *testing.T) {
	var o *Observer
	v := o.Machine(3)
	if v.Trace() != nil {
		t.Fatal("nil observer returned a live machine trace")
	}
	v.Counters().JobsArrived.Add(1)
	v.Counters().QueueDepth.Observe(2)
	if v.Counters().Enabled() {
		t.Fatal("nil observer's counters claim to be enabled")
	}
	o.Counters().Slices.Add(1)

	var tr *Trace
	tr.Emit(Event{})
	tr.Machine(0).Emit(Event{})
	tr.Machine(0).Flush()
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace reported events")
	}

	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil registry counter value = %d", got)
	}
	if s := r.Snapshot(); s.Counters != nil || s.Histograms != nil {
		t.Fatal("nil registry produced a non-empty snapshot")
	}
	if r.RunCounters().Enabled() {
		t.Fatal("nil registry's run counters claim to be enabled")
	}

	// The zero MachineView is a valid disabled view.
	var zero MachineView
	zero.Counters().Rebinds.Add(1)
	if zero.Trace() != nil || zero.Counters().Enabled() {
		t.Fatal("zero MachineView is not disabled")
	}
}

// TestTraceBound pins the memory bound: events past max are dropped
// newest-first and counted, through both the direct and the shard path.
func TestTraceBound(t *testing.T) {
	tr := NewTrace(3)
	mt := tr.Machine(0)
	for i := 0; i < 2; i++ {
		mt.Emit(Event{T: uint64(i), Op: OpArrive})
	}
	mt.Flush()
	for i := 2; i < 5; i++ {
		tr.Emit(Event{T: uint64(i), Op: OpDispatch})
	}
	if got := len(tr.Events()); got != 3 {
		t.Fatalf("kept %d events, want 3", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped %d events, want 2", got)
	}
	// The retained prefix is the oldest events, in emission order.
	for i, ev := range tr.Events() {
		if ev.T != uint64(i) {
			t.Fatalf("event %d has T=%d, want %d", i, ev.T, i)
		}
	}
}

// TestShardMerge pins the barrier-drain model: shard events are stamped
// with their machine and land in the global stream in flush order, so a
// coordinator draining shards in ascending machine order realises the
// (t, machine) merge order at every barrier.
func TestShardMerge(t *testing.T) {
	tr := NewTrace(0)
	m1, m0 := tr.Machine(1), tr.Machine(0)
	m1.Emit(Event{T: 10, Op: OpAdmit})
	m0.Emit(Event{T: 10, Op: OpAdmit})
	m0.Emit(Event{T: 20, Op: OpDepart})
	// Barrier: drain ascending.
	m0.Flush()
	m1.Flush()
	m1.Flush() // idempotent on an empty shard

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("merged %d events, want 3", len(evs))
	}
	wantMachines := []int32{0, 0, 1}
	for i, w := range wantMachines {
		if evs[i].Machine != w {
			t.Fatalf("event %d on machine %d, want %d", i, evs[i].Machine, w)
		}
	}
	if same := tr.Machine(1); same != m1 {
		t.Fatal("Machine(1) did not memoise the shard")
	}
}

// TestRegistrySnapshotBytes pins metrics determinism: two registries fed
// the same operations serialise to identical bytes (encoding/json sorts
// map keys).
func TestRegistrySnapshotBytes(t *testing.T) {
	feed := func(r *Registry, order []string) {
		for _, name := range order {
			r.Counter(name).Add(7)
		}
		r.Gauge("g").Set(3)
		for i := 0; i < 100; i++ {
			r.Histogram("h").Observe(float64(i % 13))
		}
	}
	a, b := NewRegistry(), NewRegistry()
	feed(a, []string{"x", "y", "z"})
	feed(b, []string{"z", "x", "y"}) // registration order must not matter

	var ba, bb bytes.Buffer
	if err := a.Snapshot().WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("snapshots diverged:\n%s\nvs\n%s", ba.String(), bb.String())
	}
	var s Snapshot
	if err := json.Unmarshal(ba.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["x"] != 7 || s.Histograms["h"].Count != 100 {
		t.Fatalf("snapshot round-trip lost values: %+v", s)
	}
}

// TestRunCounters pins the engine counter set: resolved once per registry,
// named under the documented prefixes, live only on a real registry.
func TestRunCounters(t *testing.T) {
	r := NewRegistry()
	rc := r.RunCounters()
	if !rc.Enabled() {
		t.Fatal("registry counters not enabled")
	}
	if r.RunCounters() != rc {
		t.Fatal("RunCounters not memoised")
	}
	rc.Slices.Add(2)
	rc.ResponseCycles.Observe(5000)
	s := r.Snapshot()
	if s.Counters["machine.slices"] != 2 {
		t.Fatalf("machine.slices = %d, want 2", s.Counters["machine.slices"])
	}
	if s.Histograms["jobs.response_cycles"].Count != 1 {
		t.Fatal("jobs.response_cycles histogram missed the observation")
	}
	if (&disabledCounters).Enabled() {
		t.Fatal("disabled counter set claims enabled")
	}
}

// TestParseTraceDest pins the CLI destination grammar: explicit format
// prefixes, extension-based defaults, and — the regression case — paths
// whose first segment contains a colon without naming a known format,
// which must fall through to extension sniffing instead of erroring.
func TestParseTraceDest(t *testing.T) {
	cases := []struct {
		arg, format, path string
	}{
		{"chrome:out.json", FormatChrome, "out.json"},
		{"jsonl:out.dat", FormatJSONL, "out.dat"},
		{"out.jsonl", FormatJSONL, "out.jsonl"},
		{"out.ndjson", FormatJSONL, "out.ndjson"},
		{"out.json", FormatChrome, "out.json"},
		{"trace", FormatChrome, "trace"},
		// A colon inside a path component is not a format prefix.
		{"some/dir:name/out.jsonl", FormatJSONL, "some/dir:name/out.jsonl"},
		// Regression: a timestamped file name is a path, not an unknown
		// format ("trace-12:30.json" once errored as format "trace-12").
		{"trace-12:30.json", FormatChrome, "trace-12:30.json"},
		{"trace-12:30.jsonl", FormatJSONL, "trace-12:30.jsonl"},
		{"protobuf:out.trace", FormatChrome, "protobuf:out.trace"},
		{"C:\\traces\\out.ndjson", FormatJSONL, "C:\\traces\\out.ndjson"},
	}
	for _, c := range cases {
		format, path, err := ParseTraceDest(c.arg)
		if err != nil {
			t.Fatalf("ParseTraceDest(%q): %v", c.arg, err)
		}
		if format != c.format || path != c.path {
			t.Fatalf("ParseTraceDest(%q) = (%q, %q), want (%q, %q)",
				c.arg, format, path, c.format, c.path)
		}
	}
}

// sampleTrace builds a small mixed trace through the shard path.
func sampleTrace() *Trace {
	tr := NewTrace(0)
	mt := tr.Machine(0)
	mt.Emit(Event{T: 0, Op: OpArrive, App: 0, A: 0, Core: -1})
	mt.Emit(Event{T: 0, Op: OpQueue, A: 1, B: 0, Core: -1})
	mt.Emit(Event{T: 0, Op: OpExec, Dur: 8000, Core: 2, App: 0, Name: "mcf", A: 1234, B: 500})
	mt.Emit(Event{T: 8000, Op: OpDepart, App: 0, Name: "mcf", A: 8000, Core: -1})
	mt.Flush()
	tr.Emit(Event{T: 0, Op: OpDispatch, Machine: -1, Core: -1, App: 0, A: 1, Vals: []float64{0.5, 1.5}})
	return tr
}

// TestWriteJSONL pins the JSONL wire shape: one object per line, a summary
// trailer, byte-deterministic across identical traces.
func TestWriteJSONL(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical traces serialised to different JSONL bytes")
	}
	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 5 events + summary", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
	}
	var sum struct {
		Summary bool `json:"summary"`
		Events  int  `json:"events"`
		Dropped int  `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Summary || sum.Events != 5 || sum.Dropped != 0 {
		t.Fatalf("summary line = %+v", sum)
	}
	var first struct {
		Op string `json:"op"`
		T  uint64 `json:"t"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Op != "arrive" {
		t.Fatalf("first op = %q, want arrive", first.Op)
	}
}

// TestWriteChromeTrace pins the Perfetto mapping: valid JSON, machines as
// processes with sorted metadata, exec spans as "X", queue depth as "C",
// dispatch under the synthetic fleet process.
func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	byPhase := map[string]int{}
	var execDur float64
	var sawDispatchProc bool
	for _, ev := range doc.TraceEvents {
		byPhase[ev.Ph]++
		if ev.Ph == "X" {
			execDur = ev.Dur
			if ev.Name != "mcf" || ev.TID != 2 {
				t.Fatalf("exec span mislabelled: %+v", ev)
			}
		}
		if ev.PID == 1_000_000 && ev.Ph == "M" {
			sawDispatchProc = true
		}
	}
	// machine 0 process + its thread lane + fleet dispatch process = 3 "M".
	if byPhase["M"] != 3 || byPhase["X"] != 1 || byPhase["C"] != 1 || byPhase["i"] != 3 {
		t.Fatalf("phase counts = %v", byPhase)
	}
	if !sawDispatchProc {
		t.Fatal("fleet dispatch process metadata missing")
	}
	// 8000 cycles at 1000 cycles/µs renders as an 8 µs span.
	if execDur != 8 {
		t.Fatalf("exec dur = %v µs, want 8", execDur)
	}
}
