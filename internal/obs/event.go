package obs

// Op identifies what an Event records.
type Op uint8

// The instrumented decision points, in lifecycle order.
const (
	// OpArrive: a job reached a machine's arrival queue. T is the
	// dispatch cycle, App the job ID, A the trace arrival cycle.
	OpArrive Op = iota
	// OpAdmit: a job moved from the queue onto a hardware thread. T is
	// the admission cycle, App the job ID, A the cycles it queued.
	OpAdmit
	// OpQueue: admission-queue depth at a slice plan. T is the plan
	// cycle, A the queued-job count, B the live-job count.
	OpQueue
	// OpPlace: one placement decision. T is the plan cycle, A the slice
	// index, B the thread rebinds the new placement required. Vals, when
	// present, carries [predcache invert hits, invert misses, pair hits,
	// pair misses] deltas for this decision — the policy internals.
	OpPlace
	// OpExec: one job's execution over one slice on one hardware thread.
	// T is the slice start, Dur its length, Core the hardware thread,
	// App the job ID, A the instructions retired, B the cycles the
	// core's fast-forward tiers bulk-skipped during the slice.
	OpExec
	// OpDepart: a job completed. T is the completion cycle, App the job
	// ID, A the response cycles (completion − arrival).
	OpDepart
	// OpDispatch: the fleet chose a machine for an arrival. T is the
	// arrival cycle, Machine the chosen machine, App the job ID, A the
	// chosen machine's committed load. Vals, when present, carries the
	// per-machine candidate scores the dispatcher compared.
	OpDispatch
	numOps
)

var opNames = [numOps]string{
	"arrive", "admit", "queue", "place", "exec", "depart", "dispatch",
}

// String returns the op's wire name (the JSONL "op" field).
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "unknown"
}

// Event is one simulation-time observation. All times are simulated cycles
// — never wall-clock — which is what keeps traces bit-identical across
// worker counts and hosts.
type Event struct {
	// T is the event's simulated cycle; Dur its span length (0 for
	// instants).
	T, Dur uint64
	// Machine and Core locate the event; Core is a hardware-thread index
	// (core·SMTLevel + slot) and either may be -1 when not applicable.
	Machine, Core int32
	// App is the job or application identity (-1 when not applicable).
	App int64
	// Op says what happened; A and B are its payload (see the Op docs).
	Op   Op
	A, B int64
	// Name is the application's benchmark name on exec/depart events
	// (a shared string, not a copy); empty otherwise.
	Name string
	// Vals carries op-specific float payloads (dispatch candidate
	// scores, predcache deltas); nil for most events.
	Vals []float64
}
