package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"

	"synpa/internal/stats"
)

// Counter is a monotonic (or reset-to-zero) integer metric. Adds are
// atomic, so parallel regions may bump counters freely: integer addition
// commutes, which keeps snapshot values identical at every worker count as
// long as the *set* of adds is deterministic. All methods are nil-safe
// no-ops, the disabled-path contract.
type Counter struct {
	v atomic.Int64
}

// Add accrues d. Nil-safe.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter. Nil-safe.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is a last-value integer metric. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a mergeable distribution metric backed by the
// internal/stats log-bucketed sketch plus running moments. Observations
// from parallel regions serialise on a mutex; bucket increments commute,
// so the snapshot is worker-count-invariant for a deterministic
// observation multiset.
type Histogram struct {
	mu  sync.Mutex
	sk  *stats.Sketch
	mom stats.Moments
}

// Observe folds one value in. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.sk.Add(v)
	h.mom.Add(v)
	h.mu.Unlock()
}

// HistStat is a histogram's snapshot: count, mean and sketch quantiles.
type HistStat struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// snapshot summarises the histogram.
func (h *Histogram) snapshot() HistStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistStat{Count: h.mom.Count()}
	if s.Count == 0 {
		return s
	}
	s.Mean = h.mom.Mean()
	s.Min, s.Max = h.sk.Min(), h.sk.Max()
	s.P50 = h.sk.Quantile(0.50)
	s.P90 = h.sk.Quantile(0.90)
	s.P99 = h.sk.Quantile(0.99)
	return s
}

// Registry names and owns a run's metrics. Lookups lazily register;
// engines resolve their metrics once up front (RunCounters), so the
// per-site cost is the Counter's own atomic.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	rcOnce sync.Once
	rc     *RunCounters
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, registering it on first use. Returns
// nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use with
// the stats package's default sketch accuracy. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{sk: stats.NewSketch(0)}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a registry's serialisable state. encoding/json renders map
// keys sorted, so two snapshots with equal values marshal to identical
// bytes — the property the metrics determinism tests compare.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Nil-safe (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistStat, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (sorted keys, trailing
// newline) — the -metrics-out format.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// RunCounters are the registry metrics the engines bump, resolved once so
// every instrumented site costs one nil check plus one atomic. The
// zero/disabled set has nil fields throughout: every method call no-ops.
type RunCounters struct {
	enabled bool

	// Job lifecycle.
	JobsArrived, JobsAdmitted, JobsCompleted, JobsDeferred *Counter
	// Machine quantum lifecycle.
	Slices, PlaceCalls, Rebinds *Counter
	// Policy internals: predcache hit/miss deltas observed per decision.
	InvertHits, InvertMisses, PairHits, PairMisses *Counter
	// Fleet dispatch decisions.
	Dispatched *Counter
	// Core-engine cycle split (reference steps vs span engine vs bulk
	// fast-forward skips).
	StepCycles, SpanCycles, FFCycles *Counter
	// Distributions: admission-queue depth at each slice plan, response
	// cycles of each completed job.
	QueueDepth, ResponseCycles *Histogram
}

var disabledCounters RunCounters

// Enabled reports whether the counters are live — engines use it to skip
// delta computations whose results would be discarded.
func (rc *RunCounters) Enabled() bool { return rc != nil && rc.enabled }

// RunCounters resolves the engine counter set, once per registry. On a nil
// registry it returns the shared disabled set.
func (r *Registry) RunCounters() *RunCounters {
	if r == nil {
		return &disabledCounters
	}
	r.rcOnce.Do(func() {
		r.rc = &RunCounters{
			enabled:        true,
			JobsArrived:    r.Counter("jobs.arrived"),
			JobsAdmitted:   r.Counter("jobs.admitted"),
			JobsCompleted:  r.Counter("jobs.completed"),
			JobsDeferred:   r.Counter("jobs.deferred"),
			Slices:         r.Counter("machine.slices"),
			PlaceCalls:     r.Counter("policy.place_calls"),
			Rebinds:        r.Counter("policy.rebinds"),
			InvertHits:     r.Counter("predcache.invert.hits"),
			InvertMisses:   r.Counter("predcache.invert.misses"),
			PairHits:       r.Counter("predcache.pair.hits"),
			PairMisses:     r.Counter("predcache.pair.misses"),
			Dispatched:     r.Counter("fleet.dispatched"),
			StepCycles:     r.Counter("smtcore.step_cycles"),
			SpanCycles:     r.Counter("smtcore.span_cycles"),
			FFCycles:       r.Counter("smtcore.ff_cycles"),
			QueueDepth:     r.Histogram("admission.queue_depth"),
			ResponseCycles: r.Histogram("jobs.response_cycles"),
		}
	})
	return r.rc
}

var (
	globalOnce sync.Once
	global     *Registry
)

// Global returns the process-wide registry: the home of cross-run metrics
// like the perfstat phase accumulators, and the registry the bench
// harness snapshots into BENCH_*.json.
func Global() *Registry {
	globalOnce.Do(func() { global = NewRegistry() })
	return global
}
