// Cluster-level dispatch: the first level of the fleet's two-level
// scheduler picks the machine for each arriving job; the second level (the
// per-machine SYNPA placement policy) picks its threads. Three disciplines:
//
//   - round-robin: cyclic assignment, load-blind. The baseline a cluster
//     front-end starts from.
//   - least-loaded: the machine with the fewest unfinished jobs (live +
//     queued), ties to the lowest index — the classic water-filling
//     dispatcher.
//   - interference: among machines with a free hardware thread, the one
//     whose resident jobs the trained degradation model predicts to
//     interfere least with the newcomer (ties by load, then index); falls
//     back to least-loaded when every machine is saturated. This is the
//     AMTHA-style dispatch-level use of the same model SYNPA places
//     threads with.
//
// Every pick is a pure function of dispatch state mutated only on the
// coordinator goroutine, in stream order — worker count cannot affect it.
// Selection scans O(machines) per job; at the fleet sizes the experiments
// run (hundreds to a few thousand machines) the scan is noise next to
// simulating the quantum, and it keeps determinism trivial.
package fleet

import (
	"fmt"
	"sort"

	"synpa/internal/core"
)

// Dispatch policy names.
const (
	DispatchRoundRobin   = "round-robin"
	DispatchLeastLoaded  = "least-loaded"
	DispatchInterference = "interference"
)

// Dispatchers lists the valid dispatch-policy names, sorted.
func Dispatchers() []string {
	return []string{DispatchInterference, DispatchLeastLoaded, DispatchRoundRobin}
}

// dispatcher picks machines for arrivals and tracks commitment state.
type dispatcher interface {
	name() string
	// pick returns the machine for the job and commits it there.
	pick(j *Job) int
	// done releases one of machine m's committed jobs.
	done(m int, appName string)
}

// scorer is implemented by dispatchers whose pick compares per-machine
// candidate scores. The trace exporter reads them (before pick commits the
// job) to attach the compared vector to dispatch events; scores never
// influence the decision itself.
type scorer interface {
	scores(j *Job, dst []float64) []float64
}

// loadReporter is implemented by dispatchers that track per-machine
// committed load, so dispatch events can record the chosen machine's load.
type loadReporter interface {
	load(m int) int
}

// scoredMachinesMax bounds the fleet size at which dispatch events carry
// the full candidate-score vector: above it the O(machines) payload per
// arrival would dominate the trace.
const scoredMachinesMax = 64

// newDispatcher resolves a dispatch policy by name ("" selects
// least-loaded). The interference dispatcher needs the trained model and
// the machines' hardware-thread capacity.
func newDispatcher(name string, machines, hwThreads int, model *core.Model) (dispatcher, error) {
	switch name {
	case DispatchRoundRobin:
		return &roundRobin{machines: machines}, nil
	case "", DispatchLeastLoaded:
		return &leastLoaded{loads: make([]int, machines)}, nil
	case DispatchInterference:
		if model == nil {
			return nil, fmt.Errorf("fleet: %s dispatch needs a trained interference model", DispatchInterference)
		}
		d := &interference{
			leastLoaded: leastLoaded{loads: make([]int, machines)},
			model:       model,
			capacity:    hwThreads,
			catSums:     make([][]float64, machines),
			cats:        map[string][]float64{},
		}
		return d, nil
	default:
		return nil, fmt.Errorf("fleet: unknown dispatch policy %q (valid: %v)", name, Dispatchers())
	}
}

// roundRobin assigns machines cyclically.
type roundRobin struct {
	machines int
	next     int
}

func (d *roundRobin) name() string { return DispatchRoundRobin }

func (d *roundRobin) pick(*Job) int {
	m := d.next
	d.next = (d.next + 1) % d.machines
	return m
}

func (d *roundRobin) done(int, string) {}

// leastLoaded assigns the machine with the fewest unfinished jobs.
type leastLoaded struct {
	loads []int // per machine: dispatched and not yet finished
}

func (d *leastLoaded) name() string { return DispatchLeastLoaded }

func (d *leastLoaded) pick(*Job) int {
	best := 0
	for m := 1; m < len(d.loads); m++ {
		if d.loads[m] < d.loads[best] {
			best = m
		}
	}
	d.loads[best]++
	return best
}

func (d *leastLoaded) done(m int, _ string) { d.loads[m]-- }

func (d *leastLoaded) load(m int) int { return d.loads[m] }

// scores reports each machine's committed load — the quantity pick
// minimises. Trace-only.
func (d *leastLoaded) scores(_ *Job, dst []float64) []float64 {
	for _, l := range d.loads {
		dst = append(dst, float64(l))
	}
	return dst
}

// interference scores candidate machines with the trained pair-degradation
// model over the residents' isolated category fractions.
type interference struct {
	leastLoaded
	model    *core.Model
	capacity int // hardware threads per machine

	// catSums[m] is the sum of category-fraction vectors of machine m's
	// unfinished jobs; cats memoises each application's vector (O(apps)).
	catSums [][]float64
	cats    map[string][]float64
	// meanBuf is score's reusable mean-profile scratch: one buffer per
	// dispatcher instead of one allocation per candidate machine per
	// arrival. The model reads it synchronously and never retains it.
	meanBuf []float64
}

func (d *interference) name() string { return DispatchInterference }

// noteCats memoises an application's isolated category fractions; the
// source attaches them to every job it emits.
func (d *interference) noteCats(appName string, cats []float64) {
	if _, ok := d.cats[appName]; !ok {
		d.cats[appName] = append([]float64(nil), cats...)
	}
}

// score predicts the mutual degradation between the job and machine m's
// mean resident profile; an empty machine is interference-free.
func (d *interference) score(j *Job, m int) float64 {
	if d.loads[m] == 0 || d.catSums[m] == nil {
		return 0
	}
	if cap(d.meanBuf) < len(d.catSums[m]) {
		d.meanBuf = make([]float64, len(d.catSums[m]))
	}
	mean := d.meanBuf[:len(d.catSums[m])]
	inv := 1 / float64(d.loads[m])
	for k, v := range d.catSums[m] {
		mean[k] = v * inv
	}
	return d.model.PairDegradation(j.Cats, mean)
}

func (d *interference) pick(j *Job) int {
	d.noteCats(j.App.Model.Name, j.Cats)
	best, bestScore, found := 0, 0.0, false
	for m := 0; m < len(d.loads); m++ {
		if d.loads[m] >= d.capacity {
			continue // saturated: the job could only queue
		}
		s := d.score(j, m)
		if !found || s < bestScore ||
			(s == bestScore && (d.loads[m] < d.loads[best] ||
				(d.loads[m] == d.loads[best] && m < best))) {
			best, bestScore, found = m, s, true
		}
	}
	if !found {
		// Every machine is saturated; queue where the backlog is
		// shortest.
		m := d.leastLoaded.pick(j)
		d.addCats(m, j.Cats, 1)
		return m
	}
	d.loads[best]++
	d.addCats(best, j.Cats, 1)
	return best
}

// scores reports each machine's predicted mutual degradation with the job
// — the quantity pick minimises among unsaturated machines. Trace-only.
func (d *interference) scores(j *Job, dst []float64) []float64 {
	for m := 0; m < len(d.loads); m++ {
		dst = append(dst, d.score(j, m))
	}
	return dst
}

func (d *interference) done(m int, appName string) {
	d.loads[m]--
	if cats, ok := d.cats[appName]; ok {
		d.addCats(m, cats, -1)
	}
}

// addCats accumulates sign·cats into machine m's resident profile.
func (d *interference) addCats(m int, cats []float64, sign float64) {
	if cats == nil {
		return
	}
	if d.catSums[m] == nil {
		d.catSums[m] = make([]float64, len(cats))
	}
	for k, v := range cats {
		d.catSums[m][k] += sign * v
	}
}

// CheckDispatch validates a dispatch-policy name, returning the CLI-grade
// error listing the valid names.
func CheckDispatch(name string) error {
	if name == "" {
		return nil
	}
	for _, d := range Dispatchers() {
		if name == d {
			return nil
		}
	}
	valid := Dispatchers()
	sort.Strings(valid)
	return fmt.Errorf("fleet: unknown dispatch policy %q (valid: %v)", name, valid)
}
