// Job sources: the fleet consumes arrivals as a stream, never a slice, so
// a billion-job trace costs O(1) memory at this layer. TraceSource adapts
// a workload trace stream (scripted, file-loaded or lazily generated
// Poisson) into dispatch-ready jobs using the same §V-B reference
// measurements — and the same target-scaling arithmetic — as
// TargetCache.DynamicWork, so a job means exactly the same thing at fleet
// scale as in a single-machine run.
package fleet

import (
	"fmt"

	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/workload"
)

// Job is one dispatch-ready arrival.
type Job struct {
	// ID is the global stream index — the identity that seeds the job's
	// private RNG stream, keys the admission queue and names the job to
	// the placement policy, at any fleet size.
	ID int
	// App is the machine-level work description.
	App machine.DynamicApp
	// IsoCycles is the isolated execution time of the job's scaled work,
	// the normalization denominator for response times.
	IsoCycles float64
	// Cats is the application's isolated three-category fraction vector
	// (nil when the source does not characterise apps); the
	// interference-aware dispatcher scores machines with it.
	Cats []float64
}

// Source yields jobs in non-decreasing ArriveAt order. After Next returns
// false, Err reports whether the stream ended cleanly.
type Source interface {
	// Name identifies the source in reports.
	Name() string
	// Next returns the next job, or false at end of stream.
	Next() (Job, bool)
	// Err returns the first stream error, nil on clean exhaustion.
	Err() error
}

// appInfo memoises one application's reference measurements.
type appInfo struct {
	model  *apps.Model
	target uint64
	ipc    float64
	cats   []float64
}

// traceSource adapts a workload trace stream into fleet jobs.
type traceSource struct {
	tc    *workload.TargetCache
	ts    workload.TraceStream
	width int
	memo  map[string]*appInfo

	n       int
	last    uint64
	started bool
	err     error
	done    bool
}

// NewTraceSource adapts a trace stream into a job source using the cache's
// reference measurements. A positive catsWidth additionally characterises
// each application by its isolated three-category fractions at that
// dispatch width (the machines' width), which the interference dispatcher
// requires; zero skips the characterisation. Measurements are memoised per
// application, so a stream of a million jobs over a twenty-app catalogue
// costs twenty isolated runs.
func NewTraceSource(tc *workload.TargetCache, ts workload.TraceStream, catsWidth int) Source {
	return &traceSource{tc: tc, ts: ts, width: catsWidth, memo: map[string]*appInfo{}}
}

func (s *traceSource) Name() string { return s.ts.Name() }

func (s *traceSource) Err() error { return s.err }

// info returns the application's memoised measurements.
func (s *traceSource) info(name string) (*appInfo, error) {
	if in, ok := s.memo[name]; ok {
		return in, nil
	}
	m, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	target, err := s.tc.Target(m)
	if err != nil {
		return nil, err
	}
	ipc, err := s.tc.IsolatedIPC(m)
	if err != nil {
		return nil, err
	}
	in := &appInfo{model: m, target: target, ipc: ipc}
	if s.width > 0 {
		counters, err := s.tc.IsolatedCounters(m)
		if err != nil {
			return nil, err
		}
		in.cats = core.ThreeCategoryFractions(counters, s.width)
	}
	s.memo[name] = in
	return in, nil
}

func (s *traceSource) fail(err error) (Job, bool) {
	s.err = err
	s.done = true
	return Job{}, false
}

func (s *traceSource) Next() (Job, bool) {
	if s.done {
		return Job{}, false
	}
	e, ok := s.ts.Next()
	if !ok {
		s.done = true
		s.err = s.ts.Err()
		return Job{}, false
	}
	if err := e.Check(); err != nil {
		return s.fail(fmt.Errorf("fleet: source %q job %d: %w", s.ts.Name(), s.n, err))
	}
	if s.started && e.ArriveAt < s.last {
		return s.fail(fmt.Errorf("fleet: source %q job %d arrives at %d after cycle %d; streams must be time-ordered",
			s.ts.Name(), s.n, e.ArriveAt, s.last))
	}
	in, err := s.info(e.App)
	if err != nil {
		return s.fail(fmt.Errorf("fleet: source %q job %d: %w", s.ts.Name(), s.n, err))
	}
	// The exact DynamicWork scaling: zero Work means the full reference
	// target, and a scaled target never rounds to nothing.
	w := e.Work
	if w == 0 {
		w = 1
	}
	scaled := uint64(float64(in.target) * w)
	if scaled == 0 {
		scaled = 1
	}
	j := Job{
		ID: s.n,
		App: machine.DynamicApp{
			Model:    in.model,
			Target:   scaled,
			ArriveAt: e.ArriveAt,
			Priority: e.Priority,
			Weight:   e.Weight,
		},
		IsoCycles: float64(scaled) / in.ipc,
		Cats:      in.cats,
	}
	s.n++
	s.last = e.ArriveAt
	s.started = true
	return j, true
}
