package fleet

// Differential gates for the fleet-wide shared prediction cache: a shared
// concurrent cache, private per-machine caches and no cache at all must
// produce bit-identical fleet reports at every worker count — the
// bit-identity-by-construction claim of internal/predcache extended to
// concurrent sharing. Run under -race in CI, these tests are also the
// fleet-level race gate for the shared path.

import (
	"reflect"
	"testing"

	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/predcache"
)

// runSYNPAFleet runs the standard scenario with real SYNPA policies (the
// only policies with a prediction cache) in the given cache mode:
// "private" (per-machine caches), "shared" (one fleet-wide concurrent
// cache) or "disabled".
func runSYNPAFleet(t *testing.T, workers int, mode string) *Report {
	t.Helper()
	cfg := Config{
		Machines:  3,
		Machine:   testMachineConfig(),
		Dispatch:  DispatchLeastLoaded,
		Admission: "priority",
		Seed:      11,
		Workers:   workers,
		NewPolicy: func(int) machine.Policy {
			opt := core.PolicyOptions{}
			if mode == "disabled" {
				opt.Cache.Disabled = true
			}
			return core.MustPolicy(core.PaperCoefficients(), opt)
		},
	}
	if mode == "shared" {
		cfg.SharedCache = predcache.NewShared(predcache.Options{}, 4)
	}
	rep, err := Run(cfg, &sliceSource{jobs: testJobs(t, 48)})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// normalizeCacheReport strips the fields allowed to differ across cache
// modes and schedules: Workers echoes configuration, and PredCache's
// hit/miss split is schedule-dependent with a shared cache (racing cold
// misses) — everything else must match bit for bit.
func normalizeCacheReport(r *Report) Report {
	c := *r
	c.Workers = 0
	c.PredCache = PredCacheReport{}
	return c
}

func TestSharedCacheFleetDifferential(t *testing.T) {
	base := runSYNPAFleet(t, 1, "private")
	if base.PredCache.InvertHits+base.PredCache.InvertMisses == 0 {
		t.Fatal("private-cache run reports no cache traffic — the differential is vacuous")
	}
	if base.PredCache.Shared {
		t.Fatal("private-cache run marked Shared")
	}
	want := normalizeCacheReport(base)
	for _, workers := range []int{1, 4} {
		for _, mode := range []string{"private", "shared", "disabled"} {
			got := runSYNPAFleet(t, workers, mode)
			if mode == "shared" {
				if !got.PredCache.Shared {
					t.Fatalf("workers=%d: shared run not marked Shared", workers)
				}
				if got.PredCache.InvertHits+got.PredCache.InvertMisses == 0 {
					t.Fatalf("workers=%d: shared cache saw no traffic", workers)
				}
			}
			if norm := normalizeCacheReport(got); !reflect.DeepEqual(norm, want) {
				t.Errorf("workers=%d mode=%s: report diverged\n got %+v\nwant %+v",
					workers, mode, norm, want)
			}
		}
	}
}

// TestPredCacheReportAggregation pins the satellite claim directly: fleet
// runs surface the per-machine cache traffic (previously dropped on the
// floor) in Report.PredCache, with entry counts, in both cache modes.
func TestPredCacheReportAggregation(t *testing.T) {
	priv := runSYNPAFleet(t, 1, "private")
	pc := priv.PredCache
	if pc.InvertMisses == 0 || pc.PairMisses == 0 {
		t.Fatalf("no misses recorded: %+v", pc)
	}
	if pc.InvertEntries == 0 || pc.PairEntries == 0 {
		t.Fatalf("no resident entries recorded: %+v", pc)
	}
	// Private mode: every distinct key was missed once per machine that
	// saw it, so entries never exceed misses.
	if pc.InvertEntries > int(pc.InvertMisses) || pc.PairEntries > int(pc.PairMisses) {
		t.Fatalf("entries exceed misses: %+v", pc)
	}

	sh := runSYNPAFleet(t, 1, "shared")
	spc := sh.PredCache
	if !spc.Shared || spc.InvertEntries == 0 {
		t.Fatalf("shared aggregation broken: %+v", spc)
	}
	// One warm cache across machines cannot miss more often than three
	// cold private ones at the same decision sequence.
	if spc.InvertMisses > pc.InvertMisses || spc.PairMisses > pc.PairMisses {
		t.Fatalf("shared cache missed more than private caches: shared %+v private %+v", spc, pc)
	}
}
