package fleet

import (
	"reflect"
	"strings"
	"testing"

	"synpa/internal/admission"
	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/machine"
)

// spreadPolicy fills cores two apps at a time in live order — a cheap
// deterministic stand-in for a trained SYNPA policy.
type spreadPolicy struct{}

func (spreadPolicy) Name() string { return "spread" }
func (spreadPolicy) Place(st *machine.QuantumState) machine.Placement {
	p := make(machine.Placement, st.NumApps)
	for i := range p {
		p[i] = (i / st.ThreadsPerCore()) % st.NumCores
	}
	return p
}

func testMachineConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.QuantumCycles = 5_000
	cfg.Parallel = false
	return cfg
}

func mustApp(t *testing.T, name string) *apps.Model {
	t.Helper()
	m, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// sliceSource replays a fixed job list; the test-side stand-in for a
// streaming source.
type sliceSource struct {
	jobs []Job
	i    int
}

func (s *sliceSource) Name() string { return "slice" }
func (s *sliceSource) Err() error   { return nil }
func (s *sliceSource) Next() (Job, bool) {
	if s.i >= len(s.jobs) {
		return Job{}, false
	}
	j := s.jobs[s.i]
	s.i++
	return j, true
}

// testJobs builds n jobs in arrival order with IDs equal to their stream
// position (the layout RunDynamic reproduces for a pre-sorted work list):
// a burst at t=0 that overflows one machine's eight hardware threads, then
// a trickle with mid-quantum arrivals and an idle gap.
func testJobs(t *testing.T, n int) []Job {
	t.Helper()
	names := []string{"mcf", "leela_r", "lbm_r", "gobmk", "povray_r"}
	jobs := make([]Job, n)
	var at uint64
	for i := range jobs {
		if i >= 10 {
			at += uint64(2_300 + 1_700*(i%3)) // off-quantum offsets
		}
		if i == n-2 {
			at += 40_000 // idle gap before the stragglers
		}
		jobs[i] = Job{
			ID: i,
			App: machine.DynamicApp{
				Model:    mustApp(t, names[i%len(names)]),
				Target:   uint64(20_000 + 7_000*(i%4)),
				ArriveAt: at,
				Priority: i % 3,
				Weight:   float64(1 + i%2),
			},
			IsoCycles: float64(30_000 + 1_000*i),
			Cats:      []float64{0.4, 0.3, 0.3},
		}
	}
	return jobs
}

// TestSingleMachineMatchesRunDynamic pins the fleet's core invariant: a
// one-machine fleet is RunDynamic, bit for bit — same clocks, same
// admissions, same per-job outcomes — because dispatch degenerates to a
// queue and the runner protocol is driven through the same call sequence.
func TestSingleMachineMatchesRunDynamic(t *testing.T) {
	for _, adm := range []string{"", "priority", "sjf"} {
		t.Run("adm="+adm, func(t *testing.T) {
			jobs := testJobs(t, 16)
			work := make([]machine.DynamicApp, len(jobs))
			for i, j := range jobs {
				work[i] = j.App
			}

			m, err := machine.New(testMachineConfig())
			if err != nil {
				t.Fatal(err)
			}
			admPol := machine.DynamicOptions{Seed: 7}
			if adm != "" {
				p, err := admission.ByName(adm)
				if err != nil {
					t.Fatal(err)
				}
				admPol.Admission = p
			}
			ref, err := m.RunDynamic(work, spreadPolicy{}, admPol)
			if err != nil {
				t.Fatal(err)
			}

			got := map[int]machine.JobOutcome{}
			rep, err := Run(Config{
				Machines:  1,
				Machine:   testMachineConfig(),
				NewPolicy: func(int) machine.Policy { return spreadPolicy{} },
				Admission: adm,
				Seed:      7,
				OnJobDone: func(mi int, o machine.JobOutcome) {
					if mi != 0 {
						t.Fatalf("job %d done on machine %d in a 1-machine fleet", o.ID, mi)
					}
					got[o.ID] = o
				},
			}, &sliceSource{jobs: jobs})
			if err != nil {
				t.Fatal(err)
			}

			if rep.Cycles != ref.Cycles || rep.Slices != ref.Slices {
				t.Fatalf("clock diverged: fleet (%d cycles, %d slices) vs RunDynamic (%d, %d)",
					rep.Cycles, rep.Slices, ref.Cycles, ref.Slices)
			}
			if rep.Deferred != ref.Deferred || rep.PeakLive != ref.PeakLiveApps || rep.MeanLive != ref.MeanLiveApps {
				t.Fatalf("occupancy diverged: fleet (%d deferred, peak %d, mean %v) vs (%d, %d, %v)",
					rep.Deferred, rep.PeakLive, rep.MeanLive, ref.Deferred, ref.PeakLiveApps, ref.MeanLiveApps)
			}
			var refDone uint64
			for i, a := range ref.Apps {
				if a.FinishAt == 0 {
					if _, ok := got[i]; ok {
						t.Fatalf("job %d finished in the fleet but not in RunDynamic", i)
					}
					continue
				}
				refDone++
				o, ok := got[i]
				if !ok {
					t.Fatalf("job %d finished in RunDynamic but not in the fleet", i)
				}
				if o.FinishAt != a.FinishAt || o.AdmittedAt != a.AdmittedAt ||
					o.ResponseCycles != a.ResponseCycles || o.Retired != a.Retired || o.IPC != a.IPC {
					t.Fatalf("job %d diverged:\nfleet      %+v\nRunDynamic %+v", i, o, a)
				}
			}
			if rep.Completed != refDone {
				t.Fatalf("fleet completed %d jobs, RunDynamic %d", rep.Completed, refDone)
			}
			if rep.AllCompleted != ref.AllCompleted {
				t.Fatalf("AllCompleted = %v, RunDynamic %v", rep.AllCompleted, ref.AllCompleted)
			}
		})
	}
}

// jobDone is one OnJobDone observation.
type jobDone struct {
	mi int
	o  machine.JobOutcome
}

// runFleet runs the standard multi-machine scenario and returns the report
// and the ordered completion log.
func runFleet(t *testing.T, dispatch string, workers int, machines int) (*Report, []jobDone) {
	t.Helper()
	var log []jobDone
	rep, err := Run(Config{
		Machines:  machines,
		Machine:   testMachineConfig(),
		NewPolicy: func(int) machine.Policy { return spreadPolicy{} },
		Dispatch:  dispatch,
		Model:     core.PaperCoefficients(),
		Admission: "priority",
		Seed:      11,
		Workers:   workers,
		OnJobDone: func(mi int, o machine.JobOutcome) { log = append(log, jobDone{mi, o}) },
	}, &sliceSource{jobs: testJobs(t, 48)})
	if err != nil {
		t.Fatal(err)
	}
	return rep, log
}

// TestWorkerCountInvariance pins the sharding invariant: the report and
// the exact completion order are bit-identical at every worker count, for
// every dispatch policy.
func TestWorkerCountInvariance(t *testing.T) {
	for _, dispatch := range Dispatchers() {
		t.Run(dispatch, func(t *testing.T) {
			rep1, log1 := runFleet(t, dispatch, 1, 5)
			rep4, log4 := runFleet(t, dispatch, 4, 5)
			rep1.Workers, rep4.Workers = 0, 0
			if !reflect.DeepEqual(rep1, rep4) {
				t.Fatalf("reports diverged across worker counts:\n1: %+v\n4: %+v", rep1, rep4)
			}
			if !reflect.DeepEqual(log1, log4) {
				t.Fatalf("completion logs diverged across worker counts")
			}
			if rep1.Jobs != 48 || !rep1.AllCompleted {
				t.Fatalf("scenario did not drain: %+v", rep1)
			}
			if rep1.STP <= 0 || rep1.MeanResponseCycles <= 0 || rep1.P95ResponseCycles <= 0 {
				t.Fatalf("degenerate metrics: %+v", rep1)
			}
			if len(rep1.PerClass) != 3 {
				t.Fatalf("per-class breakdown has %d classes, want 3", len(rep1.PerClass))
			}
		})
	}
}

// TestDispatcherUnits exercises the dispatch policies directly.
func TestDispatcherUnits(t *testing.T) {
	job := func(t *testing.T) *Job {
		return &Job{App: machine.DynamicApp{Model: mustApp(t, "mcf")}, Cats: []float64{0.5, 0.3, 0.2}}
	}

	t.Run("round-robin", func(t *testing.T) {
		d, err := newDispatcher(DispatchRoundRobin, 3, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := []int{0, 1, 2, 0, 1}
		for i, w := range want {
			if got := d.pick(job(t)); got != w {
				t.Fatalf("pick %d = machine %d, want %d", i, got, w)
			}
		}
	})

	t.Run("least-loaded", func(t *testing.T) {
		d, err := newDispatcher("", 3, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d.name() != DispatchLeastLoaded {
			t.Fatalf("empty name resolved to %q", d.name())
		}
		// Fill evenly, then free machine 1 and expect it next.
		picks := []int{d.pick(job(t)), d.pick(job(t)), d.pick(job(t))}
		if !reflect.DeepEqual(picks, []int{0, 1, 2}) {
			t.Fatalf("initial picks %v, want [0 1 2]", picks)
		}
		d.done(1, "mcf")
		if got := d.pick(job(t)); got != 1 {
			t.Fatalf("after done(1) pick = %d, want 1", got)
		}
	})

	t.Run("interference", func(t *testing.T) {
		d, err := newDispatcher(DispatchInterference, 3, 2, core.PaperCoefficients())
		if err != nil {
			t.Fatal(err)
		}
		// Identical jobs: empty machines win first, then equal scores tie
		// to the least-loaded lowest index; once all three machines hold
		// two jobs (capacity), the fallback queues on least-loaded.
		want := []int{0, 1, 2, 0, 1, 2, 0}
		for i, w := range want {
			if got := d.pick(job(t)); got != w {
				t.Fatalf("pick %d = machine %d, want %d", i, got, w)
			}
		}
		// Releases rebalance: machine 2 frees a slot and wins the next pick
		// over the fuller machines.
		d.done(2, "mcf")
		d.done(2, "mcf")
		if got := d.pick(job(t)); got != 2 {
			t.Fatalf("pick after releases = %d, want 2", got)
		}
	})

	t.Run("interference-needs-model", func(t *testing.T) {
		if _, err := newDispatcher(DispatchInterference, 3, 8, nil); err == nil {
			t.Fatal("interference dispatcher accepted a nil model")
		}
	})
}

// TestUnknownNames pins the CLI-grade validation: unknown dispatch and
// admission names fail fast, listing the valid names.
func TestUnknownNames(t *testing.T) {
	src := &sliceSource{jobs: testJobs(t, 2)}
	base := Config{
		Machines:  2,
		Machine:   testMachineConfig(),
		NewPolicy: func(int) machine.Policy { return spreadPolicy{} },
	}

	cfg := base
	cfg.Dispatch = "bogus"
	_, err := Run(cfg, src)
	if err == nil || !strings.Contains(err.Error(), DispatchLeastLoaded) {
		t.Fatalf("bogus dispatch error %v does not list valid names", err)
	}

	cfg = base
	cfg.Admission = "bogus"
	_, err = Run(cfg, src)
	if err == nil || !strings.Contains(err.Error(), "fifo") {
		t.Fatalf("bogus admission error %v does not list valid names", err)
	}

	if err := CheckDispatch("bogus"); err == nil {
		t.Fatal("CheckDispatch accepted an unknown name")
	}
	for _, name := range append(Dispatchers(), "") {
		if err := CheckDispatch(name); err != nil {
			t.Fatalf("CheckDispatch(%q) = %v", name, err)
		}
	}
}

// TestTruncation pins the horizon cutoff: arrivals at or beyond MaxCycles
// are never dispatched and the report says so.
func TestTruncation(t *testing.T) {
	jobs := testJobs(t, 16)
	horizon := jobs[12].App.ArriveAt // strictly between arrivals 11 and 12
	rep, err := Run(Config{
		Machines:  2,
		Machine:   testMachineConfig(),
		NewPolicy: func(int) machine.Policy { return spreadPolicy{} },
		Seed:      3,
		MaxCycles: horizon,
	}, &sliceSource{jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.AllCompleted {
		t.Fatalf("horizon %d: Truncated=%v AllCompleted=%v", horizon, rep.Truncated, rep.AllCompleted)
	}
	if rep.Jobs != 12 {
		t.Fatalf("dispatched %d jobs, want 12 (the pre-horizon arrivals)", rep.Jobs)
	}
	if rep.Cycles > horizon {
		t.Fatalf("clock %d ran past the horizon %d", rep.Cycles, horizon)
	}
}

// TestRoundRobinBalance sanity-checks the imbalance accounting: cyclic
// dispatch of 48 jobs over 4 machines is perfectly even.
func TestRoundRobinBalance(t *testing.T) {
	rep, _ := runFleet(t, DispatchRoundRobin, 1, 4)
	if rep.MinMachineJobs != 12 || rep.MaxMachineJobs != 12 || rep.Imbalance != 1 {
		t.Fatalf("round-robin spread min=%d max=%d imbalance=%v, want 12/12/1",
			rep.MinMachineJobs, rep.MaxMachineJobs, rep.Imbalance)
	}
}

// TestRunValidation pins the config errors.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Machines: 1}, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	src := &sliceSource{}
	if _, err := Run(Config{Machines: 0, NewPolicy: func(int) machine.Policy { return spreadPolicy{} }}, src); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := Run(Config{Machines: 1, Machine: testMachineConfig()}, src); err == nil {
		t.Fatal("nil policy factory accepted")
	}
}
