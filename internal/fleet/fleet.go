// Package fleet simulates a cluster of SYNPA machines under one global
// event clock: a two-level scheduler whose first level dispatches each
// arriving job to a machine (dispatch.go) and whose second level is the
// per-machine SYNPA thread placement, driven through the step-wise
// machine.DynRunner protocol.
//
// Scaling rests on three properties:
//
//   - Sharded simulation. The only expensive step, executing a planned
//     slice on a machine's cores, touches exclusively that machine's
//     state, so the machines due at an event time step in parallel across
//     a worker pool (the PR-4 core pool generalised from cores to
//     machines). Everything else — dispatch, admission, planning, metric
//     merges — is coordinator-serial in a fixed order, which is what makes
//     results bit-identical at every worker count.
//
//   - Event-clock synchronisation. Machines run slices lazily: a slice is
//     planned, possibly cut short when a job is dispatched mid-plan, and
//     only then executed. A binary heap of (plan end, machine) events
//     interleaves hundreds of machine clocks without ever simulating an
//     idle one.
//
//   - Streaming aggregation. Job outcomes fold into mergeable quantile
//     sketches and running moments (internal/stats) the moment they
//     depart; jobs come from a Source that generates arrivals lazily.
//     Memory is O(machines + classes + in-flight jobs), independent of
//     trace length — a million-job run retains no per-job state.
package fleet

import (
	"fmt"
	"sort"

	"synpa/internal/admission"
	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/obs"
	"synpa/internal/perfstat"
	"synpa/internal/pool"
	"synpa/internal/predcache"
	"synpa/internal/stats"
)

// Config describes a fleet run.
type Config struct {
	// Machines is the cluster size.
	Machines int
	// Machine configures every machine identically. Parallel/Workers are
	// ignored: fleet machines step serially within themselves, and the
	// fleet shards across machines instead (Workers below).
	Machine machine.Config
	// NewPolicy builds machine i's placement policy. Policies hold
	// per-machine state, so each machine needs its own instance.
	NewPolicy func(i int) machine.Policy
	// Dispatch names the cluster-level dispatch policy (Dispatchers());
	// empty selects least-loaded.
	Dispatch string
	// Model is the trained interference model the interference dispatcher
	// scores machines with; other dispatchers ignore it.
	Model *core.Model
	// Admission names the per-machine admission discipline
	// (admission.Names()); empty selects FIFO.
	Admission string
	// Seed derives every job's private random stream (keyed by global job
	// ID, so dispatch decisions do not perturb job behaviour).
	Seed uint64
	// MaxCycles bounds the run; zero means machine.DefaultMaxQuanta
	// quanta. Jobs arriving at or after the bound are never dispatched
	// and the report is marked Truncated.
	MaxCycles uint64
	// Workers bounds the goroutines that shard due machines at an event
	// time. Zero selects GOMAXPROCS; one serialises. SYNPA_WORKERS
	// overrides. Results are bit-identical at every worker count.
	Workers int
	// SketchAlpha is the quantile sketches' relative accuracy; zero
	// selects the stats package default.
	SketchAlpha float64
	// SharedCache, when non-nil, is a concurrent interference-prediction
	// memo (predcache.Shared) installed into every policy that supports
	// it (core.Policy via SetSharedCache): the whole fleet shares one
	// warm cache instead of every machine warming its own cold copy.
	// Sharing is bit-identical by construction — a hit implies
	// bit-identical inputs to a pure function — so reports cannot depend
	// on it; only the hit/miss split in Report.PredCache becomes
	// schedule-dependent.
	SharedCache *predcache.Shared
	// OnJobDone, when set, observes every completed job in the exact
	// deterministic completion order (machine index ascending within an
	// event time). For tests and custom aggregation.
	OnJobDone func(machineIdx int, o machine.JobOutcome)
	// Obs, when non-nil, receives the run's event trace and metrics. Each
	// machine emits into its own shard, drained at the event-time barriers
	// in ascending machine order (the parallel-merge invariant), and
	// dispatch decisions are traced directly from the coordinator.
	Obs *obs.Observer
}

// ClassReport is one priority class's fleet metrics.
type ClassReport struct {
	// Priority is the class; higher is more urgent.
	Priority int
	// Weight is the mean class weight over the class's dispatched jobs.
	Weight float64
	// Jobs counts the class's dispatched jobs; Completed those finished.
	Jobs, Completed uint64
	// MeanResponseCycles, P95ResponseCycles and ANTT summarise the
	// class's completed-job response times (P95 from the class sketch).
	MeanResponseCycles float64
	P95ResponseCycles  float64
	ANTT               float64
}

// Report is the outcome of a fleet run. All distribution metrics come
// from streaming sketches and moments, never retained samples.
type Report struct {
	// Source, Policy, Admission and Dispatch identify the run.
	Source    string
	Policy    string
	Admission string
	Dispatch  string
	// Machines and Workers echo the configuration (Workers after the
	// environment override).
	Machines int
	Workers  int
	// Jobs counts dispatched arrivals; Completed those that finished;
	// Unfinished those still live or queued at the end.
	Jobs       uint64
	Completed  uint64
	Unfinished uint64
	// Truncated reports that the source still had arrivals at or beyond
	// MaxCycles; AllCompleted that every dispatched job finished and
	// nothing was truncated.
	Truncated    bool
	AllCompleted bool
	// Cycles is the latest machine clock; Slices the total policy
	// invocations across the fleet.
	Cycles uint64
	Slices int
	// Deferred counts jobs that had to queue for a hardware thread.
	Deferred int
	// PeakLive is the largest single-machine live-job count; MeanLive the
	// time-averaged fleet-wide live-job count.
	PeakLive int
	MeanLive float64
	// MeanResponseCycles and P95ResponseCycles summarise the completed
	// jobs' response-time distribution (P95 from the global sketch).
	MeanResponseCycles float64
	P95ResponseCycles  float64
	// ANTT, STP and WeightedSTP are the paper's open-system metrics over
	// completed jobs, fleet-wide.
	ANTT        float64
	STP         float64
	WeightedSTP float64
	// MinMachineJobs, MaxMachineJobs and Imbalance (max over mean)
	// describe how evenly dispatch spread the jobs.
	MinMachineJobs uint64
	MaxMachineJobs uint64
	Imbalance      float64
	// PerClass breaks response metrics out by priority class, most urgent
	// first; empty when every job is class 0 with default weight.
	PerClass []ClassReport
	// PredCache aggregates the fleet's interference-prediction memo
	// traffic (zero when no policy exposes cache stats). With private
	// per-machine caches the counts are deterministic; with a shared
	// cache (Shared true) the hit/miss split is schedule-dependent even
	// though every other report field stays bit-identical — differential
	// tests zero this field before comparing.
	PredCache PredCacheReport
}

// PredCacheReport is the fleet-wide predcache accounting.
type PredCacheReport struct {
	// Shared reports whether one concurrent cache served the whole fleet.
	Shared bool
	// Invert*/Pair* sum the hit/miss counters of the inversion and
	// pair-degradation memos across the fleet.
	InvertHits, InvertMisses uint64
	PairHits, PairMisses     uint64
	// *Entries count resident entries at run end.
	InvertEntries, PairEntries int
}

// planEvent is a machine's planned slice end on the global event heap.
// Events are invalidated lazily: one is live only while its machine still
// holds the same plan generation.
type planEvent struct {
	t   uint64
	idx int
	gen uint64
}

// eventHeap is a binary min-heap ordered by (t, idx) — machine index
// breaks time ties so the due batch pops in ascending machine order.
type eventHeap []planEvent

func (h eventHeap) less(a, b int) bool {
	return h[a].t < h[b].t || (h[a].t == h[b].t && h[a].idx < h[b].idx)
}

func (h *eventHeap) push(e planEvent) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *eventHeap) pop() planEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && (*h).less(l, m) {
			m = l
		}
		if r < n && (*h).less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// classAgg accumulates one priority class's streaming metrics.
type classAgg struct {
	prio      int
	weight    float64 // mean over dispatched jobs, incremental
	jobs      uint64
	completed uint64
	respSum   float64
	anttSum   float64
	sketch    *stats.Sketch
}

// aggregate is the fleet's O(classes) streaming metric state.
type aggregate struct {
	alpha    float64
	resp     *stats.Sketch
	respMom  stats.Moments
	anttMom  stats.Moments
	isoDone  float64
	wIsoDone float64
	wSum     float64
	classes  map[int]*classAgg
	uniform  bool
	// inFlight maps dispatched-but-unfinished job IDs to their isolated
	// cycles — the only per-job state, bounded by the in-flight count.
	inFlight map[int]float64
}

func (a *aggregate) class(prio int) *classAgg {
	cs := a.classes[prio]
	if cs == nil {
		cs = &classAgg{prio: prio, sketch: stats.NewSketch(a.alpha)}
		a.classes[prio] = cs
	}
	return cs
}

// noteDispatch records a job entering the system.
func (a *aggregate) noteDispatch(j *Job) {
	if j.App.Priority != 0 || (j.App.Weight != 0 && j.App.Weight != 1) {
		a.uniform = false
	}
	w := j.App.Weight
	if w == 0 {
		w = 1
	}
	cs := a.class(j.App.Priority)
	cs.weight += (w - cs.weight) / float64(cs.jobs+1)
	cs.jobs++
	a.inFlight[j.ID] = j.IsoCycles
}

// noteDone folds one completed job into the streams.
func (a *aggregate) noteDone(o *machine.JobOutcome) {
	iso := a.inFlight[o.ID]
	delete(a.inFlight, o.ID)
	if o.ResponseCycles == 0 {
		return
	}
	resp := float64(o.ResponseCycles)
	norm := resp / iso
	a.resp.Add(resp)
	a.respMom.Add(resp)
	a.anttMom.Add(norm)
	a.isoDone += iso
	w := o.Weight
	if w == 0 {
		w = 1
	}
	a.wIsoDone += w * iso
	a.wSum += w
	cs := a.class(o.Priority)
	cs.completed++
	cs.respSum += resp
	cs.anttSum += norm
	cs.sketch.Add(resp)
}

// Run simulates the fleet until the source drains and every dispatched
// job finishes, or MaxCycles. See the package comment for the scaling
// model; dispatch order, admission, placement and every metric are
// bit-identical at any worker count.
func Run(cfg Config, src Source) (*Report, error) {
	if src == nil {
		return nil, fmt.Errorf("fleet: nil source")
	}
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("fleet: %d machines; need at least one", cfg.Machines)
	}
	if cfg.NewPolicy == nil {
		return nil, fmt.Errorf("fleet: nil policy factory")
	}
	mcfg := cfg.Machine
	mcfg.Parallel = false
	mcfg.Workers = 1
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = uint64(machine.DefaultMaxQuanta) * mcfg.QuantumCycles
	}

	// Build the machines and their runners.
	runners := make([]*machine.DynRunner, cfg.Machines)
	policies := make([]machine.Policy, cfg.Machines)
	var policyName string
	for i := range runners {
		m, err := machine.New(mcfg)
		if err != nil {
			return nil, err
		}
		p := cfg.NewPolicy(i)
		if p == nil {
			return nil, fmt.Errorf("fleet: policy factory returned nil for machine %d", i)
		}
		if cfg.SharedCache != nil {
			// Install the fleet-wide cache before the policy serves its
			// first decision (the setter rewires cache handles only).
			if sc, ok := p.(interface {
				SetSharedCache(*predcache.Shared)
			}); ok {
				sc.SetSharedCache(cfg.SharedCache)
			}
		}
		policies[i] = p
		if i == 0 {
			policyName = p.Name()
		}
		adm, err := admission.ByName(cfg.Admission)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		runners[i], err = machine.NewDynRunner(m, p, machine.DynRunnerOptions{Seed: cfg.Seed, Admission: adm, Obs: cfg.Obs.Machine(i)})
		if err != nil {
			return nil, err
		}
	}
	var tr *obs.Trace
	if cfg.Obs != nil {
		tr = cfg.Obs.Trace
	}
	orc := cfg.Obs.Counters()
	hwThreads := runners[0].Free()
	disp, err := newDispatcher(cfg.Dispatch, cfg.Machines, hwThreads, cfg.Model)
	if err != nil {
		return nil, err
	}

	workers := machine.WorkersFromEnv(cfg.Workers, cfg.Machines, true)
	sp := pool.NewShardPool(workers)
	defer sp.Close()

	agg := &aggregate{
		alpha:    cfg.SketchAlpha,
		resp:     stats.NewSketch(cfg.SketchAlpha),
		classes:  map[int]*classAgg{},
		uniform:  true,
		inFlight: map[int]float64{},
	}
	rep := &Report{
		Source:    src.Name(),
		Policy:    policyName,
		Admission: runners[0].AdmissionName(),
		Dispatch:  disp.name(),
		Machines:  cfg.Machines,
		Workers:   workers,
	}

	var (
		h       eventHeap
		gens    = make([]uint64, cfg.Machines)
		marked  = make([]bool, cfg.Machines)
		due     []int
		outs    []machine.JobOutcome
		perMach = make([]uint64, cfg.Machines) // dispatched per machine
		lastArr uint64
	)
	valid := func(e planEvent) bool {
		return runners[e.idx].Planned() && gens[e.idx] == e.gen
	}
	// pull reads the next dispatchable job, applying the horizon cutoff
	// (sources are time-ordered, so one late arrival ends the stream).
	pull := func() (*Job, error) {
		j, ok := src.Next()
		if !ok {
			return nil, src.Err()
		}
		if j.App.Model == nil || j.App.Target == 0 {
			return nil, fmt.Errorf("fleet: source %q job %d has no model or no work", src.Name(), j.ID)
		}
		if j.App.ArriveAt < lastArr {
			return nil, fmt.Errorf("fleet: source %q job %d arrives at %d after cycle %d; sources must be time-ordered",
				src.Name(), j.ID, j.App.ArriveAt, lastArr)
		}
		lastArr = j.App.ArriveAt
		if j.App.ArriveAt >= maxCycles {
			rep.Truncated = true
			return nil, nil
		}
		return &j, nil
	}
	finish := func(mi int, outs []machine.JobOutcome) {
		for i := range outs {
			o := &outs[i]
			rep.Completed++
			agg.noteDone(o)
			disp.done(mi, o.Name)
			if cfg.OnJobDone != nil {
				cfg.OnJobDone(mi, *o)
			}
		}
	}

	pending, err := pull()
	if err != nil {
		return nil, err
	}
	for {
		// The next event time: the earliest live plan end or the pending
		// arrival, whichever is sooner (plan ends win ties so departures
		// free threads before dispatch sees the loads).
		t0 := perfstat.PhaseClock()
		for len(h) > 0 && !valid(h[0]) {
			h.pop()
		}
		haveE := len(h) > 0
		if !haveE && pending == nil {
			perfstat.PhaseAdd(perfstat.PhaseDispatch, t0)
			break
		}
		var T uint64
		switch {
		case haveE && (pending == nil || h[0].t <= pending.App.ArriveAt):
			T = h[0].t
		default:
			T = pending.App.ArriveAt
		}

		// 1) Machines whose slices end at T: step them in parallel (the
		// heap's (t, idx) order pops them ascending), then finish
		// serially in that same order.
		due = due[:0]
		for len(h) > 0 {
			if !valid(h[0]) {
				h.pop()
				continue
			}
			if h[0].t != T {
				break
			}
			due = append(due, h.pop().idx)
		}
		perfstat.PhaseAdd(perfstat.PhaseDispatch, t0)
		if len(due) > 0 {
			d := due
			sp.Run(len(d), func(i int) { runners[d[i]].StepPlanned() })
			t0 = perfstat.PhaseClock()
			for _, mi := range d {
				outs = runners[mi].FinishSlice(outs[:0])
				finish(mi, outs)
				marked[mi] = true
			}
			perfstat.PhaseAdd(perfstat.PhaseDispatch, t0)
		}

		// 2) Arrivals at T, dispatched in stream order. A machine planned
		// across T with a free thread is cut at T and its short slice
		// executed immediately, so admission sees the newcomer
		// off-quantum — exactly RunDynamic's arrival cut. A full or
		// just-finished machine simply queues the job.
		t0 = perfstat.PhaseClock()
		for pending != nil && pending.App.ArriveAt == T {
			j := pending
			// Candidate scores are read before pick commits the job (pick
			// mutates load state); trace-only, and only at fleet sizes
			// where an O(machines) vector per event stays proportionate.
			var scores []float64
			if tr != nil && cfg.Machines <= scoredMachinesMax {
				if sc, ok := disp.(scorer); ok {
					scores = sc.scores(j, nil)
				}
			}
			mi := disp.pick(j)
			orc.Dispatched.Add(1)
			if tr != nil {
				load := int64(-1)
				if lr, ok := disp.(loadReporter); ok {
					load = int64(lr.load(mi))
				}
				tr.Emit(obs.Event{T: T, Op: obs.OpDispatch, Machine: int32(mi), Core: -1, App: int64(j.ID), A: load, Vals: scores})
			}
			r := runners[mi]
			if r.Planned() && r.Free() > 0 && T > r.Now() && T < r.PlanEnd() {
				perfstat.PhaseAdd(perfstat.PhaseDispatch, t0)
				r.Cut(T)
				r.StepPlanned()
				outs = r.FinishSlice(outs[:0])
				t0 = perfstat.PhaseClock()
				finish(mi, outs)
			} else if !r.Planned() && r.Live() == 0 && r.Now() < T {
				r.SkipTo(T)
			}
			r.Arrive(j.App, j.ID)
			marked[mi] = true
			perMach[mi]++
			rep.Jobs++
			agg.noteDispatch(j)
			perfstat.PhaseAdd(perfstat.PhaseDispatch, t0)
			if pending, err = pull(); err != nil {
				return nil, err
			}
			t0 = perfstat.PhaseClock()
		}
		perfstat.PhaseAdd(perfstat.PhaseDispatch, t0)

		// 3) Replan every touched machine, ascending index. A machine at
		// the horizon stays unplanned (mirroring RunDynamic's run bound);
		// one left with only future-dated queued jobs waits for their
		// arrival event instead.
		for mi := range marked {
			if !marked[mi] {
				continue
			}
			marked[mi] = false
			r := runners[mi]
			if r.Planned() || !r.Busy() || r.Now() >= maxCycles {
				continue
			}
			if err := r.BeginSlice(maxCycles); err != nil {
				return nil, err
			}
			if r.Planned() {
				gens[mi]++
				h.push(planEvent{t: r.PlanEnd(), idx: mi, gen: gens[mi]})
			}
		}

		// Event-time barrier: drain every machine's trace shard in
		// ascending machine order — the merge that keeps the global stream
		// in (t, machine, core) order at any worker count.
		if tr != nil {
			for _, r := range runners {
				r.FlushObs()
			}
		}
	}

	if tr != nil {
		for _, r := range runners {
			r.FlushObs()
		}
	}

	// Final accounting: clocks, occupancy, stragglers.
	var occupied float64
	for _, r := range runners {
		if r.Now() > rep.Cycles {
			rep.Cycles = r.Now()
		}
		rep.Slices += r.Slices()
		rep.Deferred += r.DeferredAdmits()
		if r.PeakLive() > rep.PeakLive {
			rep.PeakLive = r.PeakLive()
		}
		occupied += r.Occupied()
		for _, o := range r.Unfinished(nil) {
			rep.Unfinished++
			delete(agg.inFlight, o.ID)
			if !o.Admitted && o.ArriveAt < r.Now() {
				rep.Deferred++
			}
		}
	}
	if rep.Cycles > 0 {
		rep.MeanLive = occupied / float64(rep.Cycles)
		rep.STP = agg.isoDone / float64(rep.Cycles)
		if meanW := agg.wSum / float64(max(rep.Completed, 1)); meanW > 0 {
			rep.WeightedSTP = agg.wIsoDone / meanW / float64(rep.Cycles)
		}
	}
	rep.AllCompleted = !rep.Truncated && rep.Unfinished == 0 && rep.Completed == rep.Jobs
	if n := agg.respMom.Count(); n > 0 {
		rep.MeanResponseCycles = agg.respMom.Mean()
		rep.ANTT = agg.anttMom.Mean()
		rep.P95ResponseCycles = agg.resp.Quantile(0.95)
	}
	if rep.Jobs > 0 {
		rep.MinMachineJobs, rep.MaxMachineJobs = perMach[0], perMach[0]
		for _, n := range perMach[1:] {
			if n < rep.MinMachineJobs {
				rep.MinMachineJobs = n
			}
			if n > rep.MaxMachineJobs {
				rep.MaxMachineJobs = n
			}
		}
		rep.Imbalance = float64(rep.MaxMachineJobs) * float64(cfg.Machines) / float64(rep.Jobs)
	}
	// Predcache accounting: the shared cache's global totals when one
	// serves the fleet, else the per-machine sums (deterministic there —
	// every machine's decision sequence is schedule-independent).
	if cfg.SharedCache != nil {
		rep.PredCache.Shared = true
		inv, pair := cfg.SharedCache.Stats()
		rep.PredCache.InvertHits, rep.PredCache.InvertMisses = inv.Hits, inv.Misses
		rep.PredCache.PairHits, rep.PredCache.PairMisses = pair.Hits, pair.Misses
		rep.PredCache.InvertEntries, rep.PredCache.PairEntries = cfg.SharedCache.Entries()
	} else {
		for _, p := range policies {
			if cs, ok := p.(interface {
				CacheStats() (invert, pair predcache.Stats)
			}); ok {
				inv, pair := cs.CacheStats()
				rep.PredCache.InvertHits += inv.Hits
				rep.PredCache.InvertMisses += inv.Misses
				rep.PredCache.PairHits += pair.Hits
				rep.PredCache.PairMisses += pair.Misses
			}
			if ce, ok := p.(interface {
				CacheEntries() (invert, pair int)
			}); ok {
				ei, ep := ce.CacheEntries()
				rep.PredCache.InvertEntries += ei
				rep.PredCache.PairEntries += ep
			}
		}
	}
	// Mirror the totals into the metrics registry, but only when there was
	// traffic: runs whose policies expose no cache stats must leave the
	// snapshot untouched (the worker-count-invariance pin compares
	// snapshots byte for byte).
	if cfg.Obs != nil && cfg.Obs.Reg != nil {
		pc := &rep.PredCache
		if pc.InvertHits+pc.InvertMisses+pc.PairHits+pc.PairMisses > 0 {
			reg := cfg.Obs.Reg
			reg.Counter("fleet.predcache.invert.hits").Add(int64(pc.InvertHits))
			reg.Counter("fleet.predcache.invert.misses").Add(int64(pc.InvertMisses))
			reg.Counter("fleet.predcache.pair.hits").Add(int64(pc.PairHits))
			reg.Counter("fleet.predcache.pair.misses").Add(int64(pc.PairMisses))
			reg.Gauge("fleet.predcache.invert.entries").Set(int64(pc.InvertEntries))
			reg.Gauge("fleet.predcache.pair.entries").Set(int64(pc.PairEntries))
		}
	}

	if !agg.uniform {
		// Sorted-key iteration (most urgent class first): PerClass must
		// never observe map order — the maporder lint invariant for
		// report-feeding loops.
		prios := make([]int, 0, len(agg.classes))
		for prio := range agg.classes {
			prios = append(prios, prio)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(prios)))
		for _, prio := range prios {
			cs := agg.classes[prio]
			cr := ClassReport{
				Priority:  cs.prio,
				Weight:    cs.weight,
				Jobs:      cs.jobs,
				Completed: cs.completed,
			}
			if cs.completed > 0 {
				cr.MeanResponseCycles = cs.respSum / float64(cs.completed)
				cr.ANTT = cs.anttSum / float64(cs.completed)
				cr.P95ResponseCycles = cs.sketch.Quantile(0.95)
			}
			rep.PerClass = append(rep.PerClass, cr)
		}
	}
	return rep, nil
}
