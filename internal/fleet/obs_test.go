package fleet

import (
	"bytes"
	"testing"

	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/obs"
)

// runObservedFleet runs the standard multi-machine scenario with a fresh
// observer and returns the report plus the serialised trace and metrics.
func runObservedFleet(t *testing.T, dispatch string, workers int) (*Report, []byte, []byte) {
	t.Helper()
	o := obs.NewObserver(0)
	rep, err := Run(Config{
		Machines:  5,
		Machine:   testMachineConfig(),
		NewPolicy: func(int) machine.Policy { return spreadPolicy{} },
		Dispatch:  dispatch,
		Model:     core.PaperCoefficients(),
		Admission: "priority",
		Seed:      11,
		Workers:   workers,
		Obs:       o,
	}, &sliceSource{jobs: testJobs(t, 48)})
	if err != nil {
		t.Fatal(err)
	}
	var trace, metrics bytes.Buffer
	if err := obs.WriteJSONL(&trace, o.Trace); err != nil {
		t.Fatal(err)
	}
	if err := o.Reg.Snapshot().WriteJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	return rep, trace.Bytes(), metrics.Bytes()
}

// TestObsWorkerCountInvariance extends the sharding invariant to the
// observability layer: the full event trace and the metrics snapshot are
// byte-identical at every worker count, for every dispatch policy. Run
// under -race this also proves the barrier-drain discipline: shard buffers
// are only touched from coordinator-serial code.
func TestObsWorkerCountInvariance(t *testing.T) {
	for _, dispatch := range Dispatchers() {
		t.Run(dispatch, func(t *testing.T) {
			_, trace1, metrics1 := runObservedFleet(t, dispatch, 1)
			_, trace4, metrics4 := runObservedFleet(t, dispatch, 4)
			if !bytes.Equal(trace1, trace4) {
				t.Fatalf("trace bytes diverged across worker counts (%d vs %d bytes)",
					len(trace1), len(trace4))
			}
			if !bytes.Equal(metrics1, metrics4) {
				t.Fatalf("metrics bytes diverged across worker counts:\n%s\nvs\n%s",
					metrics1, metrics4)
			}
		})
	}
}

// TestObsCountersMatchReport cross-checks the registry against the fleet's
// own accounting: the counters are a second, independent tally of the same
// run and must agree with the report exactly.
func TestObsCountersMatchReport(t *testing.T) {
	rep, trace, metrics := runObservedFleet(t, DispatchLeastLoaded, 1)
	if len(trace) == 0 || len(metrics) == 0 {
		t.Fatal("observed run produced no trace or metrics output")
	}

	o := obs.NewObserver(0)
	rep2, err := Run(Config{
		Machines:  5,
		Machine:   testMachineConfig(),
		NewPolicy: func(int) machine.Policy { return spreadPolicy{} },
		Dispatch:  DispatchLeastLoaded,
		Model:     core.PaperCoefficients(),
		Admission: "priority",
		Seed:      11,
		Workers:   1,
		Obs:       o,
	}, &sliceSource{jobs: testJobs(t, 48)})
	if err != nil {
		t.Fatal(err)
	}
	s := o.Reg.Snapshot()
	if got := s.Counters["fleet.dispatched"]; got != int64(rep2.Jobs) {
		t.Fatalf("fleet.dispatched = %d, report says %d jobs", got, rep2.Jobs)
	}
	if got := s.Counters["jobs.completed"]; got != int64(rep2.Completed) {
		t.Fatalf("jobs.completed = %d, report says %d", got, rep2.Completed)
	}
	if got := s.Counters["jobs.deferred"]; got != int64(rep2.Deferred) {
		t.Fatalf("jobs.deferred = %d, report says %d", got, rep2.Deferred)
	}
	if got := s.Histograms["jobs.response_cycles"].Count; got != rep2.Completed {
		t.Fatalf("response histogram count = %d, report says %d completed", got, rep2.Completed)
	}
	if s.Counters["machine.slices"] <= 0 || s.Counters["policy.place_calls"] <= 0 {
		t.Fatalf("lifecycle counters empty: %v", s.Counters)
	}
	if rep.Jobs != rep2.Jobs {
		t.Fatalf("scenario drifted between runs: %d vs %d jobs", rep.Jobs, rep2.Jobs)
	}
}

// TestObsDisabledIdentical pins the zero-cost claim's correctness half: a
// run with a nil observer produces a bit-identical report to an observed
// run — observation never perturbs the simulation.
func TestObsDisabledIdentical(t *testing.T) {
	repObs, _, _ := runObservedFleet(t, DispatchInterference, 1)
	repOff, _ := runFleet(t, DispatchInterference, 1, 5)
	// runFleet registers an OnJobDone callback; the report fields are what
	// must match.
	if repObs.Cycles != repOff.Cycles || repObs.Slices != repOff.Slices ||
		repObs.Completed != repOff.Completed || repObs.MeanResponseCycles != repOff.MeanResponseCycles ||
		repObs.P95ResponseCycles != repOff.P95ResponseCycles || repObs.STP != repOff.STP {
		t.Fatalf("observation perturbed the run:\nwith obs %+v\nwithout  %+v", repObs, repOff)
	}
}
