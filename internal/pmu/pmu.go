// Package pmu emulates the ARMv8.1 Performance Monitoring Unit events that
// SYNPA consumes (paper Table I), on a per-hardware-thread basis.
//
// The paper's approach hinges on a property of the ARM PMU that this package
// reproduces faithfully: the dispatch-stall counters STALL_FRONTEND and
// STALL_BACKEND only tick on cycles where *no* µop is dispatched. A cycle in
// which a single µop is dispatched on a 4-wide machine wastes three dispatch
// slots, yet no stall counter moves — this horizontal waste is invisible and
// must be *revealed* arithmetically (paper §III-B Step 2) from INST_SPEC and
// the dispatch width. The simulator in internal/smtcore increments these
// counters with exactly those semantics.
//
// Beyond the four architectural events of Table I, the bank also exposes the
// fine-grained stall-cause events (ROB full, IQ full, load/store queue full,
// dispatch-slot contention, …) that the authors used for their discarded
// ten-category preliminary model (§VI-A). On real hardware those are
// micro-architectural events; here they come from the simulator's exact
// blocked-cycle attribution.
package pmu

import "fmt"

// Event identifies one hardware performance event.
type Event uint8

// The architectural events of paper Table I, followed by the fine-grained
// stall-cause events used by the ten-category ablation.
const (
	// CPUCycles counts processor cycles while the thread context is active.
	CPUCycles Event = iota
	// InstSpec counts operations speculatively executed (dispatched), the
	// ARM INST_SPEC event. It includes wrong-path µops: the paper
	// deliberately makes no distinction between committed and cancelled
	// instructions at the dispatch stage (§III-B Step 3, last paragraph).
	InstSpec
	// StallFrontend counts cycles with no operation dispatched because the
	// dispatch queue was empty (instruction supply starved).
	StallFrontend
	// StallBackend counts cycles with no operation dispatched because a
	// backend resource was unavailable.
	StallBackend

	// Fine-grained frontend decomposition.
	StallFEICache // frontend stall due to an instruction-cache miss
	StallFEBranch // frontend stall due to a branch misprediction squash

	// Fine-grained backend decomposition (the paper split backend stalls
	// into seven component categories for its preliminary model).
	StallBEMemLat // blocked while own long-latency load is outstanding
	StallBEROB    // blocked: shared reorder buffer full
	StallBEIQ     // blocked: issue queue full
	StallBELDQ    // blocked: load queue full
	StallBESTQ    // blocked: store queue full
	StallBESlots  // blocked: co-runner consumed all dispatch slots
	StallBEOther  // blocked: any other backend condition

	// InstRetired counts architecturally committed instructions. The
	// training methodology (§IV-C) uses committed-instruction counts to
	// align quanta between ST and SMT executions.
	InstRetired

	// NumEvents is the size of a counter bank.
	NumEvents
)

var eventNames = [NumEvents]string{
	"CPU_CYCLES",
	"INST_SPEC",
	"STALL_FRONTEND",
	"STALL_BACKEND",
	"STALL_FE_ICACHE",
	"STALL_FE_BRANCH",
	"STALL_BE_MEMLAT",
	"STALL_BE_ROB",
	"STALL_BE_IQ",
	"STALL_BE_LDQ",
	"STALL_BE_STQ",
	"STALL_BE_SLOTS",
	"STALL_BE_OTHER",
	"INST_RETIRED",
}

// String returns the ARM-style event mnemonic.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("EVENT(%d)", uint8(e))
}

// TableIEvents lists the four events of paper Table I — everything SYNPA
// itself needs.
var TableIEvents = []Event{CPUCycles, InstSpec, StallFrontend, StallBackend}

// FineBackendEvents lists the component backend-stall events.
var FineBackendEvents = []Event{
	StallBEMemLat, StallBEROB, StallBEIQ, StallBELDQ, StallBESTQ,
	StallBESlots, StallBEOther,
}

// Counters is an immutable snapshot of a counter bank.
type Counters [NumEvents]uint64

// Get returns the value of event e.
func (c Counters) Get(e Event) uint64 { return c[e] }

// Delta returns c − prev per event. Counters are monotonic within a
// measurement session; Delta of two ordered snapshots is the interval count.
func (c Counters) Delta(prev Counters) Counters {
	var d Counters
	for i := range c {
		d[i] = c[i] - prev[i]
	}
	return d
}

// Add returns the event-wise sum of two snapshots.
func (c Counters) Add(other Counters) Counters {
	var s Counters
	for i := range c {
		s[i] = c[i] + other[i]
	}
	return s
}

// IPC returns retired instructions per cycle, or 0 when no cycles elapsed.
func (c Counters) IPC() float64 {
	if c[CPUCycles] == 0 {
		return 0
	}
	return float64(c[InstRetired]) / float64(c[CPUCycles])
}

// Bank is one hardware thread's set of performance counters. It mimics the
// perf_event workflow: counters accumulate only while enabled, can be read
// at any time, and reset on demand. The zero value is a disabled bank.
type Bank struct {
	counts  Counters
	enabled bool
}

// Enable starts counting.
func (b *Bank) Enable() { b.enabled = true }

// Disable stops counting; values are retained.
func (b *Bank) Disable() { b.enabled = false }

// Enabled reports whether the bank is counting.
func (b *Bank) Enabled() bool { return b.enabled }

// Reset zeroes every counter (values only; the enable state is kept).
func (b *Bank) Reset() { b.counts = Counters{} }

// Inc adds 1 to event e if the bank is enabled.
func (b *Bank) Inc(e Event) {
	if b.enabled {
		b.counts[e]++
	}
}

// Add adds n to event e if the bank is enabled.
func (b *Bank) Add(e Event, n uint64) {
	if b.enabled {
		b.counts[e] += n
	}
}

// AddN adds n to every listed event if the bank is enabled. It is the bulk
// equivalent of n repetitions of Inc on each event: the simulator's
// fast-forward engine uses it to tick a dormant regime's fixed per-cycle
// counter signature for a whole batch of cycles in one call.
func (b *Bank) AddN(n uint64, events ...Event) {
	if !b.enabled {
		return
	}
	for _, e := range events {
		b.counts[e] += n
	}
}

// Read returns a snapshot of the current counter values.
func (b *Bank) Read() Counters { return b.counts }
