package pmu

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEventNames(t *testing.T) {
	// Table I mnemonics must match the ARM event names the paper cites.
	cases := map[Event]string{
		CPUCycles:     "CPU_CYCLES",
		InstSpec:      "INST_SPEC",
		StallFrontend: "STALL_FRONTEND",
		StallBackend:  "STALL_BACKEND",
		InstRetired:   "INST_RETIRED",
	}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
	if !strings.HasPrefix(Event(200).String(), "EVENT(") {
		t.Errorf("unknown event String() = %q", Event(200).String())
	}
	for e := Event(0); e < NumEvents; e++ {
		if e.String() == "" {
			t.Errorf("event %d has empty name", e)
		}
	}
}

func TestTableIEvents(t *testing.T) {
	if len(TableIEvents) != 4 {
		t.Fatalf("Table I defines exactly 4 events, got %d", len(TableIEvents))
	}
}

func TestBankDisabledByDefault(t *testing.T) {
	var b Bank
	if b.Enabled() {
		t.Fatal("zero-value bank must be disabled")
	}
	b.Inc(CPUCycles)
	b.Add(InstSpec, 10)
	if c := b.Read(); c[CPUCycles] != 0 || c[InstSpec] != 0 {
		t.Fatalf("disabled bank counted: %v", c)
	}
}

func TestBankEnableDisable(t *testing.T) {
	var b Bank
	b.Enable()
	b.Inc(CPUCycles)
	b.Add(InstSpec, 4)
	b.Disable()
	b.Inc(CPUCycles) // must not count
	c := b.Read()
	if c[CPUCycles] != 1 || c[InstSpec] != 4 {
		t.Fatalf("counts = %v, want cycles=1 inst=4", c)
	}
}

func TestBankReset(t *testing.T) {
	var b Bank
	b.Enable()
	b.Add(StallBackend, 7)
	b.Reset()
	if c := b.Read(); c[StallBackend] != 0 {
		t.Fatalf("Reset left %d", c[StallBackend])
	}
	if !b.Enabled() {
		t.Fatal("Reset must not disable the bank")
	}
}

func TestCountersDelta(t *testing.T) {
	var b Bank
	b.Enable()
	b.Add(CPUCycles, 100)
	snap1 := b.Read()
	b.Add(CPUCycles, 50)
	b.Add(InstSpec, 120)
	d := b.Read().Delta(snap1)
	if d[CPUCycles] != 50 || d[InstSpec] != 120 {
		t.Fatalf("delta = %v", d)
	}
}

func TestCountersAdd(t *testing.T) {
	var a, b Counters
	a[CPUCycles] = 3
	b[CPUCycles] = 4
	b[InstSpec] = 5
	s := a.Add(b)
	if s[CPUCycles] != 7 || s[InstSpec] != 5 {
		t.Fatalf("sum = %v", s)
	}
}

func TestIPC(t *testing.T) {
	var c Counters
	if c.IPC() != 0 {
		t.Fatal("IPC with zero cycles must be 0")
	}
	c[CPUCycles] = 100
	c[InstRetired] = 250
	if got := c.IPC(); got != 2.5 {
		t.Fatalf("IPC = %v, want 2.5", got)
	}
}

func TestDeltaAddRoundTrip(t *testing.T) {
	// prev + (cur − prev) == cur for any counter values.
	check := func(prevRaw, deltaRaw [NumEvents]uint32) bool {
		var prev, cur Counters
		for i := range prevRaw {
			prev[i] = uint64(prevRaw[i])
			cur[i] = prev[i] + uint64(deltaRaw[i])
		}
		return prev.Add(cur.Delta(prev)) == cur
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGet(t *testing.T) {
	var c Counters
	c[StallFrontend] = 42
	if c.Get(StallFrontend) != 42 {
		t.Fatal("Get mismatch")
	}
}

func TestFineBackendEventsAreBackend(t *testing.T) {
	for _, e := range FineBackendEvents {
		if !strings.HasPrefix(e.String(), "STALL_BE_") {
			t.Errorf("%v is not a backend stall component", e)
		}
	}
	if len(FineBackendEvents) != 7 {
		t.Fatalf("paper splits backend stalls into 7 components, got %d", len(FineBackendEvents))
	}
}
