package predcache

import (
	"sync"
	"testing"
)

func TestSharedMatchesPrivateSemantics(t *testing.T) {
	s := NewShared(Options{}, 4)
	iv := s.InvertView()
	pv := s.PairView()
	invCalls, pairCalls := 0, 0
	invFn := func(a, b []float64) ([]float64, []float64, bool) {
		invCalls++
		return []float64{a[0] * 2}, []float64{b[0] * 2}, true
	}
	pairFn := func(a, b []float64) float64 { pairCalls++; return a[0] + b[0] }

	a, b := []float64{1.5}, []float64{2.5}
	ca1, cb1, _ := iv.Get(a, b, invFn)
	ca2, cb2, _ := iv.Get(a, b, invFn)
	if invCalls != 1 {
		t.Fatalf("invert fn called %d times for two identical lookups", invCalls)
	}
	if &ca1[0] != &ca2[0] || &cb1[0] != &cb2[0] {
		t.Fatal("hit did not return the shared cached slices")
	}
	if v1, v2 := pv.Get(a, b, pairFn), pv.Get(a, b, pairFn); v1 != v2 || pairCalls != 1 {
		t.Fatalf("pair memo broken: %v %v calls=%d", v1, v2, pairCalls)
	}

	// A second view hits entries the first view stored — the point of
	// sharing — while keeping its own local stats.
	iv2 := s.InvertView()
	iv2.Get(a, b, invFn)
	if invCalls != 1 {
		t.Fatal("second view missed an entry the first view stored")
	}
	if st := iv2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("view-local stats %+v, want 1 hit 0 misses", st)
	}
	inv, pair := s.Stats()
	if inv.Hits != 2 || inv.Misses != 1 || pair.Hits != 1 || pair.Misses != 1 {
		t.Fatalf("shared stats invert=%+v pair=%+v", inv, pair)
	}
	if ei, ep := s.Entries(); ei != 1 || ep != 1 {
		t.Fatalf("entries invert=%d pair=%d, want 1 1", ei, ep)
	}
}

func TestSharedDisabledPassThrough(t *testing.T) {
	s := NewShared(Options{Disabled: true}, 0)
	iv := s.InvertView()
	calls := 0
	fn := func(a, b []float64) ([]float64, []float64, bool) {
		calls++
		return a, b, true
	}
	iv.Get([]float64{1}, []float64{2}, fn)
	iv.Get([]float64{1}, []float64{2}, fn)
	if calls != 2 {
		t.Fatalf("disabled shared cache memoized (calls=%d)", calls)
	}
	inv, pair := s.Stats()
	if inv != (Stats{}) || pair != (Stats{}) {
		t.Fatalf("disabled cache counted traffic: %+v %+v", inv, pair)
	}
}

func TestSharedShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := NewShared(Options{}, tc.in).NumShards(); got != tc.want {
			t.Errorf("NewShared(shards=%d).NumShards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSharedPerShardReset(t *testing.T) {
	// MaxEntries 8 over 4 shards = 2 per shard: inserting many distinct
	// keys must trigger per-shard resets without losing correctness.
	s := NewShared(Options{MaxEntries: 8}, 4)
	pv := s.PairView()
	fn := func(a, b []float64) float64 { return a[0] + b[0] }
	for i := 0; i < 64; i++ {
		a := []float64{float64(i)}
		if v := pv.Get(a, []float64{1}, fn); v != float64(i)+1 {
			t.Fatalf("wrong value %v for key %d", v, i)
		}
	}
	_, pair := s.Stats()
	if pair.Resets == 0 {
		t.Fatalf("no shard reset after 64 inserts into an 8-entry cache: %+v", pair)
	}
	if _, ep := s.Entries(); ep > 8+s.NumShards() {
		t.Fatalf("entries %d exceed the per-shard bound", ep)
	}
	// Values stay correct across resets.
	if v := pv.Get([]float64{3}, []float64{1}, fn); v != 4 {
		t.Fatalf("post-reset value %v", v)
	}
}

// TestSharedShardStress hammers one shared cache from many goroutines over
// an overlapping key set — the -race gate for the concurrent path — and
// checks every returned value is the pure function's value and the summed
// stats account for every Get.
func TestSharedShardStress(t *testing.T) {
	s := NewShared(Options{MaxEntries: 256}, 8)
	const goroutines = 8
	const perG = 2000
	const keys = 97 // overlapping working set, coprime with goroutines
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			iv := s.InvertView()
			pv := s.PairView()
			invFn := func(a, b []float64) ([]float64, []float64, bool) {
				return []float64{a[0] * 2}, []float64{b[0] * 3}, true
			}
			pairFn := func(a, b []float64) float64 { return a[0]*10 + b[0] }
			for i := 0; i < perG; i++ {
				k := float64((g*perG + i) % keys)
				a, b := []float64{k}, []float64{k + 1}
				ca, cb, conv := iv.Get(a, b, invFn)
				if !conv || ca[0] != k*2 || cb[0] != (k+1)*3 {
					errc <- &testError{k: k}
					return
				}
				if v := pv.Get(a, b, pairFn); v != k*10+k+1 {
					errc <- &testError{k: k}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	inv, pair := s.Stats()
	total := uint64(goroutines * perG)
	if inv.Hits+inv.Misses != total || pair.Hits+pair.Misses != total {
		t.Fatalf("stats do not account for all traffic: invert=%+v pair=%+v want %d each", inv, pair, total)
	}
	if inv.Hits == 0 || pair.Hits == 0 {
		t.Fatal("overlapping key set produced no hits")
	}
}

type testError struct{ k float64 }

func (e *testError) Error() string { return "wrong cached value under concurrency" }
