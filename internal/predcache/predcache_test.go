package predcache

import (
	"math"
	"testing"
)

func evalPair(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestPairCacheHitsAndValues(t *testing.T) {
	c := NewPair(Options{})
	a := []float64{0.3, 0.5, 0.2}
	b := []float64{0.1, 0.1, 0.8}
	calls := 0
	fn := func(x, y []float64) float64 { calls++; return evalPair(x, y) }

	v1 := c.Get(a, b, fn)
	v2 := c.Get(a, b, fn)
	if v1 != v2 {
		t.Fatalf("cached value %v != fresh %v", v2, v1)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times for two identical lookups", calls)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit 1 miss", s)
	}
	// Order matters: (b, a) is a distinct key.
	c.Get(b, a, fn)
	if calls != 2 {
		t.Fatalf("swapped arguments did not miss (calls=%d)", calls)
	}
	// A one-ulp perturbation must miss at exact precision.
	a2 := append([]float64(nil), a...)
	a2[0] = math.Nextafter(a2[0], 1)
	c.Get(a2, b, fn)
	if calls != 3 {
		t.Fatal("one-ulp perturbation hit the exact-key cache")
	}
}

func TestPairCacheDisabled(t *testing.T) {
	c := NewPair(Options{Disabled: true})
	calls := 0
	fn := func(x, y []float64) float64 { calls++; return 1 }
	c.Get([]float64{1}, []float64{2}, fn)
	c.Get([]float64{1}, []float64{2}, fn)
	if calls != 2 {
		t.Fatalf("disabled cache memoized (calls=%d)", calls)
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("disabled cache counted traffic: %+v", s)
	}
}

func TestPairCacheQuantization(t *testing.T) {
	c := NewPair(Options{Quantum: 0.01})
	calls := 0
	fn := func(x, y []float64) float64 { calls++; return evalPair(x, y) }
	b := []float64{0.5}
	c.Get([]float64{0.1001}, b, fn)
	c.Get([]float64{0.1002}, b, fn) // same 0.01 bucket -> hit
	if calls != 1 {
		t.Fatalf("quantized keys missed (calls=%d)", calls)
	}
	c.Get([]float64{0.12}, b, fn) // different bucket
	if calls != 2 {
		t.Fatal("distinct bucket hit")
	}
}

func TestPairCacheReset(t *testing.T) {
	c := NewPair(Options{MaxEntries: 4})
	fn := func(x, y []float64) float64 { return x[0] + y[0] }
	for i := 0; i < 10; i++ {
		c.Get([]float64{float64(i)}, []float64{1}, fn)
	}
	s := c.Stats()
	if s.Resets == 0 {
		t.Fatalf("no reset after overflowing MaxEntries: %+v", s)
	}
	// Values stay correct across resets.
	if v := c.Get([]float64{3}, []float64{1}, fn); v != 4 {
		t.Fatalf("post-reset value %v", v)
	}
}

func TestInvertCacheSharesResults(t *testing.T) {
	c := NewInvert(Options{})
	calls := 0
	fn := func(a, b []float64) ([]float64, []float64, bool) {
		calls++
		return []float64{a[0] * 2}, []float64{b[0] * 2}, true
	}
	a, b := []float64{1.5}, []float64{2.5}
	ca1, cb1, conv1 := c.Get(a, b, fn)
	ca2, cb2, conv2 := c.Get(a, b, fn)
	if calls != 1 {
		t.Fatalf("fn called %d times", calls)
	}
	if !conv1 || !conv2 {
		t.Fatal("converged flag lost")
	}
	if &ca1[0] != &ca2[0] || &cb1[0] != &cb2[0] {
		t.Fatal("hit did not return the shared cached slices")
	}
	if ca1[0] != 3 || cb1[0] != 5 {
		t.Fatalf("cached values %v %v", ca1, cb1)
	}
}

func TestKeySeparatesSplits(t *testing.T) {
	// (a=[x], b=[y,z]) and (a=[x,y], b=[z]) must not collide: the length
	// prefix disambiguates the split.
	c := NewPair(Options{})
	calls := 0
	fn := func(x, y []float64) float64 { calls++; return float64(len(x)) }
	v1 := c.Get([]float64{1}, []float64{2, 3}, fn)
	v2 := c.Get([]float64{1, 2}, []float64{3}, fn)
	if calls != 2 {
		t.Fatal("split ambiguity: second lookup hit the first key")
	}
	if v1 == v2 {
		t.Fatalf("values collided: %v %v", v1, v2)
	}
}
