// Shared is the concurrent form of the memo layer: one cache serving many
// goroutines — every machine in a fleet, or every in-flight request on the
// reentrant policy path — instead of each warming its own cold private map.
//
// # Bit-identity under concurrent sharing
//
// The package-comment argument extends unchanged: with Quantum = 0 a hit
// implies the inputs are bit-identical to an earlier call, and the memoized
// functions are pure, so every value a shard ever returns for a key is the
// bit-identical value a fresh evaluation would produce. Concurrency changes
// only *which* calls hit: two goroutines racing on the same cold key may
// both miss and both evaluate, but they evaluate the same pure function on
// bit-identical inputs, so whichever store wins the shard lock publishes
// the same bits. Simulation outputs therefore cannot depend on the
// schedule; only the hit/miss *counters* (and reset timing) are
// schedule-dependent, which is why the engines exclude shared-cache
// counter deltas from worker-count-invariant traces.
//
// # Structure
//
// Keys hash (FNV-1a over the key bytes) onto a power-of-two shard array;
// each shard is an independently locked map pair with its own
// deterministic overflow reset (full clear at MaxEntries/shards, changing
// only speed, never results). Stats are per-shard atomics so they can be
// summed without stopping traffic. Memoized functions are evaluated
// *outside* the shard lock — the expensive Newton inversions never
// serialise on a shard.
//
// Callers do not use a Shared directly: each request/goroutine derives
// InvertView/PairView handles, which carry the per-request key scratch and
// a local Stats so per-caller traffic stays observable. Views are not
// concurrency-safe; the Shared behind them is.
package predcache

import (
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count when NewShared is given 0 — enough to
// keep lock contention negligible at fleet worker counts without bloating
// the per-shard reset granularity.
const DefaultShards = 16

// Shared is an N-shard concurrent memo for both the inversion and the
// pair-degradation functions. Safe for use from any number of goroutines;
// derive per-request handles with InvertView/PairView.
type Shared struct {
	opt         Options
	mask        uint64
	maxPerShard int
	shards      []sharedShard
}

type sharedShard struct {
	mu   sync.Mutex
	pair map[string]float64
	inv  map[string]invertEntry

	// Traffic counters: incremented by view traffic, read lock-free by
	// Shared.Stats while other goroutines keep hitting the shard.
	pairHits, pairMisses, pairResets atomic.Uint64
	invHits, invMisses, invResets    atomic.Uint64
}

// NewShared builds a shared cache with the given options and shard count
// (rounded up to a power of two; 0 selects DefaultShards). Options.
// MaxEntries bounds the whole cache; each shard clears independently at
// MaxEntries/shards.
func NewShared(opt Options, shards int) *Shared {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Shared{opt: opt, mask: uint64(n - 1)}
	if opt.Disabled {
		return s
	}
	per := opt.maxEntries() / n
	if per < 1 {
		per = 1
	}
	s.maxPerShard = per
	s.shards = make([]sharedShard, n)
	for i := range s.shards {
		s.shards[i].pair = make(map[string]float64)
		s.shards[i].inv = make(map[string]invertEntry)
	}
	return s
}

// NumShards returns the (power-of-two) shard count, 0 when disabled.
func (s *Shared) NumShards() int { return len(s.shards) }

// Disabled reports whether the cache is a pass-through.
func (s *Shared) Disabled() bool { return s.opt.Disabled }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// shard selects the key's home shard by FNV-1a over the key bytes.
func (s *Shared) shard(key []byte) *sharedShard {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return &s.shards[h&s.mask]
}

// Stats sums the per-shard traffic counters. Callable concurrently with
// traffic; a snapshot taken mid-run may straddle in-flight Gets.
func (s *Shared) Stats() (invert, pair Stats) {
	for i := range s.shards {
		sh := &s.shards[i]
		invert.Hits += sh.invHits.Load()
		invert.Misses += sh.invMisses.Load()
		invert.Resets += sh.invResets.Load()
		pair.Hits += sh.pairHits.Load()
		pair.Misses += sh.pairMisses.Load()
		pair.Resets += sh.pairResets.Load()
	}
	return invert, pair
}

// Entries counts the currently resident entries across all shards.
func (s *Shared) Entries() (invert, pair int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		invert += len(sh.inv)
		pair += len(sh.pair)
		sh.mu.Unlock()
	}
	return invert, pair
}

// InvertView is one request's handle onto the shared inversion memo: it
// owns the key scratch and a local Stats, and forwards storage to the
// Shared. Not safe for concurrent use — derive one per goroutine. It
// implements the same Get/Stats surface as a private InvertCache.
type InvertView struct {
	s     *Shared
	key   []byte
	stats Stats
}

// InvertView derives a per-request inversion handle.
func (s *Shared) InvertView() *InvertView {
	v := &InvertView{s: s}
	if !s.opt.Disabled {
		v.key = make([]byte, 0, 64)
	}
	return v
}

// Get returns fn(a, b), memoized in the shared cache. The returned slices
// are owned by the cache, shared across hits and goroutines, and must not
// be mutated. fn runs outside the shard lock: concurrent cold misses on
// one key may evaluate redundantly, but publish bit-identical values.
func (v *InvertView) Get(a, b []float64, fn InvertFn) ([]float64, []float64, bool) {
	if v.s.opt.Disabled {
		return fn(a, b)
	}
	v.key = pairKey(v.key, a, b, v.s.opt.Quantum)
	sh := v.s.shard(v.key)
	sh.mu.Lock()
	if e, ok := sh.inv[string(v.key)]; ok {
		sh.mu.Unlock()
		sh.invHits.Add(1)
		v.stats.Hits++
		return e.a, e.b, e.converged
	}
	sh.mu.Unlock()
	sh.invMisses.Add(1)
	v.stats.Misses++
	ca, cb, conv := fn(a, b)
	sh.mu.Lock()
	if _, ok := sh.inv[string(v.key)]; !ok && len(sh.inv) >= v.s.maxPerShard {
		sh.inv = make(map[string]invertEntry)
		sh.invResets.Add(1)
		v.stats.Resets++
	}
	sh.inv[string(v.key)] = invertEntry{a: ca, b: cb, converged: conv}
	sh.mu.Unlock()
	return ca, cb, conv
}

// Stats returns this view's local traffic counters (the whole cache's are
// on Shared.Stats).
func (v *InvertView) Stats() Stats { return v.stats }

// Entries counts the resident inversion entries — a shared-cache-wide
// figure, since entries are global by design.
func (v *InvertView) Entries() int {
	n, _ := v.s.Entries()
	return n
}

// PairView is one request's handle onto the shared pair memo; the pair
// analogue of InvertView, implementing the private PairCache surface.
type PairView struct {
	s     *Shared
	key   []byte
	stats Stats
}

// PairView derives a per-request pair-degradation handle.
func (s *Shared) PairView() *PairView {
	v := &PairView{s: s}
	if !s.opt.Disabled {
		v.key = make([]byte, 0, 64)
	}
	return v
}

// Get returns fn(a, b), memoized in the shared cache. fn runs outside the
// shard lock (see InvertView.Get).
func (v *PairView) Get(a, b []float64, fn PairFn) float64 {
	if v.s.opt.Disabled {
		return fn(a, b)
	}
	v.key = pairKey(v.key, a, b, v.s.opt.Quantum)
	sh := v.s.shard(v.key)
	sh.mu.Lock()
	if x, ok := sh.pair[string(v.key)]; ok {
		sh.mu.Unlock()
		sh.pairHits.Add(1)
		v.stats.Hits++
		return x
	}
	sh.mu.Unlock()
	sh.pairMisses.Add(1)
	v.stats.Misses++
	x := fn(a, b)
	sh.mu.Lock()
	if _, ok := sh.pair[string(v.key)]; !ok && len(sh.pair) >= v.s.maxPerShard {
		sh.pair = make(map[string]float64)
		sh.pairResets.Add(1)
		v.stats.Resets++
	}
	sh.pair[string(v.key)] = x
	sh.mu.Unlock()
	return x
}

// Stats returns this view's local traffic counters.
func (v *PairView) Stats() Stats { return v.stats }

// Entries counts the resident pair entries — a shared-cache-wide figure,
// since entries are global by design.
func (v *PairView) Entries() int {
	_, n := v.s.Entries()
	return n
}
