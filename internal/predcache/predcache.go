// Package predcache memoizes the SYNPA policy's per-quantum model
// evaluations — ST-vector inversions (core.Model.Invert) and pairwise
// degradation predictions (core.Model.PairDegradation) — behind keys built
// from the bit patterns of the input vectors.
//
// # Why a memo layer
//
// The policy re-runs the inversion and the full pairwise prediction matrix
// every scheduling quantum even though application behaviour barely moves
// between quanta: dynamic runs re-invoke the policy off-quantum with the
// same samples, hysteresis holds placements (and therefore co-runner sets)
// stable for long stretches, and the grouping cost matrix prices the same
// pairs across consecutive quanta. The caches turn each repeated
// evaluation into a hash lookup.
//
// # Bit-identity
//
// With the default Quantum of 0, a key is the exact 64-bit IEEE pattern of
// every input component: a cache hit therefore implies the inputs are
// bit-identical to an earlier call, and because Invert and PairDegradation
// are pure deterministic functions, the memoized result is bit-identical
// to what a fresh evaluation would return. Cached runs are bit-identical
// to uncached runs *by construction* — no tolerance argument is needed.
// A positive Quantum rounds each component to a multiple of the step
// before keying, trading exactness for hit rate: runs remain deterministic
// (the first evaluation in each bucket wins, and evaluation order is
// deterministic), but are no longer guaranteed bit-identical to an
// uncached run. Production keeps Quantum = 0.
//
// # Ownership
//
// Result slices returned by InvertCache.Get are owned by the cache and
// shared between hits: callers must copy before mutating (the SYNPA policy
// copies into its reusable estimate matrix before smoothing).
package predcache

import (
	"encoding/binary"
	"math"
)

// DefaultMaxEntries bounds each cache's entry count; on overflow the cache
// resets with a deterministic full clear (no LRU bookkeeping on the hot
// path, and a reset changes only speed, never results).
const DefaultMaxEntries = 1 << 15

// Options tune a cache; the zero value gives the production defaults.
type Options struct {
	// Disabled turns the cache into a pass-through.
	Disabled bool
	// Quantum is the key quantization step. 0 (the default) keys on the
	// full 64-bit pattern of every component, which keeps memoized runs
	// bit-identical to uncached runs (see the package comment). Positive
	// values round components to multiples of Quantum before keying.
	Quantum float64
	// MaxEntries bounds the cache; zero selects DefaultMaxEntries.
	MaxEntries int
}

func (o Options) maxEntries() int {
	if o.MaxEntries <= 0 {
		return DefaultMaxEntries
	}
	return o.MaxEntries
}

// Stats counts cache traffic.
type Stats struct {
	Hits, Misses uint64
	// Resets counts deterministic full clears on MaxEntries overflow.
	Resets uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// appendKey appends the (possibly quantized) bit signature of v to key.
func appendKey(key []byte, v []float64, quantum float64) []byte {
	var buf [8]byte
	for _, x := range v {
		if quantum > 0 {
			x = math.Round(x/quantum) * quantum
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		key = append(key, buf[:]...)
	}
	return key
}

// pairKey builds the key for an ordered vector pair into dst. The length
// prefix separates (a, b) splits unambiguously.
func pairKey(dst []byte, a, b []float64, quantum float64) []byte {
	dst = dst[:0]
	dst = append(dst, byte(len(a)))
	dst = appendKey(dst, a, quantum)
	dst = appendKey(dst, b, quantum)
	return dst
}

// PairFn evaluates the pair function being memoized.
type PairFn func(a, b []float64) float64

// PairCache memoizes a scalar function of an ordered vector pair — the
// policy's PairDegradation lookups. Not safe for concurrent use; each
// policy instance owns one.
type PairCache struct {
	opt   Options
	m     map[string]float64
	key   []byte
	stats Stats
}

// NewPair builds a PairCache.
func NewPair(opt Options) *PairCache {
	c := &PairCache{opt: opt}
	if !opt.Disabled {
		c.m = make(map[string]float64)
		c.key = make([]byte, 0, 64)
	}
	return c
}

// Get returns fn(a, b), memoized.
func (c *PairCache) Get(a, b []float64, fn PairFn) float64 {
	if c.opt.Disabled {
		return fn(a, b)
	}
	c.key = pairKey(c.key, a, b, c.opt.Quantum)
	if v, ok := c.m[string(c.key)]; ok {
		c.stats.Hits++
		return v
	}
	c.stats.Misses++
	v := fn(a, b)
	if len(c.m) >= c.opt.maxEntries() {
		c.m = make(map[string]float64)
		c.stats.Resets++
	}
	c.m[string(c.key)] = v
	return v
}

// Stats returns the traffic counters.
func (c *PairCache) Stats() Stats { return c.stats }

// Entries returns the resident entry count.
func (c *PairCache) Entries() int { return len(c.m) }

// InvertFn evaluates the inversion being memoized.
type InvertFn func(a, b []float64) (ca, cb []float64, converged bool)

type invertEntry struct {
	a, b      []float64
	converged bool
}

// InvertCache memoizes a two-vector function of an ordered vector pair —
// the policy's model inversions. Returned slices are owned by the cache;
// callers must copy before mutating. Not safe for concurrent use.
type InvertCache struct {
	opt   Options
	m     map[string]invertEntry
	key   []byte
	stats Stats
}

// NewInvert builds an InvertCache.
func NewInvert(opt Options) *InvertCache {
	c := &InvertCache{opt: opt}
	if !opt.Disabled {
		c.m = make(map[string]invertEntry)
		c.key = make([]byte, 0, 64)
	}
	return c
}

// Get returns fn(a, b), memoized. The returned slices are shared across
// hits and must not be mutated.
func (c *InvertCache) Get(a, b []float64, fn InvertFn) ([]float64, []float64, bool) {
	if c.opt.Disabled {
		return fn(a, b)
	}
	c.key = pairKey(c.key, a, b, c.opt.Quantum)
	if e, ok := c.m[string(c.key)]; ok {
		c.stats.Hits++
		return e.a, e.b, e.converged
	}
	c.stats.Misses++
	ca, cb, conv := fn(a, b)
	if len(c.m) >= c.opt.maxEntries() {
		c.m = make(map[string]invertEntry)
		c.stats.Resets++
	}
	c.m[string(c.key)] = invertEntry{a: ca, b: cb, converged: conv}
	return ca, cb, conv
}

// Stats returns the traffic counters.
func (c *InvertCache) Stats() Stats { return c.stats }

// Entries returns the resident entry count.
func (c *InvertCache) Entries() int { return len(c.m) }

// MatchFn evaluates the matching being memoized.
type MatchFn func(w [][]float64) ([]int, error)

// matchKey builds the key for a symmetric weight matrix: the vertex count
// followed by the bit signature of the strict upper triangle (the matcher
// reads nothing else — the diagonal is ignored and the lower triangle
// mirrors the upper).
func matchKey(dst []byte, w [][]float64, quantum float64) []byte {
	dst = dst[:0]
	dst = append(dst, byte(len(w)))
	for i := range w {
		dst = appendKey(dst, w[i][i+1:], quantum)
	}
	return dst
}

// MatchCache memoizes a pairing function of a symmetric weight matrix —
// the policy's Blossom matchings. The matcher is a pure deterministic
// function of the matrix, so the exact-bit-key argument of the package
// comment applies unchanged: a hit implies a bit-identical matrix, and the
// memoized mate array is bit-identical to a fresh solve. Returned slices
// are fresh copies owned by the caller. Not safe for concurrent use; the
// policy keeps one per request arena (matchings are machine-local
// decisions keyed by full matrices, so cross-machine sharing would buy
// little and cost shard-lock traffic — unlike the inversion/pair memos,
// this cache has no shared variant).
type MatchCache struct {
	opt   Options
	m     map[string][]int
	key   []byte
	stats Stats
}

// NewMatch builds a MatchCache.
func NewMatch(opt Options) *MatchCache {
	c := &MatchCache{opt: opt}
	if !opt.Disabled {
		c.m = make(map[string][]int)
		c.key = make([]byte, 0, 256)
	}
	return c
}

// Get returns fn(w), memoized. The returned slice is a fresh copy owned by
// the caller. Errors are passed through uncached (the policy's weight
// matrices are sanitized and can never produce one).
func (c *MatchCache) Get(w [][]float64, fn MatchFn) ([]int, error) {
	if c.opt.Disabled {
		return fn(w)
	}
	c.key = matchKey(c.key, w, c.opt.Quantum)
	if mate, ok := c.m[string(c.key)]; ok {
		c.stats.Hits++
		return append([]int(nil), mate...), nil
	}
	c.stats.Misses++
	mate, err := fn(w)
	if err != nil {
		return mate, err
	}
	if len(c.m) >= c.opt.maxEntries() {
		c.m = make(map[string][]int)
		c.stats.Resets++
	}
	c.m[string(c.key)] = append([]int(nil), mate...)
	return mate, nil
}

// Stats returns the traffic counters.
func (c *MatchCache) Stats() Stats { return c.stats }

// Entries returns the resident entry count.
func (c *MatchCache) Entries() int { return len(c.m) }
