package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided on %d/100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("seed 0 produced only %d distinct values in 64 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Fatalf("bucket %d count %d deviates from %v by more than 8%%", i, c, want)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	for _, p := range []float64{0.5, 0.1, 0.02} {
		const n = 100000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Geometric(p)
		}
		mean := float64(sum) / n
		want := 1 / p
		if math.Abs(mean-want) > 0.05*want {
			t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
		}
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(19)
	if g := r.Geometric(1.0); g != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", g)
	}
	if g := r.Geometric(1.5); g != 1 {
		t.Fatalf("Geometric(1.5) = %d, want 1", g)
	}
	if g := r.Geometric(0); g < 1<<29 {
		t.Fatalf("Geometric(0) = %d, want huge", g)
	}
	if g := r.Geometric(-0.2); g < 1<<29 {
		t.Fatalf("Geometric(-0.2) = %d, want huge", g)
	}
	for i := 0; i < 1000; i++ {
		if g := r.Geometric(0.3); g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(40)
	}
	mean := sum / n
	if math.Abs(mean-40) > 1.0 {
		t.Fatalf("Exp(40) mean = %v, want ~40", mean)
	}
	if r.Exp(0) != 0 || r.Exp(-3) != 0 {
		t.Fatal("Exp of non-positive mean should be 0")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(29)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%50) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and split child collided on %d/100 draws", same)
	}
}

func TestShuffle(t *testing.T) {
	r := New(37)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkGeometric(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Geometric(0.05)
	}
	_ = sink
}

// TestGeometricFromLogMatchesGeometric pins the hoisted-logarithm variant
// to Geometric draw for draw: two generators with identical state must
// produce identical streams, including the edge-case clamps that skip the
// RNG entirely.
func TestGeometricFromLogMatchesGeometric(t *testing.T) {
	for _, p := range []float64{1e-9, 0.003, 0.02, 0.3, 0.97, 1.0, 1.5, 0, -0.5} {
		a, b := New(23), New(23)
		log1mP := math.Log1p(-p)
		for i := 0; i < 5000; i++ {
			ga := a.Geometric(p)
			gb := b.GeometricFromLog(p, log1mP)
			if ga != gb {
				t.Fatalf("p=%v draw %d: Geometric=%d FromLog=%d", p, i, ga, gb)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("p=%v: RNG streams diverged", p)
		}
	}
}
