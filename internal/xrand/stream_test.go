package xrand

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"
)

// streamDigest folds a fixed-seed draw sequence through SHA-256. Every
// distribution the simulator consumes contributes: a change to any of
// them (a reordered draw, a different clamp, a refactored inverse CDF)
// changes the digest.
func streamDigest() string {
	h := sha256.New()
	w := func(u uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], u)
		h.Write(b[:])
	}
	rng := New(0x5EED_CAFE)
	for i := 0; i < 256; i++ {
		w(rng.Uint64())
	}
	for i := 0; i < 256; i++ {
		w(math.Float64bits(rng.Float64()))
	}
	for i := 0; i < 256; i++ {
		w(uint64(rng.Intn(1000 + i)))
	}
	ps := []float64{1e-6, 0.001, 0.01, 0.1, 0.5, 0.9, 0.999}
	for i := 0; i < 256; i++ {
		w(uint64(rng.Geometric(ps[i%len(ps)])))
	}
	for i := 0; i < 256; i++ {
		p := ps[i%len(ps)]
		w(uint64(rng.GeometricFromLog(p, math.Log1p(-p))))
	}
	for i := 0; i < 256; i++ {
		w(math.Float64bits(rng.Exp(float64(i + 1))))
	}
	for i := 0; i < 64; i++ {
		w(math.Float64bits(rng.NormFloat64()))
	}
	for _, v := range rng.Perm(64) {
		w(uint64(v))
	}
	child := rng.Split()
	for i := 0; i < 64; i++ {
		w(child.Uint64())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestDeterministicStreamDigest pins the generator's output streams
// bit-for-bit. Every golden digest in internal/regression transitively
// depends on these draws, so an RNG refactor that silently changes any
// stream would invalidate every downstream golden at once; this test
// localizes such a change to its source.
func TestDeterministicStreamDigest(t *testing.T) {
	const want = "abe021a3055252135f8ed032c51886cc5fc6453cb54c2cc1dd5c36a16e682fc6"
	if got := streamDigest(); got != want {
		t.Fatalf("xrand stream digest changed:\n got %s\nwant %s\n"+
			"An intentional RNG change invalidates every golden digest in "+
			"internal/regression — regenerate those too and say so in the PR.", got, want)
	}
	// A second pass must reproduce the digest exactly (no hidden state).
	if got := streamDigest(); got != want {
		t.Fatalf("xrand stream digest not reproducible within one process: %s", got)
	}
}

// TestStreamDigestPrefix pins the first draws of the geometric and
// exponential streams as plain values, so a digest mismatch can be
// localized without bisecting the whole sequence.
func TestStreamDigestPrefix(t *testing.T) {
	rng := New(0x5EED_CAFE)
	gotGeo := make([]int, 4)
	for i := range gotGeo {
		gotGeo[i] = rng.Geometric(0.01)
	}
	wantGeo := [4]int{93, 1, 5, 21}
	for i, g := range gotGeo {
		if g != wantGeo[i] {
			t.Errorf("Geometric(0.01) draw %d = %d, want %d", i, g, wantGeo[i])
		}
	}
	gotExp := make([]uint64, 4)
	for i := range gotExp {
		gotExp[i] = math.Float64bits(rng.Exp(100))
	}
	wantExp := [4]uint64{0x3ff31c11476ddb12, 0x407b77d5c3169d82, 0x4011e21b03f8a8f1, 0x406eb58440cb2261}
	for i, g := range gotExp {
		if g != wantExp[i] {
			t.Errorf("Exp(100) draw %d = %#x (%v), want %#x", i, g, math.Float64frombits(g), wantExp[i])
		}
	}
}
