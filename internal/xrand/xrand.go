// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic component of the SYNPA reproduction.
//
// All simulator state is seeded explicitly so that every experiment, table
// and figure in the repository is bit-for-bit reproducible. The generator is
// xoshiro256** seeded through SplitMix64, following the reference
// implementations by Blackman and Vigna. The package also offers the handful
// of distributions the application models need (uniform, bounded integers,
// geometric and exponential draws) without pulling in math/rand global state.
package xrand

import "math"

// RNG is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances the SplitMix64 state and returns the next output.
// It is used only to expand a user seed into the xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	sm := seed
	r := &RNG{}
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	// Guard against the (astronomically unlikely) all-zero state, which is
	// the single absorbing state of xoshiro.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child generator from r. The child stream is
// decorrelated from the parent by mixing a fresh parent draw through
// SplitMix64. Splitting lets each simulated core and application own a
// private stream so that scheduling order never perturbs app behaviour.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits, standard conversion.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + t>>32 + (t&mask+a0*b1)>>32
	return hi, lo
}

// Geometric returns a draw from a geometric distribution with success
// probability p, i.e. the number of Bernoulli(p) trials up to and including
// the first success (support {1, 2, ...}). For p >= 1 it returns 1; for
// p <= 0 it returns a very large value clamped to maxGeometric.
func (r *RNG) Geometric(p float64) int {
	const maxGeometric = 1 << 30
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return maxGeometric
	}
	u := r.Float64()
	// Inverse CDF: ceil(ln(1-u) / ln(1-p)).
	g := math.Ceil(math.Log1p(-u) / math.Log1p(-p))
	if g < 1 {
		return 1
	}
	if g > maxGeometric {
		return maxGeometric
	}
	return int(g)
}

// GeometricFromLog is Geometric with the inverse-CDF divisor ln(1-p)
// precomputed by the caller: log1mP must equal math.Log1p(-p) for the same
// p. Callers that draw many windows at a fixed rate (the SMT core's stall
// events between contention refreshes) hoist the logarithm out of the draw
// loop. Results are bit-identical to Geometric(p): the clamps, the RNG
// consumption and the division all operate on the same values, the divisor
// is merely computed once instead of per draw.
func (r *RNG) GeometricFromLog(p, log1mP float64) int {
	const maxGeometric = 1 << 30
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return maxGeometric
	}
	u := r.Float64()
	g := math.Ceil(math.Log1p(-u) / log1mP)
	if g < 1 {
		return 1
	}
	if g > maxGeometric {
		return maxGeometric
	}
	return int(g)
}

// Exp returns an exponentially distributed draw with the given mean.
// Non-positive means yield 0.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return -mean * math.Log1p(-r.Float64())
}

// NormFloat64 returns a standard normal draw using the Marsaglia polar
// method. It is used only for small jitter terms in the app models, so the
// method's modest speed is irrelevant.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
