// Package pool provides the two worker-pool shapes used by every fan-out
// in the repository:
//
//   - Run, the atomic-counter pool (training pairs, experiment runs,
//     isolated profiling): jobs are claimed by an atomic increment instead
//     of a mutexed queue, and the first error stops the pool. Claim order
//     is scheduler-dependent, so it is only used where tasks are
//     independent and merged by index afterwards.
//
//   - ShardPool, the deterministic barrier pool behind the intra-run
//     parallel quantum engine: task i always belongs to shard i mod width,
//     the calling goroutine executes shard 0 itself, and Run returns only
//     after every shard finished (the quantum barrier). Because the
//     shard→task mapping is fixed and results are read after the barrier,
//     a run with width N is bit-identical to width 1. It originated in
//     internal/machine (cores sharded within one machine) and is shared
//     here so internal/fleet can apply the identical invariant one level
//     up (machines sharded within one cluster).
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes fn(0..n-1) across CPUs (inline when parallel is false or
// n <= 1), returning the first error. Remaining jobs are abandoned once an
// error occurs; in-flight jobs finish.
func Run(n int, parallel bool, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	workers := 1
	if parallel {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// shardJob is one worker's slice of a barrier step: run step(i) for every
// task i of shard `shard` (stride width), then signal the barrier.
type shardJob struct {
	shard int
	n     int
	step  func(i int)
	wg    *sync.WaitGroup
}

// ShardPool is a deterministic barrier pool: a fixed set of workers, a
// fixed task→shard mapping (task i mod width), and a barrier at the end of
// every Run. Construct with NewShardPool, release with Close. A nil
// ShardPool is valid and runs every task inline on the caller.
type ShardPool struct {
	jobs  chan shardJob
	width int
}

// NewShardPool starts width−1 worker goroutines (the caller acts as shard
// 0). A width of 1 or less returns nil — the inline pool — so callers can
// unconditionally construct and Close.
func NewShardPool(width int) *ShardPool {
	if width <= 1 {
		return nil
	}
	p := &ShardPool{jobs: make(chan shardJob), width: width}
	for w := 1; w < width; w++ {
		go func() {
			for job := range p.jobs {
				runShard(job.shard, p.width, job.n, job.step)
				job.wg.Done()
			}
		}()
	}
	return p
}

// Width returns the pool's worker count (1 for the nil inline pool).
func (p *ShardPool) Width() int {
	if p == nil {
		return 1
	}
	return p.width
}

// runShard executes every task of one shard in ascending index order.
func runShard(shard, width, n int, step func(i int)) {
	for i := shard; i < n; i += width {
		step(i)
	}
}

// Run executes step(0..n-1) sharded as i mod width and returns after all
// shards completed. step must touch only task-local state; the caller may
// read the results after Run returns, in any order, and observe the same
// values at any width.
func (p *ShardPool) Run(n int, step func(i int)) {
	if p == nil {
		runShard(0, 1, n, step)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p.width - 1)
	for s := 1; s < p.width; s++ {
		p.jobs <- shardJob{shard: s, n: n, step: step, wg: &wg}
	}
	runShard(0, p.width, n, step)
	wg.Wait()
}

// Close stops the workers. The pool must not be used afterwards. Safe on
// the nil inline pool.
func (p *ShardPool) Close() {
	if p != nil {
		close(p.jobs)
	}
}
