// Package pool provides the atomic-counter worker pool used by every
// fan-out in the repository (training pairs, experiment runs, isolated
// profiling): jobs are claimed by an atomic increment instead of a mutexed
// queue, and the first error stops the pool.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes fn(0..n-1) across CPUs (inline when parallel is false or
// n <= 1), returning the first error. Remaining jobs are abandoned once an
// error occurs; in-flight jobs finish.
func Run(n int, parallel bool, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	workers := 1
	if parallel {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
