package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllJobs(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		var hits [100]atomic.Int32
		if err := Run(len(hits), parallel, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallel=%v: job %d ran %d times", parallel, i, got)
			}
		}
	}
}

func TestRunStopsOnFirstError(t *testing.T) {
	want := errors.New("boom")
	var ran atomic.Int32
	err := Run(1000, true, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("pool did not stop early: ran %d jobs", n)
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(0, true, func(int) error { return errors.New("no") }); err != nil {
		t.Fatal(err)
	}
}
