package serve_test

// The serving differential gate: every byte POST /v1/place returns must be
// bit-identical to what the in-process PlaceOne produces on an independent
// policy instance — under concurrency (run these with -race), in both cache
// modes, through the batch endpoint, and across model hot-swaps.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/obs"
	"synpa/internal/pmu"
	"synpa/internal/predcache"
	"synpa/internal/serve"
)

// synthQueries builds a deterministic stream of placement queries that
// walks the serving path end to end: PMU samples from a seeded LCG, each
// query's Prev evolving under the reference policy's own decisions, so
// inversion, pair prediction, matching and hysteresis all fire.
func synthQueries(t *testing.T, model *core.Model, n int) []*serve.PlaceRequest {
	t.Helper()
	p := core.MustPolicy(model, core.PolicyOptions{})
	a := p.NewArena()

	const cores, apps = 4, 8
	lcg := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return lcg
	}
	prev := make([]int, apps)
	for i := range prev {
		prev[i] = i % cores
	}

	out := make([]*serve.PlaceRequest, 0, n)
	for q := 0; q < n; q++ {
		samples := make([][]uint64, apps)
		for i := range samples {
			row := make([]uint64, pmu.NumEvents)
			cycles := 20_000 + next()%5_000
			row[pmu.CPUCycles] = cycles
			row[pmu.StallFrontend] = next() % (cycles / 2)
			row[pmu.StallBackend] = next() % (cycles / 2)
			row[pmu.InstSpec] = cycles + next()%cycles
			row[pmu.InstRetired] = row[pmu.InstSpec] - next()%(row[pmu.InstSpec]/4)
			out := row // remaining fine-grained events: small deterministic values
			for e := range out {
				if out[e] == 0 {
					out[e] = next() % 1_000
				}
			}
			samples[i] = row
		}
		req := &serve.PlaceRequest{
			NumCores: cores,
			NumApps:  apps,
			Quantum:  q + 1,
			Prev:     append([]int(nil), prev...),
			Samples:  samples,
		}
		out2, err := serve.PlaceOne(p, a, req)
		if err != nil {
			t.Fatalf("synth query %d: %v", q, err)
		}
		prev = out2.Placement
		out = append(out, req)
	}
	return out
}

// inProcessBytes renders the reference answer exactly as the HTTP handler
// does: PlaceOne on an independent policy, then json.NewEncoder (one
// trailing newline).
func inProcessBytes(t *testing.T, p *core.Policy, a *core.Arena, q *serve.PlaceRequest) []byte {
	t.Helper()
	resp, err := serve.PlaceOne(p, a, q)
	if err != nil {
		t.Fatalf("in-process PlaceOne: %v", err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, raw
}

func newTestServer(t *testing.T, model *core.Model, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv, err := serve.New(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	return srv, hts
}

// TestPlaceDifferential is the acceptance gate: the HTTP response bytes of
// /v1/place equal the in-process bytes for every query, in both cache
// modes, with concurrent clients (run under -race).
func TestPlaceDifferential(t *testing.T) {
	model := core.PaperCoefficients()
	queries := synthQueries(t, model, 48)
	for _, shared := range []bool{false, true} {
		name := map[bool]string{false: "private", true: "shared"}[shared]
		t.Run(name, func(t *testing.T) {
			_, hts := newTestServer(t, model, serve.Config{SharedCache: shared})

			// Independent in-process reference: its own policy instance, its
			// own cache; agreement is decided by the bits, not shared state.
			ref := core.MustPolicy(model, core.PolicyOptions{})
			if shared {
				ref.SetSharedCache(predcache.NewShared(predcache.Options{}, 0))
			}

			const workers = 4
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					a := ref.NewArena()
					for qi := w; qi < len(queries); qi += workers {
						body, err := json.Marshal(queries[qi])
						if err != nil {
							t.Error(err)
							return
						}
						resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/place", body)
						if resp.StatusCode != http.StatusOK {
							t.Errorf("query %d: status %s: %s", qi, resp.Status, raw)
							return
						}
						want := inProcessBytes(t, ref, a, queries[qi])
						if !bytes.Equal(raw, want) {
							t.Errorf("query %d: HTTP response diverges from in-process\nhttp: %s\nref:  %s", qi, raw, want)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestBatchDifferential streams queries through /v1/place/batch and checks
// the JSONL answers line-for-line against in-process decisions, including
// a malformed line answered 1:1 in position by a structured error.
func TestBatchDifferential(t *testing.T) {
	model := core.PaperCoefficients()
	queries := synthQueries(t, model, 12)
	_, hts := newTestServer(t, model, serve.Config{BatchChunk: 5})

	const badLine = 7
	var in bytes.Buffer
	for qi, q := range queries {
		if qi == badLine {
			in.WriteString("{\"num_cores\": \"oops\"}\n")
			continue
		}
		b, err := json.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		in.Write(b)
		in.WriteByte('\n')
	}

	resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/place/batch", in.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %s: %s", resp.Status, raw)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) != len(queries) {
		t.Fatalf("batch returned %d lines for %d queries", len(lines), len(queries))
	}

	ref := core.MustPolicy(model, core.PolicyOptions{})
	a := ref.NewArena()
	for qi, line := range lines {
		if qi == badLine {
			var e serve.ErrorResponse
			if err := json.Unmarshal(line, &e); err != nil || e.Error == "" {
				t.Fatalf("line %d: want structured error, got %s", qi, line)
			}
			continue
		}
		want := bytes.TrimSuffix(inProcessBytes(t, ref, a, queries[qi]), []byte("\n"))
		if !bytes.Equal(line, want) {
			t.Fatalf("batch line %d diverges from in-process\nhttp: %s\nref:  %s", qi, line, want)
		}
	}
}

// TestHotSwapUnderLoad hammers /v1/place from several goroutines while the
// model is swapped repeatedly; every request must succeed (zero drops, no
// torn policy) and the generation must advance once per swap.
func TestHotSwapUnderLoad(t *testing.T) {
	model := core.PaperCoefficients()
	queries := synthQueries(t, model, 16)
	srv, hts := newTestServer(t, model, serve.Config{})

	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = b
	}

	// The swapped-in model: same shape, slightly different coefficients, so
	// old- and new-generation answers are both valid placements.
	model2 := core.PaperCoefficients()
	model2.Coef[0].Alpha += 0.001
	var modelBody bytes.Buffer
	if err := core.WriteModelJSON(&modelBody, model2); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const clients = 4
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/place", bodies[(w+i)%len(bodies)])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("place during swap: status %s: %s", resp.Status, raw)
					return
				}
				var pr serve.PlaceResponse
				if err := json.Unmarshal(raw, &pr); err != nil || len(pr.Placement) == 0 {
					t.Errorf("place during swap: bad body %s", raw)
					return
				}
			}
		}(w)
	}

	const swaps = 8
	for i := 0; i < swaps; i++ {
		resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/model", modelBody.Bytes())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: status %s: %s", i, resp.Status, raw)
		}
		var sr serve.SwapResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		if want := int64(i + 2); sr.Generation != want {
			t.Fatalf("swap %d: generation %d, want %d", i, sr.Generation, want)
		}
	}
	close(stop)
	wg.Wait()

	if gen := srv.Generation(); gen != swaps+1 {
		t.Fatalf("final generation %d, want %d", srv.Generation(), swaps+1)
	}
	resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/place", bodies[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap place: %s", resp.Status)
	}
	if got := resp.Header.Get("Synpad-Generation"); got != fmt.Sprint(swaps+1) {
		t.Fatalf("post-swap generation header %q, want %d (body %s)", got, swaps+1, raw)
	}
}

// TestErrors pins the failure-mode contract: malformed JSON and infeasible
// queries get 400 with a structured body, oversized payloads get 413, and
// bad models are rejected without disturbing the serving generation.
func TestErrors(t *testing.T) {
	model := core.PaperCoefficients()
	srv, hts := newTestServer(t, model, serve.Config{
		MaxRequestBytes: 2 << 10,
		MaxBatchBytes:   4 << 10,
	})

	assertError := func(t *testing.T, resp *http.Response, raw []byte, wantStatus int) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %s, want %d (body %s)", resp.Status, wantStatus, raw)
		}
		var e serve.ErrorResponse
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Fatalf("want structured error body, got %s", raw)
		}
	}

	t.Run("malformed-json", func(t *testing.T) {
		resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/place", []byte(`{"num_cores": `))
		assertError(t, resp, raw, http.StatusBadRequest)
	})
	t.Run("unknown-field", func(t *testing.T) {
		resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/place", []byte(`{"num_cores": 4, "num_apps": 2, "bogus": 1}`))
		assertError(t, resp, raw, http.StatusBadRequest)
	})
	t.Run("infeasible-query", func(t *testing.T) {
		resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/place", []byte(`{"num_cores": 2, "num_apps": 5}`))
		assertError(t, resp, raw, http.StatusBadRequest)
	})
	t.Run("oversized-place", func(t *testing.T) {
		big := fmt.Sprintf(`{"num_cores": 4, "num_apps": 2, "app_ids": [%s1]}`, strings.Repeat("1,", 4<<10))
		resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/place", []byte(big))
		assertError(t, resp, raw, http.StatusRequestEntityTooLarge)
	})
	t.Run("oversized-batch", func(t *testing.T) {
		body := bytes.Repeat([]byte(`{"num_cores": 4, "num_apps": 2}`+"\n"), 1<<10)
		resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/place/batch", body)
		assertError(t, resp, raw, http.StatusRequestEntityTooLarge)
	})
	t.Run("bad-model", func(t *testing.T) {
		resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/model", []byte(`{"categories": ["a"], "coefficients": []}`))
		assertError(t, resp, raw, http.StatusBadRequest)
		if srv.Generation() != 1 {
			t.Fatalf("failed swap advanced the generation to %d", srv.Generation())
		}
	})
}

// TestStatsAndHealth exercises /v1/stats and /healthz over both cache
// modes.
func TestStatsAndHealth(t *testing.T) {
	model := core.PaperCoefficients()
	queries := synthQueries(t, model, 4)
	for _, sharedMode := range []bool{false, true} {
		name := map[bool]string{false: "private", true: "shared"}[sharedMode]
		t.Run(name, func(t *testing.T) {
			_, hts := newTestServer(t, model, serve.Config{SharedCache: sharedMode})
			for _, q := range queries {
				b, _ := json.Marshal(q)
				if resp, raw := postJSON(t, hts.Client(), hts.URL+"/v1/place", b); resp.StatusCode != http.StatusOK {
					t.Fatalf("place: %s: %s", resp.Status, raw)
				}
			}

			resp, err := hts.Client().Get(hts.URL + "/v1/stats")
			if err != nil {
				t.Fatal(err)
			}
			var st serve.StatsResponse
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if st.Generation != 1 || st.Policy == "" {
				t.Fatalf("stats: %+v", st)
			}
			if want := map[bool]string{false: "private", true: "shared"}[sharedMode]; st.CacheMode != want {
				t.Fatalf("cache mode %q, want %q", st.CacheMode, want)
			}
			if sharedMode {
				if st.InvertCache == nil || st.InvertCache.Hits+st.InvertCache.Misses == 0 {
					t.Fatalf("shared mode reported no invert-cache traffic: %+v", st.InvertCache)
				}
			}
			if got := st.Metrics.Counters["synpad.place.requests"]; got != int64(len(queries)) {
				t.Fatalf("place.requests = %d, want %d", got, len(queries))
			}
			if h, ok := st.Metrics.Histograms["synpad.place.latency_ns"]; !ok || h.Count != uint64(len(queries)) {
				t.Fatalf("latency histogram: %+v", st.Metrics.Histograms)
			}

			resp, err = hts.Client().Get(hts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var hr serve.HealthResponse
			if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if !hr.OK || hr.Generation != 1 {
				t.Fatalf("healthz: %+v", hr)
			}
		})
	}
}

// TestGracefulDrain starts a real listener, fires concurrent requests and
// shuts down: every started request must complete, Serve must return
// http.ErrServerClosed, and the port must stop accepting.
func TestGracefulDrain(t *testing.T) {
	model := core.PaperCoefficients()
	queries := synthQueries(t, model, 4)
	srv, err := serve.New(model, serve.Config{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	url := "http://" + l.Addr().String()

	body, _ := json.Marshal(queries[0])
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := postJSON(t, http.DefaultClient, url+"/v1/place", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("in-flight request failed during drain: %s: %s", resp.Status, raw)
			}
		}()
	}
	wg.Wait() // all in flight completed before Shutdown below can cut them off

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	if _, err := http.Post(url+"/v1/place", "application/json", bytes.NewReader(body)); err == nil {
		t.Fatal("post-shutdown request succeeded; listener still accepting")
	}
}

// TestRequestFromStateRoundTrip pins the wire inversion the bench and the
// differential harness rely on: state -> request -> state reproduces every
// field and bit.
func TestRequestFromStateRoundTrip(t *testing.T) {
	st := &machine.QuantumState{
		Quantum:       3,
		NumCores:      4,
		NumApps:       5,
		AppIDs:        []int{7, 3, 9, 1, 4},
		Prev:          machine.Placement{0, 1, 2, machine.Unplaced, 3},
		Priorities:    []int{0, 1, 0, 2, 0},
		DispatchWidth: 4,
		SMTLevel:      2,
		Samples:       make([]pmu.Counters, 5),
	}
	for i := range st.Samples {
		for e := range st.Samples[i] {
			st.Samples[i][e] = uint64(i*100+e) * 0x0101010101010101 % (1 << 60)
		}
	}
	req := serve.RequestFromState(st)
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back serve.PlaceRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range st.Samples {
		for e := range st.Samples[i] {
			if back.Samples[i][e] != st.Samples[i][e] {
				t.Fatalf("sample[%d][%d]: %d != %d after round trip", i, e, back.Samples[i][e], st.Samples[i][e])
			}
		}
	}
}
