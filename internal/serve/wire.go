// Package serve is the placement-as-a-service HTTP surface: a long-lived
// daemon (cmd/synpad) that loads a trained interference model once and
// answers placement queries over the reentrant policy path — one read-mostly
// core.Policy, one core.Arena per request from a sync.Pool, an optional
// predcache.Shared warming across all in-flight requests.
//
// # Wire format
//
// Requests and responses are JSON. A placement query carries exactly the
// fields of machine.QuantumState: PMU sample deltas are uint64 and
// encoding/json round-trips integers exactly (digits, not float64), so the
// bits a query carries over HTTP are the bits PlaceR keys its memos with.
// Responses carry only float64 degradations and integer placements; Go
// marshals float64 via shortest-representation encoding, which parses back
// to the identical bits — equal values therefore imply equal bytes, the
// property the HTTP-vs-in-process differential gate compares.
//
// # Statelessness
//
// Serving queries are stateless by design: each request carries its own
// previous placement and PMU samples, and PlaceOne resets the arena's
// cross-request smoothing history before deciding, so a pooled arena
// answers exactly like a freshly built one. Cross-quantum smoothing is the
// client's to carry (resubmit the evolving Prev/Samples each quantum); what
// the pool and the shared cache retain between requests are only the
// exact-bit-keyed memos of pure functions — warm caches change latency,
// never a result bit.
package serve

import (
	"fmt"

	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/pmu"
	"synpa/internal/smtcore"
)

// PlaceRequest is one placement query: the machine.QuantumState of the
// deciding quantum, in wire form. NumCores and NumApps are required; the
// rest mirror QuantumState's optional views (a query without samples gets
// the arrival-order cold placement, exactly like the first quantum of a
// run).
type PlaceRequest struct {
	// NumCores is the machine size; NumApps the live-application count
	// (at most NumCores × the SMT level).
	NumCores int `json:"num_cores"`
	NumApps  int `json:"num_apps"`
	// SMTLevel is the hardware threads per core (0 selects the SMT2
	// default); DispatchWidth the core dispatch width (0 selects the
	// ThunderX2's 4).
	SMTLevel      int `json:"smt_level,omitempty"`
	DispatchWidth int `json:"dispatch_width,omitempty"`
	// Quantum is the 0-based index of the quantum about to execute.
	Quantum int `json:"quantum,omitempty"`
	// AppIDs carries stable app identities (dynamic live sets); nil means
	// index i is identity i.
	AppIDs []int `json:"app_ids,omitempty"`
	// Prev is the placement executed last quantum (-1 = unplaced); nil
	// before the first quantum.
	Prev []int `json:"prev,omitempty"`
	// Samples holds each app's PMU deltas over the previous quantum, one
	// row of pmu.NumEvents uint64 values per app; nil before the first
	// quantum.
	Samples [][]uint64 `json:"samples,omitempty"`
	// Priorities carries each app's class for priority-aware policies.
	Priorities []int `json:"priorities,omitempty"`
}

// PlaceResponse is one placement answer.
type PlaceResponse struct {
	// Placement maps each application index to its assigned core.
	Placement []int `json:"placement"`
	// Degradations predicts, per application, the slowdown it will suffer
	// under the returned placement (1.0 = runs at ST speed, solo). Omitted
	// for cold queries (no samples: nothing to predict from).
	Degradations []float64 `json:"degradations,omitempty"`
	// Policy names the deciding policy configuration.
	Policy string `json:"policy"`
}

// ErrorResponse is the structured error body every non-2xx answer carries.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Validate checks the query's shape against the QuantumState contract.
func (q *PlaceRequest) Validate() error {
	if q.NumCores <= 0 {
		return fmt.Errorf("num_cores must be positive (got %d)", q.NumCores)
	}
	level := q.SMTLevel
	if level == 0 {
		level = smtcore.DefaultSMTLevel
	}
	if level < 1 || level > smtcore.MaxSMTLevel {
		return fmt.Errorf("smt_level %d outside [1, %d]", q.SMTLevel, smtcore.MaxSMTLevel)
	}
	if q.NumApps <= 0 {
		return fmt.Errorf("num_apps must be positive (got %d)", q.NumApps)
	}
	if max := q.NumCores * level; q.NumApps > max {
		return fmt.Errorf("num_apps %d exceeds %d cores x SMT%d = %d hardware threads",
			q.NumApps, q.NumCores, level, max)
	}
	if q.AppIDs != nil && len(q.AppIDs) != q.NumApps {
		return fmt.Errorf("app_ids has %d entries for %d apps", len(q.AppIDs), q.NumApps)
	}
	if q.Prev != nil && len(q.Prev) != q.NumApps {
		return fmt.Errorf("prev has %d entries for %d apps", len(q.Prev), q.NumApps)
	}
	for i, c := range q.Prev {
		if c < machine.Unplaced || c >= q.NumCores {
			return fmt.Errorf("prev[%d] = %d outside [-1, %d)", i, c, q.NumCores)
		}
	}
	if q.Samples != nil {
		if len(q.Samples) != q.NumApps {
			return fmt.Errorf("samples has %d rows for %d apps", len(q.Samples), q.NumApps)
		}
		for i, row := range q.Samples {
			if len(row) != int(pmu.NumEvents) {
				return fmt.Errorf("samples[%d] has %d counters, want %d", i, len(row), pmu.NumEvents)
			}
		}
	}
	if q.Priorities != nil && len(q.Priorities) != q.NumApps {
		return fmt.Errorf("priorities has %d entries for %d apps", len(q.Priorities), q.NumApps)
	}
	return nil
}

// state converts the validated query into the QuantumState PlaceR consumes.
func (q *PlaceRequest) state() *machine.QuantumState {
	st := &machine.QuantumState{
		Quantum:       q.Quantum,
		NumCores:      q.NumCores,
		NumApps:       q.NumApps,
		AppIDs:        q.AppIDs,
		Priorities:    q.Priorities,
		SMTLevel:      q.SMTLevel,
		DispatchWidth: q.DispatchWidth,
	}
	if st.DispatchWidth == 0 {
		st.DispatchWidth = smtcore.DefaultConfig().DispatchWidth
	}
	if q.Prev != nil {
		st.Prev = machine.Placement(q.Prev)
	}
	if q.Samples != nil {
		st.Samples = make([]pmu.Counters, len(q.Samples))
		for i, row := range q.Samples {
			copy(st.Samples[i][:], row)
		}
	}
	return st
}

// RequestFromState converts a QuantumState into its wire form — the inverse
// of PlaceRequest.state, used by the loopback bench and the differential
// tests to ship recorded simulator queries over HTTP bit-exactly.
func RequestFromState(st *machine.QuantumState) *PlaceRequest {
	q := &PlaceRequest{
		Quantum:       st.Quantum,
		NumCores:      st.NumCores,
		NumApps:       st.NumApps,
		SMTLevel:      st.SMTLevel,
		DispatchWidth: st.DispatchWidth,
		AppIDs:        st.AppIDs,
		Prev:          st.Prev,
		Priorities:    st.Priorities,
	}
	if st.Samples != nil {
		q.Samples = make([][]uint64, len(st.Samples))
		for i := range st.Samples {
			q.Samples[i] = append([]uint64(nil), st.Samples[i][:]...)
		}
	}
	return q
}

// PlaceOne answers one placement query through the given policy and arena:
// validate, reset the arena's cross-request history, decide, and predict
// the per-app degradations under the decided placement. It is the single
// decision function behind both the HTTP handler and the in-process half of
// the differential gate — both sides run exactly this code, so the HTTP
// layer can only add transport, never decision drift.
func PlaceOne(p *core.Policy, a *core.Arena, q *PlaceRequest) (*PlaceResponse, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	a.Reset()
	st := q.state()
	place := p.PlaceR(a, st)
	return &PlaceResponse{
		Placement:    place,
		Degradations: degradations(p.Model(), a.LastSTEstimates(), place, st),
		Policy:       p.Name(),
	}, nil
}

// degradations predicts each application's slowdown under the decided
// placement from the arena's fresh ST estimates: 1.0 for a solo app, the
// forward model against the co-runner (mean co-runner vector above SMT2 —
// the grouped path's own idiom) otherwise. Returns nil for cold decisions
// (no model-driven estimates).
func degradations(m *core.Model, est [][]float64, place machine.Placement, st *machine.QuantumState) []float64 {
	n := st.NumApps
	if est == nil || len(est) < n {
		return nil
	}
	groups := place.PairsOf(st.NumCores)
	out := make([]float64, n)
	mean := make([]float64, m.K())
	for c := range groups {
		for _, i := range groups[c] {
			if i >= n {
				continue
			}
			co := 0
			for k := range mean {
				mean[k] = 0
			}
			for _, j := range groups[c] {
				if j == i || j >= n {
					continue
				}
				for k, v := range est[j] {
					mean[k] += v
				}
				co++
			}
			if co == 0 {
				out[i] = 1 // solo: runs at ST speed by definition
				continue
			}
			for k := range mean {
				mean[k] /= float64(co)
			}
			out[i] = m.PredictSlowdown(est[i], mean)
		}
	}
	return out
}
