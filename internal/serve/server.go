package serve

// The daemon side: HTTP handlers, the serving generation with its arena
// pool, atomic model hot-swap, admission/size limits and graceful drain.
//
// # Hot-swap without torn policies
//
// Everything a request needs to decide — the policy, its model, its cache
// and its arena pool — lives in one immutable serving value behind an
// atomic.Pointer. A request loads the pointer once and works off that
// snapshot for its whole lifetime; POST /v1/model builds a complete new
// serving and Stores it. In-flight requests finish on the generation they
// started on, new requests see the new one, and no request can ever observe
// half a swap — the bit-identity invariant extended to reconfiguration.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/obs"
	"synpa/internal/predcache"
)

// Config tunes a placement server. The zero value serves with private
// per-request caches and production-safe limits.
type Config struct {
	// Policy tunes the SYNPA policy built around each installed model
	// (matcher, extractor, cache options — core.PolicyOptions semantics).
	Policy core.PolicyOptions
	// SharedCache, when true, installs one predcache.Shared per serving
	// generation so all in-flight requests warm one memo (bit-identical
	// by construction); false gives each pooled arena private caches.
	SharedCache bool
	// CacheShards is the shared cache's shard count (0 = predcache
	// default); ignored without SharedCache.
	CacheShards int
	// MaxRequestBytes bounds one /v1/place, /v1/model body or one batch
	// line (default 1 MiB).
	MaxRequestBytes int64
	// MaxBatchBytes bounds a whole /v1/place/batch stream (default 64 MiB).
	MaxBatchBytes int64
	// MaxConcurrent bounds the placement requests decided at once; excess
	// requests are rejected with 503 rather than queued (default
	// 4×GOMAXPROCS).
	MaxConcurrent int
	// BatchChunk is how many batch lines are decoded, warmed through one
	// InvertBatch and answered per cycle (default 64).
	BatchChunk int
	// DrainTimeout bounds Shutdown's graceful drain when the caller's
	// context has no deadline (default 10s).
	DrainTimeout time.Duration
	// Registry receives the serving metrics (default obs.Global(), so a
	// loopback bench lands them in BENCH_*.json automatically).
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 64 << 20
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.BatchChunk <= 0 {
		c.BatchChunk = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.Global()
	}
	return c
}

// serving is one immutable generation: a policy, its (optional) shared
// cache and the arena pool serving it. Swaps replace the whole value.
type serving struct {
	policy *core.Policy
	gen    int64
	arenas sync.Pool
}

func newServing(m *core.Model, gen int64, cfg Config) (*serving, error) {
	p, err := core.NewPolicy(m, cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.SharedCache {
		p.SetSharedCache(predcache.NewShared(cfg.Policy.Cache, cfg.CacheShards))
	}
	sv := &serving{policy: p, gen: gen}
	sv.arenas.New = func() any { return p.NewArena() }
	return sv, nil
}

func (sv *serving) arena() *core.Arena    { return sv.arenas.Get().(*core.Arena) }
func (sv *serving) release(a *core.Arena) { sv.arenas.Put(a) }

// metrics are the server's resolved registry handles: request counters,
// the decision-latency histogram and the generation gauge.
type metrics struct {
	placeRequests, placeErrors               *obs.Counter
	batchRequests, batchQueries, batchErrors *obs.Counter
	swaps, swapErrors, rejected              *obs.Counter
	generation                               *obs.Gauge
	placeLatency                             *obs.Histogram
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		placeRequests: r.Counter("synpad.place.requests"),
		placeErrors:   r.Counter("synpad.place.errors"),
		batchRequests: r.Counter("synpad.batch.requests"),
		batchQueries:  r.Counter("synpad.batch.queries"),
		batchErrors:   r.Counter("synpad.batch.errors"),
		swaps:         r.Counter("synpad.model.swaps"),
		swapErrors:    r.Counter("synpad.model.errors"),
		rejected:      r.Counter("synpad.rejected"),
		generation:    r.Gauge("synpad.generation"),
		placeLatency:  r.Histogram("synpad.place.latency_ns"),
	}
}

// Server is the placement daemon: build with New, expose via Handler or
// Serve, reconfigure live through POST /v1/model, stop with Shutdown.
type Server struct {
	cfg Config
	m   metrics

	cur    atomic.Pointer[serving]
	gen    atomic.Int64
	swapMu sync.Mutex // serialises generation bumps, never request traffic

	sem chan struct{}
	hs  *http.Server
	mux *http.ServeMux
}

// New builds a placement server around an initial model (generation 1).
func New(model *core.Model, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, m: newMetrics(cfg.Registry), sem: make(chan struct{}, cfg.MaxConcurrent)}
	sv, err := newServing(model, s.gen.Add(1), cfg)
	if err != nil {
		return nil, err
	}
	s.cur.Store(sv)
	s.m.generation.Set(sv.gen)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/place", s.handlePlace)
	s.mux.HandleFunc("POST /v1/place/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/model", s.handleModel)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.hs = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s, nil
}

// Handler exposes the server's routes, for callers embedding the placement
// surface into their own http.Server (or an httptest one).
func (s *Server) Handler() http.Handler { return s.mux }

// Generation returns the current serving generation (1-based; each
// successful model swap increments it).
func (s *Server) Generation() int64 { return s.cur.Load().gen }

// Policy returns the currently serving policy — the in-process half of the
// HTTP-vs-in-process differential tests.
func (s *Server) Policy() *core.Policy { return s.cur.Load().policy }

// Serve accepts connections on l until Shutdown. It blocks, returning
// http.ErrServerClosed after a graceful stop (net/http semantics).
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// Shutdown gracefully drains the server: stop accepting, let in-flight
// requests finish, give up at the context deadline (or the configured
// DrainTimeout when ctx has none).
func (s *Server) Shutdown(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}
	return s.hs.Shutdown(ctx)
}

// acquire admits one placement request under the concurrency bound, or
// answers 503 and reports false. Rejection over queueing: a placement
// server's callers hold schedulers; a bounded-latency "try elsewhere" beats
// an unbounded queue.
func (s *Server) acquire(w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		s.m.rejected.Add(1)
		writeJSON(w, http.StatusServiceUnavailable,
			ErrorResponse{Error: fmt.Sprintf("server at its concurrency limit (%d in flight)", s.cfg.MaxConcurrent)})
		return false
	}
}

func (s *Server) releaseSlot() { <-s.sem }

// handlePlace answers POST /v1/place: one query, one decision, one arena
// from the generation's pool.
func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	s.m.placeRequests.Add(1)
	if !s.acquire(w) {
		return
	}
	defer s.releaseSlot()

	var q PlaceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		s.m.placeErrors.Add(1)
		writeJSON(w, decodeStatus(err), ErrorResponse{Error: "parsing request: " + err.Error()})
		return
	}

	sv := s.cur.Load() // one snapshot per request: the hot-swap contract
	a := sv.arena()
	t0 := time.Now()
	resp, err := PlaceOne(sv.policy, a, &q)
	s.m.placeLatency.Observe(float64(time.Since(t0).Nanoseconds()))
	sv.release(a)
	if err != nil {
		s.m.placeErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Synpad-Generation", strconv.FormatInt(sv.gen, 10))
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch answers POST /v1/place/batch: a JSONL stream of PlaceRequests
// in, the matching JSONL stream of PlaceResponses out, strictly 1:1 and in
// order (a malformed line yields an ErrorResponse line, not a dropped one).
// Lines are processed in chunks: each chunk's model inversions are warmed
// through one InvertBatch before the per-query decisions, so duplicate ST
// vectors across the chunk cost one Newton solve.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.m.batchRequests.Add(1)
	if r.ContentLength > s.cfg.MaxBatchBytes {
		s.m.batchErrors.Add(1)
		writeJSON(w, http.StatusRequestEntityTooLarge,
			ErrorResponse{Error: fmt.Sprintf("batch body %d bytes exceeds the %d-byte limit", r.ContentLength, s.cfg.MaxBatchBytes)})
		return
	}
	if !s.acquire(w) {
		return
	}
	defer s.releaseSlot()

	sv := s.cur.Load()
	a := sv.arena()
	defer sv.release(a)

	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	sc.Buffer(make([]byte, 64<<10), int(s.cfg.MaxRequestBytes))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Synpad-Generation", strconv.FormatInt(sv.gen, 10))
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	enc := json.NewEncoder(bw)

	type line struct {
		q   *PlaceRequest
		err error
	}
	chunk := make([]line, 0, s.cfg.BatchChunk)
	sts := make([]*machine.QuantumState, 0, s.cfg.BatchChunk)

	flush := func() error {
		sts = sts[:0]
		for _, ln := range chunk {
			if ln.err == nil && ln.q.Validate() == nil {
				sts = append(sts, ln.q.state())
			}
		}
		sv.policy.WarmInversions(a, sts)
		for _, ln := range chunk {
			if ln.err != nil {
				s.m.batchErrors.Add(1)
				if err := enc.Encode(ErrorResponse{Error: ln.err.Error()}); err != nil {
					return err
				}
				continue
			}
			t0 := time.Now()
			resp, err := PlaceOne(sv.policy, a, ln.q)
			s.m.placeLatency.Observe(float64(time.Since(t0).Nanoseconds()))
			if err != nil {
				s.m.batchErrors.Add(1)
				if err := enc.Encode(ErrorResponse{Error: err.Error()}); err != nil {
					return err
				}
				continue
			}
			s.m.batchQueries.Add(1)
			if err := enc.Encode(resp); err != nil {
				return err
			}
		}
		chunk = chunk[:0]
		return nil
	}

	for sc.Scan() {
		raw := sc.Bytes()
		ln := line{q: &PlaceRequest{}}
		if err := json.Unmarshal(raw, ln.q); err != nil {
			ln = line{err: fmt.Errorf("parsing request: %w", err)}
		}
		chunk = append(chunk, ln)
		if len(chunk) >= s.cfg.BatchChunk {
			if err := flush(); err != nil {
				return // client gone; nothing sensible left to write
			}
		}
	}
	if err := sc.Err(); err != nil {
		// Mid-stream failure (line over MaxRequestBytes, body over
		// MaxBatchBytes, transport error) after the 200 header is already
		// out: degrade to a trailing error line so the client sees a
		// structured reason instead of silence.
		s.m.batchErrors.Add(1)
		chunk = append(chunk, line{err: fmt.Errorf("batch stream aborted: %w", err)})
	}
	_ = flush()
}

// handleModel answers POST /v1/model: parse, validate, build a complete new
// serving generation and publish it atomically. In-flight requests keep the
// snapshot they loaded; nothing is dropped or torn.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	m, err := core.ReadModelJSON(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		s.m.swapErrors.Add(1)
		writeJSON(w, decodeStatus(err), ErrorResponse{Error: err.Error()})
		return
	}
	s.swapMu.Lock()
	sv, err := newServing(m, s.gen.Add(1), s.cfg)
	if err == nil {
		s.cur.Store(sv)
		s.m.generation.Set(sv.gen)
	}
	s.swapMu.Unlock()
	if err != nil {
		s.m.swapErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	s.m.swaps.Add(1)
	writeJSON(w, http.StatusOK, SwapResponse{Generation: sv.gen, Categories: m.K(), Policy: sv.policy.Name()})
}

// SwapResponse is POST /v1/model's success body.
type SwapResponse struct {
	Generation int64  `json:"generation"`
	Categories int    `json:"categories"`
	Policy     string `json:"policy"`
}

// CacheStat is one memo's traffic in a StatsResponse.
type CacheStat struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Resets  uint64 `json:"resets"`
	Entries int    `json:"entries"`
}

// StatsResponse is GET /v1/stats's body: the serving identity, the shared
// cache's traffic (shared mode only — private per-arena memo counts live
// and die with their pooled arenas) and the full metrics registry snapshot
// (request counters, decision-latency histogram).
type StatsResponse struct {
	Generation  int64        `json:"generation"`
	Policy      string       `json:"policy"`
	CacheMode   string       `json:"cache_mode"`
	InvertCache *CacheStat   `json:"invert_cache,omitempty"`
	PairCache   *CacheStat   `json:"pair_cache,omitempty"`
	Metrics     obs.Snapshot `json:"metrics"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sv := s.cur.Load()
	resp := StatsResponse{
		Generation: sv.gen,
		Policy:     sv.policy.Name(),
		CacheMode:  "private",
		Metrics:    s.cfg.Registry.Snapshot(),
	}
	if shared := sv.policy.SharedCache(); shared != nil {
		resp.CacheMode = "shared"
		inv, pair := shared.Stats()
		invN, pairN := shared.Entries()
		resp.InvertCache = &CacheStat{Hits: inv.Hits, Misses: inv.Misses, Resets: inv.Resets, Entries: invN}
		resp.PairCache = &CacheStat{Hits: pair.Hits, Misses: pair.Misses, Resets: pair.Resets, Entries: pairN}
	}
	writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is GET /healthz's body.
type HealthResponse struct {
	OK         bool  `json:"ok"`
	Generation int64 `json:"generation"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{OK: true, Generation: s.cur.Load().gen})
}

// decodeStatus maps a request-decoding error to its HTTP status: the body
// hitting MaxBytesReader's limit is 413, anything else malformed input.
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
