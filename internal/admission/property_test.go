// Machine-level property tests for the admission disciplines: randomized
// Poisson traces are run through machine.RunDynamic across SMT levels 1-4
// and the disciplines' defining invariants are checked on the recorded
// admission times — capacity is never exceeded, FIFO admits in arrival
// order and is reproduced exactly both by the nil-admission default and by
// the Priority discipline when all classes are equal, backfilling never
// admits past a still-waiting head, and aging bounds starvation where
// strict classes starve.
package admission_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"synpa/internal/admission"
	"synpa/internal/machine"
	"synpa/internal/sched"
	"synpa/internal/workload"
)

// propMachineCfg builds a small machine at the given SMT level: two cores
// keep the runs fast while still exercising multi-core placement.
func propMachineCfg(level int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	cfg.Core.SMTLevel = level
	cfg.QuantumCycles = 4000
	return cfg
}

// propTrace generates a deterministic heavy mixed-priority trace: offered
// load far beyond two cores, so the waiting queue is persistent and the
// admission discipline actually decides something.
func propTrace(seed uint64, level int) workload.Trace {
	pool := []string{"mcf", "leela_r", "lbm_r", "povray_r"}
	mix := []workload.ClassShare{
		{Priority: 0, Weight: 1, Share: 0.5, Work: 0.5},
		{Priority: 1, Weight: 2, Share: 0.3, Work: 0.2},
		{Priority: 3, Weight: 4, Share: 0.2, Work: 0.3},
	}
	name := fmt.Sprintf("prop-%d-smt%d", seed, level)
	return workload.PoissonTraceMixed(name, seed, pool, 9, 1200, 0.4, mix)
}

// runProp executes one trace under one admission discipline on a fresh
// machine (Linux placement: the admission layer, not placement, is under
// test).
func runProp(t *testing.T, cfg machine.Config, tr workload.Trace, adm admission.Policy) *machine.DynamicResult {
	t.Helper()
	tc := workload.NewTargetCache(cfg, 10, 7)
	work, _, err := tc.DynamicWork(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunDynamic(work, sched.Linux{}, machine.DynamicOptions{
		Seed:      11,
		Admission: adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// headRank orders jobs the way Backfill picks its head: class first, then
// arrival, then trace index.
func headRank(res *machine.DynamicResult, a, b int) bool {
	ja, jb := res.Apps[a], res.Apps[b]
	if ja.Priority != jb.Priority {
		return ja.Priority > jb.Priority
	}
	if ja.ArriveAt != jb.ArriveAt {
		return ja.ArriveAt < jb.ArriveAt
	}
	return a < b
}

func TestAdmissionProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("runs randomized dynamic workloads at four SMT levels")
	}
	for level := 1; level <= 4; level++ {
		for seed := uint64(1); seed <= 3; seed++ {
			level, seed := level, seed
			t.Run(fmt.Sprintf("smt%d/seed%d", level, seed), func(t *testing.T) {
				cfg := propMachineCfg(level)
				hwThreads := cfg.HWThreads()
				tr := propTrace(seed, level)

				fifo := runProp(t, cfg, tr, admission.FIFO{})
				if fifo.Deferred == 0 {
					t.Fatalf("trace never queued: the property runs are not exercising admission")
				}

				for _, name := range admission.Names() {
					adm, err := admission.ByName(name)
					if err != nil {
						t.Fatal(err)
					}
					res := runProp(t, cfg, tr, adm)

					// Capacity: no admission ever exceeds the hardware
					// threads.
					if res.PeakLiveApps > hwThreads {
						t.Errorf("%s: %d live apps on %d hardware threads", name, res.PeakLiveApps, hwThreads)
					}

					// Every discipline admits every arrival eventually in
					// an unbounded run (the default bound is far beyond
					// these tiny traces): no starvation in a drained
					// system.
					for i := range res.Apps {
						if !res.Apps[i].Admitted {
							t.Errorf("%s: app %d (%s) never admitted", name, i, res.Apps[i].Name)
						}
					}

					if name == "backfill" {
						checkBackfillHeadProtected(t, res)
					}
				}

				// FIFO admits in arrival order: sorted by (ArriveAt, trace
				// index), admission times never decrease.
				order := make([]int, len(fifo.Apps))
				for i := range order {
					order[i] = i
				}
				sort.SliceStable(order, func(a, b int) bool {
					return fifo.Apps[order[a]].ArriveAt < fifo.Apps[order[b]].ArriveAt
				})
				var lastAdmit uint64
				for _, gi := range order {
					if a := fifo.Apps[gi]; a.Admitted {
						if a.AdmittedAt < lastAdmit {
							t.Errorf("fifo: app %d admitted at %d after a later arrival was admitted at %d",
								gi, a.AdmittedAt, lastAdmit)
						}
						lastAdmit = a.AdmittedAt
					}
				}

				// The nil-admission default is FIFO, bit for bit.
				def := runProp(t, cfg, tr, nil)
				def.Admission = fifo.Admission // names differ trivially ("fifo" both ways)
				if !reflect.DeepEqual(def, fifo) {
					t.Error("nil admission diverged from explicit FIFO")
				}

				// Priority with all classes equal is FIFO, bit for bit.
				flat := tr
				flat.Entries = append([]workload.TraceEntry(nil), tr.Entries...)
				for i := range flat.Entries {
					flat.Entries[i].Priority = 0
					flat.Entries[i].Weight = 0
				}
				flatFIFO := runProp(t, cfg, flat, admission.FIFO{})
				flatPrio := runProp(t, cfg, flat, admission.Priority{})
				flatPrio.Admission = flatFIFO.Admission
				if !reflect.DeepEqual(flatPrio, flatFIFO) {
					t.Error("equal-class priority admission diverged from FIFO")
				}
			})
		}
	}
}

// checkBackfillHeadProtected verifies the EASY guarantee on the recorded
// admission times: whenever a batch of jobs is admitted at time t, the
// top-ranked job among the batch and everything still waiting at t is in
// the batch — no job ever backfills past a still-waiting head.
func checkBackfillHeadProtected(t *testing.T, res *machine.DynamicResult) {
	t.Helper()
	times := map[uint64][]int{}
	for i := range res.Apps {
		if res.Apps[i].Admitted {
			times[res.Apps[i].AdmittedAt] = append(times[res.Apps[i].AdmittedAt], i)
		}
	}
	for at, batch := range times {
		// The candidate set: the batch plus every job that had arrived by
		// at but was admitted strictly later (or never).
		cands := append([]int(nil), batch...)
		for i := range res.Apps {
			a := res.Apps[i]
			if a.ArriveAt > at {
				continue
			}
			if !a.Admitted || a.AdmittedAt > at {
				cands = append(cands, i)
			}
		}
		head := cands[0]
		for _, c := range cands[1:] {
			if headRank(res, c, head) {
				head = c
			}
		}
		inBatch := false
		for _, b := range batch {
			if b == head {
				inBatch = true
				break
			}
		}
		if !inBatch {
			t.Errorf("backfill admitted %v at %d while head job %d (class %d, arrived %d) kept waiting",
				batch, at, head, res.Apps[head].Priority, res.Apps[head].ArriveAt)
		}
	}
}

// TestAgingBoundsStarvation constructs the classic starvation scenario —
// one long batch job behind a continuous stream of urgent arrivals on a
// saturated machine — and checks (a) strict classes (aging disabled)
// starve the batch job for the whole stream, (b) aging admits it within
// the computable bound Δclass·AgingCycles + one service interval.
func TestAgingBoundsStarvation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a saturated dynamic workload")
	}
	cfg := propMachineCfg(2) // 2 cores × SMT2 = 4 threads
	const (
		deltaClass = 3
		aging      = int64(30_000)
	)
	// Four urgent seed jobs fill the machine at t=0; the batch victim
	// arrives just after; a stream of urgent jobs keeps the machine
	// saturated long past the aging horizon.
	tr := workload.Trace{Name: "starve"}
	tr.Entries = append(tr.Entries, workload.TraceEntry{App: "leela_r", ArriveAt: 1, Work: 0.4}) // victim, class 0
	for i := 0; i < 24; i++ {
		at := uint64(0) // the first four urgent jobs fill the machine at t=0
		if i >= 4 {
			at = uint64(i-3) * 4000
		}
		tr.Entries = append(tr.Entries, workload.TraceEntry{
			App:      []string{"mcf", "povray_r"}[i%2],
			ArriveAt: at,
			Work:     0.3,
			Priority: deltaClass,
			Weight:   2,
		})
	}

	strict := runProp(t, cfg, tr, admission.Priority{AgingCycles: -1})
	aged := runProp(t, cfg, tr, admission.Priority{AgingCycles: aging})

	victimStrict, victimAged := strict.Apps[0], aged.Apps[0]
	if !victimAged.Admitted {
		t.Fatal("aged run never admitted the victim")
	}
	if victimStrict.Admitted && victimStrict.AdmittedAt <= victimAged.AdmittedAt {
		t.Fatalf("strict classes admitted the victim at %d, not later than aging's %d: the scenario exerts no starvation pressure",
			victimStrict.AdmittedAt, victimAged.AdmittedAt)
	}
	// The computable bound: after Δclass·aging cycles the victim's
	// effective priority ties the stream (and its earlier arrival wins the
	// tie), so it is the queue head; it is admitted at the next thread
	// release, which is at most one service interval away. The urgent jobs
	// run 0.3×10 reference quanta ≈ 12k isolated cycles; 4 quanta of SMT
	// slowdown slack is generous.
	bound := victimAged.ArriveAt + uint64(deltaClass)*uint64(aging) + 4*cfg.QuantumCycles
	if wait := victimAged.AdmittedAt; wait > bound {
		t.Fatalf("aged victim admitted at %d, beyond the computable bound %d", wait, bound)
	}
}
