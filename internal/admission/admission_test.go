package admission

import (
	"reflect"
	"testing"
)

func jobs(js ...Job) []Job { return js }

func TestFIFOIdentityOrder(t *testing.T) {
	w := jobs(
		Job{ID: 7, ArriveAt: 0, Work: 100},
		Job{ID: 3, ArriveAt: 5, Work: 1, Priority: 9},
		Job{ID: 1, ArriveAt: 9, Work: 50},
	)
	got := FIFO{}.Admit(w, nil, 2, 10)
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("FIFO order = %v, want identity", got)
	}
}

func TestSJFOrdersByRemainingWork(t *testing.T) {
	w := jobs(
		Job{ID: 0, ArriveAt: 0, Work: 300},
		Job{ID: 1, ArriveAt: 1, Work: 100},
		Job{ID: 2, ArriveAt: 2, Work: 200},
		Job{ID: 3, ArriveAt: 3, Work: 100}, // ties with ID 1; later arrival loses
	)
	got := SJF{}.Admit(w, nil, 4, 10)
	if !reflect.DeepEqual(got, []int{1, 3, 2, 0}) {
		t.Fatalf("SJF order = %v, want [1 3 2 0]", got)
	}
}

func TestPriorityStrictOrder(t *testing.T) {
	w := jobs(
		Job{ID: 0, ArriveAt: 0, Priority: 0, Work: 1},
		Job{ID: 1, ArriveAt: 1, Priority: 2, Work: 500},
		Job{ID: 2, ArriveAt: 2, Priority: 1, Work: 5},
	)
	// Aging disabled: class order, ties FIFO.
	got := Priority{AgingCycles: -1}.Admit(w, nil, 3, 3)
	if !reflect.DeepEqual(got, []int{1, 2, 0}) {
		t.Fatalf("strict priority order = %v, want [1 2 0]", got)
	}
}

func TestPriorityAgingPromotes(t *testing.T) {
	p := Priority{AgingCycles: 100}
	w := jobs(
		Job{ID: 0, ArriveAt: 0, Priority: 0},   // waited 250 → +2 levels
		Job{ID: 1, ArriveAt: 240, Priority: 1}, // waited 10 → +0
	)
	got := p.Admit(w, nil, 1, 250)
	if got[0] != 0 {
		t.Fatalf("aged class-0 job not promoted over fresh class-1 job: order %v", got)
	}
	// Same queue observed early: class order still wins.
	got = p.Admit(w[:1], nil, 1, 50)
	if got[0] != 0 {
		t.Fatalf("singleton order %v", got)
	}
}

func TestPriorityEqualClassesIsFIFO(t *testing.T) {
	// With equal classes, aging is monotone in waiting time, so the aged
	// order degenerates to arrival order at every observation time.
	w := jobs(
		Job{ID: 4, ArriveAt: 3, Priority: 2, Work: 9},
		Job{ID: 2, ArriveAt: 7, Priority: 2, Work: 1},
		Job{ID: 9, ArriveAt: 7, Priority: 2, Work: 5},
		Job{ID: 1, ArriveAt: 400, Priority: 2, Work: 2},
	)
	fifo := FIFO{}.Admit(w, nil, 4, 500)
	for _, aging := range []int64{0, -1, 50, DefaultAgingCycles} {
		got := Priority{AgingCycles: aging}.Admit(w, nil, 4, 500)
		if !reflect.DeepEqual(got, fifo) {
			t.Fatalf("aging=%d: equal-class priority order %v != FIFO %v", aging, got, fifo)
		}
	}
}

func TestBackfillHeadFirstThenShortest(t *testing.T) {
	w := jobs(
		Job{ID: 0, ArriveAt: 0, Priority: 0, Work: 10}, // shortest, but not head
		Job{ID: 1, ArriveAt: 1, Priority: 3, Work: 900},
		Job{ID: 2, ArriveAt: 2, Priority: 3, Work: 800}, // class tie: ID 1 arrived earlier
		Job{ID: 3, ArriveAt: 3, Priority: 1, Work: 20},
	)
	got := Backfill{}.Admit(w, nil, 4, 5)
	// Head is ID 1 (top class, oldest); the rest shortest-first.
	if !reflect.DeepEqual(got, []int{1, 0, 3, 2}) {
		t.Fatalf("backfill order = %v, want [1 0 3 2]", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range append(Names(), "") {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		want := name
		if want == "" {
			want = "fifo"
		}
		if p.Name() != want {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("easy"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestValidateOrder(t *testing.T) {
	if err := Validate([]int{0, 2, 1}, 3); err != nil {
		t.Fatal(err)
	}
	for name, order := range map[string][]int{
		"out of range": {0, 3},
		"negative":     {-1},
		"duplicate":    {1, 1},
		"too long":     {0, 1, 2, 0},
	} {
		if err := Validate(order, 3); err == nil {
			t.Errorf("%s: order %v validated", name, order)
		}
	}
}

// TestDeterminism: every discipline must return the same order for the
// same inputs — admission is part of the reproducibility contract.
func TestDeterminism(t *testing.T) {
	w := jobs(
		Job{ID: 0, ArriveAt: 3, Priority: 1, Work: 70},
		Job{ID: 1, ArriveAt: 3, Priority: 1, Work: 70},
		Job{ID: 2, ArriveAt: 0, Priority: 2, Work: 10},
		Job{ID: 3, ArriveAt: 9, Priority: 0, Work: 90},
	)
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := p.Admit(w, nil, 2, 100)
		b := p.Admit(w, nil, 2, 100)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: non-deterministic order %v vs %v", name, a, b)
		}
		if err := Validate(a, len(w)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
