package admission

import (
	"encoding/binary"
	"reflect"
	"sort"
	"testing"
)

// decodeJobs builds a deterministic job list from fuzz bytes: ten bytes
// per job (arrival, priority, weight, work), bounded fields so the
// disciplines see realistic-but-adversarial queues (duplicate arrivals,
// zero work, ties everywhere). The queue is returned in (ArriveAt, ID)
// order with sequential IDs — the runner's documented waiting-queue
// invariant, and the precondition of the FIFO-equivalence properties.
func decodeJobs(data []byte) (waiting []Job, now uint64) {
	if len(data) >= 8 {
		now = binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
	}
	for i := 0; i+10 <= len(data) && len(waiting) < 64; i += 10 {
		waiting = append(waiting, Job{
			ArriveAt: uint64(binary.LittleEndian.Uint32(data[i : i+4])),
			Priority: int(binary.LittleEndian.Uint16(data[i+4 : i+6])),
			Weight:   float64(data[i+6]),
			Work:     uint64(binary.LittleEndian.Uint16(data[i+7 : i+9])),
		})
	}
	sort.SliceStable(waiting, func(a, b int) bool { return waiting[a].ArriveAt < waiting[b].ArriveAt })
	for i := range waiting {
		waiting[i].ID = i
	}
	return waiting, now
}

// FuzzAdmit drives every discipline with adversarial queues and checks the
// structural contract: no panic, a valid order (in-range, duplicate-free),
// full coverage of the queue by the built-ins, determinism, FIFO identity,
// and the equal-class Priority ≡ FIFO equivalence.
func FuzzAdmit(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 8+10*3))
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff" + "aaaaaaaaaabbbbbbbbbbcccccccccc"))
	seed := make([]byte, 8+10*5)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		waiting, now := decodeJobs(data)
		if len(waiting) == 0 {
			return
		}
		free := 1 + int(now%uint64(len(waiting)+1))
		for _, name := range Names() {
			p, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			order := p.Admit(waiting, nil, free, now)
			if err := Validate(order, len(waiting)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(order) != len(waiting) {
				t.Fatalf("%s: built-in discipline returned %d of %d jobs", name, len(order), len(waiting))
			}
			again := p.Admit(waiting, nil, free, now)
			if !reflect.DeepEqual(order, again) {
				t.Fatalf("%s: non-deterministic order", name)
			}
		}
		// FIFO is the identity over the queue.
		fifo := FIFO{}.Admit(waiting, nil, free, now)
		for i, idx := range fifo {
			if idx != i {
				t.Fatalf("fifo order %v is not the identity", fifo)
			}
		}
		// With every class equal, aged priority degenerates to FIFO.
		flat := append([]Job(nil), waiting...)
		for i := range flat {
			flat[i].Priority = 0
		}
		if got := (Priority{}).Admit(flat, nil, free, now); !reflect.DeepEqual(got, fifo) {
			t.Fatalf("equal-class priority order %v != FIFO %v", got, fifo)
		}
		// Backfill's first admission is the head: nothing waiting outranks
		// it by (class, arrival, ID).
		bf := Backfill{}.Admit(waiting, nil, free, now)
		head := waiting[bf[0]]
		for _, j := range waiting {
			if j.ID != head.ID && backfillHeadBefore(j, head) {
				t.Fatalf("backfill head %+v outranked by %+v", head, j)
			}
		}
	})
}
