// Package admission makes the open-system admission queue a policy surface.
//
// The dynamic runner (machine.RunDynamic) admits arrivals whenever hardware
// threads are free; when demand exceeds capacity, arrivals wait. Which
// waiting application gets the next free thread is an allocation decision in
// its own right — scheduling-order studies (e.g. AMTHA, "Automatic Mapping
// Tasks to Cores") show admission order, not just placement, dominates
// response time under contention — so the queue discipline is pluggable
// here, mirroring how thread-to-core placement is pluggable via
// machine.Policy.
//
// Four disciplines are provided:
//
//   - FIFO: arrival order, bit-identical to the runner's historical
//     behaviour (the golden-regression harness and the differential tests
//     pin this).
//   - SJF: shortest job first, on remaining reference work.
//   - Priority: strict priority classes with configurable aging, so a
//     starved low-priority job eventually outranks fresh high-priority
//     arrivals (every queued job is admitted within a computable bound).
//   - Backfill: EASY-style backfilling over the priority queue — the head
//     job's start is protected, and the remaining free threads are
//     backfilled shortest-job-first.
//
// A note on the EASY guarantee at unit width: every job in this system
// occupies exactly one hardware thread, so the queue head can start the
// moment any thread is free. Backfill therefore admits the head before any
// backfill candidate within an admission round, and a candidate can only be
// admitted when the head already holds a thread or the machine is full —
// which means no backfilled job can ever delay the head's earliest start.
// The reservation test general EASY needs ("candidate estimated completion
// must not exceed the head's reserved start") binds only for jobs wider
// than one thread, which this machine does not schedule; the head-first
// invariant is the unit-width residue of that test, and the property tests
// enforce it.
package admission

import (
	"fmt"
	"sort"
	"strings"
)

// Job is one open-system application as the admission layer sees it.
type Job struct {
	// ID is the job's stable identity (its global trace index).
	ID int
	// ArriveAt is the cycle the job entered the system.
	ArriveAt uint64
	// Priority is the job's class; higher is more urgent. The default
	// class is 0.
	Priority int
	// Weight is the job's class weight for weighted throughput metrics;
	// zero means 1. Admission disciplines order on Priority, not Weight.
	Weight float64
	// Work is the remaining reference work in instructions: the full
	// instruction target for a waiting job, target minus retired for a
	// running one.
	Work uint64
}

// Policy decides the order in which waiting jobs are admitted when hardware
// threads free up. Implementations must be deterministic: the same inputs
// must always produce the same order (ties broken on ArriveAt, then ID).
type Policy interface {
	// Name identifies the discipline in reports and CLI flags.
	Name() string
	// Admit returns the admission order as indices into waiting; the
	// runner admits the first free of them and keeps the rest queued.
	// waiting is in arrival (FIFO) order and is never empty; running
	// holds the currently executing jobs. Implementations must not
	// mutate or retain the slices. Returning fewer than len(waiting)
	// indices leaves the tail queued this round.
	Admit(waiting, running []Job, free int, now uint64) []int
}

// DefaultAgingCycles is the Priority discipline's default aging horizon: a
// queued job gains one effective priority level per this many cycles waited
// (ten default scheduling quanta), bounding starvation without letting
// aging dominate class order on short waits.
const DefaultAgingCycles = 200_000

// FIFO admits in arrival order — the historical behaviour of the dynamic
// runner, kept bit-identical (differential- and golden-tested).
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Admit implements Policy: the identity order over the FIFO queue.
func (FIFO) Admit(waiting, _ []Job, _ int, _ uint64) []int {
	return identity(len(waiting))
}

// SJF admits the job with the least remaining reference work first,
// breaking ties by arrival then ID. It minimises mean response time under
// contention but can starve long jobs indefinitely; Backfill offers the
// same short-job bias with a no-starvation guarantee.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "sjf" }

// Admit implements Policy.
func (SJF) Admit(waiting, _ []Job, _ int, _ uint64) []int {
	order := identity(len(waiting))
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := waiting[order[a]], waiting[order[b]]
		if ja.Work != jb.Work {
			return ja.Work < jb.Work
		}
		return beforeFIFO(ja, jb)
	})
	return order
}

// Priority admits the highest effective priority first. The effective
// priority of a queued job grows by one level per AgingCycles waited, so a
// low-priority job outranks fresh arrivals of a class d levels above it
// after waiting d·AgingCycles: starvation is bounded by the class spread
// times the aging horizon (plus one service time for a thread to free).
type Priority struct {
	// AgingCycles is the waiting time that buys one effective priority
	// level. Zero selects DefaultAgingCycles; negative disables aging
	// entirely (strict classes, unbounded starvation).
	AgingCycles int64
}

// Name implements Policy.
func (Priority) Name() string { return "priority" }

// effective returns the aged priority of j at time now. The aging boost is
// computed in uint64 and clamped so that adversarial timestamps (fuzzed or
// synthetic QuantumStates) cannot overflow the comparison.
func (p Priority) effective(j Job, now uint64) int64 {
	eff := int64(j.Priority)
	aging := p.AgingCycles
	if aging == 0 {
		aging = DefaultAgingCycles
	}
	if aging > 0 && now > j.ArriveAt {
		boost := (now - j.ArriveAt) / uint64(aging)
		if boost > 1<<30 {
			boost = 1 << 30
		}
		eff += int64(boost)
	}
	return eff
}

// Admit implements Policy.
func (p Priority) Admit(waiting, _ []Job, _ int, now uint64) []int {
	order := identity(len(waiting))
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := waiting[order[a]], waiting[order[b]]
		ea, eb := p.effective(ja, now), p.effective(jb, now)
		if ea != eb {
			return ea > eb
		}
		return beforeFIFO(ja, jb)
	})
	return order
}

// Backfill is EASY-style backfilling over the priority queue: the head —
// the highest-priority, oldest waiting job — is always admitted first, and
// the remaining free threads are backfilled shortest-job-first from the
// rest of the queue. Short jobs jump the queue, but never past the head:
// the head's earliest start is exactly the next free thread, and the head
// takes it before any backfill candidate is considered (see the package
// comment for why this is the whole of the EASY reservation test at unit
// job width). Unlike SJF, a long job cannot starve: once it reaches the
// head it is served next.
type Backfill struct{}

// Name implements Policy.
func (Backfill) Name() string { return "backfill" }

// Admit implements Policy.
func (Backfill) Admit(waiting, _ []Job, _ int, _ uint64) []int {
	order := identity(len(waiting))
	// Head: highest priority, oldest, lowest ID — strict classes, no
	// aging (the head guarantee, not aging, is the anti-starvation
	// mechanism here).
	head := 0
	for i := 1; i < len(waiting); i++ {
		if backfillHeadBefore(waiting[i], waiting[head]) {
			head = i
		}
	}
	order[0], order[head] = order[head], order[0]
	rest := order[1:]
	sort.SliceStable(rest, func(a, b int) bool {
		ja, jb := waiting[rest[a]], waiting[rest[b]]
		if ja.Work != jb.Work {
			return ja.Work < jb.Work
		}
		return beforeFIFO(ja, jb)
	})
	return order
}

// backfillHeadBefore reports whether a outranks b for the Backfill head.
func backfillHeadBefore(a, b Job) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return beforeFIFO(a, b)
}

// beforeFIFO is the universal tie-break: earlier arrival first, then lower
// ID (trace order).
func beforeFIFO(a, b Job) bool {
	if a.ArriveAt != b.ArriveAt {
		return a.ArriveAt < b.ArriveAt
	}
	return a.ID < b.ID
}

func identity(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// Names lists the built-in disciplines in CLI-documentation order.
func Names() []string { return []string{"fifo", "sjf", "priority", "backfill"} }

// ByName resolves a built-in discipline. The empty string selects FIFO,
// the runner's historical default. "priority" uses DefaultAgingCycles;
// construct a Priority value directly for a custom aging horizon.
func ByName(name string) (Policy, error) {
	switch name {
	case "", "fifo":
		return FIFO{}, nil
	case "sjf":
		return SJF{}, nil
	case "priority":
		return Priority{}, nil
	case "backfill":
		return Backfill{}, nil
	}
	return nil, fmt.Errorf("admission: unknown policy %q; valid policies: %s",
		name, strings.Join(Names(), ", "))
}

// Validate checks an order returned by a Policy: every index in range,
// no duplicates. The runner rejects a run on violation rather than
// admitting out of thin air.
func Validate(order []int, waiting int) error {
	if len(order) > waiting {
		return fmt.Errorf("admission: order has %d entries for %d waiting jobs", len(order), waiting)
	}
	seen := make([]bool, waiting)
	for _, idx := range order {
		if idx < 0 || idx >= waiting {
			return fmt.Errorf("admission: order index %d out of range [0,%d)", idx, waiting)
		}
		if seen[idx] {
			return fmt.Errorf("admission: order admits waiting job %d twice", idx)
		}
		seen[idx] = true
	}
	return nil
}
