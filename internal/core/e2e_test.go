package core_test

import (
	"testing"

	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/sched"
	"synpa/internal/train"
)

// TestSYNPABeatsLinuxOnMixedWorkload is the headline end-to-end check: on a
// mixed workload (backend-bound + frontend-bound apps, the paper's fb
// scenario) SYNPA must deliver a shorter turnaround time than the Linux
// arrival-order baseline. The paper reports ~36 % average TT gains on mixed
// workloads; we require a clear win without pinning the exact figure.
func TestSYNPABeatsLinuxOnMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	// Train on a compact set.
	topt := train.DefaultOptions()
	topt.Machine.QuantumCycles = 8_000
	topt.IsolatedQuanta = 60
	topt.PairQuanta = 40
	topt.SampleFrac = 1.0
	trainApps := []*apps.Model{}
	for _, n := range []string{"mcf", "lbm_r", "milc", "leela_r", "gobmk", "perlbench", "hmmer", "nab_r"} {
		m, _ := apps.ByName(n)
		trainApps = append(trainApps, m)
	}
	model, _, err := train.Train(trainApps, topt)
	if err != nil {
		t.Fatal(err)
	}

	// Mixed workload: 4 backend-bound + 4 frontend-bound, ordered so the
	// arrival-order baseline pairs same-type applications — apps k and
	// k+4 share a core, giving Linux (lbm,cactu), (mcf,mcf),
	// (leela,leela), (astar,mcf_r). SYNPA must discover the
	// complementary pairing at runtime.
	names := []string{"lbm_r", "mcf", "leela_r", "astar", "cactuBSSN_r", "mcf", "leela_r", "mcf_r"}
	models := make([]*apps.Model, len(names))
	for i, n := range names {
		m, _ := apps.ByName(n)
		models[i] = m
	}
	targets := make([]uint64, len(models))
	for i := range targets {
		targets[i] = 600_000
	}

	cfg := machine.DefaultConfig()
	cfg.QuantumCycles = 10_000

	runPolicy := func(p machine.Policy) uint64 {
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(models, targets, p, machine.RunnerOptions{Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		tt, ok := res.TurnaroundCycles()
		if !ok {
			t.Fatalf("%s did not complete the workload", p.Name())
		}
		return tt
	}

	linuxTT := runPolicy(sched.Linux{})
	synpaTT := runPolicy(core.MustPolicy(model, core.PolicyOptions{}))
	speedup := float64(linuxTT) / float64(synpaTT)
	t.Logf("Linux TT = %d cycles, SYNPA TT = %d cycles, speedup = %.3f", linuxTT, synpaTT, speedup)
	if speedup < 1.05 {
		t.Fatalf("SYNPA speedup %.3f over Linux is too small on a mixed workload", speedup)
	}
}
