package core

import (
	"testing"

	"synpa/internal/machine"
	"synpa/internal/pmu"
)

// Dynamic-occupancy behaviour of the SYNPA policy: live sets that grow,
// shrink and re-index between quanta, with stable identities in AppIDs.

func TestPlaceWithUnplacedArrival(t *testing.T) {
	// Four residents plus one just-arrived app (Unplaced in Prev, zero
	// sample): the policy must place all five on 4 cores without error —
	// the arrival's zero sample falls back to a uniform ST estimate.
	p := MustPolicy(PaperCoefficients(), PolicyOptions{})
	samples := []pmu.Counters{
		sampleWith(10000, 4000, 500, 8000),
		sampleWith(10000, 4000, 8000, 500),
		sampleWith(10000, 4000, 400, 8200),
		sampleWith(10000, 4000, 7800, 600),
		{}, // fresh arrival: has not run yet
	}
	st := &machine.QuantumState{
		Quantum:       3,
		NumApps:       5,
		NumCores:      4,
		DispatchWidth: 4,
		AppIDs:        []int{0, 1, 2, 3, 9},
		Prev:          machine.Placement{0, 0, 1, 1, machine.Unplaced},
		Samples:       samples,
	}
	place := p.Place(st)
	if err := place.Validate(4, 2); err != nil {
		t.Fatal(err)
	}
	if len(place) != 5 {
		t.Fatalf("placement %v", place)
	}
	if place[4] < 0 {
		t.Fatalf("arrival left unplaced: %v", place)
	}
}

func TestSmoothingFollowsIdentitiesAcrossRemap(t *testing.T) {
	// Quantum 1: apps {10, 20, 30} live. Quantum 2: app 10 departed, the
	// live set compacted to {20, 30}. Smoothing must blend each app with
	// ITS OWN previous estimate, found by identity — not with whatever
	// app now occupies the same index.
	p := MustPolicy(PaperCoefficients(), PolicyOptions{Smoothing: 0.5})
	be := sampleWith(10000, 4000, 500, 8000)  // backend-shaped sample
	fe := sampleWith(10000, 4000, 8000, 500)  // frontend-shaped sample
	md := sampleWith(10000, 4000, 4000, 4000) // mixed

	st := &machine.QuantumState{
		Quantum: 1, NumApps: 3, NumCores: 2, DispatchWidth: 4,
		AppIDs:  []int{10, 20, 30},
		Prev:    machine.Placement{0, 0, 1},
		Samples: []pmu.Counters{be, fe, md},
	}
	if err := p.Place(st).Validate(2, 2); err != nil {
		t.Fatal(err)
	}
	est1 := p.LastSTEstimates()
	if len(est1) != 3 {
		t.Fatalf("%d estimates", len(est1))
	}
	// Remember app 20's estimate (index 1 this quantum).
	prev20 := append([]float64(nil), est1[1]...)

	// App 10 departs; 20 and 30 shift down one index. Feed identical
	// samples again: with s=0.5 the new estimate is the average of the
	// fresh extraction and the app's own previous estimate, so app 20's
	// estimate must move toward prev20 — not toward app 10's.
	st2 := &machine.QuantumState{
		Quantum: 2, NumApps: 2, NumCores: 2, DispatchWidth: 4,
		AppIDs:  []int{20, 30},
		Prev:    machine.Placement{0, 1},
		Samples: []pmu.Counters{fe, md},
	}
	if err := p.Place(st2).Validate(2, 2); err != nil {
		t.Fatal(err)
	}
	est2 := p.LastSTEstimates()
	if len(est2) != 2 {
		t.Fatalf("%d estimates after departure", len(est2))
	}
	// The solo extraction of fe is deterministic, so feeding the same
	// sample with correct identity continuity keeps the estimate at the
	// fixed point: est2[0] == 0.5*extract(fe) + 0.5*prev20 == prev20
	// (since prev20 was itself a smoothed fe estimate converging). Verify
	// the weaker, identity-sensitive property: est2[0] is closer to
	// prev20 than to app 10's backend estimate.
	d20, d10 := 0.0, 0.0
	for k := range est2[0] {
		d20 += abs(est2[0][k] - prev20[k])
		d10 += abs(est2[0][k] - est1[0][k])
	}
	if d20 >= d10 {
		t.Fatalf("smoothing blended across identities: dist(own prev)=%v >= dist(other app)=%v", d20, d10)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
