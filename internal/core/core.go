package core
