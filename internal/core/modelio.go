// Model serialisation: the wire format trained models travel in — written
// by synpa-train -out, loaded by the synpad daemon at startup and accepted
// by its /v1/model hot-swap endpoint. The format is the Model struct's
// json tags: float64 coefficients round-trip exactly through encoding/json
// (shortest-representation encoding parses back to the identical bits), so
// a model written and re-read places bit-identically to the original.
package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteModelJSON writes the model as indented JSON with a trailing newline.
func WriteModelJSON(w io.Writer, m *Model) error {
	if m == nil {
		return fmt.Errorf("core: nil model")
	}
	if err := m.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadModelJSON parses and validates a model from its JSON wire format.
// Unknown fields are rejected so a malformed or mis-shaped payload fails
// loudly instead of producing a zero model.
func ReadModelJSON(r io.Reader) (*Model, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	m := &Model{}
	if err := dec.Decode(m); err != nil {
		return nil, fmt.Errorf("core: parsing model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(m.MSE) != 0 && len(m.MSE) != len(m.Coef) {
		return nil, fmt.Errorf("core: %d MSE values for %d categories", len(m.MSE), len(m.Coef))
	}
	return m, nil
}
