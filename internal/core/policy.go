package core

import (
	"fmt"
	"math"
	"os"

	"synpa/internal/grouping"
	"synpa/internal/machine"
	"synpa/internal/matching"
	"synpa/internal/perfstat"
	"synpa/internal/predcache"
)

// Matcher selects how the policy turns the pairwise degradation matrix into
// a placement (the Step 3 of §IV-B).
type Matcher int

const (
	// MatcherBlossom uses Edmonds' Blossom minimum-weight perfect
	// matching — the paper's choice [21].
	MatcherBlossom Matcher = iota
	// MatcherBruteForce enumerates all pairings (the combinatorial
	// explosion the paper avoids); kept for the overhead ablation.
	MatcherBruteForce
	// MatcherGreedy repeatedly takes the lightest remaining edge; a
	// cheaper, suboptimal baseline for the matcher ablation.
	MatcherGreedy
)

// String names the matcher for experiment output.
func (m Matcher) String() string {
	switch m {
	case MatcherBlossom:
		return "blossom"
	case MatcherBruteForce:
		return "brute-force"
	case MatcherGreedy:
		return "greedy"
	}
	return fmt.Sprintf("Matcher(%d)", int(m))
}

// PolicyOptions tune the SYNPA policy; the zero value plus a model gives the
// paper's configuration.
type PolicyOptions struct {
	// Extract converts PMU samples to category fractions. Defaults to
	// ThreeCategoryFractions.
	Extract Extractor
	// Matcher selects the pair-selection algorithm. Defaults to Blossom.
	Matcher Matcher
	// DisableInversion skips the model inversion and uses the measured
	// SMT fractions directly as ST estimates — an ablation quantifying
	// the value of §IV-B Step 1.
	DisableInversion bool
	// Smoothing is the exponential-moving-average weight given to the
	// previous quantum's ST estimate. The paper measures over 100 ms
	// quanta (~2·10⁸ cycles); the simulator's scaled quanta are ~10⁴×
	// shorter and correspondingly noisier, so smoothing substitutes for
	// the averaging the long hardware quantum provides (DESIGN.md §2).
	// Zero selects the default (0.5); negative disables smoothing.
	Smoothing float64
	// Hysteresis keeps the previous pairing unless the newly matched
	// pairing improves the predicted total degradation by more than this
	// relative fraction. It suppresses migration churn on measurement
	// noise (same noise-compensation argument as Smoothing). Zero selects
	// the default (0.01); negative disables hysteresis.
	Hysteresis float64
	// Inversion tunes the inversion solver; zero value uses defaults.
	Inversion InversionOptions
	// Grouping tunes the set-partition solver used when the machine runs
	// more than two threads per core (internal/grouping); the zero value
	// gives the production defaults (exact for small live sets, greedy +
	// local search beyond).
	Grouping grouping.Options
	// ForceGrouping routes Step 3 through the grouping subsystem even at
	// SMT2, where the policy normally keeps its original blossom-matching
	// path. The two agree by construction (grouping delegates to the same
	// matcher at level 2); the option exists for differential tests and
	// solver ablations.
	ForceGrouping bool
	// Cache configures the interference-prediction memo layer
	// (internal/predcache) behind the policy's Invert and PairDegradation
	// evaluations. The zero value enables exact-key caching, which is
	// bit-identical to uncached evaluation by construction; set
	// Cache.Disabled — or the SYNPA_PREDCACHE=0 environment variable — to
	// evaluate the model directly every quantum.
	Cache predcache.Options
	// Name overrides the policy name in experiment output.
	Name string
}

// Policy is the SYNPA thread-to-core allocation policy (§IV-B). Every
// quantum it estimates each application's ST behaviour by inverting the
// interference model on the previous quantum's PMU samples, predicts the
// degradation of every candidate pair with the forward model, and solves a
// minimum-weight perfect matching to pick the most synergistic pairing.
//
// A Policy is read-mostly after construction; every mutable decision-time
// structure lives in an Arena (see arena.go). Place serves the classic
// single-threaded machine.Policy surface through the policy's default
// arena; concurrent callers hold their own arenas and call PlaceR.
type Policy struct {
	model *Model
	opt   PolicyOptions

	// The memoized model evaluations (read-only closures over model+opt).
	invertFn predcache.InvertFn
	pairFn   predcache.PairFn

	// shared is the optional concurrent memo behind every arena; nil
	// means each arena owns private caches (the classic configuration).
	shared *predcache.Shared
	// def is the default arena behind the non-reentrant Place surface.
	def Arena
}

var _ machine.Policy = (*Policy)(nil)

// NewPolicy builds a SYNPA policy around a trained model.
func NewPolicy(m *Model, opt PolicyOptions) (*Policy, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opt.Extract == nil {
		opt.Extract = ThreeCategoryFractions
	}
	if opt.Inversion.MaxOuter == 0 {
		opt.Inversion = DefaultInversion()
	}
	switch {
	case opt.Smoothing == 0:
		opt.Smoothing = 0.5
	case opt.Smoothing < 0:
		opt.Smoothing = 0
	case opt.Smoothing >= 1:
		return nil, fmt.Errorf("core: smoothing %v must be below 1", opt.Smoothing)
	}
	switch {
	case opt.Hysteresis == 0:
		// Phase transitions of the phase-flipping applications move the
		// predicted total degradation by >3 %, while the spread between
		// near-equivalent complementary pairings is ~0.5 %; the default
		// threshold sits between the two.
		opt.Hysteresis = 0.015
	case opt.Hysteresis < 0:
		opt.Hysteresis = 0
	case opt.Hysteresis >= 1:
		return nil, fmt.Errorf("core: hysteresis %v must be below 1", opt.Hysteresis)
	}
	// The cache is an exact bit-pattern-keyed memo: disabling it changes
	// wall time, never a result bit, so the escape hatch cannot perturb
	// any observable output.
	//synpa:lint-allow nondet cache bypass is bit-identical by construction (exact-key memo)
	if os.Getenv("SYNPA_PREDCACHE") == "0" {
		opt.Cache.Disabled = true
	}
	p := &Policy{model: m, opt: opt}
	p.invertFn = func(a, b []float64) ([]float64, []float64, bool) {
		return p.model.Invert(a, b, p.opt.Inversion)
	}
	p.pairFn = p.model.PairDegradation
	p.initArena(&p.def)
	return p, nil
}

// MustPolicy is NewPolicy that panics on error, for experiment wiring where
// the model is known valid.
func MustPolicy(m *Model, opt PolicyOptions) *Policy {
	p, err := NewPolicy(m, opt)
	if err != nil {
		panic(err)
	}
	return p
}

// Name identifies the policy configuration.
func (p *Policy) Name() string {
	if p.opt.Name != "" {
		return p.opt.Name
	}
	return "SYNPA"
}

// Model exposes the policy's interference model.
func (p *Policy) Model() *Model { return p.model }

// LastSTEstimates returns the ST category estimates computed for the most
// recent placement decision (per application) through the default arena,
// or nil before any. The rows are backed by a double buffer the arena
// reuses: they stay valid until the next Place call; copy them to retain
// longer.
func (p *Policy) LastSTEstimates() [][]float64 { return p.def.lastST }

// CacheStats returns the interference-prediction memo layer's traffic
// counters for the default arena's inversion and pair-degradation caches
// (its view-local counts when a shared cache is installed).
func (p *Policy) CacheStats() (invert, pair predcache.Stats) {
	return p.def.CacheStats()
}

// Place implements machine.Policy: PlaceR through the policy's default
// arena — the single-threaded surface every simulator engine uses.
func (p *Policy) Place(st *machine.QuantumState) machine.Placement {
	return p.PlaceR(&p.def, st)
}

// PlaceR is the reentrant placement decision: all mutable state lives in
// the caller's arena, so any number of goroutines may call PlaceR on one
// policy concurrently as long as each holds its own Arena. At SMT2 it runs
// the paper's pipeline — pairwise inversion, pair-degradation prediction,
// blossom matching; above SMT2 (or under ForceGrouping) Step 3 becomes the
// weighted set-partition of the follow-up policies, solved by
// internal/grouping over the same pairwise degradation matrix.
func (p *Policy) PlaceR(a *Arena, st *machine.QuantumState) machine.Placement {
	// Any level other than 2 routes through grouping: above 2 it solves
	// the set partition, and at 1 it degenerates to forced singletons
	// (the pairwise matcher could illegally co-locate two apps there).
	if level := st.ThreadsPerCore(); level != 2 || p.opt.ForceGrouping {
		return p.placeGrouped(a, st, level)
	}
	if st.Samples == nil || st.Prev == nil {
		return arrivalOrderPlacement(st.NumApps, st.NumCores)
	}

	n := st.NumApps
	// Step 1: estimate each application's ST category vector. The pairing
	// view is precomputed once per quantum instead of an O(n) CoMate scan
	// per application, the estimate matrix is double-buffered across
	// quanta, and inversions are memoized (internal/predcache): a cache
	// hit implies bit-identical inputs, so the copied result is
	// bit-identical to a fresh inversion.
	a.mates = st.Prev.CoMates(a.mates)
	est := a.newEstMatrix(n, p.model.K())
	for i := 0; i < n; i++ {
		mate := -1
		if i < len(a.mates) {
			mate = a.mates[i]
		}
		if !p.opt.DisableInversion && mate >= 0 && mate < i {
			continue // filled as the co-runner of an earlier index
		}
		fi := p.opt.Extract(st.Samples[i], st.DispatchWidth)
		if mate < 0 || p.opt.DisableInversion {
			// Running alone, its measurements are ST already; or the
			// inversion ablation is active.
			copy(est[i], fi)
			normalize(est[i])
			continue
		}
		fj := p.opt.Extract(st.Samples[mate], st.DispatchWidth)
		ci, cj, _ := a.inv.Get(fi, fj, p.invertFn)
		copy(est[i], ci)
		copy(est[mate], cj)
	}
	p.smoothAndRemember(a, st, est)

	// Step 2: predict the degradation of every candidate pair; pad with
	// virtual idle applications so the matching is always perfect. A real
	// application paired with an idle slot runs at ST speed (cost 1). The
	// matrix is reused across quanta and predictions are memoized.
	total := st.NumCores * 2
	w := a.wMatrix(total)
	for i := 0; i < total; i++ {
		for j := i + 1; j < total; j++ {
			var cost float64
			switch {
			case i < n && j < n:
				cost = a.pair.Get(est[i], est[j], p.pairFn)
			case i < n || j < n:
				cost = 1 // real app running alone
			default:
				cost = 0 // empty core
			}
			if math.IsNaN(cost) || math.IsInf(cost, 0) {
				cost = 1e6
			}
			w[i][j], w[j][i] = cost, cost
		}
	}

	// Step 3: select the most synergistic pairing.
	mate, err := p.match(a, w)
	if err != nil {
		// Matching cannot fail on a finite complete graph; if it somehow
		// does, keep the previous placement rather than crash the
		// manager (only if every app already has a core — under dynamic
		// occupancy a fresh arrival does not).
		if fullyPlaced(st.Prev, st.NumCores) {
			return st.Prev.Clone()
		}
		return arrivalOrderPlacement(n, st.NumCores)
	}

	// Hysteresis: only migrate when the predicted gain is material.
	if p.opt.Hysteresis > 0 && fullyPlaced(st.Prev, st.NumCores) {
		prevCost, ok := pairingCost(w, a.mates, n)
		if ok {
			newCost := 0.0
			for i, m := range mate {
				if m > i {
					newCost += w[i][m]
				}
			}
			if prevCost-newCost < p.opt.Hysteresis*prevCost {
				return st.Prev.Clone()
			}
		}
	}

	return placePairs(mate, n, st.NumCores, st.Prev)
}

// smoothAndRemember applies the identity-aware exponential smoothing to the
// fresh ST estimates and records them (with their stable identities) in the
// arena for the next quantum. Shared by the pairwise and grouped paths.
func (p *Policy) smoothAndRemember(a *Arena, st *machine.QuantumState, est [][]float64) {
	if s := p.opt.Smoothing; s > 0 && a.lastST != nil {
		for i := range est {
			prev := a.prevEstimate(appID(st, i))
			if prev == nil || len(prev) != len(est[i]) {
				continue
			}
			for k := range est[i] {
				est[i][k] = (1-s)*est[i][k] + s*prev[k]
			}
		}
	}
	a.lastST = est
	a.estCur = 1 - a.estCur // est came from the other half of the double buffer
	a.lastIDs = a.lastIDs[:0]
	for i := range est {
		a.lastIDs = append(a.lastIDs, appID(st, i))
	}
}

// appID resolves application i's stable identity (dynamic runs hand the
// live set's identities in AppIDs; closed runs use positions).
func appID(st *machine.QuantumState, i int) int {
	if st.AppIDs != nil && i < len(st.AppIDs) {
		return st.AppIDs[i]
	}
	return i
}

// fullyPlaced reports whether every application in p has a real core — i.e.
// the placement is reusable as-is for the next quantum.
func fullyPlaced(p machine.Placement, numCores int) bool {
	for _, c := range p {
		if c < 0 || c >= numCores {
			return false
		}
	}
	return len(p) > 0
}

// pairingCost evaluates a placement's total cost under the current weight
// matrix (including the implicit idle partners of solo apps), given the
// placement's precomputed pairing view. ok is false when the placement is
// unusable.
func pairingCost(w [][]float64, mates []int, n int) (float64, bool) {
	if len(mates) < n {
		return 0, false
	}
	cost := 0.0
	for i := 0; i < n; i++ {
		j := mates[i]
		switch {
		case j < 0:
			cost += 1 // solo app runs at ST speed
		case j > i:
			cost += w[i][j]
		}
	}
	return cost, true
}

// match dispatches to the configured matcher, accruing the solver time to
// the perfstat matching phase when collection is on. The Blossom solver
// runs through the arena's reusable workspace — identical matchings,
// amortised solver memory.
func (p *Policy) match(a *Arena, w [][]float64) ([]int, error) {
	t0 := perfstat.PhaseClock()
	defer perfstat.PhaseAdd(perfstat.PhaseMatching, t0)
	switch p.opt.Matcher {
	case MatcherBruteForce:
		mate, _, err := matching.BruteForceMinWeightPerfect(w)
		return mate, err
	case MatcherGreedy:
		return greedyMatch(w), nil
	default:
		// Odd live-app counts are handled before matching ever runs: Place
		// pads the weight matrix to NumCores*2 vertices with virtual idle
		// slots (cost 1 against real apps), so this graph is always even
		// and one app can pair with an idle slot to run solo.
		// MinWeightMatching additionally tolerates odd matrices (zero-
		// weight phantom vertex) for callers that skip the padding.
		// The whole matching is memoized by the matrix's bit pattern:
		// hysteresis holds co-runner sets (and with them the pair-memoized
		// weight matrices) stable for long stretches, so steady state
		// answers the O(n³) solve with a hash lookup.
		return a.mch.Get(w, func(w [][]float64) ([]int, error) {
			mate, _, err := a.mws.MinWeightMatching(w)
			return mate, err
		})
	}
}

// greedyMatch repeatedly pairs the lightest remaining edge.
func greedyMatch(w [][]float64) []int {
	n := len(w)
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	for {
		best := math.Inf(1)
		bi, bj := -1, -1
		for i := 0; i < n; i++ {
			if mate[i] >= 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if mate[j] < 0 && w[i][j] < best {
					best, bi, bj = w[i][j], i, j
				}
			}
		}
		if bi < 0 {
			return mate
		}
		mate[bi], mate[bj] = bj, bi
	}
}

// arrivalOrderPlacement reproduces the initial assignment the paper
// describes for Linux (§VI-C): application k and k+cores share core k.
func arrivalOrderPlacement(numApps, numCores int) machine.Placement {
	p := make(machine.Placement, numApps)
	for i := range p {
		p[i] = i % numCores
	}
	return p
}

// placePairs maps matched pairs onto cores, preferring each pair's previous
// core to minimise migrations (a pair that stays put keeps its pipeline
// state).
func placePairs(mate []int, numApps, numCores int, prev machine.Placement) machine.Placement {
	place := make(machine.Placement, numApps)
	for i := range place {
		place[i] = -1
	}
	usedCore := make([]bool, numCores)

	type pair struct{ a, b int } // b == -1 for a solo app
	var pairs []pair
	for i, m := range mate {
		if i >= numApps {
			continue
		}
		switch {
		case m >= numApps || m < 0:
			pairs = append(pairs, pair{i, -1})
		case m > i:
			pairs = append(pairs, pair{i, m})
		}
	}

	// First pass: pairs that can stay on a previous core of one member.
	assigned := make([]bool, len(pairs))
	for pi, pr := range pairs {
		for _, member := range []int{pr.a, pr.b} {
			if member < 0 || member >= len(prev) {
				continue
			}
			c := prev[member]
			if c >= 0 && c < numCores && !usedCore[c] {
				place[pr.a] = c
				if pr.b >= 0 {
					place[pr.b] = c
				}
				usedCore[c] = true
				assigned[pi] = true
				break
			}
		}
	}
	// Second pass: remaining pairs take any free core.
	next := 0
	for pi, pr := range pairs {
		if assigned[pi] {
			continue
		}
		for next < numCores && usedCore[next] {
			next++
		}
		if next >= numCores {
			break // cannot happen: pairs <= cores
		}
		place[pr.a] = next
		if pr.b >= 0 {
			place[pr.b] = next
		}
		usedCore[next] = true
	}
	// Defensive: any unplaced app (impossible in normal operation) goes to
	// core 0's first free slot.
	for i := range place {
		if place[i] < 0 {
			place[i] = 0
		}
	}
	return place
}
