package core

import (
	"math"
	"testing"
	"testing/quick"

	"synpa/internal/xrand"
)

func TestPaperCoefficients(t *testing.T) {
	m := PaperCoefficients()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 {
		t.Fatalf("K = %d, want 3", m.K())
	}
	// Exact Table IV values.
	if m.Coef[0].Beta != 0.9060 || m.Coef[1].Beta != 1.4111 || m.Coef[2].Gamma != 1.4391 {
		t.Fatalf("Table IV coefficients wrong: %+v", m.Coef)
	}
	// Table IV structure: backend γ dominates, frontend γ=ρ=0.
	if m.Coef[2].Gamma <= m.Coef[0].Gamma || m.Coef[1].Gamma != 0 || m.Coef[1].Rho != 0 {
		t.Fatal("Table IV structure not preserved")
	}
	// §VI-A MSE values and ordering.
	if m.MSE[0] != 0.0021 || m.MSE[1] != 0.0703 || m.MSE[2] != 0.1583 {
		t.Fatalf("MSE = %v", m.MSE)
	}
}

func TestModelValidate(t *testing.T) {
	if (&Model{}).Validate() == nil {
		t.Fatal("empty model accepted")
	}
	m := &Model{Categories: []string{"a"}, Coef: []Coefficients{{}, {}}}
	if m.Validate() == nil {
		t.Fatal("mismatched names accepted")
	}
	m = &Model{Categories: []string{"a"}, Coef: []Coefficients{{Alpha: math.NaN()}}}
	if m.Validate() == nil {
		t.Fatal("NaN coefficients accepted")
	}
}

func TestPredictKnownValues(t *testing.T) {
	c := Coefficients{Alpha: 0.1, Beta: 0.5, Gamma: 2, Rho: 1}
	// 0.1 + 0.5·0.2 + 2·0.3 + 1·0.06 = 0.86
	if got := c.Predict(0.2, 0.3); math.Abs(got-0.86) > 1e-12 {
		t.Fatalf("Predict = %v, want 0.86", got)
	}
}

func TestPredictPairClampsNegative(t *testing.T) {
	m := &Model{
		Categories: []string{"x"},
		Coef:       []Coefficients{{Alpha: -1}},
	}
	out := m.PredictPair([]float64{0}, []float64{0})
	if out[0] != 0 {
		t.Fatalf("negative prediction not clamped: %v", out[0])
	}
	if s := m.PredictSlowdown([]float64{0}, []float64{0}); s != 0 {
		t.Fatalf("slowdown with clamp = %v", s)
	}
}

func TestPredictSlowdownIsSumOfCategories(t *testing.T) {
	m := PaperCoefficients()
	ci := []float64{0.2, 0.3, 0.5}
	cj := []float64{0.1, 0.1, 0.8}
	pred := m.PredictPair(ci, cj)
	sum := pred[0] + pred[1] + pred[2]
	if got := m.PredictSlowdown(ci, cj); math.Abs(got-sum) > 1e-12 {
		t.Fatalf("slowdown %v != category sum %v", got, sum)
	}
	if sum <= 1 {
		t.Fatalf("paper model should predict slowdown > 1 for a heavy pair, got %v", sum)
	}
}

func TestPairDegradationSymmetricRoles(t *testing.T) {
	m := PaperCoefficients()
	ci := []float64{0.2, 0.3, 0.5}
	cj := []float64{0.5, 0.3, 0.2}
	// PairDegradation must be symmetric in argument order even though the
	// individual slowdowns differ (the paper stresses C_smt[i,j] ≠
	// C_smt[j,i]).
	if a, b := m.PairDegradation(ci, cj), m.PairDegradation(cj, ci); math.Abs(a-b) > 1e-12 {
		t.Fatalf("PairDegradation asymmetric: %v vs %v", a, b)
	}
	si := m.PredictSlowdown(ci, cj)
	sj := m.PredictSlowdown(cj, ci)
	if math.Abs(si-sj) < 1e-9 {
		t.Fatal("individual slowdowns should differ for asymmetric profiles")
	}
}

// syntheticModel returns a well-behaved invertible model for round-trip
// tests: moderate interference in every category.
func syntheticModel() *Model {
	return &Model{
		Categories: ThreeCategories,
		Coef: []Coefficients{
			{Alpha: 0.01, Beta: 0.95, Gamma: 0.02, Rho: 0.05},
			{Alpha: 0.02, Beta: 1.10, Gamma: 0.05, Rho: 0.10},
			{Alpha: 0.05, Beta: 0.90, Gamma: 0.60, Rho: 0.40},
		},
	}
}

func TestInvertRoundTrip(t *testing.T) {
	// Forward-model two ST vectors, convert to fractions, invert, and
	// check the originals are recovered.
	m := syntheticModel()
	rng := xrand.New(2024)
	opt := DefaultInversion()
	worst := 0.0
	for trial := 0; trial < 200; trial++ {
		ci := randomSimplex(rng)
		cj := randomSimplex(rng)
		pi := m.PredictPair(ci, cj)
		pj := m.PredictPair(cj, ci)
		fi, si := toFractions(pi)
		fj, sj := toFractions(pj)
		if si < 1 || sj < 1 {
			continue // degenerate draw, not a feasible SMT observation
		}
		gi, gj, _ := m.Invert(fi, fj, opt)
		for k := 0; k < 3; k++ {
			worst = math.Max(worst, math.Abs(gi[k]-ci[k]))
			worst = math.Max(worst, math.Abs(gj[k]-cj[k]))
		}
	}
	t.Logf("worst ST recovery error = %.4f", worst)
	if worst > 0.05 {
		t.Fatalf("inversion error %.4f too large; the Feliu-style inversion is broken", worst)
	}
}

func TestInvertRecoversSlowdowns(t *testing.T) {
	m := syntheticModel()
	ci := []float64{0.30, 0.20, 0.50}
	cj := []float64{0.40, 0.40, 0.20}
	pi := m.PredictPair(ci, cj)
	pj := m.PredictPair(cj, ci)
	fi, si := toFractions(pi)
	fj, _ := toFractions(pj)
	gi, gj, conv := m.Invert(fi, fj, DefaultInversion())
	if !conv {
		t.Fatal("inversion did not converge on clean synthetic data")
	}
	// Forward prediction from recovered STs must reproduce the slowdown.
	if got := m.PredictSlowdown(gi, gj); math.Abs(got-si) > 0.02 {
		t.Fatalf("recovered slowdown %v, want %v", got, si)
	}
}

func TestInvertDegenerateInputs(t *testing.T) {
	m := syntheticModel()
	opt := DefaultInversion()
	// All-zero fractions: must not panic or return NaN.
	ci, cj, _ := m.Invert([]float64{0, 0, 0}, []float64{0, 0, 0}, opt)
	for k := range ci {
		if math.IsNaN(ci[k]) || math.IsNaN(cj[k]) {
			t.Fatal("NaN from degenerate inversion")
		}
	}
	// Output must be a simplex point.
	if s := ci[0] + ci[1] + ci[2]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("degenerate inversion broke the simplex: sum %v", s)
	}
}

func TestInvertPropertyNeverNaN(t *testing.T) {
	m := syntheticModel()
	opt := DefaultInversion()
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		fi := randomSimplex(rng)
		fj := randomSimplex(rng)
		ci, cj, _ := m.Invert(fi, fj, opt)
		for k := range ci {
			if math.IsNaN(ci[k]) || math.IsInf(ci[k], 0) || ci[k] < 0 {
				return false
			}
			if math.IsNaN(cj[k]) || math.IsInf(cj[k], 0) || cj[k] < 0 {
				return false
			}
		}
		si := 0.0
		for _, v := range ci {
			si += v
		}
		return math.Abs(si-1) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomSimplex draws a random point on the 3-simplex.
func randomSimplex(rng *xrand.RNG) []float64 {
	v := []float64{rng.Float64() + 0.01, rng.Float64() + 0.01, rng.Float64() + 0.01}
	s := v[0] + v[1] + v[2]
	for i := range v {
		v[i] /= s
	}
	return v
}

// toFractions converts per-work category values to fractions + slowdown.
func toFractions(p []float64) ([]float64, float64) {
	s := 0.0
	for _, v := range p {
		s += v
	}
	f := make([]float64, len(p))
	if s > 0 {
		for i := range p {
			f[i] = p[i] / s
		}
	}
	return f, s
}

func TestNormalize(t *testing.T) {
	v := []float64{2, 6, 2}
	normalize(v)
	if v[0] != 0.2 || v[1] != 0.6 || v[2] != 0.2 {
		t.Fatalf("normalize = %v", v)
	}
	z := []float64{0, 0}
	normalize(z)
	if z[0] != 0.5 || z[1] != 0.5 {
		t.Fatalf("zero vector → %v, want uniform", z)
	}
	n := []float64{-1, 3}
	normalize(n)
	if n[0] != 0 || n[1] != 1 {
		t.Fatalf("negative clamp → %v", n)
	}
}

func BenchmarkPredictSlowdown3Cat(b *testing.B) {
	m := PaperCoefficients()
	ci := []float64{0.2, 0.3, 0.5}
	cj := []float64{0.1, 0.1, 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PredictSlowdown(ci, cj)
	}
}

func BenchmarkInvert(b *testing.B) {
	m := syntheticModel()
	fi := []float64{0.25, 0.25, 0.5}
	fj := []float64{0.5, 0.3, 0.2}
	opt := DefaultInversion()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Invert(fi, fj, opt)
	}
}
