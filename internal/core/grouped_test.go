package core

import (
	"fmt"
	"reflect"
	"testing"

	"synpa/internal/machine"
	"synpa/internal/pmu"
	"synpa/internal/xrand"
)

// randSamples builds one quantum's synthetic PMU deltas with random
// frontend/backend stall splits.
func randSamples(rng *xrand.RNG, n int) []pmu.Counters {
	out := make([]pmu.Counters, n)
	for i := range out {
		cycles := uint64(10_000)
		insts := 2_000 + uint64(rng.Intn(6_000))
		stalls := 1_000 + uint64(rng.Intn(8_000))
		fe := uint64(float64(stalls) * rng.Float64())
		out[i] = sampleWith(cycles, insts, fe, stalls-fe)
	}
	return out
}

// TestForceGroupingMatchesPairwise is the SMT2 regression differential of
// the grouping subsystem: across multi-quantum sequences of random samples,
// the policy routed through grouping.Partition (ForceGrouping) must produce
// exactly the placements of the classic blossom-matching path, quantum for
// quantum — grouping at L = 2 reproduces blossom placements.
func TestForceGroupingMatchesPairwise(t *testing.T) {
	for _, n := range []int{5, 7, 8} { // odd counts exercise solo groups
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("n=%d/seed=%d", n, seed), func(t *testing.T) {
				pair := MustPolicy(PaperCoefficients(), PolicyOptions{})
				grp := MustPolicy(PaperCoefficients(), PolicyOptions{ForceGrouping: true})
				rng := xrand.New(seed)
				var prevPair, prevGrp machine.Placement
				var samples []pmu.Counters
				for q := 0; q < 25; q++ {
					stPair := &machine.QuantumState{
						Quantum: q, NumApps: n, NumCores: 4, DispatchWidth: 4,
						Prev: prevPair, Samples: samples,
					}
					stGrp := &machine.QuantumState{
						Quantum: q, NumApps: n, NumCores: 4, DispatchWidth: 4,
						Prev: prevGrp, Samples: samples,
					}
					pp := pair.Place(stPair)
					gp := grp.Place(stGrp)
					if !reflect.DeepEqual(pp, gp) {
						t.Fatalf("quantum %d: pairwise %v != grouped %v", q, pp, gp)
					}
					if err := pp.Validate(4, 2); err != nil {
						t.Fatalf("quantum %d: %v", q, err)
					}
					prevPair, prevGrp = pp, gp
					samples = randSamples(rng, n)
				}
			})
		}
	}
}

// TestPlaceGroupedSMT4 drives the grouped path directly: 8 applications on
// 2 SMT4 cores must fill both cores with quads, deterministically.
func TestPlaceGroupedSMT4(t *testing.T) {
	mk := func() (*Policy, *machine.QuantumState) {
		p := MustPolicy(PaperCoefficients(), PolicyOptions{})
		st := &machine.QuantumState{
			Quantum: 1, NumApps: 8, NumCores: 2, DispatchWidth: 4, SMTLevel: 4,
			Prev: machine.Placement{0, 0, 0, 0, 1, 1, 1, 1},
		}
		rng := xrand.New(11)
		st.Samples = randSamples(rng, 8)
		return p, st
	}
	p1, st1 := mk()
	place := p1.Place(st1)
	if err := place.Validate(2, 4); err != nil {
		t.Fatal(err)
	}
	load := map[int]int{}
	for _, c := range place {
		load[c]++
	}
	if load[0] != 4 || load[1] != 4 {
		t.Fatalf("8 apps on 2x4 threads must form two quads, got %v", place)
	}
	p2, st2 := mk()
	if again := p2.Place(st2); !reflect.DeepEqual(place, again) {
		t.Fatalf("grouped placement nondeterministic: %v vs %v", place, again)
	}
}

// TestPlaceGroupedPartialOccupancy covers the dynamic-run shape: a live set
// smaller than the machine with Unplaced Prev entries (a fresh arrival).
func TestPlaceGroupedPartialOccupancy(t *testing.T) {
	p := MustPolicy(PaperCoefficients(), PolicyOptions{})
	rng := xrand.New(3)
	st := &machine.QuantumState{
		Quantum: 2, NumApps: 5, NumCores: 2, DispatchWidth: 4, SMTLevel: 4,
		AppIDs:  []int{0, 1, 2, 3, 9},
		Prev:    machine.Placement{0, 0, 1, 1, machine.Unplaced},
		Samples: randSamples(rng, 5),
	}
	place := p.Place(st)
	if err := place.Validate(2, 4); err != nil {
		t.Fatal(err)
	}
	if len(place) != 5 {
		t.Fatalf("placement %v has wrong length", place)
	}
}

// TestPlaceSMT1Singletons pins the SMT1 routing: the policy must never
// co-locate two applications on a one-thread core, whatever the model
// predicts, so level 1 runs the grouping path's forced singletons.
func TestPlaceSMT1Singletons(t *testing.T) {
	p := MustPolicy(PaperCoefficients(), PolicyOptions{})
	rng := xrand.New(17)
	var prev machine.Placement
	var samples []pmu.Counters
	for q := 0; q < 10; q++ {
		st := &machine.QuantumState{
			Quantum: q, NumApps: 4, NumCores: 4, DispatchWidth: 4, SMTLevel: 1,
			Prev: prev, Samples: samples,
		}
		place := p.Place(st)
		if err := place.Validate(4, 1); err != nil {
			t.Fatalf("quantum %d: %v (placement %v)", q, err, place)
		}
		prev = place
		samples = randSamples(rng, 4)
	}
}

// TestPlaceGroupedHysteresisSoloCost pins the solo-cost scale of the
// grouped hysteresis: with a custom Grouping.SoloCost, the previous
// placement's cost must be priced on the same scale as the fresh
// partition's, or hysteresis pins the policy to Prev forever.
func TestPlaceGroupedHysteresisSoloCost(t *testing.T) {
	// Two cores at SMT4, three apps, previous placement all solo-ish:
	// {0,1} paired and {2} solo. With SoloCost 3 the solo group is
	// expensive, so merging everyone should clear any small hysteresis.
	opts := PolicyOptions{Hysteresis: 0.01}
	opts.Grouping.SoloCost = 3
	p := MustPolicy(PaperCoefficients(), opts)
	rng := xrand.New(23)
	st := &machine.QuantumState{
		Quantum: 1, NumApps: 3, NumCores: 3, DispatchWidth: 4, SMTLevel: 4,
		Prev:    machine.Placement{0, 1, 2}, // three expensive solos under SoloCost 3
		Samples: randSamples(rng, 3),
	}
	place := p.Place(st)
	if err := place.Validate(3, 4); err != nil {
		t.Fatal(err)
	}
	// Under SoloCost 3 the previous all-solo grouping costs 9 while any
	// pairing costs ~2+3 < 9; a correctly scaled hysteresis must migrate.
	if reflect.DeepEqual(place, st.Prev) {
		t.Fatalf("hysteresis kept the all-solo placement despite SoloCost 3: %v", place)
	}
}

// TestPlaceGroupsKeepsUnchangedGroups pins the migration-minimising
// core assignment: a partition identical to the previous grouping must not
// move anyone.
func TestPlaceGroupsKeepsUnchangedGroups(t *testing.T) {
	prev := machine.Placement{0, 0, 0, 0, 1, 1, 1, 1}
	groups := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	place := placeGroups(groups, 8, 2, prev)
	for i := range prev {
		if place[i] != prev[i] {
			t.Fatalf("unnecessary migration: %v -> %v", prev, place)
		}
	}
	// Swapped groups across cores still land on a core a member held.
	swapped := [][]int{{0, 1, 6, 7}, {2, 3, 4, 5}}
	place = placeGroups(swapped, 8, 2, prev)
	if err := place.Validate(2, 4); err != nil {
		t.Fatal(err)
	}
	if place[0] != place[1] || place[0] != place[6] || place[0] != place[7] {
		t.Fatalf("group split across cores: %v", place)
	}
	if place[2] != place[3] || place[2] != place[4] || place[2] != place[5] {
		t.Fatalf("group split across cores: %v", place)
	}
	if place[0] == place[2] {
		t.Fatalf("both groups on one core: %v", place)
	}
}
