package core

// Batched model inversion: the serving-path entry point that amortises
// per-call setup across a whole batch of ST-estimation requests. One call
// allocates a single backing array for every result vector and resolves
// each request through the arena's inversion memo, so duplicate ST vectors
// inside the batch (and across batches, and across concurrent callers with
// a shared cache) evaluate the expensive Newton inversion exactly once and
// the cache warms coherently — every stored entry is keyed by the exact
// bit pattern the placement path would key it with.

import "synpa/internal/machine"

// InvertRequest is one batched inversion: the measured SMT category
// fractions of an application (FI) and of its co-runner aggregate (FJ) —
// the same two vectors Policy hands Model.Invert per pair.
type InvertRequest struct {
	FI, FJ []float64
}

// InvertResult is one batched inversion's outcome. CI and CJ are the
// estimated ST category vectors; they are slices of a per-batch backing
// array owned by the caller (safe to mutate, unlike the cache-owned slices
// InvertCache.Get returns).
type InvertResult struct {
	CI, CJ    []float64
	Converged bool
}

// WarmInversions prefetches the model inversions a batch of placement
// queries will need, through one InvertBatch call on the caller's arena.
// For every state on the pairwise path (SMT2, inversion enabled) it
// extracts exactly the per-pair fraction vectors PlaceR's Step 1 would
// extract — same extractor, same (lower-index, co-runner) argument order —
// so the memo entries it populates are keyed by the exact bits the
// subsequent PlaceR calls will look up. Warming is bit-neutral by the
// predcache argument: a hit returns the bit-identical value a fresh
// evaluation would produce, so the only effect is when the Newton solves
// run, never what they produce. It returns the number of pair inversions
// batched. The serving batch endpoint calls this once per request chunk to
// amortise inversion work across the chunk.
func (p *Policy) WarmInversions(a *Arena, sts []*machine.QuantumState) int {
	if p.opt.DisableInversion {
		return 0
	}
	var reqs []InvertRequest
	var mates []int
	for _, st := range sts {
		if st == nil || st.Samples == nil || st.Prev == nil {
			continue
		}
		if st.ThreadsPerCore() != 2 || p.opt.ForceGrouping {
			continue // the grouped path inverts against mean co-runner vectors
		}
		mates = st.Prev.CoMates(mates)
		for i := 0; i < st.NumApps; i++ {
			if i >= len(mates) {
				break
			}
			mate := mates[i]
			if mate <= i || mate >= len(st.Samples) {
				continue // solo, or the pair is keyed at the lower index
			}
			reqs = append(reqs, InvertRequest{
				FI: p.opt.Extract(st.Samples[i], st.DispatchWidth),
				FJ: p.opt.Extract(st.Samples[mate], st.DispatchWidth),
			})
		}
	}
	p.InvertBatch(a, reqs)
	return len(reqs)
}

// InvertBatch inverts a batch of ST requests in one call through the
// arena's inversion memo. Results land in one backing allocation; repeated
// requests hit the memo. Like PlaceR, it is safe to call concurrently as
// long as each goroutine holds its own Arena.
func (p *Policy) InvertBatch(a *Arena, reqs []InvertRequest) []InvertResult {
	if len(reqs) == 0 {
		return nil
	}
	k := p.model.K()
	res := make([]InvertResult, len(reqs))
	back := make([]float64, 2*k*len(reqs))
	for idx := range reqs {
		ci, cj, conv := a.inv.Get(reqs[idx].FI, reqs[idx].FJ, p.invertFn)
		dst := back[2*k*idx : 2*k*(idx+1)]
		res[idx].CI = dst[:k:k]
		res[idx].CJ = dst[k : 2*k : 2*k]
		copy(res[idx].CI, ci)
		copy(res[idx].CJ, cj)
		res[idx].Converged = conv
	}
	return res
}
