package core

// Batched model inversion: the serving-path entry point that amortises
// per-call setup across a whole batch of ST-estimation requests. One call
// allocates a single backing array for every result vector and resolves
// each request through the arena's inversion memo, so duplicate ST vectors
// inside the batch (and across batches, and across concurrent callers with
// a shared cache) evaluate the expensive Newton inversion exactly once and
// the cache warms coherently — every stored entry is keyed by the exact
// bit pattern the placement path would key it with.

// InvertRequest is one batched inversion: the measured SMT category
// fractions of an application (FI) and of its co-runner aggregate (FJ) —
// the same two vectors Policy hands Model.Invert per pair.
type InvertRequest struct {
	FI, FJ []float64
}

// InvertResult is one batched inversion's outcome. CI and CJ are the
// estimated ST category vectors; they are slices of a per-batch backing
// array owned by the caller (safe to mutate, unlike the cache-owned slices
// InvertCache.Get returns).
type InvertResult struct {
	CI, CJ    []float64
	Converged bool
}

// InvertBatch inverts a batch of ST requests in one call through the
// arena's inversion memo. Results land in one backing allocation; repeated
// requests hit the memo. Like PlaceR, it is safe to call concurrently as
// long as each goroutine holds its own Arena.
func (p *Policy) InvertBatch(a *Arena, reqs []InvertRequest) []InvertResult {
	if len(reqs) == 0 {
		return nil
	}
	k := p.model.K()
	res := make([]InvertResult, len(reqs))
	back := make([]float64, 2*k*len(reqs))
	for idx := range reqs {
		ci, cj, conv := a.inv.Get(reqs[idx].FI, reqs[idx].FJ, p.invertFn)
		dst := back[2*k*idx : 2*k*(idx+1)]
		res[idx].CI = dst[:k:k]
		res[idx].CJ = dst[k : 2*k : 2*k]
		copy(res[idx].CI, ci)
		copy(res[idx].CJ, cj)
		res[idx].Converged = conv
	}
	return res
}
