package core

import (
	"synpa/internal/characterize"
	"synpa/internal/pmu"
)

// Extractor converts one application's PMU sample (a quantum delta) into a
// category-fraction vector for a model. Fractions are normalised to the
// sample's cycles and sum to ~1.
type Extractor func(c pmu.Counters, width int) []float64

// ThreeCategoryFractions extracts the paper's final three categories
// (full-dispatch, frontend stalls, backend stalls) using the §III-B
// characterization with the default reveals-to-backend rule.
func ThreeCategoryFractions(c pmu.Counters, width int) []float64 {
	b := characterize.FromCounters(c, width)
	return []float64{b.FD, b.FE, b.BE}
}

// ThreeCategoryFractionsRule returns an Extractor using an alternative
// Step 3 splitting rule (for the reveals-attribution ablation).
func ThreeCategoryFractionsRule(rule characterize.SplitRule) Extractor {
	return func(c pmu.Counters, width int) []float64 {
		b := characterize.FromCountersRule(c, width, rule)
		return []float64{b.FD, b.FE, b.BE}
	}
}

// TenCategories names the vector produced by TenCategoryFractions: the
// paper's preliminary model that split the backend into its component
// stall causes (§VI-A) before being discarded for the three-category one.
var TenCategories = []string{
	"Full-dispatch cycles",
	"FE: I-cache",
	"FE: branch",
	"BE: memory latency",
	"BE: ROB full",
	"BE: IQ full",
	"BE: LDQ full",
	"BE: STQ full",
	"BE: dispatch slots",
	"BE: other",
}

// TenCategoryFractions extracts the ten-category vector. The revealed
// horizontal waste of Step 2 is attributed to the dispatch-slot category —
// horizontal waste *is* slot waste — keeping the vector a partition of the
// sample's cycles.
func TenCategoryFractions(c pmu.Counters, width int) []float64 {
	b := characterize.FromCounters(c, width)
	total := float64(c[pmu.CPUCycles])
	if total == 0 {
		return make([]float64, len(TenCategories))
	}
	frac := func(e pmu.Event) float64 { return float64(c[e]) / total }
	return []float64{
		b.FD,
		frac(pmu.StallFEICache),
		frac(pmu.StallFEBranch),
		frac(pmu.StallBEMemLat),
		frac(pmu.StallBEROB),
		frac(pmu.StallBEIQ),
		frac(pmu.StallBELDQ),
		frac(pmu.StallBESTQ),
		frac(pmu.StallBESlots) + b.Revealed/total,
		frac(pmu.StallBEOther),
	}
}
