package core

// Tests for the reentrant policy path: PlaceR through caller-owned arenas
// must be bit-identical to the classic Place surface — private caches,
// shared cache, or no cache — including when many goroutines hammer one
// policy concurrently (the -race gate for the serving path).

import (
	"reflect"
	"sync"
	"testing"

	"synpa/internal/machine"
	"synpa/internal/pmu"
	"synpa/internal/predcache"
)

// drivePlacements replays a deterministic synthetic workload of `quanta`
// decisions through the given placement function, feeding each decision's
// output back as the next quantum's Prev — the cross-quantum feedback loop
// (smoothing, hysteresis) that makes per-arena history observable.
func drivePlacements(place func(*machine.QuantumState) machine.Placement, quanta, numApps, numCores int) []machine.Placement {
	out := make([]machine.Placement, 0, quanta)
	var prev machine.Placement
	for q := 0; q < quanta; q++ {
		st := &machine.QuantumState{
			Quantum:       q,
			NumApps:       numApps,
			NumCores:      numCores,
			DispatchWidth: 4,
		}
		if q > 0 {
			st.Prev = prev
			st.Samples = make([]pmu.Counters, numApps)
			for i := range st.Samples {
				// Deterministic per-(quantum, app) phase behaviour with
				// enough variety to exercise inversion, smoothing and
				// hysteresis without saturating the memo immediately.
				fe := uint64(500 + 900*((q*7+i*13)%8))
				st.Samples[i] = sampleWith(10000, 4000, fe, 8500-fe)
			}
		}
		p := place(st)
		prev = p
		out = append(out, p)
	}
	return out
}

func TestPlaceRMatchesPlaceAcrossCacheModes(t *testing.T) {
	const quanta, apps, cores = 12, 8, 4
	m := PaperCoefficients()
	want := drivePlacements(MustPolicy(m, PolicyOptions{}).Place, quanta, apps, cores)

	// Reentrant path through an explicit arena.
	p := MustPolicy(m, PolicyOptions{})
	a := p.NewArena()
	got := drivePlacements(func(st *machine.QuantumState) machine.Placement {
		return p.PlaceR(a, st)
	}, quanta, apps, cores)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PlaceR(arena) diverged from Place:\n got %v\nwant %v", got, want)
	}

	// Shared concurrent cache installed.
	ps := MustPolicy(m, PolicyOptions{})
	ps.SetSharedCache(predcache.NewShared(predcache.Options{}, 4))
	if !reflect.DeepEqual(drivePlacements(ps.Place, quanta, apps, cores), want) {
		t.Fatal("shared cache diverged from private cache")
	}
	inv, _ := ps.SharedCache().Stats()
	if inv.Hits+inv.Misses == 0 {
		t.Fatal("shared cache saw no traffic — the differential is vacuous")
	}

	// Cache disabled entirely.
	pd := MustPolicy(m, PolicyOptions{Cache: predcache.Options{Disabled: true}})
	if !reflect.DeepEqual(drivePlacements(pd.Place, quanta, apps, cores), want) {
		t.Fatal("cache-disabled diverged from cached")
	}

	// The grouped path too (SMT4): same three-way differential.
	smt4 := func(opt PolicyOptions) []machine.Placement {
		pol := MustPolicy(m, opt)
		return drivePlacements(func(st *machine.QuantumState) machine.Placement {
			st.SMTLevel = 4
			return pol.Place(st)
		}, quanta, 12, 3)
	}
	want4 := smt4(PolicyOptions{})
	pg := MustPolicy(m, PolicyOptions{})
	pg.SetSharedCache(predcache.NewShared(predcache.Options{}, 4))
	got4 := drivePlacements(func(st *machine.QuantumState) machine.Placement {
		st.SMTLevel = 4
		return pg.Place(st)
	}, quanta, 12, 3)
	if !reflect.DeepEqual(got4, want4) {
		t.Fatal("grouped path with shared cache diverged")
	}
}

// TestConcurrentPlaceRBitIdentical is the serving-path race gate: many
// goroutines, one policy, one shared cache, each goroutine holding its own
// arena and replaying the same workload — every stream must reproduce the
// serial reference bit for bit, no matter how the schedules interleave.
func TestConcurrentPlaceRBitIdentical(t *testing.T) {
	const quanta, apps, cores, goroutines = 16, 8, 4, 8
	m := PaperCoefficients()
	want := drivePlacements(MustPolicy(m, PolicyOptions{}).Place, quanta, apps, cores)

	p := MustPolicy(m, PolicyOptions{})
	p.SetSharedCache(predcache.NewShared(predcache.Options{}, 4))
	results := make([][]machine.Placement, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := p.NewArena()
			results[g] = drivePlacements(func(st *machine.QuantumState) machine.Placement {
				return p.PlaceR(a, st)
			}, quanta, apps, cores)
		}(g)
	}
	wg.Wait()
	for g := range results {
		if !reflect.DeepEqual(results[g], want) {
			t.Fatalf("goroutine %d diverged from the serial reference", g)
		}
	}
}

func TestInvertBatch(t *testing.T) {
	m := PaperCoefficients()
	p := MustPolicy(m, PolicyOptions{})
	a := p.NewArena()
	fi := ThreeCategoryFractions(sampleWith(10000, 4000, 500, 8000), 4)
	fj := ThreeCategoryFractions(sampleWith(10000, 4000, 8000, 500), 4)

	reqs := []InvertRequest{{fi, fj}, {fj, fi}, {fi, fj}}
	res := p.InvertBatch(a, reqs)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	ci, cj, conv := m.Invert(fi, fj, DefaultInversion())
	if res[0].Converged != conv ||
		!reflect.DeepEqual(res[0].CI, ci) || !reflect.DeepEqual(res[0].CJ, cj) {
		t.Fatalf("batched inversion diverged from direct Invert:\n got %v %v\nwant %v %v",
			res[0].CI, res[0].CJ, ci, cj)
	}
	if !reflect.DeepEqual(res[2].CI, res[0].CI) {
		t.Fatal("duplicate request returned a different result")
	}
	inv, _ := a.CacheStats()
	if inv.Misses != 2 || inv.Hits != 1 {
		t.Fatalf("batch dedup broken: %+v, want 2 misses 1 hit", inv)
	}

	// Results are caller-owned copies, not cache-owned slices.
	res[0].CI[0] = 42
	again := p.InvertBatch(a, reqs[:1])
	if again[0].CI[0] == 42 {
		t.Fatal("mutating a batch result corrupted the cache")
	}

	// A batch through one arena warms the shared cache for every other.
	ps := MustPolicy(m, PolicyOptions{})
	ps.SetSharedCache(predcache.NewShared(predcache.Options{}, 4))
	a1, a2 := ps.NewArena(), ps.NewArena()
	ps.InvertBatch(a1, reqs)
	ps.InvertBatch(a2, reqs[:1])
	if inv2, _ := a2.CacheStats(); inv2.Hits != 1 || inv2.Misses != 0 {
		t.Fatalf("shared cache not warmed coherently by batch: %+v", inv2)
	}

	if got := p.InvertBatch(a, nil); got != nil {
		t.Fatalf("empty batch returned %v", got)
	}
}
