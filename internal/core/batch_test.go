package core

// Serving-path warm/reset invariants: WarmInversions must populate the memo
// under exactly the keys PlaceR will look up (warming changes speed, never
// bits), and a Reset pooled arena must be indistinguishable bit-wise from a
// freshly allocated one.

import (
	"reflect"
	"testing"

	"synpa/internal/machine"
	"synpa/internal/pmu"
)

// warmStates builds deterministic pairwise-path quantum states whose Prev
// places apps in co-running pairs, so every state contributes inversions.
func warmStates(n, apps, cores int) []*machine.QuantumState {
	out := make([]*machine.QuantumState, 0, n)
	for q := 0; q < n; q++ {
		st := &machine.QuantumState{
			Quantum:       q,
			NumApps:       apps,
			NumCores:      cores,
			DispatchWidth: 4,
			Prev:          make(machine.Placement, apps),
			Samples:       make([]pmu.Counters, apps),
		}
		for i := range st.Prev {
			st.Prev[i] = i / 2 // pair neighbours: (0,1) on core 0, (2,3) on core 1...
		}
		for i := range st.Samples {
			fe := uint64(500 + 900*((q*7+i*13)%8))
			st.Samples[i] = sampleWith(10000, 4000, fe, 8500-fe)
		}
		out = append(out, st)
	}
	return out
}

func TestWarmInversionsKeysMatchPlaceR(t *testing.T) {
	const apps, cores = 8, 4
	m := PaperCoefficients()
	sts := warmStates(6, apps, cores)

	// Reference: the placements an unwarmed policy produces.
	ref := MustPolicy(m, PolicyOptions{})
	ra := ref.NewArena()
	want := make([]machine.Placement, len(sts))
	for i, st := range sts {
		want[i] = ref.PlaceR(ra, st)
	}

	// Warmed run: prefetch all inversions, then place. Every inversion
	// PlaceR needs must already be memoised — zero misses — and the
	// placements must be bit-identical.
	p := MustPolicy(m, PolicyOptions{})
	a := p.NewArena()
	n := p.WarmInversions(a, sts)
	if n == 0 {
		t.Fatal("warm batched no inversions — the test workload is vacuous")
	}
	inv0, _ := a.CacheStats()
	for i, st := range sts {
		if got := p.PlaceR(a, st); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("state %d: warmed placement %v != unwarmed %v", i, got, want[i])
		}
	}
	inv1, _ := a.CacheStats()
	if misses := inv1.Misses - inv0.Misses; misses != 0 {
		t.Fatalf("PlaceR missed the memo %d times after warming — key mismatch", misses)
	}
	if inv1.Hits <= inv0.Hits {
		t.Fatal("PlaceR recorded no memo hits after warming")
	}

	// States off the pairwise path (SMT4, nil samples) are skipped, not
	// mis-keyed.
	smt4 := warmStates(1, 12, 3)
	smt4[0].SMTLevel = 4
	if got := p.WarmInversions(a, []*machine.QuantumState{smt4[0], nil, {NumApps: 2, NumCores: 4}}); got != 0 {
		t.Fatalf("warm batched %d inversions for off-path states, want 0", got)
	}
}

func TestArenaResetPoolReuse(t *testing.T) {
	const quanta, apps, cores = 10, 8, 4
	m := PaperCoefficients()
	p := MustPolicy(m, PolicyOptions{})

	run := func(a *Arena) []machine.Placement {
		return drivePlacements(func(st *machine.QuantumState) machine.Placement {
			return p.PlaceR(a, st)
		}, quanta, apps, cores)
	}

	a := p.NewArena()
	first := run(a)
	if len(a.LastSTEstimates()) == 0 {
		t.Fatal("run left no smoothing history — Reset has nothing to prove")
	}

	// Reset must clear the cross-request state (smoothing history) while
	// keeping the memo: the reused arena replays the exact reference
	// stream, as if freshly allocated.
	a.Reset()
	if len(a.LastSTEstimates()) != 0 {
		t.Fatal("Reset kept smoothing history")
	}
	inv0, _ := a.CacheStats()
	if inv0.Hits+inv0.Misses == 0 {
		t.Fatal("Reset dropped the memo — pooling would lose all warmth")
	}
	if second := run(a); !reflect.DeepEqual(second, first) {
		t.Fatalf("pooled (Reset) arena diverged from its own fresh run:\n got %v\nwant %v", second, first)
	}

	// And against a genuinely fresh arena, for the same stream.
	if fresh := run(p.NewArena()); !reflect.DeepEqual(fresh, first) {
		t.Fatalf("fresh arena diverged from pooled arena")
	}
}
