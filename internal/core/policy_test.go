package core

import (
	"testing"

	"synpa/internal/machine"
	"synpa/internal/pmu"
	"synpa/internal/xrand"
)

func TestNewPolicyValidation(t *testing.T) {
	if _, err := NewPolicy(nil, PolicyOptions{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewPolicy(&Model{}, PolicyOptions{}); err == nil {
		t.Fatal("invalid model accepted")
	}
	p, err := NewPolicy(PaperCoefficients(), PolicyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "SYNPA" {
		t.Fatalf("Name = %q", p.Name())
	}
	p2 := MustPolicy(PaperCoefficients(), PolicyOptions{Name: "SYNPA-x"})
	if p2.Name() != "SYNPA-x" {
		t.Fatalf("Name = %q", p2.Name())
	}
}

func TestMustPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPolicy did not panic")
		}
	}()
	MustPolicy(nil, PolicyOptions{})
}

func TestFirstQuantumIsArrivalOrder(t *testing.T) {
	p := MustPolicy(PaperCoefficients(), PolicyOptions{})
	place := p.Place(&machine.QuantumState{NumApps: 8, NumCores: 4, DispatchWidth: 4})
	want := machine.Placement{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if place[i] != want[i] {
			t.Fatalf("initial placement = %v, want %v", place, want)
		}
	}
}

// sampleWith builds a PMU quantum delta with the given category cycles.
func sampleWith(cycles, insts, fe, be uint64) pmu.Counters {
	var c pmu.Counters
	c[pmu.CPUCycles] = cycles
	c[pmu.InstSpec] = insts
	c[pmu.InstRetired] = insts
	c[pmu.StallFrontend] = fe
	c[pmu.StallBackend] = be
	return c
}

func TestPlacePairsComplementaryApps(t *testing.T) {
	// Four apps: two clearly backend-bound samples, two clearly
	// frontend-bound. With the paper's model the chosen pairing must mix
	// the types (each backend app with a frontend app).
	p := MustPolicy(PaperCoefficients(), PolicyOptions{})
	samples := []pmu.Counters{
		sampleWith(10000, 4000, 500, 8000), // backend
		sampleWith(10000, 4000, 8000, 500), // frontend
		sampleWith(10000, 4000, 400, 8200), // backend
		sampleWith(10000, 4000, 7800, 600), // frontend
	}
	st := &machine.QuantumState{
		Quantum:       1,
		NumApps:       4,
		NumCores:      2,
		DispatchWidth: 4,
		Prev:          machine.Placement{0, 0, 1, 1}, // BE+FE pairs already
		Samples:       samples,
	}
	place := p.Place(st)
	if err := place.Validate(2, 2); err != nil {
		t.Fatal(err)
	}
	// Apps 0,2 are backend; 1,3 frontend. Complementary pairing means 0
	// shares with 1 or 3, and 2 with the other.
	if place[0] == place[2] {
		t.Fatalf("placement %v pairs the two backend-bound apps", place)
	}
	if place[1] == place[3] {
		t.Fatalf("placement %v pairs the two frontend-bound apps", place)
	}
	if est := p.LastSTEstimates(); len(est) != 4 {
		t.Fatalf("LastSTEstimates has %d entries", len(est))
	}
}

func TestPlacePairsKeepsUnchangedPairingInPlace(t *testing.T) {
	// When the matching reproduces the previous pairing, placePairs must
	// not migrate anyone: pairs stay on their previous cores.
	prev := machine.Placement{0, 0, 1, 1}
	mate := []int{1, 0, 3, 2} // identical pairing
	place := placePairs(mate, 4, 2, prev)
	for i := range prev {
		if place[i] != prev[i] {
			t.Fatalf("unnecessary migration: %v -> %v", prev, place)
		}
	}
}

func TestPlacePairsReassignsChangedPairs(t *testing.T) {
	// Swapped partners: every pair should land on a core one of its
	// members occupied before, with no core hosting two pairs.
	prev := machine.Placement{0, 0, 1, 1}
	mate := []int{3, 2, 1, 0} // pairs (0,3), (1,2)
	place := placePairs(mate, 4, 2, prev)
	if err := place.Validate(2, 2); err != nil {
		t.Fatal(err)
	}
	if place[0] != place[3] || place[1] != place[2] || place[0] == place[1] {
		t.Fatalf("pairing broken: %v", place)
	}
}

func TestPlacePairsHandlesSoloAndEmpty(t *testing.T) {
	// 3 real apps + virtual idles on 2 cores: mate pairs app 2 with a
	// virtual idle slot (index >= numApps).
	prev := machine.Placement{0, 0, 1}
	mate := []int{1, 0, 3, 2} // (0,1) real pair; app 2 with virtual 3
	place := placePairs(mate, 3, 2, prev)
	if err := place.Validate(2, 2); err != nil {
		t.Fatal(err)
	}
	if place[0] != place[1] || place[2] == place[0] {
		t.Fatalf("solo placement broken: %v", place)
	}
}

func TestPlaceOddAppsUsesIdleSlots(t *testing.T) {
	// 3 apps on 2 cores: one app must run alone; nobody is dropped.
	p := MustPolicy(PaperCoefficients(), PolicyOptions{})
	samples := []pmu.Counters{
		sampleWith(10000, 4000, 500, 8000),
		sampleWith(10000, 4000, 8000, 500),
		sampleWith(10000, 4000, 400, 8200),
	}
	st := &machine.QuantumState{
		Quantum: 1, NumApps: 3, NumCores: 2, DispatchWidth: 4,
		Prev: machine.Placement{0, 0, 1}, Samples: samples,
	}
	place := p.Place(st)
	if err := place.Validate(2, 2); err != nil {
		t.Fatal(err)
	}
	if len(place) != 3 {
		t.Fatalf("placement %v", place)
	}
}

func TestMatchersAgreeOnOptimum(t *testing.T) {
	// Blossom and brute force must produce equal-cost pairings; greedy
	// may differ but must be valid.
	samples := []pmu.Counters{
		sampleWith(10000, 4000, 500, 8000),
		sampleWith(10000, 4000, 8000, 500),
		sampleWith(10000, 4000, 400, 8200),
		sampleWith(10000, 4000, 7800, 600),
		sampleWith(10000, 9000, 300, 400),
		sampleWith(10000, 2000, 4000, 3000),
		sampleWith(10000, 4000, 2000, 5000),
		sampleWith(10000, 5000, 1000, 3000),
	}
	prev := machine.Placement{0, 0, 1, 1, 2, 2, 3, 3}
	st := &machine.QuantumState{
		Quantum: 1, NumApps: 8, NumCores: 4, DispatchWidth: 4,
		Prev: prev, Samples: samples,
	}
	var placements []machine.Placement
	for _, matcher := range []Matcher{MatcherBlossom, MatcherBruteForce, MatcherGreedy} {
		p := MustPolicy(PaperCoefficients(), PolicyOptions{Matcher: matcher})
		place := p.Place(st)
		if err := place.Validate(4, 2); err != nil {
			t.Fatalf("%v: %v", matcher, err)
		}
		placements = append(placements, place)
	}
	// Blossom and brute force must induce equal-cost pairings (ties may
	// be broken differently). Reconstruct the degradation matrix through
	// the public API and compare totals.
	p := MustPolicy(PaperCoefficients(), PolicyOptions{})
	est := make([][]float64, 8)
	for i := 0; i < 8; i++ {
		fi := ThreeCategoryFractions(samples[i], 4)
		mate := prev.CoMate(i)
		fj := ThreeCategoryFractions(samples[mate], 4)
		ci, cj, _ := p.Model().Invert(fi, fj, DefaultInversion())
		if est[i] == nil {
			est[i] = ci
		}
		if est[mate] == nil {
			est[mate] = cj
		}
	}
	cost := func(pl machine.Placement) float64 {
		total := 0.0
		for i := 0; i < 8; i++ {
			if m := pl.CoMate(i); m > i {
				total += p.Model().PairDegradation(est[i], est[m])
			}
		}
		return total
	}
	blossomCost := cost(placements[0])
	bruteCost := cost(placements[1])
	greedyCost := cost(placements[2])
	if diff := blossomCost - bruteCost; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("blossom cost %v != brute-force cost %v", blossomCost, bruteCost)
	}
	if greedyCost < bruteCost-1e-6 {
		t.Fatalf("greedy cost %v beats the optimum %v (impossible)", greedyCost, bruteCost)
	}
}

func TestMatcherString(t *testing.T) {
	for _, m := range []Matcher{MatcherBlossom, MatcherBruteForce, MatcherGreedy, Matcher(9)} {
		if m.String() == "" {
			t.Fatalf("matcher %d has empty name", m)
		}
	}
}

func TestGreedyMatchComplete(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 20; trial++ {
		n := 2 * (1 + rng.Intn(4))
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64()
				w[i][j], w[j][i] = v, v
			}
		}
		mate := greedyMatch(w)
		for i, m := range mate {
			if m < 0 || mate[m] != i {
				t.Fatalf("greedy left vertex %d unmatched: %v", i, mate)
			}
		}
	}
}
