package core

// The reentrant policy path. A trained Policy is read-mostly after
// construction: the model, the resolved options and the memo closures never
// change. Everything that *does* mutate during a placement decision — the
// estimate double buffer, the weight matrix, the smoothing history, the
// grouping scratch and the cache handles — lives in an Arena, so one policy
// can serve many concurrent PlaceR calls share-nothing: each request (or
// serving goroutine) carries its own Arena, while the model and an optional
// predcache.Shared are shared read-mostly underneath.
//
// The classic machine.Policy surface is unchanged: Place delegates to
// PlaceR on a default arena owned by the policy, so single-threaded
// callers (every simulator engine) see bit-identical behaviour and the
// same CacheStats they always had.

import (
	"synpa/internal/matching"
	"synpa/internal/predcache"
)

// invertMemo is the inversion-cache surface the placement path needs; both
// the private predcache.InvertCache and a shared-cache InvertView satisfy
// it. Interface dispatch selects the storage, never the values: with
// Quantum 0 both are exact-key memos of the same pure function.
type invertMemo interface {
	Get(a, b []float64, fn predcache.InvertFn) ([]float64, []float64, bool)
	Stats() predcache.Stats
	Entries() int
}

// pairMemo is the pair-degradation analogue of invertMemo.
type pairMemo interface {
	Get(a, b []float64, fn predcache.PairFn) float64
	Stats() predcache.Stats
	Entries() int
}

// Arena is the per-request mutable state of one placement stream: scratch
// matrices, the cross-quantum smoothing history, and this stream's cache
// handles. An Arena is NOT safe for concurrent use — the concurrency model
// is one arena per goroutine, many arenas per policy. Build one with
// Policy.NewArena.
//
// The smoothing/hysteresis history (lastST, lastIDs, mates) is per-arena
// on purpose: each serving stream tracks the machine it is deciding for,
// so interleaved streams never blend each other's estimates.
type Arena struct {
	// lastST caches the most recent ST estimates per application for
	// smoothing, introspection and tests.
	lastST [][]float64
	// lastIDs holds the stable app identities behind lastST's rows (see
	// Policy docs: dynamic runs hand identities in AppIDs).
	lastIDs []int
	// mates is the reusable pairing view of the previous placement.
	mates []int

	// The estimate matrices double-buffer across quanta: the fresh
	// estimates are built in the buffer lastST does not occupy, smoothed
	// against lastST, and then become lastST themselves — no per-quantum
	// matrix allocation in steady state.
	estRows [2][][]float64
	estBack [2][]float64
	estCur  int
	// wRows/wBack back the reusable pair-cost matrix. Only off-diagonal
	// entries are ever written or read, and the backing array is zeroed at
	// allocation, so the diagonal stays zero across reuses.
	wRows [][]float64
	wBack []float64
	// meanBuf is the grouped path's reusable co-runner mean vector,
	// filled its reusable row-completion scratch, and frac its reusable
	// per-app fraction-row header slice.
	meanBuf []float64
	filled  []bool
	frac    [][]float64

	// mws is the Blossom matcher's reusable working memory: the solver's
	// O(n²) edge matrix is the dominant per-decision allocation, and
	// recycling it is bit-identical (matching.Workspace).
	mws matching.Workspace

	// The interference-prediction memo handles: private caches, or views
	// onto the policy's shared cache.
	inv  invertMemo
	pair pairMemo
	// mch memoizes whole Blossom matchings by the weight matrix's bit
	// pattern. Always private (see predcache.MatchCache), and disabled
	// together with the other memos.
	mch *predcache.MatchCache
}

// NewArena builds a fresh request arena: private caches when the policy
// has no shared cache installed, per-request views onto the shared cache
// otherwise.
func (p *Policy) NewArena() *Arena {
	a := &Arena{}
	p.initArena(a)
	return a
}

func (p *Policy) initArena(a *Arena) {
	a.mch = predcache.NewMatch(p.opt.Cache)
	if p.shared != nil {
		a.inv = p.shared.InvertView()
		a.pair = p.shared.PairView()
		return
	}
	a.inv = predcache.NewInvert(p.opt.Cache)
	a.pair = predcache.NewPair(p.opt.Cache)
}

// CacheStats returns the arena's own memo traffic (its view-local counts
// when backed by a shared cache).
func (a *Arena) CacheStats() (invert, pair predcache.Stats) {
	return a.inv.Stats(), a.pair.Stats()
}

// LastSTEstimates returns the ST category estimates computed by this
// arena's most recent PlaceR call (one row per application, in the call's
// live-set order), or nil before any model-driven decision. The rows are
// backed by the arena's double buffer: they stay valid until the next
// PlaceR call on this arena; copy to retain longer.
func (a *Arena) LastSTEstimates() [][]float64 { return a.lastST }

// Reset clears the arena's cross-request decision history — the smoothing
// estimates and their identities — so a pooled arena serves its next
// request exactly like a freshly built one. Everything else survives on
// purpose: the scratch matrices and the Blossom workspace are
// size-recycled buffers whose contents are fully overwritten per decision,
// and the prediction/matching memos are exact-bit-keyed caches of pure
// functions, so keeping them warm changes speed, never a result bit (the
// predcache package-comment argument). This is what makes serving-pool
// reuse bit-identical to one-arena-per-request.
func (a *Arena) Reset() {
	a.lastST = nil
	a.lastIDs = a.lastIDs[:0]
}

// MatchStats returns the arena's matching-memo traffic.
func (a *Arena) MatchStats() predcache.Stats { return a.mch.Stats() }

// SetSharedCache installs a shared concurrent memo behind every arena the
// policy builds from now on, including the default arena behind Place.
// Install before serving traffic: the switch rewires cache handles only,
// and any entries already in the old private caches are dropped (a speed
// change, never a result change — the memo layer is bit-identical by
// construction either way). A nil cache reverts to private per-arena
// caches.
func (p *Policy) SetSharedCache(c *predcache.Shared) {
	p.shared = c
	p.initArena(&p.def)
}

// SharedCache returns the installed shared cache, or nil when every arena
// owns private caches. Engines use this to tell whether per-decision cache
// deltas are schedule-independent (private) or not (shared).
func (p *Policy) SharedCache() *predcache.Shared { return p.shared }

// CacheEntries returns the resident entry counts of the default arena's
// caches (the whole shared cache's when one is installed — entries are
// global there by design).
func (p *Policy) CacheEntries() (invert, pair int) {
	if p.shared != nil {
		return p.shared.Entries()
	}
	return p.def.inv.Entries(), p.def.pair.Entries()
}

// newEstMatrix returns an n×k estimate matrix backed by the double buffer
// lastST does not currently occupy; smoothAndRemember flips the buffers
// when the matrix becomes lastST.
func (a *Arena) newEstMatrix(n, k int) [][]float64 {
	idx := 1 - a.estCur
	if cap(a.estBack[idx]) < n*k || cap(a.estRows[idx]) < n {
		a.estBack[idx] = make([]float64, n*k)
		a.estRows[idx] = make([][]float64, n)
	}
	back := a.estBack[idx][:n*k]
	rows := a.estRows[idx][:n]
	for i := range rows {
		rows[i] = back[i*k : (i+1)*k : (i+1)*k]
	}
	a.estRows[idx] = rows
	return rows
}

// wMatrix returns the arena's reusable total×total pair-cost matrix with a
// zeroed diagonal; callers overwrite every off-diagonal entry.
func (a *Arena) wMatrix(total int) [][]float64 {
	if cap(a.wBack) < total*total || cap(a.wRows) < total {
		a.wBack = make([]float64, total*total)
		a.wRows = make([][]float64, total)
	}
	back := a.wBack[:total*total]
	rows := a.wRows[:total]
	for i := 0; i < total; i++ {
		rows[i] = back[i*total : (i+1)*total : (i+1)*total]
		rows[i][i] = 0
	}
	return rows
}

// prevEstimate finds the previous quantum's ST estimate for a stable app
// identity, or nil if the app was not estimated then. lastIDs is always
// populated alongside lastST, so the scan covers closed-system runs too
// (identity permutation); O(n) per app is immaterial at SMT2 machine sizes.
func (a *Arena) prevEstimate(id int) []float64 {
	for j, pid := range a.lastIDs {
		if pid == id && j < len(a.lastST) {
			return a.lastST[j]
		}
	}
	return nil
}
