// Package core implements the paper's primary contribution: the SYNPA
// interference model and thread-to-core allocation policy (§IV).
//
// The model predicts, per performance category C, the value an application i
// will show in SMT execution with co-runner j from both applications'
// single-threaded (ST) values (Eq. 1):
//
//	C_smt[i,j] = α_C + β_C·C_st[i] + γ_C·C_st[j] + ρ_C·C_st[i]·C_st[j]
//
// Category values are normalised per unit of work: in ST execution the three
// categories of an application sum to 1 (they partition its cycles), and the
// predicted SMT values sum to the application's slowdown — "the sum of three
// categories gathered in SMT execution normalized to isolated execution will
// exceed 100 % cycles, which represents the slowdown" (§IV-A).
//
// The model is written generically over the number of categories so that the
// paper's discarded ten-category preliminary model (§VI-A) and the
// "IBM-style" five-equation comparator (§II) reuse the same machinery for
// the ablation and overhead benches.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Coefficients holds one category's Eq. 1 parameters. The json tags define
// the model wire format (see modelio.go) used by model files and the
// synpad /v1/model endpoint.
type Coefficients struct {
	Alpha float64 `json:"alpha"` // independent term
	Beta  float64 `json:"beta"`  // weight of the application's own ST value
	Gamma float64 `json:"gamma"` // weight of the co-runner's ST value
	Rho   float64 `json:"rho"`   // weight of the product term
}

// Predict evaluates Eq. 1 for one category.
func (c Coefficients) Predict(ci, cj float64) float64 {
	return c.Alpha + c.Beta*ci + c.Gamma*cj + c.Rho*ci*cj
}

// Model is a K-category interference model: one Eq. 1 per category.
type Model struct {
	// Categories names each category, in vector order.
	Categories []string `json:"categories"`
	// Coef holds the per-category coefficients, parallel to Categories.
	Coef []Coefficients `json:"coefficients"`
	// MSE optionally records each category's training mean squared error
	// (reported in §VI-A).
	MSE []float64 `json:"mse,omitempty"`
}

// ThreeCategories are the category names of the paper's final model, in
// vector order: full-dispatch cycles, frontend stalls, backend stalls.
var ThreeCategories = []string{"Full-dispatch cycles", "Frontend stalls", "Backend stalls"}

// PaperCoefficients returns the model published in paper Table IV, fitted on
// the authors' ThunderX2. It is kept as a reference point for documentation
// and coefficient-structure tests; experiments retrain on the simulator
// (§VII: "the regression model should be trained for the workloads to be
// run on the target system").
func PaperCoefficients() *Model {
	return &Model{
		Categories: ThreeCategories,
		Coef: []Coefficients{
			{Alpha: 0.0072, Beta: 0.9060, Gamma: 0.0044, Rho: 0.0314}, // full-dispatch
			{Alpha: 0.2376, Beta: 1.4111, Gamma: 0, Rho: 0},           // frontend stalls
			{Alpha: 0.2069, Beta: 0.3431, Gamma: 1.4391, Rho: 0},      // backend stalls
		},
		MSE: []float64{0.0021, 0.0703, 0.1583},
	}
}

// K returns the number of categories.
func (m *Model) K() int { return len(m.Coef) }

// Validate reports structural errors.
func (m *Model) Validate() error {
	if len(m.Coef) == 0 {
		return errors.New("core: model has no categories")
	}
	if len(m.Categories) != len(m.Coef) {
		return fmt.Errorf("core: %d category names for %d coefficient sets",
			len(m.Categories), len(m.Coef))
	}
	for i, c := range m.Coef {
		if math.IsNaN(c.Alpha+c.Beta+c.Gamma+c.Rho) || math.IsInf(c.Alpha+c.Beta+c.Gamma+c.Rho, 0) {
			return fmt.Errorf("core: category %d has non-finite coefficients", i)
		}
	}
	return nil
}

// PredictPair predicts application i's per-work SMT category vector when
// running with co-runner j, from both ST vectors. Negative predictions are
// clamped to zero (a category cannot take negative time).
func (m *Model) PredictPair(ci, cj []float64) []float64 {
	out := make([]float64, m.K())
	for k, c := range m.Coef {
		v := c.Predict(ci[k], cj[k])
		if v < 0 {
			v = 0
		}
		out[k] = v
	}
	return out
}

// PredictSlowdown predicts the slowdown application i suffers when
// co-scheduled with j: the sum of the predicted per-work SMT categories.
// For a well-calibrated model on a feasible pair this is >= ~1.
func (m *Model) PredictSlowdown(ci, cj []float64) float64 {
	s := 0.0
	for k, c := range m.Coef {
		v := c.Predict(ci[k], cj[k])
		if v < 0 {
			v = 0
		}
		s += v
	}
	return s
}

// PairDegradation is the symmetric pair cost SYNPA minimises: the sum of
// both directions' predicted slowdowns.
func (m *Model) PairDegradation(ci, cj []float64) float64 {
	return m.PredictSlowdown(ci, cj) + m.PredictSlowdown(cj, ci)
}

// InversionOptions tune the model inversion.
type InversionOptions struct {
	// MaxOuter bounds the slowdown fixed-point iterations.
	MaxOuter int
	// MaxNewton bounds the per-category Newton iterations.
	MaxNewton int
	// Tol is the convergence tolerance on the slowdown estimates.
	Tol float64
}

// DefaultInversion returns the tolerances used by the SYNPA policy.
func DefaultInversion() InversionOptions {
	return InversionOptions{MaxOuter: 25, MaxNewton: 30, Tol: 1e-6}
}

// Invert recovers both applications' ST category vectors from their measured
// SMT category *fractions* (each normalised to its own SMT cycles, summing
// to ~1). This is the runtime estimation step of SYNPA (§IV-B Step 1),
// following the model-inversion idea of Feliu et al. [4]: the same Eq. 1
// system that predicts SMT values from ST values is solved in the opposite
// direction.
//
// Because the model's outputs are per-work values (summing to the slowdown)
// while runtime measurements are fractions (summing to 1), the inversion
// also has to recover the unknown slowdowns s_i and s_j. It alternates:
//
//  1. scale fractions by the current slowdown estimates to get per-work
//     measurements;
//  2. per category, solve the 2×2 nonlinear system (Newton) for the two ST
//     values;
//  3. project each recovered ST vector onto the simplex (ST categories
//     partition 100 % of cycles);
//  4. refresh the slowdown estimates by running the model forward.
//
// It returns the recovered ST vectors and whether the fixed point converged;
// on non-convergence the best effort so far is returned (the policy then
// still has usable, if noisier, estimates — matching the "relatively good
// accuracy" caveat in §IV-B).
func (m *Model) Invert(fi, fj []float64, opt InversionOptions) (ci, cj []float64, converged bool) {
	k := m.K()
	ci = append([]float64(nil), fi...)
	cj = append([]float64(nil), fj...)
	normalize(ci)
	normalize(cj)

	si, sj := 1.2, 1.2 // a mild initial SMT slowdown guess
	for outer := 0; outer < opt.MaxOuter; outer++ {
		for cat := 0; cat < k; cat++ {
			pi := fi[cat] * si
			pj := fj[cat] * sj
			x, y := m.solveCategory(cat, pi, pj, ci[cat], cj[cat], opt.MaxNewton)
			ci[cat], cj[cat] = x, y
		}
		normalize(ci)
		normalize(cj)

		newSi := m.PredictSlowdown(ci, cj)
		newSj := m.PredictSlowdown(cj, ci)
		// Slowdowns below 1 are physically impossible; keep the fixed
		// point in the feasible region.
		if newSi < 1 {
			newSi = 1
		}
		if newSj < 1 {
			newSj = 1
		}
		if math.Abs(newSi-si) < opt.Tol && math.Abs(newSj-sj) < opt.Tol {
			return ci, cj, true
		}
		si, sj = newSi, newSj
	}
	return ci, cj, false
}

// solveCategory solves the per-category 2×2 system
//
//	pi = α + β·x + γ·y + ρ·x·y
//	pj = α + β·y + γ·x + ρ·x·y
//
// for (x, y) by Newton's method, starting from (x0, y0). Results are clamped
// to [0, 2] — ST fractions live in [0, 1], with slack for intermediate
// iterates.
func (m *Model) solveCategory(cat int, pi, pj, x0, y0 float64, maxIter int) (float64, float64) {
	c := m.Coef[cat]
	x, y := clamp01x2(x0), clamp01x2(y0)
	for iter := 0; iter < maxIter; iter++ {
		f1 := c.Alpha + c.Beta*x + c.Gamma*y + c.Rho*x*y - pi
		f2 := c.Alpha + c.Beta*y + c.Gamma*x + c.Rho*x*y - pj
		if math.Abs(f1) < 1e-12 && math.Abs(f2) < 1e-12 {
			break
		}
		// Jacobian.
		j11 := c.Beta + c.Rho*y
		j12 := c.Gamma + c.Rho*x
		j21 := c.Gamma + c.Rho*y
		j22 := c.Beta + c.Rho*x
		det := j11*j22 - j12*j21
		if math.Abs(det) < 1e-12 {
			// Singular (e.g. the paper's FE category where γ=ρ=0 makes
			// the equations decouple — but then det = β² > 0 unless
			// β=0). Fall back to the decoupled per-equation solution.
			if c.Beta != 0 {
				x = clamp01x2((pi - c.Alpha - c.Gamma*y) / (c.Beta + c.Rho*y))
				y = clamp01x2((pj - c.Alpha - c.Gamma*x) / (c.Beta + c.Rho*x))
			}
			break
		}
		dx := (f1*j22 - f2*j12) / det
		dy := (f2*j11 - f1*j21) / det
		x = clamp01x2(x - dx)
		y = clamp01x2(y - dy)
		if math.Abs(dx) < 1e-12 && math.Abs(dy) < 1e-12 {
			break
		}
	}
	return x, y
}

func clamp01x2(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 2 {
		return 2
	}
	return v
}

// normalize projects a non-negative vector onto the probability simplex by
// scaling (ST categories partition the application's cycles). A zero vector
// becomes uniform.
func normalize(v []float64) {
	s := 0.0
	for i, x := range v {
		if x < 0 {
			v[i] = 0
			continue
		}
		s += x
	}
	if s <= 0 {
		for i := range v {
			v[i] = 1 / float64(len(v))
		}
		return
	}
	for i := range v {
		if v[i] > 0 {
			v[i] /= s
		}
	}
}
