package core

// The grouped allocation path: SYNPA's Step 3 for SMT levels above 2, where
// the per-quantum pair selection becomes the weighted set-partition problem
// of the paper's follow-up ("A New Family of Thread to Core Allocation
// Policies for an SMT ARM Processor", arXiv:2507.00855). The pairwise
// interference model keeps driving the decision: a candidate group's cost
// is the sum of its members' pairwise predicted degradations, and
// internal/grouping minimises the total over all core groups. At SMT2 the
// subsystem delegates to the same blossom matcher as the classic path, so
// ForceGrouping reproduces the pairwise placements exactly (differential
// test in grouped_test.go).

import (
	"math"

	"synpa/internal/grouping"
	"synpa/internal/machine"
	"synpa/internal/perfstat"
)

// placeGrouped is PlaceR for machines running level (> 2, or 2 under
// ForceGrouping) hardware threads per core; all scratch comes from the
// caller's arena.
func (p *Policy) placeGrouped(a *Arena, st *machine.QuantumState, level int) machine.Placement {
	if st.Samples == nil || st.Prev == nil {
		return arrivalOrderPlacement(st.NumApps, st.NumCores)
	}
	n := st.NumApps

	// Step 1: estimate each application's ST category vector by inverting
	// the model against its co-runner set. The set is summarised by the
	// mean co-runner fraction vector — the pairwise model's first-order
	// aggregate, which with a single co-runner reduces to the exact
	// pairwise inversion of the classic path. The estimate matrix is
	// double-buffered and inversions are memoized, exactly as in the
	// pairwise path.
	groups := st.Prev.PairsOf(st.NumCores)
	if cap(a.frac) < n {
		a.frac = make([][]float64, n)
	}
	frac := a.frac[:n]
	for i := 0; i < n; i++ {
		frac[i] = p.opt.Extract(st.Samples[i], st.DispatchWidth)
	}
	est := a.newEstMatrix(n, p.model.K())
	if cap(a.filled) < n {
		a.filled = make([]bool, n)
	}
	filled := a.filled[:n]
	for i := range filled {
		filled[i] = false
	}
	if !p.opt.DisableInversion {
		for _, g := range groups {
			for _, i := range g {
				var mean []float64
				others := 0
				for _, j := range g {
					if j == i {
						continue
					}
					if mean == nil {
						if cap(a.meanBuf) < len(frac[j]) {
							a.meanBuf = make([]float64, len(frac[j]))
						}
						mean = a.meanBuf[:len(frac[j])]
						for k := range mean {
							mean[k] = 0
						}
					}
					for k := range frac[j] {
						mean[k] += frac[j][k]
					}
					others++
				}
				if others == 0 {
					continue // solo: handled below, measurements are ST already
				}
				if others > 1 {
					for k := range mean {
						mean[k] /= float64(others)
					}
				}
				ci, _, _ := a.inv.Get(frac[i], mean, p.invertFn)
				copy(est[i], ci)
				filled[i] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if !filled[i] {
			// Running alone (its measurements are ST already), not in any
			// Prev group, or the inversion ablation is active.
			copy(est[i], frac[i])
			normalize(est[i])
		}
	}
	p.smoothAndRemember(a, st, est)

	// Step 2: the pairwise degradation matrix over the live applications,
	// reused across quanta with memoized predictions.
	w := a.wMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cost := a.pair.Get(est[i], est[j], p.pairFn)
			if math.IsNaN(cost) || math.IsInf(cost, 0) {
				cost = 1e6
			}
			w[i][j], w[j][i] = cost, cost
		}
	}

	// Step 3: minimum-cost partition into at most NumCores groups of at
	// most level members.
	t0 := perfstat.PhaseClock()
	res, err := grouping.Partition(w, st.NumCores, level, p.opt.Grouping)
	perfstat.PhaseAdd(perfstat.PhaseMatching, t0)
	if err != nil {
		// Partitioning cannot fail on a validated live set; if it somehow
		// does, keep the previous placement rather than crash the manager
		// (only if every app already has a core — under dynamic occupancy
		// a fresh arrival does not).
		if fullyPlaced(st.Prev, st.NumCores) {
			return st.Prev.Clone()
		}
		return arrivalOrderPlacement(n, st.NumCores)
	}

	// Hysteresis over groups: only migrate when the predicted gain is
	// material, evaluating the previous grouping under the same matrix and
	// the same solo-cost scale Partition priced the new one with.
	if p.opt.Hysteresis > 0 && fullyPlaced(st.Prev, st.NumCores) {
		prevCost := grouping.PartitionCost(w, groups, p.opt.Grouping.ResolvedSoloCost())
		if prevCost-res.Cost < p.opt.Hysteresis*prevCost {
			return st.Prev.Clone()
		}
	}

	return placeGroups(res.Groups, n, st.NumCores, st.Prev)
}

// placeGroups maps solved groups onto cores, preferring each group's
// previous core to minimise migrations (a group that stays put keeps its
// pipeline state). It is placePairs generalised to arbitrary group sizes.
func placeGroups(groups [][]int, numApps, numCores int, prev machine.Placement) machine.Placement {
	place := make(machine.Placement, numApps)
	for i := range place {
		place[i] = -1
	}
	usedCore := make([]bool, numCores)
	assigned := make([]bool, len(groups))

	// First pass: groups that can stay on a previous core of one member.
	for gi, g := range groups {
		for _, member := range g {
			if member < 0 || member >= len(prev) {
				continue
			}
			c := prev[member]
			if c >= 0 && c < numCores && !usedCore[c] {
				for _, m := range g {
					place[m] = c
				}
				usedCore[c] = true
				assigned[gi] = true
				break
			}
		}
	}
	// Second pass: remaining groups take the lowest free core.
	next := 0
	for gi, g := range groups {
		if assigned[gi] {
			continue
		}
		for next < numCores && usedCore[next] {
			next++
		}
		if next >= numCores {
			break // cannot happen: groups <= cores
		}
		for _, m := range g {
			place[m] = next
		}
		usedCore[next] = true
	}
	// Defensive: any unplaced app (impossible in normal operation) goes to
	// core 0's first free slot.
	for i := range place {
		if place[i] < 0 {
			place[i] = 0
		}
	}
	return place
}
