package characterize

import (
	"math"
	"testing"
	"testing/quick"

	"synpa/internal/pmu"
)

// counters builds a snapshot from the four Table I events plus retired.
func counters(cycles, insts, fe, be uint64) pmu.Counters {
	var c pmu.Counters
	c[pmu.CPUCycles] = cycles
	c[pmu.InstSpec] = insts
	c[pmu.StallFrontend] = fe
	c[pmu.StallBackend] = be
	c[pmu.InstRetired] = insts
	return c
}

func TestThreeStepKnownValues(t *testing.T) {
	// 1000 cycles: 300 FE stalls, 400 BE stalls, 300 dispatch cycles in
	// which 600 µops dispatched on a 4-wide machine.
	b := FromCounters(counters(1000, 600, 300, 400), 4)

	// Step 1.
	if b.DispCycle != 300 {
		t.Fatalf("Dc = %d, want 300", b.DispCycle)
	}
	// Step 2: F-Dc = 600/4 = 150; Reveals = 300-150 = 150.
	if b.FullDispatch != 150 || b.Revealed != 150 {
		t.Fatalf("F-Dc = %v, Reveals = %v, want 150/150", b.FullDispatch, b.Revealed)
	}
	// Step 3 (default): FD=150/1000, FE=300/1000, BE=(400+150)/1000.
	if math.Abs(b.FD-0.15) > 1e-12 || math.Abs(b.FE-0.30) > 1e-12 || math.Abs(b.BE-0.55) > 1e-12 {
		t.Fatalf("fractions = %v/%v/%v, want 0.15/0.30/0.55", b.FD, b.FE, b.BE)
	}
	if s := b.FD + b.FE + b.BE; math.Abs(s-1) > 1e-12 {
		t.Fatalf("fractions sum to %v, want 1", s)
	}
}

func TestSplitRules(t *testing.T) {
	c := counters(1000, 600, 300, 400) // Reveals = 150

	eq := FromCountersRule(c, 4, RevealsEqual)
	if math.Abs(eq.FE-0.375) > 1e-12 || math.Abs(eq.BE-0.475) > 1e-12 {
		t.Fatalf("equal split = FE %v BE %v, want 0.375/0.475", eq.FE, eq.BE)
	}

	// Proportional: FE gets 150·300/700, BE gets 150·400/700.
	pr := FromCountersRule(c, 4, RevealsProportional)
	wantFE := (300 + 150.0*300/700) / 1000
	wantBE := (400 + 150.0*400/700) / 1000
	if math.Abs(pr.FE-wantFE) > 1e-12 || math.Abs(pr.BE-wantBE) > 1e-12 {
		t.Fatalf("proportional split = FE %v BE %v, want %v/%v", pr.FE, pr.BE, wantFE, wantBE)
	}

	// All rules conserve the total.
	for _, b := range []Breakdown{eq, pr} {
		if s := b.FD + b.FE + b.BE; math.Abs(s-1) > 1e-12 {
			t.Fatalf("rule fractions sum to %v", s)
		}
	}
}

func TestProportionalWithNoMeasuredStalls(t *testing.T) {
	// No FE/BE stalls at all: reveals must land in the backend.
	c := counters(1000, 1000, 0, 0)
	b := FromCountersRule(c, 4, RevealsProportional)
	if math.Abs(b.BE-0.75) > 1e-12 || b.FE != 0 {
		t.Fatalf("got FE %v BE %v, want 0/0.75", b.FE, b.BE)
	}
}

func TestZeroCycles(t *testing.T) {
	b := FromCounters(pmu.Counters{}, 4)
	if b.FD != 0 || b.FE != 0 || b.BE != 0 {
		t.Fatalf("zero snapshot gave %v", b)
	}
}

func TestOverReportedStallsClamped(t *testing.T) {
	// Defensive clamp: stalls exceeding cycles (multiplexed real PMUs).
	b := FromCounters(counters(100, 10, 80, 80), 4)
	if b.DispCycle != 0 {
		t.Fatalf("Dc = %d, want 0 after clamp", b.DispCycle)
	}
	if b.FD < 0 || b.Revealed < 0 {
		t.Fatalf("negative quantities after clamp: %+v", b)
	}
}

func TestFullDispatchClamp(t *testing.T) {
	// INST_SPEC so high that F-Dc would exceed measured dispatch cycles.
	b := FromCounters(counters(100, 4000, 50, 40), 4)
	if b.FullDispatch != 10 || b.Revealed != 0 {
		t.Fatalf("F-Dc = %v Reveals = %v, want 10/0", b.FullDispatch, b.Revealed)
	}
}

func TestWidthGuard(t *testing.T) {
	b := FromCountersRule(counters(100, 40, 10, 10), 0, RevealsToBackend)
	if b.FullDispatch != 40 {
		t.Fatalf("width guard failed: F-Dc = %v", b.FullDispatch)
	}
}

func TestGroupThresholds(t *testing.T) {
	cases := []struct {
		fd, fe, be float64
		want       string
	}{
		{0.10, 0.10, 0.80, "Backend bound"},
		{0.15, 0.20, 0.651, "Backend bound"},
		{0.30, 0.40, 0.30, "Frontend bound"},
		{0.30, 0.351, 0.349, "Frontend bound"},
		{0.40, 0.30, 0.30, "Others"},
		{0.40, 0.35, 0.25, "Others"}, // exactly at threshold is not above
		{0.35, 0.00, 0.65, "Others"},
	}
	for _, c := range cases {
		b := Breakdown{FD: c.fd, FE: c.fe, BE: c.be}
		if got := b.Group(); got != c.want {
			t.Errorf("FD=%v FE=%v BE=%v → %q, want %q", c.fd, c.fe, c.be, got, c.want)
		}
	}
}

func TestDominantIsBackend(t *testing.T) {
	if !(Breakdown{FE: 0.2, BE: 0.3}).DominantIsBackend() {
		t.Fatal("BE 0.3 vs FE 0.2 should be backend-dominant")
	}
	if (Breakdown{FE: 0.4, BE: 0.3}).DominantIsBackend() {
		t.Fatal("FE 0.4 vs BE 0.3 should be frontend-dominant")
	}
}

func TestCategories(t *testing.T) {
	b := Breakdown{FD: 0.1, FE: 0.2, BE: 0.7}
	if got := b.Categories(); got != [3]float64{0.1, 0.2, 0.7} {
		t.Fatalf("Categories = %v", got)
	}
}

func TestSplitRuleString(t *testing.T) {
	for _, r := range []SplitRule{RevealsToBackend, RevealsEqual, RevealsProportional, SplitRule(9)} {
		if r.String() == "" {
			t.Errorf("rule %d has empty name", r)
		}
	}
}

func TestFractionsAlwaysValidProperty(t *testing.T) {
	// For any physically consistent counter snapshot the three fractions
	// are non-negative and sum to 1 under every split rule.
	check := func(cycRaw uint32, feRaw, beRaw, instRaw uint32, ruleRaw uint8) bool {
		cycles := uint64(cycRaw%100000) + 1
		fe := uint64(feRaw) % cycles
		be := uint64(beRaw) % (cycles - fe)
		disp := cycles - fe - be
		insts := uint64(instRaw) % (4*disp + 1)
		rule := SplitRule(ruleRaw % 3)
		b := FromCountersRule(counters(cycles, insts, fe, be), 4, rule)
		if b.FD < -1e-12 || b.FE < -1e-12 || b.BE < -1e-12 {
			return false
		}
		return math.Abs(b.FD+b.FE+b.BE-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
