// Package characterize implements the paper's three-step dispatch-stage
// cycle characterization (§III-B, Fig. 2), turning the four ARM PMU events
// of Table I into the three categories SYNPA's model consumes.
//
// Step 1 — measured events. A cycle is either a frontend stall (dispatch
// queue empty), a backend stall (no backend resource available), or a
// dispatch cycle (at least one operation dispatched):
//
//	Dc = CPU_CYCLES − STALL_FRONTEND − STALL_BACKEND
//
// Step 2 — revealed horizontal waste. The stall counters only tick on
// zero-dispatch cycles, so a cycle dispatching one µop on a 4-wide machine
// hides three wasted slots. The equivalent full-dispatch cycles are
//
//	F-Dc = INST_SPEC / DispatchWidth
//
// and the difference Reveals = Dc − F-Dc is stall time the counters cannot
// see.
//
// Step 3 — attribution. Frontend events (squashes, I-cache misses) empty
// the queue entirely and are already counted; horizontal waste comes almost
// exclusively from the backend. The paper therefore assigns Reveals to the
// backend category. The alternative splitting rules the authors evaluated
// and rejected (equal and proportional splits) are implemented for the
// ablation benches.
package characterize

import (
	"fmt"

	"synpa/internal/pmu"
)

// SplitRule selects how Step 3 attributes the revealed stalls.
type SplitRule int

const (
	// RevealsToBackend assigns all revealed stalls to the backend
	// category — the paper's choice, found to give the most accurate
	// regression model.
	RevealsToBackend SplitRule = iota
	// RevealsEqual splits revealed stalls evenly between frontend and
	// backend (evaluated and rejected in §III-B).
	RevealsEqual
	// RevealsProportional splits revealed stalls in proportion to the
	// measured frontend/backend stall counts (evaluated and rejected).
	RevealsProportional
)

// String names the rule for experiment output.
func (r SplitRule) String() string {
	switch r {
	case RevealsToBackend:
		return "reveals->backend"
	case RevealsEqual:
		return "reveals-equal"
	case RevealsProportional:
		return "reveals-proportional"
	}
	return fmt.Sprintf("SplitRule(%d)", int(r))
}

// Breakdown is the result of characterizing one measurement interval.
type Breakdown struct {
	// Raw inputs.
	Cycles    uint64
	Insts     uint64 // INST_SPEC
	Retired   uint64
	FEStalls  uint64 // STALL_FRONTEND
	BEStalls  uint64 // STALL_BACKEND
	DispCycle uint64 // Step 1 dispatch cycles

	// Step 2 quantities (in cycles).
	FullDispatch float64 // F-Dc = Insts / width
	Revealed     float64 // Dc − F-Dc

	// Step 3 category fractions of total cycles. FD+FE+BE ≈ 1.
	FD float64
	FE float64
	BE float64
}

// FromCounters characterizes a counter snapshot (typically a quantum delta)
// with the paper's default Step 3 rule.
func FromCounters(c pmu.Counters, width int) Breakdown {
	return FromCountersRule(c, width, RevealsToBackend)
}

// FromCountersRule characterizes a counter snapshot using the given Step 3
// splitting rule. A zero-cycle snapshot yields a zero Breakdown.
func FromCountersRule(c pmu.Counters, width int, rule SplitRule) Breakdown {
	b := Breakdown{
		Cycles:   c[pmu.CPUCycles],
		Insts:    c[pmu.InstSpec],
		Retired:  c[pmu.InstRetired],
		FEStalls: c[pmu.StallFrontend],
		BEStalls: c[pmu.StallBackend],
	}
	if b.Cycles == 0 {
		return b
	}
	stalls := b.FEStalls + b.BEStalls
	if stalls > b.Cycles {
		// Defensive: cannot happen with the simulator's semantics, but a
		// real PMU multiplexing counters can over-report; clamp.
		stalls = b.Cycles
	}
	b.DispCycle = b.Cycles - stalls

	if width < 1 {
		width = 1
	}
	b.FullDispatch = float64(b.Insts) / float64(width)
	if b.FullDispatch > float64(b.DispCycle) {
		// INST_SPEC can round above the dispatch-cycle count on short
		// intervals; the revealed waste is then zero.
		b.FullDispatch = float64(b.DispCycle)
	}
	b.Revealed = float64(b.DispCycle) - b.FullDispatch

	total := float64(b.Cycles)
	fe := float64(b.FEStalls)
	be := float64(b.BEStalls)
	switch rule {
	case RevealsEqual:
		fe += b.Revealed / 2
		be += b.Revealed / 2
	case RevealsProportional:
		if sum := fe + be; sum > 0 {
			fe += b.Revealed * fe / sum
			be += b.Revealed * be / sum
		} else {
			be += b.Revealed
		}
	default: // RevealsToBackend
		be += b.Revealed
	}

	b.FD = b.FullDispatch / total
	b.FE = fe / total
	b.BE = be / total
	return b
}

// Categories returns the three Step 3 fractions in model order
// (full-dispatch, frontend, backend).
func (b Breakdown) Categories() [3]float64 { return [3]float64{b.FD, b.FE, b.BE} }

// DominantIsBackend reports whether the interval is backend-dominated,
// the per-quantum classification used in the paper's Table V analysis.
func (b Breakdown) DominantIsBackend() bool { return b.BE >= b.FE }

// Group applies the paper's Table III thresholds to an isolated-execution
// breakdown: backend bound above 65 % backend stalls, frontend bound above
// 35 % frontend stalls, others otherwise.
func (b Breakdown) Group() string {
	switch {
	case b.BE > 0.65:
		return "Backend bound"
	case b.FE > 0.35:
		return "Frontend bound"
	default:
		return "Others"
	}
}
