package machine

import (
	"reflect"
	"testing"
)

// Partial-occupancy invariants of Placement: fewer apps than hardware
// threads, solo apps and empty cores are all legal states of a dynamic run
// and every helper must handle them.

func TestPlacementValidatePartialOccupancy(t *testing.T) {
	cases := []struct {
		name  string
		p     Placement
		cores int
		ok    bool
	}{
		{"empty placement", Placement{}, 4, true},
		{"solo app", Placement{2}, 4, true},
		{"three apps on four cores", Placement{0, 0, 3}, 4, true},
		{"five apps odd occupancy", Placement{0, 0, 1, 2, 3}, 4, true},
		{"full machine", Placement{0, 0, 1, 1, 2, 2, 3, 3}, 4, true},
		{"negative core", Placement{Unplaced}, 4, false},
		{"core out of range", Placement{4}, 4, false},
		{"three apps one core", Placement{1, 1, 1}, 4, false},
	}
	for _, c := range cases {
		err := c.p.Validate(c.cores, 2)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate(%d, 2) = %v, want ok=%v", c.name, c.cores, err, c.ok)
		}
	}
	// At SMT4 the same triple-on-one-core placement is legal, and a quint
	// is not.
	if err := (Placement{1, 1, 1}).Validate(4, 4); err != nil {
		t.Errorf("SMT4 triple rejected: %v", err)
	}
	if err := (Placement{1, 1, 1, 1, 1}).Validate(4, 4); err == nil {
		t.Errorf("five apps on one SMT4 core accepted")
	}
}

func TestPairsOfPartialOccupancy(t *testing.T) {
	// Three apps on four cores: a pair on core 1, a solo on core 3,
	// cores 0 and 2 empty.
	p := Placement{1, 3, 1}
	pairs := p.PairsOf(4)
	if len(pairs) != 4 {
		t.Fatalf("PairsOf returned %d cores", len(pairs))
	}
	if len(pairs[0]) != 0 || len(pairs[2]) != 0 {
		t.Fatalf("empty cores not empty: %v", pairs)
	}
	if !reflect.DeepEqual(pairs[1], []int{0, 2}) {
		t.Fatalf("core 1 = %v, want [0 2]", pairs[1])
	}
	if !reflect.DeepEqual(pairs[3], []int{1}) {
		t.Fatalf("core 3 = %v, want [1]", pairs[3])
	}
	// Unplaced entries (a dynamic Prev view) are skipped, not crashed on.
	withUnplaced := Placement{Unplaced, 2, Unplaced}
	pairs = withUnplaced.PairsOf(4)
	if !reflect.DeepEqual(pairs[2], []int{1}) || len(pairs[0]) != 0 {
		t.Fatalf("unplaced-view pairs = %v", pairs)
	}
}

func TestCoMatesPartialOccupancy(t *testing.T) {
	// Solo apps have no co-mate; paired apps point at each other; the
	// empty placement yields an empty view.
	if got := (Placement{}).CoMates(nil); len(got) != 0 {
		t.Fatalf("CoMates of empty placement = %v", got)
	}
	cases := []struct {
		p    Placement
		want []int
	}{
		{Placement{3}, []int{-1}},                                  // solo
		{Placement{1, 3, 1}, []int{2, -1, 0}},                      // pair + solo
		{Placement{0, 0, 1, 2, 3}, []int{1, 0, -1, -1, -1}},        // odd occupancy
		{Placement{Unplaced, 2, Unplaced, 2}, []int{-1, 3, -1, 1}}, // dynamic Prev view
	}
	for _, c := range cases {
		got := c.p.CoMates(nil)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("CoMates(%v) = %v, want %v", c.p, got, c.want)
		}
		// CoMate (the O(n) single query) must agree with the batch view.
		for i := range c.p {
			if cm := c.p.CoMate(i); cm != c.want[i] {
				t.Errorf("CoMate(%v, %d) = %d, want %d", c.p, i, cm, c.want[i])
			}
		}
	}
}
