package machine

import (
	"reflect"
	"testing"

	"synpa/internal/apps"
)

// fillPolicy keeps each live app on its previous core when it has one and
// sends newcomers to the least-loaded core — a dynamic-safe static
// baseline (st.Prev may hold Unplaced entries for fresh arrivals).
type fillPolicy struct{}

func (fillPolicy) Name() string { return "fill-test" }
func (fillPolicy) Place(st *QuantumState) Placement {
	level := st.ThreadsPerCore()
	p := make(Placement, st.NumApps)
	load := make([]int, st.NumCores)
	for i := range p {
		p[i] = Unplaced
		if st.Prev == nil || i >= len(st.Prev) {
			continue
		}
		if c := st.Prev[i]; c >= 0 && c < st.NumCores && load[c] < level {
			p[i] = c
			load[c]++
		}
	}
	for i := range p {
		if p[i] >= 0 {
			continue
		}
		best := 0
		for c := 1; c < st.NumCores; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		p[i] = best
		load[best]++
	}
	return p
}

// runWithWorkers executes one closed-system run with the given worker
// count and full tracing.
func runWithWorkers(t *testing.T, workers int) *Result {
	t.Helper()
	cfg := testConfig()
	cfg.Parallel = true
	cfg.Workers = workers
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", m.Workers(), workers)
	}
	models := nModels(8)
	targets := make([]uint64, len(models))
	for i := range targets {
		targets[i] = 120_000
	}
	res, err := m.Run(models, targets, staticPolicy{}, RunnerOptions{Seed: 7, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunWorkersBitIdentical pins the core-sharded parallel quantum engine
// to the serial path: Workers=N and Workers=1 must produce bit-identical
// results — placements, per-quantum samples and per-app outcomes.
func TestRunWorkersBitIdentical(t *testing.T) {
	serial := runWithWorkers(t, 1)
	for _, workers := range []int{2, 3, 4} {
		par := runWithWorkers(t, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("Workers=%d diverges from Workers=1", workers)
		}
	}
}

// TestRunDynamicWorkersBitIdentical is the open-system counterpart: the
// dynamic runner's partially occupied slices must also be bit-identical
// across worker counts.
func TestRunDynamicWorkersBitIdentical(t *testing.T) {
	dynRun := func(workers int) *DynamicResult {
		cfg := testConfig()
		cfg.Parallel = true
		cfg.Workers = workers
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		models := nModels(6)
		work := make([]DynamicApp, len(models))
		for i, mod := range models {
			work[i] = DynamicApp{
				Model:    mod,
				Target:   60_000,
				ArriveAt: uint64(i) * 9_000, // staggered arrivals, odd live counts
			}
		}
		res, err := m.RunDynamic(work, fillPolicy{}, DynamicOptions{
			Seed:             11,
			RecordPlacements: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := dynRun(1)
	for _, workers := range []int{2, 4} {
		if par := dynRun(workers); !reflect.DeepEqual(serial, par) {
			t.Fatalf("dynamic Workers=%d diverges from Workers=1", workers)
		}
	}
}

// TestEffectiveWorkers covers the resolution rules: Parallel gating, the
// explicit count, and the core-count cap.
func TestEffectiveWorkers(t *testing.T) {
	cfg := testConfig() // Parallel=false
	if w := cfg.EffectiveWorkers(); w != 1 {
		t.Fatalf("serial config resolved %d workers", w)
	}
	cfg.Parallel = true
	cfg.Workers = 3
	if w := cfg.EffectiveWorkers(); w != 3 {
		t.Fatalf("explicit Workers=3 resolved %d", w)
	}
	cfg.Workers = 99
	if w := cfg.EffectiveWorkers(); w != cfg.Cores {
		t.Fatalf("Workers above core count resolved %d, want %d", w, cfg.Cores)
	}
	t.Setenv(WorkersEnv, "1")
	cfg.Workers = 4
	if w := cfg.EffectiveWorkers(); w != 1 {
		t.Fatalf("SYNPA_WORKERS=1 resolved %d workers", w)
	}
}

// TestWorkersIdleCores exercises the sharded engine with more hardware
// threads than applications (idle cores in the busy mask path).
func TestWorkersIdleCores(t *testing.T) {
	run := func(workers int) *Result {
		cfg := testConfig()
		cfg.Parallel = true
		cfg.Workers = workers
		cfg.Cores = 6
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		models := nModels(3) // three apps on six cores
		res, err := m.Run(models, []uint64{50_000, 50_000, 50_000}, staticPolicy{}, RunnerOptions{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	if par := run(4); !reflect.DeepEqual(serial, par) {
		t.Fatal("idle-core run diverges across worker counts")
	}
	// The apps package catalogue must stay usable after the runs (guards
	// against accidental shared-state mutation across worker goroutines).
	if _, err := apps.ByName("mcf"); err != nil {
		t.Fatal(err)
	}
}
