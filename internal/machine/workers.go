// Intra-run parallel quantum execution: within one scheduling quantum the
// cores are fully independent — each core's step touches only its own
// thread contexts, its bound applications' private RNG streams and their
// PMU banks — so the per-core stepping can be sharded across a pool of
// worker goroutines without any synchronisation beyond the quantum barrier.
//
// Determinism: core i is always stepped by shard i mod width, each core's
// execution is a pure function of its own pre-quantum state, and the runner
// reads results (PMU banks, retired counts) only after the barrier, in app
// order on the calling goroutine. The merge order is therefore fixed
// regardless of worker scheduling, and a run with Workers=N is bit-identical
// to Workers=1 (differential-tested in workers_test.go and synpa's
// parallel_test.go).
//
// The pool is run-scoped: Run/RunDynamic start it, every quantum dispatches
// one shard per worker plus the shard the calling goroutine executes
// itself, and the pool shuts down when the run returns — no goroutines
// outlive a run.
package machine

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// WorkersEnv is the environment variable that overrides Config.Workers:
// SYNPA_WORKERS=1 disables intra-run parallelism, higher values cap the
// worker count.
const WorkersEnv = "SYNPA_WORKERS"

// EffectiveWorkers resolves the worker count a machine built from this
// configuration will step cores with: the SYNPA_WORKERS environment
// variable when set, else Config.Workers, else GOMAXPROCS — all capped at
// the core count, and forced to 1 when Parallel is false (the knob callers
// already use to serialise runs they fan out themselves).
func (c Config) EffectiveWorkers() int {
	w := c.Workers
	if s := os.Getenv(WorkersEnv); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			w = v
		}
	}
	if w <= 0 {
		if !c.Parallel {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > c.Cores {
		w = c.Cores
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shardJob is one worker's slice of a quantum: step the busy cores of shard
// `shard` (stride `width`) for `cycles` cycles, then signal the barrier.
type shardJob struct {
	shard  int
	cycles uint64
	busy   []bool // nil means every core runs
	wg     *sync.WaitGroup
}

// corePool is the run-scoped worker pool.
type corePool struct {
	jobs  chan shardJob
	width int
}

// startPool launches the run-scoped worker pool and returns its stop
// function (always non-nil; a no-op for serial machines). The calling
// goroutine acts as shard 0, so width-1 workers are spawned.
func (m *Machine) startPool() func() {
	if m.workers <= 1 {
		return func() {}
	}
	p := &corePool{jobs: make(chan shardJob), width: m.workers}
	for w := 1; w < p.width; w++ {
		go func() {
			for job := range p.jobs {
				m.runShard(job.shard, p.width, job.cycles, job.busy)
				job.wg.Done()
			}
		}()
	}
	m.pool = p
	return func() {
		close(p.jobs)
		m.pool = nil
	}
}

// runShard steps every busy core of one shard for the given cycle count.
func (m *Machine) runShard(shard, width int, cycles uint64, busy []bool) {
	for i := shard; i < len(m.cores); i += width {
		if busy == nil || busy[i] {
			m.cores[i].Run(cycles)
		}
	}
}

// stepCores executes one quantum slice on the cores — those marked in busy,
// or all of them when busy is nil — sharded across the run's worker pool
// (serially on the calling goroutine when the pool is off).
func (m *Machine) stepCores(cycles uint64, busy []bool) {
	p := m.pool
	if p == nil {
		for i := range m.cores {
			if busy == nil || busy[i] {
				m.cores[i].Run(cycles)
			}
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(p.width - 1)
	for s := 1; s < p.width; s++ {
		p.jobs <- shardJob{shard: s, cycles: cycles, busy: busy, wg: &wg}
	}
	m.runShard(0, p.width, cycles, busy)
	wg.Wait()
}
