// Intra-run parallel quantum execution: within one scheduling quantum the
// cores are fully independent — each core's step touches only its own
// thread contexts, its bound applications' private RNG streams and their
// PMU banks — so the per-core stepping can be sharded across a pool of
// worker goroutines without any synchronisation beyond the quantum barrier.
//
// Determinism: core i is always stepped by shard i mod width, each core's
// execution is a pure function of its own pre-quantum state, and the runner
// reads results (PMU banks, retired counts) only after the barrier, in app
// order on the calling goroutine. The merge order is therefore fixed
// regardless of worker scheduling, and a run with Workers=N is bit-identical
// to Workers=1 (differential-tested in workers_test.go and synpa's
// parallel_test.go).
//
// The barrier pool itself lives in internal/pool (ShardPool) so the fleet
// layer can apply the same invariant one level up — machines sharded within
// a cluster instead of cores within a machine. The pool is run-scoped:
// Run/RunDynamic start it, every quantum dispatches one shard per worker
// plus the shard the calling goroutine executes itself, and the pool shuts
// down when the run returns — no goroutines outlive a run.
package machine

import (
	"os"
	"runtime"
	"strconv"

	"synpa/internal/pool"
)

// WorkersEnv is the environment variable that overrides Config.Workers:
// SYNPA_WORKERS=1 disables intra-run parallelism, higher values cap the
// worker count.
const WorkersEnv = "SYNPA_WORKERS"

// WorkersFromEnv resolves a configured worker count against the
// SYNPA_WORKERS override and a GOMAXPROCS default: the environment wins
// when set, a non-positive configured count falls back to GOMAXPROCS when
// parallel (1 otherwise), and the result is clamped to [1, tasks].
func WorkersFromEnv(configured, tasks int, parallel bool) int {
	w := configured
	// The worker count chooses how cores are sharded across goroutines,
	// never what any core computes: the quantum barrier makes every width
	// bit-identical (the parallel-merge invariant in smtcore/DESIGN.md),
	// so reading the host here cannot reach an observable bit.
	//synpa:lint-allow nondet worker width is output-neutral under the parallel-merge invariant
	if s := os.Getenv(WorkersEnv); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			w = v
		}
	}
	if w <= 0 {
		if !parallel {
			return 1
		}
		//synpa:lint-allow nondet GOMAXPROCS only sizes the shard pool; results are bit-identical at any width
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// EffectiveWorkers resolves the worker count a machine built from this
// configuration will step cores with: the SYNPA_WORKERS environment
// variable when set, else Config.Workers, else GOMAXPROCS — all capped at
// the core count, and forced to 1 when Parallel is false (the knob callers
// already use to serialise runs they fan out themselves).
func (c Config) EffectiveWorkers() int {
	return WorkersFromEnv(c.Workers, c.Cores, c.Parallel)
}

// startPool launches the run-scoped worker pool and returns its stop
// function (always non-nil; a no-op for serial machines). The calling
// goroutine acts as shard 0, so width-1 workers are spawned.
func (m *Machine) startPool() func() {
	if m.workers <= 1 {
		return func() {}
	}
	p := pool.NewShardPool(m.workers)
	m.pool = p
	return func() {
		p.Close()
		m.pool = nil
	}
}

// stepCores executes one quantum slice on the cores — those marked in busy,
// or all of them when busy is nil — sharded across the run's worker pool
// (inline on the calling goroutine when the pool is off).
func (m *Machine) stepCores(cycles uint64, busy []bool) {
	m.pool.Run(len(m.cores), func(i int) {
		if busy == nil || busy[i] {
			m.cores[i].Run(cycles)
		}
	})
}
