// Open-system (dynamic) workload execution: applications arrive over time,
// run to true completion and depart, and the machine operates at partial
// occupancy in between. This is the regime the closed-system Run cannot
// express — it pins exactly len(models) applications for the whole
// experiment and relaunches them forever — and the one a production
// allocator on a real ThunderX2 faces (paper §V-A's user-level thread
// manager under job churn).
//
// Time advances in policy slices. A slice is normally one scheduling
// quantum, but an arrival that falls inside a quantum cuts the slice short
// at the arrival cycle, so admission re-invokes the policy off-quantum
// instead of leaving the newcomer parked until the next boundary.
//
// The engine itself lives in runner.go (DynRunner); RunDynamic is the
// single-machine driver over it, and internal/fleet is the many-machine
// one.
package machine

import (
	"fmt"
	"sort"

	"synpa/internal/admission"
	"synpa/internal/apps"
	"synpa/internal/obs"
)

// DynamicApp is one application of an open-system run.
type DynamicApp struct {
	// Model is the application model.
	Model *apps.Model
	// Target is the retired-instruction work the app performs before
	// departing. It must be positive: every open-system job is finite.
	Target uint64
	// ArriveAt is the cycle at which the application enters the system.
	ArriveAt uint64
	// Priority is the app's class (higher = more urgent, default 0);
	// priority-aware admission policies order the waiting queue on it.
	Priority int
	// Weight is the app's class weight for weighted throughput metrics;
	// zero means 1.
	Weight float64
}

// DynamicOptions tune an open-system run.
type DynamicOptions struct {
	// Seed derives every application's private random stream.
	Seed uint64
	// MaxCycles bounds the run; zero means DefaultMaxQuanta quanta.
	MaxCycles uint64
	// RecordPlacements keeps the per-slice placements (in global app-index
	// space, Unplaced for apps not live) in the result.
	RecordPlacements bool
	// Admission orders the waiting queue when arrivals exceed the free
	// hardware threads. Nil selects admission.FIFO — bit-identical to the
	// runner's historical inline queue.
	Admission admission.Policy
	// Obs, when non-nil, receives the run's event trace and metrics (the
	// single machine is machine 0). Tracing never perturbs the simulation.
	Obs *obs.Observer
}

// DynamicAppResult is one application's outcome in an open-system run.
type DynamicAppResult struct {
	// Name is the application's benchmark name.
	Name string
	// Target is the retired-instruction work.
	Target uint64
	// ArriveAt echoes the arrival cycle.
	ArriveAt uint64
	// Priority and Weight echo the app's class and class weight.
	Priority int
	Weight   float64
	// AdmittedAt is the cycle the app first got a hardware thread. It
	// exceeds ArriveAt when all threads were busy on arrival. Zero-valued
	// ArriveAt admissions are recorded as AdmittedAt == ArriveAt.
	AdmittedAt uint64
	// Admitted reports whether the app ever got a hardware thread.
	Admitted bool
	// Finished reports whether the app completed its target within the
	// run bound — the authoritative completion flag (FinishAt is a cycle
	// stamp, not a sentinel).
	Finished bool
	// FinishAt is the cycle the app completed its target; meaningless
	// when Finished is false.
	FinishAt uint64
	// ResponseCycles is FinishAt − ArriveAt (queueing + execution), the
	// open-system response time; 0 if the app never finished.
	ResponseCycles uint64
	// Retired is the total instructions retired.
	Retired uint64
	// IPC is Target / ResponseCycles; 0 if the app never finished.
	IPC float64
}

// DynamicResult is the outcome of one open-system run.
type DynamicResult struct {
	// Policy is the allocation policy's name.
	Policy string
	// Admission is the admission discipline's name ("fifo" by default).
	Admission string
	// Cycles is the simulated time span (last event's cycle).
	Cycles uint64
	// Slices is the number of policy invocations (quantum boundaries plus
	// off-quantum admissions).
	Slices int
	// Apps holds per-application results in trace order.
	Apps []DynamicAppResult
	// MeanLiveApps is the time-averaged number of live applications.
	MeanLiveApps float64
	// PeakLiveApps is the maximum number of simultaneously live apps.
	PeakLiveApps int
	// Deferred counts arrivals that had to queue for a hardware thread.
	Deferred int
	// AllCompleted reports whether every application finished in bound.
	AllCompleted bool
	// Placements records the per-slice placements in global app-index
	// space when DynamicOptions.RecordPlacements is set.
	Placements []Placement
}

// RunDynamic executes an open-system workload under a policy: applications
// are admitted at their arrival cycles (queueing under the configured
// admission discipline — FIFO by default — when all hardware threads are
// busy), run until they retire their target, and depart for good. The
// policy is re-invoked every slice over the live set only; its QuantumState
// carries stable identities in AppIDs and an Unplaced-padded Prev view, so
// both stateless and stateful policies work across arbitrary occupancy
// changes, including odd live-app counts.
func (m *Machine) RunDynamic(work []DynamicApp, policy Policy, opt DynamicOptions) (*DynamicResult, error) {
	if policy == nil {
		return nil, fmt.Errorf("machine: nil policy")
	}
	if len(work) == 0 {
		return nil, fmt.Errorf("machine: no applications")
	}
	for i := range work {
		if work[i].Model == nil {
			return nil, fmt.Errorf("machine: app %d has no model", i)
		}
		if work[i].Target == 0 {
			return nil, fmt.Errorf("machine: app %d (%s) has no target; open-system jobs are finite",
				i, work[i].Model.Name)
		}
	}
	maxCycles := opt.MaxCycles
	if maxCycles == 0 {
		maxCycles = uint64(DefaultMaxQuanta) * m.cfg.QuantumCycles
	}

	// Arrival order: by cycle, ties by trace position (FIFO).
	order := make([]int, len(work))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return work[order[a]].ArriveAt < work[order[b]].ArriveAt
	})

	res := &DynamicResult{Policy: policy.Name(), Apps: make([]DynamicAppResult, len(work))}
	for i := range work {
		res.Apps[i] = DynamicAppResult{
			Name:     work[i].Model.Name,
			Target:   work[i].Target,
			ArriveAt: work[i].ArriveAt,
			Priority: work[i].Priority,
			Weight:   work[i].Weight,
		}
	}

	ropt := DynRunnerOptions{Seed: opt.Seed, Admission: opt.Admission, Obs: opt.Obs.Machine(0)}
	if opt.RecordPlacements {
		ropt.OnPlace = func(ids []int, place Placement) {
			global := make(Placement, len(work))
			for i := range global {
				global[i] = Unplaced
			}
			for i, gi := range ids {
				global[gi] = place[i]
			}
			res.Placements = append(res.Placements, global)
		}
	}
	r, err := NewDynRunner(m, policy, ropt)
	if err != nil {
		return nil, err
	}
	res.Admission = r.AdmissionName()

	// The intra-run worker pool lives for exactly this run.
	stopPool := m.startPool()
	defer stopPool()

	var (
		nextArr int // cursor into order
		outs    []JobOutcome
	)
	for r.Now() < maxCycles {
		// Arrivals whose time has come join the admission queue under
		// their global trace index — the identity the policy, the
		// admission discipline and the per-job RNG stream all key on.
		for nextArr < len(order) && work[order[nextArr]].ArriveAt <= r.Now() {
			gi := order[nextArr]
			r.Arrive(work[gi], gi)
			nextArr++
		}
		if err := r.BeginSlice(maxCycles); err != nil {
			return nil, err
		}
		if !r.Planned() {
			if r.Live() > 0 {
				break // defensive: zero-length slice at the run bound
			}
			if nextArr >= len(order) {
				break // system drained
			}
			// Idle period: fast-forward to the next arrival.
			next := work[order[nextArr]].ArriveAt
			if next > maxCycles {
				break
			}
			r.SkipTo(next)
			continue
		}
		// An arrival inside the slice cuts it short (the off-quantum
		// admission point). On a full machine the cut is skipped: the
		// newcomer could only join the waiting queue, and departures —
		// the only thing that frees a thread — are detected at slice
		// ends regardless, so cutting would just shorten the PMU sample
		// window for no benefit.
		if nextArr < len(order) && r.Free() > 0 {
			if at := work[order[nextArr]].ArriveAt; at > r.Now() && at < r.PlanEnd() {
				r.Cut(at)
			}
		}
		r.StepPlanned()
		outs = r.FinishSlice(outs[:0])
		r.FlushObs() // slice barrier: drain the trace shard in order
		for i := range outs {
			o := &outs[i]
			a := &res.Apps[o.ID]
			a.Admitted = true
			a.AdmittedAt = o.AdmittedAt
			a.Finished = true
			a.FinishAt = o.FinishAt
			a.ResponseCycles = o.ResponseCycles
			a.Retired = o.Retired
			a.IPC = o.IPC
		}
	}

	r.FlushObs()
	res.Cycles = r.Now()
	res.Slices = r.Slices()
	res.MeanLiveApps = r.MeanLive()
	res.PeakLiveApps = r.PeakLive()
	res.Deferred = r.DeferredAdmits()
	for _, o := range r.Unfinished(nil) {
		a := &res.Apps[o.ID]
		a.Admitted = o.Admitted
		a.AdmittedAt = o.AdmittedAt
		a.Retired = o.Retired
	}
	res.AllCompleted = true
	for gi := range work {
		if !res.Apps[gi].Finished {
			res.AllCompleted = false
			// An arrival still waiting when the run ended queued without
			// ever being admitted; the runner only counts the admitted
			// ones.
			if !res.Apps[gi].Admitted && work[gi].ArriveAt < res.Cycles {
				res.Deferred++
			}
		}
	}
	return res, nil
}

// runQuantumLive executes one slice on the cores that have work, sharded
// across the run-scoped worker pool when one is active. busy is the
// caller's reusable scratch.
func (m *Machine) runQuantumLive(bound [][]int, busy []bool, cycles uint64) {
	for c := range bound {
		busy[c] = false
		for _, gi := range bound[c] {
			if gi >= 0 {
				busy[c] = true
				break
			}
		}
	}
	m.stepCores(cycles, busy)
}
