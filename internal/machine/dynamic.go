// Open-system (dynamic) workload execution: applications arrive over time,
// run to true completion and depart, and the machine operates at partial
// occupancy in between. This is the regime the closed-system Run cannot
// express — it pins exactly len(models) applications for the whole
// experiment and relaunches them forever — and the one a production
// allocator on a real ThunderX2 faces (paper §V-A's user-level thread
// manager under job churn).
//
// Time advances in policy slices. A slice is normally one scheduling
// quantum, but an arrival that falls inside a quantum cuts the slice short
// at the arrival cycle, so admission re-invokes the policy off-quantum
// instead of leaving the newcomer parked until the next boundary.
package machine

import (
	"fmt"
	"sort"

	"synpa/internal/admission"
	"synpa/internal/apps"
	"synpa/internal/perfstat"
	"synpa/internal/pmu"
)

// DynamicApp is one application of an open-system run.
type DynamicApp struct {
	// Model is the application model.
	Model *apps.Model
	// Target is the retired-instruction work the app performs before
	// departing. It must be positive: every open-system job is finite.
	Target uint64
	// ArriveAt is the cycle at which the application enters the system.
	ArriveAt uint64
	// Priority is the app's class (higher = more urgent, default 0);
	// priority-aware admission policies order the waiting queue on it.
	Priority int
	// Weight is the app's class weight for weighted throughput metrics;
	// zero means 1.
	Weight float64
}

// DynamicOptions tune an open-system run.
type DynamicOptions struct {
	// Seed derives every application's private random stream.
	Seed uint64
	// MaxCycles bounds the run; zero means DefaultMaxQuanta quanta.
	MaxCycles uint64
	// RecordPlacements keeps the per-slice placements (in global app-index
	// space, Unplaced for apps not live) in the result.
	RecordPlacements bool
	// Admission orders the waiting queue when arrivals exceed the free
	// hardware threads. Nil selects admission.FIFO — bit-identical to the
	// runner's historical inline queue.
	Admission admission.Policy
}

// DynamicAppResult is one application's outcome in an open-system run.
type DynamicAppResult struct {
	// Name is the application's benchmark name.
	Name string
	// Target is the retired-instruction work.
	Target uint64
	// ArriveAt echoes the arrival cycle.
	ArriveAt uint64
	// Priority and Weight echo the app's class and class weight.
	Priority int
	Weight   float64
	// AdmittedAt is the cycle the app first got a hardware thread. It
	// exceeds ArriveAt when all threads were busy on arrival. Zero-valued
	// ArriveAt admissions are recorded as AdmittedAt == ArriveAt.
	AdmittedAt uint64
	// Admitted reports whether the app ever got a hardware thread.
	Admitted bool
	// FinishAt is the cycle the app completed its target; 0 if it never
	// did within the run bound.
	FinishAt uint64
	// ResponseCycles is FinishAt − ArriveAt (queueing + execution), the
	// open-system response time; 0 if the app never finished.
	ResponseCycles uint64
	// Retired is the total instructions retired.
	Retired uint64
	// IPC is Target / ResponseCycles; 0 if the app never finished.
	IPC float64
}

// DynamicResult is the outcome of one open-system run.
type DynamicResult struct {
	// Policy is the allocation policy's name.
	Policy string
	// Admission is the admission discipline's name ("fifo" by default).
	Admission string
	// Cycles is the simulated time span (last event's cycle).
	Cycles uint64
	// Slices is the number of policy invocations (quantum boundaries plus
	// off-quantum admissions).
	Slices int
	// Apps holds per-application results in trace order.
	Apps []DynamicAppResult
	// MeanLiveApps is the time-averaged number of live applications.
	MeanLiveApps float64
	// PeakLiveApps is the maximum number of simultaneously live apps.
	PeakLiveApps int
	// Deferred counts arrivals that had to queue for a hardware thread.
	Deferred int
	// AllCompleted reports whether every application finished in bound.
	AllCompleted bool
	// Placements records the per-slice placements in global app-index
	// space when DynamicOptions.RecordPlacements is set.
	Placements []Placement
}

// dynState is the runner's bookkeeping for one admitted application.
type dynState struct {
	inst      *apps.Instance
	bank      *pmu.Bank
	prevSnap  pmu.Counters
	lastDelta pmu.Counters // PMU deltas of the app's most recent slice
}

// RunDynamic executes an open-system workload under a policy: applications
// are admitted at their arrival cycles (queueing under the configured
// admission discipline — FIFO by default — when all hardware threads are
// busy), run until they retire their target, and depart for good. The
// policy is re-invoked every slice over the live set only; its QuantumState
// carries stable identities in AppIDs and an Unplaced-padded Prev view, so
// both stateless and stateful policies work across arbitrary occupancy
// changes, including odd live-app counts.
func (m *Machine) RunDynamic(work []DynamicApp, policy Policy, opt DynamicOptions) (*DynamicResult, error) {
	if policy == nil {
		return nil, fmt.Errorf("machine: nil policy")
	}
	if len(work) == 0 {
		return nil, fmt.Errorf("machine: no applications")
	}
	for i := range work {
		if work[i].Model == nil {
			return nil, fmt.Errorf("machine: app %d has no model", i)
		}
		if work[i].Target == 0 {
			return nil, fmt.Errorf("machine: app %d (%s) has no target; open-system jobs are finite",
				i, work[i].Model.Name)
		}
	}
	adm := opt.Admission
	if adm == nil {
		adm = admission.FIFO{}
	}
	maxCycles := opt.MaxCycles
	if maxCycles == 0 {
		maxCycles = uint64(DefaultMaxQuanta) * m.cfg.QuantumCycles
	}
	level := m.cfg.Core.Level()
	hwThreads := len(m.cores) * level

	// Arrival order: by cycle, ties by trace position (FIFO).
	order := make([]int, len(work))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return work[order[a]].ArriveAt < work[order[b]].ArriveAt
	})

	res := &DynamicResult{Policy: policy.Name(), Admission: adm.Name(), Apps: make([]DynamicAppResult, len(work))}
	for i := range work {
		res.Apps[i] = DynamicAppResult{
			Name:     work[i].Model.Name,
			Target:   work[i].Target,
			ArriveAt: work[i].ArriveAt,
			Priority: work[i].Priority,
			Weight:   work[i].Weight,
		}
	}

	states := make([]*dynState, len(work))
	coreOf := make([]int, len(work)) // global app index -> core, Unplaced when not live
	for i := range coreOf {
		coreOf[i] = Unplaced
	}
	var (
		live     []int // global indices of live apps, admission order
		nextArr  int   // cursor into order
		waiting  []int // arrived but deferred for a free hardware thread
		now      uint64
		occupied float64 // ∫ len(live) dt
	)
	// bound[c][s] is the global index bound to core c's slot s, or -1.
	bound := make([][]int, len(m.cores))
	for c := range bound {
		bound[c] = make([]int, level)
		for s := range bound[c] {
			bound[c][s] = -1
		}
	}

	admit := func(gi int) {
		st := &dynState{
			inst: apps.NewInstance(work[gi].Model, opt.Seed+uint64(gi)*0x9e3779b97f4a7c15+1),
			bank: &pmu.Bank{},
		}
		st.bank.Enable()
		states[gi] = st
		res.Apps[gi].Admitted = true
		res.Apps[gi].AdmittedAt = now
		if now > work[gi].ArriveAt {
			res.Deferred++
		}
		live = append(live, gi)
		if len(live) > res.PeakLiveApps {
			res.PeakLiveApps = len(live)
		}
	}

	// Reusable per-slice views handed to the policy. The samples view is
	// rebuilt over the *current* live set each slice: an app admitted this
	// slice contributes a zero Counters value until it has run.
	st := &QuantumState{NumCores: len(m.cores), DispatchWidth: m.cfg.Core.DispatchWidth, SMTLevel: level}
	var (
		ids      []int
		prevView Placement
		samples  []pmu.Counters
		prios    []int
		ranAny   bool
	)
	busy := make([]bool, len(m.cores))

	// Reusable admission-policy views over the waiting and live sets.
	var wjobs, rjobs []admission.Job
	jobOf := func(gi int, remaining uint64) admission.Job {
		return admission.Job{
			ID:       gi,
			ArriveAt: work[gi].ArriveAt,
			Priority: work[gi].Priority,
			Weight:   work[gi].Weight,
			Work:     remaining,
		}
	}

	// The intra-run worker pool lives for exactly this run.
	stopPool := m.startPool()
	defer stopPool()

	for now < maxCycles {
		// Admission: arrivals whose time has come, capacity permitting,
		// in the order the admission discipline picks. FIFO — the
		// default — reproduces the historical inline queue bit for bit.
		for nextArr < len(order) && work[order[nextArr]].ArriveAt <= now {
			waiting = append(waiting, order[nextArr])
			nextArr++
		}
		if free := hwThreads - len(live); free > 0 && len(waiting) > 0 {
			wjobs = wjobs[:0]
			for _, gi := range waiting {
				wjobs = append(wjobs, jobOf(gi, work[gi].Target))
			}
			rjobs = rjobs[:0]
			for _, gi := range live {
				remaining := work[gi].Target
				if r := states[gi].inst.Retired; r < remaining {
					remaining -= r
				} else {
					remaining = 0
				}
				rjobs = append(rjobs, jobOf(gi, remaining))
			}
			sel := adm.Admit(wjobs, rjobs, free, now)
			if err := admission.Validate(sel, len(wjobs)); err != nil {
				return nil, fmt.Errorf("machine: %w", err)
			}
			if len(sel) > free {
				sel = sel[:free]
			}
			if len(sel) > 0 {
				taken := make([]bool, len(waiting))
				for _, wi := range sel {
					admit(waiting[wi])
					taken[wi] = true
				}
				keep := waiting[:0]
				for wi, gi := range waiting {
					if !taken[wi] {
						keep = append(keep, gi)
					}
				}
				waiting = keep
			}
		}
		if len(live) == 0 {
			if nextArr >= len(order) {
				break // system drained
			}
			// Idle period: fast-forward to the next arrival.
			next := work[order[nextArr]].ArriveAt
			if next > maxCycles {
				break
			}
			now = next
			continue
		}

		// Build the policy's view over the live set.
		n := len(live)
		if cap(ids) < n {
			ids = make([]int, 0, hwThreads)
			prevView = make(Placement, 0, hwThreads)
			samples = make([]pmu.Counters, 0, hwThreads)
			prios = make([]int, 0, hwThreads)
		}
		ids, prevView, samples, prios = ids[:0], prevView[:0], samples[:0], prios[:0]
		for _, gi := range live {
			ids = append(ids, gi)
			prevView = append(prevView, coreOf[gi])
			samples = append(samples, states[gi].lastDelta)
			prios = append(prios, work[gi].Priority)
		}
		st.Quantum = res.Slices
		st.NumApps = n
		st.AppIDs = ids
		st.Priorities = prios
		st.Prev, st.Samples = nil, nil
		if ranAny {
			st.Prev = prevView
			st.Samples = samples
		}

		t0 := perfstat.PhaseClock()
		place := policy.Place(st)
		perfstat.PhaseAdd(perfstat.PhasePolicy, t0)
		if len(place) != n {
			return nil, fmt.Errorf("machine: policy %s returned %d placements for %d live apps",
				policy.Name(), len(place), n)
		}
		if err := place.Validate(len(m.cores), level); err != nil {
			return nil, fmt.Errorf("machine: policy %s: %w", policy.Name(), err)
		}
		for i, gi := range live {
			coreOf[gi] = place[i]
		}
		m.bindLive(states, live, place, bound)
		if opt.RecordPlacements {
			global := make(Placement, len(work))
			for i := range global {
				global[i] = Unplaced
			}
			for i, gi := range live {
				global[gi] = place[i]
			}
			res.Placements = append(res.Placements, global)
		}

		// Slice length: one quantum, cut short by the next arrival (the
		// off-quantum admission point) and by the run bound. On a full
		// machine the cut is skipped: the newcomer could only join the
		// waiting queue, and departures — the only thing that frees a
		// thread — are detected at slice ends regardless, so cutting
		// would just shorten the PMU sample window for no benefit.
		slice := m.cfg.QuantumCycles
		if nextArr < len(order) && n < hwThreads {
			if at := work[order[nextArr]].ArriveAt; at > now && at-now < slice {
				slice = at - now
			}
		}
		if now+slice > maxCycles {
			slice = maxCycles - now
		}
		if slice == 0 {
			break
		}

		t0 = perfstat.PhaseClock()
		m.runQuantumLive(bound, busy, slice)
		perfstat.PhaseAdd(perfstat.PhaseSimulation, t0)
		res.Slices++
		now += slice
		occupied += float64(n) * float64(slice)

		// Collect each live app's slice deltas for the next Place call.
		for _, gi := range live {
			s := states[gi]
			snap := s.bank.Read()
			s.lastDelta = snap.Delta(s.prevSnap)
			s.prevSnap = snap
		}
		ranAny = true

		// Departures: true completion, no relaunch.
		keep := live[:0]
		for _, gi := range live {
			s := states[gi]
			if s.inst.Retired >= work[gi].Target {
				res.Apps[gi].FinishAt = now
				res.Apps[gi].ResponseCycles = now - work[gi].ArriveAt
				res.Apps[gi].Retired = s.inst.Retired
				if res.Apps[gi].ResponseCycles > 0 {
					res.Apps[gi].IPC = float64(work[gi].Target) / float64(res.Apps[gi].ResponseCycles)
				}
				coreOf[gi] = Unplaced
				continue
			}
			keep = append(keep, gi)
		}
		live = keep
	}

	res.Cycles = now
	res.AllCompleted = true
	for gi := range work {
		if res.Apps[gi].FinishAt == 0 {
			res.AllCompleted = false
			if s := states[gi]; s != nil {
				res.Apps[gi].Retired = s.inst.Retired
			}
			// An arrival still waiting when the run ended queued without
			// ever being admitted; admit() only counts the admitted ones.
			if !res.Apps[gi].Admitted && work[gi].ArriveAt < now {
				res.Deferred++
			}
		}
	}
	if now > 0 {
		res.MeanLiveApps = occupied / float64(now)
	}
	return res, nil
}

// bindLive rebinds hardware threads to match the live placement, touching
// only slots whose occupant changes: an application keeps its slot (and its
// pipeline state) whenever it stays on the same core.
func (m *Machine) bindLive(states []*dynState, live []int, place Placement, bound [][]int) {
	level := m.cfg.Core.Level()
	want := make([]int, level)
	used := make([]bool, level)
	for c := range bound {
		// Desired occupants of core c, in live order.
		n := 0
		for i, gi := range live {
			if place[i] == c && n < level {
				want[n] = gi
				n++
			}
		}
		// Keep apps already bound to this core in their slots.
		for k := range used {
			used[k] = false
		}
		for s := 0; s < level; s++ {
			cur := bound[c][s]
			if cur < 0 {
				continue
			}
			stay := false
			for k := 0; k < n; k++ {
				if !used[k] && want[k] == cur {
					used[k] = true
					stay = true
					break
				}
			}
			if !stay {
				m.cores[c].Bind(s, nil, nil)
				bound[c][s] = -1
			}
		}
		// Place newcomers in the free slots.
		for k := 0; k < n; k++ {
			if used[k] {
				continue
			}
			for s := 0; s < level; s++ {
				if bound[c][s] < 0 {
					m.cores[c].Bind(s, states[want[k]].inst, states[want[k]].bank)
					bound[c][s] = want[k]
					break
				}
			}
		}
	}
}

// runQuantumLive executes one slice on the cores that have work, sharded
// across the run-scoped worker pool when one is active. busy is the
// caller's reusable scratch.
func (m *Machine) runQuantumLive(bound [][]int, busy []bool, cycles uint64) {
	for c := range bound {
		busy[c] = false
		for _, gi := range bound[c] {
			if gi >= 0 {
				busy[c] = true
				break
			}
		}
	}
	m.stepCores(cycles, busy)
}
