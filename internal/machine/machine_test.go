package machine

import (
	"testing"

	"synpa/internal/apps"
	"synpa/internal/pmu"
	"synpa/internal/smtcore"
)

// staticPolicy is the simplest placement: app i on core i mod cores,
// fixed forever (arrival-order pairing, like the Linux baseline).
type staticPolicy struct{}

func (staticPolicy) Name() string { return "static-test" }
func (staticPolicy) Place(st *QuantumState) Placement {
	if st.Prev != nil {
		return st.Prev
	}
	p := make(Placement, st.NumApps)
	for i := range p {
		p[i] = i % st.NumCores
	}
	return p
}

// fourModels returns n models cycling over a mixed set.
func nModels(n int) []*apps.Model {
	names := []string{"mcf", "leela_r", "lbm_r", "gobmk", "cactuBSSN_r", "perlbench", "milc", "astar"}
	out := make([]*apps.Model, n)
	for i := range out {
		m, err := apps.ByName(names[i%len(names)])
		if err != nil {
			panic(err)
		}
		out[i] = m
	}
	return out
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.QuantumCycles = 5_000
	cfg.Parallel = false
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Fatal("zero cores accepted")
	}
	bad = DefaultConfig()
	bad.QuantumCycles = 10
	if bad.Validate() == nil {
		t.Fatal("tiny quantum accepted")
	}
	bad = DefaultConfig()
	bad.Core.DispatchWidth = 0
	if bad.Validate() == nil {
		t.Fatal("bad core config accepted")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted zero config")
	}
}

func TestPlacementValidate(t *testing.T) {
	if err := (Placement{0, 0, 1, 1}).Validate(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := (Placement{0, 0, 0}).Validate(2, 2); err == nil {
		t.Fatal("3 apps on one core accepted")
	}
	if err := (Placement{0, 2}).Validate(2, 2); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	if err := (Placement{-1}).Validate(2, 2); err == nil {
		t.Fatal("negative core accepted")
	}
}

func TestPlacementHelpers(t *testing.T) {
	p := Placement{0, 1, 0, 1}
	pairs := p.PairsOf(2)
	if len(pairs[0]) != 2 || pairs[0][0] != 0 || pairs[0][1] != 2 {
		t.Fatalf("PairsOf core0 = %v", pairs[0])
	}
	if p.CoMate(0) != 2 || p.CoMate(2) != 0 || p.CoMate(1) != 3 {
		t.Fatal("CoMate wrong")
	}
	solo := Placement{0, 1}
	if solo.CoMate(0) != -1 {
		t.Fatal("solo app should have no co-mate")
	}
	c := p.Clone()
	c[0] = 9
	if p[0] == 9 {
		t.Fatal("Clone did not copy")
	}
}

func TestRunCompletesWorkload(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	models := nModels(8)
	targets := make([]uint64, 8)
	for i := range targets {
		targets[i] = 40_000 // small targets so the test is fast
	}
	res, err := m.Run(models, targets, staticPolicy{}, RunnerOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCompleted {
		t.Fatal("workload did not complete")
	}
	tt, ok := res.TurnaroundCycles()
	if !ok || tt == 0 {
		t.Fatal("no turnaround time")
	}
	for i, a := range res.Apps {
		if a.CompletedAtCycle == 0 || a.CompletedAtCycle > tt {
			t.Errorf("app %d completion %d out of range", i, a.CompletedAtCycle)
		}
		if a.IPC <= 0 {
			t.Errorf("app %d IPC = %v", i, a.IPC)
		}
		if a.Retired < a.Target {
			t.Errorf("app %d retired %d < target %d", i, a.Retired, a.Target)
		}
	}
	if res.Quanta == 0 || len(res.Placements) != res.Quanta {
		t.Fatalf("placements %d, quanta %d", len(res.Placements), res.Quanta)
	}
}

func TestRunRecordsTrace(t *testing.T) {
	m, _ := New(testConfig())
	models := nModels(4)
	targets := []uint64{30_000, 30_000, 30_000, 30_000}
	res, err := m.Run(models, targets, staticPolicy{}, RunnerOptions{Seed: 2, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != res.Quanta {
		t.Fatalf("trace has %d quanta, want %d", len(res.Samples), res.Quanta)
	}
	for q, row := range res.Samples {
		if len(row) != len(models) {
			t.Fatalf("quantum %d trace has %d apps", q, len(row))
		}
		var cycles uint64
		for _, c := range row {
			cycles += c[pmu.CPUCycles]
		}
		if cycles == 0 {
			t.Fatalf("quantum %d trace empty", q)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() uint64 {
		m, _ := New(testConfig())
		models := nModels(8)
		targets := make([]uint64, 8)
		for i := range targets {
			targets[i] = 30_000
		}
		res, err := m.Run(models, targets, staticPolicy{}, RunnerOptions{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		tt, _ := res.TurnaroundCycles()
		return tt
	}
	if run() != run() {
		t.Fatal("same seed gave different turnaround times")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	run := func(parallel bool) uint64 {
		cfg := testConfig()
		cfg.Parallel = parallel
		m, _ := New(cfg)
		models := nModels(8)
		targets := make([]uint64, 8)
		for i := range targets {
			targets[i] = 30_000
		}
		res, err := m.Run(models, targets, staticPolicy{}, RunnerOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		tt, _ := res.TurnaroundCycles()
		return tt
	}
	if run(false) != run(true) {
		t.Fatal("parallel execution changed the simulation result")
	}
}

func TestRunErrors(t *testing.T) {
	m, _ := New(testConfig())
	if _, err := m.Run(nil, nil, staticPolicy{}, RunnerOptions{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := m.Run(nModels(2), []uint64{1}, staticPolicy{}, RunnerOptions{}); err == nil {
		t.Fatal("target/model mismatch accepted")
	}
	if _, err := m.Run(nModels(9), make([]uint64, 9), staticPolicy{}, RunnerOptions{}); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

type badPolicy struct{ wrongLen bool }

func (badPolicy) Name() string { return "bad" }
func (b badPolicy) Place(st *QuantumState) Placement {
	if b.wrongLen {
		return Placement{0}
	}
	return Placement{0, 0, 0, 0, 0, 0, 0, 0} // 8 apps on core 0
}

func TestRunRejectsBadPolicies(t *testing.T) {
	m, _ := New(testConfig())
	models := nModels(8)
	targets := make([]uint64, 8)
	if _, err := m.Run(models, targets, badPolicy{wrongLen: true}, RunnerOptions{}); err == nil {
		t.Fatal("wrong-length placement accepted")
	}
	if _, err := m.Run(models, targets, badPolicy{}, RunnerOptions{}); err == nil {
		t.Fatal("overloaded placement accepted")
	}
}

func TestMaxQuantaBoundsRun(t *testing.T) {
	m, _ := New(testConfig())
	models := nModels(8)
	targets := make([]uint64, 8)
	for i := range targets {
		targets[i] = 1 << 60 // unreachable
	}
	res, err := m.Run(models, targets, staticPolicy{}, RunnerOptions{Seed: 1, MaxQuanta: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quanta != 5 {
		t.Fatalf("ran %d quanta, want 5", res.Quanta)
	}
	if res.AllCompleted {
		t.Fatal("cannot have completed unreachable targets")
	}
	if _, ok := res.TurnaroundCycles(); ok {
		t.Fatal("TurnaroundCycles should report incomplete")
	}
}

func TestZeroTargetAppsNeverComplete(t *testing.T) {
	m, _ := New(testConfig())
	models := nModels(2)
	res, err := m.Run(models, []uint64{20_000, 0}, staticPolicy{}, RunnerOptions{Seed: 3, MaxQuanta: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].CompletedAtCycle == 0 {
		t.Fatal("app 0 should complete")
	}
	if res.Apps[1].CompletedAtCycle != 0 {
		t.Fatal("zero-target app must not complete")
	}
}

func TestRelaunchKeepsPressure(t *testing.T) {
	// After completing, an app is relaunched and keeps retiring
	// instructions well beyond its target.
	m, _ := New(testConfig())
	models := nModels(2)
	res, err := m.Run(models, []uint64{10_000, 200_000}, staticPolicy{}, RunnerOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fast := res.Apps[0]
	if !res.AllCompleted {
		t.Fatal("workload should complete")
	}
	if fast.Retired < 3*fast.Target {
		t.Fatalf("fast app retired only %d (target %d); relaunching is not keeping pressure",
			fast.Retired, fast.Target)
	}
}

func TestRunIsolated(t *testing.T) {
	mod, _ := apps.ByName("mcf")
	samples, err := RunIsolated(mod, 9, 10, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("got %d samples", len(samples))
	}
	for q, s := range samples {
		if s[pmu.CPUCycles] != 5_000 {
			t.Fatalf("quantum %d cycles = %d", q, s[pmu.CPUCycles])
		}
		if s[pmu.InstSpec] == 0 {
			t.Fatalf("quantum %d dispatched nothing", q)
		}
	}
}

func TestRunPairSMT(t *testing.T) {
	a, _ := apps.ByName("mcf")
	b, _ := apps.ByName("leela_r")
	sa, sb, err := RunPairSMT(a, b, 1, 2, 8, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != 8 || len(sb) != 8 {
		t.Fatalf("got %d/%d samples", len(sa), len(sb))
	}
	for q := range sa {
		if sa[q][pmu.CPUCycles] != 5_000 || sb[q][pmu.CPUCycles] != 5_000 {
			t.Fatalf("quantum %d cycle counts wrong", q)
		}
	}
}

func TestStablePairingPreservesPipelineState(t *testing.T) {
	// With a static policy the cores must not be rebound between quanta:
	// verify via the smtcore Instance identity remaining bound.
	cfg := testConfig()
	m, _ := New(cfg)
	models := nModels(8)
	targets := make([]uint64, 8)
	res, err := m.Run(models, targets, staticPolicy{}, RunnerOptions{Seed: 5, MaxQuanta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quanta != 3 {
		t.Fatalf("quanta = %d", res.Quanta)
	}
	for c := 0; c < m.NumCores(); c++ {
		if m.cores[c].Instance(0) == nil || m.cores[c].Instance(1) == nil {
			t.Fatalf("core %d lost its bindings", c)
		}
	}
	_ = smtcore.DefaultSMTLevel
}
