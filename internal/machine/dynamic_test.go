package machine

import (
	"reflect"
	"testing"

	"synpa/internal/apps"
)

// spreadPolicy places live apps two per core in index order, like the
// arrival-order baseline but rebuilt every slice. It exercises partial and
// odd occupancy without importing the sched package (which imports this
// one).
type spreadPolicy struct{}

func (spreadPolicy) Name() string { return "spread" }
func (spreadPolicy) Place(st *QuantumState) Placement {
	p := make(Placement, st.NumApps)
	for i := range p {
		p[i] = (i / st.ThreadsPerCore()) % st.NumCores
	}
	return p
}

func mustApp(t *testing.T, name string) *apps.Model {
	t.Helper()
	m, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// dynWork builds the canonical churn scenario: four apps at t=0 (one small,
// departing early), a fifth arriving mid-run — occupancy passes through
// 4 → 5 (odd) → 4 → fewer as apps drain.
func dynWork(t *testing.T) []DynamicApp {
	t.Helper()
	return []DynamicApp{
		{Model: mustApp(t, "mcf"), Target: 400_000, ArriveAt: 0},
		{Model: mustApp(t, "leela_r"), Target: 400_000, ArriveAt: 0},
		{Model: mustApp(t, "lbm_r"), Target: 400_000, ArriveAt: 0},
		{Model: mustApp(t, "gobmk"), Target: 60_000, ArriveAt: 0},
		{Model: mustApp(t, "povray_r"), Target: 400_000, ArriveAt: 12_500}, // mid-quantum: off-quantum admission
	}
}

func TestRunDynamicChurn(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunDynamic(dynWork(t), spreadPolicy{}, DynamicOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCompleted {
		t.Fatalf("not all apps completed: %+v", res.Apps)
	}
	if res.PeakLiveApps != 5 {
		t.Fatalf("peak live apps = %d, want 5 (odd occupancy reached)", res.PeakLiveApps)
	}
	if res.Deferred != 0 {
		t.Fatalf("deferred = %d, want 0 (machine never full)", res.Deferred)
	}
	for i, a := range res.Apps {
		if a.FinishAt == 0 || a.ResponseCycles == 0 || a.IPC <= 0 {
			t.Fatalf("app %d (%s) incomplete result: %+v", i, a.Name, a)
		}
		if a.FinishAt != a.ArriveAt+a.ResponseCycles {
			t.Fatalf("app %d: FinishAt %d != ArriveAt %d + Response %d", i, a.FinishAt, a.ArriveAt, a.ResponseCycles)
		}
		if a.Retired < res.Apps[i].Target {
			t.Fatalf("app %d departed before reaching its target: %+v", i, a)
		}
		if a.AdmittedAt != a.ArriveAt {
			t.Fatalf("app %d admitted at %d, arrived %d (no queueing expected)", i, a.AdmittedAt, a.ArriveAt)
		}
	}
	// The early-departing app must finish well before the long ones.
	if res.Apps[3].FinishAt >= res.Apps[0].FinishAt {
		t.Fatalf("small app finished at %d, after big app at %d", res.Apps[3].FinishAt, res.Apps[0].FinishAt)
	}
	if res.MeanLiveApps <= 0 || res.MeanLiveApps > 5 {
		t.Fatalf("mean live apps = %v", res.MeanLiveApps)
	}
}

func TestRunDynamicDeterministic(t *testing.T) {
	run := func() *DynamicResult {
		m, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.RunDynamic(dynWork(t), spreadPolicy{}, DynamicOptions{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestRunDynamicOffQuantumAdmission(t *testing.T) {
	// An arrival inside a quantum must cut the slice: the closed-system
	// slice count for the same span would be lower.
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	work := []DynamicApp{
		{Model: mustApp(t, "mcf"), Target: 100_000, ArriveAt: 0},
		{Model: mustApp(t, "leela_r"), Target: 100_000, ArriveAt: 7_300}, // mid-quantum
	}
	res, err := m.RunDynamic(work, spreadPolicy{}, DynamicOptions{Seed: 1, RecordPlacements: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCompleted {
		t.Fatal("apps did not complete")
	}
	if res.Apps[1].AdmittedAt != 7_300 {
		t.Fatalf("arrival admitted at %d, want exactly 7300 (off-quantum)", res.Apps[1].AdmittedAt)
	}
	// The recorded placements must show a one-app slice before admission.
	if len(res.Placements) < 2 {
		t.Fatalf("placements = %v", res.Placements)
	}
	if res.Placements[0][1] != Unplaced {
		t.Fatalf("app 1 placed before arriving: %v", res.Placements[0])
	}
	if res.Placements[len(res.Placements)-1] == nil {
		t.Fatal("missing placements")
	}
}

func TestRunDynamicQueueing(t *testing.T) {
	// Ten arrivals at t=0 on 8 hardware threads: two must queue and be
	// admitted only when a thread frees.
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var work []DynamicApp
	for i := 0; i < 10; i++ {
		work = append(work, DynamicApp{Model: mustApp(t, "gobmk"), Target: 50_000, ArriveAt: 0})
	}
	res, err := m.RunDynamic(work, spreadPolicy{}, DynamicOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCompleted {
		t.Fatal("apps did not complete")
	}
	if res.Deferred != 2 {
		t.Fatalf("deferred = %d, want 2", res.Deferred)
	}
	if res.PeakLiveApps != 8 {
		t.Fatalf("peak live = %d, want 8 (capacity)", res.PeakLiveApps)
	}
	deferred := 0
	for _, a := range res.Apps {
		if a.AdmittedAt > a.ArriveAt {
			deferred++
			if a.ResponseCycles <= a.FinishAt-a.AdmittedAt {
				t.Fatalf("response %d must include queueing (admitted %d)", a.ResponseCycles, a.AdmittedAt)
			}
		}
	}
	if deferred != 2 {
		t.Fatalf("%d apps have AdmittedAt > ArriveAt, want 2", deferred)
	}
}

func TestRunDynamicIdleGap(t *testing.T) {
	// A gap with zero live apps: the run must fast-forward to the next
	// arrival instead of terminating or spinning.
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	work := []DynamicApp{
		{Model: mustApp(t, "gobmk"), Target: 20_000, ArriveAt: 0},
		{Model: mustApp(t, "gobmk"), Target: 20_000, ArriveAt: 500_000},
	}
	res, err := m.RunDynamic(work, spreadPolicy{}, DynamicOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCompleted {
		t.Fatal("apps did not complete")
	}
	if res.Apps[1].AdmittedAt != 500_000 {
		t.Fatalf("second app admitted at %d, want 500000", res.Apps[1].AdmittedAt)
	}
	if res.Apps[0].FinishAt >= res.Apps[1].ArriveAt && res.MeanLiveApps >= 1 {
		t.Fatalf("idle gap not reflected: finish0=%d meanLive=%v", res.Apps[0].FinishAt, res.MeanLiveApps)
	}
}

func TestRunDynamicErrors(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunDynamic(nil, spreadPolicy{}, DynamicOptions{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := m.RunDynamic(dynWork(t), nil, DynamicOptions{}); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := m.RunDynamic([]DynamicApp{{Model: mustApp(t, "mcf"), Target: 0}}, spreadPolicy{}, DynamicOptions{}); err == nil {
		t.Fatal("zero target accepted: open-system jobs must be finite")
	}
}

func TestRunDynamicBound(t *testing.T) {
	// A run bound smaller than the work: report AllCompleted=false with
	// partial results, not an error.
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	work := []DynamicApp{{Model: mustApp(t, "mcf"), Target: 1 << 60, ArriveAt: 0}}
	res, err := m.RunDynamic(work, spreadPolicy{}, DynamicOptions{Seed: 4, MaxCycles: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllCompleted {
		t.Fatal("impossible target reported complete")
	}
	if res.Apps[0].FinishAt != 0 || res.Apps[0].Retired == 0 {
		t.Fatalf("unfinished app result: %+v", res.Apps[0])
	}
	if res.Cycles != 50_000 {
		t.Fatalf("cycles = %d, want bound 50000", res.Cycles)
	}
}

func TestRunDynamicNeverAdmittedCountsDeferred(t *testing.T) {
	// Nine long jobs at t=0 on 8 hardware threads with a bound too tight
	// for any departure: the ninth queues to the end without a thread and
	// must still be counted as deferred, with Admitted=false.
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var work []DynamicApp
	for i := 0; i < 9; i++ {
		work = append(work, DynamicApp{Model: mustApp(t, "mcf"), Target: 1 << 60, ArriveAt: 0})
	}
	res, err := m.RunDynamic(work, spreadPolicy{}, DynamicOptions{Seed: 5, MaxCycles: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferred != 1 {
		t.Fatalf("deferred = %d, want 1 (the never-admitted ninth arrival)", res.Deferred)
	}
	admitted := 0
	for _, a := range res.Apps {
		if a.Admitted {
			admitted++
		}
	}
	if admitted != 8 {
		t.Fatalf("admitted = %d, want 8", admitted)
	}
}
