package machine

import (
	"reflect"
	"testing"
)

// smt4Config is a 2-core SMT4 machine (8 hardware threads, equal capacity
// to the default 4-core SMT2 test machine).
func smt4Config() Config {
	cfg := testConfig()
	cfg.Cores = 2
	cfg.Core.SMTLevel = 4
	return cfg
}

// TestRunSMT4CompletesWorkload is the closed-system SMT4 end-to-end: 8 apps
// on 2 SMT4 cores run to completion under the arrival-order policy.
func TestRunSMT4CompletesWorkload(t *testing.T) {
	m, err := New(smt4Config())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Config().HWThreads(); got != 8 {
		t.Fatalf("HWThreads = %d, want 8", got)
	}
	models := nModels(8)
	targets := make([]uint64, 8)
	for i := range targets {
		targets[i] = 40_000
	}
	res, err := m.Run(models, targets, staticPolicy{}, RunnerOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCompleted {
		t.Fatal("SMT4 workload did not complete")
	}
	for _, p := range res.Placements {
		if err := p.Validate(2, 4); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunSMT4RejectsOverflow pins the hardware-thread accounting: a 2-core
// SMT4 machine takes 8 apps, not 9, and a placement putting 5 on one core
// is invalid.
func TestRunSMT4RejectsOverflow(t *testing.T) {
	m, err := New(smt4Config())
	if err != nil {
		t.Fatal(err)
	}
	models := nModels(9)
	targets := make([]uint64, 9)
	if _, err := m.Run(models, targets, staticPolicy{}, RunnerOptions{Seed: 1}); err == nil {
		t.Fatal("9 apps on 8 hardware threads accepted")
	}
}

// TestRunSMT4Deterministic pins run-to-run reproducibility at SMT4.
func TestRunSMT4Deterministic(t *testing.T) {
	run := func() *Result {
		m, err := New(smt4Config())
		if err != nil {
			t.Fatal(err)
		}
		models := nModels(8)
		targets := make([]uint64, 8)
		for i := range targets {
			targets[i] = 30_000
		}
		res, err := m.Run(models, targets, staticPolicy{}, RunnerOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Apps, b.Apps) {
		t.Fatalf("SMT4 runs diverged:\n%v\n%v", a.Apps, b.Apps)
	}
}

// TestRunPairSMTAtSMT1 pins the training-path guard: pair collection needs
// two thread slots, so an SMT1 machine configuration must not panic the
// §IV-C collector — it raises its private core to SMT2.
func TestRunPairSMTAtSMT1(t *testing.T) {
	cfg := testConfig()
	cfg.Core.SMTLevel = 1
	models := nModels(2)
	sa, sb, err := RunPairSMT(models[0], models[1], 1, 2, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != 3 || len(sb) != 3 {
		t.Fatalf("samples %d/%d, want 3/3", len(sa), len(sb))
	}
}

// TestRunDynamicSMT4 exercises the open-system runner at SMT4: arrivals,
// partial occupancy (1..8 residents over 2 cores) and departures.
func TestRunDynamicSMT4(t *testing.T) {
	cfg := smt4Config()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models := nModels(8)
	work := make([]DynamicApp, 8)
	for i := range work {
		work[i] = DynamicApp{
			Model:    models[i],
			Target:   25_000,
			ArriveAt: uint64(i) * cfg.QuantumCycles / 2,
		}
	}
	res, err := m.RunDynamic(work, spreadPolicy{}, DynamicOptions{Seed: 3, RecordPlacements: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCompleted {
		t.Fatal("SMT4 dynamic run did not complete")
	}
	if res.PeakLiveApps < 3 {
		t.Fatalf("peak live apps %d; arrivals never overlapped", res.PeakLiveApps)
	}
	for _, p := range res.Placements {
		load := map[int]int{}
		for _, c := range p {
			if c >= 0 {
				load[c]++
			}
		}
		for c, l := range load {
			if l > 4 {
				t.Fatalf("core %d holds %d apps at SMT4", c, l)
			}
		}
	}
}
