package machine_test

import (
	"testing"

	"synpa/internal/machine"
	"synpa/internal/sched"
	"synpa/internal/workload"
)

// rotator migrates the pairing every quantum: app i runs on core
// ((i+q) mod n)/2, so every quantum rebinds every core and flushes
// microstate — the harshest schedule for the fast-forward engine's
// bind-time invariants.
type rotator struct{}

func (rotator) Name() string { return "rotator" }
func (rotator) Place(st *machine.QuantumState) machine.Placement {
	p := make(machine.Placement, st.NumApps)
	for i := range p {
		p[i] = ((i + st.Quantum) % st.NumApps) / 2
	}
	return p
}

// runOnce executes the fb2 workload for a fixed number of quanta.
func runOnce(t *testing.T, ff bool, policy machine.Policy, seed uint64) *machine.Result {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.QuantumCycles = 5_000
	cfg.Parallel = false
	cfg.FastForward = ff
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(0x51A9A, "fb2")
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]uint64, len(w.Apps)) // no targets: run all quanta
	res, err := m.Run(w.Apps, targets, policy, machine.RunnerOptions{
		Seed:        seed,
		MaxQuanta:   40,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunFastForwardDifferential proves the fast-forward engine
// observationally equivalent through the whole machine layer: identical
// per-quantum PMU samples, placements and per-app results across quantum
// boundaries, bank reads and (with the rotator policy) per-quantum
// migrations.
func TestRunFastForwardDifferential(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy func() machine.Policy
	}{
		{"linux", func() machine.Policy { return sched.Linux{} }},
		{"rotator", func() machine.Policy { return rotator{} }},
	} {
		for _, seed := range []uint64{3, 0xBEEF} {
			ref := runOnce(t, false, tc.policy(), seed)
			fast := runOnce(t, true, tc.policy(), seed)
			if ref.Quanta != fast.Quanta {
				t.Fatalf("%s/%d: quanta ref=%d fast=%d", tc.name, seed, ref.Quanta, fast.Quanta)
			}
			for q := range ref.Samples {
				for a := range ref.Samples[q] {
					if ref.Samples[q][a] != fast.Samples[q][a] {
						t.Fatalf("%s/%d: samples diverge at quantum %d app %d:\nref  %v\nfast %v",
							tc.name, seed, q, a, ref.Samples[q][a], fast.Samples[q][a])
					}
				}
			}
			for i := range ref.Apps {
				if ref.Apps[i].Retired != fast.Apps[i].Retired {
					t.Fatalf("%s/%d: app %d Retired ref=%d fast=%d",
						tc.name, seed, i, ref.Apps[i].Retired, fast.Apps[i].Retired)
				}
			}
		}
	}
}
