// DynRunner is the open-system engine of RunDynamic factored into explicit
// steps — Arrive, BeginSlice, Cut, StepPlanned, FinishSlice, SkipTo — so a
// cluster coordinator (internal/fleet) can interleave many machines on one
// global event clock. RunDynamic drives a single runner through exactly the
// historical loop, bit for bit (pinned by the golden digests in
// internal/regression); the fleet drives hundreds, cutting and planning
// slices lazily at dispatch time.
//
// The step protocol, per machine:
//
//	Arrive*(job)            enqueue a dispatched arrival (stream order)
//	BeginSlice(maxCycles)   admit from the arrived queue, invoke the
//	                        placement policy over the live set, bind
//	                        threads and plan a slice ending at
//	                        min(now+quantum, maxCycles)
//	Cut(t)                  shorten the planned slice to end at t — legal
//	                        until the slice has been stepped, because
//	                        execution is lazy and the live set cannot
//	                        change mid-plan
//	StepPlanned()           execute the planned slice on the cores; the
//	                        only step safe to run in parallel across
//	                        machines (it touches exclusively this
//	                        machine's cores, instances and PMU banks)
//	FinishSlice(out)        advance the clock to the plan end, collect
//	                        PMU deltas and emit departures
//	SkipTo(t)               fast-forward an idle machine
//
// Jobs are stored in recycled slots, so a runner's memory is O(hardware
// threads + queued arrivals), independent of how many jobs have streamed
// through it. Identity that must survive slot recycling — the policy's
// AppIDs, the admission queue's Job.ID and the per-job RNG seed — comes
// from the caller-assigned job ID (the global trace index), which is also
// what makes a single-machine fleet reproduce RunDynamic exactly.
package machine

import (
	"fmt"

	"synpa/internal/admission"
	"synpa/internal/apps"
	"synpa/internal/obs"
	"synpa/internal/perfstat"
	"synpa/internal/pmu"
	"synpa/internal/predcache"
	"synpa/internal/smtcore"
)

// DynRunnerOptions configure a DynRunner.
type DynRunnerOptions struct {
	// Seed derives every job's private random stream together with the
	// job ID: seed + id·φ + 1, the same derivation at any fleet size.
	Seed uint64
	// Admission orders the arrived queue; nil selects admission.FIFO.
	Admission admission.Policy
	// OnPlace, when set, observes every successful placement: ids are the
	// live jobs' IDs and place their cores, both valid only during the
	// call.
	OnPlace func(ids []int, place Placement)
	// Obs is the machine's observability handle (obs.Observer.Machine).
	// The zero value disables tracing and metrics entirely; a disabled
	// site costs one nil check.
	Obs obs.MachineView
}

// JobOutcome is one job's terminal (or, for Unfinished, current) state.
type JobOutcome struct {
	// ID is the caller-assigned job identity (global trace index).
	ID int
	// Name is the application's benchmark name.
	Name string
	// Target is the job's retired-instruction work.
	Target uint64
	// ArriveAt, AdmittedAt and FinishAt are the job's lifecycle cycles.
	ArriveAt   uint64
	AdmittedAt uint64
	FinishAt   uint64
	// Priority and Weight echo the job's class.
	Priority int
	Weight   float64
	// Admitted reports whether the job ever held a hardware thread.
	Admitted bool
	// Finished reports whether the job completed its target — the
	// authoritative completion flag (FinishAt is a cycle stamp, and cycle
	// 0 is a legitimate stamp, not a sentinel).
	Finished bool
	// ResponseCycles is FinishAt − ArriveAt for finished jobs.
	ResponseCycles uint64
	// Retired is the instructions retired so far.
	Retired uint64
	// IPC is Target / ResponseCycles for finished jobs.
	IPC float64
}

// runnerSlot is the recycled per-job bookkeeping.
type runnerSlot struct {
	used       bool
	id         int
	app        DynamicApp
	inst       *apps.Instance
	bank       *pmu.Bank
	prevSnap   pmu.Counters
	lastDelta  pmu.Counters
	coreOf     int
	admittedAt uint64
	admitted   bool
}

// DynRunner is one machine's step-wise open-system engine.
type DynRunner struct {
	m      *Machine
	policy Policy
	adm    admission.Policy
	seed   uint64
	onPl   func([]int, Placement)

	level     int
	hwThreads int

	slots     []runnerSlot
	freeSlots []int
	live      []int // slot indices, admission order
	waiting   []int // slot indices, dispatch order (non-decreasing ArriveAt)

	bound [][]int // bound[c][s]: slot index on core c thread s, or -1
	busy  []bool

	st       *QuantumState
	ids      []int
	prevView Placement
	samples  []pmu.Counters
	prios    []int
	wjobs    []admission.Job
	rjobs    []admission.Job

	now      uint64
	slices   int
	occupied float64
	ranAny   bool
	peakLive int
	deferred int

	planned bool
	planEnd uint64

	// Observability (see internal/obs). mt is nil when tracing is off; rc
	// is never nil but may be the disabled no-op set. cacheStats is the
	// policy's predcache introspection hook when it has one, and the prev*
	// fields hold the last-observed cumulative values so each decision and
	// slice reports deltas.
	mt         *obs.MachineTrace
	rc         *obs.RunCounters
	cacheStats func() (invert, pair predcache.Stats)
	prevInv    predcache.Stats
	prevPair   predcache.Stats
	prevEngine []smtcore.EngineStats
}

// NewDynRunner builds a runner over the machine. The machine must not be
// shared between runners or concurrent runs.
func NewDynRunner(m *Machine, policy Policy, opt DynRunnerOptions) (*DynRunner, error) {
	if policy == nil {
		return nil, fmt.Errorf("machine: nil policy")
	}
	adm := opt.Admission
	if adm == nil {
		adm = admission.FIFO{}
	}
	level := m.cfg.Core.Level()
	r := &DynRunner{
		m:         m,
		policy:    policy,
		adm:       adm,
		seed:      opt.Seed,
		onPl:      opt.OnPlace,
		level:     level,
		hwThreads: len(m.cores) * level,
		busy:      make([]bool, len(m.cores)),
		st:        &QuantumState{NumCores: len(m.cores), DispatchWidth: m.cfg.Core.DispatchWidth, SMTLevel: level},
	}
	r.bound = make([][]int, len(m.cores))
	for c := range r.bound {
		r.bound[c] = make([]int, level)
		for s := range r.bound[c] {
			r.bound[c][s] = -1
		}
	}
	r.mt = opt.Obs.Trace()
	r.rc = opt.Obs.Counters()
	if r.mt != nil || r.rc.Enabled() {
		// Baseline the cumulative sources (policy predcache, core engine
		// tiers) so reused policies/machines report only this run's deltas.
		// Policies backed by a *shared* concurrent cache are excluded:
		// which of their calls hit is schedule-dependent (racing cold
		// misses), so per-decision deltas would perturb the worker-count-
		// invariant trace. Their traffic is aggregated once at run end
		// instead (fleet.Report.PredCache).
		sharedCache := false
		if sc, ok := policy.(interface {
			SharedCache() *predcache.Shared
		}); ok && sc.SharedCache() != nil {
			sharedCache = true
		}
		if cs, ok := policy.(interface {
			CacheStats() (invert, pair predcache.Stats)
		}); ok && !sharedCache {
			r.cacheStats = cs.CacheStats
			r.prevInv, r.prevPair = cs.CacheStats()
		}
		r.prevEngine = make([]smtcore.EngineStats, len(m.cores))
		for c := range m.cores {
			r.prevEngine[c] = m.cores[c].EngineStats()
		}
	}
	return r, nil
}

// Accessors over the runner's clock and occupancy.

// Now returns the machine-local clock.
func (r *DynRunner) Now() uint64 { return r.now }

// Planned reports whether a slice is planned but not yet finished.
func (r *DynRunner) Planned() bool { return r.planned }

// PlanEnd returns the planned slice's end cycle (meaningful when Planned).
func (r *DynRunner) PlanEnd() uint64 { return r.planEnd }

// Live returns the number of jobs holding hardware threads.
func (r *DynRunner) Live() int { return len(r.live) }

// QueuedCount returns the number of dispatched-but-unadmitted jobs.
func (r *DynRunner) QueuedCount() int { return len(r.waiting) }

// Free returns the number of unoccupied hardware threads.
func (r *DynRunner) Free() int { return r.hwThreads - len(r.live) }

// Busy reports whether any job is live or queued.
func (r *DynRunner) Busy() bool { return len(r.live) > 0 || len(r.waiting) > 0 }

// Slices returns the number of finished slices (policy invocations).
func (r *DynRunner) Slices() int { return r.slices }

// PeakLive returns the maximum simultaneous live-job count.
func (r *DynRunner) PeakLive() int { return r.peakLive }

// Occupied returns ∫ live dt over the runner's lifetime — the numerator
// of MeanLive, exposed so a fleet can average occupancy across machines.
func (r *DynRunner) Occupied() float64 { return r.occupied }

// MeanLive returns the time-averaged live-job count.
func (r *DynRunner) MeanLive() float64 {
	if r.now == 0 {
		return 0
	}
	return r.occupied / float64(r.now)
}

// DeferredAdmits counts jobs admitted later than their arrival (jobs still
// queued at run end are the caller's to add, matching RunDynamic's final
// sweep).
func (r *DynRunner) DeferredAdmits() int { return r.deferred }

// AdmissionName returns the admission discipline's name.
func (r *DynRunner) AdmissionName() string { return r.adm.Name() }

// SkipTo fast-forwards an idle machine (no planned slice) to cycle t.
func (r *DynRunner) SkipTo(t uint64) {
	if r.planned {
		panic("machine: SkipTo with a planned slice")
	}
	if t > r.now {
		r.now = t
	}
}

// Arrive enqueues a dispatched job under the caller-assigned ID. Callers
// dispatch in global arrival order, so the queue's arrival cycles are
// non-decreasing; a job may arrive "in the future" of this machine's clock
// (mid-plan dispatch to a full machine) and becomes eligible for admission
// once the clock reaches it.
func (r *DynRunner) Arrive(app DynamicApp, id int) {
	var si int
	if n := len(r.freeSlots); n > 0 {
		si = r.freeSlots[n-1]
		r.freeSlots = r.freeSlots[:n-1]
	} else {
		r.slots = append(r.slots, runnerSlot{})
		si = len(r.slots) - 1
	}
	r.slots[si] = runnerSlot{used: true, id: id, app: app, coreOf: Unplaced}
	r.waiting = append(r.waiting, si)
	r.rc.JobsArrived.Add(1)
	if r.mt != nil {
		// A mid-plan dispatch can target a machine whose clock trails the
		// arrival; stamp the later of the two so shard time stays monotone.
		t := r.now
		if app.ArriveAt > t {
			t = app.ArriveAt
		}
		r.mt.Emit(obs.Event{T: t, Op: obs.OpArrive, Core: -1, App: int64(id), A: int64(app.ArriveAt)})
	}
}

// jobOf builds the admission view of one slot.
func (r *DynRunner) jobOf(si int, remaining uint64) admission.Job {
	s := &r.slots[si]
	return admission.Job{
		ID:       s.id,
		ArriveAt: s.app.ArriveAt,
		Priority: s.app.Priority,
		Weight:   s.app.Weight,
		Work:     remaining,
	}
}

// admit moves a queued slot into the live set.
func (r *DynRunner) admit(si int) {
	s := &r.slots[si]
	s.inst = apps.NewInstance(s.app.Model, r.seed+uint64(s.id)*0x9e3779b97f4a7c15+1)
	s.bank = &pmu.Bank{}
	s.bank.Enable()
	s.admitted = true
	s.admittedAt = r.now
	if r.now > s.app.ArriveAt {
		r.deferred++
		r.rc.JobsDeferred.Add(1)
	}
	r.rc.JobsAdmitted.Add(1)
	if r.mt != nil {
		r.mt.Emit(obs.Event{T: r.now, Op: obs.OpAdmit, Core: -1, App: int64(s.id), A: int64(r.now - s.app.ArriveAt)})
	}
	r.live = append(r.live, si)
	if len(r.live) > r.peakLive {
		r.peakLive = len(r.live)
	}
}

// BeginSlice runs admission over the arrived queue, invokes the placement
// policy over the live set and plans a slice ending at min(now+quantum,
// maxCycles). When no job is live after admission (or the clock already
// sits at maxCycles) no slice is planned and Planned() reports false.
func (r *DynRunner) BeginSlice(maxCycles uint64) error {
	if r.planned {
		panic("machine: BeginSlice with a planned slice")
	}
	// Admission: the eligible queue prefix (ArriveAt ≤ now — dispatch
	// order keeps arrival cycles non-decreasing), capacity permitting, in
	// the order the admission discipline picks.
	arrived := 0
	for arrived < len(r.waiting) && r.slots[r.waiting[arrived]].app.ArriveAt <= r.now {
		arrived++
	}
	if free := r.hwThreads - len(r.live); free > 0 && arrived > 0 {
		r.wjobs = r.wjobs[:0]
		for _, si := range r.waiting[:arrived] {
			r.wjobs = append(r.wjobs, r.jobOf(si, r.slots[si].app.Target))
		}
		r.rjobs = r.rjobs[:0]
		for _, si := range r.live {
			s := &r.slots[si]
			remaining := s.app.Target
			if ret := s.inst.Retired; ret < remaining {
				remaining -= ret
			} else {
				remaining = 0
			}
			r.rjobs = append(r.rjobs, r.jobOf(si, remaining))
		}
		sel := r.adm.Admit(r.wjobs, r.rjobs, free, r.now)
		if err := admission.Validate(sel, len(r.wjobs)); err != nil {
			return fmt.Errorf("machine: %w", err)
		}
		if len(sel) > free {
			sel = sel[:free]
		}
		if len(sel) > 0 {
			taken := make([]bool, arrived)
			for _, wi := range sel {
				r.admit(r.waiting[wi])
				taken[wi] = true
			}
			keep := r.waiting[:0]
			for wi, si := range r.waiting {
				if wi >= arrived || !taken[wi] {
					keep = append(keep, si)
				}
			}
			r.waiting = keep
		}
	}
	r.rc.QueueDepth.Observe(float64(len(r.waiting)))
	if r.mt != nil {
		r.mt.Emit(obs.Event{T: r.now, Op: obs.OpQueue, Core: -1, App: -1, A: int64(len(r.waiting)), B: int64(len(r.live))})
	}
	if len(r.live) == 0 || r.now >= maxCycles {
		return nil
	}

	// Build the policy's view over the live set. The samples view is
	// rebuilt each slice: a job admitted this slice contributes a zero
	// Counters value until it has run.
	n := len(r.live)
	if cap(r.ids) < n {
		r.ids = make([]int, 0, r.hwThreads)
		r.prevView = make(Placement, 0, r.hwThreads)
		r.samples = make([]pmu.Counters, 0, r.hwThreads)
		r.prios = make([]int, 0, r.hwThreads)
	}
	r.ids, r.prevView, r.samples, r.prios = r.ids[:0], r.prevView[:0], r.samples[:0], r.prios[:0]
	for _, si := range r.live {
		s := &r.slots[si]
		r.ids = append(r.ids, s.id)
		r.prevView = append(r.prevView, s.coreOf)
		r.samples = append(r.samples, s.lastDelta)
		r.prios = append(r.prios, s.app.Priority)
	}
	r.st.Quantum = r.slices
	r.st.NumApps = n
	r.st.AppIDs = r.ids
	r.st.Priorities = r.prios
	r.st.Prev, r.st.Samples = nil, nil
	if r.ranAny {
		r.st.Prev = r.prevView
		r.st.Samples = r.samples
	}

	t0 := perfstat.PhaseClock()
	place := r.policy.Place(r.st)
	perfstat.PhaseAdd(perfstat.PhasePolicy, t0)
	if len(place) != n {
		return fmt.Errorf("machine: policy %s returned %d placements for %d live apps",
			r.policy.Name(), len(place), n)
	}
	if err := place.Validate(len(r.m.cores), r.level); err != nil {
		return fmt.Errorf("machine: policy %s: %w", r.policy.Name(), err)
	}
	for i, si := range r.live {
		r.slots[si].coreOf = place[i]
	}
	rebinds := r.bindLive(place)
	if r.mt != nil || r.rc.Enabled() {
		r.observePlace(rebinds)
	}
	if r.onPl != nil {
		r.onPl(r.ids, place)
	}

	end := r.now + r.m.cfg.QuantumCycles
	if end > maxCycles {
		end = maxCycles
	}
	r.planned = true
	r.planEnd = end
	return nil
}

// Cut shortens the planned slice to end at cycle t (now < t < PlanEnd) —
// the off-quantum admission point for an arrival dispatched mid-plan.
// Legal because execution is lazy: the slice has not been stepped yet and
// the live set cannot change between plan and step.
func (r *DynRunner) Cut(t uint64) {
	if !r.planned || t <= r.now || t >= r.planEnd {
		panic("machine: Cut outside the planned slice")
	}
	r.planEnd = t
}

// StepPlanned executes the planned slice on the cores. It touches only
// this machine's state, so distinct runners' StepPlanned calls may run
// concurrently; every other step is coordinator-serial.
func (r *DynRunner) StepPlanned() {
	if !r.planned {
		panic("machine: StepPlanned without a planned slice")
	}
	t0 := perfstat.PhaseClock()
	r.m.runQuantumLive(r.bound, r.busy, r.planEnd-r.now)
	perfstat.PhaseAdd(perfstat.PhaseSimulation, t0)
}

// FinishSlice advances the clock to the plan end, collects every live
// job's PMU deltas and appends departures (true completion) to out,
// in live order. The slice must have been stepped.
func (r *DynRunner) FinishSlice(out []JobOutcome) []JobOutcome {
	if !r.planned {
		panic("machine: FinishSlice without a planned slice")
	}
	start := r.now
	slice := r.planEnd - r.now
	r.slices++
	r.now = r.planEnd
	r.occupied += float64(len(r.live)) * float64(slice)
	r.planned = false

	// Collect each live job's slice deltas for the next Place call.
	for _, si := range r.live {
		s := &r.slots[si]
		snap := s.bank.Read()
		s.lastDelta = snap.Delta(s.prevSnap)
		s.prevSnap = snap
	}
	r.ranAny = true
	r.rc.Slices.Add(1)
	if r.prevEngine != nil {
		r.observeSlice(start, slice)
	}

	// Departures. The thread is unbound immediately so the freed slot
	// index can be recycled without colliding with its stale binding
	// (RunDynamic's historical lazy unbind relied on job indices never
	// being reused; nothing runs between here and the next bind either
	// way).
	keep := r.live[:0]
	for _, si := range r.live {
		s := &r.slots[si]
		if s.inst.Retired < s.app.Target {
			keep = append(keep, si)
			continue
		}
		o := JobOutcome{
			ID:             s.id,
			Name:           s.app.Model.Name,
			Target:         s.app.Target,
			ArriveAt:       s.app.ArriveAt,
			AdmittedAt:     s.admittedAt,
			FinishAt:       r.now,
			Priority:       s.app.Priority,
			Weight:         s.app.Weight,
			Admitted:       true,
			Finished:       true,
			ResponseCycles: r.now - s.app.ArriveAt,
			Retired:        s.inst.Retired,
		}
		if o.ResponseCycles > 0 {
			o.IPC = float64(s.app.Target) / float64(o.ResponseCycles)
		}
		out = append(out, o)
		r.rc.JobsCompleted.Add(1)
		r.rc.ResponseCycles.Observe(float64(o.ResponseCycles))
		if r.mt != nil {
			r.mt.Emit(obs.Event{T: r.now, Op: obs.OpDepart, Core: -1, App: int64(s.id), Name: s.app.Model.Name, A: int64(o.ResponseCycles)})
		}
		if c := s.coreOf; c >= 0 {
			for k, bsi := range r.bound[c] {
				if bsi == si {
					r.m.cores[c].Bind(k, nil, nil)
					r.bound[c][k] = -1
					break
				}
			}
		}
		*s = runnerSlot{}
		r.freeSlots = append(r.freeSlots, si)
	}
	r.live = keep
	return out
}

// Unfinished appends the current state of every live and queued job to
// out (live first, each set in queue order) — the caller's end-of-run
// accounting.
func (r *DynRunner) Unfinished(out []JobOutcome) []JobOutcome {
	for _, si := range r.live {
		s := &r.slots[si]
		out = append(out, JobOutcome{
			ID:         s.id,
			Name:       s.app.Model.Name,
			Target:     s.app.Target,
			ArriveAt:   s.app.ArriveAt,
			AdmittedAt: s.admittedAt,
			Priority:   s.app.Priority,
			Weight:     s.app.Weight,
			Admitted:   true,
			Retired:    s.inst.Retired,
		})
	}
	for _, si := range r.waiting {
		s := &r.slots[si]
		out = append(out, JobOutcome{
			ID:       s.id,
			Name:     s.app.Model.Name,
			Target:   s.app.Target,
			ArriveAt: s.app.ArriveAt,
			Priority: s.app.Priority,
			Weight:   s.app.Weight,
		})
	}
	return out
}

// bindLive rebinds hardware threads to match the live placement, touching
// only slots whose occupant changes: a job keeps its thread (and its
// pipeline state) whenever it stays on the same core. It returns the
// number of threads that received a new occupant — the placement's rebind
// cost (pipeline state lost to migration).
func (r *DynRunner) bindLive(place Placement) int {
	rebinds := 0
	want := make([]int, r.level)
	used := make([]bool, r.level)
	for c := range r.bound {
		// Desired occupants of core c, in live order.
		n := 0
		for i, si := range r.live {
			if place[i] == c && n < r.level {
				want[n] = si
				n++
			}
		}
		// Keep jobs already bound to this core in their threads.
		for k := range used {
			used[k] = false
		}
		for s := 0; s < r.level; s++ {
			cur := r.bound[c][s]
			if cur < 0 {
				continue
			}
			stay := false
			for k := 0; k < n; k++ {
				if !used[k] && want[k] == cur {
					used[k] = true
					stay = true
					break
				}
			}
			if !stay {
				r.m.cores[c].Bind(s, nil, nil)
				r.bound[c][s] = -1
			}
		}
		// Place newcomers in the free threads.
		for k := 0; k < n; k++ {
			if used[k] {
				continue
			}
			for s := 0; s < r.level; s++ {
				if r.bound[c][s] < 0 {
					r.m.cores[c].Bind(s, r.slots[want[k]].inst, r.slots[want[k]].bank)
					r.bound[c][s] = want[k]
					rebinds++
					break
				}
			}
		}
	}
	return rebinds
}

// observePlace records one placement decision: place-call and rebind
// counters plus the predcache hit/miss deltas attributable to the decision
// (when the policy exposes CacheStats). Called only when observability is
// on.
func (r *DynRunner) observePlace(rebinds int) {
	r.rc.PlaceCalls.Add(1)
	r.rc.Rebinds.Add(int64(rebinds))
	var vals []float64
	if r.cacheStats != nil {
		inv, pair := r.cacheStats()
		dInvH := int64(inv.Hits - r.prevInv.Hits)
		dInvM := int64(inv.Misses - r.prevInv.Misses)
		dPairH := int64(pair.Hits - r.prevPair.Hits)
		dPairM := int64(pair.Misses - r.prevPair.Misses)
		r.prevInv, r.prevPair = inv, pair
		r.rc.InvertHits.Add(dInvH)
		r.rc.InvertMisses.Add(dInvM)
		r.rc.PairHits.Add(dPairH)
		r.rc.PairMisses.Add(dPairM)
		if r.mt != nil {
			vals = []float64{float64(dInvH), float64(dInvM), float64(dPairH), float64(dPairM)}
		}
	}
	if r.mt != nil {
		r.mt.Emit(obs.Event{T: r.now, Op: obs.OpPlace, Core: -1, App: -1, A: int64(r.slices), B: int64(rebinds), Vals: vals})
	}
}

// observeSlice attributes one finished slice to the core-engine tier
// counters and, when tracing, emits one exec span per occupied hardware
// thread in (core, slot) order — the shard-internal order the (t, machine,
// core) trace merge relies on. Called before departures unbind threads.
func (r *DynRunner) observeSlice(start, slice uint64) {
	var dStep, dSpan, dFF int64
	for c := range r.m.cores {
		es := r.m.cores[c].EngineStats()
		prev := r.prevEngine[c]
		r.prevEngine[c] = es
		dStep += int64(es.StepCycles - prev.StepCycles)
		dSpan += int64(es.SpanCycles - prev.SpanCycles)
		ff := int64(es.FFCycles - prev.FFCycles)
		dFF += ff
		if r.mt == nil {
			continue
		}
		for k := 0; k < r.level; k++ {
			si := r.bound[c][k]
			if si < 0 {
				continue
			}
			s := &r.slots[si]
			r.mt.Emit(obs.Event{
				T: start, Dur: slice, Op: obs.OpExec,
				Core: int32(c*r.level + k), App: int64(s.id), Name: s.app.Model.Name,
				A: int64(s.lastDelta[pmu.InstRetired]), B: ff,
			})
		}
	}
	r.rc.StepCycles.Add(dStep)
	r.rc.SpanCycles.Add(dSpan)
	r.rc.FFCycles.Add(dFF)
}

// FlushObs drains this machine's trace shard into the run-global trace.
// Coordinator-serial only: callers invoke it at the quantum/slice barriers
// in ascending machine order (the parallel-merge invariant). Nil-safe.
func (r *DynRunner) FlushObs() { r.mt.Flush() }
