// Package machine assembles SMT cores into the simulated multi-core system
// the experiments run on, and implements the user-level thread manager of
// paper §V-A: every quantum it asks an allocation policy where each
// application should run, applies the placement (the simulated equivalent of
// sched_setaffinity), executes the quantum on every core in parallel, and
// collects per-application PMU samples.
//
// The paper's manager runs on a 28-core ThunderX2; its 8-application
// workloads occupy four SMT2 cores. The machine size, SMT level
// (Config.Core.SMTLevel — the BIOS knob of §V-A, up to the hardware's SMT4)
// and quantum length are configurable; the quantum defaults to a scaled-down
// cycle count because every quantity SYNPA consumes is a per-cycle fraction
// (DESIGN.md §2).
package machine

import (
	"fmt"

	"synpa/internal/apps"
	"synpa/internal/obs"
	"synpa/internal/perfstat"
	"synpa/internal/pmu"
	"synpa/internal/pool"
	"synpa/internal/smtcore"
)

// Config describes the simulated system.
type Config struct {
	// Cores is the number of SMT cores (each with Core.SMTLevel hardware
	// threads).
	Cores int
	// QuantumCycles is the length of one scheduling quantum in core
	// cycles (the paper uses 100 ms of wall time; see DESIGN.md for the
	// scaling argument).
	QuantumCycles uint64
	// Core is the per-core microarchitecture configuration.
	Core smtcore.Config
	// Parallel enables intra-run parallel quantum execution. Callers that
	// fan independent runs out across CPUs themselves (the experiment
	// suite) set it false to serialise each run.
	Parallel bool
	// Workers bounds the worker goroutines that shard the per-core
	// stepping within one quantum (workers.go). Zero selects GOMAXPROCS;
	// one disables sharding. The SYNPA_WORKERS environment variable
	// overrides it (SYNPA_WORKERS=1 disables). Results are bit-identical
	// at every worker count: cores are state-isolated within a quantum and
	// the merge order is fixed (see workers.go).
	Workers int
	// FastForward enables the event-driven fast-forward engine in every
	// core (internal/smtcore/DESIGN.md). The engine is observationally
	// equivalent to the per-cycle reference loop, so this only trades
	// wall-clock time; disable it to benchmark the reference simulator.
	FastForward bool
}

// DefaultConfig returns a four-core machine sized for the paper's
// 8-application workloads.
func DefaultConfig() Config {
	return Config{
		Cores:         4,
		QuantumCycles: 20_000,
		Core:          smtcore.DefaultConfig(),
		Parallel:      true,
		FastForward:   true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("machine: need at least one core")
	}
	if c.QuantumCycles < 1000 {
		return fmt.Errorf("machine: quantum of %d cycles is too short to measure", c.QuantumCycles)
	}
	return c.Core.Validate()
}

// ThreadsPerCore returns the machine's SMT level: the number of hardware
// threads each core exposes.
func (c Config) ThreadsPerCore() int { return c.Core.Level() }

// HWThreads returns the machine's hardware-thread capacity.
func (c Config) HWThreads() int { return c.Cores * c.Core.Level() }

// Placement maps each application index to a core index. At most
// threadsPerCore (the machine's SMT level) applications may share a core.
// The sentinel Unplaced appears only in the Prev view handed to policies
// during dynamic runs (an application that has not run yet); placements
// returned by a policy must assign every application a real core.
type Placement []int

// Unplaced marks an application without a core in a Prev placement view.
const Unplaced = -1

// Clone returns a copy of the placement.
func (p Placement) Clone() Placement { return append(Placement(nil), p...) }

// Validate checks that the placement is feasible on numCores cores of
// threadsPerCore hardware threads each.
func (p Placement) Validate(numCores, threadsPerCore int) error {
	load := make([]int, numCores)
	for app, core := range p {
		if core < 0 || core >= numCores {
			return fmt.Errorf("machine: app %d placed on invalid core %d", app, core)
		}
		load[core]++
		if load[core] > threadsPerCore {
			return fmt.Errorf("machine: core %d assigned more than %d apps", core, threadsPerCore)
		}
	}
	return nil
}

// PairsOf returns, for each core, the app indices placed on it — pairs at
// SMT2, groups of up to the SMT level in general.
func (p Placement) PairsOf(numCores int) [][]int {
	out := make([][]int, numCores)
	for app, core := range p {
		if core >= 0 && core < numCores {
			out[core] = append(out[core], app)
		}
	}
	return out
}

// CoMate returns the index of the app sharing a core with app i, or -1.
// It is the SMT2 pairwise view — above two threads per core use PairsOf,
// which returns whole co-resident groups. Inside per-quantum or per-app
// loops prefer CoMates, which computes every pairing in one O(n) pass
// instead of O(n) per query.
func (p Placement) CoMate(i int) int {
	if p[i] < 0 {
		return -1 // Unplaced apps share nothing
	}
	for j, c := range p {
		if j != i && c == p[i] {
			return j
		}
	}
	return -1
}

// CoMates returns, for every app, the index of the app sharing its core
// (-1 for solo apps), in one pass. dst is reused when it has capacity.
func (p Placement) CoMates(dst []int) []int {
	if cap(dst) >= len(p) {
		dst = dst[:len(p)]
	} else {
		dst = make([]int, len(p))
	}
	for i := range dst {
		dst[i] = -1
	}
	// first[c] remembers the first occupant seen on core c.
	maxCore := -1
	for _, c := range p {
		if c > maxCore {
			maxCore = c
		}
	}
	first := make([]int, maxCore+1)
	for i := range first {
		first[i] = -1
	}
	for i, c := range p {
		if c < 0 {
			continue
		}
		if j := first[c]; j >= 0 {
			dst[i], dst[j] = j, i
		} else {
			first[c] = i
		}
	}
	return dst
}

// QuantumState is the information a policy receives when asked to place
// applications for the next quantum.
type QuantumState struct {
	// Quantum is the index of the quantum about to execute (0-based).
	Quantum int
	// NumCores is the machine size.
	NumCores int
	// NumApps is the number of applications in the workload. In a dynamic
	// (open-system) run this is the number of *live* applications and may
	// change between quanta as applications arrive and depart.
	NumApps int
	// AppIDs gives each application's stable identity across quanta. In a
	// closed-system run it is nil, meaning index i is identity i forever.
	// In a dynamic run indices are compacted over the live set, so
	// stateful policies must use AppIDs — not positions — to carry
	// per-application state across quanta. The slice is owned by the
	// runner and must not be retained past the Place call.
	AppIDs []int
	// Prev is the placement executed during the previous quantum; nil
	// before the first quantum. In a dynamic run entries may be
	// Unplaced (-1) for applications that arrived after that quantum.
	Prev Placement
	// Samples holds each application's PMU deltas over the previous
	// quantum; nil before the first quantum. In a dynamic run a zero
	// Counters value marks an application that has not run yet.
	Samples []pmu.Counters
	// Priorities holds each application's priority class (higher = more
	// urgent) in a dynamic run, parallel to the live set, so placement
	// policies can discriminate by class. Nil in closed-system runs,
	// where every application is class 0. Owned by the runner; must not
	// be retained past the Place call.
	Priorities []int
	// DispatchWidth is the core dispatch width (for characterization).
	DispatchWidth int
	// SMTLevel is the machine's hardware threads per core; a placement
	// must not assign more than SMTLevel applications to one core. Zero
	// (a hand-built state) means the default SMT2.
	SMTLevel int
}

// ThreadsPerCore returns the state's SMT level, substituting the SMT2
// default for a zero value.
func (st *QuantumState) ThreadsPerCore() int {
	if st.SMTLevel > 0 {
		return st.SMTLevel
	}
	return smtcore.DefaultSMTLevel
}

// Policy decides the thread-to-core allocation each quantum. The Linux
// baseline, the SYNPA policy and every ablation implement this interface.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Place returns the placement for the next quantum. The QuantumState
	// and its Samples vector are owned by the runner and reused across
	// quanta: implementations must not retain them past the call.
	Place(st *QuantumState) Placement
}

// AppResult summarises one application's execution within a workload run.
type AppResult struct {
	// Name is the application's benchmark name.
	Name string
	// Target is the retired-instruction target (§V-B methodology).
	Target uint64
	// CompletedAtCycle is the machine cycle at which the app first
	// reached its target; 0 if it never completed.
	CompletedAtCycle uint64
	// CompletedAtQuantum is the quantum index of completion, -1 if never.
	CompletedAtQuantum int
	// Retired is the total instructions retired over the whole run
	// (including post-completion relaunches).
	Retired uint64
	// IPC is Target / CompletedAtCycle — the per-application performance
	// number used for the paper's fairness and IPC metrics.
	IPC float64
}

// Result is the outcome of running one workload under one policy.
type Result struct {
	// Policy is the allocation policy's name.
	Policy string
	// Quanta is the number of quanta executed.
	Quanta int
	// QuantumCycles echoes the configured quantum length.
	QuantumCycles uint64
	// Apps holds per-application results, in workload order.
	Apps []AppResult
	// Placements records the placement of every executed quantum.
	Placements []Placement
	// Samples records per-quantum, per-app PMU deltas when tracing was
	// enabled: Samples[q][a].
	Samples [][]pmu.Counters
	// AllCompleted reports whether every application reached its target.
	AllCompleted bool
}

// TurnaroundCycles returns the workload turnaround time: the completion
// cycle of the slowest application (paper §VI-B). The second return is
// false if some application never completed.
func (r *Result) TurnaroundCycles() (uint64, bool) {
	var tt uint64
	for i := range r.Apps {
		if r.Apps[i].CompletedAtCycle == 0 {
			return 0, false
		}
		if r.Apps[i].CompletedAtCycle > tt {
			tt = r.Apps[i].CompletedAtCycle
		}
	}
	return tt, true
}

// Machine is the simulated multi-core system.
type Machine struct {
	cfg     Config
	cores   []*smtcore.Core
	workers int             // resolved intra-run worker count (>= 1)
	pool    *pool.ShardPool // run-scoped worker pool, nil outside parallel runs
}

// New builds a machine. It returns an error for invalid configurations.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, workers: cfg.EffectiveWorkers()}
	for i := 0; i < cfg.Cores; i++ {
		core := smtcore.New(i, cfg.Core)
		core.SetFastForward(cfg.FastForward)
		m.cores = append(m.cores, core)
	}
	return m, nil
}

// Workers returns the resolved intra-run worker count.
func (m *Machine) Workers() int { return m.workers }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// runQuantum executes one quantum on every core, sharded across the
// run-scoped worker pool when one is active.
func (m *Machine) runQuantum() {
	m.stepCores(m.cfg.QuantumCycles, nil)
}

// RunnerOptions tune a workload run.
type RunnerOptions struct {
	// Seed derives every application's private random stream.
	Seed uint64
	// MaxQuanta bounds the run; the run also stops once every app has
	// completed its target. Zero means the DefaultMaxQuanta bound.
	MaxQuanta int
	// RecordTrace keeps per-quantum per-app samples in the Result
	// (needed by the Fig. 6/7 and Table V analyses).
	RecordTrace bool
	// Obs, when non-nil, receives the run's event trace and metrics (the
	// single machine is machine 0). Tracing never perturbs the simulation.
	Obs *obs.Observer
}

// DefaultMaxQuanta caps runaway executions.
const DefaultMaxQuanta = 20_000

// appState is the runner's bookkeeping for one application.
type appState struct {
	inst        *apps.Instance
	bank        *pmu.Bank
	target      uint64
	prevSnap    pmu.Counters
	completedAt uint64
	completedQ  int
	launches    uint64 // completed target multiples so far
}

// Run executes the given applications under a policy until every app
// reaches its instruction target (relaunching completed apps to keep the
// machine loaded, per §V-B) or MaxQuanta elapses.
//
// targets[i] is the retired-instruction target of models[i]; a zero target
// means "run for the whole experiment without a completion time".
func (m *Machine) Run(models []*apps.Model, targets []uint64, policy Policy, opt RunnerOptions) (*Result, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("machine: no applications")
	}
	if len(targets) != len(models) {
		return nil, fmt.Errorf("machine: %d targets for %d applications", len(targets), len(models))
	}
	level := m.cfg.Core.Level()
	if hwThreads := len(m.cores) * level; len(models) > hwThreads {
		return nil, fmt.Errorf("machine: %d applications exceed %d hardware threads", len(models), hwThreads)
	}
	maxQuanta := opt.MaxQuanta
	if maxQuanta <= 0 {
		maxQuanta = DefaultMaxQuanta
	}

	anyTarget := false
	for _, tgt := range targets {
		if tgt > 0 {
			anyTarget = true
			break
		}
	}

	states := make([]*appState, len(models))
	for i, mod := range models {
		st := &appState{
			inst:       apps.NewInstance(mod, opt.Seed+uint64(i)*0x9e3779b97f4a7c15+1),
			bank:       &pmu.Bank{},
			target:     targets[i],
			completedQ: -1,
		}
		st.bank.Enable()
		states[i] = st
	}

	res := &Result{
		Policy:        policy.Name(),
		QuantumCycles: m.cfg.QuantumCycles,
		// Typical runs finish within a few hundred quanta; pre-sizing the
		// per-quantum records avoids most of the append regrowth without
		// committing MaxQuanta-sized buffers up front.
		Placements: make([]Placement, 0, 256),
	}

	var prev Placement
	// The per-quantum sample vectors double-buffer: the policy reads the
	// previous quantum's deltas while the new ones are collected, so two
	// buffers suffice — unless the caller wants the whole trace, in which
	// case each quantum's vector is retained in the Result and must be
	// freshly allocated.
	samples := make([]pmu.Counters, len(models))
	spare := make([]pmu.Counters, len(models))
	var havePrev bool

	// The QuantumState is reused across quanta; policies receive it for
	// the duration of one Place call only.
	st := &QuantumState{
		NumCores:      len(m.cores),
		NumApps:       len(models),
		DispatchWidth: m.cfg.Core.DispatchWidth,
		SMTLevel:      level,
	}

	// The intra-run worker pool lives for exactly this run.
	stopPool := m.startPool()
	defer stopPool()

	// Observability: the closed system is machine 0; per-quantum engine
	// deltas are observed only when tracing or metrics are live.
	view := opt.Obs.Machine(0)
	mt := view.Trace()
	rc := view.Counters()
	var prevEngine []smtcore.EngineStats
	if mt != nil || rc.Enabled() {
		prevEngine = make([]smtcore.EngineStats, len(m.cores))
		for c := range m.cores {
			prevEngine[c] = m.cores[c].EngineStats()
		}
	}

	// Placement clones are carved from chunked backing arrays instead of
	// one small allocation per quantum.
	var cloneArena []int

	for q := 0; q < maxQuanta; q++ {
		st.Quantum = q
		st.Prev, st.Samples = nil, nil
		if havePrev {
			st.Prev = prev
			st.Samples = samples
		}
		t0 := perfstat.PhaseClock()
		place := policy.Place(st)
		perfstat.PhaseAdd(perfstat.PhasePolicy, t0)
		if len(place) != len(models) {
			return nil, fmt.Errorf("machine: policy %s returned %d placements for %d apps",
				policy.Name(), len(place), len(models))
		}
		if err := place.Validate(len(m.cores), level); err != nil {
			return nil, fmt.Errorf("machine: policy %s: %w", policy.Name(), err)
		}
		rebinds := m.applyPlacement(states, place, prev)
		rc.PlaceCalls.Add(1)
		rc.Rebinds.Add(int64(rebinds))
		if mt != nil {
			mt.Emit(obs.Event{T: uint64(q) * m.cfg.QuantumCycles, Op: obs.OpPlace, Core: -1, App: -1, A: int64(q), B: int64(rebinds)})
		}
		if len(cloneArena) < len(place) {
			cloneArena = make([]int, 256*len(place))
		}
		clone := Placement(cloneArena[:len(place):len(place)])
		cloneArena = cloneArena[len(place):]
		copy(clone, place)
		res.Placements = append(res.Placements, clone)

		t0 = perfstat.PhaseClock()
		m.runQuantum()
		perfstat.PhaseAdd(perfstat.PhaseSimulation, t0)
		res.Quanta++

		nowCycle := uint64(res.Quanta) * m.cfg.QuantumCycles
		newSamples := spare
		if opt.RecordTrace {
			newSamples = make([]pmu.Counters, len(models))
		}
		allDone := anyTarget
		for i, s := range states {
			snap := s.bank.Read()
			newSamples[i] = snap.Delta(s.prevSnap)
			s.prevSnap = snap

			if s.target > 0 {
				if done := s.inst.Retired / s.target; done > s.launches {
					if s.completedAt == 0 {
						s.completedAt = nowCycle
						s.completedQ = res.Quanta - 1
					}
					s.launches = done
					s.inst.Relaunch()
				}
				if s.completedAt == 0 {
					allDone = false
				}
			}
		}
		rc.Slices.Add(1)
		if prevEngine != nil {
			var dStep, dSpan, dFF int64
			for c := range m.cores {
				es := m.cores[c].EngineStats()
				pe := prevEngine[c]
				prevEngine[c] = es
				dStep += int64(es.StepCycles - pe.StepCycles)
				dSpan += int64(es.SpanCycles - pe.SpanCycles)
				ff := int64(es.FFCycles - pe.FFCycles)
				dFF += ff
				if mt == nil {
					continue
				}
				// Exec spans, one per occupied hardware thread: occupants
				// of core c in app order, mirroring applyPlacement's slot
				// assignment.
				slot := 0
				for app, pc := range place {
					if pc != c || slot >= level {
						continue
					}
					mt.Emit(obs.Event{
						T: nowCycle - m.cfg.QuantumCycles, Dur: m.cfg.QuantumCycles, Op: obs.OpExec,
						Core: int32(c*level + slot), App: int64(app), Name: models[app].Name,
						A: int64(newSamples[app][pmu.InstRetired]), B: ff,
					})
					slot++
				}
			}
			rc.StepCycles.Add(dStep)
			rc.SpanCycles.Add(dSpan)
			rc.FFCycles.Add(dFF)
			mt.Flush() // quantum barrier: drain the shard in order
		}
		spare = samples
		samples = newSamples
		havePrev = true
		if opt.RecordTrace {
			res.Samples = append(res.Samples, newSamples)
		}
		prev = clone
		if allDone {
			break
		}
	}

	res.AllCompleted = true
	for i, s := range states {
		ar := AppResult{
			Name:               models[i].Name,
			Target:             s.target,
			CompletedAtCycle:   s.completedAt,
			CompletedAtQuantum: s.completedQ,
			Retired:            s.inst.Retired,
		}
		if s.completedAt > 0 {
			ar.IPC = float64(s.target) / float64(s.completedAt)
		} else if s.target > 0 {
			res.AllCompleted = false
		}
		res.Apps = append(res.Apps, ar)
	}
	return res, nil
}

// applyPlacement rebinds only the cores whose application set changed,
// preserving pipeline state on unchanged cores (migrations flush state, a
// stable pairing does not). It returns the number of threads that received
// an application — the placement's rebind cost.
func (m *Machine) applyPlacement(states []*appState, place, prev Placement) int {
	level := m.cfg.Core.Level()
	cur := make([]int, level)
	rebinds := 0
	for core := 0; core < len(m.cores); core++ {
		if prev != nil && sameSet(core, place, prev) {
			continue
		}
		n := 0
		for app, c := range place {
			if c == core && n < level {
				cur[n] = app
				n++
			}
		}
		for slot := 0; slot < level; slot++ {
			if slot < n {
				m.cores[core].Bind(slot, states[cur[slot]].inst, states[cur[slot]].bank)
				rebinds++
			} else {
				m.cores[core].Bind(slot, nil, nil)
			}
		}
	}
	return rebinds
}

// sameSet reports whether core hosts exactly the same apps in both
// placements.
func sameSet(core int, a, b Placement) bool {
	if len(a) != len(b) {
		return false
	}
	for app := range a {
		if (a[app] == core) != (b[app] == core) {
			return false
		}
	}
	return true
}

// RunIsolated executes a single application alone on a one-core machine for
// the given number of quanta and returns its per-quantum samples. It is the
// building block of the Fig. 4 characterization, the §IV-C training profile
// collection, and the target-setting methodology of §V-B.
func RunIsolated(model *apps.Model, seed uint64, quanta int, cfg Config) ([]pmu.Counters, error) {
	cfg.Cores = 1
	cfg.Parallel = false
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	inst := apps.NewInstance(model, seed)
	bank := &pmu.Bank{}
	bank.Enable()
	m.cores[0].Bind(0, inst, bank)

	out := make([]pmu.Counters, 0, quanta)
	var prevSnap pmu.Counters
	t0 := perfstat.PhaseClock()
	for q := 0; q < quanta; q++ {
		m.cores[0].Run(cfg.QuantumCycles)
		snap := bank.Read()
		out = append(out, snap.Delta(prevSnap))
		prevSnap = snap
	}
	perfstat.PhaseAdd(perfstat.PhaseSimulation, t0)
	return out, nil
}

// RunPairSMT executes two applications together on one core for the given
// number of quanta, returning each one's per-quantum samples. It is the
// training pipeline's SMT data collector (§IV-C). Pair collection needs two
// thread slots by definition, so a machine configured below SMT2 (the SMT1
// isolated baseline) is raised to SMT2 for the private training core.
func RunPairSMT(a, b *apps.Model, seedA, seedB uint64, quanta int, cfg Config) (sa, sb []pmu.Counters, err error) {
	cfg.Cores = 1
	cfg.Parallel = false
	if cfg.Core.Level() < 2 {
		cfg.Core.SMTLevel = 2
	}
	m, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	ia := apps.NewInstance(a, seedA)
	ib := apps.NewInstance(b, seedB)
	ba, bb := &pmu.Bank{}, &pmu.Bank{}
	ba.Enable()
	bb.Enable()
	m.cores[0].Bind(0, ia, ba)
	m.cores[0].Bind(1, ib, bb)

	sa = make([]pmu.Counters, 0, quanta)
	sb = make([]pmu.Counters, 0, quanta)
	var prevA, prevB pmu.Counters
	t0 := perfstat.PhaseClock()
	for q := 0; q < quanta; q++ {
		m.cores[0].Run(cfg.QuantumCycles)
		snapA, snapB := ba.Read(), bb.Read()
		sa = append(sa, snapA.Delta(prevA))
		sb = append(sb, snapB.Delta(prevB))
		prevA, prevB = snapA, snapB
	}
	perfstat.PhaseAdd(perfstat.PhaseSimulation, t0)
	return sa, sb, nil
}
