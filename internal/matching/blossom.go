// Package matching implements weighted matching on general graphs.
//
// SYNPA (paper §IV-B, Step 3) must pick, every quantum, the set of
// application pairs that minimises the total predicted SMT degradation. With
// 2k applications on k SMT2 cores this is exactly minimum-weight perfect
// matching on the complete graph whose edge weights are the pairwise
// predicted slowdown sums. The paper solves it with Edmonds' Blossom
// algorithm [21]; so does this package.
//
// Vertex counts need not be even: MinWeightPerfectMatching requires an even
// count (a perfect matching cannot exist otherwise and it returns
// ErrOddVertices), while MinWeightMatching accepts odd counts by padding the
// graph with a single zero-weight phantom vertex, leaving exactly one real
// vertex optimally unmatched — the shape dynamic (open-system) runs produce
// when an odd number of applications is live.
//
// The core is an O(n³) maximum-weight general matching with dual variables
// and blossom shrinking (the classic primal-dual formulation of Edmonds'
// algorithm). Minimum-weight perfect matching is obtained by the usual
// complement transform: on a complete graph whose transformed weights are all
// strictly positive, every maximum-weight matching is perfect, and
// maximising Σ(W−w) minimises Σw over perfect matchings.
//
// A brute-force exact matcher (subset dynamic program, O(2ⁿ·n)) is provided
// for cross-validation in tests and for the matcher-overhead ablation bench.
// Above SMT2, where co-schedules grow beyond pairs, the matching step
// generalises to the weighted set-partition problem of internal/grouping,
// which delegates back to this package at level 2.
package matching

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the matchers.
var (
	// ErrOddVertices is returned by the perfect-matching entry points
	// (MinWeightPerfectMatching, BruteForceMinWeightPerfect), which cannot
	// match an odd vertex count; MinWeightMatching handles odd counts via
	// a zero-weight phantom vertex instead of erroring.
	ErrOddVertices  = errors.New("matching: perfect matching requires an even vertex count (use MinWeightMatching for odd counts)")
	ErrNotSquare    = errors.New("matching: weight matrix must be square")
	ErrNotSymmetric = errors.New("matching: weight matrix must be symmetric")
	ErrBadWeight    = errors.New("matching: weights must be finite")
)

// weightScale converts float64 edge weights into the integer domain the
// primal-dual algorithm requires for exact zero-slack tests. Slowdown sums
// are O(1..10); six decimal digits of resolution is far below any
// behavioural difference the simulator can produce.
const weightScale = 1e6

type edge struct {
	u, v int
	w    int64
}

// blossomSolver carries the state of one maximum-weight matching run.
// Vertices are 1-indexed; ids above n denote contracted blossoms.
type blossomSolver struct {
	n, nx int // original vertex count; current max node id (incl. blossoms)
	capN  int // vertex capacity the arrays were allocated for (capN >= n)

	g          [][]edge // g[u][v]: best edge between (super)nodes u and v
	lab        []int64  // dual variables
	match      []int    // matched original-vertex id (0 = unmatched)
	slack      []int
	st         []int // st[x]: the (super)node currently containing x
	pa         []int // tree parent edge endpoint
	flowerFrom [][]int
	flower     [][]int
	s          []int // node label: -1 unvisited, 0 even, 1 odd
	vis        []int
	visTime    int
	queue      []int
}

const infWeight = int64(math.MaxInt64 / 4)

// newSolverAlloc allocates a solver sized for up to capN vertices without
// initialising the per-run state; init must run before every matching.
func newSolverAlloc(capN int) *blossomSolver {
	size := 2*capN + 8
	b := &blossomSolver{
		capN:       capN,
		g:          make([][]edge, size),
		lab:        make([]int64, size),
		match:      make([]int, size),
		slack:      make([]int, size),
		st:         make([]int, size),
		pa:         make([]int, size),
		flowerFrom: make([][]int, size),
		flower:     make([][]int, size),
		s:          make([]int, size),
		vis:        make([]int, size),
	}
	for i := range b.g {
		b.g[i] = make([]edge, size)
		b.flowerFrom[i] = make([]int, capN+1)
	}
	return b
}

// init resets the solver to the exact state a freshly allocated one has
// for an n-vertex run — bit-identical reuse: only the logical 2n+8 region
// the algorithm can touch is (re)initialised, so a recycled solver is
// indistinguishable from a new one.
func (b *blossomSolver) init(n int, w [][]int64) {
	b.n, b.nx = n, n
	b.visTime = 0
	b.queue = b.queue[:0]
	size := 2*n + 8
	for i := 0; i < size; i++ {
		b.lab[i] = 0
		b.match[i] = 0
		b.slack[i] = 0
		b.st[i] = 0
		b.pa[i] = 0
		b.s[i] = 0
		b.vis[i] = 0
		b.flower[i] = b.flower[i][:0]
		g := b.g[i][:size]
		for j := range g {
			g[j] = edge{u: i, v: j, w: 0}
		}
		ff := b.flowerFrom[i][:n+1]
		for j := range ff {
			ff[j] = 0
		}
	}
	var wMax int64
	for u := 1; u <= n; u++ {
		b.st[u] = u
		for v := 1; v <= n; v++ {
			if u == v {
				b.flowerFrom[u][v] = u
				continue
			}
			b.g[u][v].w = w[u-1][v-1]
			if b.g[u][v].w > wMax {
				wMax = b.g[u][v].w
			}
		}
	}
	for u := 1; u <= n; u++ {
		b.lab[u] = wMax
	}
}

func newBlossomSolver(n int, w [][]int64) *blossomSolver {
	b := newSolverAlloc(n)
	b.init(n, w)
	return b
}

// eDelta is the reduced cost (slack) of edge e: lab[u]+lab[v]−2w.
// Weights are implicitly doubled so that all dual updates stay integral.
func (b *blossomSolver) eDelta(e edge) int64 {
	return b.lab[e.u] + b.lab[e.v] - 2*e.w
}

func (b *blossomSolver) updateSlack(u, x int) {
	if b.slack[x] == 0 || b.eDelta(b.g[u][x]) < b.eDelta(b.g[b.slack[x]][x]) {
		b.slack[x] = u
	}
}

func (b *blossomSolver) setSlack(x int) {
	b.slack[x] = 0
	for u := 1; u <= b.n; u++ {
		if b.g[u][x].w > 0 && b.st[u] != x && b.s[b.st[u]] == 0 {
			b.updateSlack(u, x)
		}
	}
}

func (b *blossomSolver) qPush(x int) {
	if x <= b.n {
		b.queue = append(b.queue, x)
		return
	}
	for _, t := range b.flower[x] {
		b.qPush(t)
	}
}

func (b *blossomSolver) setSt(x, v int) {
	b.st[x] = v
	if x > b.n {
		for _, t := range b.flower[x] {
			b.setSt(t, v)
		}
	}
}

// getPr locates xr inside blossom bl and, if it sits at an odd position,
// reverses the cyclic order so the even-length alternating path is used.
func (b *blossomSolver) getPr(bl, xr int) int {
	pr := 0
	for i, t := range b.flower[bl] {
		if t == xr {
			pr = i
			break
		}
	}
	if pr%2 == 1 {
		// Reverse flower[bl][1:] to flip traversal direction.
		fl := b.flower[bl]
		for i, j := 1, len(fl)-1; i < j; i, j = i+1, j-1 {
			fl[i], fl[j] = fl[j], fl[i]
		}
		return len(fl) - pr
	}
	return pr
}

func (b *blossomSolver) setMatch(u, v int) {
	b.match[u] = b.g[u][v].v
	if u <= b.n {
		return
	}
	e := b.g[u][v]
	xr := b.flowerFrom[u][e.u]
	pr := b.getPr(u, xr)
	for i := 0; i < pr; i++ {
		b.setMatch(b.flower[u][i], b.flower[u][i^1])
	}
	b.setMatch(xr, v)
	// Rotate so xr becomes the blossom base.
	fl := b.flower[u]
	b.flower[u] = append(append([]int{}, fl[pr:]...), fl[:pr]...)
}

func (b *blossomSolver) augment(u, v int) {
	for {
		xnv := b.st[b.match[u]]
		b.setMatch(u, v)
		if xnv == 0 {
			return
		}
		b.setMatch(xnv, b.st[b.pa[xnv]])
		u, v = b.st[b.pa[xnv]], xnv
	}
}

func (b *blossomSolver) getLCA(u, v int) int {
	b.visTime++
	t := b.visTime
	for u != 0 || v != 0 {
		if u != 0 {
			if b.vis[u] == t {
				return u
			}
			b.vis[u] = t
			u = b.st[b.match[u]]
			if u != 0 {
				u = b.st[b.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

func (b *blossomSolver) addBlossom(u, lca, v int) {
	bl := b.n + 1
	for bl <= b.nx && b.st[bl] != 0 {
		bl++
	}
	if bl > b.nx {
		b.nx++
	}
	// Bound on the logical 2n+8 region, not the allocation: a solver
	// recycled from a larger run has longer arrays, but the id space the
	// algorithm is allowed to use must not depend on allocation history.
	if b.nx >= 2*b.n+8 {
		panic(fmt.Sprintf("matching: blossom id overflow (n=%d)", b.n))
	}
	b.lab[bl] = 0
	b.s[bl] = 0
	b.match[bl] = b.match[lca]
	b.flower[bl] = b.flower[bl][:0]
	b.flower[bl] = append(b.flower[bl], lca)
	for x := u; x != lca; {
		b.flower[bl] = append(b.flower[bl], x)
		y := b.st[b.match[x]]
		b.flower[bl] = append(b.flower[bl], y)
		b.qPush(y)
		x = b.st[b.pa[y]]
	}
	// Reverse flower[bl][1:].
	fl := b.flower[bl]
	for i, j := 1, len(fl)-1; i < j; i, j = i+1, j-1 {
		fl[i], fl[j] = fl[j], fl[i]
	}
	for x := v; x != lca; {
		b.flower[bl] = append(b.flower[bl], x)
		y := b.st[b.match[x]]
		b.flower[bl] = append(b.flower[bl], y)
		b.qPush(y)
		x = b.st[b.pa[y]]
	}
	b.setSt(bl, bl)
	for x := 1; x <= b.nx; x++ {
		b.g[bl][x].w = 0
		b.g[x][bl].w = 0
	}
	for x := 1; x <= b.n; x++ {
		b.flowerFrom[bl][x] = 0
	}
	for _, xs := range b.flower[bl] {
		for x := 1; x <= b.nx; x++ {
			if b.g[bl][x].w == 0 || b.eDelta(b.g[xs][x]) < b.eDelta(b.g[bl][x]) {
				b.g[bl][x] = b.g[xs][x]
				b.g[x][bl] = b.g[x][xs]
			}
		}
		for x := 1; x <= b.n; x++ {
			if b.flowerFrom[xs][x] != 0 {
				b.flowerFrom[bl][x] = xs
			}
		}
	}
	b.setSlack(bl)
}

func (b *blossomSolver) expandBlossom(bl int) {
	for _, t := range b.flower[bl] {
		b.setSt(t, t)
	}
	xr := b.flowerFrom[bl][b.g[bl][b.pa[bl]].u]
	pr := b.getPr(bl, xr)
	for i := 0; i < pr; i += 2 {
		xs := b.flower[bl][i]
		xns := b.flower[bl][i+1]
		b.pa[xs] = b.g[xns][xs].u
		b.s[xs] = 1
		b.s[xns] = 0
		b.slack[xs] = 0
		b.setSlack(xns)
		b.qPush(xns)
	}
	b.s[xr] = 1
	b.pa[xr] = b.pa[bl]
	for i := pr + 1; i < len(b.flower[bl]); i++ {
		xs := b.flower[bl][i]
		b.s[xs] = -1
		b.setSlack(xs)
	}
	b.st[bl] = 0
}

// onFoundEdge processes a tight edge discovered during the search. It
// returns true when an augmenting path was found and applied.
func (b *blossomSolver) onFoundEdge(e edge) bool {
	u := b.st[e.u]
	v := b.st[e.v]
	switch b.s[v] {
	case -1:
		b.pa[v] = e.u
		b.s[v] = 1
		nu := b.st[b.match[v]]
		b.slack[v] = 0
		b.slack[nu] = 0
		b.s[nu] = 0
		b.qPush(nu)
	case 0:
		lca := b.getLCA(u, v)
		if lca == 0 {
			b.augment(u, v)
			b.augment(v, u)
			return true
		}
		b.addBlossom(u, lca, v)
	}
	return false
}

// matchingRound grows alternating trees from all free (super)nodes and
// either augments the matching (returns true) or proves no augmenting path
// of positive gain exists (returns false).
func (b *blossomSolver) matchingRound() bool {
	for i := 1; i <= b.nx; i++ {
		b.s[i] = -1
		b.slack[i] = 0
	}
	b.queue = b.queue[:0]
	for x := 1; x <= b.nx; x++ {
		if b.st[x] == x && b.match[x] == 0 {
			b.pa[x] = 0
			b.s[x] = 0
			b.qPush(x)
		}
	}
	if len(b.queue) == 0 {
		return false
	}
	for {
		for len(b.queue) > 0 {
			u := b.queue[0]
			b.queue = b.queue[1:]
			if b.s[b.st[u]] == 1 {
				continue
			}
			for v := 1; v <= b.n; v++ {
				if b.g[u][v].w > 0 && b.st[u] != b.st[v] {
					if b.eDelta(b.g[u][v]) == 0 {
						if b.onFoundEdge(b.g[u][v]) {
							return true
						}
					} else {
						b.updateSlack(u, b.st[v])
					}
				}
			}
		}
		// Dual adjustment.
		d := infWeight
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl && b.s[bl] == 1 {
				if v := b.lab[bl] / 2; v < d {
					d = v
				}
			}
		}
		for x := 1; x <= b.nx; x++ {
			if b.st[x] == x && b.slack[x] != 0 {
				delta := b.eDelta(b.g[b.slack[x]][x])
				switch b.s[x] {
				case -1:
					if delta < d {
						d = delta
					}
				case 0:
					if v := delta / 2; v < d {
						d = v
					}
				}
			}
		}
		for u := 1; u <= b.n; u++ {
			switch b.s[b.st[u]] {
			case 0:
				if b.lab[u] <= d {
					return false // maximum weight reached
				}
				b.lab[u] -= d
			case 1:
				b.lab[u] += d
			}
		}
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl {
				switch b.s[bl] {
				case 0:
					b.lab[bl] += 2 * d
				case 1:
					b.lab[bl] -= 2 * d
				}
			}
		}
		b.queue = b.queue[:0]
		for x := 1; x <= b.nx; x++ {
			if b.st[x] == x && b.slack[x] != 0 && b.st[b.slack[x]] != x &&
				b.eDelta(b.g[b.slack[x]][x]) == 0 {
				if b.onFoundEdge(b.g[b.slack[x]][x]) {
					return true
				}
			}
		}
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl && b.s[bl] == 1 && b.lab[bl] == 0 {
				b.expandBlossom(bl)
			}
		}
	}
}

// Workspace holds the solver's working memory for reuse across calls.
// The zero value is ready to use; a nil *Workspace allocates fresh memory
// per call (the behaviour of the package-level functions). A Workspace is
// not safe for concurrent use — give each goroutine its own.
//
// Reuse is bit-identical: the solver's init resets every cell the
// algorithm can touch, so the matching computed through a recycled
// workspace is exactly the matching a fresh allocation computes. Only the
// allocation count changes — the solver's O(n²) edge matrix is the
// dominant per-call allocation of a placement decision, which is why the
// serving path (core.Arena) carries one of these per request context.
type Workspace struct {
	b      *blossomSolver
	iw     [][]int64   // integer-weight scratch for the complement transform
	iwBack []int64     // backing array of iw
	padded [][]float64 // odd-count phantom-vertex padding scratch
	padBck []float64   // backing array of padded
}

// solver returns an initialised solver for an n-vertex run, recycling the
// workspace's solver when it is large enough.
func (ws *Workspace) solver(n int, w [][]int64) *blossomSolver {
	if ws == nil {
		return newBlossomSolver(n, w)
	}
	if ws.b == nil || ws.b.capN < n {
		ws.b = newSolverAlloc(n)
	}
	ws.b.init(n, w)
	return ws.b
}

// intMatrix returns an n×n int64 scratch matrix (contents unspecified; the
// caller overwrites every off-diagonal cell, and the diagonal is never
// read by the solver).
func (ws *Workspace) intMatrix(n int) [][]int64 {
	if ws == nil {
		iw := make([][]int64, n)
		back := make([]int64, n*n)
		for i := range iw {
			iw[i] = back[i*n : (i+1)*n : (i+1)*n]
		}
		return iw
	}
	if cap(ws.iwBack) < n*n {
		ws.iwBack = make([]int64, n*n)
		ws.iw = nil
	}
	if cap(ws.iw) < n {
		ws.iw = make([][]int64, n)
	}
	iw := ws.iw[:n]
	back := ws.iwBack[:n*n]
	for i := range iw {
		iw[i] = back[i*n : (i+1)*n : (i+1)*n]
	}
	return iw
}

// floatMatrix returns an n×n float64 scratch matrix for the phantom-vertex
// padding (contents unspecified; the caller overwrites every cell).
func (ws *Workspace) floatMatrix(n int) [][]float64 {
	if ws == nil {
		m := make([][]float64, n)
		back := make([]float64, n*n)
		for i := range m {
			m[i] = back[i*n : (i+1)*n : (i+1)*n]
		}
		return m
	}
	if cap(ws.padBck) < n*n {
		ws.padBck = make([]float64, n*n)
		ws.padded = nil
	}
	if cap(ws.padded) < n {
		ws.padded = make([][]float64, n)
	}
	m := ws.padded[:n]
	back := ws.padBck[:n*n]
	for i := range m {
		m[i] = back[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

// maxWeightMatching computes a maximum-weight matching of the complete graph
// with positive integer weights w (0-indexed, symmetric). It returns the
// 0-indexed mate array with -1 for unmatched vertices.
func maxWeightMatching(ws *Workspace, n int, w [][]int64) []int {
	b := ws.solver(n, w)
	for b.matchingRound() {
	}
	mate := make([]int, n)
	for u := 1; u <= n; u++ {
		if b.match[u] != 0 {
			mate[u-1] = b.match[u] - 1
		} else {
			mate[u-1] = -1
		}
	}
	return mate
}

// MinWeightPerfectMatching returns a perfect matching of the complete graph
// on len(w) vertices minimising the total edge weight, together with that
// total. w must be square and symmetric with finite values; the diagonal is
// ignored. mate[i] is the partner of vertex i.
//
// This is the exact optimisation SYNPA performs every quantum over the
// pairwise predicted-degradation matrix.
func MinWeightPerfectMatching(w [][]float64) (mate []int, total float64, err error) {
	return (*Workspace)(nil).MinWeightPerfectMatching(w)
}

// MinWeightPerfectMatching is the workspace-reusing form of the
// package-level function: identical matchings, no per-call solver
// allocation once the workspace has warmed to the largest vertex count.
func (ws *Workspace) MinWeightPerfectMatching(w [][]float64) (mate []int, total float64, err error) {
	n := len(w)
	if n == 0 {
		return nil, 0, nil
	}
	if n%2 != 0 {
		return nil, 0, ErrOddVertices
	}
	var wMin, wMax float64 = math.Inf(1), math.Inf(-1)
	for i := range w {
		if len(w[i]) != n {
			return nil, 0, ErrNotSquare
		}
		for j := range w[i] {
			if i == j {
				continue
			}
			v := w[i][j]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, 0, ErrBadWeight
			}
			if math.Abs(v-w[j][i]) > 1e-9*(1+math.Abs(v)) {
				return nil, 0, ErrNotSymmetric
			}
			if v < wMin {
				wMin = v
			}
			if v > wMax {
				wMax = v
			}
		}
	}

	// Complement transform to strictly positive integer weights:
	// w' = round((wMax - w)·scale) + 1  ≥ 1.
	iw := ws.intMatrix(n)
	for i := range iw {
		for j := range iw[i] {
			if i == j {
				continue
			}
			iw[i][j] = int64(math.Round((wMax-w[i][j])*weightScale)) + 1
		}
	}

	mate = maxWeightMatching(ws, n, iw)
	for i, m := range mate {
		if m < 0 || mate[m] != i {
			return nil, 0, fmt.Errorf("matching: internal error, vertex %d left unmatched", i)
		}
		if i < m {
			total += w[i][m]
		}
	}
	return mate, total, nil
}

// MinWeightMatching generalises MinWeightPerfectMatching to odd vertex
// counts: when len(w) is odd the graph is padded with a single zero-weight
// phantom vertex, so exactly one real vertex ends up unmatched (mate[i] ==
// -1) at no cost. The returned total sums real edges only.
//
// This is what the dynamic (open-system) SYNPA policy needs: with an odd
// number of live applications, one of them must run solo on its core, and
// the phantom pairing selects which one optimally.
func MinWeightMatching(w [][]float64) (mate []int, total float64, err error) {
	return (*Workspace)(nil).MinWeightMatching(w)
}

// MinWeightMatching is the workspace-reusing form of the package-level
// function (see Workspace).
func (ws *Workspace) MinWeightMatching(w [][]float64) (mate []int, total float64, err error) {
	n := len(w)
	if n%2 == 0 {
		return ws.MinWeightPerfectMatching(w)
	}
	padded := ws.floatMatrix(n + 1)
	for i := 0; i < n; i++ {
		if len(w[i]) != n {
			return nil, 0, ErrNotSquare
		}
		copy(padded[i], w[i])
		// The phantom column stays 0: pairing with the phantom is free.
		padded[i][n] = 0
	}
	for j := range padded[n] {
		padded[n][j] = 0
	}
	mate, total, err = ws.MinWeightPerfectMatching(padded)
	if err != nil {
		return nil, 0, err
	}
	mate = mate[:n]
	for i, m := range mate {
		if m == n {
			mate[i] = -1
		}
	}
	return mate, total, nil
}

// Pairs converts a mate array into a list of (i, j) pairs with i < j.
func Pairs(mate []int) [][2]int {
	var out [][2]int
	for i, m := range mate {
		if m > i {
			out = append(out, [2]int{i, m})
		}
	}
	return out
}
