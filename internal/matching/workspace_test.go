package matching

import (
	"reflect"
	"testing"

	"synpa/internal/xrand"
)

// randMatrix builds a symmetric weight matrix with deterministic contents.
func randMatrix(rng *xrand.RNG, n int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64() * 10
			w[i][j], w[j][i] = v, v
		}
	}
	return w
}

// TestWorkspaceReuseBitIdentical drives one workspace through a size-varying
// sequence of matchings (grow, shrink, regrow) and checks every result
// against a fresh per-call solve: solver recycling must never change a
// matching, only the allocation count.
func TestWorkspaceReuseBitIdentical(t *testing.T) {
	rng := xrand.New(7)
	var ws Workspace
	for round := 0; round < 40; round++ {
		n := []int{2, 8, 5, 12, 3, 8, 16, 7}[round%8]
		w := randMatrix(rng, n)
		gotMate, gotTotal, gotErr := ws.MinWeightMatching(w)
		wantMate, wantTotal, wantErr := MinWeightMatching(w)
		if gotErr != nil || wantErr != nil {
			t.Fatalf("round %d (n=%d): errs %v / %v", round, n, gotErr, wantErr)
		}
		if !reflect.DeepEqual(gotMate, wantMate) || gotTotal != wantTotal {
			t.Fatalf("round %d (n=%d): workspace diverged\n got %v (%v)\nwant %v (%v)",
				round, n, gotMate, gotTotal, wantMate, wantTotal)
		}
	}
}

// TestWorkspacePerfectReuse covers the even-count entry point directly,
// including the error paths leaving the workspace reusable.
func TestWorkspacePerfectReuse(t *testing.T) {
	var ws Workspace
	if _, _, err := ws.MinWeightPerfectMatching(randMatrix(xrand.New(1), 5)); err != ErrOddVertices {
		t.Fatalf("odd count: err = %v, want ErrOddVertices", err)
	}
	rng := xrand.New(9)
	for _, n := range []int{6, 10, 4, 10} {
		w := randMatrix(rng, n)
		got, gt, err := ws.MinWeightPerfectMatching(w)
		if err != nil {
			t.Fatal(err)
		}
		want, wt, err := MinWeightPerfectMatching(w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) || gt != wt {
			t.Fatalf("n=%d: workspace perfect matching diverged", n)
		}
	}
}
