package matching

import "testing"

// MinWeightMatching pads odd graphs with a zero-weight phantom vertex so
// exactly one vertex runs solo — the odd-occupancy case of the dynamic
// SYNPA policy.

func sym(n int, f func(i, j int) float64) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w[i][j] = f(i, j)
			w[j][i] = w[i][j]
		}
	}
	return w
}

func TestMinWeightMatchingEvenDelegates(t *testing.T) {
	w := sym(4, func(i, j int) float64 { return float64(i + j) })
	mate, total, err := MinWeightMatching(w)
	if err != nil {
		t.Fatal(err)
	}
	wantMate, wantTotal, err := MinWeightPerfectMatching(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal {
		t.Fatalf("even total = %v, want %v", total, wantTotal)
	}
	for i := range mate {
		if mate[i] != wantMate[i] {
			t.Fatalf("even mate = %v, want %v", mate, wantMate)
		}
	}
}

func TestMinWeightMatchingSingle(t *testing.T) {
	mate, total, err := MinWeightMatching([][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(mate) != 1 || mate[0] != -1 || total != 0 {
		t.Fatalf("single vertex: mate=%v total=%v", mate, total)
	}
}

func TestMinWeightMatchingOdd(t *testing.T) {
	// Three vertices: edge (0,1) is cheap, vertex 2 is expensive with
	// everyone. Optimal: pair (0,1), leave 2 solo.
	w := sym(3, func(i, j int) float64 {
		if i == 0 && j == 1 {
			return 1
		}
		return 10
	})
	mate, total, err := MinWeightMatching(w)
	if err != nil {
		t.Fatal(err)
	}
	if mate[0] != 1 || mate[1] != 0 || mate[2] != -1 {
		t.Fatalf("mate = %v, want [1 0 -1]", mate)
	}
	if total != 1 {
		t.Fatalf("total = %v, want 1", total)
	}
}

func TestMinWeightMatchingOddExhaustive(t *testing.T) {
	// Five vertices: compare against brute force over every choice of the
	// solo vertex (remove it, perfect-match the remaining four).
	w := sym(5, func(i, j int) float64 { return float64((i*7+j*13)%11) + 1 })
	mate, total, err := MinWeightMatching(w)
	if err != nil {
		t.Fatal(err)
	}
	solo := -1
	for i, m := range mate {
		if m == -1 {
			if solo >= 0 {
				t.Fatalf("two solo vertices in %v", mate)
			}
			solo = i
			continue
		}
		if mate[m] != i {
			t.Fatalf("mate not symmetric: %v", mate)
		}
	}
	if solo < 0 {
		t.Fatalf("odd matching left no solo vertex: %v", mate)
	}
	best := 0.0
	first := true
	for skip := 0; skip < 5; skip++ {
		sub := make([][]float64, 0, 4)
		idx := make([]int, 0, 4)
		for i := 0; i < 5; i++ {
			if i != skip {
				idx = append(idx, i)
			}
		}
		for _, i := range idx {
			row := make([]float64, 0, 4)
			for _, j := range idx {
				row = append(row, w[i][j])
			}
			sub = append(sub, row)
		}
		_, subTotal, err := BruteForceMinWeightPerfect(sub)
		if err != nil {
			t.Fatal(err)
		}
		if first || subTotal < best {
			best, first = subTotal, false
		}
	}
	if total != best {
		t.Fatalf("odd matching total = %v, brute-force optimum = %v", total, best)
	}
}

func TestMinWeightMatchingBadInput(t *testing.T) {
	if _, _, err := MinWeightMatching([][]float64{{0, 1}, {1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}
