package matching

import "math"

// BruteForceMinWeightPerfect computes the exact minimum-weight perfect
// matching by dynamic programming over vertex subsets (O(2ⁿ·n)). It is the
// verification oracle for the Blossom implementation and the baseline of the
// matcher-overhead ablation (DESIGN.md §5.3): enumerating combinations is
// what the paper warns "grows quickly with the number of cores".
//
// It supports up to 30 vertices, far beyond any practical exhaustive use.
func BruteForceMinWeightPerfect(w [][]float64) (mate []int, total float64, err error) {
	n := len(w)
	if n == 0 {
		return nil, 0, nil
	}
	if n%2 != 0 {
		return nil, 0, ErrOddVertices
	}
	if n > 30 {
		return nil, 0, ErrNotSquare // guard: table would not fit in memory
	}
	for i := range w {
		if len(w[i]) != n {
			return nil, 0, ErrNotSquare
		}
	}

	full := 1 << n
	cost := make([]float64, full)
	choice := make([]int32, full) // packed (i<<16)|j of the pair taken last
	for s := 1; s < full; s++ {
		cost[s] = math.Inf(1)
		choice[s] = -1
	}
	cost[0] = 0
	for s := 0; s < full; s++ {
		if math.IsInf(cost[s], 1) {
			continue
		}
		// Match the lowest unset vertex: every perfect matching pairs it
		// with someone, so fixing it avoids double counting.
		i := 0
		for i < n && s&(1<<i) != 0 {
			i++
		}
		if i == n {
			continue
		}
		for j := i + 1; j < n; j++ {
			if s&(1<<j) != 0 {
				continue
			}
			ns := s | 1<<i | 1<<j
			if c := cost[s] + w[i][j]; c < cost[ns] {
				cost[ns] = c
				choice[ns] = int32(i)<<16 | int32(j)
			}
		}
	}

	mate = make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	for s := full - 1; s != 0; {
		packed := choice[s]
		if packed < 0 {
			return nil, 0, ErrBadWeight // unreachable for finite weights
		}
		i, j := int(packed>>16), int(packed&0xffff)
		mate[i], mate[j] = j, i
		s &^= 1<<i | 1<<j
	}
	return mate, cost[full-1], nil
}
