package matching

import (
	"math"
	"testing"
	"testing/quick"

	"synpa/internal/xrand"
)

// randomWeights builds a symmetric matrix of weights in [lo, hi).
func randomWeights(rng *xrand.RNG, n int, lo, hi float64) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := lo + rng.Float64()*(hi-lo)
			w[i][j] = v
			w[j][i] = v
		}
	}
	return w
}

func matchingWeight(w [][]float64, mate []int) float64 {
	total := 0.0
	for i, m := range mate {
		if m > i {
			total += w[i][m]
		}
	}
	return total
}

func assertPerfect(t *testing.T, mate []int) {
	t.Helper()
	for i, m := range mate {
		if m < 0 || m >= len(mate) || m == i {
			t.Fatalf("vertex %d matched to %d", i, m)
		}
		if mate[m] != i {
			t.Fatalf("matching not symmetric: mate[%d]=%d but mate[%d]=%d", i, m, m, mate[m])
		}
	}
}

func TestMinWeightTwoVertices(t *testing.T) {
	mate, total, err := MinWeightPerfectMatching([][]float64{{0, 3.5}, {3.5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if mate[0] != 1 || mate[1] != 0 {
		t.Fatalf("mate = %v", mate)
	}
	if math.Abs(total-3.5) > 1e-9 {
		t.Fatalf("total = %v, want 3.5", total)
	}
}

func TestMinWeightFourVerticesKnown(t *testing.T) {
	// Pairing (0,1)+(2,3) costs 1+1=2; (0,2)+(1,3) costs 10+10=20;
	// (0,3)+(1,2) costs 10+10=20.
	w := [][]float64{
		{0, 1, 10, 10},
		{1, 0, 10, 10},
		{10, 10, 0, 1},
		{10, 10, 1, 0},
	}
	mate, total, err := MinWeightPerfectMatching(w)
	if err != nil {
		t.Fatal(err)
	}
	assertPerfect(t, mate)
	if mate[0] != 1 || mate[2] != 3 {
		t.Fatalf("mate = %v, want pairs (0,1),(2,3)", mate)
	}
	if math.Abs(total-2) > 1e-9 {
		t.Fatalf("total = %v, want 2", total)
	}
}

func TestMinWeightForcedBlossomStructure(t *testing.T) {
	// A weight pattern where a greedy pairing is suboptimal and the
	// search must traverse odd cycles: 6 vertices with a "triangle trap".
	w := [][]float64{
		{0, 1, 9, 9, 9, 2},
		{1, 0, 1, 9, 9, 9},
		{9, 1, 0, 1, 9, 9},
		{9, 9, 1, 0, 1, 9},
		{9, 9, 9, 1, 0, 1},
		{2, 9, 9, 9, 1, 0},
	}
	mate, total, err := MinWeightPerfectMatching(w)
	if err != nil {
		t.Fatal(err)
	}
	assertPerfect(t, mate)
	_, bfTotal, err := BruteForceMinWeightPerfect(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-bfTotal) > 1e-6 {
		t.Fatalf("blossom total %v != brute force %v", total, bfTotal)
	}
}

func TestMinWeightMatchesBruteForceRandom(t *testing.T) {
	rng := xrand.New(4242)
	for trial := 0; trial < 200; trial++ {
		n := 2 * (1 + rng.Intn(6)) // 2..12 vertices
		w := randomWeights(rng, n, 1, 5)
		mate, total, err := MinWeightPerfectMatching(w)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertPerfect(t, mate)
		if got := matchingWeight(w, mate); math.Abs(got-total) > 1e-6 {
			t.Fatalf("trial %d: reported total %v != recomputed %v", trial, total, got)
		}
		_, bfTotal, err := BruteForceMinWeightPerfect(w)
		if err != nil {
			t.Fatal(err)
		}
		if total > bfTotal+1e-5 {
			t.Fatalf("trial %d (n=%d): blossom %v worse than optimal %v", trial, n, total, bfTotal)
		}
		if total < bfTotal-1e-5 {
			t.Fatalf("trial %d (n=%d): blossom %v below optimal %v (impossible)", trial, n, total, bfTotal)
		}
	}
}

func TestMinWeightIntegerWeightsExact(t *testing.T) {
	// Integer weights exercise exact tie handling in the dual updates.
	rng := xrand.New(777)
	for trial := 0; trial < 100; trial++ {
		n := 2 * (1 + rng.Intn(5))
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := float64(1 + rng.Intn(4)) // many ties
				w[i][j], w[j][i] = v, v
			}
		}
		mate, total, err := MinWeightPerfectMatching(w)
		if err != nil {
			t.Fatal(err)
		}
		assertPerfect(t, mate)
		_, bfTotal, _ := BruteForceMinWeightPerfect(w)
		if math.Abs(total-bfTotal) > 1e-6 {
			t.Fatalf("trial %d (n=%d): %v vs optimal %v", trial, n, total, bfTotal)
		}
	}
}

func TestMinWeightSlowdownLikeWeights(t *testing.T) {
	// Weights in the range SYNPA actually produces: pair slowdown sums
	// around 2.0–4.5 with small differences.
	rng := xrand.New(31337)
	for trial := 0; trial < 100; trial++ {
		n := 8 // the paper's 8-application workloads
		w := randomWeights(rng, n, 2.0, 4.5)
		mate, total, err := MinWeightPerfectMatching(w)
		if err != nil {
			t.Fatal(err)
		}
		assertPerfect(t, mate)
		_, bfTotal, _ := BruteForceMinWeightPerfect(w)
		if math.Abs(total-bfTotal) > 1e-4 {
			t.Fatalf("trial %d: %v vs optimal %v", trial, total, bfTotal)
		}
	}
}

func TestMinWeightErrors(t *testing.T) {
	if _, _, err := MinWeightPerfectMatching(make([][]float64, 3)); err != ErrOddVertices {
		t.Fatalf("odd: %v", err)
	}
	if _, _, err := MinWeightPerfectMatching([][]float64{{0, 1}, {1}}); err != ErrNotSquare {
		t.Fatalf("not square: %v", err)
	}
	if _, _, err := MinWeightPerfectMatching([][]float64{{0, 1}, {2, 0}}); err != ErrNotSymmetric {
		t.Fatalf("asymmetric: %v", err)
	}
	nan := math.NaN()
	if _, _, err := MinWeightPerfectMatching([][]float64{{0, nan}, {nan, 0}}); err != ErrBadWeight {
		t.Fatalf("nan: %v", err)
	}
	mate, total, err := MinWeightPerfectMatching(nil)
	if err != nil || mate != nil || total != 0 {
		t.Fatalf("empty: %v %v %v", mate, total, err)
	}
}

func TestBruteForceErrors(t *testing.T) {
	if _, _, err := BruteForceMinWeightPerfect(make([][]float64, 3)); err != ErrOddVertices {
		t.Fatalf("odd: %v", err)
	}
	if _, _, err := BruteForceMinWeightPerfect([][]float64{{0, 1}, {1}}); err != ErrNotSquare {
		t.Fatalf("ragged: %v", err)
	}
	if m, tot, err := BruteForceMinWeightPerfect(nil); err != nil || m != nil || tot != 0 {
		t.Fatal("empty should succeed with nil")
	}
}

func TestPairs(t *testing.T) {
	pairs := Pairs([]int{1, 0, 3, 2})
	if len(pairs) != 2 || pairs[0] != [2]int{0, 1} || pairs[1] != [2]int{2, 3} {
		t.Fatalf("Pairs = %v", pairs)
	}
	if p := Pairs(nil); p != nil {
		t.Fatalf("Pairs(nil) = %v", p)
	}
}

func TestMatchingPropertyQuick(t *testing.T) {
	// Any random symmetric instance: blossom result is perfect and its
	// weight equals the subset-DP optimum.
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 * (1 + rng.Intn(5))
		w := randomWeights(rng, n, 0.5, 9.5)
		mate, total, err := MinWeightPerfectMatching(w)
		if err != nil {
			return false
		}
		for i, m := range mate {
			if m < 0 || mate[m] != i || m == i {
				return false
			}
		}
		_, bfTotal, err := BruteForceMinWeightPerfect(w)
		if err != nil {
			return false
		}
		return math.Abs(total-bfTotal) < 1e-5
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeInstancePerfectAndSane(t *testing.T) {
	// 56 vertices ≈ the full 28-core SMT2 ThunderX2 with every hardware
	// thread busy. Optimality is not brute-force checkable at this size;
	// verify perfection and that blossom beats a greedy matcher.
	rng := xrand.New(2024)
	n := 56
	w := randomWeights(rng, n, 1, 10)
	mate, total, err := MinWeightPerfectMatching(w)
	if err != nil {
		t.Fatal(err)
	}
	assertPerfect(t, mate)

	// Greedy: repeatedly take the globally lightest available edge.
	used := make([]bool, n)
	greedy := 0.0
	for k := 0; k < n/2; k++ {
		best, bi, bj := math.Inf(1), -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !used[j] && w[i][j] < best {
					best, bi, bj = w[i][j], i, j
				}
			}
		}
		used[bi], used[bj] = true, true
		greedy += best
	}
	if total > greedy+1e-9 {
		t.Fatalf("blossom total %v worse than greedy %v", total, greedy)
	}
}

func BenchmarkBlossom8(b *testing.B)  { benchBlossom(b, 8) }
func BenchmarkBlossom16(b *testing.B) { benchBlossom(b, 16) }
func BenchmarkBlossom56(b *testing.B) { benchBlossom(b, 56) }

func benchBlossom(b *testing.B, n int) {
	rng := xrand.New(1)
	w := randomWeights(rng, n, 1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinWeightPerfectMatching(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForce8(b *testing.B) {
	rng := xrand.New(1)
	w := randomWeights(rng, 8, 1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BruteForceMinWeightPerfect(w); err != nil {
			b.Fatal(err)
		}
	}
}
