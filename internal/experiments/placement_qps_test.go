package experiments

import (
	"reflect"
	"strconv"
	"sync"
	"testing"

	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/predcache"
)

// qpsSuite is the scaled configuration the placement-qps tests run at
// (the golden-harness scale, so the recording run stays fast).
func qpsSuite() *Suite {
	cfg := DefaultConfig()
	cfg.Machine.QuantumCycles = 8000
	cfg.RefQuanta = 30
	cfg.Reps = 1
	return NewSuite(cfg)
}

// TestRecordQueriesShape checks the recorded query log: model-driven
// decisions only (samples present, two or more live apps), deep-copied
// out of the runner's reused slices, and evenly downsampled under a cap.
func TestRecordQueriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("records a dynamic run; skipped in -short")
	}
	s := qpsSuite()
	model, _, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	all, err := s.recordQueries(model, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range all {
		if q.Samples == nil || q.NumApps < 2 {
			t.Fatalf("query %d is not model-driven: NumApps=%d Samples=%v", i, q.NumApps, q.Samples != nil)
		}
		if len(q.Samples) != q.NumApps || len(q.AppIDs) != q.NumApps {
			t.Fatalf("query %d slices not parallel to live set", i)
		}
	}
	if len(all) < 8 {
		t.Fatalf("only %d model-driven queries recorded from dyn2", len(all))
	}
	capped, err := s.recordQueries(model, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 8 {
		t.Fatalf("cap of 8 returned %d queries", len(capped))
	}
	if !reflect.DeepEqual(capped[0], all[0]) {
		t.Fatal("downsample does not start at the first query")
	}
}

// TestReplayBitIdenticalAcrossCacheModes is the serving-path differential:
// replaying the recorded query log through PlaceR must produce the same
// placement sequence whether the cache is disabled, private or shared,
// serial or eight goroutines racing one shared cache. Run under -race in
// CI this doubles as the race gate for the replay engine itself.
func TestReplayBitIdenticalAcrossCacheModes(t *testing.T) {
	if testing.Short() {
		t.Skip("records a dynamic run; skipped in -short")
	}
	s := qpsSuite()
	model, _, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	queries, err := s.recordQueries(model, 64)
	if err != nil {
		t.Fatal(err)
	}

	serial := func(opt core.PolicyOptions, shared bool) []machine.Placement {
		p := core.MustPolicy(model, opt)
		if shared {
			p.SetSharedCache(predcache.NewShared(predcache.Options{}, 4))
		}
		a := p.NewArena()
		out := make([]machine.Placement, len(queries))
		for i := range queries {
			st := queries[i]
			out[i] = p.PlaceR(a, &st)
		}
		return out
	}
	want := serial(core.PolicyOptions{}, false)

	disabled := core.PolicyOptions{}
	disabled.Cache.Disabled = true
	for name, got := range map[string][]machine.Placement{
		"nocache": serial(disabled, false),
		"shared":  serial(core.PolicyOptions{}, true),
	} {
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s replay diverged from private-cache replay", name)
		}
	}

	// Concurrent: 8 goroutines, one shared cache, per-goroutine arenas;
	// every goroutine replays the full log and must reproduce `want`.
	p := core.MustPolicy(model, core.PolicyOptions{})
	p.SetSharedCache(predcache.NewShared(predcache.Options{}, 4))
	var wg sync.WaitGroup
	results := make([][]machine.Placement, 8)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := p.NewArena()
			out := make([]machine.Placement, len(queries))
			for i := range queries {
				st := queries[i]
				out[i] = p.PlaceR(a, &st)
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Errorf("goroutine %d diverged from the serial replay", g)
		}
	}
}

// TestPlacementQPSSmoke runs the bench end to end at a tiny size and
// checks the table shape: one row per (mode, goroutine count) cell with
// parseable throughput figures.
func TestPlacementQPSSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the bench; skipped in -short")
	}
	s := qpsSuite()
	tab, err := s.PlacementQPSOpt(PlacementQPSOptions{MaxGoroutines: 2, Passes: 2, MaxQueries: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3*2 {
		t.Fatalf("%d rows, want 6 (3 modes x 2 goroutine counts)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
		qps, err := strconv.ParseFloat(row[3], 64)
		if err != nil || qps <= 0 {
			t.Fatalf("bad QPS cell %q in %v", row[3], row)
		}
	}
}
