// SMT-level experiments: the scenarios the ROADMAP's SMT4 item opens up.
// The ThunderX2 hardware supports SMT4 but the paper runs it as SMT2
// (§V-A); these tables run the same applications on an equal
// hardware-thread budget configured both ways — 4 cores × SMT2 against
// 2 cores × SMT4 — under Linux, Random and SYNPA. At SMT4 the SYNPA policy
// solves the follow-up papers' thread-grouping problem (internal/grouping)
// instead of the pairwise blossom matching.
package experiments

import (
	"fmt"
	"time"

	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/grouping"
	"synpa/internal/machine"
	"synpa/internal/metrics"
	"synpa/internal/pool"
	"synpa/internal/sched"
	"synpa/internal/xrand"
)

// smt4Apps is the 8-application mixed workload of the SMT-level comparison
// (the dynamic scenarios' mixed pool: backend-, frontend- and
// phase-flipping behaviour).
var smt4Apps = []string{"mcf", "leela_r", "lbm_r", "gobmk", "cactuBSSN_r", "povray_r", "milc", "perlbench"}

// SMT4Table runs the 8-application mixed workload on equal hardware-thread
// budgets at SMT2 (4 cores × 2 threads) and SMT4 (2 cores × 4 threads)
// under the Linux, Random and SYNPA policies, reporting the closed-system
// §VI metrics. Deterministic: seeds derive from the suite seed and the
// (configuration, policy) labels.
func (s *Suite) SMT4Table() (*Table, error) {
	model, _, err := s.Model()
	if err != nil {
		return nil, err
	}
	models := make([]*apps.Model, len(smt4Apps))
	targets := make([]uint64, len(smt4Apps))
	isoIPC := make([]float64, len(smt4Apps))
	for i, name := range smt4Apps {
		m, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		models[i] = m
		if targets[i], err = s.targets.Target(m); err != nil {
			return nil, err
		}
		if isoIPC[i], err = s.targets.IsolatedIPC(m); err != nil {
			return nil, err
		}
	}

	configs := []struct {
		label        string
		cores, level int
	}{
		{"4xSMT2", 4, 2},
		{"2xSMT4", 2, 4},
	}
	policies := []PolicyFactory{
		LinuxFactory(),
		{Label: "Random", New: func() machine.Policy { return sched.NewRandom(s.cfg.Seed) }},
		SYNPAFactory(model, core.PolicyOptions{}),
	}

	type job struct {
		cfgIdx, polIdx int
	}
	type outcome struct {
		tt       uint64
		antt     float64
		stp      float64
		fairness float64
		ipcGeo   float64
	}
	var jobs []job
	for ci := range configs {
		for pi := range policies {
			jobs = append(jobs, job{ci, pi})
		}
	}
	outs := make([]outcome, len(jobs))
	if err := pool.Run(len(jobs), s.cfg.Parallel, func(i int) error {
		j := jobs[i]
		cc := configs[j.cfgIdx]
		cfg := s.cfg.Machine
		cfg.Cores = cc.cores
		cfg.Core.SMTLevel = cc.level
		if s.cfg.Parallel {
			cfg.Parallel = false
		}
		m, err := machine.New(cfg)
		if err != nil {
			return err
		}
		factory := policies[j.polIdx]
		res, err := m.Run(models, targets, factory.New(), machine.RunnerOptions{
			Seed:      s.cfg.Seed + hashString(cc.label+"/"+factory.Label),
			MaxQuanta: s.cfg.MaxQuanta,
		})
		if err != nil {
			return err
		}
		if !res.AllCompleted {
			return fmt.Errorf("experiments: smt4 %s under %s did not complete in %d quanta",
				cc.label, factory.Label, s.cfg.MaxQuanta)
		}
		tt, err := metrics.TurnaroundCycles(res)
		if err != nil {
			return err
		}
		speedups, err := metrics.IndividualSpeedups(res, isoIPC)
		if err != nil {
			return err
		}
		fairness, err := metrics.Fairness(speedups)
		if err != nil {
			return err
		}
		antt, err := metrics.ANTT(speedups)
		if err != nil {
			return err
		}
		ipcGeo, err := metrics.GeomeanIPC(res)
		if err != nil {
			return err
		}
		outs[i] = outcome{tt: tt, antt: antt, stp: metrics.STP(speedups), fairness: fairness, ipcGeo: ipcGeo}
		return nil
	}); err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "SMT level: 8 apps on equal hardware threads, 4xSMT2 vs 2xSMT4",
		Header: []string{"Config", "Policy", "TT (Kcyc)", "ANTT", "STP", "Fairness", "IPC geomean"},
		Notes: []string{
			"equal hardware-thread budget (8); SMT4 shares each core's dispatch/queues 4 ways",
			"at SMT4 SYNPA solves the grouping problem (internal/grouping) instead of pairwise matching",
		},
	}
	for i, j := range jobs {
		o := outs[i]
		t.AddRow(configs[j.cfgIdx].label, policies[j.polIdx].Label,
			fmt.Sprintf("%.1f", float64(o.tt)/1000), f3(o.antt), f3(o.stp), f3(o.fairness), f4(o.ipcGeo))
	}
	return t, nil
}

// OverheadGrouping times the grouping solvers against each other — the
// SMT4 analogue of OverheadMatching's blossom-vs-enumeration comparison.
// The exact subset DP is the quality oracle; the greedy + local-search
// solver is the scalable production path, and the table reports how close
// its partitions stay to the optimum (cost ratio) as the live set grows.
func (s *Suite) OverheadGrouping() (*Table, error) {
	t := &Table{
		Title:  "Overhead (grouping, SMT4): exact subset-DP vs greedy+local-search",
		Header: []string{"Apps", "Cores", "Exact ns/op", "Greedy ns/op", "Exact/Greedy", "Cost ratio"},
		Notes: []string{
			"cost ratio = greedy partition cost / exact optimum (1.000 = optimal)",
			"exact DP is O(n*2^n*C(n,3)) at level 4; greedy stays polynomial",
		},
	}
	rng := xrand.New(7)
	for _, n := range []int{8, 12, 16} {
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := 2 + rng.Float64()*2
				w[i][j], w[j][i] = v, v
			}
		}
		cores := n / 4 // scarce cores: groups beyond pairs are forced
		timeIt := func(iters int, f func() (*grouping.Result, error)) (float64, *grouping.Result, error) {
			var res *grouping.Result
			var err error
			start := time.Now()
			for it := 0; it < iters; it++ {
				if res, err = f(); err != nil {
					return 0, nil, err
				}
			}
			return float64(time.Since(start).Nanoseconds()) / float64(iters), res, nil
		}
		exNs, exRes, err := timeIt(5, func() (*grouping.Result, error) {
			return grouping.Partition(w, cores, 4, grouping.Options{Solver: grouping.SolverExact})
		})
		if err != nil {
			return nil, err
		}
		grNs, grRes, err := timeIt(50, func() (*grouping.Result, error) {
			return grouping.Partition(w, cores, 4, grouping.Options{Solver: grouping.SolverGreedy})
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(cores),
			fmt.Sprintf("%.0f", exNs), fmt.Sprintf("%.0f", grNs),
			fmt.Sprintf("%.1fx", exNs/grNs), f3(grRes.Cost/exRes.Cost))
	}
	return t, nil
}
