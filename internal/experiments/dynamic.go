// Open-system (dynamic) scenario experiments: the dyn0–dyn4 set exercises
// arrivals, departures, partial and odd occupancy, queueing under overload,
// and drain — everything the paper's closed 2k-apps-on-k-cores methodology
// cannot express. They are the evaluation harness for the follow-up
// question (Navarro et al., 2025): how do the policies behave when the
// machine is not permanently full?
package experiments

import (
	"fmt"

	"synpa/internal/admission"
	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/pool"
	"synpa/internal/sched"
	"synpa/internal/workload"
)

// DynamicScenarios builds the dyn0–dyn4 open-system traces. Arrival times
// are expressed in machine quanta (quantumCycles per step) so the set
// scales with the configured quantum length.
//
//	dyn0  5 apps on 4 cores: odd occupancy, one mid-run arrival, one
//	      early departure — the smallest scenario with every dynamic
//	      ingredient (the acceptance scenario).
//	dyn1  light Poisson arrivals: the machine runs mostly half-empty.
//	dyn2  heavy Poisson arrivals: offered load exceeds the hardware
//	      threads, so admissions queue.
//	dyn3  burst then refill: a full batch, a drain phase, a second wave.
//	dyn4  staircase ramp-up and drain with growing job sizes.
func DynamicScenarios(seed uint64, quantumCycles uint64) []workload.Trace {
	q := func(n float64) uint64 { return uint64(n * float64(quantumCycles)) }
	mixed := []string{"mcf", "leela_r", "lbm_r", "gobmk", "cactuBSSN_r", "povray_r", "milc", "perlbench"}

	dyn0 := workload.Trace{Name: "dyn0", Entries: []workload.TraceEntry{
		{App: "mcf", ArriveAt: 0, Work: 1},
		{App: "leela_r", ArriveAt: 0, Work: 1},
		{App: "lbm_r", ArriveAt: 0, Work: 1},
		{App: "gobmk", ArriveAt: 0, Work: 0.3},     // departs early: occupancy drops mid-run
		{App: "povray_r", ArriveAt: q(3), Work: 1}, // arrives mid-run: 5 live apps, odd
	}}
	dyn1 := workload.PoissonTrace("dyn1", seed+1, mixed, 8, 2*float64(quantumCycles), 0.5)
	dyn2 := workload.PoissonTrace("dyn2", seed+2, mixed, 12, 0.5*float64(quantumCycles), 0.5)
	dyn3 := workload.Trace{Name: "dyn3"}
	for i := 0; i < 8; i++ {
		dyn3.Entries = append(dyn3.Entries,
			workload.TraceEntry{App: mixed[i%len(mixed)], ArriveAt: 0, Work: 0.4})
	}
	for i := 0; i < 4; i++ {
		dyn3.Entries = append(dyn3.Entries,
			workload.TraceEntry{App: mixed[(i+2)%len(mixed)], ArriveAt: q(10), Work: 0.4})
	}
	dyn4 := workload.Trace{Name: "dyn4"}
	for i := 0; i < 8; i++ {
		dyn4.Entries = append(dyn4.Entries, workload.TraceEntry{
			App:      mixed[i%len(mixed)],
			ArriveAt: q(0.5 * float64(i)),
			Work:     0.3 + 0.1*float64(i%4),
		})
	}
	return []workload.Trace{dyn0, dyn1, dyn2, dyn3, dyn4}
}

// dynSummary aggregates one open-system run for the table.
type dynSummary struct {
	apps, completed, deferred int
	meanRespK                 float64 // mean response time, kilocycles
	antt                      float64 // mean normalized response (completed apps)
	stp                       float64 // completed isolated-app work per cycle
	wstp                      float64 // weight-scaled STP (= stp on uniform weights)
	meanLive                  float64
	occupancy                 float64
	allCompleted              bool
	perClass                  []workload.ClassStats
}

// runDynamic executes one trace under one policy and summarises it. The
// trace-to-work conversion and the metric definitions live in the workload
// package (DynamicWork / SummarizeDynamic), shared with the public
// System.RunDynamic so both report identical numbers for the same trace.
// The admission discipline comes from the suite configuration (FIFO by
// default).
func (s *Suite) runDynamic(tr workload.Trace, factory PolicyFactory) (*dynSummary, error) {
	adm, err := admission.ByName(s.cfg.Admission)
	if err != nil {
		return nil, err
	}
	return s.runDynamicAdm(tr, factory, adm)
}

// runDynamicAdm executes one trace under one placement policy and one
// admission discipline.
func (s *Suite) runDynamicAdm(tr workload.Trace, factory PolicyFactory, adm admission.Policy) (*dynSummary, error) {
	work, isoCycles, err := s.targets.DynamicWork(tr)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg.Machine
	if s.cfg.Parallel {
		cfg.Parallel = false
	}
	mach, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := mach.RunDynamic(work, factory.New(), machine.DynamicOptions{
		Seed:      s.cfg.Seed + hashString(tr.Name),
		MaxCycles: uint64(s.cfg.MaxQuanta) * cfg.QuantumCycles,
		Admission: adm,
		Obs:       s.cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	stats := workload.SummarizeDynamic(res, isoCycles)
	return &dynSummary{
		apps:         len(res.Apps),
		completed:    stats.Completed,
		deferred:     res.Deferred,
		meanRespK:    stats.MeanResponseCycles / 1000,
		antt:         stats.ANTT,
		stp:          stats.STP,
		wstp:         stats.WeightedSTP,
		meanLive:     res.MeanLiveApps,
		occupancy:    res.MeanLiveApps / float64(cfg.HWThreads()),
		allCompleted: res.AllCompleted,
		perClass:     stats.PerClass,
	}, nil
}

// DynamicTable runs the dyn0–dyn4 scenarios under the Linux, Random and
// SYNPA policies and reports the open-system metrics: mean response time,
// ANTT (mean normalized response), STP (completed isolated-app work per
// cycle) and machine occupancy.
func (s *Suite) DynamicTable() (*Table, error) {
	model, _, err := s.Model()
	if err != nil {
		return nil, err
	}
	scenarios := DynamicScenarios(s.cfg.Seed, s.cfg.Machine.QuantumCycles)
	policies := []PolicyFactory{
		LinuxFactory(),
		{Label: "Random", New: func() machine.Policy { return sched.NewRandom(s.cfg.Seed) }},
		SYNPAFactory(model, core.PolicyOptions{}),
	}

	type job struct {
		tr  workload.Trace
		pol PolicyFactory
	}
	var jobs []job
	for _, tr := range scenarios {
		for _, pol := range policies {
			jobs = append(jobs, job{tr, pol})
		}
	}
	sums := make([]*dynSummary, len(jobs))
	if err := pool.Run(len(jobs), s.cfg.Parallel, func(i int) error {
		var err error
		sums[i], err = s.runDynamic(jobs[i].tr, jobs[i].pol)
		return err
	}); err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Dynamic scenarios: open-system response times (dyn0-dyn4)",
		Header: []string{"Scenario", "Policy", "Apps", "Done", "Deferred",
			"MeanResp(Kcyc)", "ANTT", "STP", "Occupancy"},
		Notes: []string{
			"ANTT = mean response / isolated time over completed apps (lower is better)",
			"STP = completed isolated-app work per cycle (higher is better)",
			"Occupancy = time-averaged live apps / hardware threads",
		},
	}
	for i, j := range jobs {
		sum := sums[i]
		t.AddRow(j.tr.Name, j.pol.Label,
			fmt.Sprint(sum.apps), fmt.Sprint(sum.completed), fmt.Sprint(sum.deferred),
			fmt.Sprintf("%.1f", sum.meanRespK), f3(sum.antt), f3(sum.stp), pct(sum.occupancy))
	}
	return t, nil
}
