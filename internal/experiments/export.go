package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// jsonTable is the serialised form of a Table: self-describing rows keyed by
// header, so downstream tooling (plotting scripts, regression dashboards)
// does not depend on column order.
type jsonTable struct {
	Title  string              `json:"title"`
	Header []string            `json:"header"`
	Rows   []map[string]string `json:"rows"`
	Notes  []string            `json:"notes,omitempty"`
}

// WriteJSON serialises the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	jt := jsonTable{Title: t.Title, Header: t.Header, Notes: t.Notes}
	for _, row := range t.Rows {
		m := make(map[string]string, len(t.Header))
		for i, h := range t.Header {
			if i < len(row) {
				m[h] = row[i]
			}
		}
		jt.Rows = append(jt.Rows, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// WriteCSV serialises the table as CSV: one header record followed by the
// data rows. The title and notes are emitted as comment records ("# ...")
// before the header.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		// Pad short rows so every record has the header's width.
		rec := make([]string, len(t.Header))
		copy(rec, row)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
