package experiments

import (
	"testing"

	"synpa/internal/machine"
	"synpa/internal/sched"
)

func TestDynamicScenariosWellFormed(t *testing.T) {
	scenarios := DynamicScenarios(0x51A9A, 8_000)
	if len(scenarios) != 5 {
		t.Fatalf("%d scenarios, want 5 (dyn0-dyn4)", len(scenarios))
	}
	names := map[string]bool{}
	for _, tr := range scenarios {
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
		names[tr.Name] = true
	}
	for _, want := range []string{"dyn0", "dyn1", "dyn2", "dyn3", "dyn4"} {
		if !names[want] {
			t.Fatalf("missing scenario %s (have %v)", want, names)
		}
	}
	// dyn0 is the acceptance scenario: 5 apps, a mid-run arrival and an
	// early (short-work) departure.
	dyn0 := scenarios[0]
	if len(dyn0.Entries) != 5 {
		t.Fatalf("dyn0 has %d apps, want 5", len(dyn0.Entries))
	}
	midRun, shortWork := false, false
	for _, e := range dyn0.Entries {
		if e.ArriveAt > 0 {
			midRun = true
		}
		if e.Work > 0 && e.Work < 1 {
			shortWork = true
		}
	}
	if !midRun || !shortWork {
		t.Fatalf("dyn0 lacks a mid-run arrival or early departure: %+v", dyn0.Entries)
	}
}

func TestRunDynamicScenarioBaselines(t *testing.T) {
	// dyn0 under Linux and Random (no trained model needed): completes,
	// with sane open-system metrics.
	s := NewSuite(fastConfig())
	dyn0 := DynamicScenarios(s.cfg.Seed, s.cfg.Machine.QuantumCycles)[0]
	for _, pol := range []PolicyFactory{
		LinuxFactory(),
		{Label: "Random", New: func() machine.Policy { return sched.NewRandom(1) }},
	} {
		sum, err := s.runDynamic(dyn0, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Label, err)
		}
		if !sum.allCompleted || sum.completed != 5 {
			t.Fatalf("%s: completed %d/5 (allCompleted=%v)", pol.Label, sum.completed, sum.allCompleted)
		}
		if sum.antt < 1 {
			t.Fatalf("%s: ANTT = %v, must be >= 1", pol.Label, sum.antt)
		}
		if sum.stp <= 0 || sum.stp > 8 {
			t.Fatalf("%s: STP = %v", pol.Label, sum.stp)
		}
		if sum.occupancy <= 0 || sum.occupancy > 1 {
			t.Fatalf("%s: occupancy = %v", pol.Label, sum.occupancy)
		}
	}
}

// TestFactoryPlacementsNeverAliasPrev pins the ownership contract for the
// suite's policy factories: the QuantumState (and its Prev) belong to the
// runner, so a returned placement must never share backing storage with
// Prev — the old experiments-local Linux duplicate returned st.Prev
// unclothed and any machine-side mutation would have corrupted policy
// history.
func TestFactoryPlacementsNeverAliasPrev(t *testing.T) {
	for _, factory := range []PolicyFactory{LinuxFactory()} {
		pol := factory.New()
		prev := machine.Placement{0, 1, 2, 3, 0, 1, 2, 3}
		orig := prev.Clone()
		st := &machine.QuantumState{Quantum: 1, NumApps: 8, NumCores: 4, Prev: prev}
		place := pol.Place(st)
		for i := range place {
			place[i] = 77
		}
		for i := range prev {
			if prev[i] != orig[i] {
				t.Fatalf("%s: returned placement aliases st.Prev (corrupted to %v)", factory.Label, prev)
			}
		}
	}
}
