package experiments

import (
	"reflect"
	"testing"

	"synpa/internal/admission"
	"synpa/internal/core"
	"synpa/internal/workload"
)

// dynPrioSuite is the scaled configuration the acceptance numbers are
// recorded at (the same scale the golden-regression harness uses).
func dynPrioSuite() *Suite {
	cfg := DefaultConfig()
	cfg.Machine.QuantumCycles = 8000
	cfg.RefQuanta = 30
	cfg.Reps = 1
	return NewSuite(cfg)
}

func TestDynPrioScenarioShapes(t *testing.T) {
	scenarios := DynPrioScenarios(1, 8000)
	if len(scenarios) != 3 {
		t.Fatalf("%d scenarios, want 3", len(scenarios))
	}
	for _, tr := range scenarios {
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
		classes := map[int]int{}
		for _, e := range tr.Entries {
			classes[e.Priority]++
			if e.Priority > 0 && e.Weight <= 1 {
				t.Fatalf("%s: class %d entry has weight %v, want > 1", tr.Name, e.Priority, e.Weight)
			}
		}
		// Mixed-priority means at least two classes actually drawn.
		if len(classes) < 2 {
			t.Fatalf("%s: only %d priority classes drawn: %v", tr.Name, len(classes), classes)
		}
	}
}

// TestDynPrioAcceptance pins the PR's acceptance criterion on the SYNPA
// placement rows at the high-load level: strict-priority and backfilling
// each beat FIFO on high-class ANTT, while weighted STP stays within 5% of
// FIFO's. The run is fully deterministic, so these are exact regression
// anchors, not flaky statistical claims.
func TestDynPrioAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the mixed-priority scenario set")
	}
	s := dynPrioSuite()
	model, _, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	synpa := SYNPAFactory(model, core.PolicyOptions{})
	scenarios := DynPrioScenarios(s.cfg.Seed, s.cfg.Machine.QuantumCycles)
	hi := scenarios[len(scenarios)-1] // prio-hi
	if hi.Name != "prio-hi" {
		t.Fatalf("last scenario is %s, want prio-hi", hi.Name)
	}

	run := func(name string) *dynSummary {
		adm, err := admission.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := s.runDynamicAdm(hi, synpa, adm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return sum
	}
	fifo := run("fifo")
	if fifo.deferred == 0 {
		t.Fatal("prio-hi never queued an arrival: the high-load level is not high load")
	}
	hiANTT := func(sum *dynSummary) float64 { return classStats(sum.perClass, 2).ANTT }
	for _, name := range []string{"priority", "backfill"} {
		sum := run(name)
		if got, base := hiANTT(sum), hiANTT(fifo); got >= base {
			t.Errorf("%s high-class ANTT %.3f does not beat fifo's %.3f", name, got, base)
		}
		if ratio := sum.wstp / fifo.wstp; ratio < 0.95 {
			t.Errorf("%s weighted STP %.3f is more than 5%% below fifo's %.3f (ratio %.3f)",
				name, sum.wstp, fifo.wstp, ratio)
		}
	}
}

// TestDynPrioNoContentionTies: at the light load level no arrival ever
// queues, so every admission discipline must produce identical runs — the
// discipline only orders a queue that never forms.
func TestDynPrioNoContentionTies(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the mixed-priority scenario set")
	}
	s := dynPrioSuite()
	lo := DynPrioScenarios(s.cfg.Seed, s.cfg.Machine.QuantumCycles)[0]
	if lo.Name != "prio-lo" {
		t.Fatalf("first scenario is %s, want prio-lo", lo.Name)
	}
	var base *dynSummary
	for _, name := range []string{"fifo", "sjf", "priority", "backfill"} {
		adm, err := admission.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := s.runDynamicAdm(lo, LinuxFactory(), adm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sum.deferred != 0 {
			t.Fatalf("%s: prio-lo deferred %d arrivals; the light load level is not light", name, sum.deferred)
		}
		if base == nil {
			base = sum
			continue
		}
		if sum.antt != base.antt || sum.stp != base.stp || sum.wstp != base.wstp ||
			sum.meanRespK != base.meanRespK {
			t.Fatalf("%s diverged from fifo without contention: %+v vs %+v", name, sum, base)
		}
	}
}

// TestDynamicFIFODifferential: an explicit Admission="fifo" reproduces the
// default (historical) RunDynamic results on every dyn0-dyn4 scenario,
// field for field. Together with the golden-regression digests — which
// were generated from the pre-refactor inline queue and still match — this
// pins the refactored admission path to the old behaviour byte for byte.
func TestDynamicFIFODifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the dyn0-dyn4 scenario set twice")
	}
	def := dynPrioSuite()
	fifoCfg := def.Config()
	fifoCfg.Admission = "fifo"
	fifo := NewSuite(fifoCfg)
	for _, tr := range DynamicScenarios(def.cfg.Seed, def.cfg.Machine.QuantumCycles) {
		a, err := def.runDynamic(tr, LinuxFactory())
		if err != nil {
			t.Fatalf("%s default: %v", tr.Name, err)
		}
		b, err := fifo.runDynamic(tr, LinuxFactory())
		if err != nil {
			t.Fatalf("%s fifo: %v", tr.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: explicit fifo diverged from the default queue:\n default: %+v\n fifo:    %+v", tr.Name, a, b)
		}
	}
}

// TestDynamicTableAdmissionConfig: the suite-wide Admission knob reaches
// the dyn0-dyn4 table runs, and an unknown name errors with the valid set.
func TestDynamicTableAdmissionConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Admission = "no-such-discipline"
	s := NewSuite(cfg)
	tr := workload.Trace{Name: "one", Entries: []workload.TraceEntry{{App: "mcf", Work: 0.05}}}
	if _, err := s.runDynamic(tr, LinuxFactory()); err == nil {
		t.Fatal("unknown admission discipline accepted")
	}
}
