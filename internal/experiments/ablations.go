package experiments

import (
	"fmt"
	"time"

	"synpa/internal/machine"

	"synpa/internal/apps"
	"synpa/internal/characterize"
	"synpa/internal/core"
	"synpa/internal/matching"
	"synpa/internal/metrics"
	"synpa/internal/sched"
	"synpa/internal/stats"
	"synpa/internal/train"
	"synpa/internal/workload"
	"synpa/internal/xrand"
)

// AblationTenCategory reproduces the §VI-A finding that the authors'
// preliminary ten-category model (backend split into its component stall
// causes) is *less* accurate overall than the final three-category model:
// "the sum of the error deviations with more components exceeds the errors
// of only considering the backend category as a single category".
func (s *Suite) AblationTenCategory() (*Table, error) {
	_, rep3, err := s.Model()
	if err != nil {
		return nil, err
	}
	opts := s.cfg.Train
	opts.Machine = s.cfg.Machine
	opts.Extract = core.TenCategoryFractions
	opts.Categories = core.TenCategories
	m10, rep10, err := train.Train(apps.TrainingSet(), opts)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Ablation (§VI-A): three-category vs ten-category model accuracy",
		Header: []string{"Model", "Categories", "Equations/pair", "Total MSE", "Backend-side MSE"},
	}
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	// Backend-side error: the single BE category vs the sum of the seven
	// backend component categories.
	be3 := rep3.MSE[2]
	be10 := 0.0
	for k, name := range m10.Categories {
		if len(name) >= 3 && name[:3] == "BE:" {
			be10 += rep10.MSE[k]
		}
	}
	t.AddRow("three-category (final)", "3", "3", f4(sum(rep3.MSE)), f4(be3))
	t.AddRow("ten-category (preliminary)", "10", "10", f4(sum(rep10.MSE)), f4(be10))
	t.Notes = append(t.Notes,
		"paper finding: the summed backend-component errors exceed the single-category backend error, and the 10-equation model costs >3x more per pair estimate")
	return t, nil
}

// AblationRevealsSplit reproduces the §III-B Step 3 design study: assigning
// the revealed horizontal waste to the backend (the paper's choice) vs
// splitting it equally or proportionally between frontend and backend. The
// paper "opt[s] for the selected design choice as it is the one showing the
// most accurate regression model".
func (s *Suite) AblationRevealsSplit() (*Table, error) {
	t := &Table{
		Title:  "Ablation (§III-B Step 3): attribution of revealed stalls",
		Header: []string{"Rule", "MSE FD", "MSE FE", "MSE BE", "Total MSE"},
	}
	rules := []characterize.SplitRule{
		characterize.RevealsToBackend,
		characterize.RevealsEqual,
		characterize.RevealsProportional,
	}
	for _, rule := range rules {
		opts := s.cfg.Train
		opts.Machine = s.cfg.Machine
		opts.Extract = core.ThreeCategoryFractionsRule(rule)
		_, rep, err := train.Train(apps.TrainingSet(), opts)
		if err != nil {
			return nil, err
		}
		total := rep.MSE[0] + rep.MSE[1] + rep.MSE[2]
		t.AddRow(rule.String(), f4(rep.MSE[0]), f4(rep.MSE[1]), f4(rep.MSE[2]), f4(total))
	}
	t.Notes = append(t.Notes, "paper choice: reveals->backend (first row) gives the most accurate model")
	return t, nil
}

// AblationMatcher compares SYNPA's Blossom matcher with the greedy and
// brute-force alternatives on turnaround time over the mixed workloads
// (the pair-selection design choice of §IV-B Step 3).
func (s *Suite) AblationMatcher() (*Table, error) {
	model, _, err := s.Model()
	if err != nil {
		return nil, err
	}
	linux := LinuxFactory()
	t := &Table{
		Title:  "Ablation (§IV-B Step 3): pair-selection algorithm, TT speedup over Linux on mixed workloads",
		Header: []string{"Matcher", "Mean TT speedup", "Min", "Max"},
	}
	for _, matcher := range []core.Matcher{core.MatcherBlossom, core.MatcherGreedy, core.MatcherBruteForce} {
		policy := SYNPAFactory(model, core.PolicyOptions{
			Matcher: matcher,
			Name:    "SYNPA-" + matcher.String(),
		})
		var sps []float64
		for _, w := range s.workloads {
			if w.Kind != workload.Mixed {
				continue
			}
			rl, err := s.Run(w, linux, 0)
			if err != nil {
				return nil, err
			}
			rs, err := s.Run(w, policy, 0)
			if err != nil {
				return nil, err
			}
			tl, err := metrics.TurnaroundCycles(rl)
			if err != nil {
				return nil, err
			}
			ts, err := metrics.TurnaroundCycles(rs)
			if err != nil {
				return nil, err
			}
			sps = append(sps, float64(tl)/float64(ts))
		}
		mn, _ := stats.Min(sps)
		mx, _ := stats.Max(sps)
		t.AddRow(matcher.String(), f3(stats.Mean(sps)), f3(mn), f3(mx))
	}
	t.Notes = append(t.Notes, "blossom and brute force find the same optimum; greedy is the cheap suboptimal baseline")
	return t, nil
}

// AblationInversion quantifies the value of the model-inversion step
// (§IV-B Step 1): SYNPA with inversion vs a variant that feeds raw SMT
// fractions into the forward model.
func (s *Suite) AblationInversion() (*Table, error) {
	model, _, err := s.Model()
	if err != nil {
		return nil, err
	}
	linux := LinuxFactory()
	variants := []struct {
		label   string
		disable bool
	}{
		{"with inversion (SYNPA)", false},
		{"without inversion", true},
	}
	t := &Table{
		Title:  "Ablation (§IV-B Step 1): value of the model inversion, mixed workloads",
		Header: []string{"Variant", "Mean TT speedup over Linux"},
	}
	for _, v := range variants {
		policy := SYNPAFactory(model, core.PolicyOptions{
			DisableInversion: v.disable,
			Name:             "SYNPA-inv-" + fmt.Sprint(!v.disable),
		})
		var sps []float64
		for _, w := range s.workloads {
			if w.Kind != workload.Mixed {
				continue
			}
			rl, err := s.Run(w, linux, 0)
			if err != nil {
				return nil, err
			}
			rs, err := s.Run(w, policy, 0)
			if err != nil {
				return nil, err
			}
			tl, _ := metrics.TurnaroundCycles(rl)
			ts, _ := metrics.TurnaroundCycles(rs)
			sps = append(sps, float64(tl)/float64(ts))
		}
		t.AddRow(v.label, f3(stats.Mean(sps)))
	}
	return t, nil
}

// OverheadModelEquations reproduces the §II overhead claim: estimating all
// pair combinations with SYNPA's three equations is ~40 % cheaper than with
// the five-equation IBM-style model, and the ten-category model is costlier
// still. Times are measured for a full all-pairs estimation sweep over n
// applications.
func (s *Suite) OverheadModelEquations() (*Table, error) {
	t := &Table{
		Title:  "Overhead (§II): all-pairs estimation cost by model arity (n=8 apps)",
		Header: []string{"Model", "Equations", "ns/all-pairs", "Relative"},
	}
	const n = 8
	rng := xrand.New(1)
	mk := func(k int) (*core.Model, [][]float64) {
		m := &core.Model{Categories: make([]string, k), Coef: make([]core.Coefficients, k)}
		for i := 0; i < k; i++ {
			m.Categories[i] = fmt.Sprintf("c%d", i)
			m.Coef[i] = core.Coefficients{Alpha: 0.1, Beta: 0.9, Gamma: 0.3, Rho: 0.1}
		}
		vecs := make([][]float64, n)
		for i := range vecs {
			vecs[i] = make([]float64, k)
			for j := range vecs[i] {
				vecs[i][j] = rng.Float64()
			}
		}
		return m, vecs
	}
	timeAllPairs := func(m *core.Model, vecs [][]float64) float64 {
		const iters = 5000
		sink := 0.0
		sweep := func(count int) {
			for it := 0; it < count; it++ {
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						sink += m.PairDegradation(vecs[i], vecs[j])
					}
				}
			}
		}
		sweep(iters / 4) // warm caches and branch predictors
		start := time.Now()
		sweep(iters)
		_ = sink
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	base := 0.0
	for _, k := range []int{3, 5, 10} {
		m, vecs := mk(k)
		ns := timeAllPairs(m, vecs)
		if k == 3 {
			base = ns
		}
		label := map[int]string{3: "SYNPA (3 categories)", 5: "IBM-style (5 equations)", 10: "preliminary (10 categories)"}[k]
		t.AddRow(label, fmt.Sprint(k), fmt.Sprintf("%.0f", ns), fmt.Sprintf("%.2fx", ns/base))
	}
	t.Notes = append(t.Notes, "paper claim: 3 equations vs 5 equations -> ~40% lower estimation overhead")
	return t, nil
}

// OverheadMatching compares Blossom with exhaustive pairing enumeration as
// the machine grows — the combinatorial explosion the paper cites as the
// reason for using the Blossom algorithm (§IV-B Step 3).
func (s *Suite) OverheadMatching() (*Table, error) {
	t := &Table{
		Title:  "Overhead (§IV-B Step 3): pair-selection time, Blossom vs exhaustive enumeration",
		Header: []string{"Apps", "Blossom ns/op", "Brute force ns/op", "Brute/Blossom"},
	}
	rng := xrand.New(7)
	for _, n := range []int{8, 12, 16, 20} {
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := 2 + rng.Float64()*2
				w[i][j], w[j][i] = v, v
			}
		}
		timeIt := func(f func() error) (float64, error) {
			iters := 50
			start := time.Now()
			for it := 0; it < iters; it++ {
				if err := f(); err != nil {
					return 0, err
				}
			}
			return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
		}
		bl, err := timeIt(func() error { _, _, err := matching.MinWeightPerfectMatching(w); return err })
		if err != nil {
			return nil, err
		}
		bf, err := timeIt(func() error { _, _, err := matching.BruteForceMinWeightPerfect(w); return err })
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.0f", bl), fmt.Sprintf("%.0f", bf), fmt.Sprintf("%.1fx", bf/bl))
	}
	t.Notes = append(t.Notes, "the enumeration cost explodes with app count while Blossom stays polynomial")
	return t, nil
}

// AblationQuantum sweeps the scheduling quantum length and reports SYNPA's
// TT speedup over Linux on the published mixed workload fb2 — the
// measurement-noise vs agility trade-off behind the paper's 100 ms choice.
func (s *Suite) AblationQuantum() (*Table, error) {
	model, _, err := s.Model()
	if err != nil {
		return nil, err
	}
	w, err := workload.ByName(s.cfg.Seed, "fb2")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: scheduling quantum length vs SYNPA benefit (fb2)",
		Header: []string{"Quantum (cycles)", "Linux TT", "SYNPA TT", "Speedup"},
	}
	for _, q := range []uint64{s.cfg.Machine.QuantumCycles / 2, s.cfg.Machine.QuantumCycles, s.cfg.Machine.QuantumCycles * 2} {
		cfg := s.cfg.Machine
		cfg.QuantumCycles = q
		tc := workload.NewTargetCache(cfg, s.cfg.RefQuanta, s.cfg.Seed)
		targets, err := tc.Targets(w)
		if err != nil {
			return nil, err
		}
		ttFor := func(policy machine.Policy) (uint64, error) {
			m, err := machine.New(cfg)
			if err != nil {
				return 0, err
			}
			res, err := m.Run(w.Apps, targets, policy, machine.RunnerOptions{
				Seed:      s.cfg.Seed,
				MaxQuanta: s.cfg.MaxQuanta,
			})
			if err != nil {
				return 0, err
			}
			return metrics.TurnaroundCycles(res)
		}
		tl, err := ttFor(sched.Linux{})
		if err != nil {
			return nil, err
		}
		ts, err := ttFor(core.MustPolicy(model, core.PolicyOptions{}))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(q), fmt.Sprint(tl), fmt.Sprint(ts), f3(float64(tl)/float64(ts)))
	}
	return t, nil
}
