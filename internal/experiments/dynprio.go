// Mixed-priority open-system experiments: the dynprio family crosses the
// placement policies (Linux, Random, SYNPA) with the four admission
// disciplines (FIFO, SJF, priority, backfill) over mixed-priority Poisson
// traces at three load levels. It is the evaluation harness for the
// question the follow-up allocation-policy paper poses: how much high-class
// latency can admission order buy, and what does it cost in batch
// throughput? The per-class ANTT/p95 columns report the latency side; the
// weighted-STP column the throughput side.
package experiments

import (
	"fmt"

	"synpa/internal/admission"
	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/pool"
	"synpa/internal/sched"
	"synpa/internal/workload"
)

// dynPrioMix is the priority mix of the dynprio traces: half the arrivals
// are long batch work (class 0), a third short interactive jobs (class 1,
// double weight), the rest medium urgent jobs (class 2, quadruple weight).
// Job size is deliberately not monotone in class — the shortest jobs are
// the mid-priority interactive ones — so size-based admission (SJF), class-
// based admission (priority) and the backfilling hybrid order the queue
// genuinely differently.
func dynPrioMix() []workload.ClassShare {
	return []workload.ClassShare{
		{Priority: 0, Weight: 1, Share: 0.5, Work: 0.6},
		{Priority: 1, Weight: 2, Share: 0.3, Work: 0.2},
		{Priority: 2, Weight: 4, Share: 0.2, Work: 0.35},
	}
}

// DynPrioScenarios builds the mixed-priority Poisson traces at three load
// levels. Mean inter-arrival gaps are expressed in scheduling quanta so the
// set scales with the configured quantum length:
//
//	prio-lo   gap 2q    — the machine keeps up; admission order is mostly
//	          moot (every policy should tie).
//	prio-mid  gap 0.8q  — transient queues form.
//	prio-hi   gap 0.3q  — offered load exceeds the hardware threads, the
//	          queue is persistent, and admission order dominates per-class
//	          response times.
func DynPrioScenarios(seed uint64, quantumCycles uint64) []workload.Trace {
	mixed := []string{"mcf", "leela_r", "lbm_r", "gobmk", "cactuBSSN_r", "povray_r", "milc", "perlbench"}
	mix := dynPrioMix()
	q := float64(quantumCycles)
	return []workload.Trace{
		workload.PoissonTraceMixed("prio-lo", seed+11, mixed, 10, 2*q, 0.4, mix),
		workload.PoissonTraceMixed("prio-mid", seed+12, mixed, 12, 0.8*q, 0.4, mix),
		workload.PoissonTraceMixed("prio-hi", seed+13, mixed, 16, 0.3*q, 0.4, mix),
	}
}

// classStats returns the stats of class prio, or a zero value.
func classStats(per []workload.ClassStats, prio int) workload.ClassStats {
	for _, cs := range per {
		if cs.Priority == prio {
			return cs
		}
	}
	return workload.ClassStats{Priority: prio}
}

// DynPrioTable crosses Linux/Random/SYNPA with the four admission
// disciplines over the mixed-priority scenarios and reports per-class
// response-time metrics next to the weighted and plain throughput: the
// latency-vs-batch-throughput trade of admission order, measured.
func (s *Suite) DynPrioTable() (*Table, error) {
	model, _, err := s.Model()
	if err != nil {
		return nil, err
	}
	scenarios := DynPrioScenarios(s.cfg.Seed, s.cfg.Machine.QuantumCycles)
	policies := []PolicyFactory{
		LinuxFactory(),
		{Label: "Random", New: func() machine.Policy { return sched.NewRandom(s.cfg.Seed) }},
		SYNPAFactory(model, core.PolicyOptions{}),
	}
	admissions := make([]admission.Policy, 0, len(admission.Names()))
	for _, name := range admission.Names() {
		adm, err := admission.ByName(name)
		if err != nil {
			return nil, err
		}
		admissions = append(admissions, adm)
	}

	type job struct {
		tr  workload.Trace
		pol PolicyFactory
		adm admission.Policy
	}
	var jobs []job
	for _, tr := range scenarios {
		for _, pol := range policies {
			for _, adm := range admissions {
				jobs = append(jobs, job{tr, pol, adm})
			}
		}
	}
	sums := make([]*dynSummary, len(jobs))
	if err := pool.Run(len(jobs), s.cfg.Parallel, func(i int) error {
		var err error
		sums[i], err = s.runDynamicAdm(jobs[i].tr, jobs[i].pol, jobs[i].adm)
		return err
	}); err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Mixed-priority scenarios: admission disciplines vs per-class response (dynprio)",
		Header: []string{"Scenario", "Policy", "Admission", "Apps", "Done", "Deferred",
			"HiANTT", "HiP95(Kcyc)", "LoANTT", "ANTT", "STP", "WSTP"},
		Notes: []string{
			"classes: 0 = batch (weight 1, 50%), 1 = interactive (weight 2, 30%), 2 = urgent (weight 4, 20%)",
			"HiANTT/HiP95 = class-2 mean normalized response / p95 response; LoANTT = class-0 (lower is better)",
			"WSTP = weight-scaled STP, normalized so uniform weights reproduce STP (higher is better)",
			"prio-hi offers more load than the hardware threads can carry: admission order dominates there",
		},
	}
	for i, j := range jobs {
		sum := sums[i]
		hi := classStats(sum.perClass, 2)
		lo := classStats(sum.perClass, 0)
		t.AddRow(j.tr.Name, j.pol.Label, j.adm.Name(),
			fmt.Sprint(sum.apps), fmt.Sprint(sum.completed), fmt.Sprint(sum.deferred),
			f3(hi.ANTT), fmt.Sprintf("%.1f", hi.P95ResponseCycles/1000),
			f3(lo.ANTT), f3(sum.antt), f3(sum.stp), f3(sum.wstp))
	}
	return t, nil
}
