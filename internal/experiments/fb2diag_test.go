package experiments

import (
	"testing"

	"synpa/internal/core"
	"synpa/internal/metrics"
	"synpa/internal/workload"
)

// TestFB2NeverLosesToLinux guards the §VI-C flagship workload: fb2's
// arrival order happens to give the Linux baseline a complementary pairing,
// so there is little for SYNPA to win here in the simulator (EXPERIMENTS.md
// discusses the magnitude gap against the paper) — but SYNPA must never be
// materially worse, and its hysteresis must prevent noise-driven churn.
func TestFB2NeverLosesToLinux(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs")
	}
	cfg := DefaultConfig()
	cfg.Machine.QuantumCycles = 10_000
	cfg.RefQuanta = 60
	cfg.Reps = 1
	cfg.Train.Machine = cfg.Machine
	s := NewSuite(cfg)
	model, _, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	w, _ := workload.ByName(cfg.Seed, "fb2")

	rl, err := s.Run(w, LinuxFactory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Run(w, SYNPAFactory(model, core.PolicyOptions{}), 0)
	if err != nil {
		t.Fatal(err)
	}
	tl, _ := metrics.TurnaroundCycles(rl)
	ts, _ := metrics.TurnaroundCycles(rs)
	t.Logf("fb2: Linux TT=%d, SYNPA TT=%d (ratio %.3f)", tl, ts, float64(tl)/float64(ts))
	if float64(ts) > 1.03*float64(tl) {
		t.Fatalf("SYNPA TT %d materially worse than Linux %d on fb2", ts, tl)
	}

	// Churn guard: migrations should be rare under hysteresis.
	migr := 0
	for q := 1; q < len(rs.Placements); q++ {
		for i := range rs.Placements[q] {
			if rs.Placements[q][i] != rs.Placements[q-1][i] {
				migr++
				break
			}
		}
	}
	if migr > rs.Quanta/3 {
		t.Fatalf("SYNPA migrated in %d of %d quanta: hysteresis not effective", migr, rs.Quanta)
	}
}
