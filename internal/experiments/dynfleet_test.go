package experiments

import (
	"strconv"
	"testing"

	"synpa/internal/fleet"
	"synpa/internal/workload"
)

func TestFleetScenariosWellFormed(t *testing.T) {
	scenarios := FleetScenarios(0x51A9A, 8_000)
	if len(scenarios) != 3 {
		t.Fatalf("%d scenarios, want 3", len(scenarios))
	}
	seen := map[string]bool{}
	for _, sc := range scenarios {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario %s", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Machines < 2 {
			t.Fatalf("%s: %d machines; a fleet scenario needs several", sc.Name, sc.Machines)
		}
		tr := workload.Collect(sc.Stream(), 0)
		if len(tr.Entries) != 120 {
			t.Fatalf("%s: %d entries, want 120", sc.Name, len(tr.Entries))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		// Streams must replay identically: the scenario factory hands each
		// run a fresh but bit-identical arrival sequence.
		again := workload.Collect(sc.Stream(), 0)
		for i := range tr.Entries {
			if tr.Entries[i] != again.Entries[i] {
				t.Fatalf("%s: stream replay diverged at entry %d", sc.Name, i)
			}
		}
	}
	for _, want := range []string{"fleet-sat", "fleet-imb", "fleet-hot"} {
		if !seen[want] {
			t.Fatalf("missing scenario %s (have %v)", want, seen)
		}
	}

	// fleet-imb must actually mix job sizes; fleet-hot must arrive in
	// simultaneous bursts.
	imb := workload.Collect(scenarios[1].Stream(), 0)
	sizes := map[float64]int{}
	for _, e := range imb.Entries {
		sizes[e.Work]++
	}
	if len(sizes) < 2 {
		t.Fatalf("fleet-imb has uniform job sizes: %v", sizes)
	}
	hot := workload.Collect(scenarios[2].Stream(), 0)
	bursts := map[uint64]int{}
	for _, e := range hot.Entries {
		bursts[e.ArriveAt]++
	}
	if len(bursts) != 10 {
		t.Fatalf("fleet-hot has %d burst times, want 10", len(bursts))
	}
	for at, n := range bursts {
		if n != 12 {
			t.Fatalf("fleet-hot burst at %d has %d jobs, want 12", at, n)
		}
	}
}

// TestDynFleetBaseline runs the saturation scenario under least-loaded
// dispatch and Linux placement (no trained model needed): the fleet
// drains, and the streaming report is internally consistent.
func TestDynFleetBaseline(t *testing.T) {
	s := NewSuite(fastConfig())
	sc := FleetScenarios(s.cfg.Seed, s.cfg.Machine.QuantumCycles)[0]
	rep, err := s.runFleet(sc, fleet.DispatchLeastLoaded, LinuxFactory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 120 || !rep.AllCompleted || rep.Completed != 120 {
		t.Fatalf("fleet-sat did not drain: %+v", rep)
	}
	if rep.Machines != sc.Machines || rep.Dispatch != fleet.DispatchLeastLoaded || rep.Policy != "Linux" {
		t.Fatalf("report mislabelled: %+v", rep)
	}
	if rep.ANTT < 1 {
		t.Fatalf("ANTT = %v, must be >= 1", rep.ANTT)
	}
	if rep.STP <= 0 || rep.MeanResponseCycles <= 0 || rep.P95ResponseCycles < rep.MeanResponseCycles/2 {
		t.Fatalf("degenerate response metrics: %+v", rep)
	}
	if rep.MaxMachineJobs < rep.MinMachineJobs || rep.Imbalance < 1 {
		t.Fatalf("impossible imbalance accounting: %+v", rep)
	}
}

// TestDynFleetScaleSmall exercises the scale harness end to end at a CI
// size: the table shape is right and every dispatched job is accounted
// for.
func TestDynFleetScaleSmall(t *testing.T) {
	s := NewSuite(fastConfig())
	tab, err := s.DynFleetScale(FleetScaleOptions{Machines: 24, Jobs: 4_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("%d rows, want 1", len(tab.Rows))
	}
	row := tab.Rows[0]
	if row[0] != "24" || row[2] != "4000" {
		t.Fatalf("row mislabelled: %v", row)
	}
	done, err := strconv.Atoi(row[3])
	if err != nil {
		t.Fatal(err)
	}
	unfinished, err := strconv.Atoi(row[4])
	if err != nil {
		t.Fatal(err)
	}
	if done+unfinished != 4_000 {
		t.Fatalf("jobs leaked: done %d + unfinished %d != 4000", done, unfinished)
	}
	if done == 0 {
		t.Fatal("no job completed")
	}
}
