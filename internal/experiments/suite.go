// Package experiments reproduces every table and figure of the paper's
// evaluation (§V–§VI) on the simulated ThunderX2 system. Each experiment is
// a method on Suite returning a Table whose rows mirror what the paper
// reports; the bench harness at the repository root and cmd/synpa-bench
// print them.
//
// A Suite memoises the expensive artefacts — the trained model, the
// per-application isolated profiles and targets, and every (workload,
// policy, repetition) run — so that Fig. 5, Fig. 8 and Fig. 9, which all
// consume the same twenty workload runs, execute them once.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/obs"
	"synpa/internal/pool"
	"synpa/internal/sched"
	"synpa/internal/train"
	"synpa/internal/workload"
)

// Config parameterises a reproduction suite.
type Config struct {
	// Machine is the simulated system (Table II defaults).
	Machine machine.Config
	// Train configures the §IV-C training pipeline.
	Train train.Options
	// RefQuanta is the isolated reference interval used to set
	// instruction targets (the paper's 60-second run, §V-B).
	RefQuanta int
	// Reps is the number of executions per workload; the paper runs nine
	// and discards outliers until the variation coefficient is below 5 %.
	Reps int
	// Seed drives workload generation and every run's app streams.
	Seed uint64
	// Parallel fans independent runs out over CPUs.
	Parallel bool
	// MaxQuanta bounds each workload run.
	MaxQuanta int
	// Admission selects the open-system admission discipline used by the
	// dynamic scenario experiments ("" or "fifo", "sjf", "priority",
	// "backfill"); the dynprio experiment compares all four regardless.
	Admission string
	// Obs, when non-nil, receives every run's event trace and metrics.
	// Registry counters are parallel-safe, but the event trace is not:
	// callers enabling tracing must run the suite serially (Parallel
	// false) — synpa-bench enforces this for -trace-out.
	Obs *obs.Observer
	// FleetSharedCache routes every fleet experiment through one shared
	// concurrent prediction cache per run instead of per-machine private
	// caches. Bit-identical by construction (internal/predcache): the
	// golden-digest harness re-verifies the dynfleet digest with this on.
	FleetSharedCache bool
}

// DefaultConfig returns the configuration used by the published benches.
// Reps defaults to 3 rather than the paper's 9 to keep the full-suite wall
// time reasonable; the outlier-discarding aggregation is identical.
func DefaultConfig() Config {
	mc := machine.DefaultConfig()
	to := train.DefaultOptions()
	to.Machine = mc
	return Config{
		Machine:   mc,
		Train:     to,
		RefQuanta: 100,
		Reps:      3,
		Seed:      0x51A9A,
		Parallel:  true,
		MaxQuanta: 20_000,
	}
}

// Suite holds the memoised state of one reproduction.
type Suite struct {
	cfg Config

	modelOnce sync.Once
	model     *core.Model
	trainRep  *train.Report
	trainErr  error

	workloads []workload.Workload
	targets   *workload.TargetCache

	isoOnce sync.Once
	isoErr  error
	iso     map[string]isoProfile

	runMu sync.Mutex
	runs  map[runKey]*runSlot
}

type runKey struct {
	workload string
	policy   string
	rep      int
}

type runSlot struct {
	once sync.Once
	res  *machine.Result
	err  error
}

// NewSuite builds a suite. The workload set and target cache are created
// eagerly; everything expensive is lazy.
func NewSuite(cfg Config) *Suite {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if cfg.MaxQuanta <= 0 {
		cfg.MaxQuanta = 20_000
	}
	return &Suite{
		cfg:       cfg,
		workloads: workload.StandardSet(cfg.Seed),
		targets:   workload.NewTargetCache(cfg.Machine, cfg.RefQuanta, cfg.Seed),
		runs:      map[runKey]*runSlot{},
	}
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// Workloads returns the twenty standard workloads.
func (s *Suite) Workloads() []workload.Workload { return s.workloads }

// Model returns the trained three-category model, training it on first use
// on the 22-application training set (§IV-C).
func (s *Suite) Model() (*core.Model, *train.Report, error) {
	s.modelOnce.Do(func() {
		opts := s.cfg.Train
		opts.Machine = s.cfg.Machine
		s.model, s.trainRep, s.trainErr = train.Train(apps.TrainingSet(), opts)
	})
	return s.model, s.trainRep, s.trainErr
}

// PolicyFactory builds a fresh policy instance per workload run. Policies
// carry per-run state (the SYNPA policy smooths its ST estimates across
// quanta), so concurrent runs must never share one instance.
type PolicyFactory struct {
	// Label keys the memoised results and appears in experiment output.
	Label string
	// New constructs a policy for one run.
	New func() machine.Policy
}

// LinuxFactory returns the stateless arrival-order baseline (sched.Linux —
// the experiments package carries no private duplicate of it).
func LinuxFactory() PolicyFactory {
	return PolicyFactory{Label: "Linux", New: func() machine.Policy { return sched.Linux{} }}
}

// SYNPAFactory returns a factory for the paper's policy around a model.
func SYNPAFactory(model *core.Model, opt core.PolicyOptions) PolicyFactory {
	label := opt.Name
	if label == "" {
		label = "SYNPA"
	}
	return PolicyFactory{Label: label, New: func() machine.Policy {
		o := opt
		o.Name = label
		return core.MustPolicy(model, o)
	}}
}

// policies returns the two factories of the paper's head-to-head.
func (s *Suite) policies() (linux PolicyFactory, synpa PolicyFactory, err error) {
	model, _, err := s.Model()
	if err != nil {
		return PolicyFactory{}, PolicyFactory{}, err
	}
	return LinuxFactory(), SYNPAFactory(model, core.PolicyOptions{}), nil
}

// Run returns the memoised result of one (workload, policy, rep) execution.
func (s *Suite) Run(w workload.Workload, factory PolicyFactory, rep int) (*machine.Result, error) {
	key := runKey{w.Name, factory.Label, rep}
	s.runMu.Lock()
	slot, ok := s.runs[key]
	if !ok {
		slot = &runSlot{}
		s.runs[key] = slot
	}
	s.runMu.Unlock()

	slot.once.Do(func() {
		targets, err := s.targets.Targets(w)
		if err != nil {
			slot.err = err
			return
		}
		cfg := s.cfg.Machine
		// When the caller fans runs out across CPUs, per-run core
		// parallelism only adds scheduling overhead.
		if s.cfg.Parallel {
			cfg.Parallel = false
		}
		m, err := machine.New(cfg)
		if err != nil {
			slot.err = err
			return
		}
		res, err := m.Run(w.Apps, targets, factory.New(), machine.RunnerOptions{
			Seed:      s.cfg.Seed + uint64(rep)*0x1000 + hashString(w.Name),
			MaxQuanta: s.cfg.MaxQuanta,
			// Per-quantum traces feed Fig. 6, Fig. 7 and Table V, which
			// analyse the three published workloads only; skipping the
			// rest keeps the memoised suite small.
			RecordTrace: w.Name == "be1" || w.Name == "fe2" || w.Name == "fb2",
			Obs:         s.cfg.Obs,
		})
		if err != nil {
			slot.err = err
			return
		}
		if !res.AllCompleted {
			slot.err = fmt.Errorf("experiments: %s under %s did not complete in %d quanta",
				w.Name, factory.Label, s.cfg.MaxQuanta)
			return
		}
		slot.res = res
	})
	return slot.res, slot.err
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// runAllPairs executes every (workload × {Linux, SYNPA} × rep) combination,
// fanning out across CPUs, and returns nothing: results are memoised for
// the figure methods. Called by Fig5/Fig8/Fig9 so the first of them pays
// the cost.
func (s *Suite) runAllPairs() error {
	linux, synpa, err := s.policies()
	if err != nil {
		return err
	}
	type job struct {
		w      workload.Workload
		policy PolicyFactory
		rep    int
	}
	var jobs []job
	for _, w := range s.workloads {
		for rep := 0; rep < s.cfg.Reps; rep++ {
			jobs = append(jobs, job{w, linux, rep}, job{w, synpa, rep})
		}
	}
	// Warm the per-application instruction targets concurrently before the
	// runs start: the first touch of each target is an isolated reference
	// run, and warming keeps it off the critical path of the first
	// workload executions.
	if err := s.targets.Warm(s.workloads, s.cfg.Parallel); err != nil {
		return err
	}
	return pool.Run(len(jobs), s.cfg.Parallel, func(i int) error {
		j := jobs[i]
		_, err := s.Run(j.w, j.policy, j.rep)
		return err
	})
}

// --- Table rendering --------------------------------------------------------

// Table is a printable experiment result: the textual equivalent of one of
// the paper's tables or figure data series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && i != len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// sortedAppNames returns catalogue names sorted for stable table output.
func sortedAppNames(ms []*apps.Model) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	sort.Strings(out)
	return out
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func speedup(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
