package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedFastSuite is reused by the figure smoke tests so the evaluation
// runs execute once for the whole test binary.
var (
	fastOnce  sync.Once
	fastSuite *Suite
)

func getFastSuite() *Suite {
	fastOnce.Do(func() { fastSuite = NewSuite(fastConfig()) })
	return fastSuite
}

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(cell, "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", cell, err)
	}
	return v
}

func TestFig2Decomposition(t *testing.T) {
	s := getFastSuite()
	tab, err := s.Fig2("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("Fig2 has %d rows, want 8", len(tab.Rows))
	}
	// Step 3 fractions (last three rows) must sum to 100%.
	sum := 0.0
	for _, row := range tab.Rows[5:] {
		sum += parseCell(t, row[3])
	}
	if sum < 99.5 || sum > 100.5 {
		t.Fatalf("Step 3 fractions sum to %v%%", sum)
	}
	if _, err := s.Fig2("unknown-app"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestFig4AndTableIII(t *testing.T) {
	s := getFastSuite()
	tab, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 28 {
		t.Fatalf("Fig4 has %d rows, want 28", len(tab.Rows))
	}
	t3, err := s.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t3.Rows {
		if row[4] != "yes" {
			t.Errorf("%s does not match its paper group", row[1])
		}
	}
}

func TestTableIVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	s := getFastSuite()
	tab, err := s.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("TableIV has %d rows", len(tab.Rows))
	}
	// MSE ordering: FD < BE (paper: 0.0021 < 0.1583).
	fdMSE := parseCell(t, tab.Rows[0][5])
	beMSE := parseCell(t, tab.Rows[2][5])
	if fdMSE >= beMSE {
		t.Fatalf("FD MSE %v should be below BE MSE %v", fdMSE, beMSE)
	}
}

func TestFig8FairnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	s := getFastSuite()
	tab, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Group-average rows: SYNPA fairness must not be materially below
	// Linux anywhere, and must beat it on mixed workloads.
	for _, row := range tab.Rows {
		if !strings.HasPrefix(row[0], "avg-") {
			continue
		}
		linux := parseCell(t, row[2])
		synpa := parseCell(t, row[3])
		if synpa < linux-0.02 {
			t.Errorf("%s: SYNPA fairness %v below Linux %v", row[0], synpa, linux)
		}
		if row[0] == "avg-mixed" && synpa <= linux {
			t.Errorf("mixed fairness must improve: Linux %v, SYNPA %v", linux, synpa)
		}
	}
}

func TestFig9IPCShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	s := getFastSuite()
	tab, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if !strings.HasPrefix(row[0], "avg-") {
			continue
		}
		sp := parseCell(t, row[2])
		if sp < 0.98 {
			t.Errorf("%s IPC speedup %v: SYNPA lost throughput", row[0], sp)
		}
		if row[0] == "avg-mixed" && sp < 1.0 {
			t.Errorf("mixed IPC speedup %v should exceed 1", sp)
		}
	}
}

func TestTableVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	s := getFastSuite()
	tab, err := s.TableV()
	if err != nil {
		t.Fatal(err)
	}
	// 8 apps x 2 behaviour rows.
	if len(tab.Rows) != 16 {
		t.Fatalf("TableV has %d rows, want 16", len(tab.Rows))
	}
	// The two leela_r instances (rows for apps 04 and 05): in their
	// frontend-behaving quanta they must be paired with a backend-bound
	// co-runner most of the time (the paper reports 95.5% and 82.8%).
	for _, appRow := range []int{8, 10} { // rows 2*4 and 2*5
		diff := tab.Rows[appRow][len(tab.Rows[appRow])-1]
		if diff == "-" {
			continue // no frontend-behaving quanta observed
		}
		v := parseCell(t, diff)
		if v < 50 {
			t.Errorf("leela frontend-behaviour synergy only %v%%, want majority", v)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	s := getFastSuite()
	for _, wl := range []string{"be1", "fe2", "fb2"} {
		tab, err := s.Fig6(wl)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 8 {
			t.Fatalf("%s: %d rows", wl, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			// Category fractions of both policies must each sum to ~100%.
			for _, base := range []int{2, 6} {
				sum := parseCell(t, row[base]) + parseCell(t, row[base+1]) + parseCell(t, row[base+2])
				if sum < 99 || sum > 101 {
					t.Fatalf("%s row %s: fractions sum to %v", wl, row[1], sum)
				}
			}
		}
	}
	if _, err := s.Fig6("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	s := getFastSuite()
	tab, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	summaries := 0
	for _, row := range tab.Rows {
		if row[2] == "SUMMARY" {
			summaries++
		}
	}
	if summaries != 4 {
		t.Fatalf("Fig7 has %d summaries, want 4 (2 policies x 2 instances)", summaries)
	}
}

func TestOverheadTables(t *testing.T) {
	s := getFastSuite()
	tab, err := s.OverheadModelEquations()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("overhead-model rows = %d", len(tab.Rows))
	}
	// The 5-equation model must cost more than the 3-equation one.
	three := parseCell(t, tab.Rows[0][2])
	five := parseCell(t, tab.Rows[1][2])
	if five <= three {
		t.Errorf("5-equation cost %v should exceed 3-equation cost %v", five, three)
	}

	m, err := s.OverheadMatching()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != 4 {
		t.Fatalf("overhead-matching rows = %d", len(m.Rows))
	}
	// Brute force must blow up relative to blossom as n grows.
	firstRatio := parseCell(t, strings.TrimSuffix(m.Rows[0][3], "x"))
	lastRatio := parseCell(t, strings.TrimSuffix(m.Rows[3][3], "x"))
	if lastRatio <= firstRatio {
		t.Errorf("enumeration should explode: ratio %v -> %v", firstRatio, lastRatio)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "test",
		Header: []string{"a", "bb"},
		Notes:  []string{"n1"},
	}
	tab.AddRow("x", "y")
	out := tab.String()
	for _, want := range []string{"== test ==", "a", "bb", "x", "y", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
