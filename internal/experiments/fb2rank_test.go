package experiments

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/metrics"
	"synpa/internal/workload"
)

// TestFB2AssignmentRanking compares the model's predicted ranking of all 24
// complementary BE<->FE assignments of fb2 against their actual simulated
// turnaround times under static pairing.
func TestFB2AssignmentRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("24 static workload runs")
	}
	cfg := DefaultConfig()
	cfg.Machine.QuantumCycles = 10_000
	cfg.RefQuanta = 60
	cfg.Reps = 1
	cfg.Train.Machine = cfg.Machine
	s := NewSuite(cfg)
	model, _, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	w, _ := workload.ByName(cfg.Seed, "fb2")
	// fb2: BE apps at 0(lbm),1(mcf),2(cactu),3(mcf); FE at 4,5(leela),6(astar),7(mcf_r).
	be := []int{0, 1, 2, 3}
	fe := []int{4, 5, 6, 7}

	// Isolated ST fractions per app.
	iso, err := s.isolatedProfiles()
	if err != nil {
		t.Fatal(err)
	}
	st := make([][]float64, 8)
	for i, m := range w.Apps {
		b := iso[m.Name].breakdown
		st[i] = []float64{b.FD, b.FE, b.BE}
	}

	perms := [][]int{}
	var gen func(cur []int, used int)
	gen = func(cur []int, used int) {
		if len(cur) == 4 {
			perms = append(perms, append([]int{}, cur...))
			return
		}
		for i := 0; i < 4; i++ {
			if used&(1<<i) == 0 {
				gen(append(cur, i), used|1<<i)
			}
		}
	}
	gen(nil, 0)

	targets, err := s.targets.Targets(w)
	if err != nil {
		t.Fatal(err)
	}

	type entry struct {
		perm      []int
		predicted float64
		actualTT  uint64
	}
	entries := make([]entry, len(perms))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for pi, perm := range perms {
		wg.Add(1)
		go func(pi int, perm []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pred := 0.0
			assign := make(machine.Placement, 8)
			for k, b := range be {
				f := fe[perm[k]]
				pred += model.PairDegradation(st[b], st[f])
				assign[b] = k
				assign[f] = k
			}
			mcfg := cfg.Machine
			mcfg.Parallel = false
			m, _ := machine.New(mcfg)
			res, err := m.Run(w.Apps, targets, machinePinned{assign}, machine.RunnerOptions{Seed: cfg.Seed})
			if err != nil {
				t.Error(err)
				return
			}
			tt, _ := metrics.TurnaroundCycles(res)
			entries[pi] = entry{perm, pred, tt}
		}(pi, perm)
	}
	wg.Wait()

	sort.Slice(entries, func(a, b int) bool { return entries[a].actualTT < entries[b].actualTT })
	// All complementary assignments must land within a modest TT band:
	// the simulator treats fb2's complementary pairings as near-equivalent
	// (see EXPERIMENTS.md), which is why the adaptive policy cannot
	// reproduce the paper's 1.55x on this one workload.
	if worst, best := entries[len(entries)-1].actualTT, entries[0].actualTT; float64(worst) > 1.25*float64(best) {
		t.Errorf("complementary assignments spread too wide: %d..%d", best, worst)
	}
	fmt.Println("rank by ACTUAL TT (perm = FE partner index per BE app 0..3):")
	for i, e := range entries {
		mark := ""
		if e.perm[0] == 0 && e.perm[1] == 1 && e.perm[2] == 2 && e.perm[3] == 3 {
			mark = "  <-- Linux arrival pairing"
		}
		fmt.Printf("%2d. perm=%v actualTT=%-9d predicted=%.4f%s\n", i+1, e.perm, e.actualTT, e.predicted, mark)
	}
	_ = core.DefaultInversion
}

type machinePinned struct{ a machine.Placement }

func (machinePinned) Name() string                                    { return "pinned" }
func (p machinePinned) Place(*machine.QuantumState) machine.Placement { return p.a.Clone() }
