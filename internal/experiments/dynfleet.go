// Fleet-scale open-system experiments: the dynfleet family runs the
// two-level scheduler (cluster dispatch over per-machine SYNPA placement)
// on clusters of identical machines, crossing the dispatch disciplines
// with the placement policies over three cluster-shaped arrival streams.
// The scale variant streams a million-job Poisson trace into hundreds of
// machines — the run whose bounded-memory claim the BENCH heap high-water
// figures pin.
package experiments

import (
	"fmt"

	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/fleet"
	"synpa/internal/machine"
	"synpa/internal/pool"
	"synpa/internal/predcache"
	"synpa/internal/workload"
)

// fleetPool is the application mix of the fleet streams.
func fleetPool() []string {
	return []string{"mcf", "leela_r", "lbm_r", "gobmk", "cactuBSSN_r", "povray_r", "milc", "perlbench"}
}

// FleetScenario describes one dynfleet cluster scenario. Streams are
// single-use, so the scenario carries a factory.
type FleetScenario struct {
	// Name labels the scenario in tables.
	Name string
	// Machines is the cluster size.
	Machines int
	// Stream builds a fresh arrival stream.
	Stream func() workload.TraceStream
}

// FleetScenarios builds the three dynfleet scenarios over clusters of six
// machines. Gaps are in scheduling quanta, like the dynprio set:
//
//	fleet-sat  steady Poisson arrivals near the cluster's service
//	           capacity — the baseline two-level regime where least-loaded
//	           and interference dispatch should both keep up.
//	fleet-imb  the same process with a 10× job-size spread (mixed class
//	           shares), so load-blind round-robin dispatch builds queues
//	           behind the big jobs that load-aware dispatch avoids.
//	fleet-hot  bursts of twelve simultaneous arrivals separated by quiet
//	           gaps — the hotspot stress where dispatch quality shows up
//	           as the burst's queueing tail.
func FleetScenarios(seed uint64, quantumCycles uint64) []FleetScenario {
	pool := fleetPool()
	q := float64(quantumCycles)
	const machines = 6
	imbMix := []workload.ClassShare{
		{Priority: 0, Weight: 1, Share: 0.7, Work: 0.06},
		{Priority: 1, Weight: 1, Share: 0.3, Work: 0.6},
	}
	return []FleetScenario{
		{
			Name:     "fleet-sat",
			Machines: machines,
			Stream: func() workload.TraceStream {
				return workload.PoissonStream("fleet-sat", seed+21, pool, 120, 0.35*q, 0.25)
			},
		},
		{
			Name:     "fleet-imb",
			Machines: machines,
			Stream: func() workload.TraceStream {
				return workload.PoissonStreamMixed("fleet-imb", seed+22, pool, 120, 0.35*q, 0.25, imbMix)
			},
		},
		{
			Name:     "fleet-hot",
			Machines: machines,
			Stream: func() workload.TraceStream {
				// Ten bursts of twelve jobs, each burst eight quanta after
				// the previous — an arrival pattern no Poisson gap models.
				return workload.StreamFunc("fleet-hot", func(i int) (workload.TraceEntry, bool) {
					if i >= 120 {
						return workload.TraceEntry{}, false
					}
					burst := uint64(i / 12)
					return workload.TraceEntry{
						App:      pool[i%len(pool)],
						ArriveAt: burst * uint64(8*q),
						Work:     0.25,
					}, true
				})
			},
		},
	}
}

// fleetWorkers resolves the fleet-internal worker count: when the suite
// fans independent fleet runs out across CPUs itself, each fleet steps its
// machines serially (the same rule Suite.Run applies to per-run machines).
func (s *Suite) fleetWorkers() int {
	if s.cfg.Parallel {
		return 1
	}
	return s.cfg.Machine.Workers
}

// runFleet executes one scenario under one dispatch discipline and one
// placement factory.
func (s *Suite) runFleet(sc FleetScenario, dispatch string, factory PolicyFactory, model *core.Model) (*fleet.Report, error) {
	src := fleet.NewTraceSource(s.targets, sc.Stream(), s.cfg.Machine.Core.DispatchWidth)
	cfg := fleet.Config{
		Machines:  sc.Machines,
		Machine:   s.cfg.Machine,
		NewPolicy: func(int) machine.Policy { return factory.New() },
		Dispatch:  dispatch,
		Model:     model,
		Admission: s.cfg.Admission,
		Seed:      s.cfg.Seed,
		MaxCycles: uint64(s.cfg.MaxQuanta) * s.cfg.Machine.QuantumCycles,
		Workers:   s.fleetWorkers(),
		Obs:       s.cfg.Obs,
	}
	if s.cfg.FleetSharedCache {
		cfg.SharedCache = predcache.NewShared(predcache.Options{}, 0)
	}
	return fleet.Run(cfg, src)
}

// warmFleetApps measures the stream pool's reference targets up front so
// the fleet runs never hit a cold target cache mid-dispatch.
func (s *Suite) warmFleetApps() error {
	w := workload.Workload{Name: "fleet-pool"}
	for _, name := range fleetPool() {
		m, err := apps.ByName(name)
		if err != nil {
			return err
		}
		w.Apps = append(w.Apps, m)
	}
	return s.targets.Warm([]workload.Workload{w}, s.cfg.Parallel)
}

// DynFleetTable crosses the three fleet scenarios with the dispatch
// disciplines and the Linux/SYNPA placement policies: the two-level
// scheduler's evaluation grid. Every cell is one fleet run; rows report
// the streaming-aggregated response metrics and the dispatch imbalance.
func (s *Suite) DynFleetTable() (*Table, error) {
	model, _, err := s.Model()
	if err != nil {
		return nil, err
	}
	if err := s.warmFleetApps(); err != nil {
		return nil, err
	}
	scenarios := FleetScenarios(s.cfg.Seed, s.cfg.Machine.QuantumCycles)
	policies := []PolicyFactory{
		LinuxFactory(),
		SYNPAFactory(model, core.PolicyOptions{}),
	}

	type job struct {
		sc       FleetScenario
		dispatch string
		pol      PolicyFactory
	}
	var jobs []job
	for _, sc := range scenarios {
		for _, dispatch := range fleet.Dispatchers() {
			for _, pol := range policies {
				jobs = append(jobs, job{sc, dispatch, pol})
			}
		}
	}
	reps := make([]*fleet.Report, len(jobs))
	if err := pool.Run(len(jobs), s.cfg.Parallel, func(i int) error {
		var err error
		reps[i], err = s.runFleet(jobs[i].sc, jobs[i].dispatch, jobs[i].pol, model)
		return err
	}); err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Fleet scenarios: dispatch disciplines x placement policies (dynfleet)",
		Header: []string{"Scenario", "Dispatch", "Policy", "Jobs", "Done", "Deferred",
			"MeanResp(Kcyc)", "P95(Kcyc)", "ANTT", "STP", "Imb"},
		Notes: []string{
			"6 machines per fleet; STP is fleet-wide completed isolated work per cycle (machine STP x6 at full health)",
			"P95 from the streaming quantile sketch (no retained samples); Imb = max machine's job share over the even split",
			"fleet-imb mixes 10x job sizes; fleet-hot arrives in 12-job bursts - dispatch quality shows in their tails",
		},
	}
	for i, j := range jobs {
		r := reps[i]
		t.AddRow(j.sc.Name, j.dispatch, j.pol.Label,
			fmt.Sprint(r.Jobs), fmt.Sprint(r.Completed), fmt.Sprint(r.Deferred),
			fmt.Sprintf("%.1f", r.MeanResponseCycles/1000), fmt.Sprintf("%.1f", r.P95ResponseCycles/1000),
			f3(r.ANTT), f3(r.STP), f3(r.Imbalance))
	}
	return t, nil
}

// FleetScaleOptions size the dynfleet-scale run.
type FleetScaleOptions struct {
	// Machines is the cluster size (default 500).
	Machines int
	// Jobs is the stream length (default 1,000,000).
	Jobs int
}

// DynFleetScale streams a Poisson trace of tiny jobs into a large cluster
// under least-loaded dispatch and Linux placement — the memory-scaling
// run: job count exceeds machine count by orders of magnitude, so any
// per-job retention would dominate the heap high-water mark the BENCH
// harness records. Jobs are sized to two scheduling quanta of isolated
// work and the arrival rate to ~65% effective cluster utilisation.
func (s *Suite) DynFleetScale(opt FleetScaleOptions) (*Table, error) {
	machines := opt.Machines
	if machines <= 0 {
		machines = 500
	}
	jobs := opt.Jobs
	if jobs <= 0 {
		jobs = 1_000_000
	}
	if err := s.warmFleetApps(); err != nil {
		return nil, err
	}
	// A job's isolated time is work x the reference interval (target and
	// IPC both come from that interval, so IPC cancels). Jobs must span
	// multiple scheduling quanta for the offered-load calculus to hold: a
	// sub-quantum job still occupies its hardware thread to the slice
	// boundary, which would quantum-bound the service time and saturate
	// the cluster regardless of the computed gap. Two quanta of isolated
	// work keeps jobs tiny relative to the stream (the memory claim's
	// jobs >> machines regime) while making iso the dominant service term.
	// The offered load is half the cluster's isolated-speed thread
	// capacity: SMT sharing plus slice-boundary rounding stretch a job's
	// thread-occupancy to ~1.3x iso (measured), so this runs the cluster
	// at ~65% effective utilisation — loaded enough to queue, stable
	// enough that in-flight state (and with it the heap) stays bounded as
	// the stream length grows.
	work := 2 / float64(s.cfg.RefQuanta)
	threads := machines * s.cfg.Machine.Cores * s.cfg.Machine.ThreadsPerCore()
	isoCycles := 2 * float64(s.cfg.Machine.QuantumCycles)
	gap := isoCycles / (0.5 * float64(threads))
	src := fleet.NewTraceSource(s.targets,
		workload.PoissonStream("fleet-scale", s.cfg.Seed+23, fleetPool(), jobs, gap, work), 0)
	rep, err := fleet.Run(fleet.Config{
		Machines:  machines,
		Machine:   s.cfg.Machine,
		NewPolicy: func(int) machine.Policy { return LinuxFactory().New() },
		Dispatch:  fleet.DispatchLeastLoaded,
		Admission: s.cfg.Admission,
		Seed:      s.cfg.Seed,
		MaxCycles: uint64(s.cfg.MaxQuanta) * s.cfg.Machine.QuantumCycles,
		Workers:   s.cfg.Machine.Workers,
		Obs:       s.cfg.Obs,
	}, src)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Fleet scale: streaming dispatch and O(machines) aggregation (dynfleet-scale)",
		Header: []string{"Machines", "Workers", "Jobs", "Done", "Unfinished", "Cycles(M)",
			"MeanResp(Kcyc)", "P95(Kcyc)", "ANTT", "STP", "MeanLive", "Imb"},
		Notes: []string{
			"least-loaded dispatch, Linux placement, two-quanta jobs at ~65% effective utilisation",
			"memory stays O(machines + classes + in-flight): the BENCH meta's peak_heap_bytes pins it against the job count",
		},
	}
	t.AddRow(fmt.Sprint(rep.Machines), fmt.Sprint(rep.Workers),
		fmt.Sprint(rep.Jobs), fmt.Sprint(rep.Completed), fmt.Sprint(rep.Unfinished),
		fmt.Sprintf("%.1f", float64(rep.Cycles)/1e6),
		fmt.Sprintf("%.1f", rep.MeanResponseCycles/1000), fmt.Sprintf("%.1f", rep.P95ResponseCycles/1000),
		f3(rep.ANTT), f3(rep.STP), f3(rep.MeanLive), f3(rep.Imbalance))
	return t, nil
}
