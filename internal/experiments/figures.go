package experiments

import (
	"fmt"
	"sort"

	"synpa/internal/apps"
	"synpa/internal/characterize"
	"synpa/internal/machine"
	"synpa/internal/metrics"
	"synpa/internal/pmu"
	"synpa/internal/pool"
	"synpa/internal/stats"
	"synpa/internal/workload"
)

// isoProfile caches one application's isolated characterization.
type isoProfile struct {
	agg       pmu.Counters
	breakdown characterize.Breakdown
}

// isolatedProfiles characterizes all 28 applications in isolation (the data
// behind Fig. 4 and Table III), once, fanning the independent isolated runs
// out over CPUs.
func (s *Suite) isolatedProfiles() (map[string]isoProfile, error) {
	s.isoOnce.Do(func() {
		catalog := apps.Catalog()
		profiles := make([]isoProfile, len(catalog))
		s.isoErr = pool.Run(len(catalog), s.cfg.Parallel, func(i int) error {
			m := catalog[i]
			samples, err := machine.RunIsolated(m, s.cfg.Seed^hashString(m.Name), s.cfg.RefQuanta, s.cfg.Machine)
			if err != nil {
				return err
			}
			var agg pmu.Counters
			for _, smp := range samples {
				agg = agg.Add(smp)
			}
			profiles[i] = isoProfile{
				agg:       agg,
				breakdown: characterize.FromCounters(agg, s.cfg.Machine.Core.DispatchWidth),
			}
			return nil
		})
		if s.isoErr != nil {
			return
		}
		s.iso = make(map[string]isoProfile, len(catalog))
		for i, m := range catalog {
			s.iso[m.Name] = profiles[i]
		}
	})
	return s.iso, s.isoErr
}

// TableI lists the four hardware events of paper Table I.
func (s *Suite) TableI() (*Table, error) {
	t := &Table{
		Title:  "Table I: hardware events gathered in the ARM processor",
		Header: []string{"Counter name", "Explanation"},
	}
	t.AddRow("CPU_CYCLES", "Cycles")
	t.AddRow("INST_SPEC", "Operation (speculatively) executed")
	t.AddRow("STALL_FRONTEND", "Cycles on which no operation is dispatched because there is no operation in the queue")
	t.AddRow("STALL_BACKEND", "Cycles on which no operation is dispatched due to backend resources being unavailable")
	t.Notes = append(t.Notes, "emulated by internal/pmu with exact zero-dispatch stall semantics")
	return t, nil
}

// TableII reports the simulated machine configuration against paper
// Table II.
func (s *Suite) TableII() (*Table, error) {
	c := s.cfg.Machine.Core
	t := &Table{
		Title:  "Table II: experimental processor configuration",
		Header: []string{"Parameter", "Simulated", "Paper (ThunderX2 CN9975)"},
	}
	t.AddRow("SMT threads/core", fmt.Sprint(2), "2 (SMT4 configured as SMT2)")
	t.AddRow("Dispatch width", fmt.Sprint(c.DispatchWidth), "4")
	t.AddRow("ROB size", fmt.Sprint(c.ROBSize), "128 entries")
	t.AddRow("IQ size", fmt.Sprint(c.IQSize), "60 entries")
	t.AddRow("Load/Store buffer", fmt.Sprintf("%d/%d", c.LDQSize, c.STQSize), "64/36 entries")
	t.AddRow("Cores used", fmt.Sprint(s.cfg.Machine.Cores), "4 of 28 (8-app workloads)")
	t.AddRow("Quantum", fmt.Sprintf("%d cycles", s.cfg.Machine.QuantumCycles), "100 ms")
	return t, nil
}

// Fig2 shows the three-step characterization of one application's isolated
// execution (paper Fig. 2).
func (s *Suite) Fig2(appName string) (*Table, error) {
	iso, err := s.isolatedProfiles()
	if err != nil {
		return nil, err
	}
	p, ok := iso[appName]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown application %q", appName)
	}
	b := p.breakdown
	total := float64(b.Cycles)
	t := &Table{
		Title:  fmt.Sprintf("Fig 2: three-step cycle characterization at dispatch (%s, isolated)", appName),
		Header: []string{"Step", "Category", "Cycles", "% of cycles"},
	}
	t.AddRow("1 (measured)", "Frontend stalls (FEs)", fmt.Sprint(b.FEStalls), pct(float64(b.FEStalls)/total))
	t.AddRow("1 (measured)", "Backend stalls (BEs)", fmt.Sprint(b.BEStalls), pct(float64(b.BEStalls)/total))
	t.AddRow("1 (measured)", "Dispatch cycles (Dc)", fmt.Sprint(b.DispCycle), pct(float64(b.DispCycle)/total))
	t.AddRow("2 (estimated)", "Full-dispatch cycles (F-Dc)", fmt.Sprintf("%.0f", b.FullDispatch), pct(b.FullDispatch/total))
	t.AddRow("2 (estimated)", "Revealed stalls (Reveals)", fmt.Sprintf("%.0f", b.Revealed), pct(b.Revealed/total))
	t.AddRow("3 (final)", "Full-dispatch", "", pct(b.FD))
	t.AddRow("3 (final)", "Frontend stalls", "", pct(b.FE))
	t.AddRow("3 (final)", "Backend stalls (incl. Reveals)", "", pct(b.BE))
	t.Notes = append(t.Notes,
		"Step 1 sums below 100% because partially-filled dispatch cycles hide horizontal waste",
		"Step 3 categories always sum to 100%")
	return t, nil
}

// Fig4 reports the isolated-execution characterization of all 28
// applications (paper Fig. 4).
func (s *Suite) Fig4() (*Table, error) {
	iso, err := s.isolatedProfiles()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 4: characterization of the applications in isolated execution",
		Header: []string{"Application", "Full-dispatch", "Frontend stalls", "Backend stalls", "IPC"},
	}
	for _, name := range sortedAppNames(apps.Catalog()) {
		b := iso[name].breakdown
		ipc := 0.0
		if b.Cycles > 0 {
			ipc = float64(b.Retired) / float64(b.Cycles)
		}
		t.AddRow(name, pct(b.FD), pct(b.FE), pct(b.BE), f3(ipc))
	}
	return t, nil
}

// TableIII groups the applications by their dominant dispatch-stall
// category (paper Table III) and cross-checks the catalogue labels.
func (s *Suite) TableIII() (*Table, error) {
	iso, err := s.isolatedProfiles()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table III: benchmark groups (backend stalls > 65%, frontend stalls > 35%)",
		Header: []string{"Group", "Application", "Backend stalls", "Frontend stalls", "Matches paper"},
	}
	for _, g := range []apps.Group{apps.GroupBackend, apps.GroupFrontend, apps.GroupOther} {
		for _, m := range apps.ByGroup(g) {
			b := iso[m.Name].breakdown
			match := "yes"
			if b.Group() != m.Group.String() {
				match = "NO"
			}
			t.AddRow(g.String(), m.Name, pct(b.BE), pct(b.FE), match)
		}
	}
	return t, nil
}

// TableIV reports the trained model coefficients and MSE per category
// (paper Table IV and §VI-A) with the paper's values alongside.
func (s *Suite) TableIV() (*Table, error) {
	model, rep, err := s.Model()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table IV: model coefficients for the three categories",
		Header: []string{"Category", "alpha", "beta", "gamma", "rho", "MSE", "R^2"},
	}
	for k, name := range model.Categories {
		c := model.Coef[k]
		t.AddRow(name, f4(c.Alpha), f4(c.Beta), f4(c.Gamma), f4(c.Rho), f4(rep.MSE[k]), f3(rep.R2[k]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("trained on %d apps, %d SMT pairs, %d aligned quantum samples", rep.Apps, rep.Pairs, rep.Samples),
		"paper (ThunderX2): FD a=0.0072 b=0.9060 g=0.0044 r=0.0314 MSE=0.0021; FE a=0.2376 b=1.4111 MSE=0.0703; BE a=0.2069 b=0.3431 g=1.4391 MSE=0.1583",
		"expected shape: MSE(FD) << MSE(FE) < MSE(BE); BE most co-runner-sensitive; FE self-driven")
	return t, nil
}

// groupOrder fixes the presentation order of workloads: be0-4, fe0-4, fb0-9.
func (s *Suite) orderedWorkloads() []workload.Workload {
	ws := append([]workload.Workload(nil), s.workloads...)
	sort.SliceStable(ws, func(i, j int) bool {
		if ws[i].Kind != ws[j].Kind {
			return ws[i].Kind < ws[j].Kind
		}
		return ws[i].Name < ws[j].Name
	})
	return ws
}

// ttSpeedup computes the TT speedup of SYNPA over Linux for one workload,
// aggregating repetitions with the paper's outlier-discarding mean.
func (s *Suite) ttSpeedup(w workload.Workload) (float64, error) {
	linux, synpa, err := s.policies()
	if err != nil {
		return 0, err
	}
	var ttL, ttS []float64
	for rep := 0; rep < s.cfg.Reps; rep++ {
		rl, err := s.Run(w, linux, rep)
		if err != nil {
			return 0, err
		}
		rs, err := s.Run(w, synpa, rep)
		if err != nil {
			return 0, err
		}
		tl, err := metrics.TurnaroundCycles(rl)
		if err != nil {
			return 0, err
		}
		ts, err := metrics.TurnaroundCycles(rs)
		if err != nil {
			return 0, err
		}
		ttL = append(ttL, float64(tl))
		ttS = append(ttS, float64(ts))
	}
	ml, _, _ := stats.RobustMean(ttL, 0.05, 3)
	ms, _, _ := stats.RobustMean(ttS, 0.05, 3)
	return speedup(ml, ms), nil
}

// Fig5 reports the turnaround-time speedup of SYNPA over Linux for the
// twenty workloads plus per-group averages (paper Fig. 5).
func (s *Suite) Fig5() (*Table, error) {
	if err := s.runAllPairs(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 5: speedup of the turnaround time over Linux",
		Header: []string{"Workload", "Kind", "TT speedup"},
	}
	groupVals := map[workload.Kind][]float64{}
	for _, w := range s.orderedWorkloads() {
		sp, err := s.ttSpeedup(w)
		if err != nil {
			return nil, err
		}
		groupVals[w.Kind] = append(groupVals[w.Kind], sp)
		t.AddRow(w.Name, w.Kind.String(), f3(sp))
	}
	for _, k := range []workload.Kind{workload.Backend, workload.Frontend, workload.Mixed} {
		t.AddRow("avg-"+k.String(), k.String(), f3(stats.Mean(groupVals[k])))
	}
	t.Notes = append(t.Notes,
		"paper shape: mixed avg ~1.36 (up to 1.55 on fb2) > backend avg ~1.18 > frontend avg ~1.08",
		fmt.Sprintf("aggregated over %d repetition(s) with <5%% CV outlier discard", s.cfg.Reps))
	return t, nil
}

// appAggregateUntilCompletion sums an application's per-quantum samples up
// to (and including) its completion quantum.
func appAggregateUntilCompletion(res *machine.Result, app int) pmu.Counters {
	var agg pmu.Counters
	lastQ := res.Apps[app].CompletedAtQuantum
	if lastQ < 0 || lastQ >= len(res.Samples) {
		lastQ = len(res.Samples) - 1
	}
	for q := 0; q <= lastQ; q++ {
		agg = agg.Add(res.Samples[q][app])
	}
	return agg
}

// Fig6 reports the per-application category characterization of a workload
// under Linux and SYNPA (paper Fig. 6, shown for be1, fe2 and fb2).
func (s *Suite) Fig6(workloadName string) (*Table, error) {
	w, err := workload.ByName(s.cfg.Seed, workloadName)
	if err != nil {
		return nil, err
	}
	linux, synpa, err := s.policies()
	if err != nil {
		return nil, err
	}
	rl, err := s.Run(w, linux, 0)
	if err != nil {
		return nil, err
	}
	rs, err := s.Run(w, synpa, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Fig 6: characterization of the 8 applications of %s (left Linux, right SYNPA)", workloadName),
		Header: []string{"App", "Name",
			"L:FD", "L:FE", "L:BE", "L:TT(norm)",
			"S:FD", "S:FE", "S:BE", "S:TT(norm)"},
	}
	width := s.cfg.Machine.Core.DispatchWidth
	ttL, _ := rl.TurnaroundCycles()
	ttS, _ := rs.TurnaroundCycles()
	for i := range w.Apps {
		bl := characterize.FromCounters(appAggregateUntilCompletion(rl, i), width)
		bs := characterize.FromCounters(appAggregateUntilCompletion(rs, i), width)
		t.AddRow(fmt.Sprintf("%02d", i), w.Apps[i].Name,
			pct(bl.FD), pct(bl.FE), pct(bl.BE), f3(float64(rl.Apps[i].CompletedAtCycle)/float64(ttL)),
			pct(bs.FD), pct(bs.FE), pct(bs.BE), f3(float64(rs.Apps[i].CompletedAtCycle)/float64(ttS)))
	}
	t.Notes = append(t.Notes, "TT(norm): completion time normalized to the slowest application of the workload")
	return t, nil
}

// TableV reports, for fb2 under SYNPA, the percentage of quanta each
// application spends paired with each co-runner, split by the application's
// dominant behaviour in the quantum (top number: frontend-behaving; bottom:
// backend-behaving), plus the synergistic "diff. group" percentages (paper
// Table V).
func (s *Suite) TableV() (*Table, error) {
	w, err := workload.ByName(s.cfg.Seed, "fb2")
	if err != nil {
		return nil, err
	}
	_, synpa, err := s.policies()
	if err != nil {
		return nil, err
	}
	res, err := s.Run(w, synpa, 0)
	if err != nil {
		return nil, err
	}
	n := len(w.Apps)
	width := s.cfg.Machine.Core.DispatchWidth

	// counts[i][j][b]: quanta app i was paired with app j while i's
	// behaviour was frontend (b=0) or backend (b=1).
	counts := make([][][2]int, n)
	for i := range counts {
		counts[i] = make([][2]int, n)
	}
	quanta := len(res.Placements)
	if len(res.Samples) < quanta {
		quanta = len(res.Samples)
	}
	var mates []int
	for q := 0; q < quanta; q++ {
		place := res.Placements[q]
		mates = place.CoMates(mates)
		for i := 0; i < n; i++ {
			j := mates[i]
			if j < 0 {
				continue
			}
			b := characterize.FromCounters(res.Samples[q][i], width)
			if b.DominantIsBackend() {
				counts[i][j][1]++
			} else {
				counts[i][j][0]++
			}
		}
	}

	header := []string{"App", "Behaviour"}
	for j := 0; j < n; j++ {
		header = append(header, fmt.Sprintf("%02d:%s", j, w.Apps[j].Name))
	}
	header = append(header, "diff. group")
	t := &Table{
		Title:  "Table V: percentage of pairing quanta in fb2 with SYNPA (top: app behaves frontend; bottom: backend)",
		Header: header,
	}
	for i := 0; i < n; i++ {
		var feTotal, beTotal, feSyn, beSyn int
		feRow := []string{fmt.Sprintf("%02d:%s", i, w.Apps[i].Name), "frontend"}
		beRow := []string{"", "backend"}
		for j := 0; j < n; j++ {
			fe := counts[i][j][0]
			be := counts[i][j][1]
			feTotal += fe
			beTotal += be
			// Synergistic: FE behaviour paired with a backend-group
			// co-runner, or BE behaviour with a frontend-group one.
			if w.Apps[j].Group == apps.GroupBackend {
				feSyn += fe
			}
			if w.Apps[j].Group == apps.GroupFrontend {
				beSyn += be
			}
			feRow = append(feRow, pct(float64(fe)/float64(quanta)))
			beRow = append(beRow, pct(float64(be)/float64(quanta)))
		}
		feRow = append(feRow, pctOf(feSyn, feTotal))
		beRow = append(beRow, pctOf(beSyn, beTotal))
		t.Rows = append(t.Rows, feRow, beRow)
	}
	t.Notes = append(t.Notes,
		"diff. group: fraction of an app's FE-behaving (resp. BE-behaving) quanta spent with a backend-bound (resp. frontend-bound) co-runner — the paper's green cells")
	return t, nil
}

func pctOf(a, b int) string {
	if b == 0 {
		return "-"
	}
	return pct(float64(a) / float64(b))
}

// Fig7 reports the dynamic per-quantum characterization of the two leela_r
// instances of fb2 (apps 04 and 05) under Linux and SYNPA (paper Fig. 7),
// sampled to a readable number of rows, plus per-instance summaries.
func (s *Suite) Fig7() (*Table, error) {
	w, err := workload.ByName(s.cfg.Seed, "fb2")
	if err != nil {
		return nil, err
	}
	linux, synpa, err := s.policies()
	if err != nil {
		return nil, err
	}
	width := s.cfg.Machine.Core.DispatchWidth
	t := &Table{
		Title:  "Fig 7: dynamic characterization of the two leela_r instances of fb2",
		Header: []string{"Policy", "App", "Quantum", "FD", "FE", "BE", "Co-runner", "Co dominant"},
	}
	for _, pol := range []PolicyFactory{linux, synpa} {
		res, err := s.Run(w, pol, 0)
		if err != nil {
			return nil, err
		}
		for _, app := range []int{4, 5} {
			lastQ := res.Apps[app].CompletedAtQuantum
			if lastQ < 0 {
				lastQ = len(res.Samples) - 1
			}
			step := lastQ/8 + 1
			for q := 0; q <= lastQ; q += step {
				b := characterize.FromCounters(res.Samples[q][app], width)
				co := res.Placements[q].CoMate(app)
				coName, coDom := "-", "-"
				if co >= 0 {
					coName = fmt.Sprintf("%02d:%s", co, w.Apps[co].Name)
					cb := characterize.FromCounters(res.Samples[q][co], width)
					if cb.DominantIsBackend() {
						coDom = "backend"
					} else {
						coDom = "frontend"
					}
				}
				t.AddRow(pol.Label, fmt.Sprintf("leela_r(%02d)", app), fmt.Sprint(q),
					pct(b.FD), pct(b.FE), pct(b.BE), coName, coDom)
			}
			agg := characterize.FromCounters(appAggregateUntilCompletion(res, app), width)
			t.AddRow(pol.Label, fmt.Sprintf("leela_r(%02d)", app), "SUMMARY",
				pct(agg.FD), pct(agg.FE), pct(agg.BE),
				fmt.Sprintf("TT=%d quanta", res.Apps[app].CompletedAtQuantum+1), "")
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: under SYNPA both instances behave alike (higher FD, ~1/3 lower BE); under Linux one instance is ~15% slower than the other")
	return t, nil
}

// workloadSpeedupsAndFairness computes per-rep fairness and IPC for one
// workload under one policy.
func (s *Suite) fairnessAndIPC(w workload.Workload, policy PolicyFactory) (fair, ipc float64, err error) {
	isoIPC, err := s.targets.IsolatedIPCs(w)
	if err != nil {
		return 0, 0, err
	}
	var fairs, ipcs []float64
	for rep := 0; rep < s.cfg.Reps; rep++ {
		res, err := s.Run(w, policy, rep)
		if err != nil {
			return 0, 0, err
		}
		sp, err := metrics.IndividualSpeedups(res, isoIPC)
		if err != nil {
			return 0, 0, err
		}
		fair, err := metrics.Fairness(sp)
		if err != nil {
			return 0, 0, err
		}
		fairs = append(fairs, fair)
		g, err := metrics.GeomeanIPC(res)
		if err != nil {
			return 0, 0, err
		}
		ipcs = append(ipcs, g)
	}
	mf, _, _ := stats.RobustMean(fairs, 0.05, 2)
	mi, _, _ := stats.RobustMean(ipcs, 0.05, 2)
	return mf, mi, nil
}

// Fig8 compares the fairness of Linux and SYNPA per workload (paper Fig. 8).
func (s *Suite) Fig8() (*Table, error) {
	if err := s.runAllPairs(); err != nil {
		return nil, err
	}
	linux, synpa, err := s.policies()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 8: fairness comparison of Linux and SYNPA",
		Header: []string{"Workload", "Kind", "Linux", "SYNPA", "SYNPA/Linux"},
	}
	groupL := map[workload.Kind][]float64{}
	groupS := map[workload.Kind][]float64{}
	for _, w := range s.orderedWorkloads() {
		fl, _, err := s.fairnessAndIPC(w, linux)
		if err != nil {
			return nil, err
		}
		fs, _, err := s.fairnessAndIPC(w, synpa)
		if err != nil {
			return nil, err
		}
		groupL[w.Kind] = append(groupL[w.Kind], fl)
		groupS[w.Kind] = append(groupS[w.Kind], fs)
		t.AddRow(w.Name, w.Kind.String(), f3(fl), f3(fs), f3(speedup(fs, fl)))
	}
	for _, k := range []workload.Kind{workload.Backend, workload.Frontend, workload.Mixed} {
		t.AddRow("avg-"+k.String(), k.String(),
			f3(stats.Mean(groupL[k])), f3(stats.Mean(groupS[k])),
			f3(speedup(stats.Mean(groupS[k]), stats.Mean(groupL[k]))))
	}
	t.Notes = append(t.Notes,
		"paper shape: SYNPA fairer everywhere; largest gains on mixed (up to ~48% on fb2, ~25% avg); frontend near parity with the highest absolute fairness")
	return t, nil
}

// Fig9 reports the IPC speedup (geometric mean over the workload's apps) of
// SYNPA over Linux (paper Fig. 9).
func (s *Suite) Fig9() (*Table, error) {
	if err := s.runAllPairs(); err != nil {
		return nil, err
	}
	linux, synpa, err := s.policies()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 9: speedup of IPC (geomean) over Linux",
		Header: []string{"Workload", "Kind", "IPC speedup"},
	}
	group := map[workload.Kind][]float64{}
	for _, w := range s.orderedWorkloads() {
		_, il, err := s.fairnessAndIPC(w, linux)
		if err != nil {
			return nil, err
		}
		_, is, err := s.fairnessAndIPC(w, synpa)
		if err != nil {
			return nil, err
		}
		sp := speedup(is, il)
		group[w.Kind] = append(group[w.Kind], sp)
		t.AddRow(w.Name, w.Kind.String(), f3(sp))
	}
	for _, k := range []workload.Kind{workload.Backend, workload.Frontend, workload.Mixed} {
		t.AddRow("avg-"+k.String(), k.String(), f3(stats.Mean(group[k])))
	}
	t.Notes = append(t.Notes,
		"paper shape: IPC gains much smaller than TT gains; mixed best (~1.022 avg), frontend ~1.008")
	return t, nil
}
