package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func exportTable() *Table {
	t := &Table{
		Title:  "export test",
		Header: []string{"Workload", "Speedup"},
		Notes:  []string{"a note"},
	}
	t.AddRow("fb2", "1.000")
	t.AddRow("fb3", "1.398")
	return t
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title  string              `json:"title"`
		Header []string            `json:"header"`
		Rows   []map[string]string `json:"rows"`
		Notes  []string            `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "export test" || len(decoded.Rows) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Rows[1]["Workload"] != "fb3" || decoded.Rows[1]["Speedup"] != "1.398" {
		t.Fatalf("row 1 = %v", decoded.Rows[1])
	}
	if len(decoded.Notes) != 1 {
		t.Fatalf("notes = %v", decoded.Notes)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, note, header, 2 rows
		t.Fatalf("CSV has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "# export test") {
		t.Fatalf("missing title comment: %q", lines[0])
	}
	if lines[2] != "Workload,Speedup" {
		t.Fatalf("header = %q", lines[2])
	}
	if lines[4] != "fb3,1.398" {
		t.Fatalf("row = %q", lines[4])
	}
}

func TestWriteCSVPadsShortRows(t *testing.T) {
	tab := &Table{Header: []string{"a", "b", "c"}}
	tab.AddRow("only")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only,,") {
		t.Fatalf("short row not padded:\n%s", buf.String())
	}
}
