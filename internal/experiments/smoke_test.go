package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// fastConfig shrinks everything for unit tests: short quanta, short
// reference intervals, one repetition.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Machine.QuantumCycles = 8_000
	cfg.RefQuanta = 30
	cfg.Reps = 1
	cfg.Train.Machine = cfg.Machine
	cfg.Train.IsolatedQuanta = 50
	cfg.Train.PairQuanta = 35
	cfg.Train.SampleFrac = 1.0
	return cfg
}

func TestStaticTables(t *testing.T) {
	s := NewSuite(fastConfig())
	t1, err := s.TableI()
	if err != nil || len(t1.Rows) != 4 {
		t.Fatalf("TableI: %v rows=%d", err, len(t1.Rows))
	}
	t2, err := s.TableII()
	if err != nil || len(t2.Rows) < 5 {
		t.Fatalf("TableII: %v", err)
	}
	if !strings.Contains(t2.String(), "128") {
		t.Fatal("TableII missing ROB size")
	}
}

func TestFig5ShapeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	s := NewSuite(fastConfig())
	tab, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)

	var avg = map[string]float64{}
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "avg-") {
			var v float64
			if _, err := fmtSscan(row[2], &v); err != nil {
				t.Fatal(err)
			}
			avg[row[0]] = v
		}
	}
	if len(avg) != 3 {
		t.Fatalf("missing group averages: %v", avg)
	}
	// The paper's headline shape: SYNPA wins on average everywhere, and
	// mixed workloads gain the most.
	for k, v := range avg {
		if v < 0.99 {
			t.Errorf("%s average speedup %.3f: SYNPA lost badly", k, v)
		}
	}
	if !(avg["avg-mixed"] > avg["avg-frontend"]) {
		t.Errorf("mixed avg %.3f should exceed frontend avg %.3f",
			avg["avg-mixed"], avg["avg-frontend"])
	}
	if avg["avg-mixed"] < 1.05 {
		t.Errorf("mixed avg speedup %.3f too small to reflect the paper's result", avg["avg-mixed"])
	}
}

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
