// Placement-throughput bench (placement-qps): the serving-path load
// generator behind the reentrant policy refactor. It records the exact
// placement queries a machine-saturating open-system run (qps-sat)
// asked the SYNPA policy to answer, then replays them through
// Policy.PlaceR at 1..N goroutines — each goroutine with its own Arena,
// all sharing one read-mostly trained policy — and reports QPS, p50 and
// p99 placement latency per cache mode (disabled, private, shared).
//
// Unlike every other experiment in this package the table reports
// wall-clock figures and is therefore NOT bit-stable across runs; it is
// excluded from the golden-digest set. What it pins instead is the
// throughput trajectory: the QPS/latency gauges land in the global
// metrics registry, so a synpa-bench -perfstat run embeds them in the
// committed BENCH_NNNN.json files.
package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/obs"
	"synpa/internal/pmu"
	"synpa/internal/predcache"
	"synpa/internal/workload"
)

// PlacementQPSOptions size the placement-throughput bench.
type PlacementQPSOptions struct {
	// MaxGoroutines is the highest concurrency level (default 4); the
	// bench runs power-of-two goroutine counts 1, 2, 4, ... up to it.
	MaxGoroutines int
	// Passes is how many times each measurement replays the recorded
	// query log (default 32). Every goroutine first replays the log once
	// untimed — the cold pass that pays the cache misses — so the timed
	// passes measure the steady-state serving path.
	Passes int
	// MaxQueries caps the recorded query log (default 256), downsampled
	// evenly so the replay still spans the whole run's live-set shapes.
	MaxQueries int
}

func (o PlacementQPSOptions) withDefaults() PlacementQPSOptions {
	if o.MaxGoroutines <= 0 {
		o.MaxGoroutines = 4
	}
	if o.Passes <= 0 {
		o.Passes = 32
	}
	if o.MaxQueries <= 0 {
		o.MaxQueries = 256
	}
	return o
}

// queryRecorder wraps the policy driving the recording run and deep-copies
// every QuantumState it is asked to place. The runner owns and reuses the
// state's slices across quanta (machine.Policy contract), so retaining
// them for replay requires copying everything: Samples copies deeply by
// value (pmu.Counters is an array, not a slice).
type queryRecorder struct {
	inner   machine.Policy
	queries *[]machine.QuantumState
}

func (r queryRecorder) Name() string { return r.inner.Name() }

func (r queryRecorder) Place(st *machine.QuantumState) machine.Placement {
	q := *st
	q.AppIDs = append([]int(nil), st.AppIDs...)
	q.Prev = append(machine.Placement(nil), st.Prev...)
	q.Samples = append([]pmu.Counters(nil), st.Samples...)
	q.Priorities = append([]int(nil), st.Priorities...)
	*r.queries = append(*r.queries, q)
	return r.inner.Place(st)
}

// qpsTrace is the recording scenario: the fleet application mix arriving
// all at once, sized to keep the machine's hardware threads fully occupied
// for most of the run. A placement server earns its keep on busy machines
// — an underloaded trace (dyn2's two-to-four live apps) measures the
// matcher floor, not the model path the cache accelerates.
func qpsTrace(cfg machine.Config) workload.Trace {
	pool := fleetPool()
	tr := workload.Trace{Name: "qps-sat"}
	n := cfg.Cores * cfg.ThreadsPerCore()
	for i := 0; i < n; i++ {
		tr.Entries = append(tr.Entries, workload.TraceEntry{App: pool[i%len(pool)], ArriveAt: 0, Work: 1})
	}
	return tr
}

// recordQueries runs the saturating scenario under a recording SYNPA
// policy and returns the model-driven placement queries it answered
// (decisions with PMU samples; the first quantum's sample-less call is
// arrival-order and exercises no model path worth benchmarking).
func (s *Suite) recordQueries(model *core.Model, max int) ([]machine.QuantumState, error) {
	var recorded []machine.QuantumState
	factory := PolicyFactory{Label: "SYNPA-recorded", New: func() machine.Policy {
		return queryRecorder{
			inner:   core.MustPolicy(model, core.PolicyOptions{}),
			queries: &recorded,
		}
	}}
	if _, err := s.runDynamic(qpsTrace(s.cfg.Machine), factory); err != nil {
		return nil, err
	}

	live := recorded[:0]
	for _, q := range recorded {
		if q.Samples != nil && q.NumApps >= 2 {
			live = append(live, q)
		}
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("experiments: placement-qps recorded no model-driven queries")
	}
	if len(live) > max {
		// Even deterministic downsample: index i of the cap maps to
		// position i*len/max, preserving the run's arc (ramp-up, steady
		// state, drain) in the replayed mix.
		sampled := make([]machine.QuantumState, max)
		for i := range sampled {
			sampled[i] = live[i*len(live)/max]
		}
		live = sampled
	}
	return live, nil
}

// qpsMeasurement is one (cache mode, goroutine count) cell.
type qpsMeasurement struct {
	mode    string
	g       int
	qps     float64
	p50     time.Duration
	p99     time.Duration
	invHit  float64
	queries int
}

// qpsReps is how many times each cell's measurement repeats; the cell
// reports the best repetition. Wall-clock microbenches over
// millisecond-scale windows are scheduler-noise-bound, and best-of-K is
// the standard estimator for the machine's actual serving capacity.
const qpsReps = 3

// replay measures one cell: a fresh cold policy in the given cache mode,
// g goroutines each replaying its round-robin share of the query log
// passes times through its own arena, best of qpsReps repetitions. Each
// repetition's goroutines first replay their share once untimed — the
// cold pass that populates the memos and the smoothing history — so the
// timed window measures steady-state serving throughput, which is what a
// placement server's QPS is. (The cold cost is visible anyway: it is
// exactly one uncached pass, and the nocache rows price an uncached
// placement directly.)
func replay(model *core.Model, queries []machine.QuantumState, mode string, g, passes int) (qpsMeasurement, error) {
	opt := core.PolicyOptions{}
	if mode == "nocache" {
		opt.Cache.Disabled = true
	}
	p, err := core.NewPolicy(model, opt)
	if err != nil {
		return qpsMeasurement{}, err
	}
	if mode == "shared" {
		p.SetSharedCache(predcache.NewShared(predcache.Options{}, 0))
	}

	best := qpsMeasurement{}
	for rep := 0; rep < qpsReps; rep++ {
		m := replayOnce(p, queries, mode, g, passes)
		if m.qps > best.qps {
			best = m
		}
	}
	return best, nil
}

// replayOnce runs one timed repetition of a cell against an existing
// policy and returns its measurement.
func replayOnce(p *core.Policy, queries []machine.QuantumState, mode string, g, passes int) qpsMeasurement {
	total := len(queries) * passes
	lats := make([][]time.Duration, g)
	var invHits, invMisses uint64
	var statMu sync.Mutex

	// Two-phase run: every goroutine warms its arena with one untimed
	// pass, then blocks on the start gate so the timed window opens with
	// all workers warm and ready at once.
	var warmed, wg sync.WaitGroup
	startGate := make(chan struct{})
	for gi := 0; gi < g; gi++ {
		warmed.Add(1)
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			a := p.NewArena()
			for qi := gi; qi < len(queries); qi += g {
				st := queries[qi]
				p.PlaceR(a, &st)
			}
			warmed.Done()
			<-startGate
			lat := make([]time.Duration, 0, total/g+passes)
			for pass := 0; pass < passes; pass++ {
				for qi := gi; qi < len(queries); qi += g {
					// Copy the struct header so goroutines never share a
					// *QuantumState; the recorded slices behind it are
					// read-only to PlaceR.
					st := queries[qi]
					t0 := time.Now()
					p.PlaceR(a, &st)
					lat = append(lat, time.Since(t0))
				}
			}
			lats[gi] = lat
			inv, _ := a.CacheStats()
			statMu.Lock()
			invHits += inv.Hits
			invMisses += inv.Misses
			statMu.Unlock()
		}(gi)
	}
	warmed.Wait()
	start := time.Now()
	close(startGate)
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	m := qpsMeasurement{
		mode:    mode,
		g:       g,
		qps:     float64(len(all)) / wall.Seconds(),
		p50:     all[len(all)/2],
		p99:     all[len(all)*99/100],
		queries: len(all),
	}
	if t := invHits + invMisses; t > 0 {
		m.invHit = float64(invHits) / float64(t)
	}
	return m
}

// PlacementQPS runs the placement-throughput bench with default sizing.
func (s *Suite) PlacementQPS() (*Table, error) {
	return s.PlacementQPSOpt(PlacementQPSOptions{})
}

// PlacementQPSOpt runs the placement-throughput bench: record once, then
// replay under every cache mode at every goroutine count. The serving
// claim it quantifies: with the prediction memo warm, the reentrant path
// answers placement queries several times faster than a cache-disabled
// policy, and throughput scales with goroutines because the policy is
// read-mostly and all decision state lives in per-request arenas.
func (s *Suite) PlacementQPSOpt(opt PlacementQPSOptions) (*Table, error) {
	opt = opt.withDefaults()
	model, _, err := s.Model()
	if err != nil {
		return nil, err
	}
	queries, err := s.recordQueries(model, opt.MaxQueries)
	if err != nil {
		return nil, err
	}

	var gcounts []int
	for g := 1; g <= opt.MaxGoroutines; g *= 2 {
		gcounts = append(gcounts, g)
	}
	if last := gcounts[len(gcounts)-1]; last != opt.MaxGoroutines {
		gcounts = append(gcounts, opt.MaxGoroutines)
	}

	var ms []qpsMeasurement
	for _, mode := range []string{"nocache", "private", "shared"} {
		for _, g := range gcounts {
			m, err := replay(model, queries, mode, g, opt.Passes)
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
	}

	// Baseline: the uncached single-goroutine path — what every placement
	// cost before this engine existed.
	var base float64
	for _, m := range ms {
		if m.mode == "nocache" && m.g == 1 {
			base = m.qps
		}
	}

	reg := obs.Global()
	t := &Table{
		Title:  "Placement throughput: reentrant serving path (placement-qps)",
		Header: []string{"Mode", "Goroutines", "Placements", "QPS", "p50(us)", "p99(us)", "InvHit", "Speedup"},
		Notes: []string{
			fmt.Sprintf("%d recorded qps-sat queries x %d timed passes per cell; fresh policy per cell, one untimed warm-up pass per goroutine", len(queries), opt.Passes),
			"wall-clock figures - not bit-stable; QPS/p50/p99 land in the metrics registry for BENCH embedding",
			"Speedup is QPS over the nocache single-goroutine baseline",
		},
	}
	for _, m := range ms {
		t.AddRow(m.mode, fmt.Sprint(m.g), fmt.Sprint(m.queries),
			fmt.Sprintf("%.0f", m.qps),
			fmt.Sprintf("%.1f", float64(m.p50.Nanoseconds())/1e3),
			fmt.Sprintf("%.1f", float64(m.p99.Nanoseconds())/1e3),
			pct(m.invHit), f3(speedup(m.qps, base)))
		prefix := fmt.Sprintf("placementqps.%s.g%d", m.mode, m.g)
		reg.Gauge(prefix + ".qps").Set(int64(m.qps))
		reg.Gauge(prefix + ".p50_ns").Set(m.p50.Nanoseconds())
		reg.Gauge(prefix + ".p99_ns").Set(m.p99.Nanoseconds())
	}
	return t, nil
}
