//go:build !race

// The suite-level parallel differential: full fig5/table4/dynamic-table
// reproduction at two worker counts. It re-runs the whole scaled
// evaluation twice, so it is excluded from -race runs (the race-enabled
// concurrency differentials live at the machine and synpa layers, which
// exercise the same sharded engine in seconds).
package experiments

import (
	"reflect"
	"testing"
)

// workersConfig is fastConfig with intra-run worker sharding enabled at
// the given count: suite-level fan-out is disabled so the per-run worker
// pool is the only parallelism.
func workersConfig(workers int) Config {
	cfg := fastConfig()
	cfg.Parallel = false
	cfg.Machine.Parallel = true
	cfg.Machine.Workers = workers
	return cfg
}

// TestSuiteWorkersBitIdentical asserts that the paper's headline tables —
// the trained coefficients (table4), the per-workload turnaround speedups
// (fig5) and the dyn0-dyn4 open-system table — are bit-identical between
// Workers=1 and Workers=4.
func TestSuiteWorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	type outputs struct {
		table4, fig5, dyn [][]string
	}
	collect := func(workers int) outputs {
		s := NewSuite(workersConfig(workers))
		t4, err := s.TableIV()
		if err != nil {
			t.Fatal(err)
		}
		f5, err := s.Fig5()
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := s.DynamicTable()
		if err != nil {
			t.Fatal(err)
		}
		return outputs{table4: t4.Rows, fig5: f5.Rows, dyn: dyn.Rows}
	}
	serial := collect(1)
	parallel := collect(4)
	if !reflect.DeepEqual(serial.table4, parallel.table4) {
		t.Fatal("table4 rows diverge between Workers=1 and Workers=4")
	}
	if !reflect.DeepEqual(serial.fig5, parallel.fig5) {
		t.Fatal("fig5 rows diverge between Workers=1 and Workers=4")
	}
	if !reflect.DeepEqual(serial.dyn, parallel.dyn) {
		t.Fatal("dynamic table rows diverge between Workers=1 and Workers=4")
	}
}
