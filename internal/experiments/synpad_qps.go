// Served-placement throughput bench (synpad-qps): the HTTP sibling of
// placement-qps. It records the same saturating query log, then stands up a
// real placement server (internal/serve) on a loopback listener and replays
// the queries as POST /v1/place requests at 1..N client goroutines, per
// cache mode. The spread between a placement-qps cell and its synpad-qps
// counterpart is exactly the serving tax — JSON codec, HTTP framing, kernel
// loopback — which is the number a deployment needs before deciding whether
// to colocate the policy or call a daemon.
//
// Like placement-qps this reports wall-clock figures and is excluded from
// the golden-digest set; the QPS/latency gauges land in the global metrics
// registry so a -perfstat run embeds them in the committed BENCH_NNNN.json.
package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"synpa/internal/core"
	"synpa/internal/obs"
	"synpa/internal/serve"
)

// synpadDefaults sizes the HTTP bench: fewer passes than the in-process
// bench because every query pays a kernel round trip.
func synpadDefaults(opt PlacementQPSOptions) PlacementQPSOptions {
	if opt.MaxGoroutines <= 0 {
		opt.MaxGoroutines = 4
	}
	if opt.Passes <= 0 {
		opt.Passes = 8
	}
	if opt.MaxQueries <= 0 {
		opt.MaxQueries = 256
	}
	return opt
}

// SynpadQPS runs the served-placement bench with default sizing.
func (s *Suite) SynpadQPS() (*Table, error) {
	return s.SynpadQPSOpt(PlacementQPSOptions{})
}

// SynpadQPSOpt records the qps-sat query log once, then replays it through
// a live loopback synpad server in both cache modes at every goroutine
// count, best of qpsReps repetitions per cell.
func (s *Suite) SynpadQPSOpt(opt PlacementQPSOptions) (*Table, error) {
	opt = synpadDefaults(opt)
	model, _, err := s.Model()
	if err != nil {
		return nil, err
	}
	queries, err := s.recordQueries(model, opt.MaxQueries)
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, len(queries))
	for i := range queries {
		if bodies[i], err = json.Marshal(serve.RequestFromState(&queries[i])); err != nil {
			return nil, err
		}
	}

	var gcounts []int
	for g := 1; g <= opt.MaxGoroutines; g *= 2 {
		gcounts = append(gcounts, g)
	}
	if last := gcounts[len(gcounts)-1]; last != opt.MaxGoroutines {
		gcounts = append(gcounts, opt.MaxGoroutines)
	}

	var ms []qpsMeasurement
	for _, mode := range []string{"private", "shared"} {
		cells, err := s.synpadMode(model, bodies, mode, gcounts, opt)
		if err != nil {
			return nil, err
		}
		ms = append(ms, cells...)
	}

	var base float64
	for _, m := range ms {
		if m.mode == "private" && m.g == 1 {
			base = m.qps
		}
	}

	reg := obs.Global()
	t := &Table{
		Title:  "Served placement throughput: synpad over loopback HTTP (synpad-qps)",
		Header: []string{"Mode", "Clients", "Requests", "QPS", "p50(us)", "p99(us)", "Speedup"},
		Notes: []string{
			fmt.Sprintf("%d recorded qps-sat queries x %d timed passes per cell as POST /v1/place over 127.0.0.1; fresh server per mode, one untimed warm-up pass per client", len(queries), opt.Passes),
			"wall-clock figures - not bit-stable; QPS/p50/p99 land in the metrics registry for BENCH embedding",
			"Speedup is QPS over the private single-client cell; compare against placement-qps for the HTTP serving tax",
		},
	}
	for _, m := range ms {
		t.AddRow(m.mode, fmt.Sprint(m.g), fmt.Sprint(m.queries),
			fmt.Sprintf("%.0f", m.qps),
			fmt.Sprintf("%.1f", float64(m.p50.Nanoseconds())/1e3),
			fmt.Sprintf("%.1f", float64(m.p99.Nanoseconds())/1e3),
			f3(speedup(m.qps, base)))
		prefix := fmt.Sprintf("synpadqps.%s.g%d", m.mode, m.g)
		reg.Gauge(prefix + ".qps").Set(int64(m.qps))
		reg.Gauge(prefix + ".p50_ns").Set(m.p50.Nanoseconds())
		reg.Gauge(prefix + ".p99_ns").Set(m.p99.Nanoseconds())
	}
	return t, nil
}

// synpadMode measures every goroutine-count cell of one cache mode against
// one live server. The server outlives all the mode's cells so its memos
// warm exactly once, mirroring the per-cell warm pass of placement-qps.
func (s *Suite) synpadMode(model *core.Model, bodies [][]byte, mode string, gcounts []int, opt PlacementQPSOptions) ([]qpsMeasurement, error) {
	srv, err := serve.New(model, serve.Config{
		SharedCache:   mode == "shared",
		MaxConcurrent: 4 * opt.MaxGoroutines,
	})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	url := "http://" + l.Addr().String() + "/v1/place"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * opt.MaxGoroutines,
		MaxIdleConnsPerHost: 4 * opt.MaxGoroutines,
	}}
	defer client.CloseIdleConnections()

	var out []qpsMeasurement
	for _, g := range gcounts {
		best := qpsMeasurement{mode: mode, g: g}
		for rep := 0; rep < qpsReps; rep++ {
			m, err := synpadReplayOnce(client, url, bodies, mode, g, opt.Passes)
			if err != nil {
				return nil, err
			}
			if m.qps > best.qps {
				best = m
			}
		}
		out = append(out, best)
	}
	return out, nil
}

// synpadReplayOnce is one timed repetition of a cell: g client goroutines,
// each POSTing its round-robin share of the query bodies passes times, with
// one untimed warm pass and a start gate (the replayOnce protocol, over
// HTTP).
func synpadReplayOnce(client *http.Client, url string, bodies [][]byte, mode string, g, passes int) (qpsMeasurement, error) {
	lats := make([][]time.Duration, g)
	errs := make([]error, g)

	post := func(body []byte) error {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/place: %s", resp.Status)
		}
		return nil
	}

	var warmed, wg sync.WaitGroup
	startGate := make(chan struct{})
	for gi := 0; gi < g; gi++ {
		warmed.Add(1)
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for qi := gi; qi < len(bodies); qi += g {
				if errs[gi] = post(bodies[qi]); errs[gi] != nil {
					warmed.Done()
					return
				}
			}
			warmed.Done()
			<-startGate
			lat := make([]time.Duration, 0, len(bodies)*passes/g+passes)
			for pass := 0; pass < passes; pass++ {
				for qi := gi; qi < len(bodies); qi += g {
					t0 := time.Now()
					if errs[gi] = post(bodies[qi]); errs[gi] != nil {
						return
					}
					lat = append(lat, time.Since(t0))
				}
			}
			lats[gi] = lat
		}(gi)
	}
	warmed.Wait()
	start := time.Now()
	close(startGate)
	wg.Wait()
	wall := time.Since(start)

	for _, err := range errs {
		if err != nil {
			return qpsMeasurement{}, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return qpsMeasurement{
		mode:    mode,
		g:       g,
		qps:     float64(len(all)) / wall.Seconds(),
		p50:     all[len(all)/2],
		p99:     all[len(all)*99/100],
		queries: len(all),
	}, nil
}
