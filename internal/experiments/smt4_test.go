package experiments

import (
	"strconv"
	"testing"
)

// TestOverheadGroupingTable pins the grouping-overhead bench shape: both
// solvers produce partitions at every size and the greedy cost ratio stays
// near the exact optimum.
func TestOverheadGroupingTable(t *testing.T) {
	s := NewSuite(fastConfig())
	tab, err := s.OverheadGrouping()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 1.0-1e-9 {
			t.Fatalf("greedy cost ratio %v below exact optimum (row %v)", ratio, row)
		}
		if ratio > 1.2 {
			t.Fatalf("greedy cost ratio %v far from optimum (row %v)", ratio, row)
		}
	}
}

// TestSMT4TableEndToEnd runs the SMT2-vs-SMT4 comparison on the scaled-down
// test configuration: six rows (2 configs × 3 policies), all complete, with
// finite metrics.
func TestSMT4TableEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	s := NewSuite(fastConfig())
	tab, err := s.SMT4Table()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		tt, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if tt <= 0 {
			t.Fatalf("degenerate turnaround in row %v", row)
		}
		stp, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		// 8 hardware threads bound the throughput in isolated-app units.
		if stp <= 0 || stp > 8 {
			t.Fatalf("STP %v out of range in row %v", stp, row)
		}
	}
}
