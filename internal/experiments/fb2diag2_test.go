package experiments

import (
	"fmt"
	"testing"

	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/pmu"
	"synpa/internal/workload"
)

func TestFB2PairComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs")
	}
	cfg := DefaultConfig()
	cfg.Machine.QuantumCycles = 10_000
	cfg.RefQuanta = 60
	cfg.Reps = 1
	cfg.Train.Machine = cfg.Machine
	s := NewSuite(cfg)
	model, _, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	w, _ := workload.ByName(cfg.Seed, "fb2")
	for _, p := range []PolicyFactory{LinuxFactory(), SYNPAFactory(model, core.PolicyOptions{})} {
		res, err := s.Run(w, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Pair-type histogram by static Table III groups.
		hist := map[string]int{}
		var totalInsts uint64
		for q := range res.Placements {
			place := res.Placements[q]
			for i := 0; i < len(place); i++ {
				j := place.CoMate(i)
				if j > i {
					gi, gj := w.Apps[i].Group, w.Apps[j].Group
					key := pairKey(gi, gj)
					hist[key]++
				}
			}
			if q < len(res.Samples) {
				for a := range res.Samples[q] {
					totalInsts += res.Samples[q][a][pmu.InstRetired]
				}
			}
		}
		ipcPerQ := float64(totalInsts) / float64(res.Quanta) / float64(cfg.Machine.QuantumCycles)
		fmt.Printf("%-8s quanta=%d aggIPC=%.3f pairs=%v\n", p.Label, res.Quanta, ipcPerQ, hist)
		// fb2 has 4 backend-bound and 4 frontend-bound apps: both policies
		// must end up with (almost) exclusively complementary pairs.
		total := 0
		for _, v := range hist {
			total += v
		}
		if mixed := hist["Ba+Fr"]; float64(mixed) < 0.9*float64(total) {
			t.Errorf("%s: only %d/%d pairs complementary on fb2", p.Label, mixed, total)
		}
	}
}

func pairKey(a, b apps.Group) string {
	ga, gb := a.String()[:2], b.String()[:2]
	if ga > gb {
		ga, gb = gb, ga
	}
	return ga + "+" + gb
}
