package grouping

// The greedy solver: a cheapest-marginal-cost seeding pass followed by
// steepest-descent local search over single-application moves and pairwise
// swaps. Deterministic (fixed scan order, strict improvement) and always
// feasible — the seeding fills maxGroups capacity-level bins, which exist
// because Partition has already checked n <= maxGroups·level. The property
// tests bound its cost from below by the exact DP's optimum.
//
// The local search evaluates move candidates incrementally: sumTo caches
// each application's attachment cost to each bin, so a candidate move costs
// O(1) instead of O(level), and an *applied* move or swap recomputes only
// the two bins it touched instead of re-summing any full group cost. The
// cached evaluations are bit-identical to the direct addDelta/removeDelta
// sums — the cache accumulates the same weights in the same order (see
// the equivalence notes on refresh) — so the incremental solver applies
// exactly the moves the direct one would (differential test in
// greedy_test.go).

// localSearchRounds caps the improvement loop; every applied move strictly
// decreases the partition cost, so the cap is a safety net, not a tuning
// knob.
const localSearchRounds = 1000

func solveGreedy(w [][]float64, maxGroups, level int, solo float64) *Result {
	n := len(w)
	bins := make([][]int, maxGroups)

	// --- seeding: apps in index order, cheapest marginal bin first ------
	for i := 0; i < n; i++ {
		best, bestBin := 0.0, -1
		for b := range bins {
			if len(bins[b]) >= level {
				continue
			}
			d := addDelta(w, bins[b], i, solo)
			if bestBin < 0 || d < best {
				best, bestBin = d, b
			}
		}
		bins[bestBin] = append(bins[bestBin], i)
	}

	// sumTo[a*maxGroups+b] caches Σ_{x ∈ bins[b], x ≠ a} w[x][a], summed in
	// bin storage order. Equivalence with the direct deltas is exact:
	// addDelta's loop visits the same members in the same order (a is never
	// in the target bin, so the x ≠ a skip never fires there), and
	// removeDelta's negated skip-one sum equals -sumTo because IEEE
	// negation commutes with round-to-nearest ((0-w₁)-w₂-… ≡ -((w₁+w₂)+…)).
	// The len-2 removeDelta case solo - w[p][q] matches solo - sumTo by the
	// matrix symmetry checkMatrix enforces.
	sumTo := make([]float64, n*maxGroups)
	refresh := func(b int) {
		bin := bins[b]
		for a := 0; a < n; a++ {
			s := 0.0
			for _, x := range bin {
				if x != a {
					s += w[x][a]
				}
			}
			sumTo[a*maxGroups+b] = s
		}
	}
	for b := range bins {
		refresh(b)
	}
	addD := func(b, i int) float64 {
		switch len(bins[b]) {
		case 0:
			return solo
		case 1:
			return sumTo[i*maxGroups+b] - solo
		}
		return sumTo[i*maxGroups+b]
	}
	remD := func(b, a int) float64 {
		switch len(bins[b]) {
		case 1:
			return -solo
		case 2:
			return solo - sumTo[a*maxGroups+b]
		}
		return -sumTo[a*maxGroups+b]
	}

	// --- steepest-descent local search ----------------------------------
	const eps = 1e-12
	for round := 0; round < localSearchRounds; round++ {
		bestDelta := -eps
		kind := 0 // 1 = move, 2 = swap
		var mA, mFrom, mB, mTo int
		// Single-app moves (including into empty bins: the app goes solo).
		for fb := range bins {
			for ai := range bins[fb] {
				a := bins[fb][ai]
				rem := remD(fb, a)
				for tb := range bins {
					if tb == fb || len(bins[tb]) >= level {
						continue
					}
					if d := rem + addD(tb, a); d < bestDelta {
						bestDelta, kind = d, 1
						mA, mFrom, mTo = ai, fb, tb
					}
				}
			}
		}
		// Pairwise swaps. A candidate swap already touches only the two
		// groups involved (≤ 2(level−1) weights); its interleaved
		// difference sum has no order-preserving O(1) decomposition, so it
		// stays direct.
		for fb := range bins {
			for tb := fb + 1; tb < len(bins); tb++ {
				for ai := range bins[fb] {
					for bi := range bins[tb] {
						if d := swapDelta(w, bins[fb], ai, bins[tb], bi); d < bestDelta {
							bestDelta, kind = d, 2
							mA, mFrom, mB, mTo = ai, fb, bi, tb
						}
					}
				}
			}
		}
		switch kind {
		case 1:
			a := bins[mFrom][mA]
			bins[mFrom] = append(bins[mFrom][:mA], bins[mFrom][mA+1:]...)
			bins[mTo] = append(bins[mTo], a)
			refresh(mFrom)
			refresh(mTo)
		case 2:
			bins[mFrom][mA], bins[mTo][mB] = bins[mTo][mB], bins[mFrom][mA]
			refresh(mFrom)
			refresh(mTo)
		default:
			return finish(w, bins, solo, "greedy")
		}
	}
	return finish(w, bins, solo, "greedy")
}

// addDelta is the cost increase of adding app i to bin.
func addDelta(w [][]float64, bin []int, i int, solo float64) float64 {
	switch len(bin) {
	case 0:
		return solo
	case 1:
		return w[bin[0]][i] - solo
	}
	d := 0.0
	for _, x := range bin {
		d += w[x][i]
	}
	return d
}

// removeDelta is the cost change of removing bin[ai] from bin.
func removeDelta(w [][]float64, bin []int, ai int, solo float64) float64 {
	a := bin[ai]
	switch len(bin) {
	case 1:
		return -solo
	case 2:
		return solo - w[bin[0]][bin[1]]
	}
	d := 0.0
	for xi, x := range bin {
		if xi != ai {
			d -= w[x][a]
		}
	}
	return d
}

// swapDelta is the cost change of exchanging ga[ai] and gb[bi] between
// groups ga and gb (group sizes are preserved, so solo terms cancel).
func swapDelta(w [][]float64, ga []int, ai int, gb []int, bi int) float64 {
	a, b := ga[ai], gb[bi]
	d := 0.0
	for xi, x := range ga {
		if xi != ai {
			d += w[x][b] - w[x][a]
		}
	}
	for xi, x := range gb {
		if xi != bi {
			d += w[x][a] - w[x][b]
		}
	}
	return d
}
