package grouping

import (
	"reflect"
	"testing"

	"synpa/internal/xrand"
)

// solveGreedyReference is the direct (non-incremental) solver the
// production solveGreedy must reproduce bit-for-bit: identical seeding,
// identical candidate scan order, and per-candidate deltas computed
// directly from the weight matrix.
func solveGreedyReference(w [][]float64, maxGroups, level int, solo float64) *Result {
	n := len(w)
	bins := make([][]int, maxGroups)
	for i := 0; i < n; i++ {
		best, bestBin := 0.0, -1
		for b := range bins {
			if len(bins[b]) >= level {
				continue
			}
			d := addDelta(w, bins[b], i, solo)
			if bestBin < 0 || d < best {
				best, bestBin = d, b
			}
		}
		bins[bestBin] = append(bins[bestBin], i)
	}
	const eps = 1e-12
	for round := 0; round < localSearchRounds; round++ {
		bestDelta := -eps
		kind := 0
		var mA, mFrom, mB, mTo int
		for fb := range bins {
			for ai := range bins[fb] {
				a := bins[fb][ai]
				rem := removeDelta(w, bins[fb], ai, solo)
				for tb := range bins {
					if tb == fb || len(bins[tb]) >= level {
						continue
					}
					if d := rem + addDelta(w, bins[tb], a, solo); d < bestDelta {
						bestDelta, kind = d, 1
						mA, mFrom, mTo = ai, fb, tb
					}
				}
			}
		}
		for fb := range bins {
			for tb := fb + 1; tb < len(bins); tb++ {
				for ai := range bins[fb] {
					for bi := range bins[tb] {
						if d := swapDelta(w, bins[fb], ai, bins[tb], bi); d < bestDelta {
							bestDelta, kind = d, 2
							mA, mFrom, mB, mTo = ai, fb, bi, tb
						}
					}
				}
			}
		}
		switch kind {
		case 1:
			a := bins[mFrom][mA]
			bins[mFrom] = append(bins[mFrom][:mA], bins[mFrom][mA+1:]...)
			bins[mTo] = append(bins[mTo], a)
		case 2:
			bins[mFrom][mA], bins[mTo][mB] = bins[mTo][mB], bins[mFrom][mA]
		default:
			return finish(w, bins, solo, "greedy")
		}
	}
	return finish(w, bins, solo, "greedy")
}

// randomMatrix builds a symmetric non-negative cost matrix in the
// degradation range the policy produces (~[2, 4] per pair).
func randomMatrix(rng *xrand.RNG, n int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 2 + 2*rng.Float64()
			w[i][j], w[j][i] = v, v
		}
	}
	return w
}

// TestGreedyIncrementalMatchesReference pins the incremental local search
// to the direct reference implementation across sizes, levels and solo
// costs: identical groups and bit-identical costs.
func TestGreedyIncrementalMatchesReference(t *testing.T) {
	rng := xrand.New(0xD1FF)
	for _, n := range []int{3, 5, 8, 13, 21, 34, 48} {
		for _, level := range []int{2, 3, 4} {
			maxGroups := (n + level - 1) / level
			for pad := 0; pad < 2; pad++ {
				mg := maxGroups + pad // pad adds slack bins (solo groups allowed)
				for rep := 0; rep < 4; rep++ {
					w := randomMatrix(rng, n)
					got := solveGreedy(w, mg, level, DefaultSoloCost)
					want := solveGreedyReference(w, mg, level, DefaultSoloCost)
					if !reflect.DeepEqual(got.Groups, want.Groups) {
						t.Fatalf("n=%d level=%d mg=%d rep=%d: groups diverge\n got %v\nwant %v",
							n, level, mg, rep, got.Groups, want.Groups)
					}
					if got.Cost != want.Cost {
						t.Fatalf("n=%d level=%d mg=%d rep=%d: cost %v != %v",
							n, level, mg, rep, got.Cost, want.Cost)
					}
				}
			}
		}
	}
}
