package grouping

import (
	"math"
	"reflect"
	"testing"

	"synpa/internal/matching"
	"synpa/internal/xrand"
)

// randMatrix builds a seeded symmetric cost matrix with entries in
// [2, 2+spread) — the magnitude of real pair-degradation sums.
func randMatrix(n int, seed uint64, spread float64) [][]float64 {
	rng := xrand.New(seed)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 2 + rng.Float64()*spread
			w[i][j], w[j][i] = v, v
		}
	}
	return w
}

// checkPartition asserts structural validity: every app in exactly one
// group, group sizes within level, group count within maxGroups, canonical
// ordering, and the reported cost matching PartitionCost.
func checkPartition(t *testing.T, res *Result, n, maxGroups, level int, w [][]float64) {
	t.Helper()
	if len(res.Groups) > maxGroups {
		t.Fatalf("%d groups exceed maxGroups %d", len(res.Groups), maxGroups)
	}
	seen := make([]bool, n)
	prevFirst := -1
	for _, g := range res.Groups {
		if len(g) == 0 || len(g) > level {
			t.Fatalf("group %v has bad size (level %d)", g, level)
		}
		if g[0] <= prevFirst {
			t.Fatalf("groups not ordered by first member: %v", res.Groups)
		}
		prevFirst = g[0]
		for k, a := range g {
			if a < 0 || a >= n {
				t.Fatalf("member %d out of range", a)
			}
			if k > 0 && g[k-1] >= a {
				t.Fatalf("group %v not ascending", g)
			}
			if seen[a] {
				t.Fatalf("app %d in two groups: %v", a, res.Groups)
			}
			seen[a] = true
		}
	}
	for a, ok := range seen {
		if !ok {
			t.Fatalf("app %d unassigned: %v", a, res.Groups)
		}
	}
	if want := PartitionCost(w, res.Groups, DefaultSoloCost); res.Cost != want {
		t.Fatalf("reported cost %v != canonical cost %v", res.Cost, want)
	}
}

// TestPartitionValidation pins the error paths.
func TestPartitionValidation(t *testing.T) {
	w := randMatrix(6, 1, 2)
	if _, err := Partition(w, 1, 4, Options{}); err == nil {
		t.Fatal("6 apps on 1x4 threads accepted")
	}
	if _, err := Partition(w, 0, 2, Options{}); err == nil {
		t.Fatal("maxGroups 0 accepted")
	}
	bad := randMatrix(4, 1, 2)
	bad[1][2] = bad[2][1] + 1
	if _, err := Partition(bad, 4, 2, Options{}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	nan := randMatrix(4, 1, 2)
	nan[0][3] = math.NaN()
	nan[3][0] = math.NaN()
	if _, err := Partition(nan, 4, 2, Options{}); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if _, err := Partition(randMatrix(maxExactHard+1, 1, 2), maxExactHard+1, 4,
		Options{Solver: SolverExact}); err == nil {
		t.Fatal("oversized exact request accepted")
	}
}

// TestPartitionLevelOne pins the forced all-singleton partition.
func TestPartitionLevelOne(t *testing.T) {
	w := randMatrix(5, 3, 2)
	res, err := Partition(w, 5, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, 5, 5, 1, w)
	if res.Cost != 5*DefaultSoloCost {
		t.Fatalf("cost %v, want %v", res.Cost, 5*DefaultSoloCost)
	}
}

// TestGreedyVsExact is the cross-validation property test of the issue:
// on seeded random matrices up to n = 12, the greedy + local-search cost is
// never below the exact optimum, and stays within a sane factor of it.
func TestGreedyVsExact(t *testing.T) {
	const slack = 1e-9
	for n := 2; n <= 12; n++ {
		for _, level := range []int{3, 4} {
			for seed := uint64(0); seed < 6; seed++ {
				maxGroups := (n + level - 1) / level
				if seed%2 == 1 {
					maxGroups = n // unconstrained group count
				}
				w := randMatrix(n, 1000*uint64(n)+seed, 2+float64(seed))
				exact, err := Partition(w, maxGroups, level, Options{Solver: SolverExact})
				if err != nil {
					t.Fatal(err)
				}
				greedy, err := Partition(w, maxGroups, level, Options{Solver: SolverGreedy})
				if err != nil {
					t.Fatal(err)
				}
				checkPartition(t, exact, n, maxGroups, level, w)
				checkPartition(t, greedy, n, maxGroups, level, w)
				if greedy.Cost < exact.Cost-slack {
					t.Fatalf("n=%d L=%d seed=%d: greedy cost %v below exact optimum %v",
						n, level, seed, greedy.Cost, exact.Cost)
				}
				if greedy.Cost > exact.Cost*1.5+slack {
					t.Errorf("n=%d L=%d seed=%d: greedy cost %v far above exact %v (groups %v vs %v)",
						n, level, seed, greedy.Cost, exact.Cost, greedy.Groups, exact.Groups)
				}
			}
		}
	}
}

// TestExactMatchesBlossomAtLevelTwo cross-validates the exact subset DP
// against the blossom matcher on the L = 2 objective: identical optima
// (within the blossom's 1e-6 weight quantisation).
func TestExactMatchesBlossomAtLevelTwo(t *testing.T) {
	const tol = 1e-4
	for n := 2; n <= 12; n++ {
		for seed := uint64(0); seed < 6; seed++ {
			maxGroups := (n + 1) / 2
			if seed%2 == 1 {
				maxGroups = n
			}
			w := randMatrix(n, 77*uint64(n)+seed, 3)
			exact, err := Partition(w, maxGroups, 2, Options{Solver: SolverExact})
			if err != nil {
				t.Fatal(err)
			}
			blossom, err := Partition(w, maxGroups, 2, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if blossom.Solver != "blossom" {
				t.Fatalf("L=2 auto solver = %q, want blossom delegation", blossom.Solver)
			}
			checkPartition(t, exact, n, maxGroups, 2, w)
			checkPartition(t, blossom, n, maxGroups, 2, w)
			if math.Abs(exact.Cost-blossom.Cost) > tol {
				t.Fatalf("n=%d seed=%d: exact %v != blossom %v (groups %v vs %v)",
					n, seed, exact.Cost, blossom.Cost, exact.Groups, blossom.Groups)
			}
		}
	}
}

// TestBlossomDelegationMatchesRawMatcher pins the delegation construction:
// the groups Partition returns at L = 2 are exactly the pairs of a
// minimum-weight perfect matching on the idle-padded graph the SYNPA policy
// builds.
func TestBlossomDelegationMatchesRawMatcher(t *testing.T) {
	n, cores := 7, 4
	w := randMatrix(n, 5, 3)
	res, err := Partition(w, cores, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 2 * cores
	p := make([][]float64, total)
	for i := range p {
		p[i] = make([]float64, total)
	}
	for i := 0; i < total; i++ {
		for j := i + 1; j < total; j++ {
			var cost float64
			switch {
			case i < n && j < n:
				cost = w[i][j]
			case i < n || j < n:
				cost = DefaultSoloCost
			}
			p[i][j], p[j][i] = cost, cost
		}
	}
	mate, _, err := matching.MinWeightPerfectMatching(p)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]int
	for i := 0; i < n; i++ {
		switch m := mate[i]; {
		case m < 0 || m >= n:
			want = append(want, []int{i})
		case m > i:
			want = append(want, []int{i, m})
		}
	}
	if !reflect.DeepEqual(res.Groups, want) {
		t.Fatalf("delegated groups %v != raw matcher pairs %v", res.Groups, want)
	}
}

// TestPartitionDeterminism runs every solver twice on the same input and
// demands identical partitions.
func TestPartitionDeterminism(t *testing.T) {
	w := randMatrix(10, 9, 4)
	for _, opt := range []Options{
		{Solver: SolverExact},
		{Solver: SolverGreedy},
		{}, // auto
	} {
		a, err := Partition(w, 3, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Partition(w, 3, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("solver %v nondeterministic: %v vs %v", opt.Solver, a.Groups, b.Groups)
		}
	}
}

// TestPartitionScarceCores pins the regime SMT4 exists for: more apps than
// 2·cores forces groups beyond pairs, and the solvers must fill them.
func TestPartitionScarceCores(t *testing.T) {
	w := randMatrix(8, 11, 2)
	res, err := Partition(w, 2, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, 8, 2, 4, w)
	if len(res.Groups) != 2 || len(res.Groups[0]) != 4 || len(res.Groups[1]) != 4 {
		t.Fatalf("8 apps on 2x4 threads must form two quads, got %v", res.Groups)
	}
}

// TestGreedyLargeN smoke-tests the greedy solver beyond the exact range.
func TestGreedyLargeN(t *testing.T) {
	n := 40
	w := randMatrix(n, 13, 3)
	res, err := Partition(w, 12, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != "greedy" {
		t.Fatalf("auto solver for n=40 = %q, want greedy", res.Solver)
	}
	checkPartition(t, res, n, 12, 4, w)
}
