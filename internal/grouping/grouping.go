// Package grouping solves the thread-grouping step that SMT levels above 2
// require: partition n applications into at most maxGroups groups (cores) of
// size at most L (the SMT level), minimising the summed intra-group
// interference cost.
//
// At SMT2 the per-quantum allocation step is a minimum-weight perfect
// matching (paper §IV-B Step 3, internal/matching); at SMT3/SMT4 it becomes
// a weighted set-partition problem, the formulation of the paper's follow-up
// ("A New Family of Thread to Core Allocation Policies for an SMT ARM
// Processor", arXiv:2507.00855): a group's cost is the sum of the pairwise
// predicted degradations of its members, so the pairwise interference model
// keeps driving the decision while co-schedules grow beyond pairs.
//
// Cost model. For a symmetric n×n matrix w of pairwise costs, a group g
// costs
//
//	cost(g) = SoloCost            if |g| == 1  (an app alone runs at ST speed)
//	cost(g) = Σ_{i<j ∈ g} w[i][j] otherwise
//
// and a partition costs the sum over its groups. With L = 2 this is exactly
// the objective of the blossom matcher on the idle-padded graph the SYNPA
// policy builds, so Partition delegates to it there and the two agree by
// construction (and by the differential tests).
//
// Solvers. Two deterministic solvers sit behind Partition:
//
//   - an exact subset dynamic program over group bitmasks, O(n · 2ⁿ ·
//     C(n, L−1)) time — practical to n ≈ 16 and the cross-validation
//     oracle for the tests;
//   - a greedy seeding plus steepest-descent local search (single-app moves
//     and pairwise swaps) for larger n, whose cost the property tests bound
//     from below by the exact optimum.
package grouping

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"synpa/internal/matching"
)

// DefaultSoloCost is the cost of a single-application group: the app runs at
// its single-threaded speed, normalised degradation 1 — the same constant
// the SYNPA policy assigns to a real-app/idle-slot pairing.
const DefaultSoloCost = 1.0

// DefaultMaxExactN is the largest n SolverAuto hands to the exact subset DP.
const DefaultMaxExactN = 12

// maxExactHard bounds the exact DP outright: beyond 16 vertices the mask
// tables stop fitting in reasonable memory.
const maxExactHard = 16

// Errors returned by Partition.
var (
	// ErrInfeasible marks an instance with more applications than
	// maxGroups·level hardware threads.
	ErrInfeasible = errors.New("grouping: more applications than hardware threads")
	// ErrTooLarge marks an instance explicitly requesting the exact solver
	// beyond its hard size limit.
	ErrTooLarge = fmt.Errorf("grouping: exact solver limited to %d applications", maxExactHard)
)

// Solver selects the partition algorithm.
type Solver int

const (
	// SolverAuto uses the exact DP up to Options.MaxExactN applications
	// and the greedy + local-search solver beyond.
	SolverAuto Solver = iota
	// SolverExact forces the exact subset DP.
	SolverExact
	// SolverGreedy forces the greedy + local-search solver.
	SolverGreedy
)

// String names the solver for experiment output.
func (s Solver) String() string {
	switch s {
	case SolverAuto:
		return "auto"
	case SolverExact:
		return "exact"
	case SolverGreedy:
		return "greedy"
	}
	return fmt.Sprintf("Solver(%d)", int(s))
}

// Options tune Partition; the zero value gives the production defaults.
type Options struct {
	// Solver selects the algorithm (default SolverAuto).
	Solver Solver
	// MaxExactN is the auto-solver's exact-DP size ceiling (default
	// DefaultMaxExactN).
	MaxExactN int
	// SoloCost is the cost of a one-application group; zero selects
	// DefaultSoloCost.
	SoloCost float64
}

// ResolvedSoloCost returns the solo cost Partition will charge under these
// options (SoloCost with the zero-value default applied). Callers comparing
// external partitions against a Result's Cost — e.g. the policy's
// hysteresis — must price solo groups with this same value.
func (o Options) ResolvedSoloCost() float64 {
	if o.SoloCost == 0 {
		return DefaultSoloCost
	}
	return o.SoloCost
}

// Result is one partition.
type Result struct {
	// Groups holds the partition in canonical form: members ascending
	// within each group, groups ordered by their smallest member.
	Groups [][]int
	// Cost is the partition cost under the canonical summation order
	// (PartitionCost), independent of the solver that produced it.
	Cost float64
	// Solver names the algorithm that produced the partition: "blossom"
	// (the L = 2 delegation), "exact" or "greedy".
	Solver string
}

// Partition computes a minimum-cost partition of the n applications behind
// the symmetric cost matrix w into at most maxGroups groups of at most
// level members each. It is deterministic: equal inputs give equal outputs.
func Partition(w [][]float64, maxGroups, level int, opt Options) (*Result, error) {
	n := len(w)
	if err := checkMatrix(w); err != nil {
		return nil, err
	}
	if maxGroups < 1 || level < 1 {
		return nil, fmt.Errorf("grouping: need maxGroups >= 1 and level >= 1 (got %d, %d)", maxGroups, level)
	}
	if n > maxGroups*level {
		return nil, fmt.Errorf("%w: %d applications, %d groups of <= %d", ErrInfeasible, n, maxGroups, level)
	}
	solo := opt.ResolvedSoloCost()
	if n == 0 {
		return &Result{Groups: nil, Cost: 0, Solver: "exact"}, nil
	}

	switch {
	case level == 1:
		// Only singletons are feasible; the partition is forced.
		groups := make([][]int, n)
		for i := range groups {
			groups[i] = []int{i}
		}
		return finish(w, groups, solo, "exact"), nil
	case level == 2:
		// Delegate to the blossom matcher the SYNPA policy already uses:
		// minimum-weight perfect matching on the idle-padded graph is
		// exactly this objective (see the package comment).
		return solveBlossom(w, maxGroups, solo)
	}

	maxExact := opt.MaxExactN
	if maxExact <= 0 {
		maxExact = DefaultMaxExactN
	}
	switch opt.Solver {
	case SolverExact:
		if n > maxExactHard {
			return nil, ErrTooLarge
		}
		return solveExact(w, maxGroups, level, solo), nil
	case SolverGreedy:
		return solveGreedy(w, maxGroups, level, solo), nil
	default:
		if n <= maxExact && n <= maxExactHard {
			return solveExact(w, maxGroups, level, solo), nil
		}
		return solveGreedy(w, maxGroups, level, solo), nil
	}
}

// CostOf returns one group's cost under w: soloCost for a singleton, the
// sum of intra-group pairwise costs (members visited in ascending index
// order) otherwise. An empty group costs nothing.
func CostOf(w [][]float64, group []int, soloCost float64) float64 {
	switch len(group) {
	case 0:
		return 0
	case 1:
		return soloCost
	}
	cost := 0.0
	for a := 0; a < len(group); a++ {
		for b := a + 1; b < len(group); b++ {
			cost += w[group[a]][group[b]]
		}
	}
	return cost
}

// PartitionCost sums CostOf over the groups in order — the canonical cost
// every solver reports, so costs from different solvers compare bit-exactly.
func PartitionCost(w [][]float64, groups [][]int, soloCost float64) float64 {
	cost := 0.0
	for _, g := range groups {
		cost += CostOf(w, g, soloCost)
	}
	return cost
}

// checkMatrix validates that w is square, symmetric and finite.
func checkMatrix(w [][]float64) error {
	n := len(w)
	for i := range w {
		if len(w[i]) != n {
			return fmt.Errorf("grouping: weight matrix row %d has %d entries for %d vertices", i, len(w[i]), n)
		}
		for j, v := range w[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("grouping: weight w[%d][%d] = %v is not finite", i, j, v)
			}
			if w[j][i] != v {
				return fmt.Errorf("grouping: weight matrix asymmetric at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// canonicalize sorts members within groups and groups by smallest member,
// dropping empties.
func canonicalize(groups [][]int) [][]int {
	out := groups[:0]
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// finish canonicalizes a partition and wraps it in a Result with the
// canonical cost.
func finish(w [][]float64, groups [][]int, soloCost float64, solver string) *Result {
	groups = canonicalize(groups)
	return &Result{Groups: groups, Cost: PartitionCost(w, groups, soloCost), Solver: solver}
}

// solveBlossom handles level == 2 by minimum-weight perfect matching on the
// idle-padded graph: 2·maxGroups vertices, real-real edges cost w, a real
// app paired with an idle slot costs soloCost, idle-idle pairs cost 0 —
// the construction of core.Policy's Step 2, so the two agree edge for edge.
func solveBlossom(w [][]float64, maxGroups int, soloCost float64) (*Result, error) {
	n := len(w)
	total := 2 * maxGroups
	p := make([][]float64, total)
	for i := range p {
		p[i] = make([]float64, total)
	}
	for i := 0; i < total; i++ {
		for j := i + 1; j < total; j++ {
			var cost float64
			switch {
			case i < n && j < n:
				cost = w[i][j]
			case i < n || j < n:
				cost = soloCost
			}
			p[i][j], p[j][i] = cost, cost
		}
	}
	mate, _, err := matching.MinWeightPerfectMatching(p)
	if err != nil {
		return nil, err
	}
	var groups [][]int
	for i := 0; i < n; i++ {
		m := mate[i]
		switch {
		case m < 0 || m >= n:
			groups = append(groups, []int{i})
		case m > i:
			groups = append(groups, []int{i, m})
		}
	}
	return finish(w, groups, soloCost, "blossom"), nil
}
