package grouping

import (
	"math"
	"math/bits"
)

// solveExact is the exact subset dynamic program: dp[g][mask] is the minimum
// cost of partitioning the applications in mask into exactly g groups of at
// most level members. To enumerate every partition once, the group that
// covers a mask's lowest set bit is chosen at each step; the answer is the
// cheapest dp[g][full] over g <= maxGroups. Time is O(n · 2ⁿ · C(n, level−1))
// and memory O(maxGroups · 2ⁿ), practical to n ≈ 16.
func solveExact(w [][]float64, maxGroups, level int, solo float64) *Result {
	n := len(w)
	full := 1<<n - 1
	sz := full + 1
	maxG := maxGroups
	if maxG > n {
		maxG = n
	}
	inf := math.MaxFloat64
	dp := make([]float64, (maxG+1)*sz)
	choice := make([]int32, (maxG+1)*sz)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0 // zero groups cover the empty mask

	// members holds the group under construction (excluding the anchor
	// bit); restBits the candidate bits of the current mask.
	members := make([]int, 0, level)
	restBits := make([]int, 0, n)

	for g := 1; g <= maxG; g++ {
		prevRow := dp[(g-1)*sz : g*sz]
		row := dp[g*sz : (g+1)*sz]
		chRow := choice[g*sz : (g+1)*sz]
		for mask := 1; mask <= full; mask++ {
			anchor := bits.TrailingZeros(uint(mask))
			rest := mask &^ (1 << anchor)
			restBits = restBits[:0]
			for r := rest; r != 0; r &= r - 1 {
				restBits = append(restBits, bits.TrailingZeros(uint(r)))
			}
			best, bestS := inf, 0

			// try recursively extends the group {anchor} ∪ members by
			// bits from restBits[start:], carrying the accumulated
			// intra-group pairwise cost.
			var try func(start int, sub int, cost float64)
			try = func(start int, sub int, cost float64) {
				s := sub | 1<<anchor
				gc := cost
				if sub == 0 {
					gc = solo
				}
				if prev := prevRow[mask&^s]; prev != inf {
					if tot := prev + gc; tot < best {
						best, bestS = tot, s
					}
				}
				if len(members) == level-1 {
					return
				}
				for bi := start; bi < len(restBits); bi++ {
					b := restBits[bi]
					add := w[anchor][b]
					for _, m := range members {
						add += w[m][b]
					}
					members = append(members, b)
					try(bi+1, sub|1<<b, cost+add)
					members = members[:len(members)-1]
				}
			}
			try(0, 0, 0)
			row[mask] = best
			chRow[mask] = int32(bestS)
		}
	}

	// Pick the cheapest group count (ties to the fewest groups).
	bestG, bestCost := 0, inf
	for g := 1; g <= maxG; g++ {
		if c := dp[g*sz+full]; c < bestCost {
			bestCost, bestG = c, g
		}
	}

	// Reconstruct.
	var groups [][]int
	mask := full
	for g := bestG; g >= 1 && mask != 0; g-- {
		s := int(choice[g*sz+mask])
		var grp []int
		for r := s; r != 0; r &= r - 1 {
			grp = append(grp, bits.TrailingZeros(uint(r)))
		}
		groups = append(groups, grp)
		mask &^= s
	}
	return finish(w, groups, solo, "exact")
}
