package sched

import (
	"testing"

	"synpa/internal/machine"
)

func TestLinuxArrivalOrderPairing(t *testing.T) {
	p := Linux{}
	if p.Name() != "Linux" {
		t.Fatalf("Name = %q", p.Name())
	}
	place := p.Place(&machine.QuantumState{NumApps: 8, NumCores: 4})
	// The paper's observed pairing for fb2 (§VI-C): apps k and k+4 share
	// core k.
	want := machine.Placement{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if place[i] != want[i] {
			t.Fatalf("placement = %v, want %v", place, want)
		}
	}
}

func TestLinuxNeverMigrates(t *testing.T) {
	p := Linux{}
	prev := machine.Placement{3, 2, 1, 0, 0, 1, 2, 3}
	place := p.Place(&machine.QuantumState{Quantum: 5, NumApps: 8, NumCores: 4, Prev: prev})
	for i := range prev {
		if place[i] != prev[i] {
			t.Fatalf("Linux migrated: %v -> %v", prev, place)
		}
	}
}

func TestRandomProducesValidPlacements(t *testing.T) {
	p := NewRandom(7)
	if p.Name() != "Random" {
		t.Fatalf("Name = %q", p.Name())
	}
	st := &machine.QuantumState{NumApps: 8, NumCores: 4}
	changed := false
	var prev machine.Placement
	for q := 0; q < 50; q++ {
		place := p.Place(st)
		if err := place.Validate(4); err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for i := range place {
				if place[i] != prev[i] {
					changed = true
				}
			}
		}
		prev = place
	}
	if !changed {
		t.Fatal("Random policy never re-paired in 50 quanta")
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	a, b := NewRandom(3), NewRandom(3)
	st := &machine.QuantumState{NumApps: 8, NumCores: 4}
	for q := 0; q < 10; q++ {
		pa, pb := a.Place(st), b.Place(st)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("same-seed Random policies diverged")
			}
		}
	}
}

func TestPinned(t *testing.T) {
	assign := machine.Placement{1, 1, 0, 0}
	p := Pinned{Assignment: assign, Label: "pinned-test"}
	if p.Name() != "pinned-test" {
		t.Fatalf("Name = %q", p.Name())
	}
	if (Pinned{}).Name() != "Pinned" {
		t.Fatal("default label wrong")
	}
	place := p.Place(&machine.QuantumState{NumApps: 4, NumCores: 2})
	for i := range assign {
		if place[i] != assign[i] {
			t.Fatalf("placement = %v", place)
		}
	}
	// Returned placement must be a copy.
	place[0] = 9
	if assign[0] == 9 {
		t.Fatal("Place leaked internal state")
	}
}
