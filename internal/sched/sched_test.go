package sched

import (
	"testing"

	"synpa/internal/machine"
)

func TestLinuxArrivalOrderPairing(t *testing.T) {
	p := Linux{}
	if p.Name() != "Linux" {
		t.Fatalf("Name = %q", p.Name())
	}
	place := p.Place(&machine.QuantumState{NumApps: 8, NumCores: 4})
	// The paper's observed pairing for fb2 (§VI-C): apps k and k+4 share
	// core k.
	want := machine.Placement{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if place[i] != want[i] {
			t.Fatalf("placement = %v, want %v", place, want)
		}
	}
}

func TestLinuxNeverMigrates(t *testing.T) {
	p := Linux{}
	prev := machine.Placement{3, 2, 1, 0, 0, 1, 2, 3}
	place := p.Place(&machine.QuantumState{Quantum: 5, NumApps: 8, NumCores: 4, Prev: prev})
	for i := range prev {
		if place[i] != prev[i] {
			t.Fatalf("Linux migrated: %v -> %v", prev, place)
		}
	}
}

func TestLinuxNeverAliasesPrev(t *testing.T) {
	// The QuantumState and its Prev are owned by the runner; mutating the
	// returned placement must never write through into Prev.
	p := Linux{}
	prev := machine.Placement{0, 1, 2, 3}
	place := p.Place(&machine.QuantumState{Quantum: 1, NumApps: 4, NumCores: 4, Prev: prev})
	for i := range place {
		place[i] = 99
	}
	for i, c := range prev {
		if c != i {
			t.Fatalf("mutating the returned placement corrupted Prev: %v", prev)
		}
	}
}

func TestLinuxPartialOccupancy(t *testing.T) {
	p := Linux{}
	// Three fresh apps on four cores: spread one per core, arrival order.
	place := p.Place(&machine.QuantumState{NumApps: 3, NumCores: 4})
	want := machine.Placement{0, 1, 2}
	for i := range want {
		if place[i] != want[i] {
			t.Fatalf("fresh partial placement = %v, want %v", place, want)
		}
	}
	// A dynamic Prev view: apps 0/1 keep their cores, the newly arrived
	// app 2 (Unplaced) takes the least-loaded core.
	prev := machine.Placement{2, 2, machine.Unplaced}
	place = p.Place(&machine.QuantumState{Quantum: 3, NumApps: 3, NumCores: 4, Prev: prev})
	if place[0] != 2 || place[1] != 2 {
		t.Fatalf("resident apps migrated: %v", place)
	}
	if place[2] != 0 {
		t.Fatalf("arrival placed on %d, want least-loaded core 0 (placement %v)", place[2], place)
	}
	if err := place.Validate(4, 2); err != nil {
		t.Fatal(err)
	}
	// Live-set growth beyond the Prev view (two arrivals at once).
	place = p.Place(&machine.QuantumState{Quantum: 4, NumApps: 5, NumCores: 4,
		Prev: machine.Placement{0, 0, 1}})
	if err := place.Validate(4, 2); err != nil {
		t.Fatal(err)
	}
	if place[0] != 0 || place[1] != 0 || place[2] != 1 {
		t.Fatalf("resident apps moved: %v", place)
	}
	if place[3] == 0 || place[4] == 0 {
		t.Fatalf("arrivals packed onto the full core 0: %v", place)
	}
}

func TestLinuxSMT4Fill(t *testing.T) {
	p := Linux{}
	// Eight fresh apps on two SMT4 cores: least-loaded fill at level 4.
	place := p.Place(&machine.QuantumState{NumApps: 8, NumCores: 2, SMTLevel: 4})
	if err := place.Validate(2, 4); err != nil {
		t.Fatal(err)
	}
	load := map[int]int{}
	for _, c := range place {
		load[c]++
	}
	if load[0] != 4 || load[1] != 4 {
		t.Fatalf("SMT4 fill unbalanced: %v", place)
	}
	// A full SMT4 core must not take an arrival: apps 0-3 hold core 0,
	// the newcomer goes to core 1.
	prev := machine.Placement{0, 0, 0, 0, machine.Unplaced}
	place = p.Place(&machine.QuantumState{Quantum: 2, NumApps: 5, NumCores: 2, SMTLevel: 4, Prev: prev})
	if err := place.Validate(2, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if place[i] != 0 {
			t.Fatalf("resident apps migrated: %v", place)
		}
	}
	if place[4] != 1 {
		t.Fatalf("arrival packed onto the full core: %v", place)
	}
}

func TestRandomSMT4ProducesValidPlacements(t *testing.T) {
	p := NewRandom(5)
	for _, n := range []int{1, 3, 5, 8} {
		st := &machine.QuantumState{NumApps: n, NumCores: 2, SMTLevel: 4}
		for q := 0; q < 10; q++ {
			if err := p.Place(st).Validate(2, 4); err != nil {
				t.Fatalf("Random SMT4 with %d apps: %v", n, err)
			}
		}
	}
}

func TestRandomProducesValidPlacements(t *testing.T) {
	p := NewRandom(7)
	if p.Name() != "Random" {
		t.Fatalf("Name = %q", p.Name())
	}
	st := &machine.QuantumState{NumApps: 8, NumCores: 4}
	changed := false
	var prev machine.Placement
	for q := 0; q < 50; q++ {
		place := p.Place(st)
		if err := place.Validate(4, 2); err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for i := range place {
				if place[i] != prev[i] {
					changed = true
				}
			}
		}
		prev = place
	}
	if !changed {
		t.Fatal("Random policy never re-paired in 50 quanta")
	}
	// Partial and odd occupancy must stay valid too.
	for _, n := range []int{1, 3, 5, 7} {
		st := &machine.QuantumState{NumApps: n, NumCores: 4}
		for q := 0; q < 10; q++ {
			if err := p.Place(st).Validate(4, 2); err != nil {
				t.Fatalf("Random with %d apps: %v", n, err)
			}
		}
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	a, b := NewRandom(3), NewRandom(3)
	st := &machine.QuantumState{NumApps: 8, NumCores: 4}
	for q := 0; q < 10; q++ {
		pa, pb := a.Place(st), b.Place(st)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("same-seed Random policies diverged")
			}
		}
	}
}

func TestPinned(t *testing.T) {
	assign := machine.Placement{1, 1, 0, 0}
	p := Pinned{Assignment: assign, Label: "pinned-test"}
	if p.Name() != "pinned-test" {
		t.Fatalf("Name = %q", p.Name())
	}
	if (Pinned{}).Name() != "Pinned" {
		t.Fatal("default label wrong")
	}
	place := p.Place(&machine.QuantumState{NumApps: 4, NumCores: 2})
	for i := range assign {
		if place[i] != assign[i] {
			t.Fatalf("placement = %v", place)
		}
	}
	// Returned placement must be a copy.
	place[0] = 9
	if assign[0] == 9 {
		t.Fatal("Place leaked internal state")
	}
}
