// Package sched provides the baseline thread-to-core allocation policies
// SYNPA is evaluated against.
//
// The primary baseline is the Linux scheduler as the paper observed it
// (§VI-C): the CFS, being unaware of thread dispatch behaviour, assigns
// applications to cores in arrival order — applications k and k+cores share
// core k — and an application then "remains in the core until its execution
// finishes". The Random policy re-pairs applications uniformly at random
// every quantum and serves as a sanity baseline: SYNPA must beat it, and it
// must roughly tie with Linux on homogeneous workloads.
package sched

import (
	"synpa/internal/machine"
	"synpa/internal/xrand"
)

// Linux is the behaviour-oblivious static arrival-order policy the paper
// measured the CFS to follow for its workloads.
type Linux struct{}

var _ machine.Policy = Linux{}

// Name implements machine.Policy.
func (Linux) Name() string { return "Linux" }

// Place implements machine.Policy: an application keeps whatever core it
// already has ("remains in the core until its execution finishes", §VI-C)
// and every newly arrived application takes the least-loaded core with a
// free hardware thread, lowest index first. On a full machine starting from
// scratch this reduces to the paper's arrival-order pairing (app k and
// k+cores share core k); under partial occupancy and churn it fills holes
// the way the CFS balances runqueues. The returned placement is always a
// fresh slice — never an alias of st.Prev, which the runner owns.
func (Linux) Place(st *machine.QuantumState) machine.Placement {
	// Steady-state fast path (every closed-system quantum after the
	// first): Prev already places every app on a valid core, so the
	// answer is Prev itself — cloned, never aliased, and without the
	// slow path's load bookkeeping.
	if st.Prev != nil && len(st.Prev) == st.NumApps {
		complete := true
		for _, c := range st.Prev {
			if c < 0 || c >= st.NumCores {
				complete = false
				break
			}
		}
		if complete {
			return st.Prev.Clone()
		}
	}

	level := st.ThreadsPerCore()
	p := make(machine.Placement, st.NumApps)
	load := make([]int, st.NumCores)
	for i := range p {
		p[i] = machine.Unplaced
		if st.Prev == nil || i >= len(st.Prev) {
			continue
		}
		if c := st.Prev[i]; c >= 0 && c < st.NumCores && load[c] < level {
			p[i] = c
			load[c]++
		}
	}
	for i := range p {
		if p[i] >= 0 {
			continue
		}
		best := 0
		for c := 1; c < st.NumCores; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		p[i] = best
		load[best]++
	}
	return p
}

// Random re-pairs all applications uniformly at random each quantum.
type Random struct {
	rng *xrand.RNG
}

var _ machine.Policy = (*Random)(nil)

// NewRandom builds a Random policy with a deterministic stream.
func NewRandom(seed uint64) *Random { return &Random{rng: xrand.New(seed)} }

// Name implements machine.Policy.
func (*Random) Name() string { return "Random" }

// Place implements machine.Policy: consecutive entries of a fresh random
// permutation share a core, filling each core up to the SMT level.
func (r *Random) Place(st *machine.QuantumState) machine.Placement {
	level := st.ThreadsPerCore()
	perm := r.rng.Perm(st.NumApps)
	p := make(machine.Placement, st.NumApps)
	for idx, app := range perm {
		p[app] = (idx / level) % st.NumCores
	}
	return p
}

// Pinned places each application on a fixed, caller-chosen core forever;
// used by tests and by experiments that need a specific static pairing.
type Pinned struct {
	// Assignment maps app index to core index.
	Assignment machine.Placement
	// Label is the policy name shown in output.
	Label string
}

var _ machine.Policy = Pinned{}

// Name implements machine.Policy.
func (p Pinned) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "Pinned"
}

// Place implements machine.Policy.
func (p Pinned) Place(*machine.QuantumState) machine.Placement {
	return p.Assignment.Clone()
}
