// Package sched provides the baseline thread-to-core allocation policies
// SYNPA is evaluated against.
//
// The primary baseline is the Linux scheduler as the paper observed it
// (§VI-C): the CFS, being unaware of thread dispatch behaviour, assigns
// applications to cores in arrival order — applications k and k+cores share
// core k — and an application then "remains in the core until its execution
// finishes". The Random policy re-pairs applications uniformly at random
// every quantum and serves as a sanity baseline: SYNPA must beat it, and it
// must roughly tie with Linux on homogeneous workloads.
package sched

import (
	"synpa/internal/machine"
	"synpa/internal/xrand"
)

// Linux is the behaviour-oblivious static arrival-order policy the paper
// measured the CFS to follow for its workloads.
type Linux struct{}

var _ machine.Policy = Linux{}

// Name implements machine.Policy.
func (Linux) Name() string { return "Linux" }

// Place implements machine.Policy: arrival-order pairing, then never move.
func (Linux) Place(st *machine.QuantumState) machine.Placement {
	if st.Prev != nil {
		return st.Prev
	}
	p := make(machine.Placement, st.NumApps)
	for i := range p {
		p[i] = i % st.NumCores
	}
	return p
}

// Random re-pairs all applications uniformly at random each quantum.
type Random struct {
	rng *xrand.RNG
}

var _ machine.Policy = (*Random)(nil)

// NewRandom builds a Random policy with a deterministic stream.
func NewRandom(seed uint64) *Random { return &Random{rng: xrand.New(seed)} }

// Name implements machine.Policy.
func (*Random) Name() string { return "Random" }

// Place implements machine.Policy.
func (r *Random) Place(st *machine.QuantumState) machine.Placement {
	perm := r.rng.Perm(st.NumApps)
	p := make(machine.Placement, st.NumApps)
	for idx, app := range perm {
		p[app] = (idx / 2) % st.NumCores
	}
	return p
}

// Pinned places each application on a fixed, caller-chosen core forever;
// used by tests and by experiments that need a specific static pairing.
type Pinned struct {
	// Assignment maps app index to core index.
	Assignment machine.Placement
	// Label is the policy name shown in output.
	Label string
}

var _ machine.Policy = Pinned{}

// Name implements machine.Policy.
func (p Pinned) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "Pinned"
}

// Place implements machine.Policy.
func (p Pinned) Place(*machine.QuantumState) machine.Placement {
	return p.Assignment.Clone()
}
