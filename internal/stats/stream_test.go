package stats

import (
	"math"
	"sort"
	"testing"

	"synpa/internal/xrand"
)

// refDistributions are the reference shapes the accuracy bounds are
// asserted on: light-tailed, bounded and heavy-tailed.
func refDistributions() map[string]func(r *xrand.RNG) float64 {
	return map[string]func(r *xrand.RNG) float64{
		"exponential": func(r *xrand.RNG) float64 { return r.Exp(1e6) },
		"uniform":     func(r *xrand.RNG) float64 { return r.Float64() * 1e6 },
		"lognormal":   func(r *xrand.RNG) float64 { return math.Exp(12 + 2*r.NormFloat64()) },
	}
}

// rankOf returns the inclusive rank interval [lo, hi] that value v would
// occupy in the sorted sample: lo = #(x < v), hi = #(x <= v).
func rankOf(sorted []float64, v float64) (lo, hi int) {
	lo = sort.SearchFloat64s(sorted, v)
	hi = sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return lo, hi
}

// TestSketchRankError is the satellite's accuracy bound: the sketch's p95
// (and other quantiles) must sit within 1% rank error of the exact
// Percentile on retained samples, for every reference distribution.
func TestSketchRankError(t *testing.T) {
	const n = 20000
	for name, draw := range refDistributions() {
		rng := xrand.New(0x5eed + uint64(len(name)))
		sk := NewSketch(0) // default alpha
		samples := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := draw(rng)
			sk.Add(v)
			samples = append(samples, v)
		}
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			est := sk.Quantile(q)
			exact, err := Percentile(samples, q)
			if err != nil {
				t.Fatalf("%s: Percentile: %v", name, err)
			}
			lo, hi := rankOf(sorted, est)
			target := q * float64(n-1)
			tol := 0.01*float64(n) + 1
			if float64(hi) < target-tol || float64(lo) > target+tol {
				t.Errorf("%s q=%v: sketch %v (ranks [%d,%d]) vs exact %v; target rank %.0f ± %.0f",
					name, q, est, lo, hi, exact, target, tol)
			}
			// The DDSketch guarantee itself: relative value error ≤ alpha
			// against the matching order statistic.
			if exact > 0 {
				if rel := math.Abs(est-exact) / exact; rel > sk.Alpha()*1.5 {
					t.Errorf("%s q=%v: relative error %v exceeds alpha %v (est %v, exact %v)",
						name, q, rel, sk.Alpha(), est, exact)
				}
			}
		}
	}
}

// TestSketchMergeIdentity: sharding a stream and merging must be
// bit-identical to a single sketch — the fleet's merge invariant.
func TestSketchMergeIdentity(t *testing.T) {
	const n, shards = 10000, 8
	rng := xrand.New(42)
	whole := NewSketch(0)
	parts := make([]*Sketch, shards)
	for i := range parts {
		parts[i] = NewSketch(0)
	}
	for i := 0; i < n; i++ {
		v := rng.Exp(5e5)
		whole.Add(v)
		parts[i%shards].Add(v)
	}
	merged := NewSketch(0)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("count %d != %d", merged.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.95, 0.99, 1} {
		if a, b := merged.Quantile(q), whole.Quantile(q); a != b {
			t.Errorf("q=%v: merged %v != whole %v", q, a, b)
		}
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Errorf("extremes diverge: merged [%v,%v], whole [%v,%v]",
			merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
}

func TestSketchMergeAlphaMismatch(t *testing.T) {
	a, b := NewSketch(0.005), NewSketch(0.01)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different alphas must fail")
	}
}

func TestSketchEdgeCases(t *testing.T) {
	sk := NewSketch(0)
	if sk.Quantile(0.5) != 0 || sk.Count() != 0 {
		t.Fatal("empty sketch must report zero")
	}
	sk.Add(0)
	sk.Add(-3) // clamped
	sk.Add(100)
	if sk.Count() != 3 {
		t.Fatalf("count = %d, want 3", sk.Count())
	}
	if q := sk.Quantile(0); q != -3 {
		t.Errorf("q0 = %v, want exact min -3", q)
	}
	if q := sk.Quantile(1); q != 100 {
		t.Errorf("q1 = %v, want exact max 100", q)
	}
	if q := sk.Quantile(0.25); q != 0 {
		t.Errorf("q0.25 = %v, want 0 (zero bucket)", q)
	}
	// Bucket count stays bounded while observations grow.
	big := NewSketch(0)
	rng := xrand.New(7)
	for i := 0; i < 200000; i++ {
		big.Add(1 + rng.Float64()*1e9)
	}
	// log(1e9)/log(gamma) ≈ 2072 buckets at alpha = 0.005.
	if big.Buckets() > 4000 {
		t.Errorf("bucket count %d not bounded", big.Buckets())
	}
}

// TestMomentsMatchesExact: streaming mean/variance agree with the exact
// batch formulas, and shard-merge agrees with the whole stream.
func TestMomentsMatchesExact(t *testing.T) {
	const n, shards = 10000, 7
	rng := xrand.New(9)
	var whole Moments
	parts := make([]Moments, shards)
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := rng.Exp(1e4) + 500
		whole.Add(v)
		parts[i%shards].Add(v)
		samples = append(samples, v)
	}
	exactMean := Mean(samples)
	exactVar := Variance(samples)
	if rel := math.Abs(whole.Mean()-exactMean) / exactMean; rel > 1e-12 {
		t.Errorf("mean: streaming %v vs exact %v", whole.Mean(), exactMean)
	}
	if rel := math.Abs(whole.Var()-exactVar) / exactVar; rel > 1e-9 {
		t.Errorf("variance: streaming %v vs exact %v", whole.Var(), exactVar)
	}
	var merged Moments
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("count %d != %d", merged.Count(), whole.Count())
	}
	if rel := math.Abs(merged.Mean()-whole.Mean()) / whole.Mean(); rel > 1e-12 {
		t.Errorf("merged mean %v vs whole %v", merged.Mean(), whole.Mean())
	}
	if rel := math.Abs(merged.Var()-whole.Var()) / whole.Var(); rel > 1e-9 {
		t.Errorf("merged variance %v vs whole %v", merged.Var(), whole.Var())
	}
	if math.Abs(merged.Sum()-whole.Sum()) > whole.Sum()*1e-12 {
		t.Errorf("merged sum %v vs whole %v", merged.Sum(), whole.Sum())
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	a.Merge(&b)
	if a.Count() != 0 {
		t.Fatal("empty merge must stay empty")
	}
	b.Add(3)
	b.Add(5)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 4 {
		t.Fatalf("merge into empty: count %d mean %v", a.Count(), a.Mean())
	}
}
