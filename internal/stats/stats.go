// Package stats implements the summary statistics used throughout the SYNPA
// reproduction: means, geometric means, dispersion measures, and the paper's
// repeated-run methodology (§V-B) that averages nine executions per workload
// and discards outlier runs until the coefficient of variation drops below
// 5 %.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values make the result NaN, mirroring the undefined
// mathematical case so that callers notice bad inputs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the population variance of xs (the paper's fairness
// metric uses population moments across the applications of a workload).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoeffVar returns the coefficient of variation σ/µ. A zero mean yields 0
// when all samples are zero and +Inf otherwise.
func CoeffVar(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if m == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// Min returns the minimum of xs. It returns an error for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns an error for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th quantile of xs (p in [0,1]) with linear
// interpolation between order statistics, the convention most plotting and
// reporting tools use. It returns an error for empty input or p outside
// [0,1].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: percentile %v outside [0,1]", p)
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	rank := p * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo], nil
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac, nil
}

// Median returns the median of xs (average of middle pair for even length).
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2], nil
	}
	return (c[n/2-1] + c[n/2]) / 2, nil
}

// RobustMean implements the paper's measurement methodology: runs are
// averaged, and while the coefficient of variation exceeds maxCV and more
// than minKeep runs remain, the run farthest from the current mean is
// discarded. It returns the final mean, the surviving samples, and the
// number of discarded runs.
//
// The paper executes each workload nine times and discards runs with
// excessive deviation until CV < 5 % (§V-B).
func RobustMean(runs []float64, maxCV float64, minKeep int) (mean float64, kept []float64, discarded int) {
	kept = append([]float64(nil), runs...)
	if minKeep < 1 {
		minKeep = 1
	}
	for len(kept) > minKeep && CoeffVar(kept) > maxCV {
		m := Mean(kept)
		worst, worstDev := 0, -1.0
		for i, x := range kept {
			if d := math.Abs(x - m); d > worstDev {
				worst, worstDev = i, d
			}
		}
		kept = append(kept[:worst], kept[worst+1:]...)
		discarded++
	}
	return Mean(kept), kept, discarded
}

// Summary bundles the descriptive statistics reported for experiment series.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	CV     float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. Empty input returns a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	med, _ := Median(xs)
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: med,
		StdDev: StdDev(xs),
		CV:     CoeffVar(xs),
		Min:    mn,
		Max:    mx,
	}
}
