package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{-5}); got != -5 {
		t.Fatalf("Mean single = %v, want -5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("GeoMean{1,4} = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("GeoMean{2,2,2} = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{1, 0, 2}); !math.IsNaN(got) {
		t.Fatalf("GeoMean with zero = %v, want NaN", got)
	}
	if got := GeoMean([]float64{-1}); !math.IsNaN(got) {
		t.Fatalf("GeoMean with negative = %v, want NaN", got)
	}
}

func TestGeoMeanLEArithmeticMean(t *testing.T) {
	// AM-GM inequality as a property test over positive samples.
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1 // ensure positive
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3, 3, 3}); got != 0 {
		t.Fatalf("Variance of constants = %v, want 0", got)
	}
}

func TestCoeffVar(t *testing.T) {
	if got := CoeffVar([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 0.4, 1e-12) {
		t.Fatalf("CoeffVar = %v, want 0.4", got)
	}
	if got := CoeffVar([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("CoeffVar zeros = %v, want 0", got)
	}
	if got := CoeffVar([]float64{-1, 1}); !math.IsInf(got, 1) {
		t.Fatalf("CoeffVar zero-mean = %v, want +Inf", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	mn, err := Min(xs)
	if err != nil || mn != 1 {
		t.Fatalf("Min = %v err %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 9 {
		t.Fatalf("Max = %v err %v", mx, err)
	}
	med, err := Median(xs)
	if err != nil || med != 4 {
		t.Fatalf("Median even = %v err %v", med, err)
	}
	med, err = Median([]float64{7, 1, 3})
	if err != nil || med != 3 {
		t.Fatalf("Median odd = %v err %v", med, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Fatalf("Median(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestRobustMeanNoOutliers(t *testing.T) {
	runs := []float64{100, 101, 99, 100.5, 99.5}
	mean, kept, discarded := RobustMean(runs, 0.05, 3)
	if discarded != 0 {
		t.Fatalf("discarded %d runs from a tight cluster", discarded)
	}
	if len(kept) != len(runs) {
		t.Fatalf("kept %d, want %d", len(kept), len(runs))
	}
	if !almostEq(mean, 100, 0.5) {
		t.Fatalf("mean = %v", mean)
	}
}

func TestRobustMeanDiscardsOutlier(t *testing.T) {
	// Mirrors §V-B: one anomalous execution is removed to get CV below 5%.
	runs := []float64{100, 101, 99, 100, 100, 100, 101, 99, 190}
	mean, kept, discarded := RobustMean(runs, 0.05, 3)
	if discarded != 1 {
		t.Fatalf("discarded = %d, want 1", discarded)
	}
	if len(kept) != 8 {
		t.Fatalf("kept = %d, want 8", len(kept))
	}
	if !almostEq(mean, 100, 1) {
		t.Fatalf("mean = %v, want ~100", mean)
	}
	if CoeffVar(kept) > 0.05 {
		t.Fatalf("CV after discard = %v, want < 0.05", CoeffVar(kept))
	}
}

func TestRobustMeanRespectsMinKeep(t *testing.T) {
	runs := []float64{1, 100, 10000}
	_, kept, _ := RobustMean(runs, 0.0001, 2)
	if len(kept) < 2 {
		t.Fatalf("kept %d runs, minKeep=2 violated", len(kept))
	}
	_, kept, _ = RobustMean(runs, 0.0001, 0)
	if len(kept) < 1 {
		t.Fatal("minKeep must be clamped to 1")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	z := Summarize(nil)
	if z.N != 0 || z.Mean != 0 {
		t.Fatalf("Summarize(nil) = %+v", z)
	}
}

func TestRobustMeanProperty(t *testing.T) {
	// RobustMean never discards below minKeep and the mean stays within
	// the [min,max] of the original data.
	check := func(raw []uint16, cvTimes100 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1
		}
		maxCV := float64(cvTimes100%20) / 100
		mean, kept, _ := RobustMean(xs, maxCV, 3)
		if len(xs) >= 3 && len(kept) < 3 {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return mean >= mn-1e-9 && mean <= mx+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
