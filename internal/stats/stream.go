// Streaming aggregation primitives for fleet-scale runs. A million-job
// trace cannot retain per-job response samples the way SummarizeDynamic
// does, so the fleet layer aggregates with two O(1)-per-observation,
// mergeable accumulators instead:
//
//   - Moments: count/mean/variance via Welford's update, merged across
//     shards with the Chan et al. parallel formula.
//   - Sketch: a log-bucketed quantile sketch in the DDSketch family —
//     buckets at geometric boundaries γ^k with γ = (1+α)/(1−α), so any
//     quantile estimate carries a bounded *relative value* error α. On
//     smooth distributions that translates to well under 1% rank error at
//     p95 (accuracy-tested in stream_test.go against exact Percentile).
//
// Both are deterministic: insertion applies exact integer bucket counts,
// merge is count addition, and quantile queries walk the buckets in sorted
// key order — results are bit-identical regardless of how observations were
// sharded, which is what lets the fleet merge per-machine aggregates at
// quantum barriers without breaking the repo's parallel-merge invariant.
// Memory is O(log(max/min)/α) buckets per sketch, independent of the
// observation count.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments is a streaming count/mean/variance accumulator (Welford). The
// zero value is ready to use.
type Moments struct {
	n    uint64
	mean float64
	m2   float64
}

// Add feeds one observation.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// Merge folds another accumulator into m (Chan et al. pairwise update).
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := float64(m.n + o.n)
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/n
	m.mean += d * float64(o.n) / n
	m.n += o.n
}

// Count returns the number of observations.
func (m *Moments) Count() uint64 { return m.n }

// Mean returns the running mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Var returns the population variance (0 when fewer than 2 observations).
func (m *Moments) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// Sum returns n·mean, the running total.
func (m *Moments) Sum() float64 { return m.mean * float64(m.n) }

// DefaultSketchAlpha is the default relative-accuracy guarantee: quantile
// estimates are within ±0.5% of the true value, comfortably inside the 1%
// rank-error budget on the reference distributions.
const DefaultSketchAlpha = 0.005

// sketchMinValue is the smallest positive value given its own log bucket;
// anything at or below it (the fleet feeds cycle counts, so ≥ 1 in
// practice) lands in the exact zero bucket.
const sketchMinValue = 1e-12

// Sketch is a mergeable streaming quantile sketch over non-negative values:
// a fixed-boundary log-bucketed histogram (the DDSketch construction) whose
// quantile estimates carry a relative value error of at most alpha.
type Sketch struct {
	alpha   float64
	gamma   float64
	lgGamma float64
	buckets map[int]uint64
	zero    uint64 // observations ≤ sketchMinValue
	count   uint64
	min     float64
	max     float64
}

// NewSketch returns an empty sketch with the given relative accuracy
// (alpha ≤ 0 selects DefaultSketchAlpha; alpha must be < 1).
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 {
		alpha = DefaultSketchAlpha
	}
	if alpha >= 1 {
		alpha = DefaultSketchAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lgGamma: math.Log(gamma),
		buckets: map[int]uint64{},
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Alpha returns the sketch's relative-accuracy parameter.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.count }

// Buckets returns the number of occupied log buckets — the sketch's memory
// footprint, O(log(max/min)/alpha) regardless of Count.
func (s *Sketch) Buckets() int { return len(s.buckets) }

// Add feeds one observation. Negative values are clamped to the zero
// bucket (the fleet's observations — cycles — are non-negative).
func (s *Sketch) Add(v float64) {
	s.count++
	if v < s.min || s.count == 1 {
		s.min = v
	}
	if v > s.max || s.count == 1 {
		s.max = v
	}
	if v <= sketchMinValue || math.IsNaN(v) {
		s.zero++
		return
	}
	s.buckets[s.key(v)]++
}

// key maps a positive value to its log bucket: the smallest k with
// γ^k ≥ v, so bucket k covers (γ^(k−1), γ^k].
func (s *Sketch) key(v float64) int {
	return int(math.Ceil(math.Log(v) / s.lgGamma))
}

// Merge folds another sketch into s. Both must share the same alpha — the
// bucket boundaries are a function of it, and merging mismatched grids
// would silently void the accuracy guarantee.
func (s *Sketch) Merge(o *Sketch) error {
	if o.alpha != s.alpha {
		return fmt.Errorf("stats: cannot merge sketches with alpha %v and %v", s.alpha, o.alpha)
	}
	if o.count == 0 {
		return nil
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.zero += o.zero
	for k, c := range o.buckets {
		s.buckets[k] += c
	}
	return nil
}

// Min and Max return the exact extremes (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum observation (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Quantile estimates the q-quantile (q in [0,1]); the estimate is within a
// relative error alpha of the exact order statistic. Returns 0 when empty.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min()
	}
	if q >= 1 {
		return s.Max()
	}
	// Target rank in the sorted stream, matching the order-statistic
	// convention of stats.Percentile (rank q·(n−1), 0-indexed).
	rank := uint64(q * float64(s.count-1))
	if rank < s.zero {
		return 0
	}
	rem := rank - s.zero
	keys := make([]int, 0, len(s.buckets))
	for k := range s.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var seen uint64
	for _, k := range keys {
		seen += s.buckets[k]
		if seen > rem {
			// Bucket k covers (γ^(k−1), γ^k]; the midpoint 2γ^k/(γ+1)
			// is within ±alpha of every value in it.
			return 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
		}
	}
	return s.Max()
}
