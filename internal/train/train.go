// Package train implements the model-training pipeline of paper §IV-C:
//
//  1. run every training application in isolation, recording each quantum's
//     category fractions and committed-instruction counts;
//  2. run every pair of training applications in SMT mode, recording the
//     same data per application;
//  3. use the committed-instruction counts to map each SMT quantum back to
//     the single-threaded execution of the same work ("the number of
//     committed instructions allows us to map the category values of an
//     application when it runs in isolation to the corresponding values when
//     it runs in SMT mode");
//  4. select a random subset of the aligned quanta and fit the Eq. 1
//     regression per category.
//
// The response variable is the per-work SMT category value: the cycles the
// category consumed in the SMT quantum divided by the ST cycles the same
// instructions took in isolation. Summed over categories this is exactly
// the application's slowdown, matching §IV-A's reading of the model.
package train

import (
	"fmt"
	"sort"

	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/pmu"
	"synpa/internal/pool"
	"synpa/internal/regression"
	"synpa/internal/xrand"
)

// Options configure a training run.
type Options struct {
	// Machine is the system configuration to train on.
	Machine machine.Config
	// IsolatedQuanta is the profiling length per application (ST mode).
	IsolatedQuanta int
	// PairQuanta is the run length per SMT pair.
	PairQuanta int
	// SampleFrac is the fraction of aligned quanta kept for fitting
	// (the paper uses a random subset). 1.0 keeps everything.
	SampleFrac float64
	// Seed drives application streams and the quantum subsampling.
	Seed uint64
	// Extract converts samples to category fractions; defaults to the
	// three-category extractor.
	Extract core.Extractor
	// Categories names the extractor's outputs; defaults to the paper's
	// three categories.
	Categories []string
	// Parallel fans the pair runs out over CPUs.
	Parallel bool
}

// DefaultOptions returns the configuration used by the experiments.
func DefaultOptions() Options {
	return Options{
		Machine:        machine.DefaultConfig(),
		IsolatedQuanta: 140,
		PairQuanta:     100,
		SampleFrac:     0.6,
		Seed:           0x5EED,
		Parallel:       true,
	}
}

// Report describes the outcome of a training run.
type Report struct {
	// Apps is the number of training applications.
	Apps int
	// Pairs is the number of SMT pair runs executed.
	Pairs int
	// Samples is the number of aligned quantum samples fitted per
	// category.
	Samples int
	// MSE and R2 are the per-category fit statistics.
	MSE []float64
	R2  []float64
}

// isolatedProfile is one application's ST profile.
type isolatedProfile struct {
	fractions [][]float64 // per quantum, per category
	cycles    []float64   // per quantum
	cumInsts  []uint64    // cumulative retired instructions (end of quantum)
	cumCycles []float64   // cumulative cycles (end of quantum)
}

// stWindow integrates the ST profile over the retired-instruction range
// (a, b]: it returns the average category fractions over that work and the
// ST cycles it took. ok is false when the range is empty or outside the
// profiled region.
func (p *isolatedProfile) stWindow(a, b uint64, k int) (frac []float64, cycles float64, ok bool) {
	if b <= a || len(p.cumInsts) == 0 || b > p.cumInsts[len(p.cumInsts)-1] {
		return nil, 0, false
	}
	frac = make([]float64, k)
	// Locate the quantum containing instruction x: first index with
	// cumInsts >= x.
	start := sort.Search(len(p.cumInsts), func(i int) bool { return p.cumInsts[i] > a })
	for q := start; q < len(p.cumInsts); q++ {
		qStartInst := uint64(0)
		if q > 0 {
			qStartInst = p.cumInsts[q-1]
		}
		if qStartInst >= b {
			break
		}
		qInsts := p.cumInsts[q] - qStartInst
		if qInsts == 0 {
			continue
		}
		lo := max64(a, qStartInst)
		hi := min64(b, p.cumInsts[q])
		share := float64(hi-lo) / float64(qInsts)
		c := p.cycles[q] * share
		cycles += c
		for i := 0; i < k; i++ {
			frac[i] += p.fractions[q][i] * c
		}
	}
	if cycles <= 0 {
		return nil, 0, false
	}
	for i := range frac {
		frac[i] /= cycles
	}
	return frac, cycles, true
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// profileIsolated builds an application's ST profile.
func profileIsolated(m *apps.Model, opt *Options) (*isolatedProfile, error) {
	samples, err := machine.RunIsolated(m, opt.Seed^hashName(m.Name), opt.IsolatedQuanta, opt.Machine)
	if err != nil {
		return nil, err
	}
	p := &isolatedProfile{
		fractions: make([][]float64, 0, len(samples)),
		cycles:    make([]float64, 0, len(samples)),
		cumInsts:  make([]uint64, 0, len(samples)),
		cumCycles: make([]float64, 0, len(samples)),
	}
	var cumI uint64
	var cumC float64
	k := len(opt.Categories)
	for _, s := range samples {
		f := opt.Extract(s, opt.Machine.Core.DispatchWidth)
		if len(f) != k {
			return nil, fmt.Errorf("train: extractor produced %d categories, want %d", len(f), k)
		}
		cumI += s[pmu.InstRetired]
		cumC += float64(s[pmu.CPUCycles])
		p.fractions = append(p.fractions, f)
		p.cycles = append(p.cycles, float64(s[pmu.CPUCycles]))
		p.cumInsts = append(p.cumInsts, cumI)
		p.cumCycles = append(p.cumCycles, cumC)
	}
	return p, nil
}

// hashName gives each application a stable seed offset.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// pairSamples holds the regression samples produced by one SMT pair run:
// per category, rows of (ciST, cjST) with the per-work SMT response.
type pairSamples struct {
	ci, cj [][]float64 // per aligned quantum: ST vectors of app and co-runner
	y      [][]float64 // per aligned quantum: per-work SMT category values
}

// runPair executes one SMT pair and aligns its quanta against the ST
// profiles.
func runPair(a, b *apps.Model, pa, pb *isolatedProfile, opt *Options) (*pairSamples, error) {
	sa, sb, err := machine.RunPairSMT(a, b,
		opt.Seed^hashName(a.Name)^0xA5A5, opt.Seed^hashName(b.Name)^0x5A5A,
		opt.PairQuanta, opt.Machine)
	if err != nil {
		return nil, err
	}
	k := len(opt.Categories)
	maxRows := 2 * len(sa)
	out := &pairSamples{
		ci: make([][]float64, 0, maxRows),
		cj: make([][]float64, 0, maxRows),
		y:  make([][]float64, 0, maxRows),
	}
	// Response rows are carved from one arena instead of two small
	// allocations per aligned quantum.
	yArena := make([]float64, maxRows*k)
	var cumA, cumB uint64
	for q := range sa {
		instA := sa[q][pmu.InstRetired]
		instB := sb[q][pmu.InstRetired]
		fracA, stCycA, okA := pa.stWindow(cumA, cumA+instA, k)
		fracB, stCycB, okB := pb.stWindow(cumB, cumB+instB, k)
		cumA += instA
		cumB += instB
		if !okA || !okB {
			continue
		}
		// Per-work SMT category values for both directions.
		smtA := opt.Extract(sa[q], opt.Machine.Core.DispatchWidth)
		smtB := opt.Extract(sb[q], opt.Machine.Core.DispatchWidth)
		cycA := float64(sa[q][pmu.CPUCycles])
		cycB := float64(sb[q][pmu.CPUCycles])
		ya := yArena[:k:k]
		yb := yArena[k : 2*k : 2*k]
		yArena = yArena[2*k:]
		for i := 0; i < k; i++ {
			ya[i] = smtA[i] * cycA / stCycA
			yb[i] = smtB[i] * cycB / stCycB
		}
		out.ci = append(out.ci, fracA, fracB)
		out.cj = append(out.cj, fracB, fracA)
		out.y = append(out.y, ya, yb)
	}
	return out, nil
}

// Train fits a K-category interference model on the given training
// applications, following §IV-C. It returns the fitted model and a report.
func Train(models []*apps.Model, opt Options) (*core.Model, *Report, error) {
	if len(models) < 2 {
		return nil, nil, fmt.Errorf("train: need at least two applications, got %d", len(models))
	}
	if opt.Extract == nil {
		opt.Extract = core.ThreeCategoryFractions
	}
	if opt.Categories == nil {
		opt.Categories = core.ThreeCategories
	}
	if opt.IsolatedQuanta <= 0 || opt.PairQuanta <= 0 {
		return nil, nil, fmt.Errorf("train: quanta counts must be positive")
	}
	if opt.IsolatedQuanta < opt.PairQuanta {
		// ST profiles must cover at least as much work as the SMT runs;
		// ST execution is never slower, so equal quanta suffice, but a
		// margin avoids dropping tail samples.
		return nil, nil, fmt.Errorf("train: IsolatedQuanta (%d) must be >= PairQuanta (%d)",
			opt.IsolatedQuanta, opt.PairQuanta)
	}
	if opt.SampleFrac <= 0 || opt.SampleFrac > 1 {
		return nil, nil, fmt.Errorf("train: SampleFrac %v outside (0,1]", opt.SampleFrac)
	}
	k := len(opt.Categories)

	// Phase 1: isolated profiles (parallel across apps).
	profiles := make([]*isolatedProfile, len(models))
	if err := forEachParallel(len(models), opt.Parallel, func(i int) error {
		p, err := profileIsolated(models[i], &opt)
		if err != nil {
			return err
		}
		profiles[i] = p
		return nil
	}); err != nil {
		return nil, nil, err
	}

	// Phase 2: all pairs in SMT (parallel across pairs).
	type pairIdx struct{ a, b int }
	var pairs []pairIdx
	for i := 0; i < len(models); i++ {
		for j := i + 1; j < len(models); j++ {
			pairs = append(pairs, pairIdx{i, j})
		}
	}
	results := make([]*pairSamples, len(pairs))
	if err := forEachParallel(len(pairs), opt.Parallel, func(pi int) error {
		pr := pairs[pi]
		ps, err := runPair(models[pr.a], models[pr.b], profiles[pr.a], profiles[pr.b], &opt)
		if err != nil {
			return err
		}
		results[pi] = ps
		return nil
	}); err != nil {
		return nil, nil, err
	}

	// Phase 3: assemble samples in deterministic order and subsample.
	var allCi, allCj [][]float64
	var allY [][]float64
	for _, ps := range results {
		allCi = append(allCi, ps.ci...)
		allCj = append(allCj, ps.cj...)
		allY = append(allY, ps.y...)
	}
	if len(allY) < 4*k {
		return nil, nil, fmt.Errorf("train: only %d aligned samples; runs too short", len(allY))
	}
	rng := xrand.New(opt.Seed ^ 0x7121319)
	keep := make([]int, 0, len(allY))
	for i := range allY {
		if opt.SampleFrac >= 1 || rng.Float64() < opt.SampleFrac {
			keep = append(keep, i)
		}
	}
	if len(keep) < 8 {
		keep = keep[:0]
		for i := range allY {
			keep = append(keep, i)
		}
	}

	// Phase 4: one regression per category.
	model := &core.Model{
		Categories: append([]string(nil), opt.Categories...),
		Coef:       make([]core.Coefficients, k),
		MSE:        make([]float64, k),
	}
	report := &Report{
		Apps:    len(models),
		Pairs:   len(pairs),
		Samples: len(keep),
		MSE:     make([]float64, k),
		R2:      make([]float64, k),
	}
	for cat := 0; cat < k; cat++ {
		x := make([][]float64, 0, len(keep))
		y := make([]float64, 0, len(keep))
		for _, idx := range keep {
			x = append(x, regression.PairRow(allCi[idx][cat], allCj[idx][cat]))
			y = append(y, allY[idx][cat])
		}
		fit, err := regression.Fit(x, y)
		if err != nil {
			return nil, nil, fmt.Errorf("train: category %q: %w", opt.Categories[cat], err)
		}
		model.Coef[cat] = core.Coefficients{
			Alpha: fit.Coef[0], Beta: fit.Coef[1], Gamma: fit.Coef[2], Rho: fit.Coef[3],
		}
		model.MSE[cat] = fit.MSE
		report.MSE[cat] = fit.MSE
		report.R2[cat] = fit.R2
	}
	return model, report, nil
}

// forEachParallel runs fn(i) for i in [0, n) on the shared atomic-counter
// worker pool, returning the first error.
func forEachParallel(n int, parallel bool, fn func(int) error) error {
	return pool.Run(n, parallel, fn)
}
