package train

import (
	"testing"

	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/machine"
)

// smallOptions keeps unit-test training cheap.
func smallOptions() Options {
	opt := DefaultOptions()
	cfg := machine.DefaultConfig()
	cfg.QuantumCycles = 8_000
	opt.Machine = cfg
	opt.IsolatedQuanta = 60
	opt.PairQuanta = 40
	opt.SampleFrac = 1.0
	return opt
}

func smallTrainingSet(t *testing.T, names ...string) []*apps.Model {
	t.Helper()
	out := make([]*apps.Model, len(names))
	for i, n := range names {
		m, err := apps.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

// TestTrainedCoefficientStructure verifies the qualitative structure the
// paper reports in Table IV and §VI-A:
//   - the backend category depends most on the co-runner (largest γ);
//   - the frontend category mainly depends on the app itself (β ≫ γ);
//   - the full-dispatch category has β < 1 (SMT slows dispatch) and the
//     smallest MSE of the three;
//   - the backend category has the largest MSE ("the most sensitive to
//     interference variations").
func TestTrainedCoefficientStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	models := smallTrainingSet(t,
		"mcf", "lbm_r", "milc", "leela_r", "gobmk", "perlbench", "hmmer", "nab_r")
	m, rep, err := Train(models, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	for k, name := range m.Categories {
		t.Logf("%-22s α=%+.4f β=%+.4f γ=%+.4f ρ=%+.4f  MSE=%.4f R²=%.3f",
			name, m.Coef[k].Alpha, m.Coef[k].Beta, m.Coef[k].Gamma, m.Coef[k].Rho,
			rep.MSE[k], rep.R2[k])
	}
	t.Logf("samples=%d pairs=%d", rep.Samples, rep.Pairs)

	// Co-runner sensitivity ∂C_smt/∂C_st[j] evaluated at a typical
	// operating point (both categories at 0.4). With a free product term
	// the dependence can move between γ and ρ, so compare sensitivities
	// rather than raw coefficients.
	coSens := func(c core.Coefficients) float64 { return c.Gamma + c.Rho*0.4 }
	selfSens := func(c core.Coefficients) float64 { return c.Beta + c.Rho*0.4 }
	fd, fe, be := m.Coef[0], m.Coef[1], m.Coef[2]

	if coSens(be) <= coSens(fd) {
		t.Errorf("backend co-runner sensitivity %.3f should exceed full-dispatch %.3f",
			coSens(be), coSens(fd))
	}
	if coSens(be) <= 0 {
		t.Errorf("backend co-runner sensitivity %.3f must be positive (contention)", coSens(be))
	}
	if selfSens(fe) <= coSens(fe) {
		t.Errorf("frontend must be mainly self-driven: self %.3f vs co %.3f",
			selfSens(fe), coSens(fe))
	}
	if !(m.MSE[0] < m.MSE[2]) {
		t.Errorf("FD MSE %.4f should be below BE MSE %.4f (paper: 0.0021 vs 0.1583)",
			m.MSE[0], m.MSE[2])
	}
	if !(m.MSE[1] < m.MSE[2]) {
		t.Errorf("FE MSE %.4f should be below BE MSE %.4f (paper: 0.0703 vs 0.1583)",
			m.MSE[1], m.MSE[2])
	}
	if m.MSE[0] == 0 {
		t.Errorf("FD category degenerated to an exact identity; wrong-path dispatch modelling is not active")
	}
}
