package train

import (
	"math"
	"testing"

	"synpa/internal/apps"
	"synpa/internal/core"
)

func TestTrainValidation(t *testing.T) {
	one := []*apps.Model{apps.TrainingSet()[0]}
	if _, _, err := Train(one, DefaultOptions()); err == nil {
		t.Fatal("single-app training accepted")
	}
	two := apps.TrainingSet()[:2]
	bad := smallOptions()
	bad.IsolatedQuanta = 0
	if _, _, err := Train(two, bad); err == nil {
		t.Fatal("zero quanta accepted")
	}
	bad = smallOptions()
	bad.IsolatedQuanta = 10
	bad.PairQuanta = 20
	if _, _, err := Train(two, bad); err == nil {
		t.Fatal("IsolatedQuanta < PairQuanta accepted")
	}
	bad = smallOptions()
	bad.SampleFrac = 0
	if _, _, err := Train(two, bad); err == nil {
		t.Fatal("zero sample fraction accepted")
	}
	bad = smallOptions()
	bad.SampleFrac = 1.5
	if _, _, err := Train(two, bad); err == nil {
		t.Fatal("sample fraction > 1 accepted")
	}
}

func TestTrainTwoAppsMinimal(t *testing.T) {
	models := smallTrainingSet(t, "mcf", "leela_r")
	opt := smallOptions()
	m, rep, err := Train(models, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1", rep.Pairs)
	}
	if m.K() != 3 {
		t.Fatalf("K = %d", m.K())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for k, mse := range rep.MSE {
		if math.IsNaN(mse) || mse < 0 {
			t.Fatalf("category %d MSE = %v", k, mse)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	models := smallTrainingSet(t, "mcf", "leela_r", "nab_r")
	run := func() core.Coefficients {
		m, _, err := Train(models, smallOptions())
		if err != nil {
			t.Fatal(err)
		}
		return m.Coef[2]
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("training not deterministic: %+v vs %+v", a, b)
	}
}

func TestTrainParallelMatchesSequential(t *testing.T) {
	models := smallTrainingSet(t, "mcf", "leela_r", "nab_r", "gobmk")
	opt := smallOptions()
	opt.Parallel = false
	seqM, _, err := Train(models, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = true
	parM, _, err := Train(models, opt)
	if err != nil {
		t.Fatal(err)
	}
	for k := range seqM.Coef {
		if seqM.Coef[k] != parM.Coef[k] {
			t.Fatalf("parallel training changed category %d: %+v vs %+v",
				k, seqM.Coef[k], parM.Coef[k])
		}
	}
}

func TestTrainSubsampling(t *testing.T) {
	models := smallTrainingSet(t, "mcf", "leela_r", "nab_r")
	full := smallOptions()
	full.SampleFrac = 1.0
	_, repFull, err := Train(models, full)
	if err != nil {
		t.Fatal(err)
	}
	half := smallOptions()
	half.SampleFrac = 0.5
	_, repHalf, err := Train(models, half)
	if err != nil {
		t.Fatal(err)
	}
	if repHalf.Samples >= repFull.Samples {
		t.Fatalf("subsampling kept %d of %d samples", repHalf.Samples, repFull.Samples)
	}
	if repHalf.Samples < repFull.Samples/3 {
		t.Fatalf("subsampling too aggressive: %d of %d", repHalf.Samples, repFull.Samples)
	}
}

func TestTrainTenCategoryModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	models := smallTrainingSet(t, "mcf", "lbm_r", "leela_r", "gobmk", "hmmer", "nab_r")
	opt := smallOptions()
	opt.Extract = core.TenCategoryFractions
	opt.Categories = core.TenCategories
	m, rep, err := Train(models, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 10 {
		t.Fatalf("K = %d, want 10", m.K())
	}
	if len(rep.MSE) != 10 {
		t.Fatalf("MSE has %d entries", len(rep.MSE))
	}
}

// --- stWindow unit tests -----------------------------------------------------

// profileFor builds a tiny synthetic isolated profile: quanta of 100 cycles
// each retiring 50 instructions, with distinct category vectors.
func syntheticProfile() *isolatedProfile {
	p := &isolatedProfile{}
	fracs := [][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
	}
	var cumI uint64
	var cumC float64
	for q := 0; q < 3; q++ {
		cumI += 50
		cumC += 100
		p.fractions = append(p.fractions, fracs[q])
		p.cycles = append(p.cycles, 100)
		p.cumInsts = append(p.cumInsts, cumI)
		p.cumCycles = append(p.cumCycles, cumC)
	}
	return p
}

func TestSTWindowWholeQuantum(t *testing.T) {
	p := syntheticProfile()
	frac, cycles, ok := p.stWindow(0, 50, 3)
	if !ok {
		t.Fatal("window rejected")
	}
	if cycles != 100 {
		t.Fatalf("cycles = %v, want 100", cycles)
	}
	if frac[0] != 1 || frac[1] != 0 {
		t.Fatalf("frac = %v", frac)
	}
}

func TestSTWindowSpansQuanta(t *testing.T) {
	p := syntheticProfile()
	// Instructions 25..125: half of q0, all of q1, half of q2.
	frac, cycles, ok := p.stWindow(25, 125, 3)
	if !ok {
		t.Fatal("window rejected")
	}
	if math.Abs(cycles-200) > 1e-9 {
		t.Fatalf("cycles = %v, want 200", cycles)
	}
	// Weighted: 50 cycles of cat0, 100 of cat1, 50 of cat2.
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if math.Abs(frac[i]-want[i]) > 1e-9 {
			t.Fatalf("frac = %v, want %v", frac, want)
		}
	}
}

func TestSTWindowRejectsBadRanges(t *testing.T) {
	p := syntheticProfile()
	if _, _, ok := p.stWindow(10, 10, 3); ok {
		t.Fatal("empty range accepted")
	}
	if _, _, ok := p.stWindow(20, 10, 3); ok {
		t.Fatal("inverted range accepted")
	}
	if _, _, ok := p.stWindow(100, 200, 3); ok {
		t.Fatal("range beyond profile accepted")
	}
	empty := &isolatedProfile{}
	if _, _, ok := empty.stWindow(0, 10, 3); ok {
		t.Fatal("empty profile accepted")
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("mcf") != hashName("mcf") {
		t.Fatal("hashName unstable")
	}
	if hashName("mcf") == hashName("lbm_r") {
		t.Fatal("hashName collision on catalogue names")
	}
}

func TestForEachParallelPropagatesError(t *testing.T) {
	errs := 0
	err := forEachParallel(10, true, func(i int) error {
		if i == 5 {
			errs++
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("error not propagated: %v", err)
	}
	if err := forEachParallel(4, false, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
