module synpa

go 1.24
