// Package synpabench is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (DESIGN.md §4 maps each benchmark to
// its experiment). Run all of them with
//
//	go test -bench=. -benchmem
//
// Each benchmark prints its table once (the rows/series the paper reports)
// and then times the underlying experiment; results are memoised inside a
// shared suite, so repeated benchmark iterations measure cache hits rather
// than re-simulating.
//
// Environment:
//
//	SYNPA_BENCH_FAST=1   use a scaled-down configuration (quick smoke)
//	SYNPA_FF=0           disable the core fast-forward engine (reference
//	                     per-cycle loop; results are bit-identical, only
//	                     slower — used to measure the engine's speedup)
package synpabench

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"synpa/internal/experiments"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite

	printMu      sync.Mutex
	printedTable = map[string]bool{}
)

func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		if os.Getenv("SYNPA_BENCH_FAST") == "1" {
			cfg.Machine.QuantumCycles = 8_000
			cfg.Train.IsolatedQuanta = 50
			cfg.Train.PairQuanta = 35
			cfg.RefQuanta = 30
			cfg.Reps = 1
		}
		if os.Getenv("SYNPA_FF") == "0" {
			cfg.Machine.FastForward = false
		}
		// cfg.Train.Machine needs no mirroring: Suite.Model always trains
		// on cfg.Machine.
		suite = experiments.NewSuite(cfg)
	})
	return suite
}

// runExperiment executes one experiment inside a benchmark loop, printing
// its table the first time it is produced.
func runExperiment(b *testing.B, name string, fn func(*experiments.Suite) (*experiments.Table, error)) {
	b.Helper()
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		tab, err := fn(s)
		if err != nil {
			b.Fatal(err)
		}
		printMu.Lock()
		if !printedTable[name] {
			printedTable[name] = true
			fmt.Printf("\n%s\n", tab)
		}
		printMu.Unlock()
	}
}

// --- Paper tables -----------------------------------------------------------

// BenchmarkTableI_PMUEvents regenerates Table I (the four ARM PMU events).
func BenchmarkTableI_PMUEvents(b *testing.B) {
	runExperiment(b, "table1", (*experiments.Suite).TableI)
}

// BenchmarkTableII_MachineConfig regenerates Table II (processor and memory
// subsystem configuration).
func BenchmarkTableII_MachineConfig(b *testing.B) {
	runExperiment(b, "table2", (*experiments.Suite).TableII)
}

// BenchmarkTableIII_Groups regenerates Table III (benchmark groups by
// dominant dispatch-stall category).
func BenchmarkTableIII_Groups(b *testing.B) {
	runExperiment(b, "table3", (*experiments.Suite).TableIII)
}

// BenchmarkTableIV_ModelCoefficients regenerates Table IV (the trained
// regression coefficients and per-category MSE, §VI-A).
func BenchmarkTableIV_ModelCoefficients(b *testing.B) {
	runExperiment(b, "table4", (*experiments.Suite).TableIV)
}

// BenchmarkTableV_PairSelection regenerates Table V (percentage of pairing
// quanta per behaviour for fb2 under SYNPA, with the synergistic
// "diff. group" column).
func BenchmarkTableV_PairSelection(b *testing.B) {
	runExperiment(b, "table5", (*experiments.Suite).TableV)
}

// --- Paper figures ----------------------------------------------------------

// BenchmarkFig2_ThreeStepCharacterization regenerates Fig. 2 (the
// three-step dispatch-cycle characterization) for mcf.
func BenchmarkFig2_ThreeStepCharacterization(b *testing.B) {
	runExperiment(b, "fig2", func(s *experiments.Suite) (*experiments.Table, error) {
		return s.Fig2("mcf")
	})
}

// BenchmarkFig4_IsolatedCharacterization regenerates Fig. 4 (FD/FE/BE
// fractions of all 28 applications in isolation).
func BenchmarkFig4_IsolatedCharacterization(b *testing.B) {
	runExperiment(b, "fig4", (*experiments.Suite).Fig4)
}

// BenchmarkFig5_TurnaroundSpeedup regenerates Fig. 5 (turnaround-time
// speedup of SYNPA over Linux across the twenty workloads).
func BenchmarkFig5_TurnaroundSpeedup(b *testing.B) {
	runExperiment(b, "fig5", (*experiments.Suite).Fig5)
}

// BenchmarkFig6_WorkloadCharacterization regenerates Fig. 6 (per-app
// category bars under Linux and SYNPA) for be1, fe2 and fb2.
func BenchmarkFig6_WorkloadCharacterization(b *testing.B) {
	for _, wl := range []string{"be1", "fe2", "fb2"} {
		wl := wl
		b.Run(wl, func(b *testing.B) {
			runExperiment(b, "fig6-"+wl, func(s *experiments.Suite) (*experiments.Table, error) {
				return s.Fig6(wl)
			})
		})
	}
}

// BenchmarkFig7_DynamicCharacterization regenerates Fig. 7 (the dynamic
// behaviour of the two leela_r instances of fb2 under both policies).
func BenchmarkFig7_DynamicCharacterization(b *testing.B) {
	runExperiment(b, "fig7", (*experiments.Suite).Fig7)
}

// BenchmarkFig8_Fairness regenerates Fig. 8 (fairness of Linux vs SYNPA).
func BenchmarkFig8_Fairness(b *testing.B) {
	runExperiment(b, "fig8", (*experiments.Suite).Fig8)
}

// BenchmarkFig9_IPCSpeedup regenerates Fig. 9 (IPC geomean speedup over
// Linux).
func BenchmarkFig9_IPCSpeedup(b *testing.B) {
	runExperiment(b, "fig9", (*experiments.Suite).Fig9)
}

// --- Ablations and overhead studies (DESIGN.md §5) ---------------------------

// BenchmarkAblation_TenCategoryModel reproduces the §VI-A finding that the
// ten-category preliminary model is less accurate than the final
// three-category one.
func BenchmarkAblation_TenCategoryModel(b *testing.B) {
	runExperiment(b, "ablation-tencat", (*experiments.Suite).AblationTenCategory)
}

// BenchmarkAblation_RevealsSplit reproduces the §III-B Step 3 design study
// on attributing the revealed horizontal waste.
func BenchmarkAblation_RevealsSplit(b *testing.B) {
	runExperiment(b, "ablation-reveals", (*experiments.Suite).AblationRevealsSplit)
}

// BenchmarkAblation_Matcher compares Blossom, greedy and brute-force pair
// selection as the policy's matching stage.
func BenchmarkAblation_Matcher(b *testing.B) {
	runExperiment(b, "ablation-matcher", (*experiments.Suite).AblationMatcher)
}

// BenchmarkAblation_Inversion quantifies the value of the §IV-B Step 1
// model inversion.
func BenchmarkAblation_Inversion(b *testing.B) {
	runExperiment(b, "ablation-inversion", (*experiments.Suite).AblationInversion)
}

// BenchmarkAblation_Quantum sweeps the scheduling quantum length on fb2.
func BenchmarkAblation_Quantum(b *testing.B) {
	runExperiment(b, "ablation-quantum", (*experiments.Suite).AblationQuantum)
}

// BenchmarkOverhead_ModelEquations reproduces the §II claim that the
// three-equation model is ~40 % cheaper than a five-equation IBM-style one
// for all-pairs estimation.
func BenchmarkOverhead_ModelEquations(b *testing.B) {
	runExperiment(b, "overhead-model", (*experiments.Suite).OverheadModelEquations)
}

// BenchmarkOverhead_Matching reproduces the combinatorial-explosion
// argument for the Blossom algorithm (§IV-B Step 3).
func BenchmarkOverhead_Matching(b *testing.B) {
	runExperiment(b, "overhead-matching", (*experiments.Suite).OverheadMatching)
}
