package synpa

import (
	"reflect"
	"testing"
)

// trainTiny builds a small system at the given worker count with a model
// trained on a reduced set, scaled so the differential suite stays fast
// under -race.
func trainTiny(t *testing.T, workers int) (*System, *Model) {
	t.Helper()
	sys, err := New(Config{Cores: 4, QuantumCycles: 6_000, RefQuanta: 20, Seed: 7, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := sys.TrainModel(
		[]string{"mcf", "leela_r", "lbm_r", "gobmk", "perlbench"},
		TrainOptions{IsolatedQuanta: 30, PairQuanta: 20},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys, model
}

// TestRunWorkersBitIdentical pins the full public pipeline — training,
// targets, the SYNPA policy with its prediction caches, metrics — to the
// serial path: Workers=4 must reproduce Workers=1 bit for bit.
func TestRunWorkersBitIdentical(t *testing.T) {
	apps := []string{"mcf", "leela_r", "lbm_r", "gobmk", "mcf", "perlbench", "leela_r", "lbm_r"}
	var reports []*RunReport
	var models []*Model
	for _, workers := range []int{1, 4} {
		sys, model := trainTiny(t, workers)
		rep, err := sys.Run(apps, sys.SYNPAPolicy(model))
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
		models = append(models, model)
	}
	if !reflect.DeepEqual(models[0], models[1]) {
		t.Fatal("trained models diverge across worker counts")
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("run reports diverge across worker counts:\n1: %+v\n4: %+v", reports[0], reports[1])
	}
}

// TestRunDynamicWorkersBitIdentical is the open-system counterpart over a
// Poisson trace: arrivals, queueing, partial occupancy and departures must
// be bit-identical across worker counts.
func TestRunDynamicWorkersBitIdentical(t *testing.T) {
	var reports []*DynamicReport
	for _, workers := range []int{1, 4} {
		sys, model := trainTiny(t, workers)
		tr := PoissonTrace("wdiff", 5, []string{"mcf", "leela_r", "lbm_r"}, 7, 30_000, 0.4)
		rep, err := sys.RunDynamic(tr, sys.SYNPAPolicy(model))
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("dynamic reports diverge across worker counts:\n1: %+v\n4: %+v", reports[0], reports[1])
	}
}

// TestPredcacheBitIdentical pins the interference-prediction memo layer:
// the SYNPA policy with caching disabled must reproduce the cached policy
// bit for bit (exact keys make hits equivalent to fresh evaluations).
func TestPredcacheBitIdentical(t *testing.T) {
	sys, model := trainTiny(t, 1)
	apps := []string{"mcf", "leela_r", "lbm_r", "gobmk", "mcf", "perlbench", "leela_r", "lbm_r"}

	cached, err := sys.Run(apps, sys.SYNPAPolicy(model))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.SYNPAPolicyWithOptions(model, PolicyOptions{Cache: PredCacheOptions{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := sys.Run(apps, plain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, uncached) {
		t.Fatalf("cached and uncached policies diverge:\ncached:   %+v\nuncached: %+v", cached, uncached)
	}
}
